// Hadoopbuffer reproduces Fig 10's mechanism on a Hadoop rack: the shared
// buffer's peak occupancy grows nonlinearly with the number of
// simultaneously hot ports, because the ASIC's dynamic threshold carves
// less per-port headroom as the free pool shrinks. It prints one row per
// hot-port count with a textual boxplot of normalized peak occupancy.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func main() {
	rack := topo.Default(24)
	net, err := simnet.New(simnet.Config{
		Rack:   rack,
		Params: workload.DefaultParams(workload.Hadoop),
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Poll the buffer-peak register plus every port's byte counter at
	// 300 µs — the Fig 10 campaign plan.
	counters := []collector.CounterSpec{{Kind: asic.KindBufferPeak}}
	for p := 0; p < rack.NumPorts(); p++ {
		counters = append(counters, collector.CounterSpec{Port: p, Dir: asic.TX, Kind: asic.KindBytes})
	}
	var samples []wire.Sample
	poller, err := collector.NewPoller(collector.PollerConfig{
		Interval:      300 * simclock.Microsecond,
		Counters:      counters,
		DedicatedCore: true,
	}, net.Switch(), rng.New(9), collector.EmitterFunc(func(s wire.Sample) { samples = append(samples, s) }))
	if err != nil {
		log.Fatal(err)
	}
	net.Run(25 * simclock.Millisecond)
	net.Switch().ReadPeakBufferAndClear()
	poller.Install(net.Scheduler())
	net.Run(800 * simclock.Millisecond)

	split := analysis.Split(samples)
	var series [][]analysis.UtilPoint
	for p := 0; p < rack.NumPorts(); p++ {
		key := analysis.SeriesKey{Port: uint16(p), Dir: asic.TX, Kind: asic.KindBytes}
		ser, err := analysis.UtilizationSeries(split[key], net.Switch().Port(p).Speed())
		if err != nil {
			log.Fatal(err)
		}
		series = append(series, ser)
	}
	var peaks []wire.Sample
	for _, s := range samples {
		if s.Kind == asic.KindBufferPeak {
			peaks = append(peaks, s)
		}
	}
	windows, err := analysis.BufferVsHotPorts(series, peaks, 10*simclock.Millisecond, 0)
	if err != nil {
		log.Fatal(err)
	}
	box := analysis.BufferBoxplots(windows)

	fmt.Printf("Hadoop rack: normalized peak buffer occupancy vs hot ports (%d windows of 10ms)\n", len(windows))
	fmt.Printf("max simultaneous hot ports: %.0f%% of %d ports\n\n",
		analysis.MaxHotPortFraction(windows, rack.NumPorts())*100, rack.NumPorts())
	fmt.Println("hot  n    q1    med   q3    (median as bar)")
	counts := make([]int, 0, len(box))
	for k := range box {
		counts = append(counts, k)
	}
	sort.Ints(counts)
	for _, k := range counts {
		b := box[k]
		bar := strings.Repeat("█", int(b.Median*40))
		fmt.Printf("%3d %4d %.3f %.3f %.3f %s\n", k, b.N, b.Q1, b.Median, b.Q3, bar)
	}
	fmt.Printf("\ntotal congestion discards during the run: %d packets\n", net.Switch().TotalDropped())
}
