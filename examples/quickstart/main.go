// Quickstart: simulate a Web rack, poll one port's byte counter at 25 µs
// through the collection framework, and characterize its µbursts — the
// core loop of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func main() {
	// A 32-server web rack under its default traffic model.
	net, err := simnet.New(simnet.Config{
		Rack:   topo.Default(32),
		Params: workload.DefaultParams(workload.Web),
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Attach the high-resolution poller to server 3's egress byte
	// counter at the paper's 25 µs interval.
	const port = 3
	var samples []wire.Sample
	poller, err := collector.NewPoller(collector.PollerConfig{
		Interval:      25 * simclock.Microsecond,
		Counters:      []collector.CounterSpec{{Port: port, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
	}, net.Switch(), rng.New(7), collector.EmitterFunc(func(s wire.Sample) {
		samples = append(samples, s)
	}))
	if err != nil {
		log.Fatal(err)
	}

	// Warm up, then record half a second.
	net.Run(25 * simclock.Millisecond)
	poller.Install(net.Scheduler())
	net.Run(500 * simclock.Millisecond)

	// Turn cumulative byte counts into utilization, segment bursts.
	series, err := analysis.UtilizationSeries(samples, net.Switch().Port(port).Speed())
	if err != nil {
		log.Fatal(err)
	}
	bursts := analysis.Bursts(series, analysis.DefaultHotThreshold)
	durations := stats.NewECDF(analysis.BurstDurations(bursts))

	fmt.Printf("captured %d samples (%.2f%% of intervals missed)\n",
		len(samples), poller.MissRate()*100)
	fmt.Printf("observed %d µbursts on %s\n", len(bursts), net.Switch().Port(port).Name())
	if durations.N() > 0 {
		fmt.Printf("burst durations: p50=%.0fµs p90=%.0fµs max=%.0fµs\n",
			durations.Quantile(0.5), durations.Quantile(0.9), durations.Max())
		fmt.Printf("fraction lasting one sampling period or less: %.0f%%\n",
			durations.At(25)*100)
	}
	fmt.Printf("time spent hot: %.2f%%\n", analysis.HotFraction(series, 0)*100)
}
