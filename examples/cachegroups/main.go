// Cachegroups reproduces Fig 8's key observation for Cache racks: subsets
// of servers that serve the same scatter-gather requests show strongly
// correlated utilization at 250 µs, while Web servers are uncorrelated.
// It prints an ASCII heatmap of the Pearson correlation matrix.
package main

import (
	"fmt"
	"log"
	"math"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

const servers = 16

func main() {
	for _, app := range []workload.App{workload.Cache, workload.Web} {
		corr := measure(app)
		fmt.Printf("\n%s rack: ToR→server utilization correlation @250µs\n", app)
		printHeatmap(corr)
		params := workload.DefaultParams(app)
		if params.GroupCount > 0 {
			groupOf := make([]int, servers)
			for s := range groupOf {
				groupOf[s] = (s / params.GroupSpan) % params.GroupCount
			}
			fmt.Printf("group block score: %.3f (within-group − across-group mean r)\n",
				analysis.GroupBlockScore(corr, groupOf))
		}
	}
}

func measure(app workload.App) [][]float64 {
	net, err := simnet.New(simnet.Config{
		Rack:   topo.Default(servers),
		Params: workload.DefaultParams(app),
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	var counters []collector.CounterSpec
	for s := 0; s < servers; s++ {
		counters = append(counters, collector.CounterSpec{Port: s, Dir: asic.TX, Kind: asic.KindBytes})
	}
	var samples []wire.Sample
	p, err := collector.NewPoller(collector.PollerConfig{
		Interval:      250 * simclock.Microsecond,
		Counters:      counters,
		DedicatedCore: true,
	}, net.Switch(), rng.New(3), collector.EmitterFunc(func(s wire.Sample) { samples = append(samples, s) }))
	if err != nil {
		log.Fatal(err)
	}
	net.Run(25 * simclock.Millisecond)
	p.Install(net.Scheduler())
	net.Run(400 * simclock.Millisecond)

	split := analysis.Split(samples)
	var series [][]analysis.UtilPoint
	for s := 0; s < servers; s++ {
		key := analysis.SeriesKey{Port: uint16(s), Dir: asic.TX, Kind: asic.KindBytes}
		ser, err := analysis.UtilizationSeries(split[key], net.Switch().Port(s).Speed())
		if err != nil {
			log.Fatal(err)
		}
		series = append(series, ser)
	}
	return analysis.ServerCorrelation(series)
}

// printHeatmap renders |r| with a coarse character ramp.
func printHeatmap(corr [][]float64) {
	ramp := []byte(" .:-=+*#%@")
	fmt.Print("    ")
	for j := range corr {
		fmt.Printf("%2d", j%10)
	}
	fmt.Println()
	for i, row := range corr {
		fmt.Printf("%3d ", i)
		for j, v := range row {
			if i == j {
				fmt.Print(" @")
				continue
			}
			if math.IsNaN(v) {
				fmt.Print(" ?")
				continue
			}
			idx := int(math.Abs(v) * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			fmt.Printf(" %c", ramp[idx])
		}
		fmt.Println()
	}
}
