// Webrack reproduces the paper's headline Web-rack findings (Figs 3, 4 and
// Table 2) on a single scaled campaign: µbursts are overwhelmingly shorter
// than 200 µs, their arrivals are clustered (high Markov likelihood
// ratio), and inter-burst gaps are wildly non-exponential.
package main

import (
	"context"
	"fmt"
	"log"

	"mburst/internal/analysis"
	"mburst/internal/core"
	"mburst/internal/stats"
	"mburst/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Racks = 2
	cfg.Windows = 4
	exp, err := core.NewExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	campaign, err := exp.RunByteCampaign(context.Background(), workload.Web, 0)
	if err != nil {
		log.Fatal(err)
	}

	durations := stats.NewECDF(campaign.BurstDurationsMicros(0))
	gaps := campaign.InterBurstGapsMicros(0)
	gapCDF := stats.NewECDF(gaps)
	ks := analysis.PoissonTest(gaps)

	var models []stats.MarkovModel
	for _, s := range campaign.WindowSeries {
		models = append(models, analysis.BurstMarkov(s, 0))
	}
	markov := stats.MergeMarkov(models...)

	fmt.Println("Web rack µburst characterization (25µs sampling)")
	fmt.Printf("  %d windows, %d bursts observed\n", len(campaign.WindowSeries), durations.N())
	fmt.Printf("  burst duration p50/p90/p99: %.0f / %.0f / %.0f µs (paper p90: 50µs)\n",
		durations.Quantile(0.5), durations.Quantile(0.9), durations.Quantile(0.99))
	fmt.Printf("  bursts ending within one sampling period: %.0f%% (paper: >60%%)\n",
		durations.At(25)*100)
	fmt.Printf("  inter-burst gaps p50/p99: %.0f / %.0f µs; gaps <100µs: %.0f%%\n",
		gapCDF.Quantile(0.5), gapCDF.Quantile(0.99), gapCDF.At(100)*100)
	fmt.Printf("  Poisson arrivals rejected: %v (KS D=%.3f, p=%.2g)\n",
		ks.Rejects(0.001), ks.D, ks.PValue)
	fmt.Printf("  Markov likelihood ratio r = p(1|1)/p(1|0) = %.1f (paper: 119.7)\n",
		markov.LikelihoodRatio())
	fmt.Printf("  stationary hot fraction: %.2f%%\n", markov.StationaryHotFraction()*100)
}
