// Livecollect demonstrates the full collection pipeline exactly as the
// paper deploys it (§4.1): a switch-side sampling loop batches counter
// samples and streams them over TCP to a collector service, which archives
// them for offline analysis. Everything runs in one process here — the
// poller plays the switch CPU, a collector.Server plays the distributed
// collector — but the bytes really cross a TCP socket.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

func main() {
	// --- Collector service side -----------------------------------------
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	sink := &collector.MemSink{}
	srv := collector.Serve(ln, sink.Handle)
	defer srv.Close()
	fmt.Printf("collector service listening on %s\n", srv.Addr())

	// --- Switch side ------------------------------------------------------
	sim, err := simnet.New(simnet.Config{
		Rack:   topo.Default(32),
		Params: workload.DefaultParams(workload.Cache),
		Seed:   123,
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	client := collector.NewClient(conn, 0 /* rack id */, 1024)

	const port = 8
	poller, err := collector.NewPoller(collector.PollerConfig{
		Interval:      25 * simclock.Microsecond,
		Counters:      []collector.CounterSpec{{Port: port, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
	}, sim.Switch(), rng.New(1), client)
	if err != nil {
		log.Fatal(err)
	}

	sim.Run(25 * simclock.Millisecond) // warmup
	poller.Install(sim.Scheduler())
	sim.Run(500 * simclock.Millisecond)
	if err := client.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Wait for the stream to drain, then analyze -----------------------
	deadline := time.Now().Add(5 * time.Second)
	want := int(poller.Samples())
	for len(sink.Samples()) < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	samples := sink.Samples()
	fmt.Printf("poller took %d samples (miss rate %.2f%%), collector received %d in %d batches\n",
		poller.Samples(), poller.MissRate()*100, len(samples), sink.Batches())

	series, err := analysis.UtilizationSeries(samples, sim.Switch().Port(port).Speed())
	if err != nil {
		log.Fatal(err)
	}
	bursts := analysis.Bursts(series, 0)
	durs := stats.NewECDF(analysis.BurstDurations(bursts))
	fmt.Printf("analysis over the received stream: %d bursts", durs.N())
	if durs.N() > 0 {
		fmt.Printf(", p90 duration %.0fµs", durs.Quantile(0.9))
	}
	fmt.Println()
	if err := srv.LastErr(); err != nil {
		log.Fatalf("collector reported stream error: %v", err)
	}
	fmt.Println("stream integrity verified (CRC-checked batches, no decode errors)")
}
