// Detector runs online µburst detection against a live web rack and
// quantifies the §7 congestion-control implication: by the time any
// RTT-delayed signal reaches a sender, most µbursts are history.
package main

import (
	"fmt"
	"log"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/detect"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func main() {
	net, err := simnet.New(simnet.Config{
		Rack:   topo.Default(32),
		Params: workload.DefaultParams(workload.Web),
		Seed:   77,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sample one downlink at 25µs through the collection framework and
	// feed the utilization stream to two online detectors.
	const port = 2
	var samples []wire.Sample
	poller, err := collector.NewPoller(collector.PollerConfig{
		Interval:      25 * simclock.Microsecond,
		Counters:      []collector.CounterSpec{{Port: port, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
	}, net.Switch(), rng.New(1), collector.EmitterFunc(func(s wire.Sample) { samples = append(samples, s) }))
	if err != nil {
		log.Fatal(err)
	}
	net.Run(25 * simclock.Millisecond)
	poller.Install(net.Scheduler())
	net.Run(800 * simclock.Millisecond)

	series, err := analysis.UtilizationSeries(samples, net.Switch().Port(port).Speed())
	if err != nil {
		log.Fatal(err)
	}
	truth := analysis.Bursts(series, 0)
	durations := analysis.BurstDurations(truth)
	fmt.Printf("ground truth: %d µbursts (p90 %.0fµs)\n",
		len(truth), stats.NewECDF(durations).Quantile(0.9))

	threshold, _ := detect.NewThresholdDetector(0.5, 1, 1)
	ewma, _ := detect.NewEWMADetector(0.3, 0.5, 0.3)
	slack := 100 * simclock.Microsecond
	thEval := detect.Evaluate(truth, detect.Run(threshold, series), slack)
	ewEval := detect.Evaluate(truth, detect.Run(ewma, series), slack)
	fmt.Printf("threshold detector: %.0f%% detected, p50 latency %.0fµs\n",
		thEval.DetectionRate()*100, stats.NewECDF(thEval.LatenciesMicros).Quantile(0.5))
	fmt.Printf("EWMA detector:      %.0f%% detected (smoothing erases µbursts)\n",
		ewEval.DetectionRate()*100)

	fmt.Println("\nfraction of bursts over before a congestion signal could reach the sender:")
	for _, rtt := range []simclock.Duration{50 * simclock.Microsecond, 100 * simclock.Microsecond, 250 * simclock.Microsecond} {
		frac := detect.FractionOverBeforeSignal(durations, rtt/2)
		fmt.Printf("  RTT %6v: %3.0f%%\n", rtt, frac*100)
	}
}
