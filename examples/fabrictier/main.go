// Fabrictier runs the future-work experiment from §4.2: measure one tier
// above the ToRs. Four racks (hadoop and cache) run under a fabric-switch
// tier wired as a folded Clos; the same burstiness statistics are then
// computed for ToR server ports, ToR uplinks, and fabric spine ports.
//
// Expected outcome (the paper cites Jupiter [19] for it): ToR ports are
// the burstiest — aggregation across racks statistically multiplexes
// µbursts away, so spine ports run hotter on average yet far smoother.
package main

import (
	"fmt"
	"log"

	"mburst/internal/fabric"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

func main() {
	var cfg fabric.Config
	apps := []workload.App{workload.Hadoop, workload.Cache, workload.Hadoop, workload.Web}
	for i, app := range apps {
		cfg.RackConfigs = append(cfg.RackConfigs, simnet.Config{
			Rack:   topo.Default(16),
			Params: workload.DefaultParams(app),
			Seed:   uint64(7000 + i),
			RackID: i,
		})
	}
	cluster, err := fabric.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d racks (%v), %d fabric switches, %d spine ports each\n",
		cluster.NumRacks(), apps, cluster.NumFabrics(), 2)

	cluster.Run(30 * simclock.Millisecond) // warmup
	cmp, err := fabric.CompareTiers(cluster, 400*simclock.Millisecond, 300*simclock.Microsecond, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(cmp.Format())
	fmt.Println()
	if cmp.Spine.CoV < cmp.ToR.CoV {
		fmt.Printf("=> ToR ports are %.1f× more variable than spine ports: the µburst problem lives at the edge.\n",
			cmp.ToR.CoV/cmp.Spine.CoV)
	}
	var fabricDrops uint64
	for f := 0; f < cluster.NumFabrics(); f++ {
		fabricDrops += cluster.Fabric(f).TotalDropped()
	}
	var torDrops uint64
	for r := 0; r < cluster.NumRacks(); r++ {
		torDrops += cluster.Rack(r).Switch().TotalDropped()
	}
	fmt.Printf("congestion discards: ToR tier %d, fabric tier %d (\"the majority of congestion occurs at that layer\", §1)\n",
		torDrops, fabricDrops)
}
