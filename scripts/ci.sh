#!/bin/sh
# CI gate: vet, build, and run the full test suite under the race
# detector. Run from the repository root (or any subdirectory).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
