#!/bin/sh
# CI gate: vet, build, and run the full test suite under the race
# detector. Run from the repository root (or any subdirectory).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Track serial-vs-parallel campaign wall-clock across PRs. The artifact
# records the host CPU count; speedup is only meaningful on multi-core
# runners.
MBURST_BENCH_OUT="$PWD/BENCH_runner.json" \
	go test -run TestRunnerBenchArtifact -count=1 ./internal/core
