#!/bin/sh
# CI gate: formatting, vet, mblint, build, and the full test suite under
# the race detector with shuffled test order. Run from the repository
# root (or any subdirectory).
set -eux

cd "$(dirname "$0")/.."

# Formatting drift fails the build (gofmt prints offending files).
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt needed on:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

go vet ./...
go build ./...

# mblint enforces the determinism/clock/RNG/telemetry invariants plus
# the interprocedural rules — clockflow taint, hotpath zero-alloc,
# lock-order cycles (see README "Static analysis"). Together with go vet
# above it is the blocking static-analysis gate. The JSON report is
# published as a CI artifact: {"findings": [...], "rule_counts": {...},
# "callgraph": {packages, functions, static_edges, dynamic_edges}} —
# findings is an empty array when clean, and any finding blocks the
# build.
if ! go run ./cmd/mblint -json ./... > LINT_findings.json; then
	echo "mblint findings:" >&2
	cat LINT_findings.json >&2
	exit 1
fi

# -shuffle=on catches order-dependent tests; go test logs the seed for
# reproduction.
go test -race -shuffle=on ./...

# Track serial-vs-parallel campaign wall-clock across PRs. The artifact
# records the host CPU count; speedup is only meaningful on multi-core
# runners.
MBURST_BENCH_OUT="$PWD/BENCH_runner.json" \
	go test -run TestRunnerBenchArtifact -count=1 ./internal/core

# Streaming-engine memory gate: batch vs -stream analysis of the same
# recorded campaign. Fails the build unless streaming peaks >= 5x below
# the batch path's whole-window materialization (and allocates >= 5x
# less). Runs without -race: the measurement times the allocator itself.
MBURST_STREAM_BENCH_OUT="$PWD/BENCH_stream.json" \
	go test -run TestStreamingMemoryArtifact -count=1 ./internal/core

# Pipeline-tracing overhead gate: the polling hot path with span
# recording must stay within 5% of untraced. Runs without -race for the
# same reason as the memory gate — it times the hot loop itself.
MBURST_PTRACE_BENCH_OUT="$PWD/BENCH_ptrace.json" \
	go test -run TestPtraceOverheadArtifact -count=1 ./internal/collector

# Wire-format gate: MBW3 must put >= 4x fewer bytes on the wire than
# MBW2 on the full-counter Web workload, and the steady-state encode and
# ingest paths must allocate nothing per batch. The artifact records the
# ingest-throughput ceiling alongside. Runs without -race: it counts
# allocations on the hot paths.
MBURST_WIRE_BENCH_OUT="$PWD/BENCH_wire.json" \
	go test -run TestWireBenchArtifact -count=1 ./internal/core

# Chaos soak: generated fault schedules against the collection pipeline,
# asserting byte-exact recovery against ASIC ground truth, zero-fault
# byte-identity, epoch-gated restart recovery, and collector-crash
# recovery (kill / torn-write / short-write schedules against the
# durable archive + checkpoint plane). Bounded runtime; summary
# published as an artifact.
MBURST_FAULT_OUT="$PWD/FAULT_soak.json" \
	go test -race -run 'TestChaosSoak|TestAgentRestartRecovery|TestCollectorCrashSoak' -count=1 ./internal/fault

# Fleet crash soak: the same crash kinds against the sharded collection
# plane — generated kill / torn / short-write schedules striking
# collector shards mid-campaign, each shard resuming from its archive +
# checkpoint. Merges the "fleet" ledger into the same artifact.
MBURST_FAULT_OUT="$PWD/FAULT_soak.json" \
	go test -race -run 'TestFleetCrashSoak' -count=1 ./internal/core

# Durability gate: every seeded crash schedule — single-collector and
# fleet ledgers both — must have recovered byte-exact state against its
# uninterrupted oracle (hence exactly two "byte_exact": true markers).
[ "$(grep -c '"byte_exact": true' FAULT_soak.json)" -eq 2 ]

# Fleet-scale gate: the ISSUE's reference campaign — 1000 racks fanned
# over 8 collector shards in-process — must complete with fleet figures
# bit-identical to the single-collector oracle, and the artifact records
# ingest throughput, checkpoint-merge wall-clock, and bytes fanned in
# (floors enforced inside the test).
MBURST_FLEET_BENCH_OUT="$PWD/BENCH_fleet.json" \
	go test -run TestFleetBenchArtifact -count=1 ./internal/core
grep -q '"byte_exact": true' BENCH_fleet.json
