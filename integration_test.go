package mburst

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/core"
	"mburst/internal/replay"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// TestEndToEndPipeline exercises the complete §4.1 deployment in one test:
// a simulated rack is polled by the collection framework, samples cross a
// real TCP socket to a collector service, land in a trace directory, are
// replayed over TCP a second time, and the final analysis of the replayed
// stream must agree exactly with an in-process analysis of the original
// counter timeline.
func TestEndToEndPipeline(t *testing.T) {
	// --- 1. Simulate and poll, streaming to a live collector. -----------
	sim, err := simnet.New(simnet.Config{
		Rack:   topo.Default(16),
		Params: workload.DefaultParams(workload.Hadoop),
		Seed:   424242,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &collector.MemSink{}
	stats := &collector.IngestStats{}
	srv := collector.Serve(ln, stats.Wrap(sink.Handle))
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := collector.NewClient(conn, 5, 512)

	const port = 1
	var local []wire.Sample // ground truth captured in-process
	tee := collector.EmitterFunc(func(s wire.Sample) {
		local = append(local, s)
		client.Emit(s)
	})
	poller, err := collector.NewPoller(collector.PollerConfig{
		Interval:      25 * simclock.Microsecond,
		Counters:      []collector.CounterSpec{{Port: port, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
	}, sim.Switch(), rng.New(7), tee)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(20 * simclock.Millisecond)
	poller.Install(sim.Scheduler())
	sim.Run(200 * simclock.Millisecond)
	poller.Stop()
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for len(sink.Samples()) < len(local) {
		if time.Now().After(deadline) {
			t.Fatalf("collector received %d/%d samples", len(sink.Samples()), len(local))
		}
		time.Sleep(time.Millisecond)
	}
	received := sink.Samples()
	for i := range local {
		if received[i] != local[i] {
			t.Fatalf("sample %d changed in transit", i)
		}
	}
	if stats.Snapshot().Samples != uint64(len(local)) {
		t.Errorf("ingest stats = %+v", stats.Snapshot())
	}

	// --- 2. Persist as a campaign trace. --------------------------------
	dir := filepath.Join(t.TempDir(), "campaign")
	tw, err := trace.Create(dir, trace.Meta{
		App: "hadoop", NumServers: 16, NumUplinks: 4,
		ServerSpeed: topo.Gbps10, UplinkSpeed: topo.Gbps40,
		Interval: 25 * simclock.Microsecond, WindowDur: 200 * simclock.Millisecond,
		Windows: 1, Seed: 424242,
		Counters: []collector.CounterSpec{{Port: port, Dir: asic.TX, Kind: asic.KindBytes}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteWindow(0, 5, received); err != nil {
		t.Fatal(err)
	}

	// --- 3. Replay the trace over TCP into a second collector. ----------
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink2 := &collector.MemSink{}
	srv2 := collector.Serve(ln2, sink2.Handle)
	defer srv2.Close()
	conn2, err := net.Dial("tcp", srv2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	st, err := replay.Run(context.Background(), dir, conn2, replay.Options{Unpaced: true})
	if err != nil {
		t.Fatal(err)
	}
	conn2.Close()
	for len(sink2.Samples()) < st.Samples {
		if time.Now().After(deadline) {
			t.Fatalf("replay delivered %d/%d", len(sink2.Samples()), st.Samples)
		}
		time.Sleep(time.Millisecond)
	}

	// --- 4. Analyses of original and twice-transported streams agree. ---
	speed := sim.Switch().Port(port).Speed()
	a, err := analysis.UtilizationSeries(local, speed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := analysis.UtilizationSeries(sink2.Samples(), speed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("series lengths differ: %d vs %d", len(a), len(b))
	}
	burstsA := analysis.Bursts(a, 0)
	burstsB := analysis.Bursts(b, 0)
	if len(burstsA) != len(burstsB) {
		t.Fatalf("burst counts differ: %d vs %d", len(burstsA), len(burstsB))
	}
	for i := range burstsA {
		if burstsA[i] != burstsB[i] {
			t.Fatalf("burst %d differs after the round trip", i)
		}
	}
	if len(burstsA) == 0 {
		t.Error("no bursts observed on a hadoop port in 200ms; pipeline or workload broken")
	}
}

// TestQuickReportDeterminism runs the smallest full-figure campaign twice
// and requires bit-identical headline numbers — the repository's umbrella
// reproducibility guarantee.
func TestQuickReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full quick campaigns")
	}
	run := func() (float64, float64) {
		exp, err := core.NewExperiment(core.QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		fig3, err := exp.Fig3BurstDurations(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		t2, err := exp.Table2BurstMarkov(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return fig3.Durations[workload.Hadoop].Quantile(0.9),
			t2.Models[workload.Web].LikelihoodRatio()
	}
	p90a, ra := run()
	p90b, rb := run()
	if p90a != p90b || ra != rb {
		t.Fatalf("non-deterministic: p90 %v/%v, ratio %v/%v", p90a, p90b, ra, rb)
	}
}
