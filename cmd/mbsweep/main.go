// Command mbsweep runs parameter sweeps over the reproduction and prints
// one table per sweep.
//
// Usage:
//
//	mbsweep -sweep interval|buffer|oversub|threshold|all [-app hadoop]
//	        [-window 250ms] [-servers 32] [-seed 1] [-workers N]
//
// Sweeps:
//
//	interval    polling interval vs. miss rate / visible bursts (Table 1+)
//	buffer      shared-buffer size vs. drops and peak occupancy (§7)
//	oversub     servers-per-rack vs. uplink heat (§6.3)
//	threshold   burst criterion vs. burst statistics (§5.4)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mburst/internal/core"
	"mburst/internal/simclock"
	"mburst/internal/sweep"
	"mburst/internal/workload"
)

func main() {
	which := flag.String("sweep", "all", "interval, buffer, oversub, threshold, all")
	appName := flag.String("app", "hadoop", "application rack type")
	window := flag.Duration("window", 0, "window duration (0 = default)")
	servers := flag.Int("servers", 0, "servers per rack (0 = default)")
	seed := flag.Uint64("seed", 0, "seed (0 = default)")
	workers := flag.Int("workers", 0, "concurrent campaign cells (0 = all CPUs)")
	flag.Parse()

	app, err := workload.ParseApp(*appName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbsweep: %v\n", err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Racks, cfg.Windows = 1, 1 // sweeps vary a knob, not the campaign size
	if *window > 0 {
		cfg.WindowDur = simclock.FromStd(*window)
	}
	if *servers > 0 {
		cfg.Servers = *servers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	us := func(n int64) simclock.Duration { return simclock.Micros(n) }
	run := func(name string, f func() (sweep.Result, error)) {
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbsweep: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
		fmt.Println()
	}

	start := time.Now()
	if *which == "interval" || *which == "all" {
		run("interval", func() (sweep.Result, error) {
			return sweep.SamplingInterval(ctx, cfg, app,
				[]simclock.Duration{us(1), us(5), us(10), us(25), us(50), us(100), us(250), us(1000)})
		})
	}
	if *which == "buffer" || *which == "all" {
		run("buffer", func() (sweep.Result, error) {
			return sweep.BufferSize(ctx, cfg, app,
				[]float64{128 << 10, 512 << 10, 1536 << 10, 4 << 20, 16 << 20})
		})
	}
	if *which == "oversub" || *which == "all" {
		run("oversub", func() (sweep.Result, error) {
			return sweep.Oversubscription(ctx, cfg, app, []int{8, 16, 32, 48, 64})
		})
	}
	if *which == "threshold" || *which == "all" {
		run("threshold", func() (sweep.Result, error) {
			return sweep.HotThreshold(ctx, cfg, app, []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
		})
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
}
