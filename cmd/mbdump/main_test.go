package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/shard"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenFleetDir lays down a tiny fleet campaign directory by hand:
// four racks routed over two shards by a real placement, each shard
// archive holding its racks' batches in admission (time) order. The
// content is a pure function of the constants below, so the merged
// dump is byte-stable.
func goldenFleetDir(t *testing.T) string {
	t.Helper()
	const racks, shards = 4, 2
	dir := t.TempDir()
	pl, err := shard.Uniform(shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	writers := make([]*trace.ArchiveWriter, shards)
	counts := make([]struct{ batches, samples uint64 }, shards)
	for s := 0; s < shards; s++ {
		w, err := trace.CreateArchive(filepath.Join(dir, pl.Name(s)), trace.ArchiveConfig{})
		if err != nil {
			t.Fatal(err)
		}
		writers[s] = w
	}
	// Admission order per shard: batch rounds outer, racks inner —
	// the interleaving a live fan-in produces.
	for i := 0; i < 3; i++ {
		for r := 0; r < racks; r++ {
			owner := pl.ShardOf(uint32(r))
			b := &wire.Batch{Rack: uint32(r), Epoch: 1}
			for k := 0; k < 2; k++ {
				n := i*2 + k
				b.Samples = append(b.Samples, wire.Sample{
					Time:  simclock.Epoch.Add(simclock.Micros(int64(n) * 25)),
					Port:  uint16(1 + r%2),
					Dir:   asic.TX,
					Kind:  asic.KindBytes,
					Value: uint64(r+1) * uint64(n) * 1500,
				})
			}
			if err := writers[owner].WriteBatch(b); err != nil {
				t.Fatal(err)
			}
			counts[owner].batches++
			counts[owner].samples += uint64(len(b.Samples))
		}
	}
	man := trace.FleetManifest{Racks: racks, Placement: pl}
	for s := 0; s < shards; s++ {
		if err := writers[s].Close(); err != nil {
			t.Fatal(err)
		}
		man.Shards = append(man.Shards, trace.FleetShard{
			ID: s, Name: pl.Name(s), Dir: pl.Name(s),
			Batches: counts[s].batches, Samples: counts[s].samples,
		})
	}
	if err := trace.WriteFleetManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestFleetDumpGolden pins the merged admission-order presentation of a
// fleet directory: racks ascending, per-rack batches in time order,
// totals summed across shards — byte-for-byte.
func TestFleetDumpGolden(t *testing.T) {
	dir := goldenFleetDir(t)
	var buf bytes.Buffer
	if err := run(&buf, dir, 3, false); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fleet.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to write it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("fleet dump diverges from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestFleetDumpQuietTotals sanity-checks the quiet path over the same
// directory: only the totals block, correct sums.
func TestFleetDumpQuietTotals(t *testing.T) {
	dir := goldenFleetDir(t)
	var buf bytes.Buffer
	if err := run(&buf, dir, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "total: 12 batches, 24 samples") {
		t.Errorf("quiet totals wrong:\n%s", out)
	}
	if strings.Contains(out, "batch ") || strings.Contains(out, "fleet:") {
		t.Errorf("quiet dump leaked per-batch or header lines:\n%s", out)
	}
}

// TestFleetDumpPlacementViolation corrupts the routing — a batch landed
// in the wrong shard's archive — and expects the merged read to refuse.
func TestFleetDumpPlacementViolation(t *testing.T) {
	dir := goldenFleetDir(t)
	man, ok, err := trace.ReadFleetManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	// Find a rack and a shard that does NOT own it, and plant a batch.
	var victim uint32
	var wrong int
	for r := uint32(0); r < uint32(man.Racks); r++ {
		if s := man.Placement.ShardOf(r); s != 0 {
			victim, wrong = r, 0
			break
		}
	}
	w, _, err := trace.ResumeArchive(filepath.Join(dir, man.Shards[wrong].Dir), trace.ArchiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(&wire.Batch{Rack: victim, Epoch: 1, Samples: []wire.Sample{
		{Time: simclock.Epoch, Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Value: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, dir, 0, true); err == nil ||
		!strings.Contains(err.Error(), "placement violation") {
		t.Fatalf("misrouted batch not rejected: %v", err)
	}
}
