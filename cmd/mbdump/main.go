// Command mbdump inspects a raw batch archive — the file mbcollectd
// -out writes, any concatenation of wire batches, or a segmented
// archive directory written by mbcollectd -archive: per-batch
// summaries, per-counter totals, and optionally the first samples
// decoded.
//
// Usage:
//
//	mbdump -in samples.mbw [-samples 10] [-quiet]
//	mbdump -in /var/lib/mburst/archive   # segmented archive directory
//
// A directory is decoded through the archive manifest in segment order
// (the collector's admission order). Run mbcollectd -resume (or
// trace.RecoverArchive) first if the directory crashed mid-write;
// mbdump treats a torn tail as an error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mburst/internal/analysis"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

func main() {
	in := flag.String("in", "", "batch file or archive directory to inspect (required)")
	showSamples := flag.Int("samples", 0, "print the first N samples decoded")
	quiet := flag.Bool("quiet", false, "suppress per-batch lines, print only totals")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "mbdump: -in is required")
		os.Exit(2)
	}

	var (
		batches, samples int
		printed          int
		perSeries        = map[analysis.SeriesKey]int{}
		firstT, lastT    simclock.Time
		seen             bool
	)
	dump := func(b *wire.Batch) {
		batches++
		samples += len(b.Samples)
		if !*quiet {
			var span simclock.Duration
			if n := len(b.Samples); n > 0 {
				span = b.Samples[n-1].Time.Sub(b.Samples[0].Time)
			}
			fmt.Printf("batch %4d: rack %d, %5d samples, %v of virtual time\n",
				batches, b.Rack, len(b.Samples), span)
		}
		for _, s := range b.Samples {
			if !seen || s.Time < firstT {
				firstT = s.Time
			}
			if !seen || s.Time > lastT {
				lastT = s.Time
			}
			seen = true
			perSeries[analysis.SeriesKey{Port: s.Port, Dir: s.Dir, Kind: s.Kind}]++
			if printed < *showSamples {
				printed++
				fmt.Printf("  sample t=%v port=%d %s/%s value=%d missed=%d\n",
					s.Time, s.Port, s.Dir, s.Kind, s.Value, s.Missed)
			}
		}
	}

	if fi, err := os.Stat(*in); err == nil && fi.IsDir() {
		if err := trace.IterArchive(*in, func(b *wire.Batch) error {
			dump(b)
			return nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "mbdump: after %d batches: %v\n", batches, err)
			os.Exit(1)
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbdump: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r := wire.NewReader(f)
		for {
			b, err := r.ReadBatch()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				fmt.Fprintf(os.Stderr, "mbdump: after %d batches: %v\n", batches, err)
				os.Exit(1)
			}
			dump(b)
		}
	}

	fmt.Printf("\ntotal: %d batches, %d samples", batches, samples)
	if seen {
		fmt.Printf(", virtual span %v", lastT.Sub(firstT))
	}
	fmt.Println()
	for _, k := range analysis.SortedKeys(perSeries) {
		fmt.Printf("  %-28s %d samples\n", k.String(), perSeries[k])
	}
}
