// Command mbdump inspects a raw batch archive — the file mbcollectd
// -out writes, any concatenation of wire batches, a segmented archive
// directory written by mbcollectd -archive, or a fleet campaign
// directory written by mbfleet -out: per-batch summaries, per-counter
// totals, and optionally the first samples decoded.
//
// Usage:
//
//	mbdump -in samples.mbw [-samples 10] [-quiet]
//	mbdump -in /var/lib/mburst/archive   # segmented archive directory
//	mbdump -in /var/lib/mburst/fleet     # fleet campaign directory
//
// A plain directory is decoded through the archive manifest in segment
// order (the collector's admission order). A fleet directory (one
// holding a fleet.json manifest) is decoded through every shard
// archive and presented as one merged admission-order stream — racks
// ascending, each rack's batches in its owning shard's admission
// order — so a sharded campaign reads exactly like a single-collector
// one. Run mbcollectd -resume (or trace.RecoverArchive) first if a
// directory crashed mid-write; mbdump treats a torn tail as an error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mburst/internal/analysis"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

func main() {
	in := flag.String("in", "", "batch file, archive directory, or fleet campaign directory to inspect (required)")
	showSamples := flag.Int("samples", 0, "print the first N samples decoded")
	quiet := flag.Bool("quiet", false, "suppress per-batch lines, print only totals")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "mbdump: -in is required")
		os.Exit(2)
	}
	if err := run(os.Stdout, *in, *showSamples, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "mbdump: %v\n", err)
		os.Exit(1)
	}
}

// run decodes the input and writes the report to w. Split from main so
// the golden test drives the exact production path.
func run(w io.Writer, in string, showSamples int, quiet bool) error {
	var (
		batches, samples int
		printed          int
		perSeries        = map[analysis.SeriesKey]int{}
		firstT, lastT    simclock.Time
		seen             bool
	)
	dump := func(b *wire.Batch) {
		batches++
		samples += len(b.Samples)
		if !quiet {
			var span simclock.Duration
			if n := len(b.Samples); n > 0 {
				span = b.Samples[n-1].Time.Sub(b.Samples[0].Time)
			}
			fmt.Fprintf(w, "batch %4d: rack %d, %5d samples, %v of virtual time\n",
				batches, b.Rack, len(b.Samples), span)
		}
		for _, s := range b.Samples {
			if !seen || s.Time < firstT {
				firstT = s.Time
			}
			if !seen || s.Time > lastT {
				lastT = s.Time
			}
			seen = true
			perSeries[analysis.SeriesKey{Port: s.Port, Dir: s.Dir, Kind: s.Kind}]++
			if printed < showSamples {
				printed++
				fmt.Fprintf(w, "  sample t=%v port=%d %s/%s value=%d missed=%d\n",
					s.Time, s.Port, s.Dir, s.Kind, s.Value, s.Missed)
			}
		}
	}

	if fi, err := os.Stat(in); err == nil && fi.IsDir() {
		iter := trace.IterArchive
		if man, ok, err := trace.ReadFleetManifest(in); err != nil {
			return err
		} else if ok {
			iter = trace.IterFleet
			if !quiet {
				fmt.Fprintf(w, "fleet: %d racks over %d shards, placement v%d seed %d\n",
					man.Racks, len(man.Shards), man.Placement.Version, man.Placement.Seed)
			}
		}
		if err := iter(in, func(b *wire.Batch) error {
			dump(b)
			return nil
		}); err != nil {
			return fmt.Errorf("after %d batches: %w", batches, err)
		}
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r := wire.NewReader(f)
		for {
			b, err := r.ReadBatch()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return fmt.Errorf("after %d batches: %w", batches, err)
			}
			dump(b)
		}
	}

	fmt.Fprintf(w, "\ntotal: %d batches, %d samples", batches, samples)
	if seen {
		fmt.Fprintf(w, ", virtual span %v", lastT.Sub(firstT))
	}
	fmt.Fprintln(w)
	for _, k := range analysis.SortedKeys(perSeries) {
		fmt.Fprintf(w, "  %-28s %d samples\n", k.String(), perSeries[k])
	}
	return nil
}
