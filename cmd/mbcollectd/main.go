// Command mbcollectd is the standalone collector service: it accepts TCP
// connections from switch-side sampling clients (collector.Client),
// decodes their batch streams, and either archives the raw batches to a
// file or prints periodic ingest statistics.
//
// Usage:
//
//	mbcollectd -listen 127.0.0.1:9900 [-out samples.mbw] [-stats 5s]
//	           [-http :9901] [-tracing] [-tracerate R] [-tracecap N]
//
// With -http the daemon serves its debug surface (see README
// "Observability"): Prometheus metrics at /metrics, a JSON snapshot at
// /stats, the legacy ingest snapshot at /stats/ingest, /healthz, and
// /debug/pprof/. With -figures it additionally runs every ingested
// byte-counter sample through the streaming analysis accumulators and
// serves the running Fig 3/4/6/9 statistics at /figures (see README
// "Streaming analysis").
//
// With -tracing the daemon records pipeline spans (internal/ptrace) for
// each ingested batch — server.ingest, epoch.gate verdicts, archive
// writes, and figure application — and serves them at /spans (JSON) and
// /tracez (waterfall) on the debug mux; cmd/mbtrace renders either.
//
// Shut down with SIGINT/SIGTERM; the listener drains connections before
// exiting.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/collector"
	"mburst/internal/obs"
	"mburst/internal/ptrace"
	"mburst/internal/topo"
	"mburst/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9900", "listen address")
	out := flag.String("out", "", "optional file to append raw batches to")
	wireFmt := flag.String("wire", "", "wire format for the -out archive; ingest accepts every format regardless (mbw1, mbw2, mbw3; default mbw2)")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats log interval")
	epochGate := flag.Bool("epochgate", false, "drop batches from superseded agent epochs and time-regressing duplicates")
	httpAddr := flag.String("http", "", "debug HTTP address (/metrics, /stats, /healthz, /debug/pprof/)")
	figures := flag.Bool("figures", false, "serve live streaming figures at /figures (needs -http)")
	servers := flag.Int("servers", 16, "servers per rack, for the /figures port speed map")
	threshold := flag.Float64("threshold", analysis.DefaultHotThreshold, "hot threshold for /figures")
	tracing := flag.Bool("tracing", false, "record pipeline spans and serve /spans and /tracez (needs -http)")
	traceRate := flag.Float64("tracerate", 0, "fraction of batch traces kept by the deterministic head sampler (0 = all)")
	traceCap := flag.Int("tracecap", ptrace.DefaultCapacity, "span ring capacity")
	flag.Parse()

	logger := obs.DaemonLogger("mbcollectd")
	reg := obs.NewRegistry()
	obs.RegisterGoRuntime(reg)

	var tracer *ptrace.Tracer
	if *tracing {
		tracer = ptrace.New(ptrace.Config{
			Capacity:   *traceCap,
			SampleRate: *traceRate,
			Metrics:    reg,
		})
	}

	// mu serializes batch archival and, on shutdown, the file close — a
	// connection goroutine must never race WriteBatch against Close.
	var (
		mu    sync.Mutex
		fileW *wire.Writer
		outF  *os.File
	)
	if *out != "" {
		var format wire.Format
		if *wireFmt != "" {
			var err error
			if format, err = wire.ParseFormat(*wireFmt); err != nil {
				logger.Error("parsing wire format", "err", err)
				os.Exit(2)
			}
		}
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("opening output file", "err", err)
			os.Exit(1)
		}
		// Archival transcodes: whatever format a client streamed in, the
		// archive is written uniformly in the chosen format.
		fileW, err = wire.NewWriterFormat(f, format)
		if err != nil {
			logger.Error("archive writer", "err", err)
			os.Exit(1)
		}
		outF = f
	}

	stats := &collector.IngestStats{}
	stats.Attach(reg)
	archive := func(b *wire.Batch) {
		if fileW != nil {
			mu.Lock()
			if err := fileW.WriteBatch(b); err != nil {
				logger.Error("archiving batch", "err", err)
			}
			mu.Unlock()
		}
	}
	if fileW != nil {
		archive = collector.TraceStage(tracer, ptrace.StageArchiveWrite, archive)
	}
	handler := stats.Wrap(archive)

	var figs *collector.LiveFigures
	if *figures {
		rack := topo.Default(*servers)
		lf, err := collector.NewLiveFigures(collector.LiveFiguresConfig{
			SpeedOf: func(_ uint32, port uint16) uint64 {
				if rack.IsUplink(int(port)) {
					return rack.UplinkSpeed
				}
				return rack.ServerSpeed
			},
			IsUplink:  func(_ uint32, port uint16) bool { return rack.IsUplink(int(port)) },
			Threshold: *threshold,
			Tracer:    tracer,
		})
		if err != nil {
			logger.Error("live figures", "err", err)
			os.Exit(1)
		}
		figs = lf
		handler = figs.Wrap(handler)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listening", "addr", *listen, "err", err)
		os.Exit(1)
	}
	srv := collector.ServeConfigured(ln, handler, collector.ServerConfig{
		Metrics:   collector.NewServerMetrics(reg),
		EpochGate: *epochGate,
		Tracer:    tracer,
	})
	logger.Info("listening", "addr", srv.Addr().String())

	if *httpAddr != "" {
		mux := obs.NewDebugMux(reg, nil)
		mux.Handle("/stats/ingest", stats)
		if figs != nil {
			mux.Handle("/figures", figs)
		}
		if tracer != nil {
			mux.Handle("/spans", tracer.SpansHandler())
			mux.Handle("/tracez", tracer.TracezHandler())
		}
		ds, err := obs.StartDebug(*httpAddr, mux)
		if err != nil {
			logger.Error("debug http", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		defer ds.Close()
		logger.Info("debug http listening", "url", fmt.Sprintf("http://%s/metrics", ds.Addr()))
	}

	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	for {
		select {
		case <-ticker.C:
			snap := stats.Snapshot()
			logger.Info("ingest", "batches", snap.Batches, "samples", snap.Samples, "racks", len(snap.PerRack))
			if err := srv.LastErr(); err != nil {
				logger.Warn("stream error", "err", err)
			}
		case s := <-sig:
			logger.Info("draining", "signal", s.String())
			if err := srv.Close(); err != nil {
				logger.Error("closing listener", "err", err)
			}
			if outF != nil {
				// Serialize with any in-flight WriteBatch and surface the
				// final sync error — a silently truncated archive is worse
				// than a noisy exit.
				mu.Lock()
				syncErr := outF.Sync()
				closeErr := outF.Close()
				fileW = nil
				mu.Unlock()
				if syncErr != nil {
					logger.Error("syncing output file", "err", syncErr)
				}
				if closeErr != nil {
					logger.Error("closing output file", "err", closeErr)
				}
			}
			snap := stats.Snapshot()
			logger.Info("final", "batches", snap.Batches, "samples", snap.Samples)
			return
		}
	}
}
