// Command mbcollectd is the standalone collector service: it accepts TCP
// connections from switch-side sampling clients (collector.Client),
// decodes their batch streams, and either archives the raw batches to a
// file or prints periodic ingest statistics.
//
// Usage:
//
//	mbcollectd -listen 127.0.0.1:9900 [-out samples.mbw] [-stats 5s]
//
// Shut down with SIGINT/SIGTERM; the listener drains connections before
// exiting.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mburst/internal/collector"
	"mburst/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9900", "listen address")
	out := flag.String("out", "", "optional file to append raw batches to")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	httpAddr := flag.String("http", "", "optional address serving GET /stats as JSON")
	flag.Parse()

	var (
		mu     sync.Mutex
		fileW  *wire.Writer
		closer *os.File
	)
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbcollectd: %v\n", err)
			os.Exit(1)
		}
		fileW = wire.NewWriter(f)
		closer = f
	}

	stats := &collector.IngestStats{}
	handler := stats.Wrap(func(b *wire.Batch) {
		if fileW != nil {
			mu.Lock()
			if err := fileW.WriteBatch(b); err != nil {
				fmt.Fprintf(os.Stderr, "mbcollectd: write: %v\n", err)
			}
			mu.Unlock()
		}
	})
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", stats)
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "mbcollectd: http: %v\n", err)
			}
		}()
		fmt.Printf("mbcollectd: stats at http://%s/stats\n", *httpAddr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbcollectd: %v\n", err)
		os.Exit(1)
	}
	srv := collector.Serve(ln, handler)
	fmt.Printf("mbcollectd: listening on %s\n", srv.Addr())

	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	for {
		select {
		case <-ticker.C:
			snap := stats.Snapshot()
			fmt.Printf("mbcollectd: %d batches, %d samples received\n", snap.Batches, snap.Samples)
			if err := srv.LastErr(); err != nil {
				fmt.Fprintf(os.Stderr, "mbcollectd: stream error: %v\n", err)
			}
		case s := <-sig:
			fmt.Printf("mbcollectd: %v, draining\n", s)
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mbcollectd: close: %v\n", err)
			}
			if closer != nil {
				closer.Close()
			}
			snap := stats.Snapshot()
			fmt.Printf("mbcollectd: final: %d batches, %d samples\n", snap.Batches, snap.Samples)
			return
		}
	}
}
