// Command mbcollectd is the standalone collector service: it accepts TCP
// connections from switch-side sampling clients (collector.Client),
// decodes their batch streams, and either archives the raw batches —
// durably, with crash recovery — or prints periodic ingest statistics.
//
// Usage:
//
//	mbcollectd -listen 127.0.0.1:9900 [-archive DIR [-resume]] [-out samples.mbw]
//	           [-checkpoint N] [-stats 5s] [-http :9901]
//	           [-tracing] [-tracerate R] [-tracecap N]
//	           [-shard I -shards M [-placementseed S]]
//
// With -shard/-shards the daemon is one shard of a fleet collection
// plane: the rendezvous placement (internal/shard, seeded by
// -placementseed, shared with the agents) assigns every rack to exactly
// one shard, and batches from racks this shard does not own are dropped
// and counted as misrouted — a placement-generation mismatch signal —
// instead of polluting the shard's accumulators. The active placement
// is served at /placement on the debug mux.
//
// With -archive the daemon runs the durable collection plane: batches
// flow through the epoch gate into a segmented, fsynced, crash-safe
// archive (internal/trace), and every -checkpoint batches the volatile
// state (live figures, ingest counters, gate horizons) is checkpointed
// atomically next to it. After a crash, -resume recovers the archive
// (truncating any torn tail), restores the last checkpoint, and replays
// the un-checkpointed archive tail, so the daemon restarts with exactly
// the state it would have had — agents that retransmit their spool are
// deduplicated by the restored gate. A failed archive write or sync is
// fatal: the daemon exits non-zero rather than silently dropping data.
//
// With -http the daemon serves its debug surface (see README
// "Observability"): Prometheus metrics at /metrics, a JSON snapshot at
// /stats, the legacy ingest snapshot at /stats/ingest, /healthz, and
// /debug/pprof/. With -figures it additionally runs every ingested
// byte-counter sample through the streaming analysis accumulators and
// serves the running Fig 3/4/6/9 statistics at /figures (see README
// "Streaming analysis").
//
// With -tracing the daemon records pipeline spans (internal/ptrace) for
// each ingested batch — server.ingest, epoch.gate verdicts, archive
// writes, checkpoints — and serves them at /spans (JSON) and /tracez
// (waterfall) on the debug mux; cmd/mbtrace renders either.
//
// Shut down with SIGINT/SIGTERM; the listener drains connections, the
// archive seals, and a final checkpoint is written before exiting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/collector"
	"mburst/internal/obs"
	"mburst/internal/ptrace"
	"mburst/internal/shard"
	"mburst/internal/topo"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:9900", "listen address")
	archiveDir := flag.String("archive", "", "durable archive directory (segmented, fsynced, crash-recoverable)")
	resume := flag.Bool("resume", false, "recover the -archive directory and restore the last checkpoint before serving")
	checkpointEvery := flag.Int("checkpoint", collector.DefaultCheckpointEvery, "checkpoint the collector state every N admitted batches (-archive mode)")
	out := flag.String("out", "", "optional flat file to append raw batches to (no crash safety; prefer -archive)")
	wireFmt := flag.String("wire", "", "wire format for the archive; ingest accepts every format regardless (mbw1, mbw2, mbw3; default mbw2)")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats log interval")
	epochGate := flag.Bool("epochgate", false, "drop batches from superseded agent epochs and time-regressing duplicates (implied by -archive)")
	httpAddr := flag.String("http", "", "debug HTTP address (/metrics, /stats, /healthz, /debug/pprof/)")
	figures := flag.Bool("figures", false, "serve live streaming figures at /figures (needs -http)")
	servers := flag.Int("servers", 16, "servers per rack, for the /figures port speed map")
	threshold := flag.Float64("threshold", analysis.DefaultHotThreshold, "hot threshold for /figures")
	tracing := flag.Bool("tracing", false, "record pipeline spans and serve /spans and /tracez (needs -http)")
	traceRate := flag.Float64("tracerate", 0, "fraction of batch traces kept by the deterministic head sampler (0 = all)")
	traceCap := flag.Int("tracecap", ptrace.DefaultCapacity, "span ring capacity")
	shardID := flag.Int("shard", -1, "this collector's shard index in the fleet placement (requires -shards)")
	numShards := flag.Int("shards", 0, "fleet shard count; with -shard, drop batches from racks the placement owns elsewhere")
	placementSeed := flag.Uint64("placementseed", 1, "rendezvous placement seed (must match the agents')")
	flag.Parse()

	logger := obs.DaemonLogger("mbcollectd")
	reg := obs.NewRegistry()
	obs.RegisterGoRuntime(reg)

	var tracer *ptrace.Tracer
	if *tracing {
		tracer = ptrace.New(ptrace.Config{
			Capacity:   *traceCap,
			SampleRate: *traceRate,
			Metrics:    reg,
		})
	}

	var format wire.Format
	if *wireFmt != "" {
		var err error
		if format, err = wire.ParseFormat(*wireFmt); err != nil {
			logger.Error("parsing wire format", "err", err)
			return 2
		}
	}

	stats := &collector.IngestStats{}
	var figs *collector.LiveFigures
	if *figures {
		rack := topo.Default(*servers)
		lf, err := collector.NewLiveFigures(collector.LiveFiguresConfig{
			SpeedOf: func(_ uint32, port uint16) uint64 {
				if rack.IsUplink(int(port)) {
					return rack.UplinkSpeed
				}
				return rack.ServerSpeed
			},
			IsUplink:  func(_ uint32, port uint16) bool { return rack.IsUplink(int(port)) },
			Threshold: *threshold,
			Tracer:    tracer,
		})
		if err != nil {
			logger.Error("live figures", "err", err)
			return 1
		}
		figs = lf
	}

	// mu serializes legacy flat-file archival and, on shutdown, the file
	// close — a connection goroutine must never race WriteBatch against
	// Close.
	var (
		mu    sync.Mutex
		fileW *wire.Writer
		outF  *os.File
	)
	var handler collector.BatchHandler
	var ingest *collector.DurableIngest
	var arch *trace.ArchiveWriter
	switch {
	case *archiveDir != "":
		var err error
		cfg := trace.ArchiveConfig{Format: format}
		var rec *trace.ArchiveRecovery
		if *resume {
			arch, rec, err = trace.ResumeArchive(*archiveDir, cfg)
		} else {
			arch, err = trace.CreateArchive(*archiveDir, cfg)
		}
		if err != nil {
			logger.Error("opening archive", "dir", *archiveDir, "err", err)
			return 1
		}
		if rec != nil {
			for _, s := range rec.Scanned {
				if s.Torn {
					logger.Warn("recovered torn segment", "segment", s.Name,
						"batches", s.Batches, "truncated_bytes", s.TruncatedBytes)
				}
			}
			logger.Info("archive recovered", "batches", rec.Batches, "samples", rec.Samples,
				"sealed_segments", rec.SealedSegments)
		}
		ckptPath := filepath.Join(*archiveDir, "checkpoint.json")
		ingest, err = collector.NewDurableIngest(collector.DurableIngestConfig{
			Archive:        arch,
			CheckpointPath: ckptPath,
			Every:          *checkpointEvery,
			Figures:        figs,
			Stats:          stats,
			GateMetrics:    collector.NewServerMetrics(reg),
			Metrics:        collector.NewRecoveryMetrics(reg),
			Tracer:         tracer,
		})
		if err != nil {
			logger.Error("durable ingest", "err", err)
			return 1
		}
		if *resume {
			rep, err := ingest.Resume(func(fn func(b *wire.Batch) error) error {
				return trace.IterArchive(*archiveDir, fn)
			})
			if err != nil {
				logger.Error("resuming from checkpoint", "err", err)
				return 1
			}
			logger.Info("resumed", "had_checkpoint", rep.HadCheckpoint,
				"checkpoint_batches", rep.CheckpointBatches, "replayed", rep.Replayed,
				"archive_batches", rep.ArchiveBatches)
			if rep.Shortfall > 0 {
				logger.Warn("archive shortfall: checkpointed batches missing from disk",
					"batches", rep.Shortfall)
			}
		}
		handler = ingest.Handle
	case *out != "":
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("opening output file", "err", err)
			return 1
		}
		// Archival transcodes: whatever format a client streamed in, the
		// archive is written uniformly in the chosen format.
		fileW, err = wire.NewWriterFormat(f, format)
		if err != nil {
			logger.Error("archive writer", "err", err)
			f.Close()
			return 1
		}
		outF = f
		archive := func(b *wire.Batch) {
			mu.Lock()
			if fileW != nil {
				if err := fileW.WriteBatch(b); err != nil {
					logger.Error("archiving batch", "err", err)
				}
			}
			mu.Unlock()
		}
		h := stats.Wrap(collector.TraceStage(tracer, ptrace.StageArchiveWrite, archive))
		if figs != nil {
			h = figs.Wrap(h)
		}
		handler = h
	default:
		h := stats.Wrap(nil)
		if figs != nil {
			h = figs.Wrap(h)
		}
		handler = h
	}
	stats.Attach(reg)

	// Shard mode: police placement ownership ahead of the pipeline, so a
	// placement-generation mismatch between agents and collectors shows
	// up as counted misrouted drops instead of double-counted series.
	var placement *shard.Placement
	if *numShards > 0 {
		pl, err := shard.Uniform(*numShards, *placementSeed)
		if err != nil {
			logger.Error("building placement", "err", err)
			return 2
		}
		filtered, err := collector.NewShardFilter(pl, *shardID, collector.NewShardMetrics(reg), handler)
		if err != nil {
			logger.Error("shard filter", "err", err)
			return 2
		}
		handler = filtered
		placement = &pl
		logger.Info("sharded", "shard", *shardID, "of", *numShards,
			"name", pl.Name(*shardID), "placement_version", pl.Version)
	} else if *shardID >= 0 {
		logger.Error("-shard needs -shards")
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listening", "addr", *listen, "err", err)
		return 1
	}
	srv := collector.ServeConfigured(ln, handler, collector.ServerConfig{
		Metrics: collector.NewServerMetrics(reg),
		// In -archive mode the gate lives inside DurableIngest, ahead of
		// the archive write.
		EpochGate: *epochGate && ingest == nil,
		Tracer:    tracer,
	})
	logger.Info("listening", "addr", srv.Addr().String(), "durable", ingest != nil)

	if *httpAddr != "" {
		mux := obs.NewDebugMux(reg, nil)
		mux.Handle("/stats/ingest", stats)
		if figs != nil {
			mux.Handle("/figures", figs)
		}
		if tracer != nil {
			mux.Handle("/spans", tracer.SpansHandler())
			mux.Handle("/tracez", tracer.TracezHandler())
		}
		if placement != nil {
			self := *shardID
			mux.HandleFunc("/placement", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(struct {
					Shard     int              `json:"shard"`
					Placement *shard.Placement `json:"placement"`
				}{self, placement})
			})
		}
		ds, err := obs.StartDebug(*httpAddr, mux)
		if err != nil {
			logger.Error("debug http", "addr", *httpAddr, "err", err)
			return 1
		}
		defer ds.Close()
		logger.Info("debug http listening", "url", fmt.Sprintf("http://%s/metrics", ds.Addr()))
	}

	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	for {
		select {
		case <-ticker.C:
			snap := stats.Snapshot()
			logger.Info("ingest", "batches", snap.Batches, "samples", snap.Samples, "racks", len(snap.PerRack))
			if err := srv.LastErr(); err != nil {
				logger.Warn("stream error", "err", err)
			}
			if ingest != nil {
				if err := ingest.Err(); err != nil {
					logger.Error("archive dead, exiting", "err", err)
					srv.Close()
					return 1
				}
			}
		case s := <-sig:
			logger.Info("draining", "signal", s.String())
			code := 0
			if err := srv.Close(); err != nil {
				logger.Error("closing listener", "err", err)
				code = 1
			}
			if ingest != nil {
				if c := finalizeDurable(logger, ingest, arch); c != 0 {
					code = c
				}
			}
			if outF != nil {
				// Serialize with any in-flight WriteBatch and surface the
				// final sync error as a non-zero exit — a silently truncated
				// archive is worse than a noisy one.
				mu.Lock()
				syncErr := outF.Sync()
				closeErr := outF.Close()
				fileW = nil
				mu.Unlock()
				if syncErr != nil {
					logger.Error("syncing output file", "err", syncErr)
					code = 1
				}
				if closeErr != nil {
					logger.Error("closing output file", "err", closeErr)
					code = 1
				}
			}
			snap := stats.Snapshot()
			logger.Info("final", "batches", snap.Batches, "samples", snap.Samples, "exit", code)
			return code
		}
	}
}

// finalizeDurable writes the shutdown checkpoint and seals the archive,
// returning a non-zero exit code if durability could not be guaranteed.
// Separated from run so the failure paths are testable.
func finalizeDurable(logger *slog.Logger, ingest *collector.DurableIngest, arch *trace.ArchiveWriter) int {
	code := 0
	if err := ingest.Checkpoint(); err != nil {
		logger.Error("final checkpoint", "err", err)
		code = 1
	}
	if err := arch.Close(); err != nil {
		logger.Error("sealing archive", "err", err)
		code = 1
	}
	return code
}
