package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mburst/internal/collector"
	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

// failingSyncFile wraps a real file but lies dead on Sync — the fsync
// failure mode a daemon must turn into a non-zero exit.
type failingSyncFile struct {
	*os.File
	fail *bool
}

func (f *failingSyncFile) Sync() error {
	if *f.fail {
		return errors.New("sync: I/O error")
	}
	return f.File.Sync()
}

func testBatch(i int) *wire.Batch {
	return &wire.Batch{Rack: 1, Epoch: 1, Samples: []wire.Sample{
		{Time: simclock.Epoch.Add(simclock.Micros(int64(i) * 50)), Port: 1, Value: uint64(i) * 100},
	}}
}

// newTestIngest builds the same durable pipeline run() assembles, over
// an archive whose files fail Sync when *failSync is set.
func newTestIngest(t *testing.T, dir string, failSync *bool) (*collector.DurableIngest, *trace.ArchiveWriter) {
	t.Helper()
	arch, err := trace.CreateArchive(dir, trace.ArchiveConfig{
		SyncEvery: 1000, // keep syncs out of WriteBatch; shutdown triggers them
		Open: func(path string) (io.WriteCloser, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &failingSyncFile{File: f, fail: failSync}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ingest, err := collector.NewDurableIngest(collector.DurableIngestConfig{
		Archive:        arch,
		CheckpointPath: filepath.Join(dir, "checkpoint.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ingest, arch
}

func TestFinalizeDurableCleanShutdown(t *testing.T) {
	noFail := false
	ingest, arch := newTestIngest(t, filepath.Join(t.TempDir(), "a"), &noFail)
	ingest.Handle(testBatch(0))
	if code := finalizeDurable(obs.DaemonLogger("test"), ingest, arch); code != 0 {
		t.Fatalf("clean shutdown exited %d, want 0", code)
	}
}

// TestFinalizeDurableSyncErrorExitsNonZero: an archive whose final sync
// fails must drive a non-zero exit — a silently truncated archive is the
// one failure mode a durability daemon may never hide.
func TestFinalizeDurableSyncErrorExitsNonZero(t *testing.T) {
	fail := false
	ingest, arch := newTestIngest(t, filepath.Join(t.TempDir(), "a"), &fail)
	ingest.Handle(testBatch(0))
	fail = true
	if code := finalizeDurable(obs.DaemonLogger("test"), ingest, arch); code == 0 {
		t.Fatal("failed final sync exited 0")
	}
}

// TestFinalizeDurableOpenerFailure: a dying disk surfaces at segment
// rotation too — the opener fails, the write latches, and shutdown
// reports it.
func TestFinalizeDurableOpenerFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a")
	opened := 0
	arch, err := trace.CreateArchive(dir, trace.ArchiveConfig{
		SegmentBatches: 1,
		Open: func(path string) (io.WriteCloser, error) {
			opened++
			if opened > 1 {
				return nil, errors.New("open: no space left on device")
			}
			return os.Create(path)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ingest, err := collector.NewDurableIngest(collector.DurableIngestConfig{
		Archive:        arch,
		CheckpointPath: filepath.Join(dir, "checkpoint.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ingest.Handle(testBatch(0))
	ingest.Handle(testBatch(1)) // rotation: the opener fails here
	if ingest.Err() == nil && finalizeDurable(obs.DaemonLogger("test"), ingest, arch) == 0 {
		t.Fatal("opener failure surfaced neither as a sticky error nor a non-zero exit")
	}
}
