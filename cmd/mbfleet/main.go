// Command mbfleet runs an in-process fleet campaign: N simulated racks
// fanned across the campaign runner, their agent streams routed by a
// rendezvous placement onto M collector shards, and the shards' cuts
// merged by the fleet aggregator into fleet-wide live figures.
//
// Usage:
//
//	mbfleet -racks 1000 -shards 8 [-app web] [-window 2ms] [-warmup 500µs]
//	        [-servers 8] [-seed N] [-pseed N] [-interval 25µs]
//	        [-batch 2048] [-publish 8] [-queue N] [-workers N]
//	        [-wire mbw3] [-out DIR] [-ckpt N] [-faults SPEC] [-oracle]
//
// With -out the campaign lays down a fleet directory: campaign.json
// (stamped with the versioned placement), fleet.json (shard layout and
// totals), one durable archive per shard, and a fleet-wide checkpoint
// composed from the shard checkpoints. mbdump reads such a directory
// like any campaign, merging the shard archives deterministically.
//
// -faults schedules shard strikes (kill@, torn@:xF, shortw@, offsets
// within the window duration), assigned round-robin over shards; each
// struck shard resumes from its archive + checkpoint and the harness
// re-delivers the agent spool horizon. Requires -out.
//
// -oracle also runs one unsharded collector over the identical decoded
// stream and verifies the fleet state is byte-identical — the
// correctness gate the CI fleet campaign runs with.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mburst/internal/core"
	"mburst/internal/fault"
	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func main() {
	appName := flag.String("app", "web", "application rack type: web, cache, hadoop")
	racks := flag.Int("racks", 100, "fleet rack count")
	shards := flag.Int("shards", 4, "collector shard count")
	window := flag.Duration("window", 2*time.Millisecond, "per-rack measurement window")
	warmup := flag.Duration("warmup", 500*time.Microsecond, "per-rack warmup before recording")
	servers := flag.Int("servers", 8, "servers per rack")
	seed := flag.Uint64("seed", 1, "campaign seed")
	pseed := flag.Uint64("pseed", 1, "placement seed (rendezvous hashing)")
	interval := flag.Duration("interval", 25*time.Microsecond, "sampling interval")
	batch := flag.Int("batch", 0, "agent samples per batch (0 = collector default)")
	publish := flag.Int("publish", 0, "shard publish cadence in batches (0 = default)")
	queue := flag.Int("queue", 0, "aggregator fan-in queue depth (0 = 4×shards)")
	workers := flag.Int("workers", 0, "concurrent rack cells (0 = all CPUs)")
	wireFmt := flag.String("wire", "", "agent wire format (mbw1, mbw2, mbw3; default mbw2)")
	out := flag.String("out", "", "fleet campaign directory (durable shards; required with -faults)")
	ckpt := flag.Int("ckpt", 0, "shard checkpoint cadence in batches (0 = default)")
	faults := flag.String("faults", "", `shard strike schedule: "kill@1ms,torn@2ms:x0.5,shortw@3ms"`)
	oracle := flag.Bool("oracle", false, "verify byte-exactness against a single-collector oracle")
	flag.Parse()

	logger := obs.DaemonLogger("mbfleet")

	app, err := workload.ParseApp(*appName)
	if err != nil {
		logger.Error("parsing app", "err", err)
		os.Exit(2)
	}

	cfg := core.Config{
		Racks:     *racks,
		Windows:   1,
		WindowDur: simclock.FromStd(*window),
		Warmup:    simclock.FromStd(*warmup),
		Servers:   *servers,
		Seed:      *seed,
		Workers:   *workers,
	}
	if *wireFmt != "" {
		if cfg.WireFormat, err = wire.ParseFormat(*wireFmt); err != nil {
			logger.Error("parsing wire format", "err", err)
			os.Exit(2)
		}
	}
	fcfg := core.FleetConfig{
		App:             app,
		Shards:          *shards,
		PlacementSeed:   *pseed,
		Interval:        simclock.FromStd(*interval),
		BatchSize:       *batch,
		PublishEvery:    *publish,
		QueueDepth:      *queue,
		Dir:             *out,
		CheckpointEvery: *ckpt,
		Oracle:          *oracle,
		Notes:           "mbfleet",
	}
	if *faults != "" {
		sched, err := fault.ParseSchedule(*faults)
		if err != nil {
			logger.Error("parsing -faults", "err", err)
			os.Exit(2)
		}
		fcfg.Faults = sched
	}

	exp, err := core.NewExperiment(cfg)
	if err != nil {
		logger.Error("configuring experiment", "err", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := exp.RunFleet(ctx, fcfg)
	if err != nil {
		logger.Error("fleet campaign", "err", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	logger.Info("fleet campaign complete",
		"racks", res.Racks, "shards", res.Shards,
		"batches", res.Batches, "samples", res.Samples,
		"wire_bytes", res.WireBytes,
		"kills", res.Kills, "resumes", res.Resumes,
		"replayed", res.Replayed, "redelivered", res.Redelivered,
		"elapsed", elapsed.Round(time.Millisecond),
		"racks_per_sec", fmt.Sprintf("%.1f", float64(res.Racks)/elapsed.Seconds()))
	if res.Oracle {
		if !res.ByteExact {
			logger.Error("fleet state DIVERGES from the single-collector oracle")
			os.Exit(1)
		}
		logger.Info("byte-exact against the single-collector oracle")
	}
	if *out != "" {
		logger.Info("fleet directory written", "dir", *out)
	}
}
