// Command mbagent is the switch-side half of the distributed collection
// pipeline: it runs a simulated rack, polls the configured counters at
// high resolution, and streams sample batches to an mbcollectd instance
// over TCP — reconnecting with backoff if the collector restarts, exactly
// as a production collection agent must.
//
// Usage:
//
//	mbcollectd -listen 127.0.0.1:9900 &
//	mbagent -collector 127.0.0.1:9900 -app cache -port 5 -interval 25µs -dur 2s
//
// The agent prints delivery accounting on exit (delivered, locally
// dropped, redials), so collector restarts during the run are visible.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

func main() {
	collectorAddr := flag.String("collector", "127.0.0.1:9900", "mbcollectd address")
	appName := flag.String("app", "web", "application rack type")
	port := flag.Int("port", 0, "switch port to poll")
	interval := flag.Duration("interval", 25*time.Microsecond, "sampling interval")
	dur := flag.Duration("dur", 2*time.Second, "simulated duration to record")
	servers := flag.Int("servers", 32, "servers per rack")
	seed := flag.Uint64("seed", 1, "seed")
	rackID := flag.Uint("rack", 0, "rack id tag")
	flag.Parse()

	app, err := workload.ParseApp(*appName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbagent: %v\n", err)
		os.Exit(2)
	}
	net_, err := simnet.New(simnet.Config{
		Rack:   topo.Default(*servers),
		Params: workload.DefaultParams(app),
		Seed:   *seed,
		RackID: int(*rackID),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbagent: %v\n", err)
		os.Exit(1)
	}
	if *port < 0 || *port >= net_.Rack().NumPorts() {
		fmt.Fprintf(os.Stderr, "mbagent: port %d out of range [0,%d)\n", *port, net_.Rack().NumPorts())
		os.Exit(2)
	}

	client := collector.NewReconnectingClient(func() (io.WriteCloser, error) {
		return net.DialTimeout("tcp", *collectorAddr, 2*time.Second)
	}, collector.ReconnectingClientConfig{Rack: uint32(*rackID)})

	poller, err := collector.NewPoller(collector.PollerConfig{
		Interval:      simclock.FromStd(*interval),
		Counters:      []collector.CounterSpec{{Port: *port, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
	}, net_.Switch(), rng.New(*seed^0xa9e47), client)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbagent: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("mbagent: %s rack, polling port %d (%s) every %v for %v of simulated time, collector %s\n",
		app, *port, net_.Switch().Port(*port).Name(), *interval, *dur, *collectorAddr)
	net_.Run(25 * simclock.Millisecond) // warmup
	poller.Install(net_.Scheduler())
	net_.Run(simclock.FromStd(*dur))
	poller.Stop()
	if err := client.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mbagent: close: %v\n", err)
	}
	fmt.Printf("mbagent: %d samples taken, miss rate %.2f%%; %s\n",
		poller.Samples(), poller.MissRate()*100, client)
}
