// Command mbagent is the switch-side half of the distributed collection
// pipeline: it runs a simulated rack, polls the configured counters at
// high resolution, and streams sample batches to an mbcollectd instance
// over TCP — reconnecting with backoff if the collector restarts, exactly
// as a production collection agent must.
//
// Usage:
//
//	mbcollectd -listen 127.0.0.1:9900 &
//	mbagent -collector 127.0.0.1:9900 -app cache -port 5 -interval 25µs -dur 2s [-http :9902]
//
// While the collector is unreachable the agent spools sealed batches
// (bounded by -spool, default the in-flight buffer size) and replays
// them in order on reconnect; the restored collector's epoch gate
// deduplicates the retransmission overlap. The agent logs delivery
// accounting on exit (delivered, spooled, locally dropped, redials),
// so collector restarts during the run are visible.
// With -http it serves /metrics, /stats, /healthz, and /debug/pprof/
// while running (see README "Observability").
//
// With -shards the agent joins a sharded collection plane: the flag
// lists the shard collectors' addresses in placement index order, and
// the agent dials the one the rendezvous placement (internal/shard,
// seeded by -placementseed) assigns its -rack — the same placement the
// collectors enforce with -shard/-shards, so misrouting is impossible
// when the counts and seeds agree.
//
// With -tracing the agent records the client half of each batch's
// pipeline trace (internal/ptrace): poll.read, wire.encode, and
// client.send, with reconnect backoff waits as client.backoff child
// spans. Spans are served at /spans and /tracez on the -http mux and
// join server-side spans at render time — both halves derive the same
// trace ID from the batch content alone.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/obs"
	"mburst/internal/ptrace"
	"mburst/internal/rng"
	"mburst/internal/shard"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func main() {
	collectorAddr := flag.String("collector", "127.0.0.1:9900", "mbcollectd address")
	appName := flag.String("app", "web", "application rack type")
	port := flag.Int("port", 0, "switch port to poll")
	interval := flag.Duration("interval", 25*time.Microsecond, "sampling interval")
	dur := flag.Duration("dur", 2*time.Second, "simulated duration to record")
	servers := flag.Int("servers", 32, "servers per rack")
	seed := flag.Uint64("seed", 1, "seed")
	rackID := flag.Uint("rack", 0, "rack id tag")
	epoch := flag.Uint("epoch", 0, "agent incarnation number; bump on restart so an epoch-gated collector discards stale batches (0 = legacy framing)")
	spool := flag.Int("spool", 0, "retransmit spool bound in samples while the collector is down; size to outage duration x sample rate (0 = same as the in-flight buffer)")
	wireFmt := flag.String("wire", "", "wire format for the outgoing stream (mbw1, mbw2, mbw3; default mbw2)")
	shardAddrs := flag.String("shards", "", "comma-separated shard collector addresses in placement index order; the agent dials the shard the placement assigns its -rack (overrides -collector)")
	placementSeed := flag.Uint64("placementseed", 1, "rendezvous placement seed (must match the collectors')")
	httpAddr := flag.String("http", "", "debug HTTP address (/metrics, /stats, /healthz, /debug/pprof/)")
	tracing := flag.Bool("tracing", false, "record client-side pipeline spans and serve /spans and /tracez (needs -http)")
	traceRate := flag.Float64("tracerate", 0, "fraction of batch traces kept by the deterministic head sampler (0 = all)")
	traceCap := flag.Int("tracecap", ptrace.DefaultCapacity, "span ring capacity")
	flag.Parse()

	logger := obs.DaemonLogger("mbagent")
	reg := obs.NewRegistry()
	obs.RegisterGoRuntime(reg)

	var tracer *ptrace.Tracer
	if *tracing {
		tracer = ptrace.New(ptrace.Config{
			Capacity:   *traceCap,
			SampleRate: *traceRate,
			Seed:       *seed,
			Metrics:    reg,
		})
	}

	app, err := workload.ParseApp(*appName)
	if err != nil {
		logger.Error("parsing app", "err", err)
		os.Exit(2)
	}
	var format wire.Format
	if *wireFmt != "" {
		if format, err = wire.ParseFormat(*wireFmt); err != nil {
			logger.Error("parsing wire format", "err", err)
			os.Exit(2)
		}
	}
	if format == wire.FormatMBW1 && *epoch != 0 {
		logger.Error("mbw1 frames cannot carry an epoch; use -epoch 0 or a newer -wire format")
		os.Exit(2)
	}
	net_, err := simnet.New(simnet.Config{
		Rack:   topo.Default(*servers),
		Params: workload.DefaultParams(app),
		Seed:   *seed,
		RackID: int(*rackID),
	})
	if err != nil {
		logger.Error("building rack", "err", err)
		os.Exit(1)
	}
	if *port < 0 || *port >= net_.Rack().NumPorts() {
		logger.Error("port out of range", "port", *port, "ports", net_.Rack().NumPorts())
		os.Exit(2)
	}
	net_.RegisterMetrics(reg, obs.L("rack", fmt.Sprint(*rackID)))
	net_.Scheduler().Instrument(reg)

	// Shard-aware dialing: with -shards, the placement (over canonical
	// shard names, so agents and collectors agree from the count and
	// seed alone) picks which collector owns this rack's stream.
	dialAddr := *collectorAddr
	if *shardAddrs != "" {
		addrs := strings.Split(*shardAddrs, ",")
		pl, err := shard.Uniform(len(addrs), *placementSeed)
		if err != nil {
			logger.Error("building placement", "err", err)
			os.Exit(2)
		}
		owner := pl.ShardOf(uint32(*rackID))
		dialAddr = strings.TrimSpace(addrs[owner])
		if dialAddr == "" {
			logger.Error("empty address for owning shard", "shard", owner)
			os.Exit(2)
		}
		logger.Info("placed", "rack", *rackID, "shard", owner,
			"name", pl.Name(owner), "collector", dialAddr)
	}

	client := collector.NewReconnectingClient(func() (io.WriteCloser, error) {
		return net.DialTimeout("tcp", dialAddr, 2*time.Second)
	}, collector.ReconnectingClientConfig{
		Rack:       uint32(*rackID),
		Epoch:      uint32(*epoch),
		Format:     format,
		SpoolLimit: *spool,
		Rand:       rng.New(*seed ^ 0x5eed).Split("backoff"),
		Metrics:    collector.NewClientMetrics(reg),
		Tracer:     tracer,
	})

	poller, err := collector.NewPoller(collector.PollerConfig{
		Interval:      simclock.FromStd(*interval),
		Counters:      []collector.CounterSpec{{Port: *port, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
		Metrics:       collector.NewPollerMetrics(reg),
	}, net_.Switch(), rng.New(*seed^0xa9e47), client)
	if err != nil {
		logger.Error("building poller", "err", err)
		os.Exit(1)
	}

	if *httpAddr != "" {
		mux := obs.NewDebugMux(reg, nil)
		if tracer != nil {
			mux.Handle("/spans", tracer.SpansHandler())
			mux.Handle("/tracez", tracer.TracezHandler())
		}
		ds, err := obs.StartDebug(*httpAddr, mux)
		if err != nil {
			logger.Error("debug http", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		defer ds.Close()
		logger.Info("debug http listening", "url", fmt.Sprintf("http://%s/metrics", ds.Addr()))
	}

	logger.Info("polling",
		"app", app.String(), "port", *port, "counter", net_.Switch().Port(*port).Name(),
		"interval", *interval, "dur", *dur, "collector", dialAddr)
	net_.Run(25 * simclock.Millisecond) // warmup
	poller.Install(net_.Scheduler())
	net_.Run(simclock.FromStd(*dur))
	poller.Stop()
	if err := client.Close(); err != nil {
		logger.Error("closing client", "err", err)
	}
	logger.Info("done",
		"samples", poller.Samples(), "miss_rate", fmt.Sprintf("%.2f%%", poller.MissRate()*100),
		"delivery", client.String())
}
