// Command mbreplay streams a recorded campaign (an mbsim trace directory)
// into a collector service as live batches — for exercising mbcollectd
// deployments and dashboards with realistic data.
//
// Usage:
//
//	mbreplay -trace DIR -collector 127.0.0.1:9900 [-speedup 100] [-unpaced]
//	         [-maxgap 100ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mburst/internal/replay"
	"mburst/internal/wire"
)

func main() {
	dir := flag.String("trace", "", "trace directory (required)")
	collectorAddr := flag.String("collector", "127.0.0.1:9900", "mbcollectd address")
	speedup := flag.Float64("speedup", 100, "virtual-to-wall-clock speedup")
	unpaced := flag.Bool("unpaced", false, "stream as fast as the transport accepts")
	maxGap := flag.Duration("maxgap", 0, "cap any single pacing sleep (0 = replay gaps verbatim); useful for traces recorded under faults")
	wireFmt := flag.String("wire", "", "wire format for the outgoing stream (mbw1, mbw2, mbw3; default mbw2)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mbreplay: -trace is required")
		os.Exit(2)
	}
	var format wire.Format
	if *wireFmt != "" {
		var err error
		if format, err = wire.ParseFormat(*wireFmt); err != nil {
			fmt.Fprintf(os.Stderr, "mbreplay: %v\n", err)
			os.Exit(2)
		}
	}
	conn, err := net.DialTimeout("tcp", *collectorAddr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbreplay: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	st, err := replay.Run(ctx, *dir, conn, replay.Options{Speedup: *speedup, Unpaced: *unpaced, MaxGap: *maxGap, Format: format})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbreplay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mbreplay: %d windows, %d batches, %d samples (%v of virtual time, %d gap clamps) in %v\n",
		st.Windows, st.Batches, st.Samples, st.VirtualSpan, st.GapClamps, time.Since(start).Round(time.Millisecond))
}
