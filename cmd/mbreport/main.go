// Command mbreport regenerates every table and figure of the paper in one
// run and prints a paper-vs-measured summary.
//
// Usage:
//
//	mbreport [-quick] [-racks N] [-windows N] [-window 250ms] [-servers N]
//	         [-seed N] [-workers N] [-balancer flow|flowlet|roundrobin]
//	         [-paced]
//
// The defaults run the standard scaled-down campaign (see DESIGN.md §1);
// -quick runs the minimal configuration used by the test suite.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mburst/internal/core"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
)

func main() {
	quick := flag.Bool("quick", false, "use the minimal quick configuration")
	racks := flag.Int("racks", 0, "racks per application (0 = config default)")
	windows := flag.Int("windows", 0, "windows per rack (0 = config default)")
	window := flag.Duration("window", 0, "window duration (0 = config default)")
	servers := flag.Int("servers", 0, "servers per rack (0 = config default)")
	seed := flag.Uint64("seed", 0, "experiment seed (0 = config default)")
	workers := flag.Int("workers", 0, "concurrent campaign cells (0 = all CPUs)")
	balancer := flag.String("balancer", "flow", "uplink balancer: flow, flowlet, roundrobin")
	paced := flag.Bool("paced", false, "enable the pacing ablation")
	plots := flag.Bool("plot", false, "also render figures as terminal graphics")
	flag.Parse()

	cfg := core.DefaultConfig()
	if *quick {
		cfg = core.QuickConfig()
	}
	if *racks > 0 {
		cfg.Racks = *racks
	}
	if *windows > 0 {
		cfg.Windows = *windows
	}
	if *window > 0 {
		cfg.WindowDur = simclock.FromStd(*window)
	}
	if *servers > 0 {
		cfg.Servers = *servers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	cfg.Paced = *paced
	switch *balancer {
	case "flow":
		cfg.Balancer = simnet.BalanceFlow
	case "flowlet":
		cfg.Balancer = simnet.BalanceFlowlet
	case "roundrobin":
		cfg.Balancer = simnet.BalanceRoundRobin
	default:
		fmt.Fprintf(os.Stderr, "mbreport: unknown balancer %q\n", *balancer)
		os.Exit(2)
	}

	exp, err := core.NewExperiment(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mburst report: %d racks × %d windows × %v per app, %d servers/rack, seed %d\n\n",
		cfg.Racks, cfg.Windows, cfg.WindowDur, cfg.Servers, cfg.Seed)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	rep, err := exp.RunAll(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep.Format())
	if *plots {
		fmt.Println()
		fmt.Println(rep.FormatPlots())
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
