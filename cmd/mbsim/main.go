// Command mbsim runs a measurement campaign against a simulated rack and
// writes the captured counter samples to a trace directory that mbanalyze
// (and the analysis library) can consume.
//
// Usage:
//
//	mbsim -app web|cache|hadoop -out DIR [-plan randomport|allports|buffer]
//	      [-interval 25µs] [-racks N] [-windows N] [-window 250ms]
//	      [-servers N] [-seed N] [-workers N] [-http :9903]
//	      [-faults SPEC] [-trace FILE] [-tracerate R] [-tracecap N]
//
// Plans:
//
//	randomport  one random port's egress byte counter per window (the
//	            paper's Fig 3/4/6 single-counter campaign)
//	allports    every port's egress byte counter (Fig 9)
//	buffer      allports plus the shared-buffer peak register (Fig 10)
//
// With -http the campaign's live telemetry (windows recorded, samples
// captured, poller cost) is scrapeable at /metrics while it runs, and
// /debug/pprof/ profiles the simulation itself.
//
// -faults injects a deterministic fault schedule into every cell's poller
// (see internal/fault): either a fixed schedule such as
// "stuck@10ms+5ms,stall@30ms+10ms:500µs", or "rand:stuck=0.5,stall=0.5" to
// draw each cell's schedule from the campaign seed. Faulted traces remain
// reproducible: the same seed and spec yield byte-identical directories.
//
// -trace writes the campaign's pipeline span dump (internal/ptrace): one
// poll→encode→send→ingest→gate→archive→figures chain per persisted batch,
// with simclock-exact stage latencies. The dump is byte-identical across
// runs and -workers counts; cmd/mbtrace renders it. With -http the same
// spans are browsable live at /spans (JSON) and /tracez (waterfall).
//
// -workers bounds how many (rack, window) cells simulate concurrently
// (0 = all CPUs); the recorded trace is byte-identical for every worker
// count. SIGINT/SIGTERM cancels the campaign and discards the partial
// trace directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mburst/internal/collector"
	"mburst/internal/core"
	"mburst/internal/fault"
	"mburst/internal/obs"
	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func main() {
	appName := flag.String("app", "web", "application rack type: web, cache, hadoop")
	out := flag.String("out", "", "output trace directory (required)")
	plan := flag.String("plan", "randomport", "counter plan: randomport, allports, buffer, full")
	interval := flag.Duration("interval", 25*time.Microsecond, "sampling interval")
	racks := flag.Int("racks", 0, "racks (0 = default)")
	windows := flag.Int("windows", 0, "windows per rack (0 = default)")
	window := flag.Duration("window", 0, "window duration (0 = default)")
	servers := flag.Int("servers", 0, "servers per rack (0 = default)")
	seed := flag.Uint64("seed", 0, "seed (0 = default)")
	workers := flag.Int("workers", 0, "concurrent campaign cells (0 = all CPUs)")
	wireFmt := flag.String("wire", "", "wire format for recorded window files (mbw1, mbw2, mbw3; default mbw2, the trace-v1 layout; mbw3 is trace-v2)")
	faults := flag.String("faults", "", `fault schedule: "none", "kind@off+dur[:param],..." (kinds: stuck, latency, stall, restart, outage, disk), or "rand[:k=v,...]" for seeded per-cell generation`)
	httpAddr := flag.String("http", "", "debug HTTP address (/metrics, /stats, /healthz, /spans, /tracez, /debug/pprof/)")
	tracePath := flag.String("trace", "", "write the campaign's pipeline span dump to this file (mbtrace renders it)")
	traceRate := flag.Float64("tracerate", 0, "fraction of batch traces kept by the deterministic head sampler (0 = all)")
	traceCap := flag.Int("tracecap", 0, "span ring capacity (0 = sized to hold the whole campaign)")
	flag.Parse()

	logger := obs.DaemonLogger("mbsim")
	reg := obs.NewRegistry()
	obs.RegisterGoRuntime(reg)

	if *out == "" {
		logger.Error("-out is required")
		os.Exit(2)
	}
	app, err := workload.ParseApp(*appName)
	if err != nil {
		logger.Error("parsing app", "err", err)
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	if *racks > 0 {
		cfg.Racks = *racks
	}
	if *windows > 0 {
		cfg.Windows = *windows
	}
	if *window > 0 {
		cfg.WindowDur = simclock.FromStd(*window)
	}
	if *servers > 0 {
		cfg.Servers = *servers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	cfg.Metrics = reg
	if *wireFmt != "" {
		if cfg.WireFormat, err = wire.ParseFormat(*wireFmt); err != nil {
			logger.Error("parsing wire format", "err", err)
			os.Exit(2)
		}
	}
	if *faults != "" {
		if strings.HasPrefix(*faults, "rand") {
			gen, err := fault.ParseGen(*faults)
			if err != nil {
				logger.Error("parsing -faults", "err", err)
				os.Exit(2)
			}
			cfg.Faults = &gen
		} else {
			sched, err := fault.ParseSchedule(*faults)
			if err != nil {
				logger.Error("parsing -faults", "err", err)
				os.Exit(2)
			}
			if !sched.Empty() {
				cfg.FaultSchedule = &sched
			}
		}
	}
	exp, err := core.NewExperiment(cfg)
	if err != nil {
		logger.Error("configuring experiment", "err", err)
		os.Exit(1)
	}

	var countersFor core.CounterPlan
	switch *plan {
	case "randomport":
		countersFor = exp.RandomPortCounters(app)
	case "allports":
		countersFor = core.AllPortCounters(false)
	case "buffer":
		countersFor = core.AllPortCounters(true)
	case "full":
		countersFor = core.FullCounters()
	default:
		logger.Error("unknown plan", "plan", *plan)
		os.Exit(2)
	}

	var tracer *ptrace.Tracer
	if *tracePath != "" || *httpAddr != "" {
		capacity := *traceCap
		if capacity <= 0 {
			capacity = campaignSpanCap(cfg, countersFor(exp.Rack(), 0, 0), simclock.FromStd(*interval))
		}
		tracer = ptrace.New(ptrace.Config{
			Capacity:   capacity,
			SampleRate: *traceRate,
			Seed:       cfg.Seed,
			Metrics:    reg,
		})
		cfg.Tracer = tracer
		// cfg was copied into exp at construction; rebuild with the tracer.
		if exp, err = core.NewExperiment(cfg); err != nil {
			logger.Error("configuring experiment", "err", err)
			os.Exit(1)
		}
	}

	if *httpAddr != "" {
		mux := obs.NewDebugMux(reg, nil)
		mux.Handle("/spans", tracer.SpansHandler())
		mux.Handle("/tracez", tracer.TracezHandler())
		ds, err := obs.StartDebug(*httpAddr, mux)
		if err != nil {
			logger.Error("debug http", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		defer ds.Close()
		logger.Info("debug http listening", "url", fmt.Sprintf("http://%s/metrics", ds.Addr()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	err = exp.RecordCampaign(ctx, app, *out, simclock.FromStd(*interval), "plan="+*plan, countersFor)
	if err != nil {
		logger.Error("recording campaign", "err", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := writeTraceDump(tracer, *tracePath); err != nil {
			logger.Error("writing span dump", "path", *tracePath, "err", err)
			os.Exit(1)
		}
		logger.Info("wrote span dump", "path", *tracePath,
			"spans", tracer.Recorded(), "evicted", tracer.Evicted())
	}
	logger.Info("recorded campaign",
		"app", app.String(), "windows", cfg.Racks*cfg.Windows, "window_dur", cfg.WindowDur.String(),
		"interval", interval.String(), "out", *out, "elapsed", time.Since(start).Round(time.Millisecond).String())
}

// campaignSpanCap sizes the span ring to hold the whole campaign: one
// 7-span chain per persisted batch, with headroom so the auto-sized ring
// never evicts (eviction order would otherwise depend on completion
// order, breaking byte-identical dumps across -workers counts).
func campaignSpanCap(cfg core.Config, counters []collector.CounterSpec, interval simclock.Duration) int {
	samplesPerWindow := (int64(cfg.WindowDur/interval) + 1) * int64(len(counters))
	batchesPerWindow := samplesPerWindow/trace.BatchSize + 1
	spans := int64(cfg.Racks*cfg.Windows) * batchesPerWindow * 8
	const maxAuto = 1 << 22
	if spans > maxAuto {
		return maxAuto
	}
	if spans < ptrace.DefaultCapacity {
		return ptrace.DefaultCapacity
	}
	return int(spans)
}

// writeTraceDump writes the tracer's canonical span dump to path.
func writeTraceDump(t *ptrace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
