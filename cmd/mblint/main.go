// Command mblint enforces mburst's determinism, clock, RNG, and telemetry
// invariants (see internal/lint). It is dependency-free: packages are
// discovered with `go list` and type-checked from source, so it runs
// anywhere the go toolchain does.
//
// Usage:
//
//	mblint [-json] [-rules rule1,rule2] [packages]
//
// Packages default to ./... relative to the working directory. Exit code
// is 0 when clean, 1 when findings were reported, 2 when the run itself
// failed (bad flags, unknown rule, load error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mburst/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (empty array when clean)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mblint [-json] [-rules rule1,rule2] [packages]\n\nrules:\n")
		for _, a := range lint.NewAnalyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *rules != "" {
		for _, n := range strings.Split(*rules, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	analyzers, err := lint.SelectAnalyzers(names)
	if err != nil {
		fmt.Fprintln(stderr, "mblint:", err)
		return 2
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mblint:", err)
		return 2
	}
	loader := lint.NewLoader(dir)
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "mblint:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "mblint: %s: type error: %v\n", pkg.Path, terr)
		}
	}

	diags := lint.RunPackages(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "mblint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
