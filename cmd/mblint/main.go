// Command mblint enforces mburst's determinism, clock, RNG, and telemetry
// invariants (see internal/lint). It is dependency-free: packages are
// discovered with `go list` and type-checked from source, so it runs
// anywhere the go toolchain does.
//
// Usage:
//
//	mblint [-json] [-rules rule1,rule2] [-graph] [-why func] [packages]
//
// Packages default to ./... relative to the working directory.
//
// -graph prints the whole-program call-graph summary the interprocedural
// rules (clockflow, hotalloc, lockorder) analyze. -why prints, for a
// function (bare name, pkg.Func, or fully qualified), the shortest call
// chain by which it reaches a wall-clock or global-rand sink — the
// explanation behind a clockflow finding. With -json the output is a
// report object: findings, per-rule counts, and call-graph size.
//
// Exit code is 0 when clean, 1 when findings were reported, 2 when the
// run itself failed (bad flags, unknown rule, unknown -why function,
// load error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mburst/internal/lint"
)

// report is the -json output shape, published by CI as
// LINT_findings.json so lint coverage is a tracked artifact.
type report struct {
	Findings   []lint.Diagnostic `json:"findings"`
	RuleCounts map[string]int    `json:"rule_counts"`
	CallGraph  lint.ProgramStats `json:"callgraph"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a JSON report (findings, rule counts, call-graph size)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	graph := fs.Bool("graph", false, "print the call-graph summary alongside findings")
	why := fs.String("why", "", "explain how `func` reaches a determinism sink, then exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mblint [-json] [-rules rule1,rule2] [-graph] [-why func] [packages]\n\nrules:\n")
		for _, a := range lint.NewAnalyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *rules != "" {
		for _, n := range strings.Split(*rules, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	analyzers, err := lint.SelectAnalyzers(names)
	if err != nil {
		fmt.Fprintln(stderr, "mblint:", err)
		return 2
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mblint:", err)
		return 2
	}
	loader := lint.NewLoader(dir)
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "mblint:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "mblint: %s: type error: %v\n", pkg.Path, terr)
		}
	}

	if *why != "" {
		prog := lint.BuildProgram(pkgs)
		lines, err := lint.Explain(prog, *why)
		if err != nil {
			fmt.Fprintln(stderr, "mblint:", err)
			return 2
		}
		for _, line := range lines {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}

	diags, prog := lint.RunPackagesProgram(pkgs, analyzers)

	var stats lint.ProgramStats
	if prog != nil {
		stats = prog.Stats()
	}
	if *graph {
		fmt.Fprintf(stdout, "callgraph: %d packages, %d functions, %d static edges, %d dynamic edges\n",
			stats.Packages, stats.Functions, stats.StaticEdges, stats.DynamicEdges)
	}

	if *jsonOut {
		rep := report{
			Findings:   diags,
			RuleCounts: make(map[string]int),
			CallGraph:  stats,
		}
		if rep.Findings == nil {
			rep.Findings = []lint.Diagnostic{}
		}
		for _, d := range diags {
			rep.RuleCounts[d.Rule]++
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "mblint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
