package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestUnknownRuleExits2(t *testing.T) {
	stdout, stderr := capture(t), capture(t)
	if code := run([]string{"-rules", "nosuchrule"}, stdout, stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(readBack(t, stderr), "unknown rule") {
		t.Errorf("stderr missing unknown-rule message: %q", readBack(t, stderr))
	}
}

func TestCleanPackageEmitsEmptyReport(t *testing.T) {
	stdout, stderr := capture(t), capture(t)
	// internal/simclock is small, dependency-light, and must stay clean.
	if code := run([]string{"-json", "mburst/internal/simclock"}, stdout, stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, readBack(t, stderr))
	}
	var rep report
	if err := json.Unmarshal([]byte(readBack(t, stdout)), &rep); err != nil {
		t.Fatalf("output is not a JSON report: %v\n%s", err, readBack(t, stdout))
	}
	if len(rep.Findings) != 0 {
		t.Errorf("findings = %v, want none", rep.Findings)
	}
	if rep.Findings == nil {
		t.Error("findings is null, want an empty array")
	}
	if rep.CallGraph.Functions == 0 || rep.CallGraph.Packages == 0 {
		t.Errorf("callgraph stats empty: %+v", rep.CallGraph)
	}
}

func TestGraphSummary(t *testing.T) {
	stdout, stderr := capture(t), capture(t)
	if code := run([]string{"-graph", "mburst/internal/simclock"}, stdout, stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, readBack(t, stderr))
	}
	out := readBack(t, stdout)
	if !strings.Contains(out, "callgraph:") || !strings.Contains(out, "static edges") {
		t.Errorf("missing call-graph summary: %q", out)
	}
}

func TestWhyExplainsChain(t *testing.T) {
	stdout, stderr := capture(t), capture(t)
	// simclock.Clock.Now is the sanctioned clock; it must reach no
	// wall-clock sink, and -why must say so rather than stay silent.
	if code := run([]string{"-why", "Now", "mburst/internal/simclock"}, stdout, stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, readBack(t, stderr))
	}
	out := readBack(t, stdout)
	if !strings.Contains(out, "reaches no wall-clock or global-rand sink") {
		t.Errorf("-why output missing verdict: %q", out)
	}
}

func TestWhyUnknownFunctionExits2(t *testing.T) {
	stdout, stderr := capture(t), capture(t)
	if code := run([]string{"-why", "noSuchFunction", "mburst/internal/simclock"}, stdout, stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(readBack(t, stderr), "no function named") {
		t.Errorf("stderr missing lookup error: %q", readBack(t, stderr))
	}
}
