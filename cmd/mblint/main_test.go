package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestUnknownRuleExits2(t *testing.T) {
	stdout, stderr := capture(t), capture(t)
	if code := run([]string{"-rules", "nosuchrule"}, stdout, stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(readBack(t, stderr), "unknown rule") {
		t.Errorf("stderr missing unknown-rule message: %q", readBack(t, stderr))
	}
}

func TestCleanPackageEmitsEmptyJSONArray(t *testing.T) {
	stdout, stderr := capture(t), capture(t)
	// internal/simclock is small, dependency-light, and must stay clean.
	if code := run([]string{"-json", "mburst/internal/simclock"}, stdout, stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, readBack(t, stderr))
	}
	out := strings.TrimSpace(readBack(t, stdout))
	if out != "[]" {
		t.Errorf("JSON output = %q, want empty array", out)
	}
}
