// Command mbanalyze computes the paper's analyses from a trace directory
// recorded by mbsim (or any tool writing the trace format).
//
// Usage:
//
//	mbanalyze -trace DIR -analysis bursts|gaps|util|markov|hotshare [-cdf] [-stream]
//
// Analyses:
//
//	bursts    µburst duration distribution (Fig 3)
//	gaps      inter-burst gap distribution + Poisson KS test (Fig 4, §5.2)
//	util      utilization distribution (Fig 6)
//	markov    two-state burst Markov model (Table 2)
//	hotshare  uplink/downlink split of hot samples (Fig 9; needs an
//	          allports/buffer trace)
//
// With -cdf, the full CDF step points are printed as "value cumfrac"
// rows ready for plotting; otherwise a summary line is printed.
//
// With -stream, windows are consumed batch-by-batch (trace.Reader.
// IterWindow) through the streaming accumulators instead of being
// materialized, bounding memory by the number of active series rather
// than the trace size. Output is byte-identical in both modes.
package main

import (
	"flag"
	"fmt"
	"os"

	"mburst/internal/analysis"
	"mburst/internal/core"
	"mburst/internal/plot"
	"mburst/internal/stats"
	"mburst/internal/trace"
)

func main() {
	dir := flag.String("trace", "", "trace directory (required)")
	what := flag.String("analysis", "bursts", "bursts, gaps, util, markov, hotshare")
	cdf := flag.Bool("cdf", false, "print full CDF points instead of a summary")
	plotOut := flag.Bool("plot", false, "render an ASCII CDF plot (bursts/gaps/util)")
	threshold := flag.Float64("threshold", analysis.DefaultHotThreshold, "hot threshold")
	stream := flag.Bool("stream", false, "bounded-memory streaming mode (identical output)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mbanalyze: -trace is required")
		os.Exit(2)
	}
	known := false
	for _, k := range core.AnalyzeKinds {
		known = known || k == *what
	}
	if !known {
		fmt.Fprintf(os.Stderr, "mbanalyze: unknown analysis %q\n", *what)
		os.Exit(2)
	}
	r, err := trace.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbanalyze: %v\n", err)
		os.Exit(1)
	}
	res, err := core.AnalyzeTrace(r, *what, *threshold, *stream)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbanalyze: %v\n", err)
		os.Exit(1)
	}
	if res.Windows == 0 {
		fmt.Fprintln(os.Stderr, "mbanalyze: trace has no readable windows")
		os.Exit(1)
	}

	printECDF := func(name string, values []float64, unit string) {
		e := stats.NewECDF(values)
		if *cdf {
			for _, p := range e.Points() {
				fmt.Println(p)
			}
			return
		}
		fmt.Printf("%s (%s): n=%d p50=%.3g p90=%.3g p99=%.3g max=%.3g\n",
			name, unit, e.N(), e.Quantile(0.5), e.Quantile(0.9), e.Quantile(0.99), e.Max())
		if *plotOut {
			fmt.Print(plot.CDF(plot.CDFConfig{LogX: e.Min() > 0 && e.Max() > 100*e.Min(), XLabel: unit},
				plot.Series{Name: name, ECDF: e}))
		}
	}

	switch *what {
	case "bursts":
		printECDF("burst durations", res.Durations, "µs")
	case "gaps":
		printECDF("inter-burst gaps", res.Gaps, "µs")
		if !*cdf {
			ks := analysis.PoissonTest(res.Gaps)
			fmt.Printf("KS vs exponential: D=%.4f p=%.3g poisson-rejected(0.001)=%v\n", ks.D, ks.PValue, ks.Rejects(0.001))
		}
	case "util":
		printECDF("utilization", res.Utils, "fraction of line rate")
	case "markov":
		fmt.Printf("markov: %v\n", res.Markov)
	case "hotshare":
		fmt.Printf("hot samples: uplink=%d downlink=%d uplink share=%.1f%%\n",
			res.Share.UplinkHot, res.Share.DownlinkHot, res.Share.UplinkShare()*100)
	}
}
