// Command mbanalyze computes the paper's analyses from a trace directory
// recorded by mbsim (or any tool writing the trace format).
//
// Usage:
//
//	mbanalyze -trace DIR -analysis bursts|gaps|util|markov|hotshare [-cdf]
//
// Analyses:
//
//	bursts    µburst duration distribution (Fig 3)
//	gaps      inter-burst gap distribution + Poisson KS test (Fig 4, §5.2)
//	util      utilization distribution (Fig 6)
//	markov    two-state burst Markov model (Table 2)
//	hotshare  uplink/downlink split of hot samples (Fig 9; needs an
//	          allports/buffer trace)
//
// With -cdf, the full CDF step points are printed as "value cumfrac"
// rows ready for plotting; otherwise a summary line is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/plot"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/trace"
)

func main() {
	dir := flag.String("trace", "", "trace directory (required)")
	what := flag.String("analysis", "bursts", "bursts, gaps, util, markov, hotshare")
	cdf := flag.Bool("cdf", false, "print full CDF points instead of a summary")
	plotOut := flag.Bool("plot", false, "render an ASCII CDF plot (bursts/gaps/util)")
	threshold := flag.Float64("threshold", analysis.DefaultHotThreshold, "hot threshold")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mbanalyze: -trace is required")
		os.Exit(2)
	}
	r, err := trace.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbanalyze: %v\n", err)
		os.Exit(1)
	}
	meta := r.Meta()
	rack := topo.Rack{
		NumServers:  meta.NumServers,
		ServerSpeed: meta.ServerSpeed,
		NumUplinks:  meta.NumUplinks,
		UplinkSpeed: meta.UplinkSpeed,
	}

	speedOf := func(port int) uint64 {
		if rack.IsUplink(port) {
			return rack.UplinkSpeed
		}
		return rack.ServerSpeed
	}

	// Load every available window and split into per-counter series.
	type windowData struct {
		byPort map[analysis.SeriesKey][]analysis.UtilPoint
	}
	var windows []windowData
	for i := 0; i < meta.Windows; i++ {
		if !r.HasWindow(i) {
			continue
		}
		samples, err := r.Window(i)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbanalyze: window %d: %v\n", i, err)
			os.Exit(1)
		}
		wd := windowData{byPort: make(map[analysis.SeriesKey][]analysis.UtilPoint)}
		for key, s := range analysis.Split(samples) {
			if key.Kind != asic.KindBytes {
				continue
			}
			series, err := analysis.UtilizationSeries(s, speedOf(int(key.Port)))
			if err != nil {
				continue
			}
			wd.byPort[key] = series
		}
		windows = append(windows, wd)
	}
	if len(windows) == 0 {
		fmt.Fprintln(os.Stderr, "mbanalyze: trace has no readable windows")
		os.Exit(1)
	}

	printECDF := func(name string, values []float64, unit string) {
		e := stats.NewECDF(values)
		if *cdf {
			for _, p := range e.Points() {
				fmt.Println(p)
			}
			return
		}
		fmt.Printf("%s (%s): n=%d p50=%.3g p90=%.3g p99=%.3g max=%.3g\n",
			name, unit, e.N(), e.Quantile(0.5), e.Quantile(0.9), e.Quantile(0.99), e.Max())
		if *plotOut {
			fmt.Print(plot.CDF(plot.CDFConfig{LogX: e.Min() > 0 && e.Max() > 100*e.Min(), XLabel: unit},
				plot.Series{Name: name, ECDF: e}))
		}
	}

	switch *what {
	case "bursts":
		var durs []float64
		for _, w := range windows {
			for _, s := range w.byPort {
				durs = append(durs, analysis.BurstDurations(analysis.Bursts(s, *threshold))...)
			}
		}
		printECDF("burst durations", durs, "µs")
	case "gaps":
		var gaps []float64
		for _, w := range windows {
			for _, s := range w.byPort {
				gaps = append(gaps, analysis.InterBurstGaps(analysis.Bursts(s, *threshold))...)
			}
		}
		printECDF("inter-burst gaps", gaps, "µs")
		if !*cdf {
			ks := analysis.PoissonTest(gaps)
			fmt.Printf("KS vs exponential: D=%.4f p=%.3g poisson-rejected(0.001)=%v\n", ks.D, ks.PValue, ks.Rejects(0.001))
		}
	case "util":
		var utils []float64
		for _, w := range windows {
			for _, s := range w.byPort {
				utils = append(utils, analysis.Utils(s)...)
			}
		}
		printECDF("utilization", utils, "fraction of line rate")
	case "markov":
		var models []stats.MarkovModel
		for _, w := range windows {
			for _, s := range w.byPort {
				models = append(models, analysis.BurstMarkov(s, *threshold))
			}
		}
		m := stats.MergeMarkov(models...)
		fmt.Printf("markov: %v\n", m)
	case "hotshare":
		var share analysis.HotShare
		for _, w := range windows {
			var series [][]analysis.UtilPoint
			var uplink []bool
			for key, s := range w.byPort {
				series = append(series, s)
				uplink = append(uplink, rack.IsUplink(int(key.Port)))
			}
			hs := analysis.HotPortShare(series, func(i int) bool { return uplink[i] }, *threshold)
			share.UplinkHot += hs.UplinkHot
			share.DownlinkHot += hs.DownlinkHot
		}
		fmt.Printf("hot samples: uplink=%d downlink=%d uplink share=%.1f%%\n",
			share.UplinkHot, share.DownlinkHot, share.UplinkShare()*100)
	default:
		fmt.Fprintf(os.Stderr, "mbanalyze: unknown analysis %q\n", *what)
		os.Exit(2)
	}
}
