package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mburst/internal/ptrace"
	"mburst/internal/shard"
	"mburst/internal/simclock"
	"mburst/internal/trace"
)

// span builds a minimal top-level span for dump-merging tests.
func span(id ptrace.TraceID, stage ptrace.Stage, rack uint32, start, stop int64) ptrace.Span {
	return ptrace.Span{
		Trace: id, Stage: stage, Rack: rack,
		Start: simclock.Epoch.Add(simclock.Duration(start)),
		Stop:  simclock.Epoch.Add(simclock.Duration(stop)),
	}
}

func writeDump(t *testing.T, path string, spans []ptrace.Span) {
	t.Helper()
	data, err := json.Marshal(ptrace.Dump{Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDumpFleetDirMerges lays down a fleet directory whose shard
// subdirectories each hold a saved /spans response, and checks loadDump
// merges them into one canonical stream — including a trace whose
// client and server halves landed on different shards.
func TestLoadDumpFleetDirMerges(t *testing.T) {
	dir := t.TempDir()
	pl, err := shard.Uniform(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	man := trace.FleetManifest{Racks: 2, Placement: pl}
	for s := 0; s < 2; s++ {
		sub := filepath.Join(dir, pl.Name(s))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		man.Shards = append(man.Shards, trace.FleetShard{ID: s, Name: pl.Name(s), Dir: pl.Name(s)})
	}
	if err := trace.WriteFleetManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	// Trace 1 is split across both shard dumps; trace 2 lives on one.
	writeDump(t, filepath.Join(dir, pl.Name(0), "spans.json"), []ptrace.Span{
		span(1, "poll.read", 0, 0, 100),
		span(2, "poll.read", 1, 50, 150),
	})
	writeDump(t, filepath.Join(dir, pl.Name(1), "spans.json"), []ptrace.Span{
		span(1, "server.ingest", 0, 100, 300),
	})

	d, err := loadDump(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 3 {
		t.Fatalf("merged %d spans, want 3: %+v", len(d.Spans), d.Spans)
	}
	views := ptrace.GroupTraces(d.Spans)
	if len(views) != 2 {
		t.Fatalf("merged %d traces, want 2", len(views))
	}
	// The split trace joined: both its halves under one view.
	for _, v := range views {
		if v.ID == 1 && len(v.Spans) != 2 {
			t.Errorf("cross-shard trace holds %d spans, want 2", len(v.Spans))
		}
	}
	// And the merged dump renders like any single-collector dump.
	var buf bytes.Buffer
	render(&buf, d.Spans, 2)
	if !strings.Contains(buf.String(), "3 spans, 2 traces") {
		t.Errorf("render header wrong:\n%s", buf.String())
	}
}

// TestLoadDumpFleetDirWithoutSpans: a fleet directory whose shards were
// run without -tracing is a clear error, not an empty render.
func TestLoadDumpFleetDirWithoutSpans(t *testing.T) {
	dir := t.TempDir()
	pl, err := shard.Uniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, pl.Name(0))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	man := trace.FleetManifest{Racks: 1, Placement: pl,
		Shards: []trace.FleetShard{{ID: 0, Name: pl.Name(0), Dir: pl.Name(0)}}}
	if err := trace.WriteFleetManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDump(dir, ""); err == nil || !strings.Contains(err.Error(), "spans.json") {
		t.Fatalf("missing dumps not surfaced: %v", err)
	}
}
