// Command mbtrace renders a pipeline span dump (internal/ptrace) as
// text: the per-stage latency breakdown, a waterfall for each of the
// slowest traces, and each slow trace's critical path — the sequence of
// stage segments a batch's end-to-end latency actually flowed through.
//
// Usage:
//
//	mbtrace -in spans.json [-n 5]
//	mbtrace -in /var/lib/mburst/fleet [-n 5]
//	mbtrace -url http://127.0.0.1:9903 [-n 5]
//
// -in reads a dump written by mbsim -trace (or a saved /spans response);
// -url fetches /spans from a running daemon's debug mux (the path is
// appended if missing). -in may also name a directory: a plain campaign
// directory is resolved to its spans.json, while a fleet campaign
// directory (one holding a fleet.json manifest) merges the spans.json
// dump saved in each shard's subdirectory — each shard collector's
// /spans response — into one canonical stream, so a sharded campaign's
// traces render exactly like a single collector's. Because dumps are
// canonical and span times are simulated, rendering the same dump twice
// yields byte-identical output.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/trace"
)

func main() {
	in := flag.String("in", "", "span dump file (mbsim -trace output)")
	url := flag.String("url", "", "fetch the dump from a daemon's /spans endpoint")
	n := flag.Int("n", 5, "number of slowest traces to render")
	flag.Parse()

	dump, err := loadDump(*in, *url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbtrace:", err)
		os.Exit(1)
	}
	if len(dump.Spans) == 0 {
		fmt.Fprintln(os.Stderr, "mbtrace: dump holds no spans")
		os.Exit(1)
	}
	render(os.Stdout, dump.Spans, *n)
}

// spansFileName is the conventional span dump name inside campaign and
// shard directories (a saved /spans response).
const spansFileName = "spans.json"

// loadDump reads the span dump from a file, a directory (fleet or
// plain campaign), or a /spans endpoint.
func loadDump(in, url string) (ptrace.Dump, error) {
	switch {
	case in != "" && url != "":
		return ptrace.Dump{}, fmt.Errorf("-in and -url are mutually exclusive")
	case in != "":
		if fi, err := os.Stat(in); err == nil && fi.IsDir() {
			return loadDirDump(in)
		}
		f, err := os.Open(in)
		if err != nil {
			return ptrace.Dump{}, err
		}
		defer f.Close()
		return ptrace.ReadDump(f)
	case url != "":
		if !strings.HasSuffix(url, "/spans") {
			url = strings.TrimSuffix(url, "/") + "/spans"
		}
		resp, err := http.Get(url)
		if err != nil {
			return ptrace.Dump{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return ptrace.Dump{}, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
		}
		return ptrace.ReadDump(resp.Body)
	default:
		return ptrace.Dump{}, fmt.Errorf("one of -in or -url is required")
	}
}

// loadDirDump resolves a directory: a fleet campaign merges every
// shard's saved spans.json into one canonical dump; a plain campaign
// resolves to its own spans.json.
func loadDirDump(dir string) (ptrace.Dump, error) {
	man, ok, err := trace.ReadFleetManifest(dir)
	if err != nil {
		return ptrace.Dump{}, err
	}
	if !ok {
		return readDumpFile(filepath.Join(dir, spansFileName))
	}
	var dumps []ptrace.Dump
	for _, fs := range man.Shards {
		d, err := readDumpFile(filepath.Join(dir, fs.Dir, spansFileName))
		if os.IsNotExist(err) {
			continue // shard ran without -tracing
		}
		if err != nil {
			return ptrace.Dump{}, fmt.Errorf("shard %s: %w", fs.Name, err)
		}
		dumps = append(dumps, d)
	}
	if len(dumps) == 0 {
		return ptrace.Dump{}, fmt.Errorf("%s: no shard holds a %s dump", dir, spansFileName)
	}
	return ptrace.MergeDumps(dumps...), nil
}

// readDumpFile reads one span dump file, passing through os.IsNotExist
// so fleet merging can skip untraced shards.
func readDumpFile(path string) (ptrace.Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return ptrace.Dump{}, err
	}
	defer f.Close()
	return ptrace.ReadDump(f)
}

// render writes the full report: stage breakdown, then waterfall and
// critical path for the slowest n traces.
func render(w io.Writer, spans []ptrace.Span, n int) {
	views := ptrace.GroupTraces(spans)
	fmt.Fprintf(w, "%d spans, %d traces\n\n", len(spans), len(views))

	fmt.Fprintln(w, "stage latency breakdown:")
	fmt.Fprintf(w, "  %-14s %7s %12s %12s %12s %12s %14s\n",
		"stage", "count", "min", "p50", "p99", "max", "total")
	for _, st := range ptrace.StageBreakdown(spans) {
		fmt.Fprintf(w, "  %-14s %7d %12s %12s %12s %12s %14s\n",
			st.Stage, st.Count, st.Min, st.P50, st.P99, st.Max, st.Total)
	}

	slow := ptrace.SlowestN(views, n)
	fmt.Fprintf(w, "\nslowest %d traces:\n", len(slow))
	for _, v := range slow {
		renderTrace(w, v)
	}
}

// laneWidth is the text waterfall lane width in characters.
const laneWidth = 64

// renderTrace writes one trace's waterfall and critical path.
func renderTrace(w io.Writer, v ptrace.TraceView) {
	fmt.Fprintf(w, "\ntrace %016x rack %d epoch %d samples %d bytes %d span %s\n",
		uint64(v.ID), v.Rack, v.Epoch, v.Samples, v.Bytes, v.Duration())
	for _, sp := range v.Spans {
		lane := []byte(strings.Repeat(".", laneWidth))
		lo, hi := laneCell(v, sp.Start), laneCell(v, sp.Stop)
		if hi <= lo {
			hi = lo + 1
		}
		fill := byte('#')
		if sp.Parent != "" {
			fill = '~'
		}
		for i := lo; i < hi && i < laneWidth; i++ {
			lane[i] = fill
		}
		detail := ""
		if sp.Verdict != "" {
			detail += " [" + string(sp.Verdict) + "]"
		}
		if sp.Fault != "" {
			detail += " fault=" + sp.Fault
		}
		fmt.Fprintf(w, "  %-14s |%s| %s%s\n", sp.Stage, lane, sp.Duration(), detail)
	}
	fmt.Fprintf(w, "  critical path:")
	for i, seg := range ptrace.CriticalPath(v) {
		name := string(seg.Stage)
		if name == "" {
			name = "(gap)"
		}
		if i > 0 {
			fmt.Fprintf(w, " ->")
		}
		fmt.Fprintf(w, " %s %s", name, seg.Duration())
	}
	fmt.Fprintln(w)
}

// laneCell maps a simulated time onto the trace's text lane.
func laneCell(v ptrace.TraceView, at simclock.Time) int {
	if v.Duration() <= 0 {
		return 0
	}
	return int(int64(laneWidth) * int64(at.Sub(v.Start)) / int64(v.Duration()))
}
