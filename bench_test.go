// Package mburst's root benchmark harness regenerates every table and
// figure of the paper (one benchmark per artifact — see DESIGN.md §3) and
// runs the ablation benches for the design choices §7 discusses. Figure
// benches attach their headline measurements via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the experiment runner:
//
//	go test -run=^$ -bench=BenchmarkFig3 -benchtime=1x
//
// The figure benches use the quick configuration so a full -bench=. pass
// stays tractable; cmd/mbreport runs the full-scale campaign.
package mburst

import (
	"context"
	"testing"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/core"
	"mburst/internal/detect"
	"mburst/internal/eventq"
	"mburst/internal/fabric"
	"mburst/internal/obs"
	"mburst/internal/pktsample"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func quickExperiment(b *testing.B) *core.Experiment {
	b.Helper()
	exp, err := core.NewExperiment(core.QuickConfig())
	if err != nil {
		b.Fatal(err)
	}
	return exp
}

// ---------------------------------------------------------------------------
// One benchmark per paper table/figure.

func BenchmarkFig1DropUtilizationScatter(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig1DropUtilScatter(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Correlation, "corr")
		b.ReportMetric(float64(len(res.Points)), "points")
	}
}

func BenchmarkFig2DropTimeSeries(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig2DropTimeSeries(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HighStats.ZeroBins, "zero-bin-frac")
	}
}

func BenchmarkTable1SamplingLoss(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Table1SamplingLoss(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Interval == 25*simclock.Microsecond {
				b.ReportMetric(row.MissRate*100, "miss%@25µs")
			}
		}
	}
}

func BenchmarkFig3BurstDurationCDF(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig3BurstDurations(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Durations[workload.Web].Quantile(0.9), "web-p90-µs")
		b.ReportMetric(res.Durations[workload.Hadoop].Quantile(0.9), "hadoop-p90-µs")
	}
}

func BenchmarkTable2MarkovModel(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Table2BurstMarkov(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Models[workload.Web].LikelihoodRatio(), "web-ratio")
	}
}

func BenchmarkFig4InterBurstCDF(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig4InterBurstGaps(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Gaps[workload.Web].At(100)*100, "web-gaps<100µs-%")
	}
}

func BenchmarkFig5PacketSizeMix(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig5PacketSizes(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mix[workload.Web].LargeShift()*100, "web-shift-%")
	}
}

func BenchmarkFig6UtilizationCDF(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig6UtilizationCDF(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HotFrac[workload.Hadoop]*100, "hadoop-hot-%")
	}
}

func BenchmarkFig7UplinkMAD(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig7UplinkMAD(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MAD[workload.Hadoop].EgressFine.Quantile(0.5)*100, "hadoop-mad-p50-%")
	}
}

func BenchmarkFig8ServerCorrelation(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig8ServerCorrelation(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BlockScore[workload.Cache], "cache-block-score")
	}
}

func BenchmarkFig9HotPortShare(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig9HotPortShare(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Share[workload.Hadoop].UplinkShare()*100, "hadoop-uplink-%")
	}
}

func BenchmarkFig10BufferOccupancy(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig10BufferOccupancy(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxHotFrac[workload.Hadoop]*100, "hadoop-max-hot-%")
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationHotThreshold varies the burst criterion around the
// paper's 50% (§5.4 claims the choice barely matters because utilization
// is multimodal).
func BenchmarkAblationHotThreshold(b *testing.B) {
	for _, th := range []float64{0.3, 0.5, 0.7} {
		b.Run(fmtFloat(th), func(b *testing.B) {
			cfg := core.QuickConfig()
			cfg.HotThreshold = th
			exp, err := core.NewExperiment(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				c, err := exp.RunByteCampaign(context.Background(), workload.Hadoop, 0)
				if err != nil {
					b.Fatal(err)
				}
				e := stats.NewECDF(c.BurstDurationsMicros(th))
				b.ReportMetric(e.Quantile(0.9), "p90-µs")
				b.ReportMetric(float64(e.N()), "bursts")
			}
		})
	}
}

// BenchmarkAblationGranularity measures the same rack at 25 µs, 100 µs and
// 1 ms sampling: coarse granularities cannot see µbursts at all (§5.1:
// "fine-grained measurements are needed to capture certain behaviors").
func BenchmarkAblationGranularity(b *testing.B) {
	for _, interval := range []simclock.Duration{
		25 * simclock.Microsecond,
		100 * simclock.Microsecond,
		simclock.Millisecond,
	} {
		b.Run(interval.String(), func(b *testing.B) {
			exp := quickExperiment(b)
			for i := 0; i < b.N; i++ {
				c, err := exp.RunByteCampaign(context.Background(), workload.Hadoop, interval)
				if err != nil {
					b.Fatal(err)
				}
				e := stats.NewECDF(c.BurstDurationsMicros(0))
				b.ReportMetric(float64(e.N()), "bursts")
				if e.N() > 0 {
					b.ReportMetric(e.Quantile(0.9), "p90-µs")
				}
			}
		})
	}
}

// BenchmarkAblationECMPFlowlet compares flow hashing, flowlet switching
// and per-pick round robin on Fig 7's imbalance metric (§7's
// load-balancing implication).
func BenchmarkAblationECMPFlowlet(b *testing.B) {
	for _, mode := range []simnet.BalancerMode{
		simnet.BalanceFlow, simnet.BalanceFlowlet, simnet.BalanceRoundRobin,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := core.QuickConfig()
			cfg.Balancer = mode
			exp, err := core.NewExperiment(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := exp.Fig7UplinkMAD(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MAD[workload.Hadoop].EgressFine.Quantile(0.5)*100, "hadoop-mad-p50-%")
			}
		})
	}
}

// BenchmarkAblationPacing compares unpaced senders against senders capped
// at 95% of line rate with stretched bursts (§7's pacing implication):
// pacing trades burst intensity for duration.
func BenchmarkAblationPacing(b *testing.B) {
	for _, paced := range []bool{false, true} {
		name := "unpaced"
		if paced {
			name = "paced"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.QuickConfig()
			cfg.Paced = paced
			exp, err := core.NewExperiment(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				c, err := exp.RunByteCampaign(context.Background(), workload.Hadoop, 0)
				if err != nil {
					b.Fatal(err)
				}
				e := stats.NewECDF(c.BurstDurationsMicros(0))
				if e.N() > 0 {
					b.ReportMetric(e.Quantile(0.9), "p90-µs")
				}
				var hot float64
				for _, s := range c.WindowSeries {
					hot += analysis.HotFraction(s, 0)
				}
				b.ReportMetric(hot/float64(len(c.WindowSeries))*100, "hot-%")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Extension benches: baselines and future-work experiments.

// BenchmarkBaselinePacketSampling runs the §2 baseline (1-in-30000 sFlow
// sampling) against a hadoop rack and reports how blind it is at 25 µs.
func BenchmarkBaselinePacketSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := simnet.New(simnet.Config{
			Rack:   topo.Default(16),
			Params: workload.DefaultParams(workload.Hadoop),
			Seed:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
		sampler := pktsample.NewSampler(pktsample.DefaultRate, rng.New(2))
		net.SetTxObserver(func(now simclock.Time, p int, nbytes float64, profile asic.TrafficProfile) {
			sampler.Observe(now, p, nbytes, profile)
		})
		dur := 200 * simclock.Millisecond
		net.Run(dur)
		fine, err := pktsample.EstimateUtilization(sampler.Records(), 0,
			net.Switch().Port(0).Speed(), pktsample.DefaultRate,
			simclock.Epoch, simclock.Epoch.Add(dur), 25*simclock.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		cov := pktsample.Coverage(fine)
		b.ReportMetric(cov.EmptyFrac*100, "empty-25µs-%")
	}
}

// BenchmarkExtensionSignalLatency quantifies §7's congestion-control
// implication: the fraction of observed µbursts that are over before an
// RTT/2-delayed congestion signal could reach the sender.
func BenchmarkExtensionSignalLatency(b *testing.B) {
	exp := quickExperiment(b)
	for i := 0; i < b.N; i++ {
		c, err := exp.RunByteCampaign(context.Background(), workload.Web, 0)
		if err != nil {
			b.Fatal(err)
		}
		durs := c.BurstDurationsMicros(0)
		for _, rtt := range []simclock.Duration{50 * simclock.Microsecond, 100 * simclock.Microsecond, 250 * simclock.Microsecond} {
			frac := detect.FractionOverBeforeSignal(durs, rtt/2)
			b.ReportMetric(frac*100, "over-before-"+rtt.String()+"-rtt-%")
		}
	}
}

// BenchmarkExtensionFabricTier measures the future-work tier comparison:
// ToR ports should show a higher coefficient of variation than spine
// ports, which aggregate several racks.
func BenchmarkExtensionFabricTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cfg fabric.Config
		for r := 0; r < 4; r++ {
			app := workload.Hadoop
			if r%2 == 1 {
				app = workload.Cache
			}
			cfg.RackConfigs = append(cfg.RackConfigs, simnet.Config{
				Rack:   topo.Default(16),
				Params: workload.DefaultParams(app),
				Seed:   uint64(100 + r),
				RackID: r,
			})
		}
		c, err := fabric.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c.Run(20 * simclock.Millisecond)
		cmp, err := fabric.CompareTiers(c, 150*simclock.Millisecond, 300*simclock.Microsecond, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.ToR.CoV, "tor-cov")
		b.ReportMetric(cmp.Spine.CoV, "spine-cov")
	}
}

// ---------------------------------------------------------------------------
// Hot-path microbenchmarks (allocation behaviour via -benchmem).

// BenchmarkPollerInstrumented measures the telemetry tax on the collection
// hot path. Each iteration dispatches exactly one poll event (the poller
// reschedules itself), so ns/op is the cost of a single read-emit-schedule
// cycle: "off" is the nil-registry baseline, "on" pays counter increments
// plus a histogram observation. Run with -benchmem to confirm the disabled
// path allocates nothing beyond the baseline; the acceptance bar is <5%
// slowdown when enabled.
func BenchmarkPollerInstrumented(b *testing.B) {
	run := func(b *testing.B, m *collector.PollerMetrics) {
		sw := asic.New(asic.Config{
			PortSpeeds:  topo.Default(32).PortSpeeds(),
			BufferBytes: 1 << 20,
			Alpha:       1,
		})
		p, err := collector.NewPoller(collector.PollerConfig{
			Interval:      25 * simclock.Microsecond,
			Counters:      []collector.CounterSpec{{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}},
			DedicatedCore: true,
			Metrics:       m,
		}, sw, rng.New(3), collector.EmitterFunc(func(wire.Sample) {}))
		if err != nil {
			b.Fatal(err)
		}
		sched := eventq.NewScheduler()
		p.Install(sched)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sched.Step()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		run(b, collector.NewPollerMetrics(obs.NewRegistry()))
	})
}

func BenchmarkASICTick(b *testing.B) {
	rack := topo.Default(32)
	sw := asic.New(asic.Config{
		PortSpeeds:  rack.PortSpeeds(),
		BufferBytes: 1 << 20,
		Alpha:       1,
	})
	profile := asic.TrafficProfile{0.2, 0, 0, 0, 0, 0.8}
	tick := 5 * simclock.Microsecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < rack.NumPorts(); p++ {
			sw.OfferTx(p, 3000, profile)
		}
		sw.Tick(tick)
	}
}

func BenchmarkSimnetMillisecond(b *testing.B) {
	net, err := simnet.New(simnet.Config{
		Rack:   topo.Default(32),
		Params: workload.DefaultParams(workload.Hadoop),
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(simclock.Millisecond)
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	batch := &wire.Batch{Rack: 1}
	for i := 0; i < 1024; i++ {
		batch.Samples = append(batch.Samples, wire.Sample{
			Time:  simclock.Time(i) * simclock.Time(25*simclock.Microsecond),
			Port:  uint16(i % 36),
			Kind:  asic.KindBytes,
			Value: uint64(i) * 6250,
		})
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendBatch(buf[:0], batch)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkECDFQuantile(b *testing.B) {
	src := rng.New(1)
	sample := make([]float64, 100_000)
	for i := range sample {
		sample[i] = src.Exp(100)
	}
	e := stats.NewECDF(sample)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Quantile(0.9)
	}
}

func BenchmarkMarkovFit(b *testing.B) {
	src := rng.New(2)
	seq := make([]bool, 100_000)
	for i := range seq {
		seq[i] = src.Bool(0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.FitMarkov(seq)
	}
}

func fmtFloat(f float64) string {
	switch f {
	case 0.3:
		return "threshold30"
	case 0.5:
		return "threshold50"
	case 0.7:
		return "threshold70"
	default:
		return "threshold"
	}
}
