package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// jsonRT round-trips a snapshot through JSON — exactly how checkpoints
// travel to disk — so the equivalence below proves serialization loses
// nothing (encoding/json renders float64 exactly).
func jsonRT[S any](t *testing.T, s S) S {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var out S
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	return out
}

func snapValues(n int) []float64 {
	out := make([]float64, n)
	v := 1.0
	for i := range out {
		v = v*1.37 + float64(i%5) - 2.2
		out[i] = v
	}
	return out
}

func f64eq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func TestECDFAccSnapshotEquivalence(t *testing.T) {
	values := snapValues(31)
	for k := 0; k <= len(values); k++ {
		var cont, a ECDFAcc
		for _, v := range values {
			cont.Add(v)
		}
		for _, v := range values[:k] {
			a.Add(v)
		}
		var b ECDFAcc
		b.Add(999) // restore must discard pre-existing state
		b.Restore(jsonRT(t, a.Snapshot()))
		for _, v := range values[k:] {
			b.Add(v)
		}
		if !reflect.DeepEqual(b.Values(), cont.Values()) {
			t.Fatalf("split %d: values diverge", k)
		}
		if !reflect.DeepEqual(b.ECDF(), cont.ECDF()) {
			t.Fatalf("split %d: ECDF diverges", k)
		}
	}
}

func TestECDFAccMerge(t *testing.T) {
	values := snapValues(20)
	var whole, left, right ECDFAcc
	whole.AddAll(values...)
	left.AddAll(values[:7]...)
	right.AddAll(values[7:]...)
	left.Merge(&right)
	if !reflect.DeepEqual(left.Values(), whole.Values()) {
		t.Fatal("merge is not concatenation")
	}
}

func markovSeq(n int) []bool {
	out := make([]bool, n)
	x := uint32(12345)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = x&0x30000 != 0
	}
	return out
}

func TestMarkovAccSnapshotEquivalence(t *testing.T) {
	seq := markovSeq(40)
	for k := 0; k <= len(seq); k++ {
		var cont, a MarkovAcc
		feed := func(m *MarkovAcc, from, to int) {
			for i := from; i < to; i++ {
				if i%13 == 12 {
					m.EndSequence()
				}
				m.Observe(seq[i])
			}
		}
		feed(&cont, 0, len(seq))
		feed(&a, 0, k)
		var b MarkovAcc
		b.Restore(jsonRT(t, a.Snapshot()))
		feed(&b, k, len(seq))
		if !markovModelsEqualNaN(b, cont) {
			t.Fatalf("split %d: models diverge", k)
		}
		if b.N() != cont.N() {
			t.Fatalf("split %d: N %d vs %d", k, b.N(), cont.N())
		}
	}
}

// markovModelsEqualNaN compares models bit-exactly, treating NaN equal
// to NaN (reflect.DeepEqual would not).
func markovModelsEqualNaN(a, b MarkovAcc) bool {
	ma, mb := a.Model(), b.Model()
	if ma.Counts != mb.Counts || ma.N != mb.N {
		return false
	}
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			if !f64eq(ma.P[s][t], mb.P[s][t]) {
				return false
			}
		}
	}
	return true
}

func TestMarkovAccMerge(t *testing.T) {
	seq := markovSeq(30)
	var whole, left, right MarkovAcc
	for i, h := range seq {
		whole.Observe(h)
		if i == 14 {
			whole.EndSequence() // the seam both halves see
		}
		if i < 15 {
			left.Observe(h)
		} else {
			right.Observe(h)
		}
	}
	left.Merge(&right)
	if !markovModelsEqualNaN(left, whole) {
		t.Fatal("merged counts diverge from seam-split whole")
	}
}

func TestMomentAccSnapshotEquivalence(t *testing.T) {
	values := snapValues(25)
	for k := 0; k <= len(values); k++ {
		var cont, a MomentAcc
		for _, v := range values {
			cont.Add(v)
		}
		for _, v := range values[:k] {
			a.Add(v)
		}
		var b MomentAcc
		b.Restore(jsonRT(t, a.Snapshot()))
		for _, v := range values[k:] {
			b.Add(v)
		}
		if b.N() != cont.N() || !f64eq(b.Sum(), cont.Sum()) ||
			!f64eq(b.Mean(), cont.Mean()) || !f64eq(b.Min(), cont.Min()) || !f64eq(b.Max(), cont.Max()) {
			t.Fatalf("split %d: moments diverge", k)
		}
	}
	// Empty accumulator round-trips (NaN finalizers never hit the JSON).
	var empty MomentAcc
	var back MomentAcc
	back.Restore(jsonRT(t, empty.Snapshot()))
	if !math.IsNaN(back.Mean()) || back.N() != 0 {
		t.Error("empty accumulator did not survive the round trip")
	}
}

func TestMomentAccMerge(t *testing.T) {
	values := snapValues(18)
	var whole, left, right, empty MomentAcc
	for i, v := range values {
		whole.Add(v)
		if i < 9 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() || !f64eq(left.Sum(), whole.Sum()) ||
		!f64eq(left.Min(), whole.Min()) || !f64eq(left.Max(), whole.Max()) {
		t.Fatal("merge diverges from sequential feed")
	}
	left.Merge(&empty) // no-op
	if left.N() != whole.N() {
		t.Fatal("merging an empty accumulator changed state")
	}
	empty.Merge(&whole)
	if empty.N() != whole.N() || !f64eq(empty.Min(), whole.Min()) {
		t.Fatal("merging into an empty accumulator lost state")
	}
}

func TestHistogramSnapshotEquivalence(t *testing.T) {
	edges := []float64{0, 10, 20, 50}
	values := snapValues(40)
	for k := 0; k <= len(values); k++ {
		cont := NewHistogram(edges)
		a := NewHistogram(edges)
		for _, v := range values {
			cont.Add(v * 10)
		}
		for _, v := range values[:k] {
			a.Add(v * 10)
		}
		b, err := RestoreHistogram(jsonRT(t, a.Snapshot()))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range values[k:] {
			b.Add(v * 10)
		}
		if !reflect.DeepEqual(b, cont) {
			t.Fatalf("split %d: histograms diverge", k)
		}
	}
}

func TestRestoreHistogramRejectsBadSnapshots(t *testing.T) {
	cases := []HistogramSnap{
		{Edges: []float64{1}, Counts: nil},
		{Edges: []float64{1, 1}, Counts: []int64{0}},
		{Edges: []float64{0, 1, 2}, Counts: []int64{1}},
	}
	for i, s := range cases {
		if _, err := RestoreHistogram(s); err == nil {
			t.Errorf("case %d: bad snapshot accepted", i)
		}
	}
}
