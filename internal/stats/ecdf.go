// Package stats implements the statistical machinery the paper's analyses
// rely on: empirical CDFs and quantiles (Figs 3, 4, 6, 7), histograms
// (Fig 5), Pearson correlation matrices (Fig 8), mean absolute deviation
// (Fig 7), five-number boxplot summaries (Fig 10), first-order Markov MLE
// and likelihood ratios (Table 2), a Kolmogorov–Smirnov goodness-of-fit
// test against the exponential distribution (§5.2), and ordinary linear
// correlation (Fig 1).
//
// Everything is plain float64 slices in, summary values out; no hidden
// state, no goroutines. Inputs are never mutated — functions copy before
// sorting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a fixed
// sample. The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input is copied, so the
// caller may keep mutating its slice. An empty sample is allowed; all
// queries on it return NaN.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method, which matches how measurement papers typically report pXX values.
// Quantile(0) is the minimum and Quantile(1) the maximum.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return e.sorted[rank]
}

// Min returns the smallest sample value.
func (e *ECDF) Min() float64 { return e.Quantile(0) }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.Quantile(1) }

// Median returns the 50th percentile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Values returns the sorted sample. The returned slice is owned by the
// ECDF and must not be modified.
func (e *ECDF) Values() []float64 { return e.sorted }

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF as a
// step function, deduplicating repeated x values. This is the series format
// the figure harness prints.
func (e *ECDF) Points() []CDFPoint {
	n := len(e.sorted)
	if n == 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		// Emit only the last occurrence of each distinct value so the
		// cumulative fraction is correct at that value.
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		pts = append(pts, CDFPoint{X: e.sorted[i], P: float64(i+1) / float64(n)})
	}
	return pts
}

// CDFPoint is one step of an empirical CDF: P = P(X <= X-value).
type CDFPoint struct {
	X float64
	P float64
}

// String formats the point as "x p" with compact precision.
func (p CDFPoint) String() string { return fmt.Sprintf("%g %.6f", p.X, p.P) }
