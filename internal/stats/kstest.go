package stats

import (
	"math"
	"sort"
)

// KSResult reports a one-sample Kolmogorov–Smirnov goodness-of-fit test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the empirical
	// CDF and the reference CDF.
	D float64
	// PValue is the asymptotic p-value of observing D under the null
	// hypothesis that the sample is drawn from the reference distribution.
	PValue float64
	// N is the sample size.
	N int
}

// Rejects reports whether the null hypothesis is rejected at significance
// level alpha.
func (r KSResult) Rejects(alpha float64) bool { return r.PValue < alpha }

// KSExponential tests whether the sample is drawn from an exponential
// distribution whose rate is fitted from the sample mean (the natural null
// when asking, as §5.2 does, whether µburst arrivals form a homogeneous
// Poisson process: Poisson arrivals would make inter-arrival gaps
// exponential). The paper reports a p-value "close to 0", rejecting the
// Poisson null.
//
// Fitting the rate from the data makes the classical KS p-value
// conservative-in-the-wrong-direction (the Lilliefors effect); since the
// paper's observed distances are enormous this does not change any
// conclusion, and we report the standard asymptotic p-value like common
// statistical toolkits do under the same usage.
func KSExponential(sample []float64) KSResult {
	n := len(sample)
	if n == 0 {
		return KSResult{D: math.NaN(), PValue: math.NaN()}
	}
	mean := Mean(sample)
	if mean <= 0 {
		// All-zero (or negative) gaps are trivially non-exponential.
		return KSResult{D: 1, PValue: 0, N: n}
	}
	rate := 1 / mean
	s := make([]float64, n)
	copy(s, sample)
	sort.Float64s(s)
	var d float64
	for i, x := range s {
		f := 1 - math.Exp(-rate*x)
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return KSResult{D: d, PValue: ksPValue(d, n), N: n}
}

// ksPValue returns the asymptotic Kolmogorov distribution tail probability
// Q(sqrt(n)*D) with the Stephens small-sample correction.
func ksPValue(d float64, n int) float64 {
	if n <= 0 || math.IsNaN(d) {
		return math.NaN()
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum)+1e-300 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
