package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2, 5})
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.2},
		{2, 0.6},
		{2.5, 0.6},
		{5, 1},
		{100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{5, 1, 3}
	e := NewECDF(in)
	in[0] = -100
	if e.Min() != 1 {
		t.Errorf("ECDF aliased caller slice: min = %v", e.Min())
	}
}

func TestQuantileNearestRank(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.1, 10}, {0.5, 50}, {0.9, 90}, {0.91, 100}, {1, 100},
	}
	for _, c := range cases {
		if got := e.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if e.Median() != 50 {
		t.Errorf("Median = %v", e.Median())
	}
}

func TestEmptyECDF(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.At(1)) || !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty ECDF should return NaN")
	}
	if pts := e.Points(); pts != nil {
		t.Errorf("empty ECDF Points = %v", pts)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 3, 3, 3})
	pts := e.Points()
	want := []CDFPoint{{1, 2.0 / 6}, {2, 3.0 / 6}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("Points = %v", pts)
	}
	for i := range want {
		if pts[i].X != want[i].X || math.Abs(pts[i].P-want[i].P) > 1e-12 {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	// The last point of any non-empty CDF is P=1.
	if pts[len(pts)-1].P != 1 {
		t.Error("CDF does not reach 1")
	}
}

// Property: At is monotone nondecreasing and bounded in [0,1]; Quantile and
// At roundtrip: At(Quantile(q)) >= q.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		if len(raw) == 0 {
			return true
		}
		e := NewECDF(raw)
		vals := e.Values()
		if !sort.Float64sAreSorted(vals) {
			return false
		}
		prev := 0.0
		for _, v := range vals {
			p := e.At(v)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		q := math.Abs(math.Mod(probe, 1))
		return e.At(e.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
