package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin counting histogram over float64 values, used for
// the packet-size distributions of Fig 5 and as a general sanity tool.
// Bin i covers [edges[i], edges[i+1]); values below the first edge or at or
// above the last are counted in Underflow/Overflow.
type Histogram struct {
	edges     []float64
	counts    []int64
	Underflow int64
	Overflow  int64
}

// NewHistogram builds a histogram with the given strictly increasing bin
// edges (at least two). It panics on invalid edges: the bin layout is
// static configuration, not data.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic(fmt.Sprintf("stats: histogram edges not increasing at %d", i))
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Histogram{edges: e, counts: make([]int64, len(edges)-1)}
}

// NumBins returns the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.counts) }

// Edges returns the bin edges. The slice is owned by the histogram.
func (h *Histogram) Edges() []float64 { return h.edges }

// Add records one observation of value v.
func (h *Histogram) Add(v float64) { h.AddN(v, 1) }

// AddN records n observations of value v. Negative n panics.
func (h *Histogram) AddN(v float64, n int64) {
	if n < 0 {
		panic("stats: negative histogram count")
	}
	if n == 0 {
		return
	}
	switch {
	case v < h.edges[0]:
		h.Underflow += n
	case v >= h.edges[len(h.edges)-1]:
		h.Overflow += n
	default:
		i := sort.SearchFloat64s(h.edges, v)
		// SearchFloat64s returns the first edge >= v; the bin index is the
		// edge to the left unless v is exactly on an edge.
		if i < len(h.edges) && h.edges[i] == v {
			h.counts[i] += n
		} else {
			h.counts[i-1] += n
		}
	}
}

// AddBin adds n observations directly to bin i. This is how ASIC size-bin
// counters (which arrive pre-binned) are merged into a histogram.
func (h *Histogram) AddBin(i int, n int64) {
	if i < 0 || i >= len(h.counts) {
		panic(fmt.Sprintf("stats: bin %d out of range [0,%d)", i, len(h.counts)))
	}
	if n < 0 {
		panic("stats: negative histogram count")
	}
	h.counts[i] += n
}

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Total returns the count across all in-range bins (excluding under/overflow).
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Normalized returns the per-bin fraction of the in-range total, which is
// what Fig 5 plots ("normalized histogram"). An empty histogram yields all
// NaN.
func (h *Histogram) Normalized() []float64 {
	total := h.Total()
	out := make([]float64, len(h.counts))
	for i, c := range h.counts {
		if total == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = float64(c) / float64(total)
		}
	}
	return out
}

// Merge adds other's bin counts into h. The two histograms must have
// identical edges.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.edges) != len(other.edges) {
		panic("stats: merging histograms with different binning")
	}
	for i := range h.edges {
		if h.edges[i] != other.edges[i] {
			panic("stats: merging histograms with different binning")
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.Underflow += other.Underflow
	h.Overflow += other.Overflow
}

// Reset zeroes all counts.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.Underflow, h.Overflow = 0, 0
}

// String renders one line per bin: "[lo,hi) count fraction".
func (h *Histogram) String() string {
	var b strings.Builder
	norm := h.Normalized()
	for i := range h.counts {
		fmt.Fprintf(&b, "[%g,%g) %d %.4f\n", h.edges[i], h.edges[i+1], h.counts[i], norm[i])
	}
	return b.String()
}
