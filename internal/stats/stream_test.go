package stats

import (
	"math"
	"reflect"
	"testing"

	"mburst/internal/rng"
)

func markovEqual(a, b MarkovModel) bool {
	if a.Counts != b.Counts || a.N != b.N {
		return false
	}
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			x, y := a.P[s][t], b.P[s][t]
			if math.IsNaN(x) != math.IsNaN(y) {
				return false
			}
			if !math.IsNaN(x) && x != y {
				return false
			}
		}
	}
	return true
}

func TestECDFAccMatchesNewECDF(t *testing.T) {
	src := rng.New(41)
	var vals []float64
	var acc ECDFAcc
	for i := 0; i < 500; i++ {
		v := src.Float64() * 100
		vals = append(vals, v)
		if i%2 == 0 {
			acc.Add(v)
		} else {
			acc.AddAll(v)
		}
	}
	if !reflect.DeepEqual(acc.Values(), vals) {
		t.Fatal("Values() does not preserve insertion order")
	}
	want, got := NewECDF(vals), acc.ECDF()
	if want.N() != got.N() {
		t.Fatalf("N: batch %d, acc %d", want.N(), got.N())
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		if w, g := want.Quantile(q), got.Quantile(q); w != g {
			t.Errorf("Quantile(%v): batch %v, acc %v", q, w, g)
		}
	}
	var empty ECDFAcc
	if empty.ECDF().N() != NewECDF(nil).N() {
		t.Error("empty accumulator ECDF differs from NewECDF(nil)")
	}
}

func TestMarkovAccMatchesFitMerge(t *testing.T) {
	src := rng.New(42)
	seqs := make([][]bool, 6)
	for i := range seqs {
		n := src.Intn(40) // includes empty and single-element sequences
		if i == 1 {
			n = 0
		}
		if i == 2 {
			n = 1
		}
		seqs[i] = make([]bool, n)
		for j := range seqs[i] {
			seqs[i][j] = src.Bool(0.4)
		}
	}

	var acc MarkovAcc
	models := make([]MarkovModel, 0, len(seqs))
	for _, seq := range seqs {
		for _, hot := range seq {
			acc.Observe(hot)
		}
		acc.EndSequence()
		models = append(models, FitMarkov(seq))
	}
	want := MergeMarkov(models...)
	got := acc.Model()
	if !markovEqual(want, got) {
		t.Errorf("models diverge:\nbatch:  %+v\nstream: %+v", want, got)
	}
	if want.N != acc.N() {
		t.Errorf("N: batch %d, acc %d", want.N, acc.N())
	}

	var empty MarkovAcc
	if got := empty.Model(); !markovEqual(FitMarkov(nil), got) {
		t.Errorf("empty accumulator = %+v, want all-NaN model", got)
	}
}

func TestMomentAccMatchesLoop(t *testing.T) {
	src := rng.New(43)
	var acc MomentAcc
	var sum float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	const n = 257
	for i := 0; i < n; i++ {
		v := src.Normal() * 10
		sum += v
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
		acc.Add(v)
	}
	if acc.N() != n {
		t.Errorf("N = %d, want %d", acc.N(), n)
	}
	if acc.Sum() != sum {
		t.Errorf("Sum = %v, want %v (must match left-to-right batch sum exactly)", acc.Sum(), sum)
	}
	if acc.Mean() != sum/float64(n) {
		t.Errorf("Mean = %v, want %v", acc.Mean(), sum/float64(n))
	}
	if acc.Min() != minV || acc.Max() != maxV {
		t.Errorf("extrema = [%v, %v], want [%v, %v]", acc.Min(), acc.Max(), minV, maxV)
	}

	var empty MomentAcc
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Min()) || !math.IsNaN(empty.Max()) {
		t.Error("empty accumulator must report NaN mean and extrema")
	}
	if empty.N() != 0 || empty.Sum() != 0 {
		t.Error("empty accumulator must report zero count and sum")
	}
}
