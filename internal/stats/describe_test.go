package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestMeanAbsDev(t *testing.T) {
	// MAD of {1,1,1,1} is 0; of {0,2} is 1.
	if d := MeanAbsDev([]float64{1, 1, 1, 1}); d != 0 {
		t.Errorf("MAD uniform = %v", d)
	}
	if d := MeanAbsDev([]float64{0, 2}); d != 1 {
		t.Errorf("MAD {0,2} = %v", d)
	}
}

func TestNormalizedMAD(t *testing.T) {
	// Perfectly balanced uplinks.
	if d := NormalizedMAD([]float64{0.5, 0.5, 0.5, 0.5}); d != 0 {
		t.Errorf("balanced MAD = %v", d)
	}
	// One busy uplink out of four: mean=0.25, MAD=(0.75+3*0.25)/4=0.375,
	// normalized 1.5 — severe imbalance, as in Fig 7's tail.
	if d := NormalizedMAD([]float64{1, 0, 0, 0}); !almost(d, 1.5, 1e-12) {
		t.Errorf("skewed MAD = %v", d)
	}
	// Idle period: defined as balanced.
	if d := NormalizedMAD([]float64{0, 0, 0, 0}); d != 0 {
		t.Errorf("idle MAD = %v", d)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yPos); !almost(r, 1, 1e-12) {
		t.Errorf("perfect positive r = %v", r)
	}
	if r := Pearson(x, yNeg); !almost(r, -1, 1e-12) {
		t.Errorf("perfect negative r = %v", r)
	}
	if r := Pearson(x, []float64{7, 7, 7, 7, 7}); !math.IsNaN(r) {
		t.Errorf("constant series r = %v, want NaN", r)
	}
	if r := Pearson(x, []float64{1, 2}); !math.IsNaN(r) {
		t.Errorf("mismatched lengths r = %v, want NaN", r)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	series := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{4, 3, 2, 1},
	}
	m := CorrelationMatrix(series)
	if !almost(m[0][1], 1, 1e-12) || !almost(m[0][2], -1, 1e-12) {
		t.Errorf("matrix = %v", m)
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal[%d] = %v", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] && !(math.IsNaN(m[i][j]) && math.IsNaN(m[j][i])) {
				t.Errorf("asymmetric at %d,%d", i, j)
			}
		}
	}
}

func TestBoxplot(t *testing.T) {
	b := Boxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if b.N != 10 || b.Min != 1 || b.Max != 10 {
		t.Errorf("boxplot extremes: %+v", b)
	}
	if b.Median != 5 {
		t.Errorf("median = %v", b.Median)
	}
	if b.Q1 != 3 || b.Q3 != 8 {
		t.Errorf("quartiles = %v, %v", b.Q1, b.Q3)
	}
	if b.OutlierCount != 0 {
		t.Errorf("outliers = %d", b.OutlierCount)
	}
}

func TestBoxplotOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1000}
	b := Boxplot(xs)
	if b.OutlierCount != 1 {
		t.Errorf("outliers = %d, want 1", b.OutlierCount)
	}
	if b.WhiskerHigh >= 1000 {
		t.Errorf("whisker includes outlier: %v", b.WhiskerHigh)
	}
	if b.Max != 1000 {
		t.Errorf("max = %v", b.Max)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	b := Boxplot(nil)
	if b.N != 0 || !math.IsNaN(b.Median) {
		t.Errorf("empty boxplot = %+v", b)
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestQuickPearsonBounds(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n < 2 {
			return true
		}
		xs, ys = xs[:n], ys[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = float64(i)
			}
			if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
				ys[i] = float64(-i)
			}
			// Clamp magnitudes so sums of squares do not overflow.
			xs[i] = math.Mod(xs[i], 1e6)
			ys[i] = math.Mod(ys[i], 1e6)
		}
		r := Pearson(xs, ys)
		if math.IsNaN(r) {
			return true // zero-variance input
		}
		r2 := Pearson(ys, xs)
		return r >= -1-1e-9 && r <= 1+1e-9 && almost(r, r2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the boxplot five-number summary is ordered.
func TestQuickBoxplotOrdered(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		b := Boxplot(raw)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.WhiskerLow >= b.Min && b.WhiskerHigh <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
