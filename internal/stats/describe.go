package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanAbsDev returns the mean absolute deviation around the mean:
// mean(|x_i - mean|). Fig 7 reports the MAD of the four uplinks'
// utilization within a sampling period, normalized by the mean (see
// NormalizedMAD), so that "deviation of 100%" means the links are, on
// average, a full mean's worth away from balanced.
func MeanAbsDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x - m)
	}
	return sum / float64(len(xs))
}

// NormalizedMAD returns MeanAbsDev(xs)/Mean(xs), the relative imbalance
// metric plotted in Fig 7. A value of 0 means perfectly balanced. When the
// mean is zero (an idle period across all links) the deviation is defined
// as 0: idle links are trivially balanced.
func NormalizedMAD(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	if m == 0 {
		return 0
	}
	return MeanAbsDev(xs) / m
}

// Pearson returns the Pearson linear correlation coefficient between two
// equal-length series. It returns NaN if the lengths differ, are zero, or
// either series has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationMatrix returns the symmetric matrix of pairwise Pearson
// coefficients between the rows of series. Diagonal entries are 1 when the
// row has variance, NaN otherwise. This is the Fig 8 heatmap payload.
func CorrelationMatrix(series [][]float64) [][]float64 {
	n := len(series)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var r float64
			if i == j {
				if Variance(series[i]) > 0 {
					r = 1
				} else {
					r = math.NaN()
				}
			} else {
				r = Pearson(series[i], series[j])
			}
			m[i][j] = r
			m[j][i] = r
		}
	}
	return m
}

// BoxplotSummary is the five-number summary plus mean used to render the
// Fig 10 boxplots.
type BoxplotSummary struct {
	N            int
	Min, Max     float64
	Q1, Median   float64
	Q3           float64
	Mean         float64
	WhiskerLow   float64 // lowest point within 1.5*IQR of Q1
	WhiskerHigh  float64 // highest point within 1.5*IQR of Q3
	OutlierCount int
}

// Boxplot computes the summary for a sample. An empty sample yields a
// zero-count summary with NaN fields.
func Boxplot(xs []float64) BoxplotSummary {
	if len(xs) == 0 {
		nan := math.NaN()
		return BoxplotSummary{Min: nan, Max: nan, Q1: nan, Median: nan, Q3: nan, Mean: nan, WhiskerLow: nan, WhiskerHigh: nan}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	e := &ECDF{sorted: s}
	b := BoxplotSummary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     e.Quantile(0.25),
		Median: e.Quantile(0.5),
		Q3:     e.Quantile(0.75),
		Mean:   Mean(s),
	}
	iqr := b.Q3 - b.Q1
	lo := b.Q1 - 1.5*iqr
	hi := b.Q3 + 1.5*iqr
	b.WhiskerLow, b.WhiskerHigh = b.Max, b.Min
	for _, v := range s {
		if v >= lo && v < b.WhiskerLow {
			b.WhiskerLow = v
		}
		if v <= hi && v > b.WhiskerHigh {
			b.WhiskerHigh = v
		}
		if v < lo || v > hi {
			b.OutlierCount++
		}
	}
	return b
}
