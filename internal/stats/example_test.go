package stats_test

import (
	"fmt"

	"mburst/internal/stats"
)

// ExampleECDF reproduces how the paper reads its CDFs: percentile lookups
// on an empirical sample.
func ExampleECDF() {
	durationsMicros := []float64{25, 25, 25, 50, 50, 75, 100, 150, 200, 450}
	e := stats.NewECDF(durationsMicros)
	fmt.Printf("p50 = %.0fµs\n", e.Quantile(0.5))
	fmt.Printf("p90 = %.0fµs\n", e.Quantile(0.9))
	fmt.Printf("fraction ≤ one 25µs period: %.0f%%\n", e.At(25)*100)
	// Output:
	// p50 = 50µs
	// p90 = 200µs
	// fraction ≤ one 25µs period: 30%
}

// ExampleFitMarkov fits the paper's Table 2 model to a hot/cold sequence
// and reads off the burst-correlation likelihood ratio.
func ExampleFitMarkov() {
	// A clustered sequence: long cold stretches, sticky hot runs.
	var seq []bool
	for i := 0; i < 20; i++ {
		seq = append(seq, false, false, false, false, false, false, false, false)
		seq = append(seq, true, true)
	}
	m := stats.FitMarkov(seq)
	fmt.Printf("p(1|0) = %.3f\n", m.P[0][1])
	fmt.Printf("p(1|1) = %.3f\n", m.P[1][1])
	fmt.Printf("likelihood ratio r = %.1f (r ≈ 1 would mean independent bursts)\n", m.LikelihoodRatio())
	// Output:
	// p(1|0) = 0.125
	// p(1|1) = 0.513
	// likelihood ratio r = 4.1 (r ≈ 1 would mean independent bursts)
}

// ExampleKSExponential runs the §5.2 test: are inter-burst gaps consistent
// with Poisson burst arrivals?
func ExampleKSExponential() {
	// A bimodal mixture: clustered short gaps plus very long idles —
	// nothing like an exponential.
	var gaps []float64
	for i := 0; i < 300; i++ {
		gaps = append(gaps, 40+float64(i%11))  // ~40µs clustered gaps
		gaps = append(gaps, 100000+float64(i)) // ~100ms idles
	}
	res := stats.KSExponential(gaps)
	fmt.Printf("rejects Poisson at 0.1%% significance: %v\n", res.Rejects(0.001))
	// Output:
	// rejects Poisson at 0.1% significance: true
}

// ExampleNormalizedMAD computes Fig 7's imbalance metric for one sampling
// period of four uplinks.
func ExampleNormalizedMAD() {
	balanced := []float64{0.30, 0.31, 0.29, 0.30}
	skewed := []float64{0.90, 0.10, 0.05, 0.15}
	fmt.Printf("balanced: %.2f\n", stats.NormalizedMAD(balanced))
	fmt.Printf("skewed:   %.2f\n", stats.NormalizedMAD(skewed))
	// Output:
	// balanced: 0.02
	// skewed:   1.00
}
