package stats

import "fmt"

// Snapshot/Restore give every streaming accumulator an explicit,
// JSON-serializable state surface: the collector checkpointer persists
// snapshots, and a restored accumulator continues bit-identically to one
// that never stopped (proven in snapshot_test.go, including a JSON
// round-trip, since that is exactly how checkpoints travel). Snapshots
// store raw state — counts, sums, values — never derived statistics, so
// NaN-producing finalizers (Model, Mean) stay out of the encoding, which
// JSON cannot carry.
//
// Merge combines two independently-fed accumulators where the statistic
// is order-free or concatenation-shaped — the fleet-scale aggregation
// primitive: per-rack accumulators merge into fleet totals.

// ECDFAccSnap is the serializable state of an ECDFAcc.
type ECDFAccSnap struct {
	Values []float64 `json:"values"`
}

// Snapshot captures the accumulator's state. The returned slice is a
// copy; the accumulator may keep growing.
func (a *ECDFAcc) Snapshot() ECDFAccSnap {
	return ECDFAccSnap{Values: append([]float64(nil), a.values...)}
}

// Restore replaces the accumulator's state with a snapshot. Continuing
// to Add afterwards is bit-identical to never having stopped.
func (a *ECDFAcc) Restore(s ECDFAccSnap) {
	a.values = append(a.values[:0], s.Values...)
}

// Merge appends o's values after a's, exactly as if every o.Add had been
// issued on a after a's own. ECDF() is order-free (it sorts); Values()
// order is a-then-o.
func (a *ECDFAcc) Merge(o *ECDFAcc) {
	a.values = append(a.values, o.values...)
}

// MarkovAccSnap is the serializable state of a MarkovAcc, including the
// in-progress sequence seam (prev/primed) so a restored accumulator
// continues the interrupted sequence without fabricating a transition.
type MarkovAccSnap struct {
	Counts [2][2]int64 `json:"counts"`
	N      int64       `json:"n"`
	Prev   bool        `json:"prev"`
	Primed bool        `json:"primed"`
}

// Snapshot captures the accumulator's state.
func (a *MarkovAcc) Snapshot() MarkovAccSnap {
	return MarkovAccSnap{Counts: a.counts, N: a.n, Prev: a.prev, Primed: a.primed}
}

// Restore replaces the accumulator's state with a snapshot.
func (a *MarkovAcc) Restore(s MarkovAccSnap) {
	a.counts, a.n, a.prev, a.primed = s.Counts, s.N, s.Prev, s.Primed
}

// Merge adds o's transition counts to a's — the MergeMarkov identity at
// the accumulator level. Sequences do not splice across the merge: a's
// in-progress sequence continues unchanged, and o's open seam (if any)
// is dropped, exactly as if both sides had called EndSequence before
// their windows were combined.
func (a *MarkovAcc) Merge(o *MarkovAcc) {
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			a.counts[s][t] += o.counts[s][t]
		}
	}
	a.n += o.n
}

// MomentAccSnap is the serializable state of a MomentAcc. Min/Max are
// stored raw (meaningful only when N > 0), keeping NaN out of the JSON.
type MomentAccSnap struct {
	N   int64   `json:"n"`
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Snapshot captures the accumulator's state.
func (a *MomentAcc) Snapshot() MomentAccSnap {
	return MomentAccSnap{N: a.n, Sum: a.sum, Min: a.min, Max: a.max}
}

// Restore replaces the accumulator's state with a snapshot.
func (a *MomentAcc) Restore(s MomentAccSnap) {
	a.n, a.sum, a.min, a.max = s.N, s.Sum, s.Min, s.Max
}

// Merge folds o into a as if o's values had been Added to a after a's
// own: counts and sums add, extrema combine. Mean() remains the
// left-to-right sum of the concatenation.
func (a *MomentAcc) Merge(o *MomentAcc) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
	a.n += o.n
	a.sum += o.sum
}

// HistogramSnap is the serializable state of a Histogram.
type HistogramSnap struct {
	Edges     []float64 `json:"edges"`
	Counts    []int64   `json:"counts"`
	Underflow int64     `json:"underflow"`
	Overflow  int64     `json:"overflow"`
}

// Snapshot captures the histogram's state.
func (h *Histogram) Snapshot() HistogramSnap {
	s := HistogramSnap{
		Edges:     append([]float64(nil), h.Edges()...),
		Counts:    make([]int64, h.NumBins()),
		Underflow: h.Underflow,
		Overflow:  h.Overflow,
	}
	for i := range s.Counts {
		s.Counts[i] = h.Count(i)
	}
	return s
}

// RestoreHistogram rebuilds a histogram from a snapshot. The binning is
// validated like NewHistogram's, but as an error rather than a panic:
// snapshots come from disk, not from code.
func RestoreHistogram(s HistogramSnap) (*Histogram, error) {
	if len(s.Edges) < 2 {
		return nil, fmt.Errorf("stats: histogram snapshot has %d edges, need >= 2", len(s.Edges))
	}
	for i := 1; i < len(s.Edges); i++ {
		if !(s.Edges[i] > s.Edges[i-1]) {
			return nil, fmt.Errorf("stats: histogram snapshot edges not increasing at %d", i)
		}
	}
	if len(s.Counts) != len(s.Edges)-1 {
		return nil, fmt.Errorf("stats: histogram snapshot has %d counts for %d bins", len(s.Counts), len(s.Edges)-1)
	}
	h := NewHistogram(s.Edges)
	copy(h.counts, s.Counts)
	h.Underflow = s.Underflow
	h.Overflow = s.Overflow
	return h, nil
}
