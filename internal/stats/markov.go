package stats

import (
	"fmt"
	"math"
)

// MarkovModel is the two-state first-order Markov chain the paper fits to
// the hot/not-hot interval sequence (§5.1, Table 2). State 1 means the
// sampling interval was "hot" (utilization above the burst threshold).
type MarkovModel struct {
	// P[a][b] is the MLE of p(x_t = b | x_{t-1} = a).
	P [2][2]float64
	// Counts[a][b] is the number of observed a->b transitions.
	Counts [2][2]int64
	// N is the number of transitions observed (len(sequence) - 1).
	N int64
}

// FitMarkov computes the maximum-likelihood transition matrix from a
// boolean hot/not-hot sequence, exactly as in the paper:
//
//	p(x_t=a | x_{t-1}=b) = count(x_t=a, x_{t-1}=b) / count(x_{t-1}=b)
//
// A sequence with fewer than two samples yields a model with NaN
// probabilities and zero counts.
func FitMarkov(seq []bool) MarkovModel {
	var m MarkovModel
	if len(seq) < 2 {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				m.P[a][b] = math.NaN()
			}
		}
		return m
	}
	for i := 1; i < len(seq); i++ {
		a, b := boolToState(seq[i-1]), boolToState(seq[i])
		m.Counts[a][b]++
		m.N++
	}
	for a := 0; a < 2; a++ {
		rowTotal := m.Counts[a][0] + m.Counts[a][1]
		for b := 0; b < 2; b++ {
			if rowTotal == 0 {
				m.P[a][b] = math.NaN()
			} else {
				m.P[a][b] = float64(m.Counts[a][b]) / float64(rowTotal)
			}
		}
	}
	return m
}

func boolToState(hot bool) int {
	if hot {
		return 1
	}
	return 0
}

// LikelihoodRatio returns r = p(1|1)/p(1|0), the paper's burst-correlation
// statistic. r ≈ 1 would mean burst intervals arrive independently of the
// previous interval; the paper reports r of 119.7 (Web), 45.1 (Cache) and
// 15.6 (Hadoop). The ratio is +Inf when bursts never start from a cold
// interval but do persist, and NaN when undefined.
func (m MarkovModel) LikelihoodRatio() float64 {
	p11 := m.P[1][1]
	p01 := m.P[0][1]
	if math.IsNaN(p11) || math.IsNaN(p01) {
		return math.NaN()
	}
	if p01 == 0 {
		if p11 == 0 {
			return math.NaN()
		}
		return math.Inf(1)
	}
	return p11 / p01
}

// StationaryHotFraction returns the long-run fraction of hot intervals
// implied by the fitted chain, π(1) = p01 / (p01 + p10). NaN when the chain
// is degenerate.
func (m MarkovModel) StationaryHotFraction() float64 {
	p01 := m.P[0][1]
	p10 := m.P[1][0]
	if math.IsNaN(p01) || math.IsNaN(p10) || p01+p10 == 0 {
		return math.NaN()
	}
	return p01 / (p01 + p10)
}

// MergeMarkov combines transition counts from independently fitted models
// (e.g. one per measurement window) and refits the MLE. Merging counts —
// rather than concatenating sequences — avoids fabricating a transition
// across window seams.
func MergeMarkov(models ...MarkovModel) MarkovModel {
	var m MarkovModel
	for _, src := range models {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				m.Counts[a][b] += src.Counts[a][b]
			}
		}
		m.N += src.N
	}
	for a := 0; a < 2; a++ {
		rowTotal := m.Counts[a][0] + m.Counts[a][1]
		for b := 0; b < 2; b++ {
			if rowTotal == 0 {
				m.P[a][b] = math.NaN()
			} else {
				m.P[a][b] = float64(m.Counts[a][b]) / float64(rowTotal)
			}
		}
	}
	return m
}

// String renders the matrix in the Table 2 layout.
func (m MarkovModel) String() string {
	return fmt.Sprintf("p(0|0)=%.3f p(1|0)=%.3f p(0|1)=%.3f p(1|1)=%.3f (n=%d, r=%.1f)",
		m.P[0][0], m.P[0][1], m.P[1][0], m.P[1][1], m.N, m.LikelihoodRatio())
}
