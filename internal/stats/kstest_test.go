package stats

import (
	"math"
	"testing"

	"mburst/internal/rng"
)

func TestKSExponentialAcceptsExponential(t *testing.T) {
	r := rng.New(101)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Exp(40)
	}
	res := KSExponential(sample)
	if res.N != 5000 {
		t.Fatalf("N = %d", res.N)
	}
	if res.Rejects(0.01) {
		t.Errorf("true exponential rejected: D=%v p=%v", res.D, res.PValue)
	}
}

func TestKSExponentialRejectsHeavyTail(t *testing.T) {
	// Inter-burst gaps in the paper are a mixture of very short
	// within-episode gaps and very long idle periods — nothing like an
	// exponential. KS must reject with p ~ 0 (§5.2).
	r := rng.New(103)
	sample := make([]float64, 5000)
	for i := range sample {
		if r.Bool(0.7) {
			sample[i] = r.Exp(50) // short gaps ~50µs
		} else {
			sample[i] = 1e5 + r.Pareto(1e5, 0.9) // idle periods ~100ms+
		}
	}
	res := KSExponential(sample)
	if !res.Rejects(1e-6) {
		t.Errorf("heavy-tail mixture not rejected: D=%v p=%v", res.D, res.PValue)
	}
	if res.PValue > 1e-6 {
		t.Errorf("p-value = %v, want ~0", res.PValue)
	}
}

func TestKSExponentialRejectsUniform(t *testing.T) {
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = float64(i) / 2000
	}
	res := KSExponential(sample)
	if !res.Rejects(0.001) {
		t.Errorf("uniform not rejected: D=%v p=%v", res.D, res.PValue)
	}
}

func TestKSEdgeCases(t *testing.T) {
	res := KSExponential(nil)
	if !math.IsNaN(res.D) || !math.IsNaN(res.PValue) {
		t.Errorf("empty sample: %+v", res)
	}
	res = KSExponential([]float64{0, 0, 0})
	if res.PValue != 0 {
		t.Errorf("all-zero sample p = %v, want 0", res.PValue)
	}
}

func TestKolmogorovQ(t *testing.T) {
	// Known values of the Kolmogorov distribution tail.
	cases := []struct {
		lambda, want, tol float64
	}{
		{0.5, 0.9639, 1e-3},
		{1.0, 0.2700, 1e-3},
		{1.5, 0.0222, 1e-3},
		{2.0, 0.00067, 1e-4},
	}
	for _, c := range cases {
		if got := kolmogorovQ(c.lambda); math.Abs(got-c.want) > c.tol {
			t.Errorf("Q(%v) = %v, want %v", c.lambda, got, c.want)
		}
	}
	if kolmogorovQ(0) != 1 || kolmogorovQ(-1) != 1 {
		t.Error("Q of non-positive lambda should be 1")
	}
}
