package stats

import "math"

// This file holds the streaming counterparts of the batch estimators: the
// accumulators the single-pass analysis engine (internal/analysis's
// SeriesDemux/BurstSegmenter and the mbcollectd live-figures tap) feeds
// one observation at a time. They are exact, not sketched: every
// accumulator reproduces, bit for bit, what the batch function computes on
// the concatenated inputs, preserving the repository's byte-identical
// campaign guarantee. Bounded-memory approximations would trade that away
// for nothing — the values the streaming paths retain (burst durations,
// inter-burst gaps, transition counts) are sparse relative to the sample
// stream, so exactness is affordable.

// ECDFAcc collects sample values incrementally for an exact empirical
// CDF. ECDF() is byte-identical to NewECDF over the same values in any
// order (the ECDF sorts); Values() preserves insertion order so callers
// that need the batch path's exact append order (e.g. for order-sensitive
// float reductions like the KS test's mean) can replay it. The zero value
// is ready to use.
type ECDFAcc struct {
	values []float64
}

// Add records one value.
//
//lint:hotpath per-sample accumulation; amortized slice growth only
func (a *ECDFAcc) Add(v float64) { a.values = append(a.values, v) }

// AddAll records a batch of values in order.
//
//lint:hotpath per-batch accumulation; amortized slice growth only
func (a *ECDFAcc) AddAll(vs ...float64) { a.values = append(a.values, vs...) }

// N returns the number of values recorded.
func (a *ECDFAcc) N() int { return len(a.values) }

// Values returns the recorded values in insertion order. The slice is
// owned by the accumulator and must not be modified.
func (a *ECDFAcc) Values() []float64 { return a.values }

// ECDF finalizes the accumulator into an ECDF — identical to
// NewECDF(a.Values()). The accumulator remains usable; later Adds are
// not reflected in already-built ECDFs.
func (a *ECDFAcc) ECDF() *ECDF { return NewECDF(a.values) }

// MarkovAcc fits the two-state first-order Markov chain incrementally.
// Observations within one sequence contribute transitions; EndSequence
// marks a seam (a window boundary) across which no transition is
// fabricated. Model() is byte-identical to
//
//	MergeMarkov(FitMarkov(seq1), FitMarkov(seq2), ...)
//
// over the per-sequence hot/not-hot slices, which is exactly how Table 2
// merges per-window fits. The zero value is ready to use.
type MarkovAcc struct {
	counts [2][2]int64
	n      int64
	prev   bool
	primed bool
}

// Observe records the next hot/not-hot interval of the current sequence.
//
//lint:hotpath per-interval transition count on the streaming figure path
func (a *MarkovAcc) Observe(hot bool) {
	if a.primed {
		a.counts[boolToState(a.prev)][boolToState(hot)]++
		a.n++
	}
	a.prev = hot
	a.primed = true
}

// EndSequence closes the current sequence: the next Observe starts a
// fresh one, so no transition spans the seam.
func (a *MarkovAcc) EndSequence() { a.primed = false }

// N returns the number of transitions observed.
func (a *MarkovAcc) N() int64 { return a.n }

// Model finalizes the accumulated counts into the MLE transition matrix.
// An accumulator that saw fewer than two observations in every sequence
// yields the same all-NaN model as FitMarkov on a short sequence.
func (a *MarkovAcc) Model() MarkovModel {
	m := MarkovModel{Counts: a.counts, N: a.n}
	for s := 0; s < 2; s++ {
		rowTotal := m.Counts[s][0] + m.Counts[s][1]
		for t := 0; t < 2; t++ {
			if rowTotal == 0 {
				m.P[s][t] = math.NaN()
			} else {
				m.P[s][t] = float64(m.Counts[s][t]) / float64(rowTotal)
			}
		}
	}
	return m
}

// MomentAcc accumulates count, sum and extrema in one pass. Mean() sums
// left to right, matching the batch loops it replaces (`for … { sum += v
// }; sum/n`), so replacing a batch mean with a MomentAcc fed in the same
// order is bit-identical. For exact deviation statistics (MAD, quantiles)
// keep the values in an ECDFAcc and finalize with NormalizedMAD or
// ECDF(): those statistics have no exact O(1) streaming form, and this
// package does not sketch. The zero value is ready to use.
type MomentAcc struct {
	n        int64
	sum      float64
	min, max float64
}

// Add records one value.
//
//lint:hotpath per-sample moment update; must stay allocation-free
func (a *MomentAcc) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

// N returns the number of values recorded.
func (a *MomentAcc) N() int64 { return a.n }

// Sum returns the left-to-right sum of recorded values.
func (a *MomentAcc) Sum() float64 { return a.sum }

// Mean returns Sum()/N(), or NaN when empty.
func (a *MomentAcc) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// Min returns the smallest recorded value, or NaN when empty.
func (a *MomentAcc) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest recorded value, or NaN when empty.
func (a *MomentAcc) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}
