package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 100, 500, 1500})
	h.Add(50)    // bin 0
	h.Add(100)   // bin 1 (left-closed)
	h.Add(499)   // bin 1
	h.Add(500)   // bin 2
	h.Add(1499)  // bin 2
	h.Add(1500)  // overflow (right-open last edge)
	h.Add(-1)    // underflow
	h.AddN(0, 3) // bin 0, exactly on first edge
	if h.Count(0) != 4 || h.Count(1) != 2 || h.Count(2) != 2 {
		t.Fatalf("counts = %d %d %d", h.Count(0), h.Count(1), h.Count(2))
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramNormalized(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2})
	h.AddN(0.5, 3)
	h.AddN(1.5, 1)
	norm := h.Normalized()
	if !almost(norm[0], 0.75, 1e-12) || !almost(norm[1], 0.25, 1e-12) {
		t.Errorf("normalized = %v", norm)
	}
	empty := NewHistogram([]float64{0, 1})
	if !math.IsNaN(empty.Normalized()[0]) {
		t.Error("empty normalized should be NaN")
	}
}

func TestHistogramAddBinAndMerge(t *testing.T) {
	a := NewHistogram([]float64{0, 64, 512, 1518})
	b := NewHistogram([]float64{0, 64, 512, 1518})
	a.AddBin(0, 10)
	a.AddBin(2, 5)
	b.AddBin(0, 1)
	b.AddBin(1, 2)
	b.Underflow = 7
	a.Merge(b)
	if a.Count(0) != 11 || a.Count(1) != 2 || a.Count(2) != 5 || a.Underflow != 7 {
		t.Errorf("after merge: %v under=%d", []int64{a.Count(0), a.Count(1), a.Count(2)}, a.Underflow)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	a := NewHistogram([]float64{0, 1, 2})
	b := NewHistogram([]float64{0, 1, 3})
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge did not panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram([]float64{0, 10})
	h.AddN(5, 100)
	h.Add(-1)
	h.Add(11)
	h.Reset()
	if h.Total() != 0 || h.Underflow != 0 || h.Overflow != 0 {
		t.Error("reset did not zero counts")
	}
}

func TestHistogramInvalidConstruction(t *testing.T) {
	for _, edges := range [][]float64{nil, {1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestHistogramNegativeCountPanics(t *testing.T) {
	h := NewHistogram([]float64{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("negative AddN did not panic")
		}
	}()
	h.AddN(0.5, -1)
}

// Property: every added in-range value lands in exactly one bin, and the
// total always equals the number of in-range additions.
func TestQuickHistogramConservation(t *testing.T) {
	edges := []float64{0, 64, 128, 256, 512, 1024, 1519}
	f := func(raw []uint16) bool {
		h := NewHistogram(edges)
		inRange := 0
		for _, r := range raw {
			v := float64(r % 2000)
			h.Add(v)
			if v >= edges[0] && v < edges[len(edges)-1] {
				inRange++
			}
		}
		return h.Total() == int64(inRange) &&
			h.Total()+h.Underflow+h.Overflow == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
