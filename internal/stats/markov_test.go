package stats

import (
	"math"
	"testing"
)

func TestFitMarkovCountsAndMLE(t *testing.T) {
	// Sequence: 0 0 1 1 1 0 0 0 1 0
	// Transitions: 00,01,11,11,10,00,00,01,10 ->
	// counts: 00:3 01:2 10:2 11:2
	seq := []bool{false, false, true, true, true, false, false, false, true, false}
	m := FitMarkov(seq)
	if m.N != 9 {
		t.Fatalf("N = %d", m.N)
	}
	if m.Counts[0][0] != 3 || m.Counts[0][1] != 2 || m.Counts[1][0] != 2 || m.Counts[1][1] != 2 {
		t.Fatalf("counts = %v", m.Counts)
	}
	if !almost(m.P[0][1], 0.4, 1e-12) || !almost(m.P[1][1], 0.5, 1e-12) {
		t.Errorf("P = %v", m.P)
	}
	if r := m.LikelihoodRatio(); !almost(r, 0.5/0.4, 1e-12) {
		t.Errorf("r = %v", r)
	}
}

func TestMarkovRowsSumToOne(t *testing.T) {
	seq := make([]bool, 0, 1000)
	state := false
	for i := 0; i < 1000; i++ {
		if i%7 == 0 {
			state = !state
		}
		seq = append(seq, state)
	}
	m := FitMarkov(seq)
	for a := 0; a < 2; a++ {
		sum := m.P[a][0] + m.P[a][1]
		if !almost(sum, 1, 1e-12) {
			t.Errorf("row %d sums to %v", a, sum)
		}
	}
}

func TestMarkovDegenerate(t *testing.T) {
	// Fewer than two samples: all NaN.
	m := FitMarkov([]bool{true})
	if !math.IsNaN(m.P[0][0]) || !math.IsNaN(m.LikelihoodRatio()) {
		t.Error("single-sample fit should be NaN")
	}
	// Never hot: hot row unseen -> NaN probabilities there.
	m = FitMarkov([]bool{false, false, false})
	if !math.IsNaN(m.P[1][1]) {
		t.Errorf("unseen-state row = %v", m.P[1])
	}
	if !math.IsNaN(m.LikelihoodRatio()) {
		t.Errorf("r on never-hot = %v", m.LikelihoodRatio())
	}
	// Always hot after a cold start, p01=1; persists p11=1 -> r=1.
	m = FitMarkov([]bool{false, true, true, true})
	if r := m.LikelihoodRatio(); !almost(r, 1, 1e-12) {
		t.Errorf("r = %v", r)
	}
}

func TestMarkovInfiniteRatio(t *testing.T) {
	// Bursts persist but never start from cold within the window:
	// sequence starts hot and has no 0->1 transition.
	m := FitMarkov([]bool{true, true, true, false, false})
	if r := m.LikelihoodRatio(); !math.IsInf(r, 1) {
		t.Errorf("r = %v, want +Inf", r)
	}
}

func TestStationaryHotFraction(t *testing.T) {
	// Alternating sequence: p01 = 1, p10 = 1 -> stationary 0.5.
	seq := []bool{false, true, false, true, false, true}
	m := FitMarkov(seq)
	if f := m.StationaryHotFraction(); !almost(f, 0.5, 1e-12) {
		t.Errorf("stationary = %v", f)
	}
}

func TestMergeMarkov(t *testing.T) {
	a := FitMarkov([]bool{false, true, true, false})
	b := FitMarkov([]bool{false, false, true, true})
	m := MergeMarkov(a, b)
	if m.N != a.N+b.N {
		t.Errorf("N = %d", m.N)
	}
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			if m.Counts[x][y] != a.Counts[x][y]+b.Counts[x][y] {
				t.Errorf("counts[%d][%d] = %d", x, y, m.Counts[x][y])
			}
		}
	}
	// Merging does NOT create a seam transition: sequence a ends hot=false
	// and b starts false, but counts must not include an extra 0->0.
	if m.Counts[0][0] != a.Counts[0][0]+b.Counts[0][0] {
		t.Error("seam transition fabricated")
	}
	// Rows renormalize.
	for x := 0; x < 2; x++ {
		if sum := m.P[x][0] + m.P[x][1]; !almost(sum, 1, 1e-12) {
			t.Errorf("row %d sums to %v", x, sum)
		}
	}
	// Merging nothing gives a NaN model.
	empty := MergeMarkov()
	if !math.IsNaN(empty.P[0][0]) {
		t.Error("empty merge should be NaN")
	}
}

func TestMarkovCorrelatedBurstsHaveHighRatio(t *testing.T) {
	// Synthesize a bursty sequence the way the paper describes: long cold
	// stretches with occasional multi-interval bursts. The likelihood
	// ratio must be much greater than 1.
	var seq []bool
	for i := 0; i < 200; i++ {
		for j := 0; j < 97; j++ {
			seq = append(seq, false)
		}
		for j := 0; j < 3; j++ {
			seq = append(seq, true)
		}
	}
	m := FitMarkov(seq)
	if r := m.LikelihoodRatio(); r < 10 {
		t.Errorf("bursty sequence likelihood ratio = %v, want >> 1", r)
	}
}
