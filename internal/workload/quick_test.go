package workload

import (
	"math"
	"testing"
	"testing/quick"

	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/topo"
)

// Property: flow weights always sum to 1 and are strictly positive.
func TestQuickFlowWeights(t *testing.T) {
	gen, err := NewGenerator(DefaultParams(Web), topo.Default(4), 0, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	f := func(nRaw uint8) bool {
		n := int(nRaw%12) + 1
		w := gen.flowWeights(src, n)
		if len(w) != n {
			return false
		}
		var sum float64
		for _, v := range w {
			if v <= 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: otherServer never returns the excluded server and stays in
// range.
func TestQuickOtherServer(t *testing.T) {
	gen, err := NewGenerator(DefaultParams(Hadoop), topo.Default(16), 0, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	f := func(sRaw uint8) bool {
		s := int(sRaw % 16)
		p := gen.otherServer(src, s)
		return p != s && p >= 0 && p < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: sampled episodes respect their configured bounds, including
// the spike-stretch cap of 1.5 × DurMax.
func TestQuickEpisodeBounds(t *testing.T) {
	params := DefaultParams(Hadoop)
	gen, err := NewGenerator(params, topo.Default(4), 0, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	ep := params.FanIn
	maxDur := ep.DurMax * 3 / 2
	maxIntensity := ep.IntensityMax * ep.SpikeMax
	f := func(uint8) bool {
		dur, intensity := gen.sampleEpisode(&ep, src)
		if dur < ep.DurScale/2 || dur > maxDur {
			return false
		}
		return intensity >= ep.IntensityMin && intensity <= maxIntensity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: gaps are always at least 1ns and finite for any load scale.
func TestQuickGapPositivity(t *testing.T) {
	params := DefaultParams(Cache)
	f := func(scaleRaw uint8) bool {
		scale := 0.25 + float64(scaleRaw%16)/4
		gen, err := NewGenerator(params, topo.Default(4), 0, scale, rng.New(7))
		if err != nil {
			return false
		}
		src := rng.New(8)
		for i := 0; i < 50; i++ {
			g := gen.nextGap(&params.FanIn, src)
			if g < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every started flow is eventually ended when the scheduler
// drains far past the last scheduled event (no flow leaks).
func TestQuickFlowLifecycleBalance(t *testing.T) {
	f := func(seed uint16, appRaw uint8) bool {
		app := Apps[int(appRaw)%len(Apps)]
		gen, err := NewGenerator(DefaultParams(app), topo.Default(4), 0, 1, rng.New(uint64(seed)))
		if err != nil {
			return false
		}
		sched := eventq.NewScheduler()
		rec := newRecorder()
		gen.Install(sched, rec)
		sched.RunUntil(simclock.Epoch.Add(simclock.Millis(10)))
		// Active flows = started - ended; each must correspond to a
		// pending end event or a base flow (base flows live until renewed).
		active := int(gen.FlowsStarted() - gen.FlowsEnded())
		return active == len(rec.active) && active >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
