package workload

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/ecmp"
	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/topo"
)

// Generator drives one rack's servers with an application's traffic
// process, emitting Flow start/end callbacks into a Sink through an event
// scheduler. All randomness comes from a Source split per subprocess, so a
// generator is deterministic for a given (params, rack, rackID, seed).
type Generator struct {
	params    Params
	rack      topo.Rack
	rackID    int
	loadScale float64

	inside  asic.TrafficProfile
	outside asic.TrafficProfile

	sched *eventq.Scheduler
	sink  Sink

	// Independent streams per concern keep parameter changes in one
	// process from perturbing another's draws.
	fanInSrc []*rng.Source // per server
	outSrc   []*rng.Source // per server
	baseSrc  []*rng.Source // per server
	groupSrc *rng.Source
	waveSrc  *rng.Source
	keySrc   *rng.Source

	flowSeq uint32

	// stats for tests and sanity reporting
	started, ended uint64
}

// NewGenerator validates the configuration and builds a generator.
// loadScale scales traffic intensity over time-of-day (1 = nominal);
// it multiplies episode arrival rates and base loads.
func NewGenerator(params Params, rack topo.Rack, rackID int, loadScale float64, seed *rng.Source) (*Generator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := rack.Validate(); err != nil {
		return nil, err
	}
	if loadScale <= 0 {
		return nil, fmt.Errorf("workload: loadScale = %v, need > 0", loadScale)
	}
	if seed == nil {
		return nil, fmt.Errorf("workload: nil random source")
	}
	g := &Generator{
		params:    params,
		rack:      rack,
		rackID:    rackID,
		loadScale: loadScale,
		inside:    params.InsideMix.Profile(),
		outside:   params.OutsideMix.Profile(),
		groupSrc:  seed.Split("groups"),
		waveSrc:   seed.Split("waves"),
		keySrc:    seed.Split("keys"),
	}
	g.fanInSrc = make([]*rng.Source, rack.NumServers)
	g.outSrc = make([]*rng.Source, rack.NumServers)
	g.baseSrc = make([]*rng.Source, rack.NumServers)
	for s := 0; s < rack.NumServers; s++ {
		g.fanInSrc[s] = seed.Split(fmt.Sprintf("fanin/%d", s))
		g.outSrc[s] = seed.Split(fmt.Sprintf("out/%d", s))
		g.baseSrc[s] = seed.Split(fmt.Sprintf("base/%d", s))
	}
	return g, nil
}

// FlowsStarted returns the number of flows started so far.
func (g *Generator) FlowsStarted() uint64 { return g.started }

// FlowsEnded returns the number of flows ended so far.
func (g *Generator) FlowsEnded() uint64 { return g.ended }

// Install wires the generator into a scheduler and sink and schedules the
// initial events for every traffic process. It must be called exactly once.
func (g *Generator) Install(sched *eventq.Scheduler, sink Sink) {
	if g.sched != nil {
		panic("workload: Install called twice")
	}
	if sched == nil || sink == nil {
		panic("workload: nil scheduler or sink")
	}
	g.sched = sched
	g.sink = sink

	// Leaders (§4.2: cache coherency handlers) respond far less than
	// followers; their Out process runs with stretched gaps instead.
	leaderOut := g.params.Out
	leaderOut.GapShortMean *= 3
	leaderOut.IdleScale *= 2
	if leaderOut.IdleMax < leaderOut.IdleScale {
		leaderOut.IdleMax = leaderOut.IdleScale * 2
	}
	for s := 0; s < g.rack.NumServers; s++ {
		g.startBaseFlows(s)
		g.scheduleEpisodeLoop(s, &g.params.FanIn, g.fanInSrc[s], g.fireFanIn, true)
		if g.isLeader(s) {
			out := leaderOut
			g.scheduleEpisodeLoop(s, &out, g.outSrc[s], g.fireOut, true)
			if g.params.CoherencyRate > 0 && g.params.CoherencyFanout > 0 && g.rack.NumServers > 1 {
				g.scheduleCoherencyLoop(s)
			}
		} else {
			g.scheduleEpisodeLoop(s, &g.params.Out, g.outSrc[s], g.fireOut, true)
		}
	}
	if g.params.GroupCount > 0 && g.params.GroupRate > 0 {
		for grp := 0; grp < g.params.GroupCount; grp++ {
			g.scheduleGroupLoop(grp)
		}
	}
	if g.params.WaveRate > 0 && g.params.WaveFrac > 0 {
		g.scheduleWaveLoop()
	}
}

// serverLineBytesPerSec returns the server downlink rate in bytes/sec, the
// reference for episode intensities.
func (g *Generator) serverLineBytesPerSec() float64 {
	return float64(g.rack.ServerSpeed) / 8
}

// nextGap samples the time between the end of one episode and the start of
// the next: a clustered short gap with probability PShortGap, otherwise a
// long heavy-tailed idle period. loadScale compresses gaps uniformly.
func (g *Generator) nextGap(ep *EpisodeParams, src *rng.Source) simclock.Duration {
	var gap float64
	if src.Bool(ep.PShortGap) {
		gap = src.Exp(float64(ep.GapShortMean))
	} else {
		gap = src.BoundedPareto(float64(ep.IdleScale), float64(ep.IdleMax), ep.IdleAlpha)
	}
	gap /= g.loadScale
	if gap < 1 {
		gap = 1
	}
	return simclock.Duration(gap)
}

// sampleEpisode draws (duration, intensity) for one burst, applying the
// pacing ablation if configured.
func (g *Generator) sampleEpisode(ep *EpisodeParams, src *rng.Source) (simclock.Duration, float64) {
	dur := simclock.Duration(src.BoundedPareto(float64(ep.DurScale), float64(ep.DurMax), ep.DurAlpha))
	intensity := ep.IntensityMin + src.Float64()*(ep.IntensityMax-ep.IntensityMin)
	if ep.PSpike > 0 && src.Bool(ep.PSpike) {
		intensity *= 1.5 + src.Float64()*(ep.SpikeMax-1.5)
		// An incast spike is more senders converging, so it carries more
		// total bytes: stretch the duration too (bounded so spikes stay
		// µbursts).
		dur = simclock.Duration(float64(dur) * 1.5)
		if max := ep.DurMax * 3 / 2; dur > max {
			dur = max
		}
	}
	if g.params.Paced && intensity > g.params.PacedCap {
		// Conserve volume: stretch the burst to fit under the cap.
		dur = simclock.Duration(float64(dur) * intensity / g.params.PacedCap)
		intensity = g.params.PacedCap
	}
	return dur, intensity
}

// scheduleEpisodeLoop arms the recurring episode process for one server.
// When warmStart is true the first firing is delayed by a random fraction
// of a gap so servers do not start in phase.
func (g *Generator) scheduleEpisodeLoop(server int, ep *EpisodeParams, src *rng.Source,
	fire func(server int, ep *EpisodeParams, src *rng.Source) simclock.Duration, warmStart bool) {
	delay := g.nextGap(ep, src)
	if warmStart {
		delay = simclock.Duration(float64(delay) * src.Float64())
	}
	var loop func(simclock.Time)
	loop = func(simclock.Time) {
		dur := fire(server, ep, src)
		g.sched.After(dur+g.nextGap(ep, src), loop)
	}
	g.sched.After(delay, loop)
}

// fireFanIn starts one fan-in burst converging on server and returns its
// duration.
func (g *Generator) fireFanIn(server int, ep *EpisodeParams, src *rng.Source) simclock.Duration {
	dur, intensity := g.sampleEpisode(ep, src)
	g.startFanInFlows(server, ep, src, dur, intensity)
	return dur
}

// episodeProfile selects the packet mix an episode carries: intense
// episodes (the ones that register as bursts) are made of the large-heavy
// inside mix — bulk responses and full segments — while weak episodes look
// like background traffic. This is the mechanism behind Fig 5: the size
// mix shifts *because* the traffic causing bursts is different, "bursts at
// the ToR layer are often a result of application-behavior changes" (§5.3).
func (g *Generator) episodeProfile(intensity float64) asic.TrafficProfile {
	if intensity >= 0.5 {
		return g.inside
	}
	return g.outside
}

// startFanInFlows creates the flow set for a fan-in burst of the given
// duration and aggregate intensity.
func (g *Generator) startFanInFlows(server int, ep *EpisodeParams, src *rng.Source, dur simclock.Duration, intensity float64) {
	totalRate := intensity * g.serverLineBytesPerSec()
	nf := ep.FlowsMin
	if ep.FlowsMax > ep.FlowsMin {
		nf += src.Intn(ep.FlowsMax - ep.FlowsMin + 1)
	}
	profile := g.episodeProfile(intensity)
	weights := g.flowWeights(src, nf)
	for i := 0; i < nf; i++ {
		f := &Flow{
			Kind:    FlowIn,
			Server:  server,
			Rate:    totalRate * weights[i],
			Profile: profile,
		}
		if !src.Bool(g.params.InRemoteFrac) && g.rack.NumServers > 1 {
			f.Kind = FlowIntra
			f.Peer = g.otherServer(src, server)
			f.Key = g.intraKey(f.Peer, server)
		} else {
			f.Key = g.inKey(server)
		}
		g.runFlow(f, dur)
	}
}

// fireOut starts one egress burst from server toward the fabric and
// returns its duration.
func (g *Generator) fireOut(server int, ep *EpisodeParams, src *rng.Source) simclock.Duration {
	dur, intensity := g.sampleEpisode(ep, src)
	g.startOutFlows(server, ep, src, dur, intensity)
	return dur
}

func (g *Generator) startOutFlows(server int, ep *EpisodeParams, src *rng.Source, dur simclock.Duration, intensity float64) {
	totalRate := intensity * g.serverLineBytesPerSec()
	nf := ep.FlowsMin
	if ep.FlowsMax > ep.FlowsMin {
		nf += src.Intn(ep.FlowsMax - ep.FlowsMin + 1)
	}
	profile := g.episodeProfile(intensity)
	weights := g.flowWeights(src, nf)
	for i := 0; i < nf; i++ {
		f := &Flow{
			Kind:    FlowOut,
			Server:  server,
			Rate:    totalRate * weights[i],
			Profile: profile,
			Key:     g.outKey(server),
		}
		g.runFlow(f, dur)
	}
}

// scheduleGroupLoop arms the scatter-gather process for one server group:
// Poisson events that hit every member with a synchronized request burst
// and a synchronized (larger) response burst.
func (g *Generator) scheduleGroupLoop(grp int) {
	src := g.groupSrc.Split(fmt.Sprintf("g%d", grp))
	members := g.groupMembers(grp)
	rate := g.params.GroupRate * g.loadScale
	var loop func(simclock.Time)
	loop = func(simclock.Time) {
		for _, m := range members {
			// Scatter: small synchronized fan-in (requests).
			dur, intensity := g.sampleEpisode(&g.params.FanIn, src)
			g.startFanInFlows(m, &g.params.FanIn, src, dur, intensity)
			// Gather: synchronized response burst out of the rack.
			durOut, intOut := g.sampleEpisode(&g.params.Out, src)
			g.startOutFlows(m, &g.params.Out, src, durOut, intOut)
		}
		g.sched.After(simclock.Duration(src.Exp(1e9/rate)), loop)
	}
	g.sched.After(simclock.Duration(src.Exp(1e9/rate)*src.Float64()), loop)
}

// groupMembers returns the fixed membership of group grp.
func (g *Generator) groupMembers(grp int) []int {
	span := g.params.GroupSpan
	if span > g.rack.NumServers {
		span = g.rack.NumServers
	}
	members := make([]int, 0, span)
	for i := 0; i < span; i++ {
		members = append(members, (grp*span+i)%g.rack.NumServers)
	}
	return members
}

// scheduleWaveLoop arms the rack-wide wave process: Poisson events that
// trigger fan-in episodes on a random subset of servers simultaneously.
func (g *Generator) scheduleWaveLoop() {
	src := g.waveSrc
	rate := g.params.WaveRate * g.loadScale
	n := g.rack.NumServers
	var loop func(simclock.Time)
	loop = func(simclock.Time) {
		perm := src.Perm(n)
		k := int(g.params.WaveFrac * float64(n))
		if k < 1 {
			k = 1
		}
		for _, s := range perm[:k] {
			dur, intensity := g.sampleEpisode(&g.params.FanIn, src)
			g.startFanInFlows(s, &g.params.FanIn, src, dur, intensity)
			// Shuffle waves also synchronize the send side: half the
			// participants emit toward the fabric at the same moment,
			// which is what lets a 40G uplink exceed 50% from 10G NICs.
			if src.Bool(0.5) {
				durOut, intOut := g.sampleEpisode(&g.params.Out, src)
				g.startOutFlows(s, &g.params.Out, src, durOut, intOut)
			}
		}
		g.sched.After(simclock.Duration(src.Exp(1e9/rate)), loop)
	}
	g.sched.After(simclock.Duration(src.Exp(1e9/rate)*src.Float64()), loop)
}

// isLeader reports whether server s is a cache leader.
func (g *Generator) isLeader(s int) bool { return s < g.params.LeaderCount }

// scheduleCoherencyLoop arms a leader's invalidation process: Poisson
// events, each sending a short small-packet intra-rack flow to several
// followers (cache coherency fan-out, [15]).
func (g *Generator) scheduleCoherencyLoop(leader int) {
	src := g.outSrc[leader].Split("coherency")
	rate := g.params.CoherencyRate * g.loadScale
	line := g.serverLineBytesPerSec()
	var loop func(simclock.Time)
	loop = func(simclock.Time) {
		fanout := g.params.CoherencyFanout
		if fanout > g.rack.NumServers-1 {
			fanout = g.rack.NumServers - 1
		}
		dur := simclock.Duration(10e3 + src.Exp(20e3)) // 10–100µs messages
		for i := 0; i < fanout; i++ {
			dst := g.otherServer(src, leader)
			f := &Flow{
				Kind:    FlowIntra,
				Server:  dst,
				Peer:    leader,
				Rate:    line * (0.01 + 0.03*src.Float64()),
				Profile: g.outside, // invalidations are small packets
				Key:     g.intraKey(leader, dst),
			}
			g.runFlow(f, dur)
		}
		g.sched.After(simclock.Duration(src.Exp(1e9/rate)), loop)
	}
	g.sched.After(simclock.Duration(src.Exp(1e9/rate)*src.Float64()), loop)
}

// startBaseFlows creates the continuous background flows for a server and
// schedules their periodic renewal (re-keying re-rolls ECMP placement).
func (g *Generator) startBaseFlows(server int) {
	src := g.baseSrc[server]
	line := g.serverLineBytesPerSec()
	var active []*Flow

	start := func() {
		active = active[:0]
		// A single flow per direction keeps base traffic lumpy under
		// ECMP: one hash decides where a server's whole floor lands,
		// which is part of why uplinks are unbalanced at small
		// timescales (§6.1).
		jitter := func() float64 { return 0.6 + 0.8*src.Float64() }
		if g.params.BaseIn > 0 {
			f := &Flow{
				Kind:    FlowIn,
				Server:  server,
				Rate:    g.params.BaseIn * g.loadScale * line * jitter(),
				Profile: g.outside,
				Key:     g.inKey(server),
			}
			g.sink.StartFlow(f)
			g.started++
			active = append(active, f)
		}
		if g.params.BaseOut > 0 {
			f := &Flow{
				Kind:    FlowOut,
				Server:  server,
				Rate:    g.params.BaseOut * g.loadScale * line * jitter(),
				Profile: g.outside,
				Key:     g.outKey(server),
			}
			g.sink.StartFlow(f)
			g.started++
			active = append(active, f)
		}
	}
	stop := func() {
		for _, f := range active {
			g.sink.EndFlow(f)
			g.ended++
		}
	}

	start()
	if g.params.BaseFlowRenew > 0 {
		var renew func(simclock.Time)
		renew = func(simclock.Time) {
			stop()
			start()
			g.sched.After(g.params.BaseFlowRenew, renew)
		}
		// Desynchronize renewals across servers.
		g.sched.After(simclock.Duration(float64(g.params.BaseFlowRenew)*(0.5+src.Float64())), renew)
	}
}

// runFlow starts f and schedules its end after dur.
func (g *Generator) runFlow(f *Flow, dur simclock.Duration) {
	if dur <= 0 {
		dur = 1
	}
	g.sink.StartFlow(f)
	g.started++
	g.sched.After(dur, func(simclock.Time) {
		g.sink.EndFlow(f)
		g.ended++
	})
}

// flowWeights returns n random positive weights summing to 1.
func (g *Generator) flowWeights(src *rng.Source, n int) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 0.2 + src.Float64()
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// otherServer picks a uniformly random server other than s.
func (g *Generator) otherServer(src *rng.Source, s int) int {
	p := src.Intn(g.rack.NumServers - 1)
	if p >= s {
		p++
	}
	return p
}

func (g *Generator) inKey(server int) ecmp.FlowKey {
	g.flowSeq++
	return ecmp.FlowKey{
		SrcIP:   externalIP(uint32(g.keySrc.Uint64())),
		DstIP:   serverIP(g.rackID, server),
		SrcPort: uint16(1024 + g.keySrc.Intn(64000)),
		DstPort: g.params.DstPort,
		Proto:   6,
	}
}

func (g *Generator) outKey(server int) ecmp.FlowKey {
	g.flowSeq++
	return ecmp.FlowKey{
		SrcIP:   serverIP(g.rackID, server),
		DstIP:   externalIP(uint32(g.keySrc.Uint64())),
		SrcPort: g.params.DstPort,
		DstPort: uint16(1024 + g.keySrc.Intn(64000)),
		Proto:   6,
	}
}

func (g *Generator) intraKey(peer, server int) ecmp.FlowKey {
	g.flowSeq++
	return ecmp.FlowKey{
		SrcIP:   serverIP(g.rackID, peer),
		DstIP:   serverIP(g.rackID, server),
		SrcPort: uint16(1024 + g.keySrc.Intn(64000)),
		DstPort: g.params.DstPort,
		Proto:   6,
	}
}
