package workload

import (
	"testing"

	"mburst/internal/asic"
	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/topo"
)

// recorder is a Sink capturing flow lifecycle events.
type recorder struct {
	started []*Flow
	ended   []*Flow
	active  map[*Flow]bool
}

func newRecorder() *recorder { return &recorder{active: make(map[*Flow]bool)} }

func (r *recorder) StartFlow(f *Flow) {
	if r.active[f] {
		panic("double start")
	}
	r.active[f] = true
	r.started = append(r.started, f)
}

func (r *recorder) EndFlow(f *Flow) {
	if !r.active[f] {
		panic("end before start")
	}
	delete(r.active, f)
	r.ended = append(r.ended, f)
}

func TestAppNames(t *testing.T) {
	for _, a := range Apps {
		parsed, err := ParseApp(a.String())
		if err != nil || parsed != a {
			t.Errorf("round trip of %v failed: %v %v", a, parsed, err)
		}
	}
	if _, err := ParseApp("nosql"); err == nil {
		t.Error("ParseApp accepted junk")
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	for _, a := range Apps {
		p := DefaultParams(a)
		if err := p.Validate(); err != nil {
			t.Errorf("%v defaults invalid: %v", a, err)
		}
		if p.App != a {
			t.Errorf("%v defaults carry app %v", a, p.App)
		}
	}
}

func TestPacketMixProfile(t *testing.T) {
	// A count mix with only MTU packets maps to a byte profile with all
	// bytes in the last bin.
	mtuOnly := PacketMix{0, 0, 0, 0, 0, 1}
	p := mtuOnly.Profile()
	if p[asic.NumSizeBins-1] != 1 {
		t.Errorf("MTU-only profile = %v", p)
	}
	// Equal counts of tiny and MTU packets put most BYTES in the MTU bin.
	mixed := PacketMix{0.5, 0, 0, 0, 0, 0.5}
	p = mixed.Profile()
	if p[5] <= p[0] {
		t.Errorf("byte fractions should favor large packets: %v", p)
	}
	if !p.Valid() {
		t.Errorf("converted profile invalid: %v", p)
	}
	if (PacketMix{}).Profile() != (asic.TrafficProfile{}) {
		t.Error("zero mix should convert to zero profile")
	}
}

func TestParamsValidateRejections(t *testing.T) {
	base := DefaultParams(Web)
	mutations := []func(*Params){
		func(p *Params) { p.App = App(99) },
		func(p *Params) { p.FanIn.DurScale = 0 },
		func(p *Params) { p.FanIn.DurMax = p.FanIn.DurScale - 1 },
		func(p *Params) { p.FanIn.IntensityMax = p.FanIn.IntensityMin - 1 },
		func(p *Params) { p.FanIn.PShortGap = 1.5 },
		func(p *Params) { p.FanIn.FlowsMin = 0 },
		func(p *Params) { p.Out.GapShortMean = 0 },
		func(p *Params) { p.InRemoteFrac = 2 },
		func(p *Params) { p.BaseIn = -0.1 },
		func(p *Params) { p.InsideMix = PacketMix{} },
		func(p *Params) { p.GroupCount = 2; p.GroupSpan = 0 },
		func(p *Params) { p.WaveFrac = 1.5 },
		func(p *Params) { p.Paced = true; p.PacedCap = 0 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestGeneratorConstructorErrors(t *testing.T) {
	rack := topo.Default(8)
	good := DefaultParams(Web)
	if _, err := NewGenerator(good, rack, 0, 0, rng.New(1)); err == nil {
		t.Error("zero loadScale accepted")
	}
	if _, err := NewGenerator(good, rack, 0, 1, nil); err == nil {
		t.Error("nil source accepted")
	}
	bad := good
	bad.FanIn.DurScale = 0
	if _, err := NewGenerator(bad, rack, 0, 1, rng.New(1)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewGenerator(good, topo.Rack{}, 0, 1, rng.New(1)); err == nil {
		t.Error("invalid rack accepted")
	}
}

func runGenerator(t *testing.T, app App, seed uint64, dur simclock.Duration) (*recorder, *Generator) {
	t.Helper()
	rack := topo.Default(8)
	gen, err := NewGenerator(DefaultParams(app), rack, 1, 1, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	rec := newRecorder()
	gen.Install(sched, rec)
	sched.RunUntil(simclock.Epoch.Add(dur))
	return rec, gen
}

func TestGeneratorProducesFlows(t *testing.T) {
	for _, app := range Apps {
		rec, gen := runGenerator(t, app, 7, simclock.Millis(50))
		if len(rec.started) == 0 {
			t.Errorf("%v produced no flows in 50ms", app)
			continue
		}
		if gen.FlowsStarted() != uint64(len(rec.started)) {
			t.Errorf("%v started accounting mismatch", app)
		}
		// Ends never exceed starts, and most short flows have ended.
		if len(rec.ended) > len(rec.started) {
			t.Errorf("%v ended %d > started %d", app, len(rec.ended), len(rec.started))
		}
		// Base flows (4 per server × 8 servers) stay active plus episode
		// remnants; active set should be modest, not leaking.
		if len(rec.active) > len(rec.started)/2+64 {
			t.Errorf("%v active=%d of %d looks like a leak", app, len(rec.active), len(rec.started))
		}
	}
}

func TestGeneratorFlowFieldsValid(t *testing.T) {
	for _, app := range Apps {
		rec, _ := runGenerator(t, app, 11, simclock.Millis(20))
		for _, f := range rec.started {
			if f.Rate < 0 {
				t.Fatalf("%v: negative rate %v", app, f.Rate)
			}
			if f.Server < 0 || f.Server >= 8 {
				t.Fatalf("%v: server %d out of range", app, f.Server)
			}
			if f.Kind == FlowIntra {
				if f.Peer == f.Server || f.Peer < 0 || f.Peer >= 8 {
					t.Fatalf("%v: bad intra peer %d -> %d", app, f.Peer, f.Server)
				}
			}
			if !f.Profile.Valid() {
				t.Fatalf("%v: invalid profile %v", app, f.Profile)
			}
			if f.Key.Proto != 6 {
				t.Fatalf("%v: proto %d", app, f.Key.Proto)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := runGenerator(t, Cache, 42, simclock.Millis(20))
	b, _ := runGenerator(t, Cache, 42, simclock.Millis(20))
	if len(a.started) != len(b.started) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.started), len(b.started))
	}
	for i := range a.started {
		fa, fb := a.started[i], b.started[i]
		if fa.Key != fb.Key || fa.Rate != fb.Rate || fa.Kind != fb.Kind || fa.Server != fb.Server {
			t.Fatalf("flow %d differs: %+v vs %+v", i, fa, fb)
		}
	}
	c, _ := runGenerator(t, Cache, 43, simclock.Millis(20))
	if len(a.started) == len(c.started) {
		same := true
		for i := range a.started {
			if a.started[i].Key != c.started[i].Key {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical flow sequences")
		}
	}
}

func TestAppDirectionality(t *testing.T) {
	// Cache must generate more egress (out) volume than fan-in volume;
	// Web and Hadoop the opposite (§6.3).
	vol := func(app App) (in, out float64) {
		rec, _ := runGenerator(t, app, 13, simclock.Millis(100))
		for _, f := range rec.started {
			switch f.Kind {
			case FlowOut:
				out += f.Rate
			default:
				in += f.Rate
			}
		}
		return
	}
	in, out := vol(Cache)
	if out <= in {
		t.Errorf("cache out-rate %v should exceed in-rate %v", out, in)
	}
	in, out = vol(Web)
	if in <= out {
		t.Errorf("web in-rate %v should exceed out-rate %v", in, out)
	}
	in, out = vol(Hadoop)
	if in <= out {
		t.Errorf("hadoop in-rate %v should exceed out-rate %v", in, out)
	}
}

func TestHadoopUsesIntraRackFlows(t *testing.T) {
	rec, _ := runGenerator(t, Hadoop, 17, simclock.Millis(50))
	intra := 0
	for _, f := range rec.started {
		if f.Kind == FlowIntra {
			intra++
		}
	}
	if intra == 0 {
		t.Error("hadoop generated no intra-rack flows despite InRemoteFrac < 1")
	}
	recWeb, _ := runGenerator(t, Web, 17, simclock.Millis(50))
	intraWeb := 0
	for _, f := range recWeb.started {
		if f.Kind == FlowIntra {
			intraWeb++
		}
	}
	if intraWeb >= intra {
		t.Errorf("web intra flows (%d) should be rarer than hadoop (%d)", intraWeb, intra)
	}
}

func TestPacedStretchesBursts(t *testing.T) {
	rack := topo.Default(4)
	params := DefaultParams(Hadoop)
	params.Paced = true
	params.PacedCap = 0.9
	gen, err := NewGenerator(params, rack, 0, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	rec := newRecorder()
	gen.Install(sched, rec)
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(50)))
	// Paced flows never exceed cap × line rate in aggregate per episode.
	// Individual flow rates are shares of that total, so each flow's rate
	// must be <= 0.9 × 1.25GB/s.
	line := float64(rack.ServerSpeed) / 8
	for _, f := range rec.started {
		if f.Kind != FlowOut && f.Rate > 0.9*line*1.0001 {
			t.Fatalf("paced flow rate %v exceeds cap", f.Rate)
		}
	}
}

func TestInstallGuards(t *testing.T) {
	gen, err := NewGenerator(DefaultParams(Web), topo.Default(2), 0, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil sink did not panic")
			}
		}()
		gen.Install(eventq.NewScheduler(), nil)
	}()
	sched := eventq.NewScheduler()
	gen.Install(sched, newRecorder())
	defer func() {
		if recover() == nil {
			t.Error("double Install did not panic")
		}
	}()
	gen.Install(sched, newRecorder())
}

func TestCacheLeadersBehaveDifferently(t *testing.T) {
	// Leaders (servers [0, LeaderCount)) emit fewer Out bursts than
	// followers and generate intra-rack coherency flows.
	rec, _ := runGenerator(t, Cache, 21, simclock.Millis(200))
	params := DefaultParams(Cache)
	if params.LeaderCount == 0 {
		t.Fatal("cache defaults should have leaders")
	}
	leaderOut, followerOut := 0, 0
	coherency := 0
	for _, f := range rec.started {
		switch f.Kind {
		case FlowOut:
			if f.Server < params.LeaderCount {
				leaderOut++
			} else {
				followerOut++
			}
		case FlowIntra:
			if f.Peer < params.LeaderCount {
				coherency++
			}
		}
	}
	if coherency == 0 {
		t.Error("no coherency flows from leaders")
	}
	// Rate-normalize: per-leader vs per-follower out flows. The 8-server
	// test rack has LeaderCount=4 leaders.
	leaders := params.LeaderCount
	if leaders > 8 {
		leaders = 8
	}
	followers := 8 - leaders
	if followers <= 0 {
		t.Skip("test rack too small for follower comparison")
	}
	perLeader := float64(leaderOut) / float64(leaders)
	perFollower := float64(followerOut) / float64(followers)
	if perLeader >= perFollower {
		t.Errorf("leaders (%v out flows each) should respond less than followers (%v)", perLeader, perFollower)
	}
}

func TestLeaderParamValidation(t *testing.T) {
	p := DefaultParams(Cache)
	p.LeaderCount = -1
	if p.Validate() == nil {
		t.Error("negative LeaderCount validated")
	}
	p = DefaultParams(Cache)
	p.CoherencyFanout = 0
	if p.Validate() == nil {
		t.Error("coherency without fanout validated")
	}
	p = DefaultParams(Cache)
	p.CoherencyRate = 0 // disabling coherency entirely is fine
	if err := p.Validate(); err != nil {
		t.Errorf("disabled coherency rejected: %v", err)
	}
}

func TestGroupMembersSpanClamped(t *testing.T) {
	params := DefaultParams(Cache)
	params.GroupSpan = 100 // larger than the rack
	gen, err := NewGenerator(params, topo.Default(4), 0, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	members := gen.groupMembers(0)
	if len(members) != 4 {
		t.Errorf("members = %v", members)
	}
	for _, m := range members {
		if m < 0 || m >= 4 {
			t.Errorf("member %d out of range", m)
		}
	}
}
