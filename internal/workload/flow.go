package workload

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/ecmp"
)

// FlowKind classifies a flow by how it crosses the ToR.
type FlowKind int

const (
	// FlowIn enters the rack from the fabric and terminates at Server:
	// RX on an uplink, TX on the server's downlink.
	FlowIn FlowKind = iota
	// FlowOut leaves the rack from Server toward the fabric:
	// RX on the server's downlink, TX on an uplink.
	FlowOut
	// FlowIntra goes from Peer to Server without leaving the rack:
	// RX on Peer's downlink, TX on Server's downlink.
	FlowIntra
)

// String names the flow kind.
func (k FlowKind) String() string {
	switch k {
	case FlowIn:
		return "in"
	case FlowOut:
		return "out"
	case FlowIntra:
		return "intra"
	default:
		return fmt.Sprintf("FlowKind(%d)", int(k))
	}
}

// Flow is a constant-rate transport flow traversing the ToR. Flows are
// identified by pointer; the simulator tracks active flows between
// StartFlow and EndFlow callbacks.
type Flow struct {
	// Key is the 5-tuple ECMP hashes.
	Key ecmp.FlowKey
	// Kind determines which ports the flow touches.
	Kind FlowKind
	// Server is the rack-local endpoint (destination for FlowIn/FlowIntra,
	// source for FlowOut).
	Server int
	// Peer is the rack-local source for FlowIntra; unused otherwise.
	Peer int
	// Rate is the flow's offered rate in bytes per second.
	Rate float64
	// Profile is the packet-size byte mix the flow carries.
	Profile asic.TrafficProfile
}

// Sink receives flow lifecycle callbacks from a Generator. The simulator
// implements Sink; tests may substitute recorders.
type Sink interface {
	// StartFlow begins accounting f's rate against its ports.
	StartFlow(f *Flow)
	// EndFlow stops accounting f. The generator guarantees every started
	// flow is ended exactly once (or remains active at campaign end).
	EndFlow(f *Flow)
}

// serverIP returns a stable synthetic IPv4 address for rack-local server s.
func serverIP(rackID, s int) uint32 {
	return 0x0a<<24 | uint32(rackID&0xffff)<<8 | uint32(s&0xff)
}

// externalIP returns a synthetic out-of-rack address derived from n.
func externalIP(n uint32) uint32 {
	// 100.64.0.0/10-ish space, always distinct from serverIP values.
	return 0x64<<24 | (n & 0x00ffffff)
}
