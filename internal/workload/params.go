// Package workload synthesizes the rack traffic of the three applications
// the paper measures (§4.2): Web, Cache, and Hadoop. Entire racks are
// dedicated to one role in the measured data center, so each Generator
// drives every server of a rack with one application's traffic process.
//
// The generators are mechanistic rather than curve-fitted: each encodes the
// traffic structure the paper attributes to its application, with dials
// exposed in Params.
//
//   - Web servers "receive web requests and assemble a dynamic web page
//     using data from many remote sources": request-driven fan-in episodes
//     of several concurrent remote flows converging on one server, very
//     short, arriving in clustered bunches. Bursts here are downlink-
//     dominated (Fig 9) and the shortest of the three apps (Fig 3).
//   - Cache followers serve reads whose "responses are typically much
//     larger than the requests", so the rack sends far more than it
//     receives and, combined with ToR oversubscription, its bursts land on
//     the uplinks (Fig 9). Requests are "initiated in groups from web
//     servers", which synchronizes subsets of servers and produces the
//     correlated blocks of Fig 8.
//   - Hadoop racks run offline shuffles: heavy-tailed episodes of one or
//     two near-MTU bulk flows, partly intra-rack, with rack-wide waves
//     that drive many ports hot simultaneously and put the most pressure
//     on the shared buffer (Fig 10).
//
// Every episode is realized as a set of constant-rate flows with explicit
// 5-tuples so that ECMP (Fig 7) sees realistic flow granularity.
package workload

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// App identifies one of the three measured application classes.
type App int

const (
	// Web serves interactive web requests (front-end tier).
	Web App = iota
	// Cache is the in-memory caching tier (leaders and followers).
	Cache
	// Hadoop runs offline analysis and data mining.
	Hadoop
	numApps
)

// Apps lists all application classes in presentation order.
var Apps = [...]App{Web, Cache, Hadoop}

// String names the application.
func (a App) String() string {
	switch a {
	case Web:
		return "web"
	case Cache:
		return "cache"
	case Hadoop:
		return "hadoop"
	default:
		return fmt.Sprintf("App(%d)", int(a))
	}
}

// ParseApp converts a name produced by String back into an App.
func ParseApp(s string) (App, error) {
	for _, a := range Apps {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown app %q", s)
}

// PacketMix describes a packet-size distribution as packet-count fractions
// over the ASIC's size bins. Count fractions are what Fig 5 plots; the
// Profile method converts to the byte fractions the data path consumes.
type PacketMix [asic.NumSizeBins]float64

// Valid reports whether the fractions are non-negative and sum to ~1.
func (m PacketMix) Valid() bool {
	var sum float64
	for _, f := range m {
		if f < 0 {
			return false
		}
		sum += f
	}
	return sum > 0.999 && sum < 1.001
}

// Profile converts packet-count fractions into the byte-fraction
// TrafficProfile used by the ASIC model: byte share of bin i is
// proportional to countFrac_i × representativeSize_i.
func (m PacketMix) Profile() asic.TrafficProfile {
	var p asic.TrafficProfile
	var total float64
	for i, f := range m {
		p[i] = f * asic.RepresentativeSize(i)
		total += p[i]
	}
	if total == 0 {
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

// EpisodeParams parameterizes one episode process: a stream of bursts, each
// a set of concurrent flows offering Intensity × line-rate for a
// heavy-tailed duration, separated by a mixture of short clustered gaps and
// long idle periods (the Fig 4 shape).
type EpisodeParams struct {
	// DurScale/DurAlpha/DurMax define the bounded-Pareto burst duration.
	DurScale simclock.Duration
	DurAlpha float64
	DurMax   simclock.Duration

	// IntensityMin/Max bound the uniform offered load during a burst, as a
	// fraction of the reference line rate (>1 overcommits and queues).
	IntensityMin, IntensityMax float64

	// PSpike is the probability a burst is an incast spike: many senders
	// converging at once, multiplying the sampled intensity by a uniform
	// factor in [1.5, SpikeMax]. Spikes are what push queues past the
	// dynamic threshold and produce the congestion discards of Figs 1–2.
	PSpike   float64
	SpikeMax float64

	// PShortGap is the probability the gap to the next burst is a short
	// clustered gap (exponential with GapShortMean) rather than a long
	// idle period (bounded Pareto IdleScale/IdleAlpha/IdleMax).
	PShortGap    float64
	GapShortMean simclock.Duration
	IdleScale    simclock.Duration
	IdleAlpha    float64
	IdleMax      simclock.Duration

	// FlowsMin/Max bound the number of concurrent flows per episode.
	FlowsMin, FlowsMax int
}

// Validate returns an error for the first invalid field, or nil.
func (e EpisodeParams) Validate() error {
	switch {
	case e.DurScale <= 0 || e.DurMax < e.DurScale || e.DurAlpha <= 0:
		return fmt.Errorf("workload: invalid episode duration (scale=%v max=%v alpha=%v)", e.DurScale, e.DurMax, e.DurAlpha)
	case e.IntensityMin < 0 || e.IntensityMax < e.IntensityMin:
		return fmt.Errorf("workload: invalid intensity [%v,%v]", e.IntensityMin, e.IntensityMax)
	case e.PSpike < 0 || e.PSpike > 1:
		return fmt.Errorf("workload: PSpike = %v", e.PSpike)
	case e.PSpike > 0 && e.SpikeMax < 1.5:
		return fmt.Errorf("workload: SpikeMax = %v, need >= 1.5 when PSpike > 0", e.SpikeMax)
	case e.PShortGap < 0 || e.PShortGap > 1:
		return fmt.Errorf("workload: PShortGap = %v", e.PShortGap)
	case e.GapShortMean <= 0:
		return fmt.Errorf("workload: GapShortMean = %v", e.GapShortMean)
	case e.IdleScale <= 0 || e.IdleMax < e.IdleScale || e.IdleAlpha <= 0:
		return fmt.Errorf("workload: invalid idle (scale=%v max=%v alpha=%v)", e.IdleScale, e.IdleMax, e.IdleAlpha)
	case e.FlowsMin <= 0 || e.FlowsMax < e.FlowsMin:
		return fmt.Errorf("workload: invalid flow count [%d,%d]", e.FlowsMin, e.FlowsMax)
	}
	return nil
}

// Params configures a Generator for one application rack.
type Params struct {
	App App

	// FanIn drives bursts converging on each server (ToR→server egress);
	// intensities are relative to the server downlink rate.
	FanIn EpisodeParams
	// Out drives bursts each server sends toward the fabric (uplink
	// egress); intensities are relative to the server downlink rate (a
	// server cannot exceed its own NIC).
	Out EpisodeParams

	// InRemoteFrac is the probability a fan-in flow originates outside the
	// rack (arriving over an uplink) rather than from a rack peer.
	InRemoteFrac float64

	// BaseIn/BaseOut are continuous background loads per server as
	// fractions of the downlink rate (request/ack/heartbeat floor).
	BaseIn, BaseOut float64
	// BaseFlowRenew is how often base flows are re-keyed (re-hashed by
	// ECMP); zero disables renewal.
	BaseFlowRenew simclock.Duration

	// InsideMix/OutsideMix are the packet-size mixes inside bursts and for
	// base traffic (Fig 5).
	InsideMix, OutsideMix PacketMix

	// GroupCount/GroupSpan define correlated server groups; GroupRate is
	// the per-group event rate (events/sec). Group events trigger
	// synchronized fan-in requests and Out responses across the group
	// (Cache scatter-gather).
	GroupCount int
	GroupSpan  int
	GroupRate  float64

	// LeaderCount marks the first N servers as cache leaders (§4.2,
	// citing [15]): leaders handle coherency rather than serving most
	// reads, so they emit fewer response bursts but broadcast small
	// intra-rack invalidation flows to followers.
	LeaderCount int
	// CoherencyRate is invalidation events per second per leader.
	CoherencyRate float64
	// CoherencyFanout is how many followers each invalidation touches.
	CoherencyFanout int

	// WaveRate is the rack-wide wave rate (waves/sec); each wave triggers
	// fan-in episodes on WaveFrac of the servers (Hadoop shuffle waves).
	WaveRate float64
	WaveFrac float64

	// Paced caps burst intensity at PacedCap and stretches the duration to
	// conserve volume — the §7 pacing ablation.
	Paced    bool
	PacedCap float64

	// DstPort is the application's well-known port used in flow keys.
	DstPort uint16
}

// Validate returns an error for the first invalid field, or nil.
func (p Params) Validate() error {
	if p.App < 0 || p.App >= numApps {
		return fmt.Errorf("workload: bad app %d", int(p.App))
	}
	if err := p.FanIn.Validate(); err != nil {
		return fmt.Errorf("FanIn: %w", err)
	}
	if err := p.Out.Validate(); err != nil {
		//lint:ignore errfmt Out names the Params field being validated
		return fmt.Errorf("Out: %w", err)
	}
	switch {
	case p.InRemoteFrac < 0 || p.InRemoteFrac > 1:
		return fmt.Errorf("workload: InRemoteFrac = %v", p.InRemoteFrac)
	case p.BaseIn < 0 || p.BaseOut < 0:
		return fmt.Errorf("workload: negative base load")
	case !p.InsideMix.Valid():
		return fmt.Errorf("workload: invalid InsideMix %v", p.InsideMix)
	case !p.OutsideMix.Valid():
		return fmt.Errorf("workload: invalid OutsideMix %v", p.OutsideMix)
	case p.GroupCount < 0 || p.GroupSpan < 0 || p.GroupRate < 0:
		return fmt.Errorf("workload: negative group parameter")
	case p.GroupCount > 0 && p.GroupSpan == 0:
		return fmt.Errorf("workload: GroupCount without GroupSpan")
	case p.LeaderCount < 0 || p.CoherencyRate < 0 || p.CoherencyFanout < 0:
		return fmt.Errorf("workload: negative leader/coherency parameter")
	case p.LeaderCount > 0 && p.CoherencyRate > 0 && p.CoherencyFanout == 0:
		return fmt.Errorf("workload: coherency without fanout")
	case p.WaveRate < 0 || p.WaveFrac < 0 || p.WaveFrac > 1:
		return fmt.Errorf("workload: invalid wave parameters")
	case p.Paced && (p.PacedCap <= 0 || p.PacedCap > 1):
		return fmt.Errorf("workload: PacedCap = %v", p.PacedCap)
	}
	return nil
}

// DefaultParams returns the calibrated parameter set for an application.
// The values are tuned (see calibration tests) so the resulting counter
// time series reproduce the paper's reported shapes: burst-duration CDFs
// and Markov statistics of §5.1, inter-burst mixtures of §5.2, packet-mix
// shifts of §5.3, utilization distributions of §5.4, and the cross-port
// behaviours of §6.
func DefaultParams(app App) Params {
	us := func(n int64) simclock.Duration { return simclock.Micros(n) }
	ms := func(n int64) simclock.Duration { return simclock.Millis(n) }
	switch app {
	case Web:
		return Params{
			App: Web,
			FanIn: EpisodeParams{
				DurScale: us(8), DurAlpha: 1.7, DurMax: us(300),
				IntensityMin: 0.6, IntensityMax: 1.35,
				PSpike: 0.04, SpikeMax: 6,
				PShortGap: 0.62, GapShortMean: us(55),
				IdleScale: ms(1) + us(200), IdleAlpha: 1.05, IdleMax: ms(800),
				FlowsMin: 4, FlowsMax: 10,
			},
			Out: EpisodeParams{
				DurScale: us(10), DurAlpha: 1.6, DurMax: us(400),
				IntensityMin: 0.15, IntensityMax: 0.65,
				PShortGap: 0.5, GapShortMean: us(90),
				IdleScale: ms(2), IdleAlpha: 1.0, IdleMax: ms(800),
				FlowsMin: 2, FlowsMax: 4,
			},
			InRemoteFrac:  0.95,
			BaseIn:        0.035,
			BaseOut:       0.03,
			BaseFlowRenew: ms(40),
			OutsideMix:    PacketMix{0.30, 0.20, 0.14, 0.11, 0.10, 0.15},
			InsideMix:     PacketMix{0.21, 0.16, 0.12, 0.11, 0.12, 0.28},
			DstPort:       80,
		}
	case Cache:
		return Params{
			App: Cache,
			FanIn: EpisodeParams{ // request scatter: small but bursty
				DurScale: us(8), DurAlpha: 1.5, DurMax: us(200),
				IntensityMin: 0.45, IntensityMax: 0.75,
				PSpike: 0.03, SpikeMax: 3,
				PShortGap: 0.58, GapShortMean: us(55),
				IdleScale: ms(6), IdleAlpha: 0.95, IdleMax: simclock.Seconds(2),
				FlowsMin: 2, FlowsMax: 5,
			},
			Out: EpisodeParams{ // responses: much larger than requests
				DurScale: us(20), DurAlpha: 1.4, DurMax: us(800),
				IntensityMin: 0.55, IntensityMax: 1.0,
				PShortGap: 0.6, GapShortMean: us(45),
				IdleScale: us(700), IdleAlpha: 0.95, IdleMax: ms(250),
				FlowsMin: 2, FlowsMax: 4,
			},
			InRemoteFrac:    1.0,
			BaseIn:          0.02,
			BaseOut:         0.13,
			BaseFlowRenew:   ms(40),
			OutsideMix:      PacketMix{0.35, 0.25, 0.15, 0.08, 0.07, 0.10},
			InsideMix:       PacketMix{0.29, 0.22, 0.14, 0.08, 0.09, 0.18},
			GroupCount:      4,
			GroupSpan:       8,
			GroupRate:       1400,
			LeaderCount:     4,
			CoherencyRate:   2000,
			CoherencyFanout: 4,
			DstPort:         11211,
		}
	case Hadoop:
		return Params{
			App: Hadoop,
			FanIn: EpisodeParams{ // shuffle fan-in: heavy-tailed bulk
				DurScale: us(15), DurAlpha: 1.3, DurMax: us(400),
				IntensityMin: 0.7, IntensityMax: 1.8,
				PSpike: 0.06, SpikeMax: 3.5,
				PShortGap: 0.45, GapShortMean: us(80),
				IdleScale: us(400), IdleAlpha: 1.4, IdleMax: ms(80),
				FlowsMin: 1, FlowsMax: 3,
			},
			Out: EpisodeParams{
				DurScale: us(30), DurAlpha: 1.3, DurMax: us(600),
				IntensityMin: 0.6, IntensityMax: 1.0,
				PShortGap: 0.55, GapShortMean: us(80),
				IdleScale: us(700), IdleAlpha: 1.2, IdleMax: ms(120),
				FlowsMin: 1, FlowsMax: 1,
			},
			InRemoteFrac:  0.35,
			BaseIn:        0.12,
			BaseOut:       0.12,
			BaseFlowRenew: ms(60),
			OutsideMix:    PacketMix{0.10, 0.03, 0.02, 0.01, 0.04, 0.80},
			InsideMix:     PacketMix{0.08, 0.02, 0.02, 0.01, 0.04, 0.83},
			WaveRate:      60,
			WaveFrac:      0.6,
			DstPort:       50010,
		}
	default:
		panic(fmt.Sprintf("workload: unknown app %d", int(app)))
	}
}
