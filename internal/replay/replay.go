// Package replay streams a recorded campaign back out as a live batch
// feed — the standard trick for exercising collector deployments and
// dashboards with realistic data without re-running switches (or, here,
// simulations).
//
// Samples keep their original virtual timestamps; pacing maps virtual time
// onto wall-clock time with a configurable speedup, so a 2-minute campaign
// can replay in seconds while preserving inter-batch spacing.
package replay

import (
	"context"
	"fmt"
	"io"
	"time"

	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

// Options configures a replay.
type Options struct {
	// Speedup divides virtual time when pacing: 0 or 1 replays in "real"
	// time, 100 replays 100× faster, and Unpaced skips sleeping entirely.
	Speedup float64
	// Unpaced streams as fast as the transport accepts.
	Unpaced bool
	// BatchSamples re-batches the stream into chunks of this many samples
	// (default 2048).
	BatchSamples int
	// Sleep is injectable for tests (default time.Sleep).
	Sleep func(time.Duration)
	// Windows optionally restricts replay to these window indices
	// (default: every window present on disk, in order).
	Windows []int
	// MaxGap bounds a single pacing sleep (after Speedup). Traces that
	// survived faults carry long sample gaps — agent outages, stalled
	// pollers — and replaying such a gap verbatim stalls the feed for the
	// whole fault duration. A non-zero MaxGap clamps each sleep so
	// downstream consumers see the gap without living through it; zero
	// preserves gaps verbatim. Clamps are tallied in Stats.GapClamps.
	MaxGap time.Duration
	// Format selects the wire format batches are re-encoded in (zero =
	// wire.DefaultFormat). The replay transcodes: the trace's on-disk
	// format and the outgoing stream format are independent.
	Format wire.Format
}

func (o *Options) applyDefaults() {
	if o.BatchSamples <= 0 {
		o.BatchSamples = 2048
	}
	if o.Speedup <= 0 {
		o.Speedup = 1
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// Stats reports what a replay delivered.
type Stats struct {
	Windows int
	Batches int
	Samples int
	// VirtualSpan is the covered virtual time, summed per window (each
	// window's simulation restarts its clock).
	VirtualSpan simclock.Duration
	// GapClamps counts pacing sleeps shortened by Options.MaxGap.
	GapClamps int
}

// Run replays the campaign at dir into w as wire batches. ctx cancels a
// replay between batches; the stats delivered so far are returned with the
// cancellation error.
func Run(ctx context.Context, dir string, w io.Writer, opts Options) (Stats, error) {
	opts.applyDefaults()
	if ctx == nil {
		//lint:ignore ctxroot nil-ctx convenience fallback for library callers; no parent to thread
		ctx = context.Background()
	}
	var st Stats
	r, err := trace.Open(dir)
	if err != nil {
		return st, err
	}
	meta := r.Meta()
	windows := opts.Windows
	if windows == nil {
		for i := 0; i < meta.Windows; i++ {
			if r.HasWindow(i) {
				windows = append(windows, i)
			}
		}
	}
	bw, err := wire.NewWriterFormat(w, opts.Format)
	if err != nil {
		return st, err
	}
	for _, idx := range windows {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		var pending []wire.Sample
		var rack uint32
		var batchStart simclock.Time
		var winFirst, winLast simclock.Time
		winSeen := false
		flush := func() error {
			if len(pending) == 0 {
				return nil
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := bw.WriteBatch(&wire.Batch{Rack: rack, Samples: pending}); err != nil {
				return err
			}
			st.Batches++
			st.Samples += len(pending)
			pending = pending[:0]
			return nil
		}
		err := r.IterWindow(idx, func(b *wire.Batch) error {
			rack = b.Rack
			for _, s := range b.Samples {
				if !winSeen {
					winFirst, winSeen = s.Time, true
					batchStart = s.Time
				}
				winLast = s.Time
				pending = append(pending, s)
				if len(pending) >= opts.BatchSamples {
					if !opts.Unpaced {
						span := s.Time.Sub(batchStart)
						if span > 0 {
							sleep := time.Duration(float64(span.Std()) / opts.Speedup)
							if opts.MaxGap > 0 && sleep > opts.MaxGap {
								sleep = opts.MaxGap
								st.GapClamps++
							}
							opts.Sleep(sleep)
						}
					}
					batchStart = s.Time
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return st, fmt.Errorf("replay: window %d: %w", idx, err)
		}
		if err := flush(); err != nil {
			return st, fmt.Errorf("replay: window %d: %w", idx, err)
		}
		st.Windows++
		if winSeen {
			st.VirtualSpan += winLast.Sub(winFirst)
		}
	}
	return st, nil
}
