package replay

import (
	"bytes"
	"context"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

func writeCampaign(t *testing.T, windows int, samplesPer int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "c")
	w, err := trace.Create(dir, trace.Meta{
		App: "web", NumServers: 8, NumUplinks: 4,
		ServerSpeed: 10e9, UplinkSpeed: 40e9,
		Interval: 25 * simclock.Microsecond, WindowDur: simclock.Millis(10),
		Windows: windows, Seed: 1,
		Counters: []collector.CounterSpec{{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for win := 0; win < windows; win++ {
		samples := make([]wire.Sample, samplesPer)
		for i := range samples {
			samples[i] = wire.Sample{
				Time:  simclock.Epoch.Add(simclock.Micros(int64(i+1) * 25)),
				Port:  0,
				Dir:   asic.TX,
				Kind:  asic.KindBytes,
				Value: uint64(win*samplesPer+i) * 1000,
			}
		}
		if err := w.WriteWindow(win, uint32(win), samples); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestReplayUnpacedDeliversEverything(t *testing.T) {
	dir := writeCampaign(t, 3, 5000)
	var buf bytes.Buffer
	st, err := Run(context.Background(), dir, &buf, Options{Unpaced: true, BatchSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 3 || st.Samples != 15000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Batches != 15 {
		t.Errorf("batches = %d, want 15", st.Batches)
	}
	// The byte stream decodes back to the same sample count.
	r := wire.NewReader(&buf)
	total := 0
	for {
		b, err := r.ReadBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(b.Samples)
	}
	if total != 15000 {
		t.Errorf("decoded %d samples", total)
	}
	// Each window spans (5000-1)×25µs.
	want := 3 * simclock.Duration(4999) * 25 * simclock.Microsecond
	if st.VirtualSpan != want {
		t.Errorf("virtual span = %v, want %v", st.VirtualSpan, want)
	}
}

func TestReplayFormatTranscodes(t *testing.T) {
	dir := writeCampaign(t, 2, 3000)
	decode := func(stream []byte) []wire.Sample {
		t.Helper()
		r := wire.NewReader(bytes.NewReader(stream))
		var out []wire.Sample
		for {
			b, err := r.ReadBatch()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b.Samples...)
		}
	}
	var v2, v3 bytes.Buffer
	if _, err := Run(context.Background(), dir, &v2, Options{Unpaced: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, &v3, Options{Unpaced: true, Format: wire.FormatMBW3}); err != nil {
		t.Fatal(err)
	}
	s2, s3 := decode(v2.Bytes()), decode(v3.Bytes())
	if len(s2) != 6000 || len(s3) != 6000 {
		t.Fatalf("decoded %d/%d samples, want 6000 each", len(s2), len(s3))
	}
	for i := range s2 {
		if s2[i] != s3[i] {
			t.Fatalf("sample %d differs across formats: %+v vs %+v", i, s2[i], s3[i])
		}
	}
	if v3.Len() >= v2.Len() {
		t.Errorf("mbw3 replay is %d B, not smaller than default %d B", v3.Len(), v2.Len())
	}
	if _, err := Run(context.Background(), dir, io.Discard, Options{Unpaced: true, Format: wire.Format(9)}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestReplayPacingSleeps(t *testing.T) {
	dir := writeCampaign(t, 1, 4096)
	var slept time.Duration
	var buf bytes.Buffer
	_, err := Run(context.Background(), dir, &buf, Options{
		Speedup:      10,
		BatchSamples: 2048,
		Sleep:        func(d time.Duration) { slept += d },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2048 samples × 25µs ≈ 51.2ms of virtual time per flushed batch; at
	// 10× speedup ≈ 5.12ms per batch, two full batches ≈ 10.2ms total.
	if slept < 8*time.Millisecond || slept > 13*time.Millisecond {
		t.Errorf("slept %v, want ≈10.2ms", slept)
	}
}

func TestReplayMaxGapClampsSleeps(t *testing.T) {
	dir := writeCampaign(t, 1, 4096)
	run := func(maxGap time.Duration) (time.Duration, Stats) {
		var slept time.Duration
		var buf bytes.Buffer
		st, err := Run(context.Background(), dir, &buf, Options{
			Speedup:      10,
			BatchSamples: 2048,
			MaxGap:       maxGap,
			Sleep:        func(d time.Duration) { slept += d },
		})
		if err != nil {
			t.Fatal(err)
		}
		return slept, st
	}
	// Unclamped: ≈5.12 ms per flushed batch (see TestReplayPacingSleeps).
	// A 1 ms MaxGap caps each of the two sleeps.
	clamped, st := run(time.Millisecond)
	if clamped > 2*time.Millisecond {
		t.Errorf("clamped sleep total %v exceeds 2×MaxGap", clamped)
	}
	if st.GapClamps != 2 {
		t.Errorf("GapClamps = %d, want 2", st.GapClamps)
	}
	if st.Samples != 4096 {
		t.Errorf("samples = %d: clamping must not drop data", st.Samples)
	}
	// Zero MaxGap preserves gaps verbatim.
	verbatim, st0 := run(0)
	if verbatim <= clamped {
		t.Errorf("verbatim sleep %v not above clamped %v", verbatim, clamped)
	}
	if st0.GapClamps != 0 {
		t.Errorf("GapClamps = %d without MaxGap", st0.GapClamps)
	}
}

func TestReplayWindowSelection(t *testing.T) {
	dir := writeCampaign(t, 4, 100)
	var buf bytes.Buffer
	st, err := Run(context.Background(), dir, &buf, Options{Unpaced: true, Windows: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 2 || st.Samples != 200 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Run(context.Background(), filepath.Join(t.TempDir(), "missing"), &bytes.Buffer{}, Options{}); err == nil {
		t.Error("missing campaign accepted")
	}
	dir := writeCampaign(t, 1, 10)
	if _, err := Run(context.Background(), dir, failingWriter{}, Options{Unpaced: true, BatchSamples: 4}); err == nil {
		t.Error("write failure not propagated")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestReplayIntoLiveCollector(t *testing.T) {
	// End-to-end: replay a campaign into a real collector service.
	dir := writeCampaign(t, 2, 3000)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &collector.MemSink{}
	srv := collector.Serve(ln, sink.Handle)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(context.Background(), dir, conn, Options{Unpaced: true})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Samples()) < st.Samples {
		if time.Now().After(deadline) {
			t.Fatalf("collector got %d/%d", len(sink.Samples()), st.Samples)
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.LastErr(); err != nil {
		t.Errorf("stream error: %v", err)
	}
}
