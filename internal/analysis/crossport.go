package analysis

import (
	"fmt"
	"sort"

	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/wire"
)

// UplinkMAD computes, for every aligned sampling slot, the normalized mean
// absolute deviation of the uplinks' utilization — the Fig 7 metric. The
// input is one utilization series per uplink (egress or ingress). A slot
// where every uplink is idle is "perfectly balanced" (MAD 0); the paper's
// CDFs include such slots.
func UplinkMAD(uplinks [][]UtilPoint) []float64 {
	matrix, slots := AlignedMatrix(uplinks)
	if len(slots) == 0 {
		return nil
	}
	out := make([]float64, 0, len(slots))
	vals := make([]float64, len(matrix))
	for si := range slots {
		for ui := range matrix {
			vals[ui] = matrix[ui][si]
		}
		out = append(out, stats.NormalizedMAD(vals))
	}
	return out
}

// ServerCorrelation computes the Fig 8 heatmap: the Pearson correlation
// matrix of per-server utilization series (ToR→server direction in the
// paper; ingress and egress "were almost identical").
func ServerCorrelation(servers [][]UtilPoint) [][]float64 {
	matrix, _ := AlignedMatrix(servers)
	return stats.CorrelationMatrix(matrix)
}

// GroupBlockScore summarizes how "blocky" a correlation matrix is for a
// known group partition: the mean within-group off-diagonal correlation
// minus the mean across-group correlation. Cache racks show strong blocks
// (score ≫ 0); Web racks show none (≈ 0).
func GroupBlockScore(corr [][]float64, groupOf []int) float64 {
	if len(corr) != len(groupOf) {
		panic("analysis: group labels do not match matrix size")
	}
	var within, across float64
	var nw, na int
	for i := range corr {
		for j := i + 1; j < len(corr); j++ {
			v := corr[i][j]
			if v != v { // NaN
				continue
			}
			if groupOf[i] == groupOf[j] {
				within += v
				nw++
			} else {
				across += v
				na++
			}
		}
	}
	if nw == 0 || na == 0 {
		return 0
	}
	return within/float64(nw) - across/float64(na)
}

// HotShare is the Fig 9 payload: how hot samples distribute between
// uplinks and downlinks.
type HotShare struct {
	UplinkHot   int
	DownlinkHot int
}

// UplinkShare returns the fraction of hot samples that were uplinks.
func (h HotShare) UplinkShare() float64 {
	total := h.UplinkHot + h.DownlinkHot
	if total == 0 {
		return 0
	}
	return float64(h.UplinkHot) / float64(total)
}

// HotPortShare counts hot samples by port class. isUplink maps a series
// index to its class.
func HotPortShare(ports [][]UtilPoint, isUplink func(i int) bool, threshold float64) HotShare {
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	var h HotShare
	for i, s := range ports {
		for _, p := range s {
			if p.Util > threshold {
				if isUplink(i) {
					h.UplinkHot++
				} else {
					h.DownlinkHot++
				}
			}
		}
	}
	return h
}

// BufferWindow is one Fig 10 observation: a 50 ms span's peak shared
// buffer occupancy versus how many ports ran hot within it.
type BufferWindow struct {
	Start    simclock.Time
	HotPorts int
	// PeakBytes is the maximum buffer-peak reading within the window.
	PeakBytes float64
}

// BufferVsHotPorts builds the Fig 10 data set. ports holds one
// utilization series per port; peaks is the buffer-peak sample series
// (clear-on-read values). window is the grouping span (50 ms in the
// paper). The returned slice is ordered by window start.
func BufferVsHotPorts(ports [][]UtilPoint, peaks []wire.Sample, window simclock.Duration, threshold float64) ([]BufferWindow, error) {
	if window <= 0 {
		return nil, fmt.Errorf("analysis: non-positive window %v", window)
	}
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	type agg struct {
		hot  map[int]bool
		peak float64
	}
	aggs := make(map[simclock.Time]*agg)
	at := func(t simclock.Time) *agg {
		key := t.Truncate(window)
		a := aggs[key]
		if a == nil {
			a = &agg{hot: make(map[int]bool)}
			aggs[key] = a
		}
		return a
	}
	for pi, s := range ports {
		for _, p := range s {
			if p.Util > threshold {
				at(p.Start).hot[pi] = true
			}
		}
	}
	for _, s := range peaks {
		a := at(s.Time)
		if v := float64(s.Value); v > a.peak {
			a.peak = v
		}
	}
	out := make([]BufferWindow, 0, len(aggs))
	for start, a := range aggs {
		out = append(out, BufferWindow{Start: start, HotPorts: len(a.hot), PeakBytes: a.peak})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

// BufferBoxplots groups Fig 10 windows by hot-port count and summarizes
// the (normalized) peak occupancy of each group. Peaks are normalized by
// the maximum observed across all windows, as in the paper ("we normalize
// the occupancy to the maximum value we observed in any of our data
// sets"). The map key is the hot-port count.
func BufferBoxplots(windows []BufferWindow) map[int]stats.BoxplotSummary {
	var maxPeak float64
	for _, w := range windows {
		if w.PeakBytes > maxPeak {
			maxPeak = w.PeakBytes
		}
	}
	groups := make(map[int][]float64)
	for _, w := range windows {
		v := 0.0
		if maxPeak > 0 {
			v = w.PeakBytes / maxPeak
		}
		groups[w.HotPorts] = append(groups[w.HotPorts], v)
	}
	out := make(map[int]stats.BoxplotSummary, len(groups))
	for k, vs := range groups {
		out[k] = stats.Boxplot(vs)
	}
	return out
}

// MaxHotPortFraction returns the largest fraction of ports simultaneously
// hot in any window — §6.4's "Hadoop sometimes drove 100% of its ports to
// >50% utilization; Web and Cache only drove a maximum of 71% and 64%".
func MaxHotPortFraction(windows []BufferWindow, numPorts int) float64 {
	if numPorts <= 0 {
		return 0
	}
	maxHot := 0
	for _, w := range windows {
		if w.HotPorts > maxHot {
			maxHot = w.HotPorts
		}
	}
	return float64(maxHot) / float64(numPorts)
}
