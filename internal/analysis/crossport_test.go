package analysis

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func TestUplinkMAD(t *testing.T) {
	// Four uplinks, two slots: first balanced, second fully skewed.
	up := func(utils ...float64) []UtilPoint { return seriesOf(utils...) }
	mads := UplinkMAD([][]UtilPoint{
		up(0.5, 1.0),
		up(0.5, 0.0),
		up(0.5, 0.0),
		up(0.5, 0.0),
	})
	if len(mads) != 2 {
		t.Fatalf("mads = %v", mads)
	}
	if mads[0] != 0 {
		t.Errorf("balanced slot MAD = %v", mads[0])
	}
	if math.Abs(mads[1]-1.5) > 1e-12 {
		t.Errorf("skewed slot MAD = %v, want 1.5", mads[1])
	}
	if got := UplinkMAD(nil); got != nil {
		t.Errorf("empty MAD = %v", got)
	}
}

func TestServerCorrelationBlocks(t *testing.T) {
	// Two synchronized pairs, uncorrelated across pairs.
	a1 := seriesOf(0.1, 0.9, 0.1, 0.9, 0.2, 0.8)
	a2 := seriesOf(0.1, 0.8, 0.2, 0.9, 0.1, 0.9)
	b1 := seriesOf(0.9, 0.1, 0.8, 0.1, 0.9, 0.2)
	b2 := seriesOf(0.8, 0.2, 0.9, 0.1, 0.8, 0.1)
	corr := ServerCorrelation([][]UtilPoint{a1, a2, b1, b2})
	if corr[0][1] < 0.8 || corr[2][3] < 0.8 {
		t.Errorf("within-group correlation too low: %v %v", corr[0][1], corr[2][3])
	}
	if corr[0][2] > -0.5 {
		t.Errorf("across-group correlation = %v, expected strongly negative here", corr[0][2])
	}
	score := GroupBlockScore(corr, []int{0, 0, 1, 1})
	if score < 1 {
		t.Errorf("block score = %v, want >> 0", score)
	}
}

func TestGroupBlockScoreGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched labels did not panic")
		}
	}()
	GroupBlockScore([][]float64{{1}}, []int{0, 1})
}

func TestHotPortShare(t *testing.T) {
	ports := [][]UtilPoint{
		seriesOf(0.9, 0.9, 0.1), // downlink, 2 hot
		seriesOf(0.1, 0.1, 0.1), // downlink, 0 hot
		seriesOf(0.9, 0.1, 0.1), // uplink, 1 hot
	}
	share := HotPortShare(ports, func(i int) bool { return i == 2 }, 0)
	if share.DownlinkHot != 2 || share.UplinkHot != 1 {
		t.Fatalf("share = %+v", share)
	}
	if math.Abs(share.UplinkShare()-1.0/3) > 1e-12 {
		t.Errorf("uplink share = %v", share.UplinkShare())
	}
	if (HotShare{}).UplinkShare() != 0 {
		t.Error("empty share should be 0")
	}
}

func peakSample(tUs int64, v uint64) wire.Sample {
	return wire.Sample{Time: simclock.Epoch.Add(simclock.Micros(tUs)), Kind: asic.KindBufferPeak, Value: v}
}

func TestBufferVsHotPorts(t *testing.T) {
	// Window = 100µs. Two windows: the first has 2 hot ports and a high
	// peak, the second none and a low peak.
	ports := [][]UtilPoint{
		seriesOf(0.9, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1),
		seriesOf(0.1, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1),
	}
	peaks := []wire.Sample{
		peakSample(30, 5000), peakSample(60, 9000),
		peakSample(130, 100), peakSample(160, 200),
	}
	wins, err := BufferVsHotPorts(ports, peaks, simclock.Micros(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("windows = %+v", wins)
	}
	if wins[0].HotPorts != 2 || wins[0].PeakBytes != 9000 {
		t.Errorf("window 0 = %+v", wins[0])
	}
	if wins[1].HotPorts != 0 || wins[1].PeakBytes != 200 {
		t.Errorf("window 1 = %+v", wins[1])
	}
	if _, err := BufferVsHotPorts(ports, peaks, 0, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestBufferBoxplots(t *testing.T) {
	wins := []BufferWindow{
		{HotPorts: 0, PeakBytes: 100},
		{HotPorts: 0, PeakBytes: 200},
		{HotPorts: 3, PeakBytes: 1000},
		{HotPorts: 3, PeakBytes: 800},
	}
	box := BufferBoxplots(wins)
	if len(box) != 2 {
		t.Fatalf("groups = %v", box)
	}
	// Normalized by the global max (1000).
	if box[3].Max != 1.0 {
		t.Errorf("group 3 max = %v", box[3].Max)
	}
	if box[0].Max != 0.2 {
		t.Errorf("group 0 max = %v", box[0].Max)
	}
	if box[0].N != 2 || box[3].N != 2 {
		t.Error("group sizes wrong")
	}
}

func TestMaxHotPortFraction(t *testing.T) {
	wins := []BufferWindow{{HotPorts: 3}, {HotPorts: 7}, {HotPorts: 1}}
	if f := MaxHotPortFraction(wins, 10); f != 0.7 {
		t.Errorf("fraction = %v", f)
	}
	if f := MaxHotPortFraction(nil, 10); f != 0 {
		t.Errorf("empty = %v", f)
	}
	if f := MaxHotPortFraction(wins, 0); f != 0 {
		t.Errorf("zero ports = %v", f)
	}
}
