package analysis

// Algebraic laws for the fleet-merge surface: pooling per-port
// accumulators must be commutative and associative, and must equal the
// batch oracle pooled by hand — otherwise fleet totals would depend on
// which shard's snapshot arrived first.

import (
	"reflect"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// pmixPort synthesizes one port's aligned byte/bin series, with hot and
// cold stretches phased by the seed so every port classifies both ways.
func pmixPort(n int, seed uint64) (bytes, bins []wire.Sample) {
	src := rng.New(seed)
	phase := int(seed % 5)
	var cum uint64
	var cumBins [asic.NumSizeBins]uint64
	for i := 0; i < n; i++ {
		at := simclock.Epoch.Add(simclock.Micros(int64(i) * 100))
		util := 0.1
		if ((i+phase)/6)%2 == 1 {
			util = 0.9
		}
		cum += uint64(util * float64(gbps10) / 8 * 100e-6)
		for b := range cumBins {
			cumBins[b] += uint64(src.Intn(9))
		}
		bytes = append(bytes, wire.Sample{Time: at, Kind: asic.KindBytes, Dir: asic.TX, Value: cum})
		bins = append(bins, wire.Sample{Time: at, Kind: asic.KindSizeBins, Dir: asic.TX, Bins: cumBins})
	}
	return bytes, bins
}

// pmixAcc feeds one port's stream, interleaved as a campaign would.
func pmixAcc(t *testing.T, bytes, bins []wire.Sample) *PacketMixAcc {
	t.Helper()
	m := NewPacketMixAcc(gbps10, 0)
	for i := range bytes {
		m.Feed(bytes[i])
		m.Feed(bins[i])
	}
	return m
}

// pmixClone deep-copies a classifier through its snapshot, so merge
// variants start from identical state.
func pmixClone(t *testing.T, m *PacketMixAcc) *PacketMixAcc {
	t.Helper()
	c, err := RestorePacketMixAcc(jsonRT(t, m.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pmixResult(t *testing.T, m *PacketMixAcc) PacketMixResult {
	t.Helper()
	res, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPacketMixAccMergePoolsPorts(t *testing.T) {
	aBytes, aBins := pmixPort(60, 1)
	bBytes, bBins := pmixPort(45, 2)
	cBytes, cBins := pmixPort(30, 3)
	a, b, c := pmixAcc(t, aBytes, aBins), pmixAcc(t, bBytes, bBins), pmixAcc(t, cBytes, cBins)

	// The pooled oracle: each port classified by the batch function,
	// histograms unioned and period counters added by hand.
	oracle := func(results ...PacketMixResult) PacketMixResult {
		out := PacketMixResult{Inside: NewSizeHistogram(), Outside: NewSizeHistogram()}
		for _, r := range results {
			out.Inside.Merge(r.Inside)
			out.Outside.Merge(r.Outside)
			out.InsidePeriods += r.InsidePeriods
			out.OutsidePeriods += r.OutsidePeriods
		}
		return out
	}
	batch := func(bytes, bins []wire.Sample) PacketMixResult {
		r, err := PacketMixInsideOutside(bytes, bins, gbps10, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want := oracle(batch(aBytes, aBins), batch(bBytes, bBins), batch(cBytes, cBins))

	// Commutativity: a⊕b == b⊕a.
	ab, ba := pmixClone(t, a), pmixClone(t, b)
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pmixResult(t, ab), pmixResult(t, ba)) {
		t.Error("a⊕b and b⊕a classify differently")
	}

	// Associativity, and both groupings equal the pooled batch oracle:
	// (a⊕b)⊕c == a⊕(b⊕c) == oracle.
	left := pmixClone(t, a)
	if err := left.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := pmixClone(t, b)
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	right := pmixClone(t, a)
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	lr, rr := pmixResult(t, left), pmixResult(t, right)
	if !reflect.DeepEqual(lr, rr) {
		t.Error("(a⊕b)⊕c and a⊕(b⊕c) classify differently")
	}
	if !reflect.DeepEqual(lr, want) {
		t.Errorf("pooled stream diverges from the batch oracle:\nstream: %+v\nbatch:  %+v", lr, want)
	}
	if lr.InsidePeriods == 0 || lr.OutsidePeriods == 0 {
		t.Errorf("degenerate pool: %d inside, %d outside", lr.InsidePeriods, lr.OutsidePeriods)
	}

	// The source is untouched: b still classifies alone as before.
	if !reflect.DeepEqual(pmixResult(t, b), batch(bBytes, bBins)) {
		t.Error("merge mutated its source")
	}
}

func TestPacketMixAccMergeRefusals(t *testing.T) {
	aBytes, aBins := pmixPort(20, 4)
	base := pmixAcc(t, aBytes, aBins)

	// Threshold mismatch.
	other := NewPacketMixAcc(gbps10, 0.9)
	if err := base.Merge(other); err == nil {
		t.Error("merge across thresholds accepted")
	}

	// Unpaired residue: a stream whose bin series ran one sample ahead
	// cannot pool without fabricating the missing byte twin.
	ragged := NewPacketMixAcc(gbps10, 0)
	for i := range aBytes {
		ragged.Feed(aBytes[i])
		ragged.Feed(aBins[i])
	}
	ragged.Feed(wire.Sample{
		Time: simclock.Epoch.Add(simclock.Micros(int64(len(aBins)) * 100)),
		Kind: asic.KindSizeBins, Dir: asic.TX,
	})
	if err := base.Merge(ragged); err == nil {
		t.Error("merge of an undrained stream accepted")
	}

	// Latched alignment error: the poisoned classification must not
	// leak into a healthy pool.
	bBytes, bBins := pmixPort(20, 5)
	bBins[10].Time = bBins[10].Time.Add(simclock.Microsecond)
	poisoned := pmixAcc(t, bBytes, bBins)
	if err := base.Merge(poisoned); err == nil {
		t.Error("merge of a poisoned stream accepted")
	}
	// And the receiver still finalizes cleanly after every refusal.
	if _, err := base.Result(); err != nil {
		t.Errorf("refused merges corrupted the receiver: %v", err)
	}
}

// TestBufferWindowAccMergeLaws pins commutativity and associativity for
// the Fig 10 window merge against the single-stream oracle.
func TestBufferWindowAccMergeLaws(t *testing.T) {
	window := 200 * simclock.Microsecond
	series := randUtilSeries(3, 60, 40)
	feedPart := func(t *testing.T, part int) *BufferWindowAcc {
		t.Helper()
		b, err := NewBufferWindowAcc(window, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(100 + part))
		for i, p := range series {
			if i%3 == part {
				b.ObserveUtil(i%4, p)
			}
		}
		for i := 0; i < 10; i++ {
			b.ObservePeak(wire.Sample{
				Time:  simclock.Epoch.Add(simclock.Micros(int64(part*1000 + i*97))),
				Kind:  asic.KindBufferPeak,
				Value: uint64(src.Intn(1 << 20)),
			})
		}
		return b
	}
	clone := func(t *testing.T, b *BufferWindowAcc) *BufferWindowAcc {
		t.Helper()
		c, err := RestoreBufferWindowAcc(jsonRT(t, b.Snapshot()))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	merge := func(t *testing.T, dst, src *BufferWindowAcc) *BufferWindowAcc {
		t.Helper()
		if err := dst.Merge(src); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	a, b, c := feedPart(t, 0), feedPart(t, 1), feedPart(t, 2)

	ab := merge(t, clone(t, a), b)
	ba := merge(t, clone(t, b), a)
	if !reflect.DeepEqual(ab.Windows(), ba.Windows()) {
		t.Error("a⊕b and b⊕a window differently")
	}
	left := merge(t, merge(t, clone(t, a), b), c)
	right := merge(t, clone(t, a), merge(t, clone(t, b), c))
	if !reflect.DeepEqual(left.Windows(), right.Windows()) {
		t.Error("(a⊕b)⊕c and a⊕(b⊕c) window differently")
	}
	if len(left.Windows()) == 0 {
		t.Fatal("degenerate merge: no windows")
	}
}
