package analysis

import (
	"fmt"

	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// This file is the degradation-aware reconstruction path: it turns a
// cumulative byte-counter series that survived faults — missed intervals,
// stuck reads, agent restarts, duplicated batches — into utilization
// spans without fabricating bursts. The paper's invariant (§3, Table 1)
// is that cumulative counters lose resolution, never data: bytes between
// any two *successful* reads are exact. Reconstruction therefore widens
// spans across damaged stretches instead of trusting per-sample deltas.

// maxPhysicalUtil is the threshold above which a span's apparent
// utilization is physically impossible (counter delta exceeds line rate ×
// span) and must stem from stale reads: the preceding samples under-read
// the counter, so the catch-up span absorbs their spans until the average
// drops back into the physical range.
const maxPhysicalUtil = 1.0 + 1e-6

// GapStats accounts for what reconstruction had to repair.
type GapStats struct {
	// Points is the number of output spans.
	Points int
	// Duplicates is the number of input samples dropped as duplicates
	// (identical timestamp, e.g. a batch replayed across a reconnect).
	Duplicates int
	// MissedSpans is the number of spans covering at least one missed
	// sampling interval (Sample.Missed > 0) — resolution lost, bytes kept.
	MissedSpans int
	// Merged is the number of span merges performed to absorb physically
	// impossible catch-up deltas from stale (stuck) reads.
	Merged int
	// Bytes is the total byte count recovered across the series — by
	// construction exactly last.Value − first.Value.
	Bytes uint64
}

// GapAwareUtilization converts a cumulative byte-counter series into
// utilization spans, tolerating fault damage that UtilizationSeries
// rejects:
//
//   - Duplicate samples (equal timestamps) are dropped, provided their
//     values agree; disagreeing duplicates are corruption and error.
//   - Spans covering missed intervals simply widen (the normal Table 1
//     recovery) and are tallied in GapStats.MissedSpans.
//   - A span whose apparent utilization is physically impossible (> line
//     rate) indicates the preceding reads were stale: it is merged
//     backwards with earlier spans until the averaged utilization is
//     physical again, so a stuck stretch becomes one wide exact span
//     instead of a zero-throughput valley followed by a fabricated burst.
//
// Byte conservation holds by construction: the sum of per-span byte
// deltas equals last.Value − first.Value regardless of merging.
//
// A value regression remains an error: agent restarts do not reset ASIC
// counters, so a regression means rack mix-up or corruption, which
// widening cannot repair.
func GapAwareUtilization(samples []wire.Sample, speedBps uint64) ([]UtilPoint, GapStats, error) {
	var st GapStats
	if speedBps == 0 {
		return nil, st, fmt.Errorf("analysis: zero port speed")
	}
	clean, dups, err := dedupByTime(samples)
	if err != nil {
		return nil, st, err
	}
	st.Duplicates = dups
	if len(clean) < 2 {
		return nil, st, fmt.Errorf("analysis: need >= 2 distinct samples, have %d", len(clean))
	}

	out := make([]UtilPoint, 0, len(clean)-1)
	bytes := make([]uint64, 0, len(clean)-1) // per-span byte deltas, parallel to out
	for i := 1; i < len(clean); i++ {
		prev, cur := clean[i-1], clean[i]
		if cur.Time < prev.Time {
			return nil, st, fmt.Errorf("analysis: timestamps regress at %d", i)
		}
		if cur.Value < prev.Value {
			return nil, st, fmt.Errorf("analysis: byte counter regressed at %d", i)
		}
		if cur.Missed > 0 {
			st.MissedSpans++
		}
		delta := cur.Value - prev.Value
		out = append(out, UtilPoint{Start: prev.Time, End: cur.Time, Util: spanUtil(delta, cur.Time.Sub(prev.Time), speedBps)})
		bytes = append(bytes, delta)
		// Absorb a physically impossible catch-up into the stale spans
		// preceding it.
		for len(out) > 1 && out[len(out)-1].Util > maxPhysicalUtil {
			a, b := out[len(out)-2], out[len(out)-1]
			merged := bytes[len(bytes)-2] + bytes[len(bytes)-1]
			out = out[:len(out)-1]
			bytes = bytes[:len(bytes)-1]
			out[len(out)-1] = UtilPoint{Start: a.Start, End: b.End, Util: spanUtil(merged, b.End.Sub(a.Start), speedBps)}
			bytes[len(bytes)-1] = merged
			st.Merged++
		}
	}
	st.Points = len(out)
	st.Bytes = clean[len(clean)-1].Value - clean[0].Value
	return out, st, nil
}

// spanUtil is the average utilization of delta bytes over span at the
// given line rate.
func spanUtil(delta uint64, span simclock.Duration, speedBps uint64) float64 {
	if span <= 0 {
		return 0
	}
	return float64(delta) * 8 / (float64(speedBps) * span.Seconds())
}

// dedupByTime drops samples sharing a timestamp with their predecessor,
// verifying the duplicates agree on the counter value.
func dedupByTime(samples []wire.Sample) ([]wire.Sample, int, error) {
	if len(samples) == 0 {
		return nil, 0, nil
	}
	out := samples[:1]
	shared := true // still aliasing the input; copy lazily on first drop
	dups := 0
	for i := 1; i < len(samples); i++ {
		last := out[len(out)-1]
		if samples[i].Time == last.Time {
			if samples[i].Value != last.Value {
				return nil, 0, fmt.Errorf("analysis: duplicate timestamp %v with conflicting values %d vs %d",
					samples[i].Time, last.Value, samples[i].Value)
			}
			dups++
			if shared {
				cp := make([]wire.Sample, len(out), len(samples))
				copy(cp, out)
				out, shared = cp, false
			}
			continue
		}
		if shared {
			out = samples[:i+1]
		} else {
			out = append(out, samples[i])
		}
	}
	return out, dups, nil
}

// RecoveredBytes returns the exact byte total carried by a cumulative
// counter series between its first and last successful reads — the
// ground-truth quantity the chaos soak compares against the ASIC. Only
// endpoint monotonicity is required; interior damage is irrelevant
// because the counter is cumulative.
func RecoveredBytes(samples []wire.Sample) (uint64, error) {
	if len(samples) < 2 {
		return 0, fmt.Errorf("analysis: need >= 2 samples, have %d", len(samples))
	}
	first, last := samples[0], samples[len(samples)-1]
	if last.Value < first.Value {
		return 0, fmt.Errorf("analysis: byte counter regressed across series")
	}
	return last.Value - first.Value, nil
}
