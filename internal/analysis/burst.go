package analysis

import (
	"mburst/internal/simclock"
	"mburst/internal/stats"
)

// DefaultHotThreshold is the paper's burst criterion: a sampling period is
// "hot" when utilization exceeds 50% (§5.1, following [8]). §5.4 notes the
// results are insensitive to this choice because utilization is so
// multimodal — the AblationHotThreshold bench demonstrates that.
const DefaultHotThreshold = 0.5

// Burst is a maximal run of consecutive hot sampling periods (§5.1: "An
// unbroken sequence of hot samples indicates a burst").
type Burst struct {
	Start, End simclock.Time
}

// Duration returns the burst's length.
func (b Burst) Duration() simclock.Duration { return b.End.Sub(b.Start) }

// HotSequence classifies each span of a utilization series as hot or not.
func HotSequence(series []UtilPoint, threshold float64) []bool {
	hot := make([]bool, len(series))
	for i, p := range series {
		hot[i] = p.Util > threshold
	}
	return hot
}

// Bursts segments a utilization series into bursts at the given hot
// threshold (<= 0 selects DefaultHotThreshold).
func Bursts(series []UtilPoint, threshold float64) []Burst {
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	var out []Burst
	var cur *Burst
	for _, p := range series {
		if p.Util > threshold {
			if cur == nil {
				out = append(out, Burst{Start: p.Start, End: p.End})
				cur = &out[len(out)-1]
			} else {
				cur.End = p.End
			}
		} else {
			cur = nil
		}
	}
	return out
}

// BurstDurations returns each burst's duration in microseconds — the
// Fig 3 sample set.
func BurstDurations(bursts []Burst) []float64 {
	out := make([]float64, len(bursts))
	for i, b := range bursts {
		out[i] = float64(b.Duration()) / float64(simclock.Microsecond)
	}
	return out
}

// InterBurstGaps returns the idle period between consecutive bursts in
// microseconds — the Fig 4 sample set.
func InterBurstGaps(bursts []Burst) []float64 {
	if len(bursts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(bursts)-1)
	for i := 1; i < len(bursts); i++ {
		gap := bursts[i].Start.Sub(bursts[i-1].End)
		out = append(out, float64(gap)/float64(simclock.Microsecond))
	}
	return out
}

// BurstMarkov fits the paper's two-state first-order Markov model (Table 2)
// to a utilization series at the given hot threshold.
func BurstMarkov(series []UtilPoint, threshold float64) stats.MarkovModel {
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	return stats.FitMarkov(HotSequence(series, threshold))
}

// PoissonTest runs the §5.2 Kolmogorov–Smirnov test of inter-burst gaps
// against an exponential fit: rejecting the null rejects homogeneous
// Poisson burst arrivals.
func PoissonTest(gapsMicros []float64) stats.KSResult {
	return stats.KSExponential(gapsMicros)
}

// HotFraction returns the time-weighted fraction of the series spent hot.
func HotFraction(series []UtilPoint, threshold float64) float64 {
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	var hot, total simclock.Duration
	for _, p := range series {
		span := p.Span()
		total += span
		if p.Util > threshold {
			hot += span
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hot) / float64(total)
}
