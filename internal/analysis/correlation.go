package analysis

import (
	"math"

	"mburst/internal/stats"
	"mburst/internal/wire"
)

// Autocorrelation returns the sample autocorrelation function of a series
// at lags 0..maxLag: r(k) = Σ (x_t−µ)(x_{t+k}−µ) / Σ (x_t−µ)².
//
// This is the continuous-valued complement of the paper's two-state
// Markov analysis (§5.1): positively correlated utilization at small lags
// is what "bursts are correlated" means before thresholding. r(0) is
// always 1 for a non-constant series; a constant series yields NaN.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	if maxLag < 0 {
		panic("analysis: negative maxLag")
	}
	out := make([]float64, maxLag+1)
	n := len(xs)
	if n == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	mu := stats.Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - mu
		denom += d * d
	}
	if denom == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for k := 0; k <= maxLag; k++ {
		var num float64
		for t := 0; t+k < n; t++ {
			num += (xs[t] - mu) * (xs[t+k] - mu)
		}
		out[k] = num / denom
	}
	return out
}

// IntegralTimescale returns the sum of autocorrelation values from lag 1
// until the first non-positive lag (a standard burst-memory length
// estimate, in units of sampling intervals). Zero for memoryless series.
func IntegralTimescale(acf []float64) float64 {
	var sum float64
	for k := 1; k < len(acf); k++ {
		if math.IsNaN(acf[k]) || acf[k] <= 0 {
			break
		}
		sum += acf[k]
	}
	return sum
}

// SignalCoverage returns the fraction of bursts during which a cumulative
// congestion-signal counter (ECN marks, drops) advanced — i.e. the bursts
// a signal-driven control loop could even in principle learn about. §7's
// point is two-fold: many bursts end before the signal reaches the sender
// (see detect.FractionOverBeforeSignal), and mild bursts may produce no
// signal at all; this measures the latter.
//
// signal must be time-ordered samples of one cumulative counter.
func SignalCoverage(bursts []Burst, signal []wire.Sample) float64 {
	if len(bursts) == 0 || len(signal) < 2 {
		return 0
	}
	covered := 0
	for _, b := range bursts {
		// Counter value at the last sample at or before the burst start
		// (fall back to the first sample), and at the first sample at or
		// after the burst end (fall back to the last).
		before := signal[0].Value
		for _, s := range signal {
			if s.Time.After(b.Start) {
				break
			}
			before = s.Value
		}
		after := signal[len(signal)-1].Value
		for _, s := range signal {
			if !s.Time.Before(b.End) {
				after = s.Value
				break
			}
		}
		if after > before {
			covered++
		}
	}
	return float64(covered) / float64(len(bursts))
}

// BurstIntensity summarizes how intense bursts are relative to the
// surrounding traffic (§5.4: "when bursts occur, they are generally
// intense").
type BurstIntensity struct {
	// MeanInside / MeanOutside are time-weighted mean utilizations.
	MeanInside, MeanOutside float64
	// PeakInside is the maximum utilization observed inside any burst.
	PeakInside float64
	// Ratio is MeanInside / MeanOutside (Inf when outside is idle).
	Ratio float64
}

// Intensity computes BurstIntensity for a utilization series at the given
// threshold (<= 0 selects the default).
func Intensity(series []UtilPoint, threshold float64) BurstIntensity {
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	var in, out BurstIntensity
	var inDur, outDur float64
	for _, p := range series {
		span := float64(p.Span())
		if p.Util > threshold {
			in.MeanInside += p.Util * span
			inDur += span
			if p.Util > in.PeakInside {
				in.PeakInside = p.Util
			}
		} else {
			out.MeanOutside += p.Util * span
			outDur += span
		}
	}
	var res BurstIntensity
	if inDur > 0 {
		res.MeanInside = in.MeanInside / inDur
		res.PeakInside = in.PeakInside
	}
	if outDur > 0 {
		res.MeanOutside = out.MeanOutside / outDur
	}
	switch {
	case res.MeanOutside > 0:
		res.Ratio = res.MeanInside / res.MeanOutside
	case res.MeanInside > 0:
		res.Ratio = math.Inf(1)
	}
	return res
}
