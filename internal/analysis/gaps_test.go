package analysis

import (
	"math"
	"strings"
	"testing"

	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// byteSeries builds a cumulative byte series from (time µs, value) pairs.
func byteSeries(pairs ...[2]uint64) []wire.Sample {
	out := make([]wire.Sample, len(pairs))
	for i, p := range pairs {
		out[i] = wire.Sample{Time: simclock.Epoch.Add(simclock.Micros(int64(p[0]))), Value: p[1]}
	}
	return out
}

func totalBytes(points []UtilPoint, speedBps uint64) float64 {
	var sum float64
	for _, p := range points {
		sum += p.Util * float64(speedBps) * p.Span().Seconds() / 8
	}
	return sum
}

func TestGapAwareMatchesCleanSeries(t *testing.T) {
	// On undamaged input the gap-aware path must agree with
	// UtilizationSeries exactly.
	const speed = 10e9
	s := byteSeries([2]uint64{0, 0}, [2]uint64{25, 10_000}, [2]uint64{50, 25_000}, [2]uint64{75, 25_000})
	want, err := UtilizationSeries(s, speed)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := GapAwareUtilization(s, speed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("point %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if st.Duplicates != 0 || st.Merged != 0 || st.Bytes != 25_000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGapAwareDropsDuplicates(t *testing.T) {
	const speed = 10e9
	s := byteSeries([2]uint64{0, 0}, [2]uint64{25, 10_000}, [2]uint64{25, 10_000}, [2]uint64{50, 20_000})
	got, st, err := GapAwareUtilization(s, speed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 1 || len(got) != 2 {
		t.Fatalf("duplicates = %d, points = %d", st.Duplicates, len(got))
	}
	// Conflicting duplicate values are corruption.
	bad := byteSeries([2]uint64{0, 0}, [2]uint64{25, 10_000}, [2]uint64{25, 11_000})
	if _, _, err := GapAwareUtilization(bad, speed); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting duplicate: err = %v", err)
	}
}

func TestGapAwareWidensMissedSpans(t *testing.T) {
	const speed = 10e9 // 10 Gb/s -> 31250 bytes per 25 µs at line rate
	// A missed interval: the 25–75 µs span carries two intervals' bytes.
	s := []wire.Sample{
		{Time: simclock.Epoch, Value: 0},
		{Time: simclock.Epoch.Add(simclock.Micros(25)), Value: 10_000},
		{Time: simclock.Epoch.Add(simclock.Micros(75)), Value: 30_000, Missed: 1},
	}
	got, st, err := GapAwareUtilization(s, speed)
	if err != nil {
		t.Fatal(err)
	}
	if st.MissedSpans != 1 || st.Merged != 0 {
		t.Fatalf("stats = %+v", st)
	}
	wide := got[1]
	if wide.Span() != simclock.Micros(50) {
		t.Fatalf("widened span = %v", wide.Span())
	}
	wantUtil := 20_000 * 8 / (speed * 50e-6)
	if math.Abs(wide.Util-wantUtil) > 1e-12 {
		t.Errorf("util = %v, want %v", wide.Util, wantUtil)
	}
}

func TestGapAwareMergesStuckCatchUp(t *testing.T) {
	const speed uint64 = 10e9 // line rate: 31250 bytes per 25 µs
	// Line-rate traffic, but reads at 25/50/75 µs are stuck at the 0 µs
	// value; the 100 µs read catches up with 4 intervals of bytes — a
	// physically impossible 4× line rate over its 25 µs span. The naive
	// series fabricates a quiet valley then a monster burst; gap-aware
	// reconstruction must fold it into one exact line-rate span.
	s := byteSeries(
		[2]uint64{0, 0},
		[2]uint64{25, 0}, // stuck
		[2]uint64{50, 0}, // stuck
		[2]uint64{75, 0}, // stuck
		[2]uint64{100, 125_000},
		[2]uint64{125, 156_250},
	)
	got, st, err := GapAwareUtilization(s, speed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Merged == 0 {
		t.Fatal("no merges recorded for stuck catch-up")
	}
	for i, p := range got {
		if p.Util > maxPhysicalUtil {
			t.Errorf("point %d util %v still super-physical", i, p.Util)
		}
	}
	// The merged span covers 0–100 µs at exactly line rate.
	if got[0].Span() != simclock.Micros(100) {
		t.Fatalf("merged span = %v, want 100µs", got[0].Span())
	}
	if math.Abs(got[0].Util-1.0) > 1e-9 {
		t.Errorf("merged util = %v, want 1.0", got[0].Util)
	}
	// Byte conservation: spans re-integrate to the counter total.
	if sum := totalBytes(got, speed); math.Abs(sum-156_250) > 1e-6*156_250 {
		t.Errorf("reintegrated bytes = %v, want 156250", sum)
	}
	if st.Bytes != 156_250 {
		t.Errorf("stats.Bytes = %d", st.Bytes)
	}
	// The strict path refuses nothing here (monotone), but fabricates the
	// burst — document the contrast that motivates the gap-aware path.
	naive, err := UtilizationSeries(s, speed)
	if err != nil {
		t.Fatal(err)
	}
	super := false
	for _, p := range naive {
		if p.Util > maxPhysicalUtil {
			super = true
		}
	}
	if !super {
		t.Error("expected the naive series to fabricate a super-physical burst")
	}
}

func TestGapAwareErrors(t *testing.T) {
	const speed = 10e9
	if _, _, err := GapAwareUtilization(byteSeries([2]uint64{0, 0}), speed); err == nil {
		t.Error("short series accepted")
	}
	if _, _, err := GapAwareUtilization(byteSeries([2]uint64{0, 0}, [2]uint64{25, 10}), 0); err == nil {
		t.Error("zero speed accepted")
	}
	regress := byteSeries([2]uint64{0, 100}, [2]uint64{25, 50})
	if _, _, err := GapAwareUtilization(regress, speed); err == nil {
		t.Error("value regression accepted")
	}
	disorder := byteSeries([2]uint64{25, 0}, [2]uint64{0, 100})
	if _, _, err := GapAwareUtilization(disorder, speed); err == nil {
		t.Error("time regression accepted")
	}
}

func TestRecoveredBytes(t *testing.T) {
	s := byteSeries([2]uint64{0, 1000}, [2]uint64{25, 1500}, [2]uint64{300, 9000})
	got, err := RecoveredBytes(s)
	if err != nil || got != 8000 {
		t.Fatalf("RecoveredBytes = %d, %v; want 8000, nil", got, err)
	}
	if _, err := RecoveredBytes(s[:1]); err == nil {
		t.Error("short series accepted")
	}
	if _, err := RecoveredBytes(byteSeries([2]uint64{0, 100}, [2]uint64{25, 50})); err == nil {
		t.Error("regressed series accepted")
	}
}
