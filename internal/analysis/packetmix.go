package analysis

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/stats"
	"mburst/internal/wire"
)

// sizeBinEdges converts the ASIC bin layout into histogram edges.
func sizeBinEdges() []float64 {
	edges := make([]float64, len(asic.SizeBinEdges))
	for i, e := range asic.SizeBinEdges {
		edges[i] = e
	}
	return edges
}

// NewSizeHistogram returns an empty histogram over the ASIC size bins.
func NewSizeHistogram() *stats.Histogram {
	return stats.NewHistogram(sizeBinEdges())
}

// PacketMixResult holds the Fig 5 payload: normalized packet-size
// histograms for sampling periods inside and outside bursts.
type PacketMixResult struct {
	Inside  *stats.Histogram
	Outside *stats.Histogram
	// InsidePeriods / OutsidePeriods count the classified periods.
	InsidePeriods, OutsidePeriods int
}

// LargeShift returns the relative increase of the largest-bin packet
// fraction inside bursts versus outside: (inside-outside)/outside. The
// paper reports ≈ +60% for Web, ≈ +20% for Cache, and a small positive
// shift for Hadoop (§5.3).
func (r PacketMixResult) LargeShift() float64 {
	in := r.Inside.Normalized()
	out := r.Outside.Normalized()
	last := asic.NumSizeBins - 1
	if out[last] == 0 {
		return 0
	}
	return (in[last] - out[last]) / out[last]
}

// PacketMixInsideOutside classifies each sampling period as inside or
// outside a burst using the byte counter, and accumulates the same
// period's size-bin deltas into the corresponding histogram. This mirrors
// the §5.3 methodology: "Packets were binned by their size into several
// ranges and polled alongside the total byte count of the interface in
// order to classify the samples."
//
// byteSamples and binSamples must come from the same polling campaign
// (same timestamps); periods without matching bin data are skipped.
func PacketMixInsideOutside(byteSamples, binSamples []wire.Sample, speedBps uint64, threshold float64) (PacketMixResult, error) {
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	res := PacketMixResult{Inside: NewSizeHistogram(), Outside: NewSizeHistogram()}
	if len(byteSamples) != len(binSamples) {
		return res, fmt.Errorf("analysis: byte/bin sample counts differ: %d vs %d", len(byteSamples), len(binSamples))
	}
	series, err := UtilizationSeries(byteSamples, speedBps)
	if err != nil {
		return res, err
	}
	for i := 1; i < len(binSamples); i++ {
		if binSamples[i].Time != byteSamples[i].Time {
			return res, fmt.Errorf("analysis: sample %d misaligned (%v vs %v)", i, binSamples[i].Time, byteSamples[i].Time)
		}
		p := series[i-1]
		target := res.Outside
		if p.Util > threshold {
			target = res.Inside
			res.InsidePeriods++
		} else {
			res.OutsidePeriods++
		}
		for b := 0; b < asic.NumSizeBins; b++ {
			delta := binSamples[i].Bins[b] - binSamples[i-1].Bins[b]
			target.AddBin(b, int64(delta))
		}
	}
	return res, nil
}
