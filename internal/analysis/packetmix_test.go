package analysis

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func binSample(tUs int64, bins [asic.NumSizeBins]uint64) wire.Sample {
	return wire.Sample{
		Time: simclock.Epoch.Add(simclock.Micros(tUs)),
		Kind: asic.KindSizeBins,
		Dir:  asic.TX,
		Bins: bins,
	}
}

func TestPacketMixInsideOutside(t *testing.T) {
	// Two periods: first cold with small packets, second hot with MTU.
	line100us := uint64(float64(gbps10) / 8 * 100e-6)
	bytes := []wire.Sample{
		byteSample(0, 0),
		byteSample(100, line100us/10),                // 10% util: cold
		byteSample(200, line100us/10+line100us*9/10), // 90% util: hot
	}
	binsSeq := []wire.Sample{
		binSample(0, [asic.NumSizeBins]uint64{}),
		binSample(100, [asic.NumSizeBins]uint64{100, 0, 0, 0, 0, 5}),
		binSample(200, [asic.NumSizeBins]uint64{110, 0, 0, 0, 0, 505}),
	}
	res, err := PacketMixInsideOutside(bytes, binsSeq, gbps10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.InsidePeriods != 1 || res.OutsidePeriods != 1 {
		t.Fatalf("periods = %d/%d", res.InsidePeriods, res.OutsidePeriods)
	}
	out := res.Outside.Normalized()
	in := res.Inside.Normalized()
	// Cold period: 100 small + 5 MTU.
	if math.Abs(out[0]-100.0/105) > 1e-9 {
		t.Errorf("outside small = %v", out[0])
	}
	// Hot period: 10 small + 500 MTU → MTU dominates.
	if in[5] < 0.9 {
		t.Errorf("inside MTU = %v", in[5])
	}
	if res.LargeShift() <= 0 {
		t.Errorf("large shift = %v, want positive", res.LargeShift())
	}
}

func TestPacketMixErrors(t *testing.T) {
	bytes := []wire.Sample{byteSample(0, 0), byteSample(100, 10)}
	if _, err := PacketMixInsideOutside(bytes, bytes[:1], gbps10, 0); err == nil {
		t.Error("mismatched lengths accepted")
	}
	misaligned := []wire.Sample{binSample(0, [asic.NumSizeBins]uint64{}), binSample(150, [asic.NumSizeBins]uint64{})}
	if _, err := PacketMixInsideOutside(bytes, misaligned, gbps10, 0); err == nil {
		t.Error("misaligned timestamps accepted")
	}
}

func TestNewSizeHistogramMatchesASICBins(t *testing.T) {
	h := NewSizeHistogram()
	if h.NumBins() != asic.NumSizeBins {
		t.Fatalf("bins = %d", h.NumBins())
	}
	h.Add(1500)
	if h.Count(asic.NumSizeBins-1) != 1 {
		t.Error("MTU packet not in last bin")
	}
	h.Add(64)
	if h.Count(1) != 1 {
		t.Error("64B packet not in second bin")
	}
}

func TestLargeShiftZeroOutside(t *testing.T) {
	r := PacketMixResult{Inside: NewSizeHistogram(), Outside: NewSizeHistogram()}
	r.Inside.AddBin(5, 10)
	r.Outside.AddBin(0, 10) // zero large packets outside
	if got := r.LargeShift(); got != 0 {
		t.Errorf("shift with zero baseline = %v", got)
	}
}
