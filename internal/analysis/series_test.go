package analysis

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

const gbps10 = uint64(10_000_000_000)

// byteSample builds a cumulative byte sample at t µs with the given value.
func byteSample(tUs int64, value uint64) wire.Sample {
	return wire.Sample{
		Time:  simclock.Epoch.Add(simclock.Micros(tUs)),
		Kind:  asic.KindBytes,
		Dir:   asic.TX,
		Value: value,
	}
}

// rampSamples builds samples every stepUs with per-interval utilization
// from utils (fraction of 10G).
func rampSamples(stepUs int64, utils []float64) []wire.Sample {
	out := []wire.Sample{byteSample(0, 0)}
	var cum float64
	for i, u := range utils {
		cum += u * float64(gbps10) / 8 * float64(stepUs) / 1e6
		out = append(out, byteSample(int64(i+1)*stepUs, uint64(cum)))
	}
	return out
}

func TestSplit(t *testing.T) {
	samples := []wire.Sample{
		{Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Time: 1},
		{Port: 2, Dir: asic.TX, Kind: asic.KindBytes, Time: 1},
		{Port: 1, Dir: asic.RX, Kind: asic.KindBytes, Time: 1},
		{Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Time: 2},
	}
	m := Split(samples)
	if len(m) != 3 {
		t.Fatalf("split into %d series", len(m))
	}
	k := SeriesKey{Port: 1, Dir: asic.TX, Kind: asic.KindBytes}
	if got := len(m[k]); got != 2 {
		t.Errorf("series %v has %d samples", k, got)
	}
	if m[k][0].Time != 1 || m[k][1].Time != 2 {
		t.Error("order not preserved")
	}
}

func TestUtilizationSeries(t *testing.T) {
	samples := rampSamples(25, []float64{0.5, 1.0, 0.0, 0.25})
	series, err := UtilizationSeries(samples, gbps10)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.0, 0.0, 0.25}
	if len(series) != len(want) {
		t.Fatalf("series length %d", len(series))
	}
	for i, w := range want {
		if math.Abs(series[i].Util-w) > 0.001 {
			t.Errorf("util[%d] = %v, want %v", i, series[i].Util, w)
		}
		if series[i].Span() != simclock.Micros(25) {
			t.Errorf("span[%d] = %v", i, series[i].Span())
		}
	}
}

func TestUtilizationSeriesWithMissedInterval(t *testing.T) {
	// A missed interval produces a double-length span; throughput is
	// still exact thanks to cumulative counters (Table 1 caption).
	line25 := uint64(float64(gbps10) / 8 * 25e-6)
	samples := []wire.Sample{
		byteSample(0, 0),
		byteSample(25, line25),   // 100% for 25µs
		byteSample(75, line25*2), // 50µs span at 50% avg
	}
	series, err := UtilizationSeries(samples, gbps10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(series[0].Util-1.0) > 0.001 {
		t.Errorf("util[0] = %v", series[0].Util)
	}
	if math.Abs(series[1].Util-0.5) > 0.001 {
		t.Errorf("util[1] = %v, want 0.5 over the doubled span", series[1].Util)
	}
	if series[1].Span() != simclock.Micros(50) {
		t.Errorf("span[1] = %v", series[1].Span())
	}
}

func TestUtilizationSeriesErrors(t *testing.T) {
	if _, err := UtilizationSeries([]wire.Sample{byteSample(0, 0)}, gbps10); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := UtilizationSeries(rampSamples(25, []float64{0.5}), 0); err == nil {
		t.Error("zero speed accepted")
	}
	bad := []wire.Sample{byteSample(0, 100), byteSample(25, 50)}
	if _, err := UtilizationSeries(bad, gbps10); err == nil {
		t.Error("regressing counter accepted")
	}
	dup := []wire.Sample{byteSample(25, 0), byteSample(25, 50)}
	if _, err := UtilizationSeries(dup, gbps10); err == nil {
		t.Error("duplicate timestamps accepted")
	}
}

func TestRebin(t *testing.T) {
	// 8 × 25µs spans alternating 1.0 / 0.0 → two 100µs bins at 0.5 avg.
	samples := rampSamples(25, []float64{1, 0, 1, 0, 1, 0, 1, 0})
	series, err := UtilizationSeries(samples, gbps10)
	if err != nil {
		t.Fatal(err)
	}
	coarse := Rebin(series, simclock.Micros(100))
	if len(coarse) != 2 {
		t.Fatalf("rebinned into %d bins", len(coarse))
	}
	for i, p := range coarse {
		if math.Abs(p.Util-0.5) > 0.001 {
			t.Errorf("bin %d = %v, want 0.5", i, p.Util)
		}
	}
}

func TestRebinPartialOverlap(t *testing.T) {
	// One 50µs span at 1.0 crossing a 40µs bin boundary distributes
	// 40µs into bin 0 and 10µs into bin 1.
	series := []UtilPoint{{Start: 0, End: simclock.Time(simclock.Micros(50)), Util: 1}}
	coarse := Rebin(series, simclock.Micros(40))
	if len(coarse) != 2 {
		t.Fatalf("bins = %d", len(coarse))
	}
	if math.Abs(coarse[0].Util-1.0) > 0.001 {
		t.Errorf("bin0 = %v", coarse[0].Util)
	}
	if math.Abs(coarse[1].Util-0.25) > 0.001 {
		t.Errorf("bin1 = %v, want 10/40", coarse[1].Util)
	}
}

func TestRebinEmptyAndPanic(t *testing.T) {
	if got := Rebin(nil, simclock.Micros(10)); got != nil {
		t.Errorf("rebin of empty = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive width did not panic")
		}
	}()
	Rebin([]UtilPoint{{}}, 0)
}

func TestUtils(t *testing.T) {
	series := []UtilPoint{{Util: 0.1}, {Util: 0.9}}
	got := Utils(series)
	if len(got) != 2 || got[0] != 0.1 || got[1] != 0.9 {
		t.Errorf("Utils = %v", got)
	}
}

func TestAlignedMatrixAligned(t *testing.T) {
	mk := func(utils ...float64) []UtilPoint {
		var out []UtilPoint
		for i, u := range utils {
			out = append(out, UtilPoint{
				Start: simclock.Epoch.Add(simclock.Micros(int64(i) * 40)),
				End:   simclock.Epoch.Add(simclock.Micros(int64(i+1) * 40)),
				Util:  u,
			})
		}
		return out
	}
	matrix, slots := AlignedMatrix([][]UtilPoint{mk(0.1, 0.2, 0.3), mk(0.9, 0.8, 0.7)})
	if len(slots) != 3 {
		t.Fatalf("slots = %d", len(slots))
	}
	if matrix[0][1] != 0.2 || matrix[1][2] != 0.7 {
		t.Errorf("matrix = %v", matrix)
	}
}

func TestAlignedMatrixMisaligned(t *testing.T) {
	a := []UtilPoint{{Start: 0, End: 100, Util: 1}}
	b := []UtilPoint{{Start: 0, End: 50, Util: 0.2}, {Start: 50, End: 100, Util: 0.8}}
	matrix, slots := AlignedMatrix([][]UtilPoint{a, b})
	if len(slots) != 2 {
		t.Fatalf("slots = %d", len(slots))
	}
	// Series a covers both slots with util 1.
	if matrix[0][0] != 1 || matrix[0][1] != 1 {
		t.Errorf("a row = %v", matrix[0])
	}
	if matrix[1][0] != 0.2 || matrix[1][1] != 0.8 {
		t.Errorf("b row = %v", matrix[1])
	}
}

func TestAlignedMatrixEmpty(t *testing.T) {
	m, s := AlignedMatrix(nil)
	if m != nil || s != nil {
		t.Error("empty input should give nil")
	}
	m, s = AlignedMatrix([][]UtilPoint{nil, nil})
	if m != nil || s != nil {
		t.Error("all-empty series should give nil")
	}
}
