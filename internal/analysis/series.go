// Package analysis turns raw counter samples into the paper's results:
// burst segmentation and duration CDFs (Fig 3), inter-burst gaps and the
// Poisson test (Fig 4, §5.2), Markov burst models (Table 2), packet-size
// mixes inside and outside bursts (Fig 5), utilization distributions
// (Fig 6), uplink load-balance deviation (Fig 7), server correlation
// matrices (Fig 8), hot-port directionality (Fig 9), buffer-occupancy
// versus hot ports (Fig 10), and the coarse-grained SNMP-style views that
// motivate the study (Figs 1–2).
//
// All functions are pure: samples in, summaries out. Inputs come from the
// collection pipeline (or a trace file) as wire.Sample slices.
package analysis

import (
	"fmt"
	"sort"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// SeriesKey identifies one counter instance within a mixed sample stream.
type SeriesKey struct {
	Port uint16
	Dir  asic.Direction
	Kind asic.CounterKind
}

// String formats the key.
func (k SeriesKey) String() string {
	return fmt.Sprintf("port%d/%s/%s", k.Port, k.Dir, k.Kind)
}

// Split partitions a mixed sample stream by counter instance, preserving
// order. Campaigns that poll several counters per loop iteration emit
// interleaved streams; Split recovers the per-counter series.
func Split(samples []wire.Sample) map[SeriesKey][]wire.Sample {
	out := make(map[SeriesKey][]wire.Sample)
	for _, s := range samples {
		k := SeriesKey{Port: s.Port, Dir: s.Dir, Kind: s.Kind}
		out[k] = append(out[k], s)
	}
	return out
}

// UtilPoint is the utilization of a link over one observation span.
type UtilPoint struct {
	// Start/End bound the span (successive sample timestamps).
	Start, End simclock.Time
	// Util is the average utilization over the span in [0, ~1].
	Util float64
}

// Span returns the point's duration.
func (p UtilPoint) Span() simclock.Duration { return p.End.Sub(p.Start) }

// UtilizationSeries converts a cumulative byte-counter series into
// per-span utilization. Each output point covers the span between two
// successive samples — this is exactly the paper's recovery path for
// missed intervals: byte counts are cumulative and timestamps correct, so
// throughput over the (longer) span is still exact (Table 1 caption).
//
// speedBps is the port's line rate. An error is returned for series that
// are too short, out of order, or with regressing byte counts.
func UtilizationSeries(samples []wire.Sample, speedBps uint64) ([]UtilPoint, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("analysis: need >= 2 samples, have %d", len(samples))
	}
	if speedBps == 0 {
		return nil, fmt.Errorf("analysis: zero port speed")
	}
	out := make([]UtilPoint, 0, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		span := cur.Time.Sub(prev.Time)
		if span <= 0 {
			return nil, fmt.Errorf("analysis: non-increasing timestamps at %d", i)
		}
		if cur.Value < prev.Value {
			return nil, fmt.Errorf("analysis: byte counter regressed at %d", i)
		}
		bits := float64(cur.Value-prev.Value) * 8
		out = append(out, UtilPoint{
			Start: prev.Time,
			End:   cur.Time,
			Util:  bits / (float64(speedBps) * span.Seconds()),
		})
	}
	return out, nil
}

// Rebin aggregates a utilization series into fixed-width bins (e.g. the
// 1 s granularity of Fig 7's coarse curves), byte-weighting each source
// span by its overlap with the bin.
func Rebin(series []UtilPoint, width simclock.Duration) []UtilPoint {
	if width <= 0 {
		panic("analysis: non-positive rebin width")
	}
	if len(series) == 0 {
		return nil
	}
	start := series[0].Start.Truncate(width)
	end := series[len(series)-1].End
	nbins := int((end.Sub(start) + width - 1) / simclock.Duration(width))
	if nbins <= 0 {
		nbins = 1
	}
	acc := make([]float64, nbins) // util·ns accumulated per bin
	for _, p := range series {
		// Distribute the span across the bins it overlaps.
		s, e := p.Start, p.End
		for s.Before(e) {
			bi := int(s.Sub(start) / simclock.Duration(width))
			if bi >= nbins {
				break
			}
			binEnd := start.Add(simclock.Duration(bi+1) * width)
			segEnd := e
			if binEnd.Before(segEnd) {
				segEnd = binEnd
			}
			acc[bi] += p.Util * float64(segEnd.Sub(s))
			s = segEnd
		}
	}
	out := make([]UtilPoint, nbins)
	for i := range out {
		binStart := start.Add(simclock.Duration(i) * width)
		out[i] = UtilPoint{
			Start: binStart,
			End:   binStart.Add(width),
			Util:  acc[i] / float64(width),
		}
	}
	return out
}

// Utils extracts the utilization values of a series (for ECDFs, Fig 6).
func Utils(series []UtilPoint) []float64 {
	out := make([]float64, len(series))
	for i, p := range series {
		out[i] = p.Util
	}
	return out
}

// AlignedMatrix resamples several per-port utilization series onto the
// union of their span boundaries and returns, for each port, the
// utilization value applying in each aligned slot. Campaigns that poll
// several ports in one loop iteration produce naturally aligned series;
// this function also tolerates small misalignment from missed intervals.
//
// The returned slots (second value) give each aligned span. Ports missing
// data for a slot carry their covering span's utilization.
func AlignedMatrix(series [][]UtilPoint) ([][]float64, []UtilPoint) {
	if len(series) == 0 {
		return nil, nil
	}
	// Collect the union of boundaries.
	boundSet := make(map[simclock.Time]struct{})
	for _, s := range series {
		for _, p := range s {
			boundSet[p.Start] = struct{}{}
			boundSet[p.End] = struct{}{}
		}
	}
	bounds := make([]simclock.Time, 0, len(boundSet))
	for t := range boundSet {
		bounds = append(bounds, t)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	if len(bounds) < 2 {
		return nil, nil
	}
	slots := make([]UtilPoint, len(bounds)-1)
	for i := range slots {
		slots[i] = UtilPoint{Start: bounds[i], End: bounds[i+1]}
	}
	matrix := make([][]float64, len(series))
	for si, s := range series {
		row := make([]float64, len(slots))
		pi := 0
		for bi := range slots {
			mid := slots[bi].Start.Add(slots[bi].End.Sub(slots[bi].Start) / 2)
			for pi < len(s) && !s[pi].End.After(mid) {
				pi++
			}
			if pi < len(s) && !s[pi].Start.After(mid) {
				row[bi] = s[pi].Util
			}
		}
		matrix[si] = row
	}
	return matrix, slots
}
