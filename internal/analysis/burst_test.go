package analysis

import (
	"math"
	"testing"

	"mburst/internal/simclock"
)

// seriesOf builds 25µs spans from utilization values.
func seriesOf(utils ...float64) []UtilPoint {
	out := make([]UtilPoint, len(utils))
	for i, u := range utils {
		out[i] = UtilPoint{
			Start: simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
			End:   simclock.Epoch.Add(simclock.Micros(int64(i+1) * 25)),
			Util:  u,
		}
	}
	return out
}

func TestBurstSegmentation(t *testing.T) {
	series := seriesOf(0.1, 0.8, 0.9, 0.2, 0.7, 0.1, 0.1)
	bursts := Bursts(series, 0)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %v", bursts)
	}
	if bursts[0].Duration() != simclock.Micros(50) {
		t.Errorf("first burst = %v, want 50µs", bursts[0].Duration())
	}
	if bursts[1].Duration() != simclock.Micros(25) {
		t.Errorf("second burst = %v, want 25µs", bursts[1].Duration())
	}
}

func TestBurstThresholdBoundary(t *testing.T) {
	// Exactly 50% is NOT hot ("exceeds 50%").
	series := seriesOf(0.5, 0.500001)
	bursts := Bursts(series, 0)
	if len(bursts) != 1 || bursts[0].Start != series[1].Start {
		t.Errorf("bursts = %v", bursts)
	}
	// Custom threshold.
	if got := Bursts(seriesOf(0.3, 0.1), 0.25); len(got) != 1 {
		t.Errorf("custom threshold bursts = %v", got)
	}
}

func TestBurstDurationsAndGaps(t *testing.T) {
	series := seriesOf(0.9, 0.1, 0.1, 0.9, 0.9, 0.1, 0.9)
	bursts := Bursts(series, 0)
	durs := BurstDurations(bursts)
	if len(durs) != 3 || durs[0] != 25 || durs[1] != 50 || durs[2] != 25 {
		t.Errorf("durations = %v", durs)
	}
	gaps := InterBurstGaps(bursts)
	if len(gaps) != 2 || gaps[0] != 50 || gaps[1] != 25 {
		t.Errorf("gaps = %v", gaps)
	}
	if got := InterBurstGaps(bursts[:1]); got != nil {
		t.Errorf("single-burst gaps = %v", got)
	}
}

func TestBurstAcrossMissedInterval(t *testing.T) {
	// A hot span with a longer (missed) hot span following merges into
	// one burst covering both.
	series := []UtilPoint{
		{Start: 0, End: simclock.Time(simclock.Micros(25)), Util: 0.9},
		{Start: simclock.Time(simclock.Micros(25)), End: simclock.Time(simclock.Micros(75)), Util: 0.8},
		{Start: simclock.Time(simclock.Micros(75)), End: simclock.Time(simclock.Micros(100)), Util: 0.1},
	}
	bursts := Bursts(series, 0)
	if len(bursts) != 1 || bursts[0].Duration() != simclock.Micros(75) {
		t.Errorf("bursts = %v", bursts)
	}
}

func TestHotSequenceAndFraction(t *testing.T) {
	series := seriesOf(0.9, 0.1, 0.9, 0.9)
	hot := HotSequence(series, 0.5)
	want := []bool{true, false, true, true}
	for i := range want {
		if hot[i] != want[i] {
			t.Errorf("hot[%d] = %v", i, hot[i])
		}
	}
	if f := HotFraction(series, 0); math.Abs(f-0.75) > 1e-12 {
		t.Errorf("hot fraction = %v", f)
	}
	if f := HotFraction(nil, 0); f != 0 {
		t.Errorf("empty hot fraction = %v", f)
	}
}

func TestHotFractionTimeWeighted(t *testing.T) {
	series := []UtilPoint{
		{Start: 0, End: simclock.Time(simclock.Micros(75)), Util: 0.9}, // 75µs hot
		{Start: simclock.Time(simclock.Micros(75)), End: simclock.Time(simclock.Micros(100)), Util: 0.1},
	}
	if f := HotFraction(series, 0); math.Abs(f-0.75) > 1e-12 {
		t.Errorf("weighted hot fraction = %v", f)
	}
}

func TestBurstMarkovMatchesHandCount(t *testing.T) {
	series := seriesOf(0.1, 0.9, 0.9, 0.1, 0.1, 0.9, 0.1)
	m := BurstMarkov(series, 0)
	// hot = F T T F F T F: transitions FT TT TF FF FT TF
	if m.Counts[0][1] != 2 || m.Counts[1][1] != 1 || m.Counts[1][0] != 2 || m.Counts[0][0] != 1 {
		t.Errorf("counts = %v", m.Counts)
	}
}

func TestPoissonTestDetectsMixture(t *testing.T) {
	// Mixture of tight gaps and huge idles — reject exponential.
	var gaps []float64
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			gaps = append(gaps, 30+float64(i%7))
		} else {
			gaps = append(gaps, 200000+float64(i)*100)
		}
	}
	res := PoissonTest(gaps)
	if !res.Rejects(1e-6) {
		t.Errorf("mixture not rejected: %+v", res)
	}
}
