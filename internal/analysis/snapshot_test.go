package analysis

// Snapshot→restore→continue equivalence: for every streaming accumulator
// and every split point k, feeding samples[:k], snapshotting through a
// JSON round trip (how checkpoints travel), restoring, and feeding
// samples[k:] must be bit-identical to the uninterrupted run — outputs,
// latched errors, everything.

import (
	"encoding/json"
	"reflect"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func jsonRT[S any](t *testing.T, s S) S {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var out S
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	return out
}

func sameErr(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// utilStreams are the sample sets every byte-fed accumulator is split
// over: a clean ramp plus damaged variants that latch errors mid-stream.
func utilStreams() map[string][]wire.Sample {
	clean := rampSamples(25, []float64{0.5, 1.0, 0.25, 0.0, 0.75, 0.9, 0.1, 0.95, 0.3, 0.8})
	regress := append([]wire.Sample(nil), clean...)
	regress[6].Value = regress[5].Value - 1
	flat := append([]wire.Sample(nil), clean...)
	flat[4].Time = flat[3].Time
	return map[string][]wire.Sample{"clean": clean, "regressing-value": regress, "duplicate-time": flat}
}

func TestUtilStateSnapshotEquivalence(t *testing.T) {
	for name, samples := range utilStreams() {
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				points []UtilPoint
				errs   []string
				close  error
			}
			run := func(feed func(*UtilState, int) *UtilState) outcome {
				var o outcome
				u := NewUtilState(gbps10)
				for i := range samples {
					u = feed(u, i)
					p, ok, err := u.Feed(samples[i])
					if err != nil {
						o.errs = append(o.errs, err.Error())
					} else if ok {
						o.points = append(o.points, p)
					}
				}
				o.close = u.Close()
				return o
			}
			cont := run(func(u *UtilState, _ int) *UtilState { return u })
			for k := 0; k <= len(samples); k++ {
				k := k
				got := run(func(u *UtilState, i int) *UtilState {
					if i == k {
						return RestoreUtilState(jsonRT(t, u.Snapshot()))
					}
					return u
				})
				if !reflect.DeepEqual(got.points, cont.points) || !reflect.DeepEqual(got.errs, cont.errs) ||
					!sameErr(got.close, cont.close) {
					t.Fatalf("split %d diverges", k)
				}
			}
		})
	}
}

func TestGapAwareStateSnapshotEquivalence(t *testing.T) {
	// Include the catch-up case: its retained span tail is real state.
	streams := utilStreams()
	catchup := rampSamples(25, []float64{0.5, 0.5, 0.5})
	catchup = append(catchup, wire.Sample{
		Time: catchup[3].Time.Add(simclock.Microsecond),
		Kind: asic.KindBytes, Dir: asic.TX,
		Value: catchup[3].Value + uint64(float64(gbps10)/8*100e-6),
	})
	streams["catchup-merge"] = catchup
	for name, samples := range streams {
		t.Run(name, func(t *testing.T) {
			contG := NewGapAwareState(gbps10)
			for _, s := range samples {
				if contG.Feed(s) != nil {
					break
				}
			}
			wantPts, wantSt, wantErr := contG.Finish()
			for k := 0; k <= len(samples); k++ {
				g := NewGapAwareState(gbps10)
				for _, s := range samples[:k] {
					if g.Feed(s) != nil {
						break
					}
				}
				g = RestoreGapAwareState(jsonRT(t, g.Snapshot()))
				for _, s := range samples[k:] {
					if g.Feed(s) != nil {
						break
					}
				}
				gotPts, gotSt, gotErr := g.Finish()
				if !sameErr(gotErr, wantErr) || !reflect.DeepEqual(gotSt, wantSt) || !reflect.DeepEqual(gotPts, wantPts) {
					t.Fatalf("split %d diverges", k)
				}
			}
		})
	}
}

func TestBurstSegmenterSnapshotEquivalence(t *testing.T) {
	series := randUtilSeries(99, 60, 25)
	cfgs := []SegmenterConfig{
		{},
		{HotAbove: 0.6, ColdBelow: 0.3, ArmAfter: 2, DisarmAfter: 3},
	}
	for _, cfg := range cfgs {
		run := func(split int) ([]Transition, bool) {
			g := NewBurstSegmenter(cfg)
			var out []Transition
			for i, p := range series {
				if i == split {
					g = RestoreBurstSegmenter(jsonRT(t, g.Snapshot()))
				}
				if tr, ok := g.Feed(p); ok {
					out = append(out, tr)
				}
			}
			if split == len(series) {
				g = RestoreBurstSegmenter(jsonRT(t, g.Snapshot()))
			}
			tr, ok := g.Flush()
			if ok {
				out = append(out, tr)
			}
			return out, g.Active()
		}
		want, wantActive := run(-1)
		for k := 0; k <= len(series); k++ {
			got, gotActive := run(k)
			if !reflect.DeepEqual(got, want) || gotActive != wantActive {
				t.Fatalf("cfg %+v split %d diverges", cfg, k)
			}
		}
	}
}

func TestRebinAccSnapshotEquivalence(t *testing.T) {
	series := randUtilSeries(7, 40, 30)
	width := 100 * simclock.Microsecond
	cont := NewRebinAcc(width)
	for _, p := range series {
		cont.Add(p)
	}
	want := cont.Points()
	for k := 0; k <= len(series); k++ {
		r := NewRebinAcc(width)
		for _, p := range series[:k] {
			r.Add(p)
		}
		r2, err := RestoreRebinAcc(jsonRT(t, r.Snapshot()))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range series[k:] {
			r2.Add(p)
		}
		if !reflect.DeepEqual(r2.Points(), want) {
			t.Fatalf("split %d diverges", k)
		}
	}
	if _, err := RestoreRebinAcc(RebinSnap{Width: 0}); err == nil {
		t.Error("zero-width snapshot accepted")
	}
}

func TestDropBinAccSnapshotEquivalence(t *testing.T) {
	src := rng.New(5)
	samples := make([]wire.Sample, 30)
	var cum uint64
	for i := range samples {
		cum += uint64(src.Intn(40))
		samples[i] = wire.Sample{
			Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 50)),
			Kind:  asic.KindDrops,
			Value: cum,
		}
	}
	damaged := append([]wire.Sample(nil), samples...)
	damaged[20].Time = damaged[19].Time
	for name, stream := range map[string][]wire.Sample{"clean": samples, "non-increasing": damaged} {
		t.Run(name, func(t *testing.T) {
			bin := 200 * simclock.Microsecond
			cont, err := NewDropBinAcc(bin)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range stream {
				if cont.Add(s) != nil {
					break
				}
			}
			want, wantErr := cont.Bins()
			for k := 0; k <= len(stream); k++ {
				d, err := NewDropBinAcc(bin)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range stream[:k] {
					if d.Add(s) != nil {
						break
					}
				}
				d2, err := RestoreDropBinAcc(jsonRT(t, d.Snapshot()))
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range stream[k:] {
					if d2.Add(s) != nil {
						break
					}
				}
				got, gotErr := d2.Bins()
				if !sameErr(gotErr, wantErr) || !reflect.DeepEqual(got, want) {
					t.Fatalf("split %d diverges", k)
				}
			}
		})
	}
}

func TestSeriesEndpointsSnapshotAndMerge(t *testing.T) {
	samples := rampSamples(25, []float64{0.1, 0.9, 0.4, 0.6})
	var cont SeriesEndpoints
	for _, s := range samples {
		cont.Add(s)
	}
	for k := 0; k <= len(samples); k++ {
		var a SeriesEndpoints
		for _, s := range samples[:k] {
			a.Add(s)
		}
		var b SeriesEndpoints
		b.Restore(jsonRT(t, a.Snapshot()))
		for _, s := range samples[k:] {
			b.Add(s)
		}
		if !reflect.DeepEqual(b, cont) {
			t.Fatalf("split %d diverges", k)
		}
		// Merge of consecutive halves equals the sequential feed too.
		var left, right SeriesEndpoints
		for _, s := range samples[:k] {
			left.Add(s)
		}
		for _, s := range samples[k:] {
			right.Add(s)
		}
		left.Merge(&right)
		if !reflect.DeepEqual(left, cont) {
			t.Fatalf("merge at %d diverges", k)
		}
	}
}

func TestPacketMixAccSnapshotEquivalence(t *testing.T) {
	src := rng.New(31)
	n := 40
	var stream []wire.Sample
	var cum uint64
	var cumBins [asic.NumSizeBins]uint64
	for i := 0; i < n; i++ {
		at := simclock.Epoch.Add(simclock.Micros(int64(i) * 100))
		util := 0.1
		if (i/5)%2 == 1 {
			util = 0.9
		}
		cum += uint64(util * float64(gbps10) / 8 * 100e-6)
		for b := range cumBins {
			cumBins[b] += uint64(src.Intn(9))
		}
		stream = append(stream,
			wire.Sample{Time: at, Kind: asic.KindBytes, Dir: asic.TX, Value: cum},
			wire.Sample{Time: at, Kind: asic.KindSizeBins, Dir: asic.TX, Bins: cumBins})
	}
	misaligned := append([]wire.Sample(nil), stream...)
	misaligned[41].Time = misaligned[41].Time.Add(simclock.Microsecond) // a bin sample off its byte twin
	for name, samples := range map[string][]wire.Sample{"clean": stream, "misaligned": misaligned} {
		t.Run(name, func(t *testing.T) {
			cont := NewPacketMixAcc(gbps10, 0)
			for _, s := range samples {
				cont.Feed(s)
			}
			want, wantErr := cont.Result()
			for k := 0; k <= len(samples); k++ {
				m := NewPacketMixAcc(gbps10, 0)
				for _, s := range samples[:k] {
					m.Feed(s)
				}
				m2, err := RestorePacketMixAcc(jsonRT(t, m.Snapshot()))
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range samples[k:] {
					m2.Feed(s)
				}
				got, gotErr := m2.Result()
				if !sameErr(gotErr, wantErr) || !reflect.DeepEqual(got, want) {
					t.Fatalf("split %d diverges", k)
				}
			}
		})
	}
}

func TestBufferWindowAccSnapshotEquivalence(t *testing.T) {
	series := randUtilSeries(3, 50, 40)
	src := rng.New(17)
	peaks := make([]wire.Sample, 20)
	for i := range peaks {
		peaks[i] = wire.Sample{
			Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 97)),
			Kind:  asic.KindBufferPeak,
			Value: uint64(src.Intn(1 << 20)),
		}
	}
	window := 200 * simclock.Microsecond
	type ev struct {
		port int
		p    UtilPoint
		peak *wire.Sample
	}
	var events []ev
	for i, p := range series {
		events = append(events, ev{port: i % 4, p: p})
	}
	for i := range peaks {
		events = append(events, ev{peak: &peaks[i]})
	}
	feed := func(b *BufferWindowAcc, e ev) {
		if e.peak != nil {
			b.ObservePeak(*e.peak)
		} else {
			b.ObserveUtil(e.port, e.p)
		}
	}
	cont, err := NewBufferWindowAcc(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		feed(cont, e)
	}
	want := cont.Windows()
	for k := 0; k <= len(events); k += 7 {
		b, err := NewBufferWindowAcc(window, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events[:k] {
			feed(b, e)
		}
		b2, err := RestoreBufferWindowAcc(jsonRT(t, b.Snapshot()))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events[k:] {
			feed(b2, e)
		}
		if !reflect.DeepEqual(b2.Windows(), want) {
			t.Fatalf("split %d diverges", k)
		}
		// Merge of the two halves equals the sequential feed (order-free).
		left, _ := NewBufferWindowAcc(window, 0)
		right, _ := NewBufferWindowAcc(window, 0)
		for _, e := range events[:k] {
			feed(left, e)
		}
		for _, e := range events[k:] {
			feed(right, e)
		}
		if err := left.Merge(right); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(left.Windows(), want) {
			t.Fatalf("merge at %d diverges", k)
		}
	}
	other, _ := NewBufferWindowAcc(window*2, 0)
	if err := cont.Merge(other); err == nil {
		t.Error("merge across window widths accepted")
	}
}
