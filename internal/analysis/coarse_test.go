package analysis

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func dropSample(tUs int64, v uint64) wire.Sample {
	return wire.Sample{Time: simclock.Epoch.Add(simclock.Micros(tUs)), Kind: asic.KindDrops, Value: v}
}

func TestCoarseWindow(t *testing.T) {
	// 1 second window at 25% utilization of 10G with 500 drops.
	bytes1s := uint64(float64(gbps10) / 8 * 0.25)
	bs := []wire.Sample{byteSample(0, 0), byteSample(1_000_000, bytes1s)}
	ds := []wire.Sample{dropSample(0, 100), dropSample(1_000_000, 600)}
	pt, err := CoarseWindow(bs, ds, gbps10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt.Util-0.25) > 0.001 {
		t.Errorf("util = %v", pt.Util)
	}
	if math.Abs(pt.DropRate-500) > 0.001 {
		t.Errorf("drop rate = %v", pt.DropRate)
	}
}

func TestCoarseWindowErrors(t *testing.T) {
	one := []wire.Sample{byteSample(0, 0)}
	two := []wire.Sample{byteSample(0, 0), byteSample(10, 0)}
	if _, err := CoarseWindow(one, two, gbps10); err == nil {
		t.Error("short byte series accepted")
	}
	if _, err := CoarseWindow(two, one, gbps10); err == nil {
		t.Error("short drop series accepted")
	}
	same := []wire.Sample{byteSample(5, 0), byteSample(5, 10)}
	if _, err := CoarseWindow(same, two, gbps10); err == nil {
		t.Error("zero-span window accepted")
	}
}

func TestDropUtilCorrelation(t *testing.T) {
	// Drops independent of utilization → near-zero correlation (Fig 1).
	var pts []CoarsePoint
	for i := 0; i < 1000; i++ {
		util := float64(i%100) / 100
		drop := 0.0
		if i%37 == 0 { // sporadic µburst drops, unrelated to avg util
			drop = float64(100 + i%300)
		}
		pts = append(pts, CoarsePoint{Util: util, DropRate: drop})
	}
	r := DropUtilCorrelation(pts)
	if math.Abs(r) > 0.2 {
		t.Errorf("correlation = %v, want ~0", r)
	}
	// Perfectly coupled drops → near 1.
	pts = pts[:0]
	for i := 0; i < 100; i++ {
		u := float64(i) / 100
		pts = append(pts, CoarsePoint{Util: u, DropRate: u * 1000})
	}
	if r := DropUtilCorrelation(pts); r < 0.99 {
		t.Errorf("coupled correlation = %v", r)
	}
}

func TestDropTimeSeries(t *testing.T) {
	// Cumulative drops sampled every 100µs, binned at 300µs.
	samples := []wire.Sample{
		dropSample(0, 0),
		dropSample(100, 5),
		dropSample(200, 5),
		dropSample(300, 10),
		dropSample(400, 10),
		dropSample(500, 10),
		dropSample(600, 40),
	}
	bins, err := DropTimeSeries(samples, simclock.Micros(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0] != 10 || bins[1] != 30 {
		t.Errorf("bins = %v, want [10 30]", bins)
	}
}

func TestDropTimeSeriesErrors(t *testing.T) {
	two := []wire.Sample{dropSample(0, 0), dropSample(10, 1)}
	if _, err := DropTimeSeries(two, 0); err == nil {
		t.Error("zero bin accepted")
	}
	if _, err := DropTimeSeries(two[:1], simclock.Micros(1)); err == nil {
		t.Error("single sample accepted")
	}
	bad := []wire.Sample{dropSample(10, 0), dropSample(10, 1)}
	if _, err := DropTimeSeries(bad, simclock.Micros(1)); err == nil {
		t.Error("non-increasing timestamps accepted")
	}
}

func TestDropBurstiness(t *testing.T) {
	bins := []uint64{0, 0, 50, 0, 0, 0, 10, 0}
	b := DropBurstiness(bins)
	if b.Total != 60 {
		t.Errorf("total = %d", b.Total)
	}
	if math.Abs(b.ZeroBins-0.75) > 1e-12 {
		t.Errorf("zero bins = %v", b.ZeroBins)
	}
	if math.Abs(b.TopBinShare-50.0/60) > 1e-12 {
		t.Errorf("top bin share = %v", b.TopBinShare)
	}
	if got := DropBurstiness(nil); got.Total != 0 {
		t.Errorf("empty = %+v", got)
	}
}
