package analysis

import (
	"errors"
	"fmt"
	"sort"

	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/wire"
)

// Snapshot/Restore extend every streaming accumulator in this package
// with an explicit, JSON-serializable state surface, mirroring
// internal/stats: the collector checkpointer persists snapshots, and a
// restored accumulator continues bit-identically to one that never
// stopped (snapshot_test.go proves this through a JSON round-trip at
// every split point).
//
// Latched errors are serialized as their message and restored with
// errors.New: the restored error compares message-identical (what every
// caller in this repository checks), though not errors.Is-identical to
// the original value.
//
// The sequential state machines here (UtilState, GapAwareState,
// BurstSegmenter, RebinAcc, DropBinAcc) consume ordered streams, so
// they snapshot and restore but deliberately do not Merge: two
// half-streams cannot be combined without fabricating the seam pair.
// The order-free accumulators (SeriesEndpoints over consecutive halves,
// BufferWindowAcc) gain Merge for fleet-scale aggregation, and
// PacketMixAcc gains the restricted cross-port pooling Merge below —
// whole completed streams combine exactly even though half-streams
// cannot.

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func errFromString(s string) error {
	if s == "" {
		return nil
	}
	return errors.New(s)
}

// UtilSnap is the serializable state of a UtilState. It carries the line
// rate, so restoring needs no out-of-band configuration.
type UtilSnap struct {
	SpeedBps uint64      `json:"speed_bps"`
	N        int         `json:"n"`
	Prev     wire.Sample `json:"prev"`
	Err      string      `json:"err,omitempty"`
}

// Snapshot captures the converter's state.
func (u *UtilState) Snapshot() UtilSnap {
	return UtilSnap{SpeedBps: u.speedBps, N: u.n, Prev: u.prev, Err: errString(u.err)}
}

// RestoreUtilState rebuilds a converter from a snapshot.
func RestoreUtilState(s UtilSnap) *UtilState {
	return &UtilState{speedBps: s.SpeedBps, n: s.N, prev: s.Prev, err: errFromString(s.Err)}
}

// GapAwareSnap is the serializable state of a GapAwareState.
type GapAwareSnap struct {
	SpeedBps uint64      `json:"speed_bps"`
	Stats    GapStats    `json:"stats"`
	First    wire.Sample `json:"first"`
	Prev     wire.Sample `json:"prev"`
	Clean    int         `json:"clean"`
	Out      []UtilPoint `json:"out"`
	Bytes    []uint64    `json:"bytes"`
	Err      string      `json:"err,omitempty"`
}

// Snapshot captures the reconstructor's state, including the retained
// spans (the catch-up merge can cascade arbitrarily far back, so they
// are state, not output).
func (g *GapAwareState) Snapshot() GapAwareSnap {
	return GapAwareSnap{
		SpeedBps: g.speedBps,
		Stats:    g.st,
		First:    g.first,
		Prev:     g.prev,
		Clean:    g.clean,
		Out:      append([]UtilPoint(nil), g.out...),
		Bytes:    append([]uint64(nil), g.bytes...),
		Err:      errString(g.err),
	}
}

// RestoreGapAwareState rebuilds a reconstructor from a snapshot.
func RestoreGapAwareState(s GapAwareSnap) *GapAwareState {
	return &GapAwareState{
		speedBps: s.SpeedBps,
		st:       s.Stats,
		first:    s.First,
		prev:     s.Prev,
		clean:    s.Clean,
		out:      append([]UtilPoint(nil), s.Out...),
		bytes:    append([]uint64(nil), s.Bytes...),
		err:      errFromString(s.Err),
	}
}

// SegmenterSnap is the serializable state of a BurstSegmenter: its
// configuration plus the live run counters and open burst.
type SegmenterSnap struct {
	HotAbove    float64 `json:"hot_above"`
	ColdBelow   float64 `json:"cold_below,omitempty"`
	ArmAfter    int     `json:"arm_after"`
	DisarmAfter int     `json:"disarm_after"`

	Active   bool          `json:"active"`
	HotRun   int           `json:"hot_run"`
	ColdRun  int           `json:"cold_run"`
	RunStart simclock.Time `json:"run_start"`
	Cur      Burst         `json:"cur"`
	PrevEnd  simclock.Time `json:"prev_end"`
	Closed   bool          `json:"closed"`
}

// Snapshot captures the segmenter's state.
func (g *BurstSegmenter) Snapshot() SegmenterSnap {
	return SegmenterSnap{
		HotAbove: g.hotAbove, ColdBelow: g.coldBelow, ArmAfter: g.arm, DisarmAfter: g.disarm,
		Active: g.active, HotRun: g.hotRun, ColdRun: g.coldRun,
		RunStart: g.runStart, Cur: g.cur, PrevEnd: g.prevEnd, Closed: g.closed,
	}
}

// RestoreBurstSegmenter rebuilds a segmenter from a snapshot. The
// snapshot stores the resolved configuration (defaults already applied
// at construction), so no re-defaulting happens here.
func RestoreBurstSegmenter(s SegmenterSnap) *BurstSegmenter {
	return &BurstSegmenter{
		hotAbove: s.HotAbove, coldBelow: s.ColdBelow, arm: s.ArmAfter, disarm: s.DisarmAfter,
		active: s.Active, hotRun: s.HotRun, coldRun: s.ColdRun,
		runStart: s.RunStart, cur: s.Cur, prevEnd: s.PrevEnd, closed: s.Closed,
	}
}

// RebinSnap is the serializable state of a RebinAcc.
type RebinSnap struct {
	Width   simclock.Duration `json:"width_ns"`
	Started bool              `json:"started"`
	Start   simclock.Time     `json:"start"`
	End     simclock.Time     `json:"end"`
	Acc     []float64         `json:"acc"`
}

// Snapshot captures the rebinner's state.
func (r *RebinAcc) Snapshot() RebinSnap {
	return RebinSnap{
		Width: r.width, Started: r.started, Start: r.start, End: r.end,
		Acc: append([]float64(nil), r.acc...),
	}
}

// RestoreRebinAcc rebuilds a rebinner from a snapshot, rejecting a
// non-positive width as an error (snapshots come from disk; the
// constructor's panic is for static configuration).
func RestoreRebinAcc(s RebinSnap) (*RebinAcc, error) {
	if s.Width <= 0 {
		return nil, fmt.Errorf("analysis: non-positive rebin width %v in snapshot", s.Width)
	}
	return &RebinAcc{
		width: s.Width, started: s.Started, start: s.Start, end: s.End,
		acc: append([]float64(nil), s.Acc...),
	}, nil
}

// DropBinSnap is the serializable state of a DropBinAcc.
type DropBinSnap struct {
	Bin   simclock.Duration `json:"bin_ns"`
	N     int               `json:"n"`
	Start simclock.Time     `json:"start"`
	Prev  wire.Sample       `json:"prev"`
	Bins  []uint64          `json:"bins"`
	Err   string            `json:"err,omitempty"`
}

// Snapshot captures the drop binner's state.
func (d *DropBinAcc) Snapshot() DropBinSnap {
	return DropBinSnap{
		Bin: d.bin, N: d.n, Start: d.start, Prev: d.prev,
		Bins: append([]uint64(nil), d.bins...),
		Err:  errString(d.err),
	}
}

// RestoreDropBinAcc rebuilds a drop binner from a snapshot.
func RestoreDropBinAcc(s DropBinSnap) (*DropBinAcc, error) {
	if s.Bin <= 0 {
		return nil, fmt.Errorf("analysis: non-positive bin %v in snapshot", s.Bin)
	}
	return &DropBinAcc{
		bin: s.Bin, n: s.N, start: s.Start, prev: s.Prev,
		bins: append([]uint64(nil), s.Bins...),
		err:  errFromString(s.Err),
	}, nil
}

// Snapshot captures the endpoints. SeriesEndpoints is its own snapshot
// type: every field is exported and JSON-serializable already.
func (e *SeriesEndpoints) Snapshot() SeriesEndpoints { return *e }

// Restore replaces the endpoints with a snapshot.
func (e *SeriesEndpoints) Restore(s SeriesEndpoints) { *e = s }

// Merge folds o into e as the continuation of e's series: o's samples
// are treated as arriving after e's, so First keeps e's opening sample
// (unless e was empty) and Last takes o's closing one.
func (e *SeriesEndpoints) Merge(o *SeriesEndpoints) {
	if o.Count == 0 {
		return
	}
	if e.Count == 0 {
		*e = *o
		return
	}
	e.Last = o.Last
	e.Count += o.Count
}

// ByteRecSnap serializes one pending byteRec of a PacketMixAcc.
type ByteRecSnap struct {
	Time    simclock.Time `json:"time"`
	Util    float64       `json:"util"`
	HasUtil bool          `json:"has_util"`
}

// PacketMixSnap is the serializable state of a PacketMixAcc.
type PacketMixSnap struct {
	Threshold      float64             `json:"threshold"`
	Util           UtilSnap            `json:"util"`
	UtilErr        string              `json:"util_err,omitempty"`
	AlignErr       string              `json:"align_err,omitempty"`
	Inside         stats.HistogramSnap `json:"inside"`
	Outside        stats.HistogramSnap `json:"outside"`
	InsidePeriods  int                 `json:"inside_periods"`
	OutsidePeriods int                 `json:"outside_periods"`
	NBytes         int                 `json:"n_bytes"`
	NBins          int                 `json:"n_bins"`
	Matched        int                 `json:"matched"`
	ByteQ          []ByteRecSnap       `json:"byte_q,omitempty"`
	BinQ           []wire.Sample       `json:"bin_q,omitempty"`
	PrevBin        wire.Sample         `json:"prev_bin"`
}

// Snapshot captures the classifier's state, pairing queues included.
func (m *PacketMixAcc) Snapshot() PacketMixSnap {
	s := PacketMixSnap{
		Threshold:      m.threshold,
		Util:           m.util.Snapshot(),
		UtilErr:        errString(m.utilErr),
		AlignErr:       errString(m.alignErr),
		Inside:         m.res.Inside.Snapshot(),
		Outside:        m.res.Outside.Snapshot(),
		InsidePeriods:  m.res.InsidePeriods,
		OutsidePeriods: m.res.OutsidePeriods,
		NBytes:         m.nBytes,
		NBins:          m.nBins,
		Matched:        m.matched,
		BinQ:           append([]wire.Sample(nil), m.binQ...),
		PrevBin:        m.prevBin,
	}
	for _, r := range m.byteQ {
		s.ByteQ = append(s.ByteQ, ByteRecSnap{Time: r.time, Util: r.util, HasUtil: r.hasUtil})
	}
	return s
}

// RestorePacketMixAcc rebuilds a classifier from a snapshot.
func RestorePacketMixAcc(s PacketMixSnap) (*PacketMixAcc, error) {
	inside, err := stats.RestoreHistogram(s.Inside)
	if err != nil {
		return nil, err
	}
	outside, err := stats.RestoreHistogram(s.Outside)
	if err != nil {
		return nil, err
	}
	m := &PacketMixAcc{
		threshold: s.Threshold,
		util:      RestoreUtilState(s.Util),
		utilErr:   errFromString(s.UtilErr),
		alignErr:  errFromString(s.AlignErr),
		res: PacketMixResult{
			Inside: inside, Outside: outside,
			InsidePeriods: s.InsidePeriods, OutsidePeriods: s.OutsidePeriods,
		},
		nBytes:  s.NBytes,
		nBins:   s.NBins,
		matched: s.Matched,
		binQ:    append([]wire.Sample(nil), s.BinQ...),
		prevBin: s.PrevBin,
	}
	for _, r := range s.ByteQ {
		m.byteQ = append(m.byteQ, byteRec{time: r.Time, util: r.Util, hasUtil: r.HasUtil})
	}
	return m, nil
}

// Merge pools o's finished classification into m — the cross-port
// aggregation the fleet tier performs when combining per-port Fig 5
// classifiers into one fleet-wide packet mix. The classifier is a
// sequential machine, so only a *completed* stream pools exactly: o
// must be drained (no unpaired byte/bin residue) and error-free, or
// Merge refuses rather than fabricate a seam pair. Histograms union,
// period and sample counters add; the receiver keeps its own pairing
// tail and utilization state, so it may keep consuming its own port's
// stream afterwards. Thresholds must agree. o is left untouched, and
// pooling is commutative and associative over Result (snapshot_test.go
// proves both against the batch oracle).
func (m *PacketMixAcc) Merge(o *PacketMixAcc) error {
	if m.threshold != o.threshold {
		return fmt.Errorf("analysis: merging packet mixes with different thresholds (%g vs %g)",
			m.threshold, o.threshold)
	}
	if len(o.byteQ) != 0 || len(o.binQ) != 0 {
		return fmt.Errorf("analysis: merging a packet mix with %d byte + %d bin samples unpaired",
			len(o.byteQ), len(o.binQ))
	}
	if o.utilErr != nil {
		return o.utilErr
	}
	if o.alignErr != nil {
		return o.alignErr
	}
	m.res.Inside.Merge(o.res.Inside)
	m.res.Outside.Merge(o.res.Outside)
	m.res.InsidePeriods += o.res.InsidePeriods
	m.res.OutsidePeriods += o.res.OutsidePeriods
	m.nBytes += o.nBytes
	m.nBins += o.nBins
	m.matched += o.matched
	return nil
}

// BufferAggSnap serializes one window of a BufferWindowAcc.
type BufferAggSnap struct {
	Start    simclock.Time `json:"start"`
	HotPorts []int         `json:"hot_ports,omitempty"`
	Peak     float64       `json:"peak"`
}

// BufferWindowSnap is the serializable state of a BufferWindowAcc, with
// the window map flattened to a deterministic sorted slice.
type BufferWindowSnap struct {
	Window    simclock.Duration `json:"window_ns"`
	Threshold float64           `json:"threshold"`
	Aggs      []BufferAggSnap   `json:"aggs,omitempty"`
}

// Snapshot captures the accumulator's state in deterministic order.
func (b *BufferWindowAcc) Snapshot() BufferWindowSnap {
	s := BufferWindowSnap{Window: b.window, Threshold: b.threshold}
	starts := make([]simclock.Time, 0, len(b.aggs))
	for start := range b.aggs {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, start := range starts {
		a := b.aggs[start]
		ports := make([]int, 0, len(a.hot))
		for p := range a.hot {
			ports = append(ports, p)
		}
		sort.Ints(ports)
		s.Aggs = append(s.Aggs, BufferAggSnap{Start: start, HotPorts: ports, Peak: a.peak})
	}
	return s
}

// RestoreBufferWindowAcc rebuilds an accumulator from a snapshot.
func RestoreBufferWindowAcc(s BufferWindowSnap) (*BufferWindowAcc, error) {
	if s.Window <= 0 {
		return nil, fmt.Errorf("analysis: non-positive window %v in snapshot", s.Window)
	}
	b := &BufferWindowAcc{
		window:    s.Window,
		threshold: s.Threshold,
		aggs:      make(map[simclock.Time]*bufferAgg, len(s.Aggs)),
	}
	for _, a := range s.Aggs {
		agg := &bufferAgg{hot: make(map[int]bool, len(a.HotPorts)), peak: a.Peak}
		for _, p := range a.HotPorts {
			agg.hot[p] = true
		}
		b.aggs[a.Start] = agg
	}
	return b, nil
}

// Merge folds o's windows into b's: hot-port sets union and peaks take
// the maximum, exactly as if every observation behind o had been issued
// on b (both are order-free). The two accumulators must share window
// width and threshold.
func (b *BufferWindowAcc) Merge(o *BufferWindowAcc) error {
	if b.window != o.window || b.threshold != o.threshold {
		return fmt.Errorf("analysis: merging buffer windows with different configs (%v/%g vs %v/%g)",
			b.window, b.threshold, o.window, o.threshold)
	}
	starts := make([]simclock.Time, 0, len(o.aggs))
	for start := range o.aggs {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, start := range starts {
		oa := o.aggs[start]
		a := b.aggs[start]
		if a == nil {
			a = &bufferAgg{hot: make(map[int]bool, len(oa.hot))}
			b.aggs[start] = a
		}
		for p := range oa.hot {
			a.hot[p] = true
		}
		if oa.peak > a.peak {
			a.peak = oa.peak
		}
	}
	return nil
}
