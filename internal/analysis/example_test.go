package analysis_test

import (
	"fmt"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// ExampleUtilizationSeries shows the recovery path the paper relies on
// (Table 1 caption): because byte counters are cumulative and timestamps
// correct, a missed sampling interval still yields exact throughput over
// the longer span.
func ExampleUtilizationSeries() {
	const speed = 10_000_000_000 // 10G
	line25us := uint64(speed / 8 * 25 / 1e6)
	samples := []wire.Sample{
		{Time: simclock.Epoch, Kind: asic.KindBytes, Dir: asic.TX, Value: 0},
		{Time: simclock.Epoch.Add(simclock.Micros(25)), Kind: asic.KindBytes, Dir: asic.TX, Value: line25us},
		// One interval missed: the next sample arrives 50µs later.
		{Time: simclock.Epoch.Add(simclock.Micros(75)), Kind: asic.KindBytes, Dir: asic.TX, Value: 2 * line25us, Missed: 1},
	}
	series, _ := analysis.UtilizationSeries(samples, speed)
	for _, p := range series {
		fmt.Printf("span %v: %.0f%% utilization\n", p.Span(), p.Util*100)
	}
	// Output:
	// span 25µs: 100% utilization
	// span 50µs: 50% utilization
}

// ExampleBursts segments a utilization series into µbursts with the
// paper's >50% criterion.
func ExampleBursts() {
	mk := func(i int, util float64) analysis.UtilPoint {
		return analysis.UtilPoint{
			Start: simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
			End:   simclock.Epoch.Add(simclock.Micros(int64(i+1) * 25)),
			Util:  util,
		}
	}
	series := []analysis.UtilPoint{
		mk(0, 0.05), mk(1, 0.92), mk(2, 0.88), mk(3, 0.04), mk(4, 0.71), mk(5, 0.02),
	}
	for _, b := range analysis.Bursts(series, analysis.DefaultHotThreshold) {
		fmt.Printf("burst of %v starting at %v\n", b.Duration(), b.Start)
	}
	// Output:
	// burst of 50µs starting at 25µs
	// burst of 25µs starting at 100µs
}

// ExampleSignalCoverage checks which bursts produced any congestion
// signal (here, an ECN mark counter).
func ExampleSignalCoverage() {
	us := func(n int64) simclock.Time { return simclock.Epoch.Add(simclock.Micros(n)) }
	bursts := []analysis.Burst{
		{Start: us(0), End: us(50)},
		{Start: us(200), End: us(250)},
	}
	marks := []wire.Sample{
		{Time: us(0), Value: 0},
		{Time: us(40), Value: 12}, // marked during the first burst only
		{Time: us(300), Value: 12},
	}
	fmt.Printf("coverage: %.0f%%\n", analysis.SignalCoverage(bursts, marks)*100)
	// Output:
	// coverage: 50%
}
