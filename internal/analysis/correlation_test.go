package analysis

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func TestAutocorrelationWhiteNoise(t *testing.T) {
	src := rng.New(31)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	acf := Autocorrelation(xs, 5)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Errorf("r(0) = %v", acf[0])
	}
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]) > 0.03 {
			t.Errorf("white noise r(%d) = %v, want ~0", k, acf[k])
		}
	}
	if ts := IntegralTimescale(acf); ts > 0.1 {
		t.Errorf("white-noise timescale = %v", ts)
	}
}

func TestAutocorrelationPersistentProcess(t *testing.T) {
	// AR(1) with φ = 0.8 has r(k) ≈ 0.8^k.
	src := rng.New(37)
	xs := make([]float64, 50000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.8*xs[i-1] + src.Normal()
	}
	acf := Autocorrelation(xs, 3)
	for k := 1; k <= 3; k++ {
		want := math.Pow(0.8, float64(k))
		if math.Abs(acf[k]-want) > 0.05 {
			t.Errorf("r(%d) = %v, want ~%v", k, acf[k], want)
		}
	}
	if ts := IntegralTimescale(acf); ts < 1 {
		t.Errorf("persistent timescale = %v, want > 1", ts)
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	for _, xs := range [][]float64{nil, {5, 5, 5, 5}} {
		acf := Autocorrelation(xs, 2)
		for k, v := range acf {
			if !math.IsNaN(v) {
				t.Errorf("degenerate input r(%d) = %v, want NaN", k, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative maxLag did not panic")
		}
	}()
	Autocorrelation([]float64{1}, -1)
}

func TestIntensity(t *testing.T) {
	series := seriesOf(0.05, 0.9, 0.8, 0.05, 0.1)
	in := Intensity(series, 0)
	if math.Abs(in.MeanInside-0.85) > 1e-12 {
		t.Errorf("mean inside = %v", in.MeanInside)
	}
	wantOut := (0.05 + 0.05 + 0.1) / 3
	if math.Abs(in.MeanOutside-wantOut) > 1e-12 {
		t.Errorf("mean outside = %v", in.MeanOutside)
	}
	if in.PeakInside != 0.9 {
		t.Errorf("peak = %v", in.PeakInside)
	}
	if math.Abs(in.Ratio-0.85/wantOut) > 1e-9 {
		t.Errorf("ratio = %v", in.Ratio)
	}
}

func TestSignalCoverage(t *testing.T) {
	us := func(n int64) simclock.Time { return simclock.Epoch.Add(simclock.Micros(n)) }
	bursts := []Burst{
		{Start: us(100), End: us(150)}, // signal advances inside → covered
		{Start: us(300), End: us(350)}, // no signal change → not covered
	}
	signal := []wire.Sample{
		{Time: us(0), Value: 10},
		{Time: us(120), Value: 15}, // advance during burst 1
		{Time: us(200), Value: 15},
		{Time: us(400), Value: 15},
	}
	if got := SignalCoverage(bursts, signal); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	if got := SignalCoverage(nil, signal); got != 0 {
		t.Errorf("empty bursts coverage = %v", got)
	}
	if got := SignalCoverage(bursts, signal[:1]); got != 0 {
		t.Errorf("single-sample coverage = %v", got)
	}
}

func TestSignalCoverageWithECNSimulation(t *testing.T) {
	// End-to-end: a hadoop rack with DCTCP-style marking enabled. Strong
	// bursts must produce marks (coverage > 0) while coverage stays below
	// 1 (weak bursts never push the queue past the threshold) — the §7
	// "signal exists at all" gap.
	net, err := simnet.New(simnet.Config{
		Rack:              topo.Default(16),
		Params:            workload.DefaultParams(workload.Hadoop),
		Seed:              71,
		ECNThresholdBytes: 60 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	const port = 0
	interval := 25 * simclock.Microsecond
	net.Run(simclock.Millis(20))
	var bytesSamples, markSamples []wire.Sample
	for i := 0; i < 12000; i++ {
		net.Run(interval)
		now := net.Now()
		bytesSamples = append(bytesSamples, wire.Sample{
			Time: now, Kind: asic.KindBytes, Dir: asic.TX, Port: port,
			Value: net.Switch().Port(port).Bytes(asic.TX),
		})
		markSamples = append(markSamples, wire.Sample{
			Time: now, Kind: asic.KindECNMarks, Port: port,
			Value: net.Switch().Port(port).ECNMarks(),
		})
	}
	series, err := UtilizationSeries(bytesSamples, net.Switch().Port(port).Speed())
	if err != nil {
		t.Fatal(err)
	}
	bursts := Bursts(series, 0)
	if len(bursts) < 10 {
		t.Fatalf("only %d bursts; need more for a stable coverage estimate", len(bursts))
	}
	cov := SignalCoverage(bursts, markSamples)
	if cov <= 0 {
		t.Error("no burst ever produced an ECN mark")
	}
	if cov >= 0.999 {
		t.Errorf("coverage = %v; expected some unmarked (mild) bursts", cov)
	}
}

func TestIntensityEdges(t *testing.T) {
	// All idle: zero intensity, zero ratio.
	in := Intensity(seriesOf(0, 0, 0), 0)
	if in.Ratio != 0 || in.MeanInside != 0 {
		t.Errorf("idle intensity = %+v", in)
	}
	// Always hot with an idle-free series: infinite ratio.
	in = Intensity(seriesOf(0.9, 0.95), 0)
	if !math.IsInf(in.Ratio, 1) {
		t.Errorf("always-hot ratio = %v", in.Ratio)
	}
}
