package analysis

// Accumulator-level equivalence: each streaming type must reproduce its
// batch counterpart exactly — same values, same order, same errors — on
// clean and damaged inputs. The campaign-level equivalence lives in
// internal/core/equivalence_test.go; these tests localize a divergence
// to the specific accumulator.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// randUtilSeries builds a contiguous utilization series with spans of
// stepUs and pseudo-random utilization levels, crossing the default
// threshold often.
func randUtilSeries(seed uint64, n int, stepUs int64) []UtilPoint {
	src := rng.New(seed)
	out := make([]UtilPoint, n)
	for i := range out {
		out[i] = UtilPoint{
			Start: simclock.Epoch.Add(simclock.Micros(int64(i) * stepUs)),
			End:   simclock.Epoch.Add(simclock.Micros(int64(i+1) * stepUs)),
			Util:  src.Float64() * 1.1,
		}
	}
	return out
}

func TestSortedKeysOrderPinned(t *testing.T) {
	m := map[SeriesKey]int{
		{Port: 2, Dir: asic.TX, Kind: asic.KindBytes}:    0,
		{Port: 0, Dir: asic.RX, Kind: asic.KindDrops}:    0,
		{Port: 0, Dir: asic.RX, Kind: asic.KindBytes}:    0,
		{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}:    0,
		{Port: 10, Dir: asic.RX, Kind: asic.KindBytes}:   0,
		{Port: 2, Dir: asic.TX, Kind: asic.KindSizeBins}: 0,
	}
	want := []SeriesKey{
		{Port: 0, Dir: asic.RX, Kind: asic.KindBytes},
		{Port: 0, Dir: asic.RX, Kind: asic.KindDrops},
		{Port: 0, Dir: asic.TX, Kind: asic.KindBytes},
		{Port: 2, Dir: asic.TX, Kind: asic.KindBytes},
		{Port: 2, Dir: asic.TX, Kind: asic.KindSizeBins},
		{Port: 10, Dir: asic.RX, Kind: asic.KindBytes},
	}
	for trial := 0; trial < 3; trial++ { // map order varies; result must not
		if got := SortedKeys(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[SeriesKey]int{}); got != nil {
		if len(got) != 0 {
			t.Errorf("SortedKeys(empty) = %v", got)
		}
	}
}

func TestSeriesDemuxRoutesInOrder(t *testing.T) {
	samples := []wire.Sample{
		{Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Time: 1, Value: 10},
		{Port: 2, Dir: asic.TX, Kind: asic.KindBytes, Time: 1, Value: 20},
		{Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Time: 2, Value: 11},
		{Port: 1, Dir: asic.RX, Kind: asic.KindBytes, Time: 2, Value: 5},
		{Port: 2, Dir: asic.TX, Kind: asic.KindBytes, Time: 2, Value: 21},
	}
	got := make(map[SeriesKey][]wire.Sample)
	demux := NewSeriesDemux(func(key SeriesKey) SampleSink {
		if key.Dir == asic.RX {
			return nil // a nil sink drops the series
		}
		return func(s wire.Sample) error {
			got[key] = append(got[key], s)
			return nil
		}
	})
	for _, s := range samples {
		if err := demux.Feed(s); err != nil {
			t.Fatal(err)
		}
	}
	split := Split(samples)
	for _, key := range SortedKeys(split) {
		if key.Dir == asic.RX {
			if _, ok := got[key]; ok {
				t.Errorf("nil-sink series %v received samples", key)
			}
			continue
		}
		if !reflect.DeepEqual(got[key], split[key]) {
			t.Errorf("series %v: demux %v, split %v", key, got[key], split[key])
		}
	}
	keys := demux.Keys()
	if len(keys) != 3 {
		t.Errorf("Keys() = %v, want the 3 series with sinks", keys)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		return a.Kind < b.Kind
	}) {
		t.Errorf("Keys() not sorted: %v", keys)
	}
}

func TestUtilStateMatchesUtilizationSeries(t *testing.T) {
	regress := rampSamples(25, []float64{0.5, 0.5})
	regress[2].Value = regress[1].Value - 1
	stall := rampSamples(25, []float64{0.5, 0.5})
	stall[2].Time = stall[1].Time

	cases := []struct {
		name    string
		samples []wire.Sample
		speed   uint64
	}{
		{"clean", rampSamples(25, []float64{0.5, 1.0, 0.0, 0.25}), gbps10},
		{"empty", nil, gbps10},
		{"single", rampSamples(25, nil), gbps10},
		{"zero-speed", rampSamples(25, []float64{0.5}), 0},
		{"zero-speed-single", rampSamples(25, nil), 0},
		{"regressing-counter", regress, gbps10},
		{"non-increasing-time", stall, gbps10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantSeries, wantErr := UtilizationSeries(tc.samples, tc.speed)

			u := NewUtilState(tc.speed)
			var gotSeries []UtilPoint
			for _, s := range tc.samples {
				p, ok, err := u.Feed(s)
				if err != nil {
					break
				}
				if ok {
					gotSeries = append(gotSeries, p)
				}
			}
			gotErr := u.Close()

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("batch err %v, stream err %v", wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("batch err %q, stream err %q", wantErr, gotErr)
				}
				return
			}
			if !reflect.DeepEqual(wantSeries, gotSeries) {
				t.Errorf("series diverge:\nbatch:  %v\nstream: %v", wantSeries, gotSeries)
			}
		})
	}
}

func TestBurstSegmenterMatchesBursts(t *testing.T) {
	const th = DefaultHotThreshold
	series := map[string][]UtilPoint{
		"random":       randUtilSeries(7, 400, 25),
		"random2":      randUtilSeries(11, 997, 25),
		"empty":        nil,
		"single-hot":   {{Start: 0, End: 25, Util: 0.9}},
		"single-cold":  {{Start: 0, End: 25, Util: 0.1}},
		"all-hot":      {{Start: 0, End: 25, Util: 0.9}, {Start: 25, End: 50, Util: 0.8}},
		"ends-hot":     {{Start: 0, End: 25, Util: 0.1}, {Start: 25, End: 50, Util: 0.8}},
		"hot-cold-hot": {{Start: 0, End: 25, Util: 0.9}, {Start: 25, End: 50, Util: 0.1}, {Start: 50, End: 75, Util: 0.9}},
		"threshold-eq": {{Start: 0, End: 25, Util: th}, {Start: 25, End: 50, Util: th}},
		"cold-everywhere": {
			{Start: 0, End: 25, Util: 0.2}, {Start: 25, End: 50, Util: 0.3}, {Start: 50, End: 75, Util: 0.1},
		},
	}
	for name, s := range series {
		t.Run(name, func(t *testing.T) {
			wantBursts := Bursts(s, th)
			wantGaps := InterBurstGaps(wantBursts)

			seg := NewBurstSegmenter(SegmenterConfig{HotAbove: th})
			var gotBursts []Burst
			var gotGaps []float64
			handle := func(tr Transition, ok bool) {
				if !ok {
					return
				}
				switch tr.Kind {
				case SegOpen:
					if tr.HasGap {
						gotGaps = append(gotGaps, float64(tr.Gap)/float64(simclock.Microsecond))
					}
				case SegClose:
					gotBursts = append(gotBursts, tr.Burst)
				}
			}
			for _, p := range s {
				tr, ok := seg.Feed(p)
				handle(tr, ok)
			}
			tr, ok := seg.Flush()
			handle(tr, ok)

			if !reflect.DeepEqual(wantBursts, gotBursts) {
				t.Errorf("bursts diverge:\nbatch:  %v\nstream: %v", wantBursts, gotBursts)
			}
			if !reflect.DeepEqual(wantGaps, gotGaps) {
				t.Errorf("gaps diverge:\nbatch:  %v\nstream: %v", wantGaps, gotGaps)
			}
		})
	}
}

func TestRebinAccMatchesRebin(t *testing.T) {
	widths := []simclock.Duration{
		40 * simclock.Microsecond,
		100 * simclock.Microsecond,
		simclock.Millisecond,
		7 * simclock.Millisecond, // deliberately not a divisor of the span
	}
	series := randUtilSeries(13, 500, 40)
	for _, w := range widths {
		want := Rebin(series, w)
		acc := NewRebinAcc(w)
		for _, p := range series {
			acc.Add(p)
		}
		if got := acc.Points(); !reflect.DeepEqual(want, got) {
			t.Errorf("width %v: rebin diverges:\nbatch:  %v\nstream: %v", w, want, got)
		}
	}
	if got := NewRebinAcc(simclock.Millisecond).Points(); got != nil {
		t.Errorf("empty rebin = %v, want nil", got)
	}
}

func TestDropBinAccMatchesDropTimeSeries(t *testing.T) {
	drops := func(n int, seed uint64) []wire.Sample {
		src := rng.New(seed)
		out := make([]wire.Sample, n)
		var cum uint64
		for i := range out {
			if src.Float64() < 0.3 {
				cum += uint64(src.Intn(50))
			}
			out[i] = wire.Sample{
				Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 250)),
				Kind:  asic.KindDrops,
				Dir:   asic.TX,
				Value: cum,
			}
		}
		return out
	}
	stalled := drops(10, 3)
	stalled[5].Time = stalled[4].Time

	cases := []struct {
		name    string
		samples []wire.Sample
		bin     simclock.Duration
	}{
		{"clean", drops(200, 1), simclock.Millisecond},
		{"uneven-bin", drops(200, 2), 777 * simclock.Microsecond},
		{"span-shorter-than-bin", drops(5, 4), simclock.Second},
		{"two-samples", drops(2, 5), simclock.Millisecond},
		{"one-sample", drops(1, 6), simclock.Millisecond},
		{"non-increasing", stalled, simclock.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantErr := DropTimeSeries(tc.samples, tc.bin)
			acc, err := NewDropBinAcc(tc.bin)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range tc.samples {
				if acc.Add(s) != nil {
					break
				}
			}
			got, gotErr := acc.Bins()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("batch err %v, stream err %v", wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("batch err %q, stream err %q", wantErr, gotErr)
				}
				return
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("bins diverge:\nbatch:  %v\nstream: %v", want, got)
			}
		})
	}
	if _, err := NewDropBinAcc(0); err == nil {
		t.Error("non-positive bin accepted")
	}
}

func TestSeriesEndpointsMatchesCoarseWindow(t *testing.T) {
	bytes := rampSamples(250, []float64{0.5, 0.7, 0.1, 0.9})
	dropSamples := []wire.Sample{
		{Time: bytes[0].Time, Kind: asic.KindDrops, Value: 3},
		{Time: bytes[2].Time, Kind: asic.KindDrops, Value: 10},
		{Time: bytes[4].Time, Kind: asic.KindDrops, Value: 12},
	}
	lengths := [][2]int{{len(bytes), 3}, {2, 2}, {1, 2}, {2, 1}, {0, 0}}
	for _, l := range lengths {
		t.Run(fmt.Sprintf("%dx%d", l[0], l[1]), func(t *testing.T) {
			b, d := bytes[:l[0]], dropSamples[:l[1]]
			want, wantErr := CoarseWindow(b, d, gbps10)

			var be, de SeriesEndpoints
			for _, s := range b {
				be.Add(s)
			}
			for _, s := range d {
				de.Add(s)
			}
			got, gotErr := CoarseWindow(be.Slice(), de.Slice(), gbps10)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("batch err %v, endpoint err %v", wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("batch err %q, endpoint err %q", wantErr, gotErr)
				}
				return
			}
			if want != got {
				t.Errorf("coarse point diverges: batch %+v, endpoints %+v", want, got)
			}
		})
	}
}

func TestPacketMixAccMatchesBatch(t *testing.T) {
	mix := func(n int, seed uint64) ([]wire.Sample, []wire.Sample) {
		src := rng.New(seed)
		bytes := make([]wire.Sample, n)
		bins := make([]wire.Sample, n)
		var cum uint64
		var cumBins [asic.NumSizeBins]uint64
		for i := 0; i < n; i++ {
			at := simclock.Epoch.Add(simclock.Micros(int64(i) * 100))
			// Alternate hot and cold stretches so both histograms fill.
			util := 0.1
			if (i/7)%2 == 1 {
				util = 0.9
			}
			cum += uint64(util * float64(gbps10) / 8 * 100e-6)
			for b := range cumBins {
				cumBins[b] += uint64(src.Intn(9))
			}
			bytes[i] = wire.Sample{Time: at, Kind: asic.KindBytes, Dir: asic.TX, Value: cum}
			bins[i] = wire.Sample{Time: at, Kind: asic.KindSizeBins, Dir: asic.TX, Bins: cumBins}
		}
		return bytes, bins
	}

	check := func(t *testing.T, bytes, bins []wire.Sample) {
		t.Helper()
		want, wantErr := PacketMixInsideOutside(bytes, bins, gbps10, 0)

		acc := NewPacketMixAcc(gbps10, 0)
		// Interleave as a campaign would: byte then bin per poll.
		for i := 0; i < len(bytes) || i < len(bins); i++ {
			if i < len(bytes) {
				acc.Feed(bytes[i])
			}
			if i < len(bins) {
				acc.Feed(bins[i])
			}
		}
		got, gotErr := acc.Result()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("batch err %v, stream err %v", wantErr, gotErr)
		}
		if wantErr != nil && wantErr.Error() != gotErr.Error() {
			t.Fatalf("batch err %q, stream err %q", wantErr, gotErr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("mix diverges:\nbatch:  %+v\nstream: %+v", want, got)
		}
	}

	t.Run("clean", func(t *testing.T) {
		bytes, bins := mix(300, 21)
		check(t, bytes, bins)
	})
	t.Run("counts-differ", func(t *testing.T) {
		bytes, bins := mix(50, 22)
		check(t, bytes, bins[:49])
	})
	t.Run("misaligned", func(t *testing.T) {
		bytes, bins := mix(50, 23)
		bins[30].Time = bins[30].Time.Add(simclock.Microsecond)
		check(t, bytes, bins)
	})
	t.Run("short-series", func(t *testing.T) {
		bytes, bins := mix(1, 24)
		check(t, bytes, bins)
	})
	t.Run("regressing-bytes", func(t *testing.T) {
		bytes, bins := mix(50, 25)
		bytes[20].Value = bytes[19].Value - 1
		check(t, bytes, bins)
	})
}

func TestBufferWindowAccMatchesBufferVsHotPorts(t *testing.T) {
	const window = simclock.Millisecond
	ports := [][]UtilPoint{
		randUtilSeries(31, 300, 100),
		randUtilSeries(32, 300, 100),
		randUtilSeries(33, 300, 100),
	}
	src := rng.New(34)
	var peaks []wire.Sample
	for i := 0; i < 120; i++ {
		peaks = append(peaks, wire.Sample{
			Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 250)),
			Kind:  asic.KindBufferPeak,
			Value: uint64(src.Intn(1 << 20)),
		})
	}
	want, err := BufferVsHotPorts(ports, peaks, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewBufferWindowAcc(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	for pi, s := range ports {
		for _, p := range s {
			acc.ObserveUtil(pi, p)
		}
	}
	for _, s := range peaks {
		acc.ObservePeak(s)
	}
	if got := acc.Windows(); !reflect.DeepEqual(want, got) {
		t.Errorf("windows diverge:\nbatch:  %v\nstream: %v", want, got)
	}
	if _, err := NewBufferWindowAcc(0, 0); err == nil {
		t.Error("non-positive window accepted")
	}
}

func TestGapAwareStateMatchesBatch(t *testing.T) {
	clean := rampSamples(25, []float64{0.5, 1.0, 0.25, 0.0, 0.75})

	dup := append([]wire.Sample(nil), clean...)
	dup = append(dup[:3], append([]wire.Sample{dup[2]}, dup[3:]...)...)

	conflict := append([]wire.Sample(nil), dup...)
	conflict[3].Value++

	missed := append([]wire.Sample(nil), clean...)
	missed[2].Missed = 2
	missed[4].Missed = 1

	// A catch-up burst: the counter jumps by far more than the final 1µs
	// span can carry, forcing the merge cascade in both implementations.
	catchup := rampSamples(25, []float64{0.5, 0.5, 0.5})
	catchup = append(catchup, wire.Sample{
		Time: catchup[3].Time.Add(simclock.Microsecond),
		Kind: asic.KindBytes, Dir: asic.TX,
		Value: catchup[3].Value + uint64(float64(gbps10)/8*100e-6),
	})

	regressT := append([]wire.Sample(nil), clean...)
	regressT[3].Time = regressT[2].Time - 1

	regressV := append([]wire.Sample(nil), clean...)
	regressV[3].Value = regressV[2].Value - 1

	cases := []struct {
		name    string
		samples []wire.Sample
		speed   uint64
	}{
		{"clean", clean, gbps10},
		{"empty", nil, gbps10},
		{"single", clean[:1], gbps10},
		{"zero-speed", clean, 0},
		{"agreeing-duplicate", dup, gbps10},
		{"conflicting-duplicate", conflict, gbps10},
		{"missed-spans", missed, gbps10},
		{"catchup-merge", catchup, gbps10},
		{"regressing-time", regressT, gbps10},
		{"regressing-value", regressV, gbps10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantPts, wantSt, wantErr := GapAwareUtilization(tc.samples, tc.speed)

			g := NewGapAwareState(tc.speed)
			for _, s := range tc.samples {
				if g.Feed(s) != nil {
					break
				}
			}
			gotPts, gotSt, gotErr := g.Finish()

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("batch err %v, stream err %v", wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("batch err %q, stream err %q", wantErr, gotErr)
				}
				return
			}
			if !reflect.DeepEqual(wantPts, gotPts) {
				t.Errorf("points diverge:\nbatch:  %v\nstream: %v", wantPts, gotPts)
			}
			if wantSt != gotSt {
				t.Errorf("stats diverge: batch %+v, stream %+v", wantSt, gotSt)
			}
		})
	}
}
