package analysis

import (
	"fmt"
	"sort"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// This file is the streaming analysis core: single-pass, per-series state
// machines that consume wire.Samples as they arrive (from a live
// collector ingest tap or trace.Reader.IterWindow) and produce outputs
// byte-identical to the batch functions above. "Byte-identical" is meant
// literally: each accumulator performs the same floating-point operations
// in the same order as its batch counterpart, so figure structs compare
// equal with reflect.DeepEqual down to the last bit. The equivalence
// tests in internal/core pin this against every figure runner.

// SortedKeys returns the keys of a SeriesKey-keyed map in deterministic
// order: Port, then Dir, then Kind. Every range over a Split result (or
// any other map keyed by SeriesKey) must go through it — ranging such a
// map directly is nondeterministic and flagged by mblint's mapiter rule.
func SortedKeys[V any](m map[SeriesKey]V) []SeriesKey {
	keys := make([]SeriesKey, 0, len(m))
	//lint:ignore mapiter SortedKeys is the sanctioned collection point; order is fixed by the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		return a.Kind < b.Kind
	})
	return keys
}

// SampleSink consumes one sample of a single series.
type SampleSink func(wire.Sample) error

// SeriesDemux routes a mixed sample stream to per-series sinks — the
// streaming counterpart of Split. open is called once per new SeriesKey
// and returns the sink for that series; a nil sink discards the series
// (the streaming analogue of ignoring a Split map entry).
type SeriesDemux struct {
	open  func(SeriesKey) SampleSink
	sinks map[SeriesKey]SampleSink
}

// NewSeriesDemux returns a demux creating per-series sinks via open.
func NewSeriesDemux(open func(SeriesKey) SampleSink) *SeriesDemux {
	return &SeriesDemux{open: open, sinks: make(map[SeriesKey]SampleSink)}
}

// Feed routes one sample to its series sink.
func (d *SeriesDemux) Feed(s wire.Sample) error {
	k := SeriesKey{Port: s.Port, Dir: s.Dir, Kind: s.Kind}
	sink, ok := d.sinks[k]
	if !ok {
		sink = d.open(k)
		d.sinks[k] = sink
	}
	if sink == nil {
		return nil
	}
	return sink(s)
}

// FeedBatch routes every sample of a wire batch in order.
func (d *SeriesDemux) FeedBatch(b *wire.Batch) error {
	for _, s := range b.Samples {
		if err := d.Feed(s); err != nil {
			return err
		}
	}
	return nil
}

// Keys returns every series seen so far in SortedKeys order.
func (d *SeriesDemux) Keys() []SeriesKey {
	return SortedKeys(d.sinks)
}

// UtilState is the streaming counterpart of UtilizationSeries: feed
// cumulative byte-counter samples one at a time and receive a UtilPoint
// per successive pair. The emitted points, and the errors (message and
// precedence included), are identical to the batch function over the same
// samples; Close reports the short-series error the batch path raises up
// front. Errors latch: once Feed fails, further calls return the same
// error.
type UtilState struct {
	speedBps uint64
	n        int
	prev     wire.Sample
	err      error
}

// NewUtilState returns a streaming utilization converter for a port with
// the given line rate.
func NewUtilState(speedBps uint64) *UtilState {
	return &UtilState{speedBps: speedBps}
}

// Feed consumes the next sample. The returned bool reports whether a
// point was emitted (the first sample emits nothing).
//
//lint:hotpath per-sample utilization conversion on the streaming figure path
func (u *UtilState) Feed(s wire.Sample) (UtilPoint, bool, error) {
	if u.err != nil {
		return UtilPoint{}, false, u.err
	}
	if u.n == 0 {
		u.prev = s
		u.n = 1
		return UtilPoint{}, false, nil
	}
	// The batch path validates the speed once it knows the series has >= 2
	// samples, before looking at any pair — mirror that precedence here.
	if u.speedBps == 0 {
		u.err = fmt.Errorf("analysis: zero port speed")
		return UtilPoint{}, false, u.err
	}
	i := u.n
	u.n++
	span := s.Time.Sub(u.prev.Time)
	if span <= 0 {
		u.err = fmt.Errorf("analysis: non-increasing timestamps at %d", i)
		return UtilPoint{}, false, u.err
	}
	if s.Value < u.prev.Value {
		u.err = fmt.Errorf("analysis: byte counter regressed at %d", i)
		return UtilPoint{}, false, u.err
	}
	bits := float64(s.Value-u.prev.Value) * 8
	p := UtilPoint{
		Start: u.prev.Time,
		End:   s.Time,
		Util:  bits / (float64(u.speedBps) * span.Seconds()),
	}
	u.prev = s
	return p, true, nil
}

// N returns the number of samples fed so far.
func (u *UtilState) N() int { return u.n }

// Close finalizes the series: it returns any latched Feed error, or the
// batch path's short-series error when fewer than two samples arrived.
func (u *UtilState) Close() error {
	if u.err != nil {
		return u.err
	}
	if u.n < 2 {
		return fmt.Errorf("analysis: need >= 2 samples, have %d", u.n)
	}
	return nil
}

// GapAwareState is the streaming counterpart of GapAwareUtilization. It
// retains the reconstructed spans (32 bytes per span, versus 96 per
// retained wire.Sample in the batch path) because the catch-up merge can
// cascade arbitrarily far back, so the output is not final until Finish.
//
// Successful reconstructions are byte-identical to the batch function.
// On multiply-damaged inputs the specific error may differ: the batch
// path deduplicates the whole series before scanning pairs, so a
// duplicate-conflict late in the input outranks a regression early in
// it, while the streaming path reports whichever damage it meets first.
// Both paths always agree on whether reconstruction fails.
type GapAwareState struct {
	speedBps uint64
	st       GapStats
	first    wire.Sample
	prev     wire.Sample
	clean    int
	out      []UtilPoint
	bytes    []uint64
	err      error
}

// NewGapAwareState returns a streaming reconstructor for a port with the
// given line rate.
func NewGapAwareState(speedBps uint64) *GapAwareState {
	g := &GapAwareState{speedBps: speedBps}
	if speedBps == 0 {
		g.err = fmt.Errorf("analysis: zero port speed")
	}
	return g
}

// Feed consumes the next (possibly damaged) sample. Errors latch.
//
//lint:hotpath per-sample gap-aware reconstruction on the streaming figure path
func (g *GapAwareState) Feed(s wire.Sample) error {
	if g.err != nil {
		return g.err
	}
	if g.clean == 0 {
		g.first, g.prev = s, s
		g.clean = 1
		return nil
	}
	if s.Time == g.prev.Time {
		if s.Value != g.prev.Value {
			g.err = fmt.Errorf("analysis: duplicate timestamp %v with conflicting values %d vs %d",
				s.Time, g.prev.Value, s.Value)
			return g.err
		}
		g.st.Duplicates++
		return nil
	}
	i := g.clean
	g.clean++
	if s.Time < g.prev.Time {
		g.err = fmt.Errorf("analysis: timestamps regress at %d", i)
		return g.err
	}
	if s.Value < g.prev.Value {
		g.err = fmt.Errorf("analysis: byte counter regressed at %d", i)
		return g.err
	}
	if s.Missed > 0 {
		g.st.MissedSpans++
	}
	delta := s.Value - g.prev.Value
	g.out = append(g.out, UtilPoint{Start: g.prev.Time, End: s.Time, Util: spanUtil(delta, s.Time.Sub(g.prev.Time), g.speedBps)})
	g.bytes = append(g.bytes, delta)
	for len(g.out) > 1 && g.out[len(g.out)-1].Util > maxPhysicalUtil {
		a, b := g.out[len(g.out)-2], g.out[len(g.out)-1]
		merged := g.bytes[len(g.bytes)-2] + g.bytes[len(g.bytes)-1]
		g.out = g.out[:len(g.out)-1]
		g.bytes = g.bytes[:len(g.bytes)-1]
		g.out[len(g.out)-1] = UtilPoint{Start: a.Start, End: b.End, Util: spanUtil(merged, b.End.Sub(a.Start), g.speedBps)}
		g.bytes[len(g.bytes)-1] = merged
		g.st.Merged++
	}
	g.prev = s
	return nil
}

// Finish finalizes the reconstruction. On error the returned stats are
// whatever was tallied before the damage (the batch path returns partial
// stats too, though not necessarily the same partials).
func (g *GapAwareState) Finish() ([]UtilPoint, GapStats, error) {
	if g.err != nil {
		return nil, g.st, g.err
	}
	if g.clean < 2 {
		return nil, g.st, fmt.Errorf("analysis: need >= 2 distinct samples, have %d", g.clean)
	}
	g.st.Points = len(g.out)
	g.st.Bytes = g.prev.Value - g.first.Value
	return g.out, g.st, nil
}

// SegKind labels a BurstSegmenter transition.
type SegKind int

const (
	// SegOpen marks a burst opening (the hot run reached ArmAfter).
	SegOpen SegKind = iota
	// SegClose marks a burst closing (the cold run reached DisarmAfter,
	// or Flush ended the stream inside a burst).
	SegClose
)

// Transition is one BurstSegmenter output: a burst opening or closing.
type Transition struct {
	Kind SegKind
	// Burst is the segment as known at the transition: at SegOpen its End
	// still extends while the burst stays hot; at SegClose it is final.
	Burst Burst
	// Gap is the idle time since the previous burst's End, set (with
	// HasGap) on every SegOpen after the first closed burst — the Fig 4
	// inter-burst gap.
	Gap    simclock.Duration
	HasGap bool
	// At is when the transition was detected (the triggering span's End),
	// which lags Burst.Start by the arming debounce.
	At simclock.Time
}

// SegmenterConfig parameterizes a BurstSegmenter.
type SegmenterConfig struct {
	// HotAbove is the hot criterion: a span is hot when Util > HotAbove.
	// <= 0 selects DefaultHotThreshold.
	HotAbove float64
	// ColdBelow enables hysteresis: a span is cold when Util < ColdBelow,
	// and spans between the thresholds extend nothing and reset nothing.
	// <= 0 disables hysteresis (cold = not hot).
	ColdBelow float64
	// ArmAfter is how many consecutive hot spans open a burst; < 1 means 1.
	ArmAfter int
	// DisarmAfter is how many consecutive cold spans close it; < 1 means 1.
	DisarmAfter int
}

// BurstSegmenter is the incremental burst/gap state machine shared by the
// streaming analysis path and internal/detect's online detectors: feed
// utilization spans in order and receive bursts and inter-burst gaps as
// they close. At ArmAfter = DisarmAfter = 1 with no hysteresis it emits
// exactly the segments of Bursts and the gaps of InterBurstGaps.
type BurstSegmenter struct {
	hotAbove  float64
	coldBelow float64
	arm       int
	disarm    int

	active   bool
	hotRun   int
	coldRun  int
	runStart simclock.Time
	cur      Burst
	prevEnd  simclock.Time
	closed   bool
}

// NewBurstSegmenter returns a segmenter for the given configuration.
func NewBurstSegmenter(cfg SegmenterConfig) *BurstSegmenter {
	if cfg.HotAbove <= 0 {
		cfg.HotAbove = DefaultHotThreshold
	}
	if cfg.ArmAfter < 1 {
		cfg.ArmAfter = 1
	}
	if cfg.DisarmAfter < 1 {
		cfg.DisarmAfter = 1
	}
	return &BurstSegmenter{
		hotAbove:  cfg.HotAbove,
		coldBelow: cfg.ColdBelow,
		arm:       cfg.ArmAfter,
		disarm:    cfg.DisarmAfter,
	}
}

// Feed consumes the next utilization span. The returned bool reports
// whether a transition fired.
//
//lint:hotpath per-span burst segmentation on the streaming figure path
func (g *BurstSegmenter) Feed(p UtilPoint) (Transition, bool) {
	hot := p.Util > g.hotAbove
	cold := !hot
	if g.coldBelow > 0 {
		cold = p.Util < g.coldBelow
	}
	switch {
	case hot:
		g.coldRun = 0
		g.hotRun++
		if g.hotRun == 1 {
			g.runStart = p.Start
		}
		if g.active {
			g.cur.End = p.End
		} else if g.hotRun >= g.arm {
			g.active = true
			g.cur = Burst{Start: g.runStart, End: p.End}
			tr := Transition{Kind: SegOpen, Burst: g.cur, At: p.End}
			if g.closed {
				tr.Gap = g.runStart.Sub(g.prevEnd)
				tr.HasGap = true
			}
			return tr, true
		}
	case cold:
		g.hotRun = 0
		g.coldRun++
		if g.active && g.coldRun >= g.disarm {
			return g.close(p.End), true
		}
	}
	// Hysteresis dead zone (ColdBelow <= Util <= HotAbove): no-op, as in
	// the EWMA detector it was extracted from.
	return Transition{}, false
}

// Flush closes a burst left open at end of stream (Bursts keeps such
// trailing segments, so streaming callers must too). The returned bool
// reports whether a close fired.
func (g *BurstSegmenter) Flush() (Transition, bool) {
	if !g.active {
		return Transition{}, false
	}
	return g.close(g.cur.End), true
}

func (g *BurstSegmenter) close(at simclock.Time) Transition {
	g.active = false
	g.closed = true
	g.prevEnd = g.cur.End
	return Transition{Kind: SegClose, Burst: g.cur, At: at}
}

// Active reports whether a burst is currently open.
func (g *BurstSegmenter) Active() bool { return g.active }

// Reset returns the segmenter to its initial state.
func (g *BurstSegmenter) Reset() {
	cfg := SegmenterConfig{HotAbove: g.hotAbove, ColdBelow: g.coldBelow, ArmAfter: g.arm, DisarmAfter: g.disarm}
	*g = *NewBurstSegmenter(cfg)
}

// RebinAcc is the streaming counterpart of Rebin: feed utilization spans
// in order, read the fixed-width bins at the end. Points() is identical
// to Rebin over the same series.
type RebinAcc struct {
	width   simclock.Duration
	started bool
	start   simclock.Time
	end     simclock.Time
	acc     []float64 // util·ns accumulated per bin, grown on demand
}

// NewRebinAcc returns a rebinner; it panics on non-positive width exactly
// as Rebin does.
func NewRebinAcc(width simclock.Duration) *RebinAcc {
	if width <= 0 {
		panic("analysis: non-positive rebin width")
	}
	return &RebinAcc{width: width}
}

// Add distributes one span across the bins it overlaps.
//
//lint:hotpath per-span rebinning; amortized bin-slice growth only
func (r *RebinAcc) Add(p UtilPoint) {
	if !r.started {
		r.start = p.Start.Truncate(r.width)
		r.started = true
	}
	r.end = p.End
	s, e := p.Start, p.End
	for s.Before(e) {
		bi := int(s.Sub(r.start) / simclock.Duration(r.width))
		for bi >= len(r.acc) {
			r.acc = append(r.acc, 0)
		}
		binEnd := r.start.Add(simclock.Duration(bi+1) * r.width)
		segEnd := e
		if binEnd.Before(segEnd) {
			segEnd = binEnd
		}
		r.acc[bi] += p.Util * float64(segEnd.Sub(s))
		s = segEnd
	}
}

// Points finalizes the bins. The bin count derives from the last span's
// End, as in Rebin; accumulation beyond it (possible only for
// non-monotonic input, which Rebin drops at its bounds check) is
// discarded the same way.
func (r *RebinAcc) Points() []UtilPoint {
	if !r.started {
		return nil
	}
	nbins := int((r.end.Sub(r.start) + r.width - 1) / simclock.Duration(r.width))
	if nbins <= 0 {
		nbins = 1
	}
	out := make([]UtilPoint, nbins)
	for i := range out {
		binStart := r.start.Add(simclock.Duration(i) * r.width)
		var acc float64
		if i < len(r.acc) {
			acc = r.acc[i]
		}
		out[i] = UtilPoint{
			Start: binStart,
			End:   binStart.Add(r.width),
			Util:  acc / float64(r.width),
		}
	}
	return out
}

// DropBinAcc is the streaming counterpart of DropTimeSeries: feed
// cumulative drop-counter samples, read per-bin drop counts at the end.
// The final bin count depends on the last timestamp, so deltas landing
// past it accumulate in overflow bins that Bins folds into the last bin —
// the same clamping DropTimeSeries applies inline (uint64 sums commute,
// so the fold is exact).
type DropBinAcc struct {
	bin   simclock.Duration
	n     int
	start simclock.Time
	prev  wire.Sample
	bins  []uint64
	err   error
}

// NewDropBinAcc returns a drop binner, rejecting non-positive bins with
// DropTimeSeries' error.
func NewDropBinAcc(bin simclock.Duration) (*DropBinAcc, error) {
	if bin <= 0 {
		return nil, fmt.Errorf("analysis: non-positive bin %v", bin)
	}
	return &DropBinAcc{bin: bin}, nil
}

// Add consumes the next drop-counter sample. Errors latch.
//
//lint:hotpath per-sample drop binning; amortized bin-slice growth only
func (d *DropBinAcc) Add(s wire.Sample) error {
	if d.err != nil {
		return d.err
	}
	if d.n == 0 {
		d.start = s.Time
		d.prev = s
		d.n = 1
		return nil
	}
	if s.Time.Sub(d.prev.Time) <= 0 {
		d.err = fmt.Errorf("analysis: non-increasing timestamps")
		return d.err
	}
	bi := int(d.prev.Time.Sub(d.start) / d.bin)
	for bi >= len(d.bins) {
		d.bins = append(d.bins, 0)
	}
	d.bins[bi] += s.Value - d.prev.Value
	d.prev = s
	d.n++
	return nil
}

// Bins finalizes the per-bin counts.
func (d *DropBinAcc) Bins() ([]uint64, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.n < 2 {
		return nil, fmt.Errorf("analysis: need >= 2 samples")
	}
	n := int(d.prev.Time.Sub(d.start) / d.bin)
	if n <= 0 {
		n = 1
	}
	out := make([]uint64, n)
	for i, v := range d.bins {
		if i >= n {
			out[n-1] += v
		} else {
			out[i] = v
		}
	}
	return out, nil
}

// SeriesEndpoints retains only the first and last sample of a series —
// all that SNMP-style coarse analysis (CoarseWindow, Figs 1–2) reads.
type SeriesEndpoints struct {
	First, Last wire.Sample
	Count       int
}

// Add consumes the next sample.
//
//lint:hotpath per-sample endpoint retention; must stay allocation-free
func (e *SeriesEndpoints) Add(s wire.Sample) {
	if e.Count == 0 {
		e.First = s
	}
	e.Last = s
	e.Count++
}

// Slice reconstructs a series equivalent to the original for endpoint
// consumers: CoarseWindow(endpoints.Slice(), ...) equals CoarseWindow on
// the full series, including the short-series error cases.
func (e *SeriesEndpoints) Slice() []wire.Sample {
	switch e.Count {
	case 0:
		return nil
	case 1:
		return []wire.Sample{e.First}
	default:
		return []wire.Sample{e.First, e.Last}
	}
}

// PacketMixAcc is the streaming counterpart of PacketMixInsideOutside:
// feed the interleaved byte/size-bin sample stream of one port and read
// the Fig 5 histograms at the end. Byte and bin samples are paired by
// index, as in the batch function; campaigns emit them in lockstep, so
// the internal pairing queues stay O(1) deep (a stream where one kind
// runs far ahead buffers the difference).
type PacketMixAcc struct {
	threshold float64
	util      *UtilState
	utilErr   error
	alignErr  error
	res       PacketMixResult

	nBytes, nBins int
	matched       int // pairs processed so far
	byteQ         []byteRec
	binQ          []wire.Sample
	prevBin       wire.Sample
}

// byteRec is the per-index residue of a byte sample: its timestamp (for
// the alignment check) and the utilization of the span it closed.
type byteRec struct {
	time    simclock.Time
	util    float64
	hasUtil bool
}

// NewPacketMixAcc returns a packet-mix classifier for a port with the
// given line rate; threshold <= 0 selects DefaultHotThreshold.
func NewPacketMixAcc(speedBps uint64, threshold float64) *PacketMixAcc {
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	return &PacketMixAcc{
		threshold: threshold,
		util:      NewUtilState(speedBps),
		res:       PacketMixResult{Inside: NewSizeHistogram(), Outside: NewSizeHistogram()},
	}
}

// Feed routes one sample by kind: size-bin samples classify, anything
// else feeds the byte series.
func (m *PacketMixAcc) Feed(s wire.Sample) {
	if s.Kind == asic.KindSizeBins {
		m.AddBin(s)
	} else {
		m.AddByte(s)
	}
}

// AddByte consumes the next cumulative byte-counter sample.
func (m *PacketMixAcc) AddByte(s wire.Sample) {
	rec := byteRec{time: s.Time}
	p, ok, err := m.util.Feed(s)
	if err != nil {
		if m.utilErr == nil {
			m.utilErr = err
		}
	} else if ok {
		// The span this sample closes is the period the batch loop
		// classifies at this index (series[i-1]).
		rec.util = p.Util
		rec.hasUtil = true
	}
	m.nBytes++
	m.byteQ = append(m.byteQ, rec)
	m.pair()
}

// AddBin consumes the next size-bin sample.
func (m *PacketMixAcc) AddBin(s wire.Sample) {
	m.nBins++
	m.binQ = append(m.binQ, s)
	m.pair()
}

// pair processes every index for which both samples have arrived,
// replicating the batch classification loop in index order.
func (m *PacketMixAcc) pair() {
	for len(m.byteQ) > 0 && len(m.binQ) > 0 {
		if m.utilErr != nil || m.alignErr != nil {
			// The batch path stops at the first such error; keep the
			// histograms frozen at that point.
			m.byteQ = m.byteQ[1:]
			m.binQ = m.binQ[1:]
			m.matched++
			continue
		}
		rec, bin := m.byteQ[0], m.binQ[0]
		i := m.matched
		if i >= 1 {
			if bin.Time != rec.time {
				m.alignErr = fmt.Errorf("analysis: sample %d misaligned (%v vs %v)", i, bin.Time, rec.time)
				continue
			}
			if rec.hasUtil {
				target := m.res.Outside
				if rec.util > m.threshold {
					target = m.res.Inside
					m.res.InsidePeriods++
				} else {
					m.res.OutsidePeriods++
				}
				for b := range bin.Bins {
					delta := bin.Bins[b] - m.prevBin.Bins[b]
					target.AddBin(b, int64(delta))
				}
			}
		}
		m.prevBin = bin
		m.byteQ = m.byteQ[1:]
		m.binQ = m.binQ[1:]
		m.matched++
	}
}

// Result finalizes the classification, reproducing the batch error
// precedence: mismatched counts, then utilization-series errors, then
// the first misaligned pair.
func (m *PacketMixAcc) Result() (PacketMixResult, error) {
	empty := PacketMixResult{Inside: NewSizeHistogram(), Outside: NewSizeHistogram()}
	if m.nBytes != m.nBins {
		return empty, fmt.Errorf("analysis: byte/bin sample counts differ: %d vs %d", m.nBytes, m.nBins)
	}
	if m.utilErr != nil {
		return empty, m.utilErr
	}
	if err := m.util.Close(); err != nil {
		return empty, err
	}
	if m.alignErr != nil {
		return m.res, m.alignErr
	}
	return m.res, nil
}

// BufferWindowAcc is the streaming counterpart of BufferVsHotPorts: feed
// per-port utilization spans and buffer-peak samples in any order, read
// the Fig 10 windows at the end. Hot-port sets and peak maxima are
// order-independent, so Windows() is byte-identical to the batch
// function regardless of interleaving.
type BufferWindowAcc struct {
	window    simclock.Duration
	threshold float64
	aggs      map[simclock.Time]*bufferAgg
}

type bufferAgg struct {
	hot  map[int]bool
	peak float64
}

// NewBufferWindowAcc returns a window accumulator, rejecting non-positive
// windows with BufferVsHotPorts' error; threshold <= 0 selects
// DefaultHotThreshold.
func NewBufferWindowAcc(window simclock.Duration, threshold float64) (*BufferWindowAcc, error) {
	if window <= 0 {
		return nil, fmt.Errorf("analysis: non-positive window %v", window)
	}
	if threshold <= 0 {
		threshold = DefaultHotThreshold
	}
	return &BufferWindowAcc{window: window, threshold: threshold, aggs: make(map[simclock.Time]*bufferAgg)}, nil
}

func (b *BufferWindowAcc) at(t simclock.Time) *bufferAgg {
	key := t.Truncate(b.window)
	a := b.aggs[key]
	if a == nil {
		a = &bufferAgg{hot: make(map[int]bool)}
		b.aggs[key] = a
	}
	return a
}

// ObserveUtil records one utilization span of port.
func (b *BufferWindowAcc) ObserveUtil(port int, p UtilPoint) {
	if p.Util > b.threshold {
		b.at(p.Start).hot[port] = true
	}
}

// ObservePeak records one buffer-peak sample.
func (b *BufferWindowAcc) ObservePeak(s wire.Sample) {
	a := b.at(s.Time)
	if v := float64(s.Value); v > a.peak {
		a.peak = v
	}
}

// Windows finalizes the Fig 10 windows, ordered by start.
func (b *BufferWindowAcc) Windows() []BufferWindow {
	out := make([]BufferWindow, 0, len(b.aggs))
	for start, a := range b.aggs {
		out = append(out, BufferWindow{Start: start, HotPorts: len(a.hot), PeakBytes: a.peak})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
