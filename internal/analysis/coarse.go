package analysis

import (
	"fmt"

	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/wire"
)

// CoarsePoint is one Fig 1 scatter point: a port observed over one
// SNMP-style window.
type CoarsePoint struct {
	// Util is the average utilization over the window.
	Util float64
	// DropRate is congestion discards per second over the window.
	DropRate float64
}

// CoarseWindow computes a CoarsePoint from byte and drop counter samples
// covering one window on one port (first and last samples bound the
// window, as SNMP deltas would).
func CoarseWindow(byteSamples, dropSamples []wire.Sample, speedBps uint64) (CoarsePoint, error) {
	if len(byteSamples) < 2 || len(dropSamples) < 2 {
		return CoarsePoint{}, fmt.Errorf("analysis: coarse window needs >= 2 samples")
	}
	bFirst, bLast := byteSamples[0], byteSamples[len(byteSamples)-1]
	dFirst, dLast := dropSamples[0], dropSamples[len(dropSamples)-1]
	span := bLast.Time.Sub(bFirst.Time)
	if span <= 0 {
		return CoarsePoint{}, fmt.Errorf("analysis: empty coarse window")
	}
	sec := span.Seconds()
	return CoarsePoint{
		Util:     float64(bLast.Value-bFirst.Value) * 8 / (float64(speedBps) * sec),
		DropRate: float64(dLast.Value-dFirst.Value) / sec,
	}, nil
}

// DropUtilCorrelation computes the Fig 1 headline number: the linear
// correlation coefficient between window utilization and drop rate across
// many port-windows. The paper measures 0.098 — drops are essentially
// uncorrelated with average utilization at SNMP granularity, which is the
// case for high-resolution measurement.
func DropUtilCorrelation(points []CoarsePoint) float64 {
	utils := make([]float64, len(points))
	drops := make([]float64, len(points))
	for i, p := range points {
		utils[i] = p.Util
		drops[i] = p.DropRate
	}
	return stats.Pearson(utils, drops)
}

// DropTimeSeries converts a cumulative drop-counter series into per-bin
// drop counts at the given granularity (1 minute in Fig 2).
func DropTimeSeries(dropSamples []wire.Sample, bin simclock.Duration) ([]uint64, error) {
	if bin <= 0 {
		return nil, fmt.Errorf("analysis: non-positive bin %v", bin)
	}
	if len(dropSamples) < 2 {
		return nil, fmt.Errorf("analysis: need >= 2 samples")
	}
	start := dropSamples[0].Time
	end := dropSamples[len(dropSamples)-1].Time
	n := int(end.Sub(start) / bin)
	if n <= 0 {
		n = 1
	}
	out := make([]uint64, n)
	prev := dropSamples[0]
	for _, s := range dropSamples[1:] {
		if s.Time.Sub(prev.Time) <= 0 {
			return nil, fmt.Errorf("analysis: non-increasing timestamps")
		}
		bi := int(prev.Time.Sub(start) / bin)
		if bi >= n {
			bi = n - 1
		}
		out[bi] += s.Value - prev.Value
		prev = s
	}
	return out, nil
}

// Burstiness summarizes a drop time series the way §3 reads Fig 2: drops
// arrive in bursts, with most bins empty even on ports that drop heavily.
type Burstiness struct {
	// Total is the total drop count.
	Total uint64
	// ZeroBins is the fraction of bins with no drops at all.
	ZeroBins float64
	// TopBinShare is the fraction of all drops carried by the single
	// busiest bin.
	TopBinShare float64
}

// DropBurstiness computes the Fig 2 summary for a per-bin drop series.
func DropBurstiness(bins []uint64) Burstiness {
	var b Burstiness
	if len(bins) == 0 {
		return b
	}
	var max uint64
	zero := 0
	for _, v := range bins {
		b.Total += v
		if v == 0 {
			zero++
		}
		if v > max {
			max = v
		}
	}
	b.ZeroBins = float64(zero) / float64(len(bins))
	if b.Total > 0 {
		b.TopBinShare = float64(max) / float64(b.Total)
	}
	return b
}
