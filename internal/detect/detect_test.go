package detect

import (
	"math"
	"testing"

	"mburst/internal/analysis"
	"mburst/internal/simclock"
)

// seriesOf builds 25µs spans from utilization values.
func seriesOf(utils ...float64) []analysis.UtilPoint {
	out := make([]analysis.UtilPoint, len(utils))
	for i, u := range utils {
		out[i] = analysis.UtilPoint{
			Start: simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
			End:   simclock.Epoch.Add(simclock.Micros(int64(i+1) * 25)),
			Util:  u,
		}
	}
	return out
}

func TestThresholdDetectorValidation(t *testing.T) {
	cases := []struct {
		th          float64
		arm, disarm int
	}{
		{0, 1, 1}, {1, 1, 1}, {0.5, 0, 1}, {0.5, 1, 0},
	}
	for _, c := range cases {
		if _, err := NewThresholdDetector(c.th, c.arm, c.disarm); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}

func TestThresholdDetectorImmediate(t *testing.T) {
	d, err := NewThresholdDetector(0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	series := seriesOf(0.1, 0.9, 0.9, 0.1, 0.1)
	events := Run(d, series)
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Kind != Start || events[0].DetectedAt != series[1].End {
		t.Errorf("start = %+v", events[0])
	}
	if events[1].Kind != End || events[1].DetectedAt != series[3].End {
		t.Errorf("end = %+v", events[1])
	}
}

func TestThresholdDetectorDebounce(t *testing.T) {
	d, err := NewThresholdDetector(0.5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One-sample blips must not trigger with ArmAfter=2.
	events := Run(d, seriesOf(0.9, 0.1, 0.9, 0.1, 0.9, 0.1))
	if len(events) != 0 {
		t.Errorf("blips triggered: %+v", events)
	}
	d.Reset()
	// Two consecutive hot samples do.
	events = Run(d, seriesOf(0.9, 0.9, 0.1, 0.1))
	if len(events) != 2 || events[0].Kind != Start {
		t.Errorf("events = %+v", events)
	}
}

func TestEWMADetectorValidation(t *testing.T) {
	cases := [][3]float64{
		{0, 0.5, 0.3}, {1.5, 0.5, 0.3}, {0.5, 0, 0.3}, {0.5, 0.5, 0.5}, {0.5, 0.5, 0.9},
	}
	for _, c := range cases {
		if _, err := NewEWMADetector(c[0], c[1], c[2]); err == nil {
			t.Errorf("accepted %v", c)
		}
	}
}

func TestEWMADetectorLagsThreshold(t *testing.T) {
	// The same step input: the EWMA detector (alpha 0.3) must fire later
	// than the immediate threshold detector.
	series := seriesOf(0.05, 0.05, 0.95, 0.95, 0.95, 0.95, 0.95, 0.95)
	th, _ := NewThresholdDetector(0.5, 1, 1)
	ew, _ := NewEWMADetector(0.3, 0.5, 0.3)
	thEvents := Run(th, series)
	ewEvents := Run(ew, series)
	if len(thEvents) == 0 || len(ewEvents) == 0 {
		t.Fatalf("missing detections: %v %v", thEvents, ewEvents)
	}
	if !thEvents[0].DetectedAt.Before(ewEvents[0].DetectedAt) {
		t.Errorf("EWMA (%v) should lag threshold (%v)", ewEvents[0].DetectedAt, thEvents[0].DetectedAt)
	}
}

func TestEWMADetectorHysteresis(t *testing.T) {
	ew, _ := NewEWMADetector(1, 0.5, 0.3) // alpha 1: ewma = sample
	// Oscillating between thresholds must not re-trigger.
	series := seriesOf(0.9, 0.45, 0.9, 0.45, 0.2)
	events := Run(ew, series)
	if len(events) != 2 {
		t.Fatalf("hysteresis broken: %+v", events)
	}
	if events[0].Kind != Start || events[1].Kind != End {
		t.Errorf("events = %+v", events)
	}
}

func TestEvaluate(t *testing.T) {
	series := seriesOf(0.1, 0.9, 0.9, 0.1, 0.1, 0.9, 0.1, 0.1, 0.9, 0.9)
	bursts := analysis.Bursts(series, 0.5)
	if len(bursts) != 3 {
		t.Fatalf("ground truth = %d bursts", len(bursts))
	}
	d, _ := NewThresholdDetector(0.5, 1, 1)
	events := Run(d, series)
	ev := Evaluate(bursts, events, simclock.Micros(25))
	if ev.Detected != 3 || ev.Missed != 0 || ev.FalseStarts != 0 {
		t.Errorf("evaluation = %+v", ev)
	}
	if ev.DetectionRate() != 1 {
		t.Errorf("rate = %v", ev.DetectionRate())
	}
	// Immediate detector latency: one sample = 25µs for each burst.
	for _, l := range ev.LatenciesMicros {
		if l != 25 {
			t.Errorf("latency = %v, want 25", l)
		}
	}
}

func TestEvaluateMissAndLate(t *testing.T) {
	bursts := []analysis.Burst{
		{Start: 0, End: simclock.Time(simclock.Micros(50))},
		{Start: simclock.Time(simclock.Micros(200)), End: simclock.Time(simclock.Micros(250))},
	}
	// One detection after burst 0 ended (within slack), none for burst 1.
	events := []Event{{Kind: Start, DetectedAt: simclock.Time(simclock.Micros(60))}}
	ev := Evaluate(bursts, events, simclock.Micros(25))
	if ev.MissedAfterEnd != 1 || ev.Missed != 1 || ev.Detected != 0 {
		t.Errorf("evaluation = %+v", ev)
	}
	// A stray detection matching nothing is a false start.
	ev = Evaluate(nil, events, 0)
	if ev.FalseStarts != 1 {
		t.Errorf("false starts = %d", ev.FalseStarts)
	}
}

func TestFractionOverBeforeSignal(t *testing.T) {
	durs := []float64{10, 20, 30, 100, 500}
	if f := FractionOverBeforeSignal(durs, simclock.Micros(50)); f != 0.6 {
		t.Errorf("fraction = %v, want 0.6", f)
	}
	if f := FractionOverBeforeSignal(durs, simclock.Micros(1)); f != 0 {
		t.Errorf("fraction = %v, want 0", f)
	}
	if f := FractionOverBeforeSignal(nil, simclock.Micros(1)); f != 0 {
		t.Errorf("empty fraction = %v", f)
	}
}

func TestSignalLatencyHeadline(t *testing.T) {
	// §7's claim shape with paper-like numbers: with p90 ≤ 200µs and a
	// majority of bursts ≤ tens of µs, a 100µs signal delay (an
	// aggressive DC RTT) misses most bursts entirely.
	durs := []float64{25, 25, 25, 25, 50, 50, 75, 100, 200, 500}
	f := FractionOverBeforeSignal(durs, simclock.Micros(100))
	if f < 0.5 {
		t.Errorf("fraction over before signal = %v, want majority", f)
	}
	if math.IsNaN(f) {
		t.Error("NaN")
	}
}

func TestEventKindString(t *testing.T) {
	if Start.String() != "start" || End.String() != "end" {
		t.Error("kind names wrong")
	}
}
