// Package detect implements online µburst detection over utilization
// sample streams, and the signal-latency analysis behind the paper's §7
// congestion-control implication: "our measurements show that a large
// number of µbursts are shorter than a single RTT", so any control loop
// whose congestion signal takes ≥ RTT/2 to reach the sender reacts to
// bursts that are already over.
//
// Two detectors are provided. ThresholdDetector is the paper's offline
// criterion made causal (a burst is declared after K consecutive hot
// samples, cleared after M cold ones). EWMADetector low-pass-filters the
// utilization first, modeling slower congestion estimators; its added lag
// quantifies what smoothing costs at µburst timescales.
package detect

import (
	"fmt"

	"mburst/internal/analysis"
	"mburst/internal/simclock"
)

// EventKind distinguishes burst-start and burst-end detections.
type EventKind int

const (
	// Start marks a burst-start detection.
	Start EventKind = iota
	// End marks a burst-end detection.
	End
)

// String names the kind.
func (k EventKind) String() string {
	if k == Start {
		return "start"
	}
	return "end"
}

// Event is an online detection: the detector decided at DetectedAt that a
// burst started (or ended) — necessarily after the fact, since samples
// arrive at interval granularity.
type Event struct {
	Kind       EventKind
	DetectedAt simclock.Time
}

// Detector consumes utilization spans in time order and emits detections.
type Detector interface {
	// Feed processes one sample span and returns any events it triggers.
	Feed(p analysis.UtilPoint) []Event
	// Reset returns the detector to its initial state.
	Reset()
}

// segmentEvents converts a BurstSegmenter transition into detector
// events — the single point where the shared segmentation state machine
// (analysis.BurstSegmenter) is mapped onto the Event vocabulary.
func segmentEvents(tr analysis.Transition, ok bool) []Event {
	if !ok {
		return nil
	}
	kind := Start
	if tr.Kind == analysis.SegClose {
		kind = End
	}
	return []Event{{Kind: kind, DetectedAt: tr.At}}
}

// ThresholdDetector declares a burst after ArmAfter consecutive hot
// samples and clears it after DisarmAfter consecutive cold ones. With
// ArmAfter=1 it is exactly the paper's burst definition, evaluated
// causally. Segmentation runs on analysis.BurstSegmenter, the same state
// machine the streaming figure pipeline uses, so detection and analysis
// cannot drift apart.
type ThresholdDetector struct {
	Threshold   float64
	ArmAfter    int
	DisarmAfter int

	seg *analysis.BurstSegmenter
}

// NewThresholdDetector validates and builds a threshold detector.
func NewThresholdDetector(threshold float64, armAfter, disarmAfter int) (*ThresholdDetector, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("detect: threshold %v out of (0,1)", threshold)
	}
	if armAfter < 1 || disarmAfter < 1 {
		return nil, fmt.Errorf("detect: arm/disarm counts must be >= 1")
	}
	return &ThresholdDetector{Threshold: threshold, ArmAfter: armAfter, DisarmAfter: disarmAfter}, nil
}

// Feed implements Detector.
func (d *ThresholdDetector) Feed(p analysis.UtilPoint) []Event {
	if d.seg == nil {
		// Built lazily so zero-value and struct-literal detectors work;
		// NewThresholdDetector guarantees Threshold in (0,1), so the
		// segmenter's HotAbove default never engages for validated
		// detectors.
		d.seg = analysis.NewBurstSegmenter(analysis.SegmenterConfig{
			HotAbove:    d.Threshold,
			ArmAfter:    d.ArmAfter,
			DisarmAfter: d.DisarmAfter,
		})
	}
	tr, ok := d.seg.Feed(p)
	return segmentEvents(tr, ok)
}

// Reset implements Detector.
func (d *ThresholdDetector) Reset() { d.seg = nil }

// EWMADetector smooths utilization with an exponential moving average
// (weight Alpha per sample) and applies hysteresis thresholds to the
// smoothed value. Small Alpha models slow congestion estimators. The
// hysteresis itself is analysis.BurstSegmenter (HotAbove=OnThsh,
// ColdBelow=OffThsh) fed the smoothed signal.
type EWMADetector struct {
	Alpha   float64
	OnThsh  float64
	OffThsh float64

	ewma   float64
	primed bool
	seg    *analysis.BurstSegmenter
}

// NewEWMADetector validates and builds an EWMA detector. offThsh must be
// below onThsh (hysteresis).
func NewEWMADetector(alpha, onThsh, offThsh float64) (*EWMADetector, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("detect: alpha %v out of (0,1]", alpha)
	}
	if onThsh <= 0 || onThsh >= 1 || offThsh <= 0 || offThsh >= onThsh {
		return nil, fmt.Errorf("detect: thresholds on=%v off=%v invalid", onThsh, offThsh)
	}
	return &EWMADetector{Alpha: alpha, OnThsh: onThsh, OffThsh: offThsh}, nil
}

// Feed implements Detector.
func (d *EWMADetector) Feed(p analysis.UtilPoint) []Event {
	if !d.primed {
		d.ewma = p.Util
		d.primed = true
	} else {
		d.ewma = d.Alpha*p.Util + (1-d.Alpha)*d.ewma
	}
	if d.seg == nil {
		d.seg = analysis.NewBurstSegmenter(analysis.SegmenterConfig{
			HotAbove:  d.OnThsh,
			ColdBelow: d.OffThsh,
		})
	}
	tr, ok := d.seg.Feed(analysis.UtilPoint{Start: p.Start, End: p.End, Util: d.ewma})
	return segmentEvents(tr, ok)
}

// Reset implements Detector.
func (d *EWMADetector) Reset() {
	d.ewma, d.primed, d.seg = 0, false, nil
}

// Run feeds an entire series through a detector.
func Run(d Detector, series []analysis.UtilPoint) []Event {
	var out []Event
	for _, p := range series {
		out = append(out, d.Feed(p)...)
	}
	return out
}

// Evaluation compares online detections against ground-truth bursts.
type Evaluation struct {
	// Detected counts ground-truth bursts matched by a start detection
	// that fired inside [burst.Start, burst.End + slack].
	Detected int
	// Missed counts bursts with no matching detection.
	Missed int
	// MissedAfterEnd counts bursts whose only matching detection fired
	// after the burst was already over (late knowledge; §7's problem).
	MissedAfterEnd int
	// LatenciesMicros holds, for each detected burst, detection time −
	// burst start, in µs.
	LatenciesMicros []float64
	// FalseStarts counts start detections matching no ground-truth burst.
	FalseStarts int
}

// DetectionRate returns Detected / (Detected + Missed + MissedAfterEnd).
func (e Evaluation) DetectionRate() float64 {
	total := e.Detected + e.Missed + e.MissedAfterEnd
	if total == 0 {
		return 0
	}
	return float64(e.Detected) / float64(total)
}

// Evaluate matches start detections to ground-truth bursts. A detection
// matches the first unmatched burst whose span (extended by slack) covers
// it; detections after the burst ended (but within slack) count as
// MissedAfterEnd — the burst was real but knowledge arrived too late.
func Evaluate(bursts []analysis.Burst, events []Event, slack simclock.Duration) Evaluation {
	var ev Evaluation
	var starts []simclock.Time
	for _, e := range events {
		if e.Kind == Start {
			starts = append(starts, e.DetectedAt)
		}
	}
	used := make([]bool, len(starts))
	for _, b := range bursts {
		matched := false
		late := false
		for i, at := range starts {
			if used[i] {
				continue
			}
			if !at.Before(b.Start) && !at.After(b.End.Add(slack)) {
				used[i] = true
				if at.After(b.End) {
					late = true
				} else {
					matched = true
					ev.LatenciesMicros = append(ev.LatenciesMicros,
						float64(at.Sub(b.Start))/float64(simclock.Microsecond))
				}
				break
			}
		}
		switch {
		case matched:
			ev.Detected++
		case late:
			ev.MissedAfterEnd++
		default:
			ev.Missed++
		}
	}
	for i := range starts {
		if !used[i] {
			ev.FalseStarts++
		}
	}
	return ev
}

// FractionOverBeforeSignal returns the fraction of bursts whose duration
// is shorter than signalDelay — bursts that are already over by the time a
// congestion signal (drop echo, ECN mark, RTT gradient) could reach the
// sender. The paper's §7 point is that for typical data-center RTTs this
// fraction is large.
func FractionOverBeforeSignal(durationsMicros []float64, signalDelay simclock.Duration) float64 {
	if len(durationsMicros) == 0 {
		return 0
	}
	delay := float64(signalDelay) / float64(simclock.Microsecond)
	n := 0
	for _, d := range durationsMicros {
		if d < delay {
			n++
		}
	}
	return float64(n) / float64(len(durationsMicros))
}
