package asic

import (
	"math"
	"testing"
	"testing/quick"

	"mburst/internal/simclock"
)

const (
	gbps10 = 10_000_000_000
	gbps40 = 40_000_000_000
)

// fullMTU is a profile carrying all bytes in the largest size bin.
var fullMTU = TrafficProfile{0, 0, 0, 0, 0, 1}

func newTestSwitch(nports int) *Switch {
	speeds := make([]uint64, nports)
	for i := range speeds {
		speeds[i] = gbps10
	}
	return New(Config{PortSpeeds: speeds, BufferBytes: 1 << 20, Alpha: 2})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{PortSpeeds: []uint64{gbps10}}, // no buffer
		{PortSpeeds: []uint64{gbps10}, BufferBytes: 1},                                     // no alpha
		{PortSpeeds: []uint64{0}, BufferBytes: 1, Alpha: 1},                                // zero speed
		{PortSpeeds: []uint64{1}, BufferBytes: 1, Alpha: 1, PortNames: []string{"a", "b"}}, // name mismatch
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPortNaming(t *testing.T) {
	sw := New(Config{
		PortSpeeds:  []uint64{gbps10, gbps40},
		PortNames:   []string{"server0", "uplink0"},
		BufferBytes: 1 << 20,
		Alpha:       2,
	})
	if sw.Port(0).Name() != "server0" || sw.Port(1).Name() != "uplink0" {
		t.Error("explicit names not applied")
	}
	if sw.Port(1).Speed() != gbps40 {
		t.Error("speed not applied")
	}
	def := newTestSwitch(1)
	if def.Port(0).Name() != "port0" {
		t.Errorf("default name = %q", def.Port(0).Name())
	}
}

func TestTransmitBelowLineRate(t *testing.T) {
	sw := newTestSwitch(1)
	tick := simclock.Micros(5)
	// 10 Gbps over 5µs = 6250 bytes of line capacity.
	sw.OfferTx(0, 1000, fullMTU)
	sw.Tick(tick)
	p := sw.Port(0)
	if p.Bytes(TX) != 1000 {
		t.Errorf("TxBytes = %d, want 1000", p.Bytes(TX))
	}
	if p.QueueBytes() != 0 {
		t.Errorf("queue = %v, want 0", p.QueueBytes())
	}
	if p.Drops() != 0 {
		t.Errorf("drops = %d", p.Drops())
	}
}

func TestQueueingAboveLineRate(t *testing.T) {
	sw := newTestSwitch(1)
	tick := simclock.Micros(5)
	const line = 6250.0 // bytes per 5µs at 10G
	sw.OfferTx(0, 10000, fullMTU)
	sw.Tick(tick)
	p := sw.Port(0)
	if got := float64(p.Bytes(TX)); math.Abs(got-line) > 1 {
		t.Errorf("TxBytes = %v, want ~%v", got, line)
	}
	if math.Abs(p.QueueBytes()-(10000-line)) > 1 {
		t.Errorf("queue = %v, want %v", p.QueueBytes(), 10000-line)
	}
	if math.Abs(sw.BufferUsed()-p.QueueBytes()) > 1e-9 {
		t.Errorf("buffer used %v != queue %v", sw.BufferUsed(), p.QueueBytes())
	}
	// Idle tick drains the queue.
	sw.Tick(tick)
	if p.QueueBytes() != 0 {
		t.Errorf("queue after drain = %v", p.QueueBytes())
	}
	if sw.BufferUsed() != 0 {
		t.Errorf("buffer after drain = %v", sw.BufferUsed())
	}
	if got := float64(p.Bytes(TX)); math.Abs(got-10000) > 1 {
		t.Errorf("total TxBytes = %v, want 10000", got)
	}
}

func TestDynamicThresholdDrops(t *testing.T) {
	// Small buffer, alpha 1: limit = free. Overload one port massively.
	sw := New(Config{PortSpeeds: []uint64{gbps10}, BufferBytes: 10000, Alpha: 1})
	tick := simclock.Micros(5)
	sw.OfferTx(0, 100000, fullMTU)
	sw.Tick(tick)
	p := sw.Port(0)
	if p.Drops() == 0 {
		t.Fatal("expected drops under massive overload")
	}
	// Queue can never exceed the buffer.
	if p.QueueBytes() > 10000 {
		t.Errorf("queue %v exceeds buffer", p.QueueBytes())
	}
	// alpha=1 means limit = free; since the port starts empty,
	// admitted growth g satisfies g <= alpha*(cap - used_before) but also
	// the invariant used <= cap.
	if sw.BufferUsed() > 10000 {
		t.Errorf("buffer used %v exceeds capacity", sw.BufferUsed())
	}
}

func TestSharedBufferContention(t *testing.T) {
	// Two ports share the buffer; the second to be processed sees less
	// free space, so dynamic carving admits it less.
	sw := New(Config{PortSpeeds: []uint64{gbps10, gbps10}, BufferBytes: 20000, Alpha: 0.5})
	tick := simclock.Micros(5)
	sw.OfferTx(0, 50000, fullMTU)
	sw.OfferTx(1, 50000, fullMTU)
	sw.Tick(tick)
	q0, q1 := sw.Port(0).QueueBytes(), sw.Port(1).QueueBytes()
	if q0 <= q1 {
		t.Errorf("expected first-processed port to get more buffer: q0=%v q1=%v", q0, q1)
	}
	if sw.BufferUsed() > 20000 {
		t.Errorf("buffer overcommitted: %v", sw.BufferUsed())
	}
	if sw.TotalDropped() == 0 {
		t.Error("expected contention drops")
	}
}

func TestPeakBufferClearOnRead(t *testing.T) {
	sw := newTestSwitch(1)
	tick := simclock.Micros(5)
	sw.OfferTx(0, 20000, fullMTU)
	sw.Tick(tick)
	peak1 := sw.ReadPeakBufferAndClear()
	if peak1 <= 0 {
		t.Fatalf("peak = %v, want > 0", peak1)
	}
	// Drain fully, then read again: peak register was reset to current
	// occupancy at read time and only tracks maxima after that.
	for i := 0; i < 10; i++ {
		sw.Tick(tick)
	}
	peak2 := sw.ReadPeakBufferAndClear()
	if peak2 > peak1 {
		t.Errorf("peak after clear = %v > first peak %v", peak2, peak1)
	}
	if sw.BufferUsed() != 0 {
		t.Errorf("buffer not drained: %v", sw.BufferUsed())
	}
	if p := sw.ReadPeakBufferAndClear(); p != 0 {
		t.Errorf("peak on idle switch = %v", p)
	}
}

func TestPeakSurvivesMissedInterval(t *testing.T) {
	// The reason for clear-on-read: a burst between two reads is visible
	// in the second read even if no read happened during the burst.
	sw := newTestSwitch(1)
	tick := simclock.Micros(5)
	sw.ReadPeakBufferAndClear()
	sw.OfferTx(0, 30000, fullMTU) // burst
	sw.Tick(tick)
	for i := 0; i < 20; i++ { // long drain, burst is over
		sw.Tick(tick)
	}
	if sw.BufferUsed() != 0 {
		t.Fatal("setup: buffer should be drained")
	}
	if peak := sw.ReadPeakBufferAndClear(); peak < 20000 {
		t.Errorf("peak = %v, want to see the ~23.75kB burst", peak)
	}
}

func TestRxCounters(t *testing.T) {
	sw := newTestSwitch(2)
	profile := TrafficProfile{0.5, 0, 0, 0, 0, 0.5}
	sw.OfferRx(1, 9600, profile)
	p := sw.Port(1)
	if p.Bytes(RX) != 9600 {
		t.Errorf("RxBytes = %d", p.Bytes(RX))
	}
	bins := p.SizeBins(RX)
	// 4800 bytes at 48B/pkt = 100 pkts in bin 0; 4800 at 1500 = 3 pkts in bin 5.
	if bins[0] != 100 {
		t.Errorf("bin0 = %d, want 100", bins[0])
	}
	if bins[5] != 3 {
		t.Errorf("bin5 = %d, want 3", bins[5])
	}
	if p.Packets(RX) != 103 {
		t.Errorf("RxPackets = %d", p.Packets(RX))
	}
	if sw.Port(0).Bytes(RX) != 0 {
		t.Error("wrong port charged")
	}
}

func TestFractionalPacketRemainder(t *testing.T) {
	// Offering 750 bytes of MTU traffic twice should yield exactly one
	// 1500-byte packet across the two offers, not zero.
	sw := newTestSwitch(1)
	sw.OfferRx(0, 750, fullMTU)
	sw.OfferRx(0, 750, fullMTU)
	if got := sw.Port(0).Packets(RX); got != 1 {
		t.Errorf("packets = %d, want 1 (remainder carrying)", got)
	}
}

func TestProfileBlendingAcrossOffers(t *testing.T) {
	sw := newTestSwitch(1)
	tick := simclock.Micros(5)
	small := TrafficProfile{1, 0, 0, 0, 0, 0}
	sw.OfferTx(0, 2400, small)
	sw.OfferTx(0, 2400, fullMTU)
	sw.Tick(tick)
	bins := sw.Port(0).SizeBins(TX)
	if bins[0] != 50 { // 2400/48
		t.Errorf("bin0 = %d, want 50", bins[0])
	}
	// 2400/1500 = 1.6 -> 1 whole packet with remainder carried.
	if bins[5] != 1 {
		t.Errorf("bin5 = %d, want 1", bins[5])
	}
}

func TestUtilizationFromByteDeltas(t *testing.T) {
	// Offer exactly half line rate for 100 ticks; utilization computed
	// from cumulative byte deltas must be 0.5.
	sw := newTestSwitch(1)
	tick := simclock.Micros(5)
	const halfLine = 3125.0
	before := sw.Port(0).Bytes(TX)
	for i := 0; i < 100; i++ {
		sw.OfferTx(0, halfLine, fullMTU)
		sw.Tick(tick)
	}
	delta := float64(sw.Port(0).Bytes(TX) - before)
	util := delta * 8 / (float64(gbps10) * (100 * tick.Seconds()))
	if math.Abs(util-0.5) > 0.01 {
		t.Errorf("utilization = %v, want 0.5", util)
	}
}

func TestAccessCosts(t *testing.T) {
	if AccessCost(KindBytes) >= AccessCost(KindBufferPeak) {
		t.Error("buffer peak must be slower than byte counter (§4.1)")
	}
	for k := CounterKind(0); k < numCounterKinds; k++ {
		if AccessCost(k) <= 0 {
			t.Errorf("cost of %v not positive", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("AccessCost of invalid kind did not panic")
		}
	}()
	AccessCost(CounterKind(99))
}

func TestTrafficProfileHelpers(t *testing.T) {
	if !fullMTU.Valid() {
		t.Error("fullMTU invalid")
	}
	if (TrafficProfile{}).Valid() {
		t.Error("zero profile should be invalid")
	}
	if (TrafficProfile{-0.5, 1.5, 0, 0, 0, 0}).Valid() {
		t.Error("negative fraction should be invalid")
	}
	if m := fullMTU.MeanPacketSize(); m != 1500 {
		t.Errorf("MTU mean = %v", m)
	}
	mixed := TrafficProfile{0.5, 0, 0, 0, 0, 0.5}
	m := mixed.MeanPacketSize()
	if m <= 48 || m >= 1500 {
		t.Errorf("mixed mean = %v, want between 48 and 1500", m)
	}
	if (TrafficProfile{}).MeanPacketSize() != 0 {
		t.Error("zero profile mean should be 0")
	}
}

func TestSizeBinLabels(t *testing.T) {
	if SizeBinLabel(0) != "0-63" {
		t.Errorf("label 0 = %q", SizeBinLabel(0))
	}
	if SizeBinLabel(5) != "1024-1518" {
		t.Errorf("label 5 = %q", SizeBinLabel(5))
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range label did not panic")
		}
	}()
	SizeBinLabel(6)
}

func TestNegativeOffersPanic(t *testing.T) {
	sw := newTestSwitch(1)
	for _, f := range []func(){
		func() { sw.OfferTx(0, -1, fullMTU) },
		func() { sw.OfferRx(0, -1, fullMTU) },
		func() { sw.Tick(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid call did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: byte conservation — transmitted + queued + dropped-bytes-equivalent
// accounts for everything offered, and buffer occupancy equals the sum of
// queues and never exceeds capacity.
func TestQuickConservation(t *testing.T) {
	tick := simclock.Micros(5)
	f := func(offers []uint32) bool {
		sw := New(Config{
			PortSpeeds:  []uint64{gbps10, gbps10, gbps40},
			BufferBytes: 50000,
			Alpha:       1,
		})
		var offered float64
		for i, o := range offers {
			amt := float64(o % 20000)
			sw.OfferTx(i%3, amt, fullMTU)
			offered += amt
			if i%2 == 1 {
				sw.Tick(tick)
				var queues float64
				for pi := 0; pi < 3; pi++ {
					queues += sw.Port(pi).QueueBytes()
				}
				if math.Abs(queues-sw.BufferUsed()) > 1 {
					return false
				}
				if sw.BufferUsed() > 50000+1 {
					return false
				}
			}
		}
		// Flush any pending offers, then drain everything.
		sw.Tick(tick)
		for i := 0; i < 1000 && sw.BufferUsed() > 0; i++ {
			sw.Tick(tick)
		}
		var transmitted float64
		for pi := 0; pi < 3; pi++ {
			transmitted += float64(sw.Port(pi).Bytes(TX))
		}
		droppedBytes := float64(sw.TotalDropped()) * 1500
		// Allow slack: drop packetization rounds to 1500-byte quanta and
		// byte counters round to integers.
		return math.Abs(offered-(transmitted+droppedBytes)) <= 1500*float64(len(offers)+2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
