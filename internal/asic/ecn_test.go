package asic

import (
	"testing"

	"mburst/internal/simclock"
)

func ecnSwitch(threshold float64) *Switch {
	return New(Config{
		PortSpeeds:        []uint64{gbps10},
		BufferBytes:       1 << 20,
		Alpha:             2,
		ECNThresholdBytes: threshold,
	})
}

func TestECNDisabledByDefault(t *testing.T) {
	sw := newTestSwitch(1)
	tick := simclock.Micros(5)
	for i := 0; i < 50; i++ {
		sw.OfferTx(0, 20000, fullMTU) // heavy overload, deep queue
		sw.Tick(tick)
	}
	if sw.Port(0).ECNMarks() != 0 {
		t.Errorf("marks = %d with ECN disabled", sw.Port(0).ECNMarks())
	}
}

func TestECNMarksAboveThreshold(t *testing.T) {
	sw := ecnSwitch(10000)
	tick := simclock.Micros(5)
	// Below threshold: queue stays under 10kB, no marks.
	sw.OfferTx(0, 8000, fullMTU) // 1750B queued
	sw.Tick(tick)
	if sw.Port(0).ECNMarks() != 0 {
		t.Fatalf("marks below threshold: %d", sw.Port(0).ECNMarks())
	}
	// Sustained overload pushes the queue past the threshold.
	for i := 0; i < 20; i++ {
		sw.OfferTx(0, 12000, fullMTU)
		sw.Tick(tick)
	}
	if sw.Port(0).QueueBytes() <= 10000 {
		t.Fatalf("setup: queue = %v, want above threshold", sw.Port(0).QueueBytes())
	}
	if sw.Port(0).ECNMarks() == 0 {
		t.Error("no marks despite queue above threshold")
	}
}

func TestECNStopsWhenQueueDrains(t *testing.T) {
	sw := ecnSwitch(5000)
	tick := simclock.Micros(5)
	for i := 0; i < 10; i++ {
		sw.OfferTx(0, 15000, fullMTU)
		sw.Tick(tick)
	}
	marked := sw.Port(0).ECNMarks()
	if marked == 0 {
		t.Fatal("setup: expected marks")
	}
	// Drain fully, then send light traffic: no further marks.
	for i := 0; i < 200 && sw.BufferUsed() > 0; i++ {
		sw.Tick(tick)
	}
	sw.OfferTx(0, 1000, fullMTU)
	sw.Tick(tick)
	if got := sw.Port(0).ECNMarks(); got != marked {
		t.Errorf("marks advanced on a drained queue: %d -> %d", marked, got)
	}
}

func TestECNDoesNotMarkDroppedBytes(t *testing.T) {
	// Tiny buffer: most of a massive offer is dropped; marks must only
	// cover the surviving bytes.
	sw := New(Config{
		PortSpeeds:        []uint64{gbps10},
		BufferBytes:       10000,
		Alpha:             1,
		ECNThresholdBytes: 1000,
	})
	sw.OfferTx(0, 1_000_000, fullMTU)
	sw.Tick(simclock.Micros(5))
	marks := float64(sw.Port(0).ECNMarks())
	// Survivors = transmitted (6250) + queued (≤10000) ≈ ≤ 16250 bytes ≈ 11 pkts.
	if marks > 12 {
		t.Errorf("marks = %v, exceeds surviving packets", marks)
	}
	if sw.Port(0).Drops() == 0 {
		t.Fatal("setup: expected drops")
	}
}

func TestECNKindMetadata(t *testing.T) {
	if KindECNMarks.String() != "ecnmarks" {
		t.Errorf("name = %q", KindECNMarks.String())
	}
	if AccessCost(KindECNMarks) <= 0 {
		t.Error("no access cost")
	}
}
