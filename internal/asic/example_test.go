package asic_test

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// Example shows the counter semantics the paper's framework relies on:
// cumulative byte counters on the data path, and a clear-on-read peak
// register over the shared buffer that survives missed sampling intervals.
func Example() {
	sw := asic.New(asic.Config{
		PortSpeeds:  []uint64{10_000_000_000}, // one 10G port
		BufferBytes: 1 << 20,
		Alpha:       1,
	})
	mtu := asic.TrafficProfile{0, 0, 0, 0, 0, 1}
	tick := 5 * simclock.Microsecond

	// A burst: 20 kB offered in one 5 µs tick (line capacity is 6250 B).
	sw.OfferTx(0, 20000, mtu)
	sw.Tick(tick)
	fmt.Printf("after burst: queue=%.0fB\n", sw.Port(0).QueueBytes())

	// Drain for a while — the burst is long over...
	for i := 0; i < 10; i++ {
		sw.Tick(tick)
	}
	fmt.Printf("after drain: queue=%.0fB, transmitted=%dB\n",
		sw.Port(0).QueueBytes(), sw.Port(0).Bytes(asic.TX))

	// ...yet the peak register still reports it (clear-on-read, §4.1).
	fmt.Printf("peak register: %.0fB\n", sw.ReadPeakBufferAndClear())
	fmt.Printf("peak register after clear: %.0fB\n", sw.ReadPeakBufferAndClear())
	// Output:
	// after burst: queue=13750B
	// after drain: queue=0B, transmitted=20000B
	// peak register: 13750B
	// peak register after clear: 0B
}
