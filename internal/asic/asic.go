// Package asic models the counter-visible behaviour of a data-center switch
// ASIC at the fidelity the paper's analyses require.
//
// The real study polls a production ToR ASIC for three families of state
// (§4.1): cumulative per-port byte/packet counters, per-port packet-size
// histogram bins, and a clear-on-read peak occupancy register over the
// shared packet buffer. This package reproduces exactly those observables:
//
//   - Cumulative RX/TX byte and packet counters per port. Cumulative
//     semantics matter: the paper notes that when the poller misses an
//     interval, throughput is still computable from the next sample's byte
//     count and timestamp (Table 1 caption).
//   - ASIC size-bin counters using the RMON-style bins listed in §5.3.
//   - A shared, dynamically carved egress buffer (Broadcom-style "alpha"
//     dynamic thresholding: a port may queue up to alpha × remaining free
//     bytes). The paper's footnote 1 says bursts are defined on byte counts
//     precisely because buffers are shared and dynamically carved; Fig 10
//     measures this buffer's clear-on-read peak occupancy register.
//   - Per-port egress congestion-discard counters (Figs 1 and 2).
//
// The data path is a fluid model advanced in fixed ticks by the simulator:
// per tick, each egress port receives offered bytes, transmits at line
// rate, and queues the remainder in the shared buffer subject to its
// dynamic threshold. Packet-count and size-bin counters advance
// statistically from each port's current traffic profile, carrying exact
// fractional remainders so long-run packet counts are unbiased.
//
// Counter access costs (registers vs. memory-backed tables, §4.1) are
// exposed via AccessCost so the collection framework can model why a byte
// counter sustains 25 µs polling while the buffer register needs 50 µs.
package asic

import (
	"fmt"

	"mburst/internal/simclock"
)

// Direction selects the RX (received by the switch on that port) or TX
// (transmitted by the switch out of that port) side of a port's counters.
type Direction int

const (
	// RX counts traffic arriving at the switch on a port.
	RX Direction = iota
	// TX counts traffic the switch sends out of a port.
	TX
)

// String returns "rx" or "tx".
func (d Direction) String() string {
	if d == RX {
		return "rx"
	}
	return "tx"
}

// NumSizeBins is the number of packet-size histogram bins the ASIC
// maintains per port and direction.
const NumSizeBins = 6

// SizeBinEdges are the RMON-style packet-size bin boundaries in bytes:
// [0,64) [64,128) [128,256) [256,512) [512,1024) [1024,1519).
var SizeBinEdges = [NumSizeBins + 1]float64{0, 64, 128, 256, 512, 1024, 1519}

// SizeBinLabel returns a human-readable label for bin i, e.g. "512-1023".
func SizeBinLabel(i int) string {
	if i < 0 || i >= NumSizeBins {
		panic(fmt.Sprintf("asic: size bin %d out of range", i))
	}
	return fmt.Sprintf("%d-%d", int(SizeBinEdges[i]), int(SizeBinEdges[i+1])-1)
}

// representativeSize is the packet size used to convert bytes to packet
// counts within each bin (midpoint, except full-MTU bin which is dominated
// by 1500-byte packets in practice).
var representativeSize = [NumSizeBins]float64{48, 96, 192, 384, 768, 1500}

// RepresentativeSize returns the byte size used to convert a byte volume in
// bin i into a packet count.
func RepresentativeSize(i int) float64 { return representativeSize[i] }

// TrafficProfile describes how a port's offered bytes are spread across
// packet-size bins: element i is the fraction of BYTES carried by packets
// whose size falls in bin i. A zero profile is invalid for non-zero byte
// offers.
type TrafficProfile [NumSizeBins]float64

// Valid reports whether the profile's fractions are non-negative and sum to
// approximately 1.
func (p TrafficProfile) Valid() bool {
	var sum float64
	for _, f := range p {
		if f < 0 {
			return false
		}
		sum += f
	}
	return sum > 0.999 && sum < 1.001
}

// MeanPacketSize returns the byte-weighted harmonic mean packet size of the
// profile — the average size of a transmitted packet.
func (p TrafficProfile) MeanPacketSize() float64 {
	var pktPerByte float64
	for i, f := range p {
		pktPerByte += f / representativeSize[i]
	}
	if pktPerByte == 0 {
		return 0
	}
	return 1 / pktPerByte
}

// CounterKind identifies a pollable counter family; the collection
// framework uses it to model per-counter access latency.
type CounterKind int

const (
	// KindBytes is the cumulative byte counter (fast: register access).
	KindBytes CounterKind = iota
	// KindPackets is the cumulative packet counter (register access).
	KindPackets
	// KindSizeBins is the packet-size histogram (several registers).
	KindSizeBins
	// KindDrops is the egress congestion-discard counter.
	KindDrops
	// KindBufferPeak is the shared-buffer peak-occupancy register
	// (memory-mapped, much slower; §4.1 reports 50 µs).
	KindBufferPeak
	// KindECNMarks counts packets ECN-marked at egress (extension: §7
	// discusses ECN as a congestion signal; DCTCP-style marking fires
	// when the instantaneous queue exceeds a threshold).
	KindECNMarks
	numCounterKinds
)

// String names the counter kind.
func (k CounterKind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindPackets:
		return "packets"
	case KindSizeBins:
		return "sizebins"
	case KindDrops:
		return "drops"
	case KindBufferPeak:
		return "bufferpeak"
	case KindECNMarks:
		return "ecnmarks"
	default:
		return fmt.Sprintf("CounterKind(%d)", int(k))
	}
}

// accessCost models the ASIC-side latency of reading one instance of each
// counter kind. Values are chosen so the collector reproduces the paper's
// reported minimum sampling intervals (Table 1 and §4.1): byte counters
// sustain 25 µs with ~1% loss, buffer peak needs 50 µs.
var accessCost = [numCounterKinds]simclock.Duration{
	KindBytes:      6 * simclock.Microsecond,
	KindPackets:    6 * simclock.Microsecond,
	KindSizeBins:   9 * simclock.Microsecond,
	KindDrops:      6 * simclock.Microsecond,
	KindBufferPeak: 38 * simclock.Microsecond,
	KindECNMarks:   6 * simclock.Microsecond,
}

// AccessCost returns the modeled ASIC access latency for one read of the
// given counter kind.
func AccessCost(k CounterKind) simclock.Duration {
	if k < 0 || k >= numCounterKinds {
		panic(fmt.Sprintf("asic: unknown counter kind %d", int(k)))
	}
	return accessCost[k]
}

// dirCounters is one direction's counter block for a port.
type dirCounters struct {
	bytes   uint64
	packets uint64
	bins    [NumSizeBins]uint64
	// binRem carries fractional packets per bin so statistical conversion
	// from bytes to packets is unbiased over time.
	binRem [NumSizeBins]float64
}

// add charges nbytes spread per profile into the counter block.
func (c *dirCounters) add(nbytes float64, profile TrafficProfile) {
	if nbytes <= 0 {
		return
	}
	c.bytes += uint64(nbytes + 0.5)
	for i, frac := range profile {
		if frac == 0 {
			continue
		}
		pkts := nbytes*frac/representativeSize[i] + c.binRem[i]
		whole := uint64(pkts)
		c.binRem[i] = pkts - float64(whole)
		c.bins[i] += whole
		c.packets += whole
	}
}

// Port is one front-panel port of the switch.
type Port struct {
	id    int
	name  string
	speed uint64 // bits per second

	rx, tx dirCounters

	txDrops uint64 // egress congestion discards, in packets
	dropRem float64

	ecnMarks uint64 // egress ECN-marked packets (extension)
	ecnRem   float64

	queue      float64 // egress backlog bytes held in the shared buffer
	lastOffer  float64
	lastProfil TrafficProfile
}

// ID returns the port's index within its switch.
func (p *Port) ID() int { return p.id }

// Name returns the port's configured name (e.g. "eth1/4" or "uplink2").
func (p *Port) Name() string { return p.name }

// Speed returns the port's line rate in bits per second.
func (p *Port) Speed() uint64 { return p.speed }

// QueueBytes returns the port's current egress backlog in bytes.
func (p *Port) QueueBytes() float64 { return p.queue }

// Bytes returns the cumulative byte counter for the direction.
func (p *Port) Bytes(d Direction) uint64 {
	if d == RX {
		return p.rx.bytes
	}
	return p.tx.bytes
}

// Packets returns the cumulative packet counter for the direction.
func (p *Port) Packets(d Direction) uint64 {
	if d == RX {
		return p.rx.packets
	}
	return p.tx.packets
}

// SizeBins returns a snapshot of the cumulative size-bin counters.
func (p *Port) SizeBins(d Direction) [NumSizeBins]uint64 {
	if d == RX {
		return p.rx.bins
	}
	return p.tx.bins
}

// Drops returns the cumulative egress congestion-discard packet counter.
func (p *Port) Drops() uint64 { return p.txDrops }

// ECNMarks returns the cumulative count of packets ECN-marked on egress.
func (p *Port) ECNMarks() uint64 { return p.ecnMarks }

// Config configures a Switch.
type Config struct {
	// PortSpeeds lists each port's line rate in bits per second; the slice
	// length defines the port count.
	PortSpeeds []uint64
	// PortNames optionally names each port; defaults to "port<i>".
	PortNames []string
	// BufferBytes is the shared packet buffer capacity. Production ToR
	// ASICs of the paper's era carried 12–16 MB; the default used by the
	// simulator is scaled with port count.
	BufferBytes float64
	// Alpha is the dynamic threshold factor: a port's egress queue may
	// grow up to Alpha × (free buffer). Typical deployments use 0.5–8.
	Alpha float64
	// ECNThresholdBytes enables DCTCP-style marking: traffic arriving at
	// a port whose egress queue exceeds this depth is ECN-marked and the
	// per-port mark counter advances. Zero disables marking.
	ECNThresholdBytes float64
}

// Switch is the ASIC model: a set of ports sharing one packet buffer.
// It is advanced by the simulator one tick at a time and read (possibly
// concurrently with advancing, but never concurrently with itself) by the
// collection framework. The simulation kernel is single-threaded, so no
// locking is needed here.
type Switch struct {
	ports []Port
	cfg   Config

	bufferUsed float64
	peakUsed   float64 // clear-on-read peak register

	totalDropped uint64
}

// New builds a Switch from the config. It panics on invalid configuration:
// topology is static and a bad config is a programming error.
func New(cfg Config) *Switch {
	if len(cfg.PortSpeeds) == 0 {
		panic("asic: switch needs at least one port")
	}
	if cfg.BufferBytes <= 0 {
		panic("asic: non-positive buffer size")
	}
	if cfg.Alpha <= 0 {
		panic("asic: non-positive alpha")
	}
	if cfg.PortNames != nil && len(cfg.PortNames) != len(cfg.PortSpeeds) {
		panic("asic: PortNames length mismatch")
	}
	sw := &Switch{cfg: cfg, ports: make([]Port, len(cfg.PortSpeeds))}
	for i := range sw.ports {
		name := fmt.Sprintf("port%d", i)
		if cfg.PortNames != nil {
			name = cfg.PortNames[i]
		}
		if cfg.PortSpeeds[i] == 0 {
			panic(fmt.Sprintf("asic: port %d has zero speed", i))
		}
		sw.ports[i] = Port{id: i, name: name, speed: cfg.PortSpeeds[i]}
	}
	return sw
}

// NumPorts returns the number of ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return &s.ports[i] }

// BufferBytes returns the configured shared-buffer capacity.
func (s *Switch) BufferBytes() float64 { return s.cfg.BufferBytes }

// BufferUsed returns the current shared-buffer occupancy in bytes.
func (s *Switch) BufferUsed() float64 { return s.bufferUsed }

// TotalDropped returns the cumulative congestion discards across all ports.
func (s *Switch) TotalDropped() uint64 { return s.totalDropped }

// ReadPeakBufferAndClear returns the maximum shared-buffer occupancy in
// bytes observed since the previous call, then resets the register to the
// current occupancy — the clear-on-read semantics of §4.1 that let the
// paper catch bursts even across missed sampling periods.
func (s *Switch) ReadPeakBufferAndClear() float64 {
	peak := s.peakUsed
	s.peakUsed = s.bufferUsed
	return peak
}

// OfferRx charges nbytes of traffic arriving at the switch on port id. RX
// counters are pure accounting in this model: the contended resource is
// the egress side, where OfferTx applies queueing and drops.
func (s *Switch) OfferRx(id int, nbytes float64, profile TrafficProfile) {
	if nbytes < 0 {
		panic("asic: negative rx offer")
	}
	s.ports[id].rx.add(nbytes, profile)
}

// OfferTx records nbytes of traffic destined out of port id during the
// next Tick. Multiple offers to the same port within one tick accumulate.
// The bytes are not transmitted until Tick runs.
func (s *Switch) OfferTx(id int, nbytes float64, profile TrafficProfile) {
	if nbytes < 0 {
		panic("asic: negative tx offer")
	}
	if nbytes == 0 {
		return
	}
	p := &s.ports[id]
	if p.lastOffer == 0 {
		p.lastProfil = profile
	} else {
		// Byte-weighted blend of profiles offered this tick.
		total := p.lastOffer + nbytes
		for i := range p.lastProfil {
			p.lastProfil[i] = (p.lastProfil[i]*p.lastOffer + profile[i]*nbytes) / total
		}
	}
	p.lastOffer += nbytes
}

// Tick advances the data path by d: each port transmits up to line rate
// from its backlog plus this tick's offered bytes; the remainder is
// admitted to the shared buffer subject to the port's dynamic threshold,
// and anything beyond that is dropped (counted as congestion discards).
// It returns the total bytes transmitted this tick.
func (s *Switch) Tick(d simclock.Duration) float64 {
	if d <= 0 {
		panic("asic: non-positive tick")
	}
	seconds := d.Seconds()
	var txTotal float64
	for i := range s.ports {
		p := &s.ports[i]
		lineBytes := float64(p.speed) / 8 * seconds
		offered := p.lastOffer
		avail := p.queue + offered
		transmit := avail
		if transmit > lineBytes {
			transmit = lineBytes
		}
		if transmit > 0 {
			p.tx.add(transmit, p.lastProfil)
			txTotal += transmit
		}
		leftover := avail - transmit
		var dropBytes float64

		// The transmitted bytes free their share of buffer first.
		drained := p.queue - leftover
		if drained > 0 {
			// Queue shrank: release buffer.
			s.bufferUsed -= drained
			if s.bufferUsed < 0 {
				s.bufferUsed = 0
			}
			p.queue = leftover
		} else if leftover > p.queue {
			// Queue must grow: admit up to the dynamic threshold.
			free := s.cfg.BufferBytes - s.bufferUsed
			if free < 0 {
				free = 0
			}
			limit := s.cfg.Alpha * free
			growth := leftover - p.queue
			room := limit - p.queue
			if room < 0 {
				room = 0
			}
			admitted := growth
			if admitted > room {
				admitted = room
			}
			if admitted > free {
				admitted = free
			}
			dropBytes = growth - admitted
			p.queue += admitted
			s.bufferUsed += admitted
			if dropBytes > 0 {
				s.chargeDrops(p, dropBytes)
			}
		}
		// DCTCP-style ECN (extension): traffic arriving while the egress
		// queue sits above the threshold is marked. Dropped bytes carry
		// no mark — they never leave the switch.
		if s.cfg.ECNThresholdBytes > 0 && p.queue > s.cfg.ECNThresholdBytes {
			if markBytes := offered - dropBytes; markBytes > 0 {
				s.chargeECN(p, markBytes)
			}
		}
		p.lastOffer = 0
	}
	if s.bufferUsed > s.peakUsed {
		s.peakUsed = s.bufferUsed
	}
	return txTotal
}

// chargeECN converts marked bytes into marked packets using the port's
// current profile, carrying the fractional remainder.
func (s *Switch) chargeECN(p *Port, markBytes float64) {
	mean := p.lastProfil.MeanPacketSize()
	if mean <= 0 {
		mean = 1500
	}
	pkts := markBytes/mean + p.ecnRem
	whole := uint64(pkts)
	p.ecnRem = pkts - float64(whole)
	p.ecnMarks += whole
}

// chargeDrops converts dropped bytes into dropped packets using the port's
// current profile, carrying the fractional remainder.
func (s *Switch) chargeDrops(p *Port, dropBytes float64) {
	mean := p.lastProfil.MeanPacketSize()
	if mean <= 0 {
		mean = 1500
	}
	pkts := dropBytes/mean + p.dropRem
	whole := uint64(pkts)
	p.dropRem = pkts - float64(whole)
	p.txDrops += whole
	s.totalDropped += whole
}
