package ecmp

import (
	"testing"
	"testing/quick"

	"mburst/internal/simclock"
)

func key(i uint32) FlowKey {
	return FlowKey{SrcIP: i, DstIP: i ^ 0xffff, SrcPort: uint16(i), DstPort: 80, Proto: 6}
}

func TestFlowHasherStable(t *testing.T) {
	h := NewFlowHasher(4, 42)
	k := key(7)
	first := h.Pick(k, 0)
	for i := 0; i < 100; i++ {
		if h.Pick(k, simclock.Time(i)*1e6) != first {
			t.Fatal("flow hash not stable over time")
		}
	}
	if first < 0 || first >= 4 {
		t.Fatalf("pick out of range: %d", first)
	}
}

func TestFlowHasherSpread(t *testing.T) {
	h := NewFlowHasher(4, 1)
	counts := make([]int, 4)
	for i := uint32(0); i < 40000; i++ {
		counts[h.Pick(key(i), 0)]++
	}
	for u, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("uplink %d got %d of 40000 flows; hash is skewed", u, c)
		}
	}
}

func TestFlowHasherSeedChangesMapping(t *testing.T) {
	a := NewFlowHasher(4, 1)
	b := NewFlowHasher(4, 2)
	diff := 0
	for i := uint32(0); i < 1000; i++ {
		if a.Pick(key(i), 0) != b.Pick(key(i), 0) {
			diff++
		}
	}
	if diff < 500 {
		t.Errorf("only %d/1000 flows remapped across seeds", diff)
	}
}

func TestFlowletRepathsAfterGap(t *testing.T) {
	gap := simclock.Micros(100)
	fb := NewFlowletBalancer(4, 9, gap)
	k := key(3)
	// Back-to-back picks within the gap must not change path.
	t0 := simclock.Epoch.Add(simclock.Micros(10))
	p0 := fb.Pick(k, t0)
	p1 := fb.Pick(k, t0.Add(simclock.Micros(50)))
	if p0 != p1 {
		t.Fatal("flowlet split within gap")
	}
	// After a long pause, the epoch advances; over many flows, paths
	// must change for a fair share of them.
	changed := 0
	const flows = 1000
	for i := uint32(0); i < flows; i++ {
		k := key(i)
		now := simclock.Epoch.Add(simclock.Micros(10))
		before := fb.Pick(k, now)
		after := fb.Pick(k, now.Add(simclock.Millis(5)))
		if before != after {
			changed++
		}
	}
	// With 4 uplinks a re-hash changes path with p=3/4.
	if changed < flows/2 {
		t.Errorf("only %d/%d flows repathed after gap", changed, flows)
	}
}

func TestFlowletForget(t *testing.T) {
	fb := NewFlowletBalancer(4, 9, simclock.Micros(100))
	for i := uint32(0); i < 100; i++ {
		fb.Pick(key(i), simclock.Epoch.Add(simclock.Micros(int64(i))))
	}
	if len(fb.last) != 100 {
		t.Fatalf("state size = %d", len(fb.last))
	}
	fb.Forget(simclock.Epoch.Add(simclock.Micros(50)))
	if len(fb.last) != 50 {
		t.Errorf("after Forget: %d entries, want 50", len(fb.last))
	}
}

func TestRoundRobinPerfectBalance(t *testing.T) {
	rr := NewRoundRobin(4)
	counts := make([]int, 4)
	for i := uint32(0); i < 4000; i++ {
		counts[rr.Pick(key(i%3), 0)]++ // even a few flows balance perfectly
	}
	for u, c := range counts {
		if c != 1000 {
			t.Errorf("uplink %d = %d, want exactly 1000", u, c)
		}
	}
}

func TestConstructorsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewFlowHasher(0, 1) },
		func() { NewFlowletBalancer(0, 1, simclock.Micros(1)) },
		func() { NewFlowletBalancer(4, 1, 0) },
		func() { NewRoundRobin(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBalancerInterfaces(t *testing.T) {
	var _ Balancer = NewFlowHasher(4, 0)
	var _ Balancer = NewFlowletBalancer(4, 0, simclock.Micros(1))
	var _ Balancer = NewRoundRobin(4)
	if NewFlowHasher(3, 0).NumUplinks() != 3 {
		t.Error("NumUplinks wrong")
	}
}

// Property: picks are always in range for all balancers.
func TestQuickPickInRange(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, nRaw uint8, tRaw uint32) bool {
		n := int(nRaw%8) + 1
		k := FlowKey{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: 6}
		now := simclock.Epoch.Add(simclock.Duration(tRaw))
		for _, b := range []Balancer{
			NewFlowHasher(n, uint64(src)),
			NewFlowletBalancer(n, uint64(dst), simclock.Micros(100)),
			NewRoundRobin(n),
		} {
			p := b.Pick(k, now)
			if p < 0 || p >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
