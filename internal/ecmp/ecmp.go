// Package ecmp implements the uplink selection schemes whose load-balancing
// efficacy §6.1 measures.
//
// Production ToRs spread egress traffic across their uplinks with
// Equal-Cost MultiPath. The paper highlights the two sources of imbalance
// a typical configuration accepts to avoid TCP reordering: hashing operates
// on flows (not packets), and the hash is static/consistent, so a handful
// of large flows can pile onto one uplink for their entire lifetime. That
// is exactly the behaviour FlowHasher reproduces.
//
// Two alternative balancers are provided for the §7 design-implication
// ablations: FlowletBalancer re-picks the uplink whenever a flow pauses
// longer than a configurable gap (the "microflow" proposals §7 discusses),
// and RoundRobin is the reordering-oblivious ideal that perfectly balances
// packets.
package ecmp

import (
	"fmt"

	"mburst/internal/simclock"
)

// FlowKey identifies a transport flow (the 5-tuple ECMP hashes).
type FlowKey struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// String formats the key for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%d->%d:%d/%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Proto)
}

// hash64 is FNV-1a over the key fields plus a per-switch seed, mixing the
// way switch ASICs fold header fields with a configured hash seed.
func (k FlowKey) hash64(seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	step := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	step(uint64(k.SrcIP), 4)
	step(uint64(k.DstIP), 4)
	step(uint64(k.SrcPort), 2)
	step(uint64(k.DstPort), 2)
	step(uint64(k.Proto), 1)
	return h
}

// Balancer selects an uplink index for a unit of traffic belonging to a
// flow at a given time.
type Balancer interface {
	// Pick returns the uplink in [0, NumUplinks()) for this flow now.
	Pick(flow FlowKey, now simclock.Time) int
	// NumUplinks returns the number of uplinks being balanced over.
	NumUplinks() int
}

// FlowHasher is static flow-level ECMP: a flow maps to one uplink for its
// whole lifetime. This is the production configuration of §6.1.
type FlowHasher struct {
	n    int
	seed uint64
}

// NewFlowHasher returns a flow hasher over n uplinks with the given hash
// seed. It panics if n <= 0.
func NewFlowHasher(n int, seed uint64) *FlowHasher {
	if n <= 0 {
		panic("ecmp: need at least one uplink")
	}
	return &FlowHasher{n: n, seed: seed}
}

// Pick implements Balancer. It ignores time: the mapping is static.
func (f *FlowHasher) Pick(flow FlowKey, _ simclock.Time) int {
	return int(flow.hash64(f.seed) % uint64(f.n))
}

// NumUplinks implements Balancer.
func (f *FlowHasher) NumUplinks() int { return f.n }

// FlowletBalancer splits flows at idle gaps: if a flow has been silent
// longer than Gap, the next packet may safely take a different path without
// risking reordering, so the balancer re-hashes with a new epoch. §7 notes
// that most observed inter-burst periods exceed typical end-to-end
// latencies, which is what makes this scheme attractive.
type FlowletBalancer struct {
	n    int
	seed uint64
	gap  simclock.Duration

	last  map[FlowKey]simclock.Time
	epoch map[FlowKey]uint64
}

// NewFlowletBalancer returns a flowlet balancer over n uplinks that starts
// a new flowlet after gap of inactivity.
func NewFlowletBalancer(n int, seed uint64, gap simclock.Duration) *FlowletBalancer {
	if n <= 0 {
		panic("ecmp: need at least one uplink")
	}
	if gap <= 0 {
		panic("ecmp: non-positive flowlet gap")
	}
	return &FlowletBalancer{
		n:     n,
		seed:  seed,
		gap:   gap,
		last:  make(map[FlowKey]simclock.Time),
		epoch: make(map[FlowKey]uint64),
	}
}

// Pick implements Balancer, advancing the flow's flowlet epoch when the
// idle gap is exceeded.
func (f *FlowletBalancer) Pick(flow FlowKey, now simclock.Time) int {
	if prev, ok := f.last[flow]; ok && now.Sub(prev) > f.gap {
		f.epoch[flow]++
	}
	f.last[flow] = now
	e := f.epoch[flow]
	return int((flow.hash64(f.seed) ^ (e * 0x9e3779b97f4a7c15)) % uint64(f.n))
}

// NumUplinks implements Balancer.
func (f *FlowletBalancer) NumUplinks() int { return f.n }

// TrackedFlows returns how many flows currently hold flowlet state.
func (f *FlowletBalancer) TrackedFlows() int { return len(f.last) }

// Forget drops per-flow state for flows idle since before cutoff, bounding
// memory in long campaigns.
func (f *FlowletBalancer) Forget(cutoff simclock.Time) {
	for k, t := range f.last {
		if t.Before(cutoff) {
			delete(f.last, k)
			delete(f.epoch, k)
		}
	}
}

// RoundRobin is the idealized per-packet balancer: successive picks rotate
// through the uplinks regardless of flow. It bounds how balanced Fig 7
// could ever look.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns a round-robin balancer over n uplinks.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("ecmp: need at least one uplink")
	}
	return &RoundRobin{n: n}
}

// Pick implements Balancer.
func (r *RoundRobin) Pick(_ FlowKey, _ simclock.Time) int {
	p := r.next
	r.next = (r.next + 1) % r.n
	return p
}

// NumUplinks implements Balancer.
func (r *RoundRobin) NumUplinks() int { return r.n }
