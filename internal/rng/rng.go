// Package rng provides the deterministic, splittable random number source
// used by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement (DESIGN.md §4): a campaign run with
// a given seed and configuration must produce bit-identical traces. The
// standard library's math/rand global source would make component behaviour
// depend on call ordering across the whole program, so instead each
// component receives its own Source, derived from a parent by Split with a
// stable label. Splitting is one-way and label-keyed, which keeps streams
// independent even when components are added or reordered.
//
// The core generator is xoshiro256**, seeded through SplitMix64 — the
// combination recommended by the xoshiro authors and also used internally
// by the Go runtime.
package rng

import (
	"math"
)

// Source is a deterministic pseudo-random source with distribution helpers.
// A Source is not safe for concurrent use; the simulation kernel is
// single-threaded, and concurrent consumers must Split their own stream.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// splitMix64 advances a SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child Source keyed by label. The derivation
// hashes the label into the parent's next outputs, so the child stream is a
// pure function of (parent seed, split history, label) and is unaffected by
// how many values the parent has produced for other purposes after the
// split point.
func (r *Source) Split(label string) *Source {
	h := fnv64a(label)
	var child Source
	sm := r.Uint64() ^ h
	for i := range child.s {
		sm, child.s[i] = splitMix64(sm)
	}
	if child.s == [4]uint64{} {
		child.s[0] = h | 1
	}
	return &child
}

func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniformly distributed double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns a sample from the exponential distribution with the given
// mean. It panics if mean is not positive.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	u := r.Float64()
	// 1-u is in (0,1], so Log is finite.
	return -mean * math.Log(1-u)
}

// Pareto returns a sample from a Pareto distribution with minimum xm and
// shape alpha. Heavy-tailed flow sizes and ON-period durations use this.
func (r *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := r.Float64()
	return xm / math.Pow(1-u, 1/alpha)
}

// BoundedPareto returns a Pareto(xm, alpha) sample truncated by inversion to
// [xm, xmax]. Truncation by inversion (rather than rejection) keeps the
// stream consumption per call constant, which matters for reproducibility
// when configs change.
func (r *Source) BoundedPareto(xm, xmax, alpha float64) float64 {
	if xm <= 0 || xmax <= xm || alpha <= 0 {
		panic("rng: BoundedPareto with invalid parameters")
	}
	u := r.Float64()
	la := math.Pow(xm, alpha)
	ha := math.Pow(xmax, alpha)
	// Inverse CDF of the bounded Pareto.
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Lognormal returns a sample with the given log-space mean mu and log-space
// standard deviation sigma.
func (r *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal sample (Box–Muller, one value per call;
// the paired value is discarded to keep per-call stream consumption fixed).
func (r *Source) Normal() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 64 (where
// the approximation error is far below the noise floor of the simulation).
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := mean + math.Sqrt(mean)*r.Normal()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, i.e. a sample in {0, 1, 2, ...} with mean (1-p)/p.
// It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p out of (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	return int(math.Log(1-u) / math.Log(1-p))
}

// Zipf returns a sample in [0, n) following a Zipf distribution with
// exponent s >= 0 (s = 0 degenerates to uniform). Used for skewed key and
// destination popularity in the Cache workload.
func (r *Source) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s == 0 {
		return r.Intn(n)
	}
	// Inverse transform over the normalized harmonic weights. n is small
	// (tens of servers), so a linear scan is fine and allocation-free.
	u := r.Float64()
	var total float64
	for i := 1; i <= n; i++ {
		total += math.Pow(float64(i), -s)
	}
	target := u * total
	var acc float64
	for i := 1; i <= n; i++ {
		acc += math.Pow(float64(i), -s)
		if acc >= target {
			return i - 1
		}
	}
	return n - 1
}

// Categorical returns an index drawn with probability proportional to
// weights[i]. It panics if weights is empty or sums to <= 0.
func (r *Source) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with zero total weight")
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if acc > target {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
