package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("workload")
	c2 := parent.Split("collector")
	if c1.Uint64() == c2.Uint64() {
		t.Error("differently-labeled children produced identical first output")
	}
	// Same label from identically-positioned parents must match.
	p1, p2 := New(7), New(7)
	a := p1.Split("x")
	b := p2.Split("x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-label children diverged at step %d", i)
		}
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(25)
	}
	mean := sum / n
	if math.Abs(mean-25) > 0.5 {
		t.Errorf("Exp(25) mean = %v", mean)
	}
}

func TestParetoSupport(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(10, 1.5)
		if v < 10 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(10, 1000, 1.2)
		if v < 10 || v > 1000 {
			t.Fatalf("BoundedPareto out of [10,1000]: %v", v)
		}
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	// The median should sit near the low end: most mass near xm.
	r := New(19)
	const n = 50000
	below := 0
	for i := 0; i < n; i++ {
		if r.BoundedPareto(1, 10000, 1.1) < 10 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.75 {
		t.Errorf("only %.2f of bounded-Pareto mass below 10x the minimum; want heavy head", frac)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(29)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(31)
	const p = 0.25
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // 3
	got := sum / n
	if math.Abs(got-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want %v", p, got, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Zipf(10, 1.0)]++
	}
	if counts[0] <= counts[9]*3 {
		t.Errorf("Zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
	// s=0 is uniform.
	counts0 := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts0[r.Zipf(4, 0)]++
	}
	for i, c := range counts0 {
		if c < 8000 || c > 12000 {
			t.Errorf("Zipf(4,0) bucket %d = %d, want ~10000", i, c)
		}
	}
}

func TestCategorical(t *testing.T) {
	r := New(41)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("categorical ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(1)
	for _, w := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// Property: Bool(p) never fires for p<=0 and always fires for p>=1.
func TestQuickBoolEdges(t *testing.T) {
	r := New(47)
	f := func(x uint16) bool {
		return !r.Bool(0) && !r.Bool(-1) && r.Bool(1) && r.Bool(2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Exp is always non-negative; Lognormal is always positive.
func TestQuickPositivity(t *testing.T) {
	r := New(53)
	f := func(mRaw uint16) bool {
		m := float64(mRaw%1000) + 1
		return r.Exp(m) >= 0 && r.Lognormal(math.Log(m), 0.5) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
