package fault

import (
	"fmt"
	"strconv"
	"strings"

	"mburst/internal/rng"
	"mburst/internal/simclock"
)

// Grammar defaults for under-specified faults, chosen against the paper's
// operating point (25 µs byte-counter polling, §4.1): an 8× access-latency
// spike pushes a 7 µs read past the sampling interval, and a 500 µs stall
// overruns ~20 boundaries per poll — both visibly drive Missed up without
// ending the window.
const (
	DefaultLatencyFactor = 8
	DefaultStallDelay    = 500 * simclock.Microsecond
	// DefaultPersistFrac is the fraction of a torn or short write's
	// payload that reaches the disk before the failure.
	DefaultPersistFrac = 0.5
)

// GenConfig parameterizes randomized schedule generation. Each P* field is
// the per-window probability of injecting one fault of that kind; DurFrac
// sizes the activation window. The zero GenConfig generates the empty
// schedule for every seed.
type GenConfig struct {
	// PStuck / PLatency / PStall / PRestart / POutage / PDisk are the
	// per-window injection probabilities, each in [0, 1].
	PStuck   float64
	PLatency float64
	PStall   float64
	PRestart float64
	POutage  float64
	PDisk    float64
	// PKill / PTorn / PShort are the collector-crash probabilities: a
	// process kill, a kill mid-archive-write (torn tail), and a short
	// write the storage stack reports as durable.
	PKill  float64
	PTorn  float64
	PShort float64
	// DurFrac is each fault's active span as a fraction of the window
	// (default 0.15).
	DurFrac float64
	// LatencyFactor is the read-latency multiplier (default 8).
	LatencyFactor float64
	// StallDelay is the per-poll stall (default 500 µs).
	StallDelay simclock.Duration
	// PersistFrac is the payload fraction a torn or short write persists
	// (default 0.5).
	PersistFrac float64
}

// Default returns an aggressive chaos mix: every poller-visible kind at
// even odds plus occasional restart/outage/disk faults — the soak's
// standard diet.
func Default() GenConfig {
	return GenConfig{
		PStuck:   0.5,
		PLatency: 0.5,
		PStall:   0.5,
		PRestart: 0.25,
		POutage:  0.25,
		PDisk:    0.1,
	}
}

// CrashMix returns the collector-crash soak's diet: frequent process
// kills, regular torn tails, occasional fsync lies — and nothing that
// perturbs the sampling plane, so recovery is measured in isolation.
func CrashMix() GenConfig {
	return GenConfig{
		PKill:  0.9,
		PTorn:  0.5,
		PShort: 0.4,
	}
}

func (c *GenConfig) applyDefaults() {
	if c.DurFrac == 0 {
		c.DurFrac = 0.15
	}
	if c.LatencyFactor == 0 {
		c.LatencyFactor = DefaultLatencyFactor
	}
	if c.StallDelay == 0 {
		c.StallDelay = DefaultStallDelay
	}
	if c.PersistFrac == 0 {
		c.PersistFrac = DefaultPersistFrac
	}
}

// Validate reports the first problem with the configuration.
func (c GenConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"stuck", c.PStuck}, {"latency", c.PLatency}, {"stall", c.PStall},
		{"restart", c.PRestart}, {"outage", c.POutage}, {"disk", c.PDisk},
		{"kill", c.PKill}, {"torn", c.PTorn}, {"shortw", c.PShort},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: probability %s = %v outside [0,1]", p.name, p.v)
		}
	}
	if c.DurFrac < 0 || c.DurFrac > 1 {
		return fmt.Errorf("fault: DurFrac = %v outside [0,1]", c.DurFrac)
	}
	if c.LatencyFactor < 0 || (c.LatencyFactor > 0 && c.LatencyFactor < 1) {
		return fmt.Errorf("fault: LatencyFactor = %v < 1", c.LatencyFactor)
	}
	if c.StallDelay < 0 {
		return fmt.Errorf("fault: StallDelay = %v < 0", c.StallDelay)
	}
	if c.PersistFrac < 0 || c.PersistFrac > 1 {
		return fmt.Errorf("fault: PersistFrac = %v outside [0,1]", c.PersistFrac)
	}
	return nil
}

// Generate derives a schedule for one window of the given duration from
// src. The result is a pure function of (src state, cfg, window): the same
// seeded stream always yields the same schedule. Each kind consumes a
// fixed number of draws whether or not it fires, so adding a kind to the
// mix never perturbs the placement of the others.
func Generate(src *rng.Source, cfg GenConfig, window simclock.Duration) Schedule {
	cfg.applyDefaults()
	var s Schedule
	if window <= 0 {
		return s
	}
	dur := simclock.Duration(float64(window) * cfg.DurFrac)
	place := func(p float64) (simclock.Duration, bool) {
		// Fixed two draws per kind: the coin and the placement.
		coin := src.Float64()
		at := simclock.Duration(src.Float64() * float64(window-dur))
		return at, coin < p && p > 0
	}
	if at, ok := place(cfg.PStuck); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindStuckReads, At: at, Dur: dur})
	}
	if at, ok := place(cfg.PLatency); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindReadLatency, At: at, Dur: dur, Factor: cfg.LatencyFactor})
	}
	if at, ok := place(cfg.PStall); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindCPUStall, At: at, Dur: dur, Delay: cfg.StallDelay})
	}
	if at, ok := place(cfg.PRestart); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindAgentRestart, At: at})
	}
	if at, ok := place(cfg.POutage); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindCollectorOutage, At: at, Dur: dur})
	}
	if at, ok := place(cfg.PDisk); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindDiskError, At: at, Dur: dur})
	}
	// Crash kinds draw after the legacy six, so enabling them never moves
	// an existing schedule's placements.
	if at, ok := place(cfg.PKill); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindCollectorKill, At: at})
	}
	if at, ok := place(cfg.PTorn); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindTornWrite, At: at, Factor: cfg.PersistFrac})
	}
	if at, ok := place(cfg.PShort); ok {
		s.Faults = append(s.Faults, Fault{Kind: KindShortWrite, At: at, Factor: cfg.PersistFrac})
	}
	return s
}

// ParseGen parses the "rand" flag grammar for randomized schedules:
// "rand" alone selects Default(); "rand:k=v,..." overrides per-kind
// probabilities (stuck, latency, stall, restart, outage, disk, kill,
// torn, shortw) and the shared knobs durfrac, factor, persistfrac, and
// stalldelay (a Go duration).
//
// Example: "rand:stuck=0.8,stall=0.5,durfrac=0.2".
func ParseGen(spec string) (GenConfig, error) {
	cfg := Default()
	rest, ok := strings.CutPrefix(spec, "rand")
	if !ok {
		return cfg, fmt.Errorf("fault: generator spec %q must start with \"rand\"", spec)
	}
	rest = strings.TrimPrefix(rest, ":")
	if rest == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("fault: generator option %q lacks '='", kv)
		}
		if key == "stalldelay" {
			d, err := parseDur(val)
			if err != nil {
				return cfg, err
			}
			cfg.StallDelay = d
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return cfg, fmt.Errorf("fault: generator option %q: %w", kv, err)
		}
		switch key {
		case "stuck":
			cfg.PStuck = f
		case "latency":
			cfg.PLatency = f
		case "stall":
			cfg.PStall = f
		case "restart":
			cfg.PRestart = f
		case "outage":
			cfg.POutage = f
		case "disk":
			cfg.PDisk = f
		case "kill":
			cfg.PKill = f
		case "torn":
			cfg.PTorn = f
		case "shortw":
			cfg.PShort = f
		case "durfrac":
			cfg.DurFrac = f
		case "factor":
			cfg.LatencyFactor = f
		case "persistfrac":
			cfg.PersistFrac = f
		default:
			return cfg, fmt.Errorf("fault: unknown generator option %q", key)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}
