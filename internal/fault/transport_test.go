package fault

import (
	"bytes"
	"errors"
	"io"
	"sync/atomic"
	"testing"

	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/simclock"
)

type nopWC struct{ bytes.Buffer }

func (n *nopWC) Close() error { return nil }

func TestGateDialAndWrite(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	g := NewGate(m)
	var conn nopWC
	dial := g.Dialer(func() (io.WriteCloser, error) { return &conn, nil })

	wc, err := dial()
	if err != nil {
		t.Fatalf("dial through up gate: %v", err)
	}
	if _, err := wc.Write([]byte("ok")); err != nil {
		t.Fatalf("write through up gate: %v", err)
	}

	g.Down()
	if !g.IsDown() {
		t.Fatal("IsDown() = false after Down()")
	}
	if _, err := dial(); !errors.Is(err, ErrInjected) {
		t.Errorf("dial through down gate: err = %v, want ErrInjected", err)
	}
	// A connection established before the outage dies on its next write.
	if _, err := wc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write through down gate: err = %v, want ErrInjected", err)
	}

	g.Up()
	if _, err := dial(); err != nil {
		t.Errorf("dial after Up(): %v", err)
	}
	if _, err := wc.Write([]byte("y")); err != nil {
		t.Errorf("write after Up(): %v", err)
	}
	if got := m.DialErrors.Value(); got != 1 {
		t.Errorf("DialErrors = %d, want 1", got)
	}
	if got := m.WriteErrors.Value(); got != 1 {
		t.Errorf("WriteErrors = %d, want 1", got)
	}
}

func TestGateNilMetrics(t *testing.T) {
	g := NewGate(nil)
	g.Down()
	dial := g.Dialer(func() (io.WriteCloser, error) { return &nopWC{}, nil })
	if _, err := dial(); !errors.Is(err, ErrInjected) {
		t.Errorf("nil-metrics gate dial: err = %v, want ErrInjected", err)
	}
}

func TestFlakyDialerDeterministic(t *testing.T) {
	fails := func(seed uint64) []bool {
		src := rng.New(seed).Split("dial")
		dial := FlakyDialer(func() (io.WriteCloser, error) { return &nopWC{}, nil }, src, 0.5, nil)
		out := make([]bool, 32)
		for i := range out {
			_, err := dial()
			out[i] = err != nil
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("dial %d: err = %v, want ErrInjected", i, err)
			}
		}
		return out
	}
	a, b := fails(9), fails(9)
	var nFail int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dial %d", i)
		}
		if a[i] {
			nFail++
		}
	}
	if nFail == 0 || nFail == len(a) {
		t.Errorf("pFail=0.5 produced %d/%d failures; want a mix", nFail, len(a))
	}
}

func TestFlakyOpener(t *testing.T) {
	var failing atomic.Bool
	var opened int
	open := FlakyOpener(func(path string) (io.WriteCloser, error) {
		opened++
		return &nopWC{}, nil
	}, &failing, nil)

	if _, err := open("w0.bin"); err != nil {
		t.Fatalf("open with disk healthy: %v", err)
	}
	failing.Store(true)
	if _, err := open("w1.bin"); !errors.Is(err, ErrInjected) {
		t.Errorf("open with disk failing: err = %v, want ErrInjected", err)
	}
	failing.Store(false)
	if _, err := open("w2.bin"); err != nil {
		t.Fatalf("open after recovery: %v", err)
	}
	if opened != 2 {
		t.Errorf("underlying opener called %d times, want 2", opened)
	}
}

func TestPollerInjector(t *testing.T) {
	s, err := ParseSchedule("stuck@10ms+5ms,latency@20ms+10ms:x8,stall@25ms+10ms:500µs")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	inj := NewPollerInjector(s, m)
	base := 7 * simclock.Microsecond

	if d := inj.PollDelay(0, base); d != 0 {
		t.Errorf("PollDelay before faults = %v, want 0", d)
	}
	if inj.ReadStuck(0) {
		t.Error("ReadStuck before faults = true")
	}
	if !inj.ReadStuck(12 * simclock.Millisecond) {
		t.Error("ReadStuck inside stuck window = false")
	}
	// Latency only: (8-1)×7µs = 49µs extra.
	if d := inj.PollDelay(22*simclock.Millisecond, base); d != 49*simclock.Microsecond {
		t.Errorf("PollDelay in latency window = %v, want 49µs", d)
	}
	// Latency and stall overlap: 49µs + 500µs.
	if d := inj.PollDelay(26*simclock.Millisecond, base); d != 549*simclock.Microsecond {
		t.Errorf("PollDelay in overlap = %v, want 549µs", d)
	}
	// Stall only.
	if d := inj.PollDelay(31*simclock.Millisecond, base); d != 500*simclock.Microsecond {
		t.Errorf("PollDelay in stall window = %v, want 500µs", d)
	}
	if got := m.StuckPolls.Value(); got != 1 {
		t.Errorf("StuckPolls = %d, want 1", got)
	}
	if m.DelayNanos.Value() == 0 {
		t.Error("DelayNanos not accumulated")
	}

	// Empty schedule injects nothing and touches no metrics.
	quiet := NewPollerInjector(Schedule{}, nil)
	if d := quiet.PollDelay(22*simclock.Millisecond, base); d != 0 {
		t.Errorf("empty schedule PollDelay = %v, want 0", d)
	}
	if quiet.ReadStuck(12 * simclock.Millisecond) {
		t.Error("empty schedule ReadStuck = true")
	}
}
