package fault

import (
	"net"
	"testing"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/eventq"
	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// waitSamples blocks until the sink has ingested n samples.
func waitSamples(t *testing.T, sink *collector.MemSink, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(sink.Samples()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("collector got %d/%d samples", len(sink.Samples()), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAgentRestartRecovery is the end-to-end degradation story: an agent
// crashes mid-campaign, restarts with a bumped epoch, and a stale batch
// from its dead incarnation straggles in afterwards. The epoch-gated
// collector drops the straggler, and gap-aware reconstruction over the
// delivered stream recovers the exact ASIC byte total — the crash costs
// resolution (one wide span over the downtime), never bytes.
func TestAgentRestartRecovery(t *testing.T) {
	// One switch outlives both agent incarnations: restarts do not reset
	// ASIC counters.
	sw := asic.New(asic.Config{
		PortSpeeds:  []uint64{10e9, 40e9},
		BufferBytes: 1 << 20,
		Alpha:       1,
	})
	full := asic.TrafficProfile{0, 0, 0, 0, 0, 1}
	sched := eventq.NewScheduler()
	end := simclock.Epoch.Add(60 * simclock.Millisecond)
	var drive func(now simclock.Time)
	drive = func(now simclock.Time) {
		sw.OfferTx(0, 1500, full)
		sw.Tick(simclock.Micros(10))
		if now < end {
			sched.At(now.Add(simclock.Micros(10)), drive)
		}
	}
	sched.At(simclock.Epoch, drive)

	// pollPhase records one incarnation's samples, with ASIC ground truth
	// captured at each emission.
	pollPhase := func(until simclock.Time) (samples []wire.Sample, truth []uint64) {
		p, err := collector.NewPoller(collector.PollerConfig{
			Interval:      25 * simclock.Microsecond,
			Counters:      []collector.CounterSpec{{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}},
			DedicatedCore: true,
		}, sw, rng.New(9), collector.EmitterFunc(func(s wire.Sample) {
			samples = append(samples, s)
			truth = append(truth, sw.Port(0).Bytes(asic.TX))
		}))
		if err != nil {
			t.Fatal(err)
		}
		p.Install(sched)
		sched.RunUntil(until)
		p.Stop()
		return samples, truth
	}

	// Incarnation 1 polls to t=30ms, crashes; incarnation 2 restarts after
	// 5ms of downtime and polls to t=60ms. Traffic flows throughout.
	phase1, truth1 := pollPhase(simclock.Epoch.Add(30 * simclock.Millisecond))
	sched.RunUntil(simclock.Epoch.Add(35 * simclock.Millisecond)) // downtime
	phase2, truth2 := pollPhase(end)
	if len(phase1) < 10 || len(phase2) < 10 {
		t.Fatalf("phases too short: %d, %d", len(phase1), len(phase2))
	}

	// Epoch-gated collector service.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := collector.NewServerMetrics(obs.NewRegistry())
	sink := &collector.MemSink{}
	srv := collector.ServeConfigured(ln, sink.Handle, collector.ServerConfig{
		Metrics:   reg,
		EpochGate: true,
	})
	defer srv.Close()

	dial := func() *collector.Client {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return collector.NewClient(conn, 1, 64)
	}

	// Incarnation 1 delivers most of its stream, crashing before the tail:
	// the last crashLost samples die in the agent's buffer.
	const crashLost = 40
	agent1 := dial()
	agent1.SetEpoch(1)
	delivered1 := phase1[:len(phase1)-crashLost]
	for _, s := range delivered1 {
		agent1.Emit(s)
	}
	if err := agent1.Flush(); err != nil {
		t.Fatal(err)
	}
	// The restart happens after the crash: incarnation 1's accepted bytes
	// are fully ingested before incarnation 2 exists. Without this
	// barrier agent 1's in-flight batches could land after the epoch
	// bump and be dropped as stale — a different (valid) scenario than
	// the one this test pins.
	waitSamples(t, sink, len(delivered1))

	// Incarnation 2 comes up with a bumped epoch and streams its phase.
	agent2 := dial()
	agent2.SetEpoch(2)
	for _, s := range phase2 {
		agent2.Emit(s)
	}
	if err := agent2.Flush(); err != nil {
		t.Fatal(err)
	}
	waitSamples(t, sink, len(delivered1)+len(phase2))

	// The dead incarnation's retransmit straggles in after the restart —
	// a duplicate of its final batch that would corrupt deltas if admitted.
	straggler := dial()
	straggler.SetEpoch(1)
	for _, s := range delivered1[len(delivered1)-8:] {
		straggler.Emit(s)
	}
	if err := straggler.Flush(); err != nil {
		t.Fatal(err)
	}

	want := len(delivered1) + len(phase2)
	// Give the straggler a moment to (wrongly) land, then check it didn't.
	time.Sleep(20 * time.Millisecond)
	got := sink.Samples()
	if len(got) != want {
		t.Fatalf("delivered %d samples, want %d (straggler admitted?)", len(got), want)
	}
	if v := reg.StaleBatches.Value(); v == 0 {
		t.Error("stale straggler batch not counted as dropped")
	}
	if v := reg.EpochRestarts.Value(); v != 1 {
		t.Errorf("epoch restarts = %d, want 1", v)
	}

	// The delivered stream is the two incarnations in order; recovery over
	// it must equal the ASIC ground truth exactly, downtime gap included.
	wantBytes := truth2[len(truth2)-1] - truth1[0]
	gotBytes, err := analysis.RecoveredBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if gotBytes != wantBytes {
		t.Fatalf("recovered %d bytes across restart, ASIC ground truth %d", gotBytes, wantBytes)
	}
	points, st, err := analysis.GapAwareUtilization(got, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != wantBytes {
		t.Errorf("GapStats.Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	for i, pt := range points {
		if pt.Util > 1+1e-6 {
			t.Errorf("span %d util %v super-physical", i, pt.Util)
		}
	}
	// The crash + downtime surfaces as exactly one wide span bridging the
	// last delivered phase-1 sample and the first phase-2 sample.
	gapStart := delivered1[len(delivered1)-1].Time
	gapEnd := phase2[0].Time
	var bridged bool
	for _, pt := range points {
		if pt.Start == gapStart && pt.End == gapEnd {
			bridged = true
		}
	}
	if !bridged {
		t.Errorf("no span bridges the crash gap [%v, %v]", gapStart, gapEnd)
	}
}
