// Package fault is the deterministic fault-injection plane for the
// collection pipeline.
//
// The paper's framework runs in a hostile environment: kernel interrupts
// and contended switch CPUs stall the sampling loop (§3, Table 1), agents
// restart, collectors flap, and disks fill. Its central robustness
// argument is that cumulative counters turn every missed poll into lost
// *resolution*, never lost *data* — throughput between any two successful
// reads is exact. This package makes that argument testable end to end: a
// seeded Schedule describes faults declaratively (kind + activation window
// + parameters), and per-layer injectors apply them to ASIC counter reads,
// the poller's CPU, the agent transport, the collector service, and the
// trace writer.
//
// Determinism is non-negotiable (DESIGN.md §4): schedules are generated
// from internal/rng streams and expressed in window-relative simulated
// time, so a campaign run with a given seed and fault configuration
// reproduces bit-identical samples. Nothing in this package reads the wall
// clock or global randomness.
//
// Fault kinds and the layer each one exercises:
//
//	stuck    ASIC counter reads return the previously latched value
//	         (register bus error / firmware stall); the read does not
//	         reach the hardware, so clear-on-read registers keep
//	         accumulating. Applied by PollerInjector.
//	latency  ASIC access-latency spike: reads take Factor× the modeled
//	         access cost (contended switch CPU ↔ ASIC bus). Applied by
//	         PollerInjector.
//	stall    poller CPU stall: every poll pays an extra Delay (the §3
//	         scheduling-jitter regime), driving Missed up. Applied by
//	         PollerInjector.
//	restart  agent crash/restart boundary: the harness tears the agent
//	         down at the offset and restarts it with the next Epoch.
//	outage   collector outage window: dials fail and live connections
//	         drop. Applied by Gate/FlakyDialer at the harness level.
//	disk     trace-writer disk errors: window-file writes fail. Applied
//	         by FlakyOpener.
//	kill     collector process kill: the collector dies at the offset
//	         with its archive segment open, and must resume from the
//	         checkpoint plus archive tail. Applied by the crash-soak
//	         harness.
//	torn     torn archive write: the collector dies mid-write, leaving a
//	         partial frame on the open segment's tail (Factor is the
//	         persisted fraction). Applied by WriteChaos.
//	shortw   short archive write: the write reports success but persists
//	         only Factor of the payload — the storage stack lied about
//	         durability, surfacing as a resume Shortfall. Applied by
//	         WriteChaos.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mburst/internal/simclock"
)

// Kind enumerates the injectable fault families.
type Kind int

const (
	// KindStuckReads freezes ASIC counter reads at their last value.
	KindStuckReads Kind = iota
	// KindReadLatency multiplies the poll's counter-access cost.
	KindReadLatency
	// KindCPUStall adds a fixed delay to every poll.
	KindCPUStall
	// KindAgentRestart marks an agent crash/restart boundary.
	KindAgentRestart
	// KindCollectorOutage marks a collector outage window.
	KindCollectorOutage
	// KindDiskError marks a trace-writer disk-error window.
	KindDiskError
	// KindCollectorKill marks a collector process kill (crash + resume).
	KindCollectorKill
	// KindTornWrite tears the collector's next archive write: a crash
	// mid-write leaves a partial frame on the segment tail.
	KindTornWrite
	// KindShortWrite makes the collector's next archive write persist
	// only a prefix while reporting success (the fsync lie).
	KindShortWrite
	numKinds
)

// String names the kind using the schedule grammar's tokens.
func (k Kind) String() string {
	switch k {
	case KindStuckReads:
		return "stuck"
	case KindReadLatency:
		return "latency"
	case KindCPUStall:
		return "stall"
	case KindAgentRestart:
		return "restart"
	case KindCollectorOutage:
		return "outage"
	case KindDiskError:
		return "disk"
	case KindCollectorKill:
		return "kill"
	case KindTornWrite:
		return "torn"
	case KindShortWrite:
		return "shortw"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// parseKind inverts String.
func parseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// Fault is one scheduled fault: a kind active over a window-relative time
// span, plus kind-specific parameters.
type Fault struct {
	Kind Kind
	// At is the activation offset from the start of the measurement
	// window (poller install time), in simulated time.
	At simclock.Duration
	// Dur is how long the fault stays active. Zero means instantaneous
	// (meaningful for restart boundaries).
	Dur simclock.Duration
	// Factor scales the poll's base access cost while a latency fault is
	// active (e.g. 8 = reads are 8× slower). For torn and short writes it
	// is instead the fraction of the payload persisted before the
	// failure, in [0, 1].
	Factor float64
	// Delay is the extra per-poll cost while a stall fault is active.
	Delay simclock.Duration
}

// End returns the offset at which the fault deactivates.
func (f Fault) End() simclock.Duration { return f.At + f.Dur }

// active reports whether the fault covers offset off (half-open [At, End)).
func (f Fault) active(off simclock.Duration) bool {
	return off >= f.At && off < f.End()
}

// String formats the fault in the schedule grammar.
func (f Fault) String() string {
	s := fmt.Sprintf("%s@%s+%s", f.Kind, f.At, f.Dur)
	switch f.Kind {
	case KindReadLatency, KindTornWrite, KindShortWrite:
		if f.Factor > 0 {
			s += ":x" + strconv.FormatFloat(f.Factor, 'g', -1, 64)
		}
	case KindCPUStall:
		if f.Delay > 0 {
			s += ":" + f.Delay.String()
		}
	}
	return s
}

// Validate reports the first problem with the fault.
func (f Fault) Validate() error {
	switch {
	case f.Kind < 0 || f.Kind >= numKinds:
		return fmt.Errorf("fault: bad kind %d", int(f.Kind))
	case f.At < 0:
		return fmt.Errorf("fault: negative offset %v", f.At)
	case f.Dur < 0:
		return fmt.Errorf("fault: negative duration %v", f.Dur)
	case f.Kind == KindReadLatency && f.Factor < 1:
		return fmt.Errorf("fault: latency factor %v < 1", f.Factor)
	case f.Kind == KindCPUStall && f.Delay <= 0:
		return fmt.Errorf("fault: stall with no delay")
	case (f.Kind == KindTornWrite || f.Kind == KindShortWrite) && (f.Factor < 0 || f.Factor > 1):
		return fmt.Errorf("fault: persisted fraction %v outside [0,1]", f.Factor)
	}
	return nil
}

// Schedule is a deterministic set of faults for one measurement window.
// The zero Schedule injects nothing.
type Schedule struct {
	Faults []Fault
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Faults) == 0 }

// Validate checks every fault.
func (s Schedule) Validate() error {
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault: entry %d: %w", i, err)
		}
	}
	return nil
}

// Active returns the first fault of the given kind covering offset off.
// Schedules are small (a handful of entries), so a linear scan keeps the
// poll path allocation-free and branch-predictable.
func (s Schedule) Active(k Kind, off simclock.Duration) (Fault, bool) {
	for _, f := range s.Faults {
		if f.Kind == k && f.active(off) {
			return f, true
		}
	}
	return Fault{}, false
}

// Of returns the schedule's faults of one kind, in offset order.
func (s Schedule) Of(k Kind) []Fault {
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String formats the schedule in the grammar ParseSchedule accepts.
func (s Schedule) String() string {
	if s.Empty() {
		return "none"
	}
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the comma-separated schedule grammar:
//
//	schedule := fault ("," fault)*
//	fault    := kind "@" offset "+" dur [":" param]
//	kind     := stuck | latency | stall | restart | outage | disk |
//	            kill | torn | shortw
//	offset   := Go duration (window-relative, e.g. 10ms, 250us)
//	param    := "x" factor (latency: access-cost multiplier;
//	            torn/shortw: persisted fraction) |
//	            extra-delay duration (stall)
//
// Example: "stuck@10ms+5ms,latency@20ms+5ms:x8,stall@30ms+2ms:500us".
// The literal "none" (or an empty string) parses to the empty schedule.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		f, err := parseFault(strings.TrimSpace(part))
		if err != nil {
			return Schedule{}, err
		}
		s.Faults = append(s.Faults, f)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func parseFault(part string) (Fault, error) {
	var f Fault
	kindSpan, rest, ok := strings.Cut(part, "@")
	if !ok {
		return f, fmt.Errorf("fault: %q lacks '@offset'", part)
	}
	k, err := parseKind(kindSpan)
	if err != nil {
		return f, err
	}
	f.Kind = k
	span, param, hasParam := strings.Cut(rest, ":")
	offStr, durStr, hasDur := strings.Cut(span, "+")
	f.At, err = parseDur(offStr)
	if err != nil {
		return f, fmt.Errorf("fault: %q: %w", part, err)
	}
	if hasDur {
		f.Dur, err = parseDur(durStr)
		if err != nil {
			return f, fmt.Errorf("fault: %q: %w", part, err)
		}
	}
	if hasParam {
		switch k {
		case KindReadLatency, KindTornWrite, KindShortWrite:
			factor, ok := strings.CutPrefix(param, "x")
			if !ok {
				return f, fmt.Errorf("fault: %q: %s parameter must be xN", part, k)
			}
			f.Factor, err = strconv.ParseFloat(factor, 64)
			if err != nil {
				return f, fmt.Errorf("fault: %q: %w", part, err)
			}
		case KindCPUStall:
			f.Delay, err = parseDur(param)
			if err != nil {
				return f, fmt.Errorf("fault: %q: %w", part, err)
			}
		default:
			return f, fmt.Errorf("fault: %q: kind %s takes no parameter", part, k)
		}
	}
	// Grammar defaults so terse specs stay meaningful.
	if k == KindReadLatency && f.Factor == 0 {
		f.Factor = DefaultLatencyFactor
	}
	if k == KindCPUStall && f.Delay == 0 {
		f.Delay = DefaultStallDelay
	}
	if (k == KindTornWrite || k == KindShortWrite) && f.Factor == 0 {
		f.Factor = DefaultPersistFrac
	}
	return f, nil
}

// parseDur parses a Go duration string into simulated time.
func parseDur(s string) (simclock.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("fault: negative duration %q", s)
	}
	return simclock.FromStd(d), nil
}
