package fault

import (
	"strings"
	"testing"

	"mburst/internal/rng"
	"mburst/internal/simclock"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "stuck@10ms+5ms,latency@20ms+5ms:x8,stall@30ms+2ms:500µs,restart@40ms+0ns,outage@50ms+10ms,disk@60ms+10ms"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", spec, err)
	}
	if len(s.Faults) != 6 {
		t.Fatalf("got %d faults, want 6", len(s.Faults))
	}
	if got := s.String(); got != spec {
		t.Errorf("round trip:\n got %q\nwant %q", got, spec)
	}
	back, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.String() != s.String() {
		t.Errorf("reparse changed schedule: %q vs %q", back.String(), s.String())
	}
}

func TestParseScheduleDefaultsAndEmpty(t *testing.T) {
	for _, spec := range []string{"", "none", "  none  "} {
		s, err := ParseSchedule(spec)
		if err != nil || !s.Empty() {
			t.Errorf("ParseSchedule(%q) = %v, %v; want empty, nil", spec, s, err)
		}
	}
	s, err := ParseSchedule("latency@1ms+1ms,stall@5ms+1ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Faults[0].Factor; got != DefaultLatencyFactor {
		t.Errorf("latency default factor = %v, want %v", got, float64(DefaultLatencyFactor))
	}
	if got := s.Faults[1].Delay; got != DefaultStallDelay {
		t.Errorf("stall default delay = %v, want %v", got, DefaultStallDelay)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus@1ms+1ms",     // unknown kind
		"stuck1ms",          // no @
		"stuck@zzz+1ms",     // bad offset
		"stuck@1ms+zzz",     // bad duration
		"latency@1ms+1ms:8", // latency param must be xN
		"stuck@1ms+1ms:x2",  // stuck takes no parameter
		"stall@1ms+1ms:x2",  // stall param is a duration
		"stuck@-1ms+1ms",    // negative offset
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", spec)
		}
	}
}

func TestActiveHalfOpen(t *testing.T) {
	s := Schedule{Faults: []Fault{{Kind: KindStuckReads, At: 10 * simclock.Millisecond, Dur: 5 * simclock.Millisecond}}}
	cases := []struct {
		off  simclock.Duration
		want bool
	}{
		{9 * simclock.Millisecond, false},
		{10 * simclock.Millisecond, true},
		{14*simclock.Millisecond + 999*simclock.Microsecond, true},
		{15 * simclock.Millisecond, false},
	}
	for _, c := range cases {
		if _, got := s.Active(KindStuckReads, c.off); got != c.want {
			t.Errorf("Active(stuck, %v) = %v, want %v", c.off, got, c.want)
		}
		if _, got := s.Active(KindCPUStall, c.off); got {
			t.Errorf("Active(stall, %v) = true for stuck-only schedule", c.off)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	const window = 100 * simclock.Millisecond
	cfg := Default()
	a := Generate(rng.New(42).Split("fault"), cfg, window)
	b := Generate(rng.New(42).Split("fault"), cfg, window)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n a=%s\n b=%s", a, b)
	}
	c := Generate(rng.New(43).Split("fault"), cfg, window)
	if a.String() == c.String() {
		t.Errorf("different seeds produced identical non-trivial schedules: %s", a)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated schedule invalid: %v", err)
	}
	for _, f := range a.Faults {
		if f.End() > window {
			t.Errorf("fault %s overruns window %v", f, window)
		}
	}
}

func TestGenerateFixedDrawLayout(t *testing.T) {
	// Disabling a kind must not move the placement of the kinds after it:
	// each kind consumes exactly two draws whether or not it fires.
	const window = 100 * simclock.Millisecond
	full := Default()
	noStuck := full
	noStuck.PStuck = 0
	a := Generate(rng.New(7).Split("fault"), full, window)
	b := Generate(rng.New(7).Split("fault"), noStuck, window)
	for _, k := range []Kind{KindReadLatency, KindCPUStall, KindAgentRestart, KindCollectorOutage, KindDiskError} {
		fa, fb := a.Of(k), b.Of(k)
		if len(fa) != len(fb) {
			t.Fatalf("kind %s: fired %d vs %d times after disabling stuck", k, len(fa), len(fb))
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Errorf("kind %s moved after disabling stuck: %s vs %s", k, fa[i], fb[i])
			}
		}
	}
}

func TestGenerateZeroConfig(t *testing.T) {
	s := Generate(rng.New(1), GenConfig{}, simclock.Second)
	if !s.Empty() {
		t.Errorf("zero GenConfig generated %s, want empty", s)
	}
}

func TestParseGen(t *testing.T) {
	cfg, err := ParseGen("rand")
	if err != nil {
		t.Fatalf("ParseGen(rand): %v", err)
	}
	if cfg != Default() {
		t.Errorf("ParseGen(rand) = %+v, want Default()", cfg)
	}
	cfg, err = ParseGen("rand:stuck=0.8,stall=0,durfrac=0.2,factor=4,stalldelay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PStuck != 0.8 || cfg.PStall != 0 || cfg.DurFrac != 0.2 ||
		cfg.LatencyFactor != 4 || cfg.StallDelay != simclock.Millisecond {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	for _, spec := range []string{"x", "rand:zzz=1", "rand:stuck", "rand:stuck=2", "rand:stalldelay=zzz"} {
		if _, err := ParseGen(spec); err == nil {
			t.Errorf("ParseGen(%q) succeeded, want error", spec)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := Schedule{Faults: []Fault{{Kind: KindReadLatency, At: 0, Dur: simclock.Millisecond, Factor: 0.5}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "latency factor") {
		t.Errorf("Validate() = %v, want latency-factor error", err)
	}
}
