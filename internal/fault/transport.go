package fault

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"mburst/internal/collector"
	"mburst/internal/rng"
)

// ErrInjected marks a failure produced by the fault plane. Every error
// returned by this file's wrappers wraps it, so tests and callers can
// distinguish injected failures from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Gate is a scripted availability switch for the collector side of the
// transport. The harness flips it at schedule offsets (outage faults);
// dials and writes through a down gate fail immediately. The flag is
// atomic because the harness (event loop) and the agent's flusher
// goroutine touch it concurrently.
type Gate struct {
	down atomic.Bool
	m    Metrics
}

// NewGate returns an up gate feeding m (which may be nil).
func NewGate(m *Metrics) *Gate {
	g := &Gate{}
	if m != nil {
		g.m = *m
	}
	return g
}

// Down starts an outage: subsequent dials and writes fail.
func (g *Gate) Down() { g.down.Store(true) }

// Up ends the outage.
func (g *Gate) Up() { g.down.Store(false) }

// IsDown reports whether an outage is in progress.
func (g *Gate) IsDown() bool { return g.down.Load() }

// Dialer wraps next so that dials fail while the gate is down and
// established connections die on the first write attempted during an
// outage — modeling a collector crash that also resets live TCP flows,
// which is the case that exercises the client's redial-and-retry path.
func (g *Gate) Dialer(next collector.Dialer) collector.Dialer {
	return func() (io.WriteCloser, error) {
		if g.IsDown() {
			g.m.DialErrors.Inc()
			return nil, fmt.Errorf("fault: collector outage: %w", ErrInjected)
		}
		wc, err := next()
		if err != nil {
			return nil, err
		}
		return &gatedConn{gate: g, wc: wc}, nil
	}
}

// gatedConn fails writes while its gate is down.
type gatedConn struct {
	gate *Gate
	wc   io.WriteCloser
}

func (c *gatedConn) Write(p []byte) (int, error) {
	if c.gate.IsDown() {
		c.gate.m.WriteErrors.Inc()
		return 0, fmt.Errorf("fault: collector outage: %w", ErrInjected)
	}
	return c.wc.Write(p)
}

func (c *gatedConn) Close() error { return c.wc.Close() }

// FlakyDialer fails a seeded fraction of dials, for soak tests that want
// unscripted connection churn on top of scheduled outages. The RNG source
// must be dedicated to this dialer (the flusher goroutine draws from it).
func FlakyDialer(next collector.Dialer, src *rng.Source, pFail float64, m *Metrics) collector.Dialer {
	var mm Metrics
	if m != nil {
		mm = *m
	}
	return func() (io.WriteCloser, error) {
		if pFail > 0 && src.Float64() < pFail {
			mm.DialErrors.Inc()
			return nil, fmt.Errorf("fault: flaky dial: %w", ErrInjected)
		}
		return next()
	}
}

// Opener matches trace.Opener: how the trace writer creates window files.
type Opener func(path string) (io.WriteCloser, error)

// FlakyOpener wraps next so that opens fail while failing is set. The
// harness flips the flag at disk-fault schedule offsets; the trace writer
// surfaces the error to the campaign like a real full or failing disk.
func FlakyOpener(next Opener, failing *atomic.Bool, m *Metrics) Opener {
	var mm Metrics
	if m != nil {
		mm = *m
	}
	return func(path string) (io.WriteCloser, error) {
		if failing.Load() {
			mm.DiskErrors.Inc()
			return nil, fmt.Errorf("fault: disk error opening %s: %w", path, ErrInjected)
		}
		return next(path)
	}
}
