package fault

import (
	"mburst/internal/obs"
	"mburst/internal/simclock"
)

// Metrics instruments the fault plane. Every field is nil-safe: the zero
// Metrics disables telemetry at the cost of one predicted branch per
// update, matching the collector's instrument convention.
type Metrics struct {
	// Scheduled counts faults placed into campaign schedules.
	Scheduled *obs.Counter
	// StuckPolls counts polls whose counter reads were frozen.
	StuckPolls *obs.Counter
	// DelayNanos accumulates simulated poll delay injected by latency and
	// stall faults.
	DelayNanos *obs.Counter
	// DialErrors counts injected transport dial failures.
	DialErrors *obs.Counter
	// WriteErrors counts injected transport write failures.
	WriteErrors *obs.Counter
	// DiskErrors counts injected trace-writer disk failures.
	DiskErrors *obs.Counter
	// TornWrites counts archive writes torn mid-frame (crash mid-write).
	TornWrites *obs.Counter
	// ShortWrites counts archive writes that persisted only a prefix
	// while reporting success.
	ShortWrites *obs.Counter
}

// NewMetrics registers the fault-plane instrument set on reg.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	return &Metrics{
		Scheduled: reg.Counter("mburst_fault_scheduled_total",
			"Faults placed into campaign fault schedules.", labels...),
		StuckPolls: reg.Counter("mburst_fault_stuck_polls_total",
			"Polls whose counter reads returned stale values.", labels...),
		DelayNanos: reg.Counter("mburst_fault_poll_delay_ns_total",
			"Simulated nanoseconds of injected poll delay (latency spikes and CPU stalls).", labels...),
		DialErrors: reg.Counter("mburst_fault_dial_errors_total",
			"Injected collector dial failures.", labels...),
		WriteErrors: reg.Counter("mburst_fault_write_errors_total",
			"Injected transport write failures.", labels...),
		DiskErrors: reg.Counter("mburst_fault_disk_errors_total",
			"Injected trace-writer disk errors.", labels...),
		TornWrites: reg.Counter("mburst_fault_torn_writes_total",
			"Injected archive writes torn mid-frame.", labels...),
		ShortWrites: reg.Counter("mburst_fault_short_writes_total",
			"Injected archive writes that silently persisted a prefix.", labels...),
	}
}

// PollerInjector applies a schedule's measurement-plane faults to one
// sampling loop. It implements collector.PollFault; offsets are relative
// to the poller's install time, matching the schedule's window-relative
// convention. The injector consumes no randomness on the poll path — the
// schedule is the sole source of fault timing — so an empty schedule
// leaves the poller's sample stream bit-identical to an uninjected run.
//
// A PollerInjector is used by a single sampling loop; the shared Metrics
// counters it feeds are atomic.
type PollerInjector struct {
	stuck   []Fault
	latency []Fault
	stall   []Fault
	m       Metrics
}

// NewPollerInjector builds an injector for the poller-visible kinds of s.
// m may be nil.
func NewPollerInjector(s Schedule, m *Metrics) *PollerInjector {
	inj := &PollerInjector{
		stuck:   s.Of(KindStuckReads),
		latency: s.Of(KindReadLatency),
		stall:   s.Of(KindCPUStall),
	}
	if m != nil {
		inj.m = *m
	}
	return inj
}

// firstActive returns the first fault covering off.
func firstActive(faults []Fault, off simclock.Duration) (Fault, bool) {
	for _, f := range faults {
		if f.active(off) {
			return f, true
		}
	}
	return Fault{}, false
}

// PollDelay implements collector.PollFault: the extra cost of a poll
// starting at window offset off, given the loop's fault-free base cost.
func (i *PollerInjector) PollDelay(off, base simclock.Duration) simclock.Duration {
	var extra simclock.Duration
	if f, ok := firstActive(i.latency, off); ok && f.Factor > 1 {
		extra += simclock.Duration(float64(base) * (f.Factor - 1))
	}
	if f, ok := firstActive(i.stall, off); ok {
		extra += f.Delay
	}
	if extra > 0 {
		i.m.DelayNanos.Add(uint64(extra))
	}
	return extra
}

// ReadStuck implements collector.PollFault: whether counter reads at
// window offset off return the previously latched values.
func (i *PollerInjector) ReadStuck(off simclock.Duration) bool {
	if _, ok := firstActive(i.stuck, off); ok {
		i.m.StuckPolls.Inc()
		return true
	}
	return false
}
