package fault

import (
	"fmt"
	"io"
	"sync"
)

// WriteChaos injects the two archive-write failure modes the durable
// collection plane must survive:
//
//   - a torn write — the process dies mid-write, a partial frame lands
//     on the open segment's tail, and the write returns an error (the
//     crash-soak harness then abandons the pipeline, as a real kill
//     would);
//   - a short write — only a prefix reaches the disk but the write
//     reports full success, modeling a storage stack that lies about
//     durability. The archive believes the batch is safe; the lie
//     surfaces after the crash as a resume Shortfall.
//
// Both are one-shot: Arm* primes the next write through any wrapped
// stream, which consumes the arming. Wrap matches the signature of
// trace.ArchiveConfig.WrapWrites, the interposition point between the
// batch encoder and the segment file.
type WriteChaos struct {
	mu        sync.Mutex
	tornFrac  float64
	torn      bool
	shortFrac float64
	short     bool
	m         Metrics
}

// NewWriteChaos returns an unarmed injector feeding m (which may be nil).
func NewWriteChaos(m *Metrics) *WriteChaos {
	c := &WriteChaos{}
	if m != nil {
		c.m = *m
	}
	return c
}

// ArmTorn primes the next write to persist frac of its payload and fail.
func (c *WriteChaos) ArmTorn(frac float64) {
	c.mu.Lock()
	c.torn, c.tornFrac = true, frac
	c.mu.Unlock()
}

// ArmShort primes the next write to persist frac of its payload while
// reporting complete success.
func (c *WriteChaos) ArmShort(frac float64) {
	c.mu.Lock()
	c.short, c.shortFrac = true, frac
	c.mu.Unlock()
}

// Wrap interposes the injector on a segment byte stream. Pass it as
// trace.ArchiveConfig.WrapWrites.
func (c *WriteChaos) Wrap(w io.Writer) io.Writer {
	return &chaosWriter{chaos: c, w: w}
}

type chaosWriter struct {
	chaos *WriteChaos
	w     io.Writer
}

func (cw *chaosWriter) Write(p []byte) (int, error) {
	c := cw.chaos
	c.mu.Lock()
	switch {
	case c.torn:
		c.torn = false
		keep := int(c.tornFrac * float64(len(p)))
		c.mu.Unlock()
		c.m.TornWrites.Inc()
		if keep > 0 {
			if n, err := cw.w.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		return keep, fmt.Errorf("fault: write torn after %d/%d bytes: %w", keep, len(p), ErrInjected)
	case c.short:
		c.short = false
		keep := int(c.shortFrac * float64(len(p)))
		c.mu.Unlock()
		c.m.ShortWrites.Inc()
		if keep > 0 {
			if n, err := cw.w.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		// The lie: the caller is told every byte landed.
		return len(p), nil
	}
	c.mu.Unlock()
	return cw.w.Write(p)
}
