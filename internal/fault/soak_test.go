package fault

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// The chaos soak drives the full poll→sample→reconstruct path under many
// generated fault schedules and checks the paper's cumulative-counter
// invariant end to end (§3, Table 1): faults cost resolution, never bytes.
//
//	(a) every fresh (non-stuck) read equals the ASIC counter exactly, so
//	    recovered bytes between any two fresh polls are ground truth;
//	(b) gap-aware reconstruction conserves bytes and never fabricates a
//	    super-physical burst;
//	(c) a zero-fault schedule is byte-identical to no fault plumbing at
//	    all.

const (
	soakWindow   = 20 * simclock.Millisecond
	soakInterval = 25 * simclock.Microsecond
	soakSpeed    = uint64(10e9)
)

// soakRun is one window of polling under a schedule, with ground truth
// captured at every emission instant.
type soakRun struct {
	samples []wire.Sample
	truth   []uint64 // ASIC byte counter at each sample's emission
	missed  uint64
}

// runSoakWindow polls a steadily-loaded switch for one window under the
// given fault injector (nil = clean).
func runSoakWindow(t *testing.T, pf collector.PollFault) soakRun {
	t.Helper()
	sw := asic.New(asic.Config{
		PortSpeeds:  []uint64{10e9, 40e9},
		BufferBytes: 1 << 20,
		Alpha:       1,
	})
	full := asic.TrafficProfile{0, 0, 0, 0, 0, 1}
	var run soakRun
	p, err := collector.NewPoller(collector.PollerConfig{
		Interval:      soakInterval,
		Counters:      []collector.CounterSpec{{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
		Fault:         pf,
	}, sw, rng.New(77), collector.EmitterFunc(func(s wire.Sample) {
		run.samples = append(run.samples, s)
		run.truth = append(run.truth, sw.Port(0).Bytes(asic.TX))
	}))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	end := simclock.Epoch.Add(soakWindow)
	var drive func(now simclock.Time)
	drive = func(now simclock.Time) {
		sw.OfferTx(0, 1500, full)
		sw.Tick(simclock.Micros(10))
		if now < end {
			sched.At(now.Add(simclock.Micros(10)), drive)
		}
	}
	sched.At(simclock.Epoch, drive)
	sched.RunUntil(end)
	p.Stop()
	run.missed = p.Missed()
	return run
}

// soakReport is the FAULT_soak.json CI artifact. TestChaosSoak owns the
// flat fields; TestCollectorCrashSoak owns CollectorCrash. Each test
// merges into the existing file so either ordering produces the full
// artifact.
type soakReport struct {
	Schedules          int          `json:"schedules"`
	Polls              int          `json:"polls"`
	StuckPolls         int          `json:"stuck_polls"`
	MissedIntervals    uint64       `json:"missed_intervals"`
	Merges             int          `json:"merges"`
	MissedSpans        int          `json:"missed_spans"`
	BytesRecovered     uint64       `json:"bytes_recovered"`
	StallSchedules     int          `json:"stall_schedules"`
	ZeroFaultIdentical bool         `json:"zero_fault_identical"`
	CollectorCrash     *crashReport `json:"collector_crash,omitempty"`
	// Fleet is owned by internal/core's TestFleetCrashSoak (this package
	// cannot import core); keep it opaque so read-merge-write here never
	// drops the fleet ledger.
	Fleet json.RawMessage `json:"fleet,omitempty"`
}

// mergeSoakArtifact read-merge-writes the MBURST_FAULT_OUT artifact:
// update mutates the previously written report (zero if absent), and the
// result replaces the file.
func mergeSoakArtifact(t *testing.T, update func(*soakReport)) {
	t.Helper()
	out := os.Getenv("MBURST_FAULT_OUT")
	if out == "" {
		return
	}
	var report soakReport
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("existing %s is not a soak report: %v", out, err)
		}
	}
	update(&report)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestChaosSoak(t *testing.T) {
	const schedules = 25
	var report soakReport
	report.Schedules = schedules

	clean := runSoakWindow(t, nil)
	if len(clean.samples) == 0 {
		t.Fatal("clean run produced no samples")
	}

	for seed := uint64(0); seed < schedules; seed++ {
		sched := Generate(rng.New(seed).Split("soak"), Default(), soakWindow)
		run := runSoakWindow(t, NewPollerInjector(sched, nil))
		if len(run.samples) < 2 {
			t.Fatalf("seed %d (%s): only %d samples", seed, sched, len(run.samples))
		}
		report.Polls += len(run.samples)
		report.MissedIntervals += run.missed

		// (a) Fresh reads are ground truth, sample by sample; therefore
		// bytes between any two fresh polls are exact.
		firstFresh, lastFresh := -1, -1
		for i, s := range run.samples {
			off := s.Time.Sub(simclock.Epoch)
			if _, stuck := sched.Active(KindStuckReads, off); stuck {
				report.StuckPolls++
				continue
			}
			if s.Value != run.truth[i] {
				t.Fatalf("seed %d (%s): fresh sample %d value %d != ASIC %d",
					seed, sched, i, s.Value, run.truth[i])
			}
			if firstFresh < 0 {
				firstFresh = i
			}
			lastFresh = i
		}
		// Default generation leaves most of the window un-stuck, so every
		// schedule keeps at least one successful poll — the recovery
		// precondition.
		if firstFresh < 0 || lastFresh == firstFresh {
			t.Fatalf("seed %d (%s): fewer than 2 fresh polls", seed, sched)
		}
		wantBytes := run.truth[lastFresh] - run.truth[firstFresh]
		gotBytes, err := analysis.RecoveredBytes(run.samples[firstFresh : lastFresh+1])
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if gotBytes != wantBytes {
			t.Fatalf("seed %d (%s): recovered %d bytes, ASIC ground truth %d",
				seed, sched, gotBytes, wantBytes)
		}
		report.BytesRecovered += gotBytes

		// (b) Gap-aware reconstruction accepts the damaged series,
		// conserves bytes, and stays physical.
		points, st, err := analysis.GapAwareUtilization(run.samples, soakSpeed)
		if err != nil {
			t.Fatalf("seed %d (%s): gap-aware: %v", seed, sched, err)
		}
		if st.Bytes != run.samples[len(run.samples)-1].Value-run.samples[0].Value {
			t.Fatalf("seed %d: GapStats.Bytes = %d, want endpoint delta", seed, st.Bytes)
		}
		var reint float64
		for _, pt := range points {
			if pt.Util > 1+1e-6 {
				t.Fatalf("seed %d (%s): reconstructed util %v super-physical", seed, sched, pt.Util)
			}
			reint += pt.Util * float64(soakSpeed) * pt.Span().Seconds() / 8
		}
		if math.Abs(reint-float64(st.Bytes)) > 1e-6*float64(st.Bytes)+1 {
			t.Fatalf("seed %d: spans re-integrate to %v bytes, want %d", seed, reint, st.Bytes)
		}
		report.Merges += st.Merged
		report.MissedSpans += st.MissedSpans

		// Stall faults must surface as missed intervals — resolution loss
		// is reported, not hidden.
		if _, ok := firstOf(sched, KindCPUStall); ok {
			report.StallSchedules++
			if run.missed <= clean.missed {
				t.Errorf("seed %d (%s): stall schedule missed %d <= clean %d",
					seed, sched, run.missed, clean.missed)
			}
		}
	}

	// (c) Zero-fault identity: an empty schedule's injector is invisible.
	empty := runSoakWindow(t, NewPollerInjector(Schedule{}, nil))
	report.ZeroFaultIdentical = reflect.DeepEqual(empty.samples, clean.samples)
	if !report.ZeroFaultIdentical {
		t.Error("empty fault schedule changed the sample stream")
	}

	mergeSoakArtifact(t, func(r *soakReport) {
		crash, fleet := r.CollectorCrash, r.Fleet
		*r = report
		r.CollectorCrash, r.Fleet = crash, fleet
	})
}

// firstOf returns the first fault of a kind in the schedule.
func firstOf(s Schedule, k Kind) (Fault, bool) {
	for _, f := range s.Faults {
		if f.Kind == k {
			return f, true
		}
	}
	return Fault{}, false
}
