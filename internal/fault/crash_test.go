package fault

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

// The collector-crash soak closes the durability loop the ISSUE's
// tentpole promises: seeded schedules of process kills, torn archive
// writes, and fsync lies against the durable collection plane
// (trace archive + checkpoint/restore + epoch-gated retransmission),
// asserting that every crash recovers to byte-exact fleet state — the
// same live figures, ingest counters, and (shortfall aside) the same
// decoded archive stream as a collector that never died.

const (
	crashBatches  = 40
	crashPerBatch = 8
	crashSpacing  = 25 * simclock.Microsecond
	crashBatchDur = crashPerBatch * crashSpacing
)

// crashBatch builds batch i: monotone multi-sample, a cumulative byte
// counter alternating hot and cold stretches.
func crashBatch(i int) *wire.Batch {
	b := &wire.Batch{Rack: 1, Epoch: 1}
	for j := 0; j < crashPerBatch; j++ {
		seq := i*crashPerBatch + j
		frac := 0.1
		if (seq/6)%2 == 1 {
			frac = 0.95
		}
		b.Samples = append(b.Samples, wire.Sample{
			Time: simclock.Epoch.Add(simclock.Duration(seq) * crashSpacing),
			Port: 1, Dir: asic.TX, Kind: asic.KindBytes,
			Value: uint64(seq) * uint64(frac*31250),
		})
	}
	return b
}

// crashPipeline is one collector incarnation over a shared archive dir.
type crashPipeline struct {
	arch    *trace.ArchiveWriter
	ingest  *collector.DurableIngest
	figures *collector.LiveFigures
	stats   *collector.IngestStats
}

func newCrashPipeline(t *testing.T, arch *trace.ArchiveWriter, ckpt string) *crashPipeline {
	t.Helper()
	figures, err := collector.NewLiveFigures(collector.LiveFiguresConfig{
		SpeedOf: func(uint32, uint16) uint64 { return 10_000_000_000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := &collector.IngestStats{}
	ingest, err := collector.NewDurableIngest(collector.DurableIngestConfig{
		Archive:        arch,
		CheckpointPath: ckpt,
		Every:          4,
		Figures:        figures,
		Stats:          stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &crashPipeline{arch: arch, ingest: ingest, figures: figures, stats: stats}
}

func decodeCrashArchive(t *testing.T, dir string) []wire.Batch {
	t.Helper()
	var out []wire.Batch
	if err := trace.IterArchive(dir, func(b *wire.Batch) error {
		out = append(out, wire.Batch{Rack: b.Rack, Epoch: b.Epoch,
			Samples: append([]wire.Sample(nil), b.Samples...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// crashEvent is one scheduled crash, mapped from window offset to the
// batch index at which it strikes.
type crashEvent struct {
	idx  int
	kind Kind
	frac float64
}

// crashPlan maps a generated schedule's crash faults onto batch indices,
// deduplicated and ordered.
func crashPlan(s Schedule) []crashEvent {
	var events []crashEvent
	for _, f := range s.Faults {
		switch f.Kind {
		case KindCollectorKill, KindTornWrite, KindShortWrite:
			idx := int(f.At / crashBatchDur)
			if idx < 1 {
				idx = 1
			}
			if idx > crashBatches-2 {
				idx = crashBatches - 2
			}
			events = append(events, crashEvent{idx: idx, kind: f.Kind, frac: f.Factor})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].idx < events[j].idx })
	out := events[:0]
	for _, e := range events {
		if len(out) > 0 && out[len(out)-1].idx == e.idx {
			continue // two crashes cannot strike the same batch
		}
		out = append(out, e)
	}
	return out
}

// crashReport is the "collector_crash" section of FAULT_soak.json.
type crashReport struct {
	Schedules        int    `json:"schedules"`
	Kills            int    `json:"kills"`
	TornWrites       int    `json:"torn_writes"`
	ShortWrites      int    `json:"short_writes"`
	Resumes          int    `json:"resumes"`
	ReplayedBatches  uint64 `json:"replayed_batches"`
	ShortfallBatches uint64 `json:"shortfall_batches"`
	ByteExact        bool   `json:"byte_exact"`
}

func TestCollectorCrashSoak(t *testing.T) {
	const schedules = 12
	window := crashBatches * crashBatchDur
	cfg := trace.ArchiveConfig{SegmentBatches: 8, SyncEvery: 2}

	report := crashReport{Schedules: schedules, ByteExact: true}
	exact := func(ok bool, format string, args ...any) {
		if !ok {
			report.ByteExact = false
			t.Errorf(format, args...)
		}
	}

	// One uninterrupted oracle serves every schedule: the crash runs all
	// carry identical traffic.
	oDir := filepath.Join(t.TempDir(), "oracle")
	oArch, err := trace.CreateArchive(oDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newCrashPipeline(t, oArch, filepath.Join(oDir, "checkpoint.json"))
	for i := 0; i < crashBatches; i++ {
		oracle.ingest.Handle(crashBatch(i))
	}
	if err := oracle.ingest.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := oArch.Close(); err != nil {
		t.Fatal(err)
	}
	oracleStream := decodeCrashArchive(t, oDir)

	for seed := uint64(0); seed < schedules; seed++ {
		sched := Generate(rng.New(seed).Split("crash"), CrashMix(), window)
		events := crashPlan(sched)

		dir := filepath.Join(t.TempDir(), "crash")
		ckpt := filepath.Join(dir, "checkpoint.json")
		chaos := NewWriteChaos(nil)
		ccfg := cfg
		ccfg.WrapWrites = chaos.Wrap

		arch, err := trace.CreateArchive(dir, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		p := newCrashPipeline(t, arch, ckpt)
		var shortfall uint64
		next := 0
		for _, ev := range events {
			for ; next < ev.idx; next++ {
				p.ingest.Handle(crashBatch(next))
			}
			switch ev.kind {
			case KindCollectorKill:
				report.Kills++
				// The process dies between writes; the open segment holds
				// every batch handled so far.
			case KindTornWrite:
				report.TornWrites++
				chaos.ArmTorn(ev.frac)
				p.ingest.Handle(crashBatch(next))
				next++
				if p.ingest.Err() == nil {
					t.Fatalf("seed %d (%s): torn write at batch %d did not latch the pipeline",
						seed, sched, ev.idx)
				}
			case KindShortWrite:
				report.ShortWrites++
				chaos.ArmShort(ev.frac)
				p.ingest.Handle(crashBatch(next))
				next++
				if p.ingest.Err() != nil {
					t.Fatalf("seed %d (%s): short write at batch %d surfaced an error — the lie must be silent",
						seed, sched, ev.idx)
				}
				if seed%2 == 0 {
					// Half the lies get vouched for by a checkpoint before
					// the crash — the only case that must surface as a
					// resume Shortfall instead of being healed by replay
					// plus retransmission.
					if err := p.ingest.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Kill: abandon the incarnation (no Close, no final sync) and
			// resurrect from disk.
			arch2, _, err := trace.ResumeArchive(dir, ccfg)
			if err != nil {
				t.Fatalf("seed %d (%s): resume archive after %s@%d: %v", seed, sched, ev.kind, ev.idx, err)
			}
			p = newCrashPipeline(t, arch2, ckpt)
			rep, err := p.ingest.Resume(func(fn func(*wire.Batch) error) error {
				return trace.IterArchive(dir, fn)
			})
			if err != nil {
				t.Fatalf("seed %d (%s): resume after %s@%d: %v", seed, sched, ev.kind, ev.idx, err)
			}
			report.Resumes++
			report.ReplayedBatches += rep.Replayed
			shortfall += rep.Shortfall
			// The agent cannot know what the dead collector had archived:
			// it retransmits from its spool horizon, overlapping the
			// archive; the restored gate dedups the overlap.
			next = ev.idx - 3
			if next < 0 {
				next = 0
			}
		}
		for ; next < crashBatches; next++ {
			p.ingest.Handle(crashBatch(next))
		}
		if err := p.ingest.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := p.arch.Close(); err != nil {
			t.Fatal(err)
		}
		report.ShortfallBatches += shortfall

		// Byte-exact fleet state, crash schedule notwithstanding.
		exact(reflect.DeepEqual(p.figures.State(), oracle.figures.State()),
			"seed %d (%s): live figures diverge from the uninterrupted run", seed, sched)
		exact(reflect.DeepEqual(p.stats.Snapshot(), oracle.stats.Snapshot()),
			"seed %d (%s): ingest stats diverge: %+v vs %+v",
			seed, sched, p.stats.Snapshot(), oracle.stats.Snapshot())
		stream := decodeCrashArchive(t, dir)
		// A short write the checkpoint vouched for is the one permissible
		// archive gap, and it must be accounted batch-for-batch as
		// Shortfall; absent the lie, the decoded streams are identical.
		exact(uint64(len(stream))+shortfall == uint64(len(oracleStream)),
			"seed %d (%s): archive holds %d batches + %d shortfall, oracle %d",
			seed, sched, len(stream), shortfall, len(oracleStream))
		if shortfall == 0 {
			exact(reflect.DeepEqual(stream, oracleStream),
				"seed %d (%s): archive streams diverge", seed, sched)
		}
	}

	mergeSoakArtifact(t, func(r *soakReport) { r.CollectorCrash = &report })
}

func TestWriteChaosTornAndShort(t *testing.T) {
	var buf bytes.Buffer
	chaos := NewWriteChaos(nil)
	w := chaos.Wrap(&buf)

	payload := []byte("0123456789")
	chaos.ArmTorn(0.5)
	n, err := w.Write(payload)
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if buf.String() != "01234" {
		t.Fatalf("torn write persisted %q, want the 0.5 prefix", buf.String())
	}

	buf.Reset()
	chaos.ArmShort(0.3)
	n, err = w.Write(payload)
	if n != len(payload) || err != nil {
		t.Fatalf("short write = (%d, %v), want full success reported", n, err)
	}
	if buf.String() != "012" {
		t.Fatalf("short write persisted %q, want the 0.3 prefix", buf.String())
	}

	// Both arms are one-shot: the next write is clean.
	buf.Reset()
	if n, err := w.Write(payload); n != len(payload) || err != nil || buf.String() != string(payload) {
		t.Fatalf("unarmed write = (%d, %v) persisting %q", n, err, buf.String())
	}
}

func TestParseScheduleCrashKinds(t *testing.T) {
	s, err := ParseSchedule("kill@1ms,torn@2ms:x0.25,shortw@3ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: KindCollectorKill, At: simclock.Millisecond},
		{Kind: KindTornWrite, At: 2 * simclock.Millisecond, Factor: 0.25},
		{Kind: KindShortWrite, At: 3 * simclock.Millisecond, Factor: DefaultPersistFrac},
	}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Fatalf("parsed %+v, want %+v", s.Faults, want)
	}
	rt, err := ParseSchedule(s.String())
	if err != nil || !reflect.DeepEqual(rt, s) {
		t.Fatalf("schedule %q did not round-trip: %+v, %v", s, rt, err)
	}
	if _, err := ParseSchedule("torn@1ms:x1.5"); err == nil {
		t.Error("persisted fraction > 1 accepted")
	}
	if _, err := ParseSchedule("kill@1ms:x2"); err == nil {
		t.Error("kill parameter accepted")
	}
}
