package topo

import (
	"testing"
	"testing/quick"
)

func TestDefaultRack(t *testing.T) {
	r := Default(16)
	if err := r.Validate(); err != nil {
		t.Fatalf("default rack invalid: %v", err)
	}
	if r.NumPorts() != 20 {
		t.Errorf("NumPorts = %d", r.NumPorts())
	}
	if r.NumUplinks != 4 || r.UplinkSpeed != Gbps40 || r.ServerSpeed != Gbps10 {
		t.Errorf("unexpected defaults: %+v", r)
	}
	// 16 × 10G over 4 × 40G = 1:1; the paper's racks are larger.
	if got := r.Oversubscription(); got != 1 {
		t.Errorf("oversubscription = %v", got)
	}
	if got := Default(64).Oversubscription(); got != 4 {
		t.Errorf("64-server oversubscription = %v, want 4 (1:4 as in §6.3)", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Rack{
		{NumServers: 0, NumUplinks: 4, ServerSpeed: 1, UplinkSpeed: 1},
		{NumServers: 4, NumUplinks: 0, ServerSpeed: 1, UplinkSpeed: 1},
		{NumServers: 4, NumUplinks: 4, ServerSpeed: 0, UplinkSpeed: 1},
		{NumServers: 4, NumUplinks: 4, ServerSpeed: 1, UplinkSpeed: 0},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestPortClassification(t *testing.T) {
	r := Default(8)
	for p := 0; p < 8; p++ {
		if !r.IsDownlink(p) || r.IsUplink(p) {
			t.Errorf("port %d misclassified", p)
		}
	}
	for p := 8; p < 12; p++ {
		if r.IsDownlink(p) || !r.IsUplink(p) {
			t.Errorf("port %d misclassified", p)
		}
	}
	if r.IsDownlink(-1) || r.IsUplink(12) {
		t.Error("out-of-range ports classified as valid")
	}
	if r.UplinkPort(0) != 8 || r.UplinkPort(3) != 11 {
		t.Error("uplink port mapping wrong")
	}
	if r.ServerPort(5) != 5 {
		t.Error("server port mapping wrong")
	}
}

func TestPortRangePanics(t *testing.T) {
	r := Default(4)
	for _, f := range []func(){
		func() { r.UplinkPort(4) },
		func() { r.UplinkPort(-1) },
		func() { r.ServerPort(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range port did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSpeedsAndNames(t *testing.T) {
	r := Default(2)
	speeds := r.PortSpeeds()
	want := []uint64{Gbps10, Gbps10, Gbps40, Gbps40, Gbps40, Gbps40}
	if len(speeds) != len(want) {
		t.Fatalf("speeds = %v", speeds)
	}
	for i := range want {
		if speeds[i] != want[i] {
			t.Errorf("speed[%d] = %d", i, speeds[i])
		}
	}
	names := r.PortNames()
	if names[0] != "server0" || names[2] != "uplink0" || names[5] != "uplink3" {
		t.Errorf("names = %v", names)
	}
}

// Property: every port is exactly one of downlink/uplink, and the uplink
// count matches config.
func TestQuickPartition(t *testing.T) {
	f := func(nsRaw, nuRaw uint8) bool {
		ns := int(nsRaw%63) + 1
		nu := int(nuRaw%7) + 1
		r := Rack{NumServers: ns, ServerSpeed: Gbps10, NumUplinks: nu, UplinkSpeed: Gbps40}
		ups := 0
		for p := 0; p < r.NumPorts(); p++ {
			d, u := r.IsDownlink(p), r.IsUplink(p)
			if d == u {
				return false
			}
			if u {
				ups++
			}
		}
		return ups == nu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
