// Package topo describes the rack-level topology the paper measures: a
// Top-of-Rack switch with server-facing downlinks and fabric-facing
// uplinks, as part of the conventional 3-tier Clos network of §4.2.
//
// Machines connect to the ToR over 10 Gbps links; the ToR connects to the
// fabric layer over four 40 Gbps (or 100 Gbps) uplinks, giving the modest
// ~1:4 oversubscription §6.3 mentions. The fabric and spine layers above
// the ToR are out of measurement scope in the paper and are represented in
// the simulator by traffic entering/leaving the uplinks.
//
// Port numbering convention: ports [0, NumServers) are downlinks (one per
// server) and ports [NumServers, NumServers+NumUplinks) are uplinks. All
// other packages rely on this ordering.
package topo

import "fmt"

// Link speeds used throughout the study.
const (
	Gbps10  uint64 = 10_000_000_000
	Gbps40  uint64 = 40_000_000_000
	Gbps100 uint64 = 100_000_000_000
)

// Rack describes one ToR switch and its attached servers.
type Rack struct {
	// NumServers is the number of server-facing downlinks.
	NumServers int
	// ServerSpeed is the downlink line rate in bits per second.
	ServerSpeed uint64
	// NumUplinks is the number of fabric-facing uplinks (4 in the paper).
	NumUplinks int
	// UplinkSpeed is the uplink line rate in bits per second.
	UplinkSpeed uint64
}

// Default returns the rack shape used by the study: n servers at 10 Gbps
// under 4 × 40 Gbps uplinks.
func Default(nServers int) Rack {
	return Rack{
		NumServers:  nServers,
		ServerSpeed: Gbps10,
		NumUplinks:  4,
		UplinkSpeed: Gbps40,
	}
}

// Validate returns an error describing the first invalid field, or nil.
func (r Rack) Validate() error {
	switch {
	case r.NumServers <= 0:
		return fmt.Errorf("topo: NumServers = %d, need > 0", r.NumServers)
	case r.NumUplinks <= 0:
		return fmt.Errorf("topo: NumUplinks = %d, need > 0", r.NumUplinks)
	case r.ServerSpeed == 0:
		return fmt.Errorf("topo: zero ServerSpeed")
	case r.UplinkSpeed == 0:
		return fmt.Errorf("topo: zero UplinkSpeed")
	}
	return nil
}

// NumPorts returns the ToR's total port count.
func (r Rack) NumPorts() int { return r.NumServers + r.NumUplinks }

// IsUplink reports whether port index p is an uplink.
func (r Rack) IsUplink(p int) bool { return p >= r.NumServers && p < r.NumPorts() }

// IsDownlink reports whether port index p is a server-facing downlink.
func (r Rack) IsDownlink(p int) bool { return p >= 0 && p < r.NumServers }

// UplinkPort returns the port index of uplink i in [0, NumUplinks).
func (r Rack) UplinkPort(i int) int {
	if i < 0 || i >= r.NumUplinks {
		panic(fmt.Sprintf("topo: uplink %d out of range", i))
	}
	return r.NumServers + i
}

// ServerPort returns the port index of server i (identity, by convention).
func (r Rack) ServerPort(i int) int {
	if i < 0 || i >= r.NumServers {
		panic(fmt.Sprintf("topo: server %d out of range", i))
	}
	return i
}

// PortSpeeds returns the per-port line rates in port-index order, ready to
// hand to the asic package.
func (r Rack) PortSpeeds() []uint64 {
	speeds := make([]uint64, r.NumPorts())
	for i := 0; i < r.NumServers; i++ {
		speeds[i] = r.ServerSpeed
	}
	for i := 0; i < r.NumUplinks; i++ {
		speeds[r.NumServers+i] = r.UplinkSpeed
	}
	return speeds
}

// PortNames returns human-readable port names ("server3", "uplink1").
func (r Rack) PortNames() []string {
	names := make([]string, r.NumPorts())
	for i := 0; i < r.NumServers; i++ {
		names[i] = fmt.Sprintf("server%d", i)
	}
	for i := 0; i < r.NumUplinks; i++ {
		names[r.NumServers+i] = fmt.Sprintf("uplink%d", i)
	}
	return names
}

// Oversubscription returns the ratio of total downlink to total uplink
// capacity (≈4 for the paper's racks: e.g. 64×10G under 4×40G).
func (r Rack) Oversubscription() float64 {
	up := float64(r.UplinkSpeed) * float64(r.NumUplinks)
	down := float64(r.ServerSpeed) * float64(r.NumServers)
	return down / up
}
