package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d, want 1000", Microsecond)
	}
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
	if Micros(25) != 25000 {
		t.Fatalf("Micros(25) = %d", Micros(25))
	}
	if Millis(4) != 4*Millisecond {
		t.Fatalf("Millis(4) = %v", Millis(4))
	}
	if Seconds(2) != 2*Second {
		t.Fatalf("Seconds(2) = %v", Seconds(2))
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Epoch.Add(Micros(100))
	t1 := t0.Add(Micros(25))
	if got := t1.Sub(t0); got != Micros(25) {
		t.Errorf("Sub = %v, want 25µs", got)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Errorf("Before ordering wrong: %v vs %v", t0, t1)
	}
	if !t1.After(t0) || t0.After(t1) {
		t.Errorf("After ordering wrong: %v vs %v", t0, t1)
	}
	if t1.Microseconds() != 125 {
		t.Errorf("Microseconds = %d, want 125", t1.Microseconds())
	}
	if t1.Nanoseconds() != 125000 {
		t.Errorf("Nanoseconds = %d, want 125000", t1.Nanoseconds())
	}
}

func TestStdConversion(t *testing.T) {
	d := FromStd(3 * time.Millisecond)
	if d != Millis(3) {
		t.Fatalf("FromStd = %v, want 3ms", d)
	}
	if d.Std() != 3*time.Millisecond {
		t.Fatalf("Std = %v", d.Std())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{Micros(25), "25µs"},
		{Micros(200), "200µs"},
		{2500 * Nanosecond, "2.5µs"},
		{Millis(1), "1ms"},
		{1500 * Microsecond, "1.5ms"},
		{Seconds(4), "4s"},
		{-Micros(40), "-40µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTicks(t *testing.T) {
	if n := Micros(100).Ticks(Micros(25)); n != 4 {
		t.Errorf("Ticks = %d, want 4", n)
	}
	if n := Micros(99).Ticks(Micros(25)); n != 3 {
		t.Errorf("Ticks = %d, want 3", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("Ticks(0) did not panic")
		}
	}()
	Micros(1).Ticks(0)
}

func TestTruncate(t *testing.T) {
	if got := Micros(130).Truncate(Micros(25)); got != Micros(125) {
		t.Errorf("Duration.Truncate = %v", got)
	}
	if got := Epoch.Add(Micros(130)).Truncate(Micros(25)); got != Epoch.Add(Micros(125)) {
		t.Errorf("Time.Truncate = %v", got)
	}
	if got := Micros(130).Truncate(0); got != Micros(130) {
		t.Errorf("Truncate(0) = %v", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != Epoch {
		t.Fatalf("new clock not at epoch: %v", c.Now())
	}
	c.Advance(Micros(5))
	c.AdvanceTo(Epoch.Add(Micros(30)))
	if c.Now() != Epoch.Add(Micros(30)) {
		t.Fatalf("Now = %v, want 30µs", c.Now())
	}
	// Advancing to the same instant is legal (zero-duration events).
	c.AdvanceTo(c.Now())
}

func TestClockPanicsOnRewind(t *testing.T) {
	c := NewClock()
	c.Advance(Micros(10))
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(Epoch)
}

func TestClockPanicsOnNegativeAdvance(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("negative Advance did not panic")
		}
	}()
	c.Advance(-1)
}

// Property: Add and Sub are inverses for any pair of instants.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		t0 := Time(a)
		d := Duration(b)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Truncate is idempotent and never increases the value.
func TestQuickTruncateIdempotent(t *testing.T) {
	f := func(v int64, unitRaw uint16) bool {
		if v < 0 {
			v = -v
		}
		unit := Duration(unitRaw) + 1
		d := Duration(v)
		tr := d.Truncate(unit)
		return tr <= d && tr.Truncate(unit) == tr && tr%unit == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
