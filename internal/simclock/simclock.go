// Package simclock provides the virtual time base used by the entire
// simulator and collection framework.
//
// The paper's measurements operate at 10s to 100s of microseconds, with
// counter access latencies in the single-digit microsecond range and packet
// serialization times well under a microsecond (a 100 Gbps port forwards a
// full-MTU packet in ~120 ns). To represent all of those scales exactly and
// without floating-point drift, virtual time is an integer count of
// nanoseconds since the start of the simulation.
//
// Time and Duration are distinct types so that the compiler rejects the
// classic "added two timestamps" bug. Durations are also nanoseconds, and
// helper constructors mirror the time package's idioms.
package simclock

import (
	"fmt"
	"time"
)

// Time is an instant on the simulated timeline, in nanoseconds since the
// start of the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations. These mirror the time package but are independent of it
// so that simulated time never mixes with wall-clock time by accident.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Epoch is the start of simulated time.
const Epoch Time = 0

// Never is a sentinel Time that compares after every reachable instant. It
// is used by schedulers for "no deadline".
const Never Time = Time(1<<63 - 1)

// Micros returns a Duration of n microseconds.
func Micros(n int64) Duration { return Duration(n) * Microsecond }

// Millis returns a Duration of n milliseconds.
func Millis(n int64) Duration { return Duration(n) * Millisecond }

// Seconds returns a Duration of n seconds.
func Seconds(n int64) Duration { return Duration(n) * Second }

// FromStd converts a wall-clock time.Duration into a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a simulated Duration into a time.Duration (they share the
// nanosecond base, so this is exact).
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Nanoseconds returns the instant as an integer nanosecond count.
func (t Time) Nanoseconds() int64 { return int64(t) }

// Microseconds returns the instant in microseconds, truncating.
func (t Time) Microseconds() int64 { return int64(t) / int64(Microsecond) }

// Seconds returns the instant as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as a duration since the epoch, e.g. "1.250ms".
func (t Time) String() string { return Duration(t).String() }

// Nanoseconds returns the duration as an integer nanosecond count.
func (d Duration) Nanoseconds() int64 { return int64(d) }

// Microseconds returns the duration in microseconds, truncating.
func (d Duration) Microseconds() int64 { return int64(d) / int64(Microsecond) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Ticks returns how many whole intervals of size tick fit in d.
// It panics if tick is not positive.
func (d Duration) Ticks(tick Duration) int64 {
	if tick <= 0 {
		panic("simclock: non-positive tick")
	}
	return int64(d) / int64(tick)
}

// Truncate rounds d down to a multiple of unit. Truncate of a non-positive
// unit returns d unchanged.
func (d Duration) Truncate(unit Duration) Duration {
	if unit <= 0 {
		return d
	}
	return d - d%unit
}

// Truncate rounds t down to a multiple of unit since the epoch.
func (t Time) Truncate(unit Duration) Time {
	if unit <= 0 {
		return t
	}
	return t - t%Time(unit)
}

// String formats the duration with the most natural unit, matching the
// conventions used in the paper's figures (µs for microbursts, ms and s for
// idle periods).
func (d Duration) String() string {
	neg := d < 0
	if neg {
		d = -d
	}
	var s string
	switch {
	case d < Microsecond:
		s = fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		s = trimUnit(float64(d)/float64(Microsecond), "µs")
	case d < Second:
		s = trimUnit(float64(d)/float64(Millisecond), "ms")
	default:
		s = trimUnit(float64(d)/float64(Second), "s")
	}
	if neg {
		return "-" + s
	}
	return s
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a trailing decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// Clock is a monotonically advancing virtual clock. It is the single source
// of "now" for the simulator; components that need the current instant hold
// a *Clock rather than a Time so they always observe the latest value.
//
// Clock is not safe for concurrent use; the simulation kernel is
// single-threaded by design (determinism is a stated goal in DESIGN.md) and
// the collection pipeline receives immutable timestamped samples instead of
// sharing the clock across goroutines.
type Clock struct {
	now Time
}

// NewClock returns a clock set to the epoch.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated instant.
func (c *Clock) Now() Time { return c.now }

// AdvanceTo moves the clock forward to t. It panics if t is in the past;
// a simulation that rewinds time has a scheduling bug that must not be
// silently absorbed.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: time moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Advance moves the clock forward by d. It panics if d is negative.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.now += Time(d)
}
