package trace

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func validMeta() Meta {
	return Meta{
		App:         "web",
		RackID:      3,
		NumServers:  32,
		NumUplinks:  4,
		ServerSpeed: 10e9,
		UplinkSpeed: 40e9,
		Interval:    25 * simclock.Microsecond,
		WindowDur:   simclock.Seconds(2),
		Windows:     3,
		Seed:        42,
		Counters:    []collector.CounterSpec{{Port: 5, Dir: asic.TX, Kind: asic.KindBytes}},
		Notes:       "fig3",
	}
}

func mkSamples(n int) []wire.Sample {
	out := make([]wire.Sample, n)
	for i := range out {
		out[i] = wire.Sample{
			Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
			Port:  5,
			Dir:   asic.TX,
			Kind:  asic.KindBytes,
			Value: uint64(i) * 777,
		}
	}
	return out
}

// readAll materializes one window through IterWindow, copying samples out
// of the reused batch.
func readAll(r *Reader, idx int) ([]wire.Sample, error) {
	var out []wire.Sample
	err := r.IterWindow(idx, func(b *wire.Batch) error {
		out = append(out, b.Samples...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func TestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	w, err := Create(dir, validMeta())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]wire.Sample{mkSamples(100), mkSamples(20000), nil}
	for i, s := range want {
		if err := w.WriteWindow(i, 7, s); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Meta(), validMeta()) {
		t.Errorf("meta mismatch:\n%+v\n%+v", r.Meta(), validMeta())
	}
	for i, s := range want {
		got, err := readAll(r, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(s) {
			t.Fatalf("window %d: %d samples, want %d", i, len(got), len(s))
		}
		for j := range s {
			if got[j] != s[j] {
				t.Fatalf("window %d sample %d mismatch", i, j)
			}
		}
	}
}

func TestCreateRefusesOverwrite(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, validMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, validMeta()); err == nil {
		t.Error("Create overwrote an existing campaign")
	}
}

func TestMetaValidation(t *testing.T) {
	mutations := []func(*Meta){
		func(m *Meta) { m.App = "" },
		func(m *Meta) { m.NumServers = 0 },
		func(m *Meta) { m.NumUplinks = -1 },
		func(m *Meta) { m.Interval = 0 },
		func(m *Meta) { m.WindowDur = -5 },
		func(m *Meta) { m.Windows = 0 },
		func(m *Meta) { m.Counters = nil },
		func(m *Meta) { m.Format = "mbw9" },
	}
	for i, mut := range mutations {
		m := validMeta()
		mut(&m)
		if m.Validate() == nil {
			t.Errorf("mutation %d validated", i)
		}
		if _, err := Create(filepath.Join(t.TempDir(), "x"), m); err == nil {
			t.Errorf("mutation %d created", i)
		}
	}
}

func TestWriteWindowGuards(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "c"), validMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteWindow(-1, 0, nil); err == nil {
		t.Error("negative window accepted")
	}
	if err := w.WriteWindow(3, 0, nil); err == nil {
		t.Error("out-of-range window accepted")
	}
	if err := w.WriteWindow(0, 0, mkSamples(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteWindow(0, 0, mkSamples(5)); err == nil {
		t.Error("double write accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("Open of missing dir succeeded")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, MetaFileName), []byte("{not json"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("Open of corrupt meta succeeded")
	}
}

func TestHasWindowAndMissingWindow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	w, err := Create(dir, validMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteWindow(1, 0, mkSamples(3)); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.HasWindow(0) || !r.HasWindow(1) {
		t.Error("HasWindow wrong")
	}
	if _, err := readAll(r, 0); err == nil {
		t.Error("reading missing window succeeded")
	}
	if _, err := readAll(r, 99); err == nil {
		t.Error("reading out-of-range window succeeded")
	}
}

func TestIterWindow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	w, err := Create(dir, validMeta())
	if err != nil {
		t.Fatal(err)
	}
	// 20000 samples span multiple batches (batchSize 8192).
	want := mkSamples(20000)
	if err := w.WriteWindow(0, 4, want); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []wire.Sample
	batches := 0
	err = r.IterWindow(0, func(b *wire.Batch) error {
		if b.Rack != 4 {
			t.Errorf("rack = %d", b.Rack)
		}
		batches++
		got = append(got, b.Samples...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches < 3 {
		t.Errorf("only %d batches; expected the window to span several", batches)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	// Early stop propagates the handler's error.
	sentinel := os.ErrClosed
	calls := 0
	err = r.IterWindow(0, func(*wire.Batch) error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Errorf("early stop: err=%v calls=%d", err, calls)
	}
	// Guards.
	if err := r.IterWindow(99, func(*wire.Batch) error { return nil }); err == nil {
		t.Error("out-of-range window accepted")
	}
	if err := r.IterWindow(0, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestCorruptWindowDetected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	w, err := Create(dir, validMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteWindow(0, 0, mkSamples(100)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "window_0000.mbw")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readAll(r, 0); err == nil {
		t.Error("corrupt window read without error")
	}
}

// TestFormats records the same campaign in every wire format; all of them
// must read back the same samples, the metadata must record the format,
// and the trace-v2 (mbw3) window files must be substantially smaller.
func TestFormats(t *testing.T) {
	want := [][]wire.Sample{mkSamples(100), mkSamples(20000), nil}
	sizes := map[string]int64{}
	for _, format := range []string{"", "mbw1", "mbw2", "mbw3"} {
		dir := filepath.Join(t.TempDir(), "c")
		meta := validMeta()
		meta.Format = format
		w, err := Create(dir, meta)
		if err != nil {
			t.Fatalf("%q: %v", format, err)
		}
		var total int64
		for i, s := range want {
			if err := w.WriteWindow(i, 7, s); err != nil {
				t.Fatalf("%q window %d: %v", format, i, err)
			}
			fi, err := os.Stat(filepath.Join(dir, windowFileName(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
		sizes[format] = total
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("%q: %v", format, err)
		}
		if r.Meta().Format != format {
			t.Errorf("%q: meta format round-tripped as %q", format, r.Meta().Format)
		}
		m := r.Meta()
		if f, err := m.WireFormat(); err != nil || (format == "" && f != wire.DefaultFormat) {
			t.Errorf("%q: WireFormat = %v, %v", format, f, err)
		}
		for i, s := range want {
			got, err := readAll(r, i)
			if err != nil {
				t.Fatalf("%q window %d: %v", format, i, err)
			}
			if len(got) != len(s) {
				t.Fatalf("%q window %d: %d samples, want %d", format, i, len(got), len(s))
			}
			for j := range s {
				if got[j] != s[j] {
					t.Fatalf("%q window %d sample %d mismatch", format, i, j)
				}
			}
		}
	}
	if sizes[""] != sizes["mbw2"] {
		t.Errorf("default format sized %d, mbw2 %d", sizes[""], sizes["mbw2"])
	}
	if sizes["mbw3"]*2 >= sizes["mbw2"] {
		t.Errorf("trace-v2 not compact: mbw3 %d B vs mbw2 %d B", sizes["mbw3"], sizes["mbw2"])
	}
}

func TestCreateWithOpener(t *testing.T) {
	// A failing opener surfaces as a WriteWindow error — the disk-fault
	// injection point — while window files already written stay intact.
	dir := filepath.Join(t.TempDir(), "c")
	var fail bool
	opened := 0
	open := func(path string) (io.WriteCloser, error) {
		if fail {
			return nil, errors.New("injected disk error")
		}
		opened++
		return os.Create(path)
	}
	w, err := CreateWithOpener(dir, validMeta(), open)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteWindow(0, 1, mkSamples(10)); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := w.WriteWindow(1, 1, mkSamples(10)); err == nil {
		t.Fatal("injected disk error not surfaced")
	}
	fail = false
	if opened != 1 {
		t.Errorf("opener called %d times for the successful window, want 1", opened)
	}
	// The failed window was not marked done and can be retried.
	if err := w.WriteWindow(1, 1, mkSamples(10)); err != nil {
		t.Fatalf("retry after injected failure: %v", err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasWindow(0) || !r.HasWindow(1) {
		t.Error("windows missing after retry")
	}
	// Nil opener falls back to os.Create.
	w2, err := CreateWithOpener(filepath.Join(t.TempDir(), "c2"), validMeta(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteWindow(0, 1, mkSamples(5)); err != nil {
		t.Fatal(err)
	}
}
