package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mburst/internal/shard"
	"mburst/internal/wire"
)

// A fleet campaign directory is the sharded counterpart of a collector
// archive: one subdirectory per collector shard, each a self-contained
// archive of the batches that shard admitted, tied together by a
// manifest naming the placement that routed racks to shards:
//
//	<dir>/campaign.json      — Meta with Placement: what was measured
//	<dir>/fleet.json         — FleetManifest: shard layout + totals
//	<dir>/shard_000/         — shard 0's archive (see archive.go)
//	<dir>/shard_001/         — ...
//
// Because the placement assigns every rack to exactly one shard, the
// union of the shard archives is a partition of the fleet's batch
// stream; IterFleet re-merges it into one deterministic presentation
// order so single-collector tooling (mbdump, offline analyses) reads a
// fleet directory exactly like a campaign.

// FleetManifestName is the fleet manifest file name.
const FleetManifestName = "fleet.json"

// FleetShard describes one shard's archive within a fleet directory.
type FleetShard struct {
	// ID is the shard's placement index; Name its placement name.
	ID   int    `json:"id"`
	Name string `json:"name"`
	// Dir is the shard archive directory, relative to the fleet dir.
	Dir string `json:"dir"`
	// Batches / Samples are the shard's admitted totals.
	Batches uint64 `json:"batches"`
	Samples uint64 `json:"samples"`
}

// FleetManifest ties a fleet directory's shard archives together.
type FleetManifest struct {
	// Racks is the fleet's rack count.
	Racks int `json:"racks"`
	// Placement is the versioned rack→shard placement the campaign ran
	// under — the routing function IterFleet validates archives against.
	Placement shard.Placement `json:"placement"`
	// Shards lists every shard archive in placement index order.
	Shards []FleetShard `json:"shards"`
}

// Validate checks the manifest's internal consistency.
func (m *FleetManifest) Validate() error {
	if m.Racks <= 0 {
		return fmt.Errorf("trace: fleet manifest has %d racks", m.Racks)
	}
	if err := m.Placement.Validate(); err != nil {
		return err
	}
	if len(m.Shards) != m.Placement.NumShards() {
		return fmt.Errorf("trace: fleet manifest lists %d shards for a placement of %d",
			len(m.Shards), m.Placement.NumShards())
	}
	for i, s := range m.Shards {
		if s.ID != i {
			return fmt.Errorf("trace: fleet manifest shard %d carries id %d", i, s.ID)
		}
		if s.Dir == "" {
			return fmt.Errorf("trace: fleet manifest shard %d has no archive dir", i)
		}
	}
	return nil
}

// WriteFleetManifest persists the manifest into dir atomically.
func WriteFleetManifest(dir string, m FleetManifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding fleet manifest: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, FleetManifestName), append(data, '\n'), 0o644)
}

// ReadFleetManifest loads dir's fleet manifest. A directory without one
// (a plain campaign or archive) returns ok=false.
func ReadFleetManifest(dir string) (FleetManifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, FleetManifestName))
	if os.IsNotExist(err) {
		return FleetManifest{}, false, nil
	}
	if err != nil {
		return FleetManifest{}, false, fmt.Errorf("trace: %w", err)
	}
	var m FleetManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return FleetManifest{}, false, fmt.Errorf("trace: decoding fleet manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return FleetManifest{}, false, err
	}
	return m, true, nil
}

// IsFleetDir reports whether dir holds a fleet campaign.
func IsFleetDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, FleetManifestName))
	return err == nil
}

// WriteFleetMeta writes a fleet directory's campaign.json. meta must
// carry the placement; unlike Create, no window writer is returned —
// the sample data lives in the shard archives.
func WriteFleetMeta(dir string, meta Meta) error {
	if meta.Placement == nil {
		return fmt.Errorf("trace: fleet meta without a placement")
	}
	if err := meta.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding meta: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, MetaFileName), append(data, '\n'), 0o644)
}

// IterFleet streams a fleet directory's batches through fn in the
// merged presentation order: racks ascending, and within a rack the
// shard archive's admission order (per-rack admission is time-ordered,
// so this is also time order). The order is a pure function of the
// directory contents — independent of how many workers produced the
// archives — which is what lets mbdump and the golden tests treat a
// fleet directory like one campaign. Batches are deep copies owned by
// the callback.
//
// Every batch is validated against the manifest placement: a batch in a
// shard archive whose rack the placement owns elsewhere is a placement
// violation and fails the iteration.
func IterFleet(dir string, fn func(b *wire.Batch) error) error {
	if fn == nil {
		return fmt.Errorf("trace: nil batch handler")
	}
	man, ok, err := ReadFleetManifest(dir)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("trace: %s holds no fleet manifest", dir)
	}
	perRack := make(map[uint32][]wire.Batch)
	for _, fs := range man.Shards {
		sub := filepath.Join(dir, fs.Dir)
		err := IterArchive(sub, func(b *wire.Batch) error {
			if man.Placement.ShardOf(b.Rack) != fs.ID {
				return fmt.Errorf("trace: placement violation: shard %d archived rack %d owned by shard %d",
					fs.ID, b.Rack, man.Placement.ShardOf(b.Rack))
			}
			perRack[b.Rack] = append(perRack[b.Rack], wire.Batch{
				Rack: b.Rack, Epoch: b.Epoch,
				Samples: append([]wire.Sample(nil), b.Samples...),
			})
			return nil
		})
		if err != nil {
			return err
		}
	}
	racks := make([]uint32, 0, len(perRack))
	for r := range perRack {
		racks = append(racks, r)
	}
	sort.Slice(racks, func(i, j int) bool { return racks[i] < racks[j] })
	for _, r := range racks {
		for i := range perRack[r] {
			if err := fn(&perRack[r][i]); err != nil {
				return err
			}
		}
	}
	return nil
}
