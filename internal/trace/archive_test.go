package trace

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mburst/internal/wire"
)

func archiveBatch(i, n int) *wire.Batch {
	s := mkSamples(n)
	for j := range s {
		s[j].Value += uint64(i * 1000)
	}
	return &wire.Batch{Rack: uint32(1 + i%2), Epoch: 1, Samples: s}
}

func collectArchive(t *testing.T, dir string) []wire.Batch {
	t.Helper()
	var got []wire.Batch
	err := IterArchive(dir, func(b *wire.Batch) error {
		cp := wire.Batch{Rack: b.Rack, Epoch: b.Epoch, Samples: append([]wire.Sample(nil), b.Samples...)}
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestArchiveRoundTrip(t *testing.T) {
	for _, format := range []wire.Format{wire.FormatMBW2, wire.FormatMBW3} {
		dir := filepath.Join(t.TempDir(), "a")
		w, err := CreateArchive(dir, ArchiveConfig{Format: format, SegmentBatches: 2, SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		var want []wire.Batch
		for i := 0; i < 7; i++ {
			b := archiveBatch(i, 5)
			want = append(want, *b)
			if err := w.WriteBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		if got := w.Batches(); got != 7 {
			t.Errorf("%v: Batches = %d, want 7", format, got)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		man, err := loadArchiveManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(man.Segments) != 4 { // 2+2+2+1 at SegmentBatches=2
			t.Errorf("%v: %d segments, want 4", format, len(man.Segments))
		}
		got := collectArchive(t, dir)
		if len(got) != len(want) {
			t.Fatalf("%v: replayed %d batches, want %d", format, len(got), len(want))
		}
		for i := range want {
			if got[i].Rack != want[i].Rack || got[i].Epoch != want[i].Epoch || !reflect.DeepEqual(got[i].Samples, want[i].Samples) {
				t.Fatalf("%v: batch %d mismatch", format, i)
			}
		}
	}
}

func TestArchiveRefusesReuse(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateArchive(dir, ArchiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := CreateArchive(dir, ArchiveConfig{}); err == nil {
		t.Fatal("CreateArchive reused a directory holding an archive")
	}
}

func TestArchiveResumeAfterCrash(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateArchive(dir, ArchiveConfig{Format: wire.FormatMBW3, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want []wire.Batch
	for i := 0; i < 5; i++ {
		b := archiveBatch(i, 8)
		want = append(want, *b)
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: the writer is abandoned without Close, and the open segment
	// gains a torn half-frame, as if the process died mid-write.
	f, err := os.OpenFile(filepath.Join(dir, segOpenName(1)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x4d, 0x42, 0x01, 0x02, 0x03})
	f.Close()

	w2, rec, err := ResumeArchive(dir, ArchiveConfig{Format: wire.FormatMBW3, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 5 {
		t.Fatalf("recovery found %d batches, want 5: %+v", rec.Batches, rec)
	}
	if len(rec.Scanned) != 1 || !rec.Scanned[0].Torn || rec.Scanned[0].TruncatedBytes != 5 {
		t.Fatalf("recovery scan %+v, want one torn segment with 5 truncated bytes", rec)
	}
	if w2.Batches() != 5 {
		t.Errorf("resumed writer primed at %d batches, want 5", w2.Batches())
	}
	for i := 5; i < 9; i++ {
		b := archiveBatch(i, 8)
		want = append(want, *b)
		if err := w2.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got := collectArchive(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Samples, want[i].Samples) {
			t.Fatalf("batch %d samples mismatch after crash/resume", i)
		}
	}
}

// failAfter fails every write once armed.
type failAfter struct {
	w    io.Writer
	fail bool
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.fail {
		return 0, errors.New("injected archive write error")
	}
	return f.w.Write(p)
}

func TestArchiveWriteErrorLatches(t *testing.T) {
	dir := t.TempDir()
	var chaos *failAfter
	w, err := CreateArchive(dir, ArchiveConfig{
		WrapWrites: func(sink io.Writer) io.Writer { chaos = &failAfter{w: sink}; return chaos },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(archiveBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	chaos.fail = true
	if err := w.WriteBatch(archiveBatch(1, 4)); err == nil {
		t.Fatal("write through failing sink succeeded")
	}
	chaos.fail = false
	// The writer stays failed: its segment may hold a torn frame, so more
	// writes would corrupt the log even though the disk "recovered".
	if err := w.WriteBatch(archiveBatch(2, 4)); err == nil {
		t.Fatal("failed writer accepted another batch")
	}
	if err := w.Close(); err == nil {
		t.Fatal("failed writer closed cleanly")
	}
}

// failingSyncFile wraps a real file but refuses fsync.
type failingSyncFile struct{ *os.File }

func (f failingSyncFile) Sync() error { return errors.New("injected sync error") }

func TestArchiveSyncErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateArchive(dir, ArchiveConfig{
		SyncEvery: 1000, // keep per-batch syncs out of the way; fail at seal
		Open: func(path string) (io.WriteCloser, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return failingSyncFile{f}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(archiveBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync through failing file succeeded")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the sync failure")
	}
}
