package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeCampaign(t *testing.T, dir string, windows ...[]int) *Writer {
	t.Helper()
	meta := validMeta()
	w, err := Create(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range windows {
		if err := w.WriteWindow(i, 1, mkSamples(n[0])); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestWindowManifestSeals(t *testing.T) {
	dir := t.TempDir()
	writeCampaign(t, dir, []int{10}, []int{20})
	man, err := loadWindowManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Windows) != 2 {
		t.Fatalf("manifest holds %d windows, want 2", len(man.Windows))
	}
	for i, info := range man.Windows {
		if info.Idx != i || info.Samples != uint64(10*(i+1)) || info.Bytes <= 0 {
			t.Errorf("window %d manifest entry %+v", i, info)
		}
		fi, err := os.Stat(filepath.Join(dir, windowFileName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != info.Bytes {
			t.Errorf("window %d: manifest says %d B, file is %d B", i, info.Bytes, fi.Size())
		}
	}
	// A clean campaign recovers trivially: both windows trusted, no scans.
	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Sealed, []int{0, 1}) || len(rep.Scanned) != 0 || len(rep.RemovedTemps) != 0 {
		t.Errorf("clean recovery report %+v", rep)
	}
}

func TestRecoverTruncatesTornWindow(t *testing.T) {
	dir := t.TempDir()
	writeCampaign(t, dir, []int{100})
	want, err := func() ([]float64, error) {
		r, err := Open(dir)
		if err != nil {
			return nil, err
		}
		s, err := readAll(r, 0)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(s))
		for i := range s {
			vals[i] = float64(s[i].Value)
		}
		return vals, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the sealed window with a torn tail, as if a crash had
	// appended half a frame. The size no longer matches the manifest, so
	// recovery rescans and truncates back to the decodable prefix.
	path := filepath.Join(dir, windowFileName(0))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	f.Close()
	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scanned) != 1 || !rep.Scanned[0].Torn || rep.Scanned[0].TruncatedBytes != 7 {
		t.Fatalf("recovery report %+v, want one torn window with 7 truncated bytes", rep)
	}
	if rep.Scanned[0].Samples != 100 {
		t.Errorf("recovered %d samples, want 100", rep.Scanned[0].Samples)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readAll(r, 0)
	if err != nil {
		t.Fatalf("window unreadable after recovery: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d samples, want %d", len(got), len(want))
	}
	// Second recovery is a no-op: the repaired state was recorded.
	rep2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Scanned) != 0 || len(rep2.Sealed) != 1 {
		t.Errorf("second recovery rescanned: %+v", rep2)
	}
}

func TestRecoverRemovesTemps(t *testing.T) {
	dir := t.TempDir()
	writeCampaign(t, dir, []int{5})
	tmp := filepath.Join(dir, windowFileName(1)+TempSuffix)
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovedTemps) != 1 {
		t.Fatalf("removed %v, want one temp", rep.RemovedTemps)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("temp file survived recovery")
	}
}

func TestRecoverRefusesNonCampaign(t *testing.T) {
	if _, err := Recover(t.TempDir()); err == nil {
		t.Fatal("Recover accepted a directory with no campaign")
	}
}

func TestScanStreamEveryTruncation(t *testing.T) {
	// Build one valid window's bytes, then scan every prefix length:
	// the scan must never panic, never report more than the full stream,
	// and report exactly the full stream when uncut.
	dir := t.TempDir()
	writeCampaign(t, dir, []int{64})
	data, err := os.ReadFile(filepath.Join(dir, windowFileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	full := ScanStream(bytes.NewReader(data))
	if full.Torn || full.Samples != 64 || full.GoodBytes != int64(len(data)) {
		t.Fatalf("full scan %+v", full)
	}
	for cut := 0; cut <= len(data); cut++ {
		res := ScanStream(bytes.NewReader(data[:cut]))
		if res.GoodBytes > int64(cut) || res.Samples > full.Samples {
			t.Fatalf("cut %d: scan claims %+v", cut, res)
		}
		if cut == len(data) && res.Torn {
			t.Fatalf("uncut stream reported torn: %+v", res)
		}
		if cut < len(data) && cut > int(res.GoodBytes) && !res.Torn {
			t.Fatalf("cut %d: torn tail not reported: %+v", cut, res)
		}
	}
}
