package trace

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file holds the fsync discipline shared by campaign writers and the
// collector archive. Crash safety rests on three primitives:
//
//   - atomicWriteFile: small metadata files (campaign.json, manifests,
//     checkpoints) are written to a temp name, fsynced, renamed into
//     place, and the directory fsynced — a crash leaves either the old
//     or the new content, never a torn mixture.
//   - maybeSync: bulk window/segment files are fsynced through whatever
//     the Opener handed back, when it supports it (os.File does; test
//     doubles may not).
//   - syncDir: renames only become durable once the containing directory
//     entry is flushed.

// TempSuffix marks in-flight files that have not been atomically
// finalized. Recovery deletes them; readers ignore them.
const TempSuffix = ".tmp"

// syncer is the optional fsync surface of an opened file.
type syncer interface{ Sync() error }

// maybeSync fsyncs v when it can. Openers that return plain buffers
// (tests) simply skip the barrier.
func maybeSync(v any) error {
	if s, ok := v.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// syncDir fsyncs the directory so renames performed inside it survive a
// crash. Filesystems without directory handles (or read-only test
// doubles) make this a no-op rather than an error: the rename itself
// already happened, we only lose the durability barrier.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems reject fsync on directories; treat as best
		// effort like os.File-less openers above.
		return nil
	}
	return nil
}

// atomicWriteFile durably replaces path with data: temp file in the same
// directory, fsync, rename, directory fsync.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + TempSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	return syncDir(filepath.Dir(path))
}
