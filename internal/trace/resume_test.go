package trace_test

// End-to-end durability: a collector pipeline writing a real on-disk
// archive is killed mid-stream (torn tail included), resurrected via
// ResumeArchive + DurableIngest.Resume, fed the agent's retransmission
// overlap, and must end byte-identical — decoded archive stream, live
// figures, ingest counters — to a collector that never died.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

func resumeBatch(i int) *wire.Batch {
	const perBatch = 8
	b := &wire.Batch{Rack: 1, Epoch: 1}
	for j := 0; j < perBatch; j++ {
		seq := i*perBatch + j
		at := simclock.Epoch.Add(simclock.Micros(int64(seq) * 25))
		frac := 0.1
		if (seq/6)%2 == 1 {
			frac = 0.95
		}
		b.Samples = append(b.Samples, wire.Sample{
			Time: at, Port: 1, Dir: asic.TX, Kind: asic.KindBytes,
			Value: uint64(seq) * uint64(frac*31250),
		})
	}
	return b
}

type resumePipeline struct {
	arch    *trace.ArchiveWriter
	ingest  *collector.DurableIngest
	figures *collector.LiveFigures
	stats   *collector.IngestStats
}

func newResumePipeline(t *testing.T, arch *trace.ArchiveWriter, ckpt string) *resumePipeline {
	t.Helper()
	figures, err := collector.NewLiveFigures(collector.LiveFiguresConfig{
		SpeedOf: func(uint32, uint16) uint64 { return 10_000_000_000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := &collector.IngestStats{}
	ingest, err := collector.NewDurableIngest(collector.DurableIngestConfig{
		Archive:        arch,
		CheckpointPath: ckpt,
		Every:          4,
		Figures:        figures,
		Stats:          stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &resumePipeline{arch: arch, ingest: ingest, figures: figures, stats: stats}
}

func decodeArchive(t *testing.T, dir string) []wire.Batch {
	t.Helper()
	var out []wire.Batch
	if err := trace.IterArchive(dir, func(b *wire.Batch) error {
		out = append(out, wire.Batch{Rack: b.Rack, Epoch: b.Epoch,
			Samples: append([]wire.Sample(nil), b.Samples...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCollectorCrashResumeByteExact(t *testing.T) {
	const total, killAt = 40, 23
	cfg := trace.ArchiveConfig{SegmentBatches: 8, SyncEvery: 2}

	// Oracle: a collector that never dies, cleanly closed.
	oDir := filepath.Join(t.TempDir(), "oracle")
	oArch, err := trace.CreateArchive(oDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newResumePipeline(t, oArch, filepath.Join(oDir, "checkpoint.json"))
	for i := 0; i < total; i++ {
		oracle.ingest.Handle(resumeBatch(i))
	}
	if err := oracle.ingest.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := oArch.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashing run: same traffic up to killAt, then the process dies with
	// the segment open and a torn frame on its tail.
	dir := filepath.Join(t.TempDir(), "crash")
	ckpt := filepath.Join(dir, "checkpoint.json")
	arch, err := trace.CreateArchive(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1 := newResumePipeline(t, arch, ckpt)
	for i := 0; i < killAt; i++ {
		p1.ingest.Handle(resumeBatch(i))
	}
	// The kill lands mid-write: garbage on the open segment's tail.
	open, err := os.OpenFile(filepath.Join(dir, "seg_000003.open"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := open.Write([]byte{0x4d, 0x42, 0x99, 0x01}); err != nil {
		t.Fatal(err)
	}
	open.Close()

	// Resurrection: recover the archive, restore the checkpoint, replay
	// the un-checkpointed tail.
	arch2, rec, err := trace.ResumeArchive(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	torn := false
	for _, s := range rec.Scanned {
		if s.Torn {
			torn = true
		}
	}
	if !torn {
		t.Fatal("the injected torn tail was not detected")
	}
	p2 := newResumePipeline(t, arch2, ckpt)
	rep, err := p2.ingest.Resume(func(fn func(*wire.Batch) error) error {
		return trace.IterArchive(dir, fn)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HadCheckpoint {
		t.Fatal("no checkpoint restored")
	}
	if rep.CheckpointBatches+rep.Replayed != rep.ArchiveBatches {
		t.Fatalf("resume covered %d+%d of %d archived batches",
			rep.CheckpointBatches, rep.Replayed, rep.ArchiveBatches)
	}

	// The agent retransmits from its spool horizon — overlapping what the
	// archive already holds — then the stream continues to the end.
	resendFrom := int(rep.ArchiveBatches) - 3
	if resendFrom < 0 {
		resendFrom = 0
	}
	for i := resendFrom; i < total; i++ {
		p2.ingest.Handle(resumeBatch(i))
	}
	if err := p2.ingest.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := arch2.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte-exact fleet state: decoded archive stream, figures, counters.
	if got, want := decodeArchive(t, dir), decodeArchive(t, oDir); !reflect.DeepEqual(got, want) {
		t.Errorf("archive streams diverge: %d vs %d batches", len(got), len(want))
	}
	if !reflect.DeepEqual(p2.figures.State(), oracle.figures.State()) {
		t.Error("live figures diverge from the uninterrupted run")
	}
	if !reflect.DeepEqual(p2.stats.Snapshot(), oracle.stats.Snapshot()) {
		t.Errorf("ingest stats diverge: %+v vs %+v", p2.stats.Snapshot(), oracle.stats.Snapshot())
	}

	// And the rendered figure JSON — what /figures serves — matches too.
	if !reflect.DeepEqual(p2.figures.Snapshot(), oracle.figures.Snapshot()) {
		t.Error("rendered figures snapshot diverges")
	}
}
