package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mburst/internal/wire"
)

// ManifestFileName is the campaign window manifest: the durable record of
// which window files were atomically finalized, and at what size. A
// window listed here at its recorded size needs no scan after a crash;
// anything else is scanned and truncated to its decodable prefix.
const ManifestFileName = "manifest.json"

// WindowInfo records one sealed window in the campaign manifest.
type WindowInfo struct {
	Idx     int    `json:"idx"`
	Batches uint64 `json:"batches"`
	Samples uint64 `json:"samples"`
	Bytes   int64  `json:"bytes"`
}

// windowManifest is the on-disk shape of ManifestFileName.
type windowManifest struct {
	Windows []WindowInfo `json:"windows"`
}

func loadWindowManifest(dir string) (windowManifest, error) {
	var man windowManifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestFileName))
	if os.IsNotExist(err) {
		return man, nil // pre-manifest campaign: everything gets scanned
	}
	if err != nil {
		return man, fmt.Errorf("trace: %w", err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("trace: decoding manifest: %w", err)
	}
	return man, nil
}

func saveWindowManifest(dir string, man windowManifest) error {
	sort.Slice(man.Windows, func(i, j int) bool { return man.Windows[i].Idx < man.Windows[j].Idx })
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding manifest: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, ManifestFileName), append(data, '\n'), 0o644)
}

// countingReader tracks how many bytes the wrapped reader consumed.
// wire.Reader reads each frame directly with io.ReadFull (no read-ahead
// buffering), so after a successful ReadBatch the count is exactly the
// file offset one past that frame — the truncation point for recovery.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ScanResult reports the decodable prefix of a wire batch stream.
type ScanResult struct {
	// GoodBytes is the length of the longest prefix that decodes as
	// complete batches. Bytes past it are a torn or corrupt tail.
	GoodBytes int64
	// Batches and Samples count what the prefix holds.
	Batches uint64
	Samples uint64
	// Torn reports whether anything followed the good prefix; Err is the
	// decode error that ended a torn scan (nil on a clean EOF).
	Torn bool
	Err  error
}

// ScanStream reads wire batches from r until end-of-stream or damage and
// reports the decodable prefix. It never fails: damage is data, reported
// in the result, and the decoder is panic-free on arbitrary bytes (see
// FuzzTraceRecover).
func ScanStream(r io.Reader) ScanResult {
	cr := &countingReader{r: r}
	br := wire.NewReader(cr)
	br.SetReuse(true)
	var res ScanResult
	for {
		b, err := br.ReadBatch()
		if err == io.EOF {
			// Clean end only if it fell exactly on a frame boundary.
			if cr.n != res.GoodBytes {
				res.Torn = true
				res.Err = io.ErrUnexpectedEOF
			}
			return res
		}
		if err != nil {
			res.Torn = true
			res.Err = err
			return res
		}
		res.GoodBytes = cr.n
		res.Batches++
		res.Samples += uint64(len(b.Samples))
	}
}

// scanFile scans path and, when asked, truncates it to the good prefix
// and fsyncs the result so recovery decisions are durable.
func scanFile(path string, truncate bool) (ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScanResult{}, fmt.Errorf("trace: %w", err)
	}
	res := ScanStream(f)
	f.Close()
	if !truncate || !res.Torn {
		return res, nil
	}
	if err := os.Truncate(path, res.GoodBytes); err != nil {
		return res, fmt.Errorf("trace: truncating %s: %w", path, err)
	}
	w, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err == nil {
		w.Sync()
		w.Close()
	}
	return res, nil
}

// WindowRecovery describes what a campaign recovery scan found in one
// window file that was not covered by the manifest.
type WindowRecovery struct {
	Idx     int    `json:"idx"`
	Batches uint64 `json:"batches"`
	Samples uint64 `json:"samples"`
	// TruncatedBytes is how much torn tail was cut off (0 for a file
	// that decoded cleanly end to end).
	TruncatedBytes int64 `json:"truncated_bytes"`
	Torn           bool  `json:"torn"`
}

// RecoverReport says exactly what survived a campaign recovery.
type RecoverReport struct {
	// Sealed lists windows verified against the manifest (no scan
	// needed: atomically finalized before the crash).
	Sealed []int `json:"sealed"`
	// Scanned lists windows that had to be scanned — unlisted in the
	// manifest or listed at a different size — with what survived.
	Scanned []WindowRecovery `json:"scanned,omitempty"`
	// RemovedTemps lists in-flight temp files that were deleted.
	RemovedTemps []string `json:"removed_temps,omitempty"`
}

// Recover makes a campaign directory consistent after a crash: temp files
// from unfinished atomic writes are removed, manifest-sealed windows are
// trusted as-is, and any other window file is scanned and truncated to
// its decodable prefix. The repaired state is recorded back into the
// manifest, so a second Recover is a no-op. It reports exactly what
// survived; every window it leaves behind decodes cleanly.
func Recover(dir string) (*RecoverReport, error) {
	if _, err := os.Stat(filepath.Join(dir, MetaFileName)); err != nil {
		return nil, fmt.Errorf("trace: %s holds no campaign: %w", dir, err)
	}
	man, err := loadWindowManifest(dir)
	if err != nil {
		return nil, err
	}
	sealed := make(map[int]WindowInfo, len(man.Windows))
	for _, w := range man.Windows {
		sealed[w.Idx] = w
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	rep := &RecoverReport{}
	var out windowManifest
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, TempSuffix):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			rep.RemovedTemps = append(rep.RemovedTemps, name)
		case strings.HasPrefix(name, "window_") && strings.HasSuffix(name, ".mbw"):
			var idx int
			if _, err := fmt.Sscanf(name, "window_%04d.mbw", &idx); err != nil {
				continue
			}
			path := filepath.Join(dir, name)
			fi, err := e.Info()
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			if info, ok := sealed[idx]; ok && info.Bytes == fi.Size() {
				rep.Sealed = append(rep.Sealed, idx)
				out.Windows = append(out.Windows, info)
				continue
			}
			res, err := scanFile(path, true)
			if err != nil {
				return nil, err
			}
			rep.Scanned = append(rep.Scanned, WindowRecovery{
				Idx:            idx,
				Batches:        res.Batches,
				Samples:        res.Samples,
				TruncatedBytes: fi.Size() - res.GoodBytes,
				Torn:           res.Torn,
			})
			out.Windows = append(out.Windows, WindowInfo{
				Idx: idx, Batches: res.Batches, Samples: res.Samples, Bytes: res.GoodBytes,
			})
		}
	}
	sort.Ints(rep.Sealed)
	sort.Slice(rep.Scanned, func(i, j int) bool { return rep.Scanned[i].Idx < rep.Scanned[j].Idx })
	if err := saveWindowManifest(dir, out); err != nil {
		return nil, err
	}
	return rep, syncDir(dir)
}
