// Package trace persists measurement campaigns on disk.
//
// The paper's data set is organized as campaigns: for each rack, a random
// port (or port set) is polled for a short window in every hour of a day,
// and the resulting sample streams are retained for offline analysis
// (§4.2: 720 two-minute intervals, ~5M points each). This package mirrors
// that layout:
//
//	<dir>/campaign.json    — Meta: application, rack shape, interval,
//	                          counters, window plan, seed
//	<dir>/window_0000.mbw  — wire-format batches for window 0
//	<dir>/window_0001.mbw  — ...
//
// Windows are independent files so a partial campaign is loadable and
// windows can be processed streamingly.
//
// Window files carry wire-format batches in one of two on-disk layouts:
// trace-v1 (the default, MBW1/MBW2 row framing) and trace-v2 (MBW3
// columnar delta framing, typically several times smaller). Meta.Format
// records which one a campaign uses; readers dispatch per batch magic, so
// either layout — and mixtures — decode through the same Reader forever.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mburst/internal/collector"
	"mburst/internal/shard"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// MetaFileName is the campaign metadata file name.
const MetaFileName = "campaign.json"

// Meta describes a campaign. It is stored as JSON for human inspection;
// the bulky sample data lives in the binary window files.
type Meta struct {
	// App is the workload name ("web", "cache", "hadoop").
	App string `json:"app"`
	// RackID identifies the rack within the study.
	RackID int `json:"rack_id"`
	// NumServers / NumUplinks / speeds describe the rack shape.
	NumServers  int    `json:"num_servers"`
	NumUplinks  int    `json:"num_uplinks"`
	ServerSpeed uint64 `json:"server_speed_bps"`
	UplinkSpeed uint64 `json:"uplink_speed_bps"`
	// Interval is the target sampling interval in nanoseconds.
	Interval simclock.Duration `json:"interval_ns"`
	// WindowDur is each window's duration in nanoseconds.
	WindowDur simclock.Duration `json:"window_ns"`
	// Windows is the number of measurement windows (one per "hour").
	Windows int `json:"windows"`
	// Seed reproduces the campaign bit-for-bit.
	Seed uint64 `json:"seed"`
	// Counters lists what was polled.
	Counters []collector.CounterSpec `json:"counters"`
	// Format names the wire format of the window files ("mbw1", "mbw2",
	// "mbw3"); empty means the legacy default (trace-v1). Recorded for
	// provenance — readers dispatch on each batch's magic, not on this.
	Format string `json:"wire_format,omitempty"`
	// Notes is free-form context (which figure the campaign feeds, etc).
	Notes string `json:"notes,omitempty"`
	// Placement, when non-nil, records the fleet campaign's versioned
	// rack→shard placement (see internal/shard): which collector shard
	// owned each rack's stream. Single-collector campaigns omit it.
	Placement *shard.Placement `json:"placement,omitempty"`
}

// WireFormat resolves Format to a wire.Format, defaulting the empty
// string to wire.DefaultFormat.
func (m *Meta) WireFormat() (wire.Format, error) {
	if m.Format == "" {
		return wire.DefaultFormat, nil
	}
	return wire.ParseFormat(m.Format)
}

// Validate checks meta for obvious inconsistencies.
func (m *Meta) Validate() error {
	switch {
	case m.App == "":
		return errors.New("trace: empty app")
	case m.NumServers <= 0 || m.NumUplinks <= 0:
		return fmt.Errorf("trace: bad rack shape %d/%d", m.NumServers, m.NumUplinks)
	case m.Interval <= 0:
		return fmt.Errorf("trace: bad interval %v", m.Interval)
	case m.WindowDur <= 0:
		return fmt.Errorf("trace: bad window duration %v", m.WindowDur)
	case m.Windows <= 0:
		return fmt.Errorf("trace: bad window count %d", m.Windows)
	case len(m.Counters) == 0:
		return errors.New("trace: no counters recorded")
	}
	if _, err := m.WireFormat(); err != nil {
		return err
	}
	return nil
}

func windowFileName(i int) string { return fmt.Sprintf("window_%04d.mbw", i) }

// BatchSize is the number of samples per batch in window files. Exported
// so consumers that reconstruct per-batch provenance (the ptrace campaign
// recorder) chunk samples exactly as WriteWindow framed them.
const BatchSize = 8192

// Writer writes a campaign to a directory.
type Writer struct {
	dir    string
	meta   Meta
	format wire.Format
	done   map[int]bool
	open   Opener
	man    windowManifest
}

// Opener creates the file backing one window. It exists so fault-injection
// harnesses can interpose disk errors (see internal/fault.FlakyOpener,
// which matches this type structurally); production writers use os.Create.
type Opener func(path string) (io.WriteCloser, error)

// defaultOpener adapts os.Create to Opener.
func defaultOpener(path string) (io.WriteCloser, error) { return os.Create(path) }

// Create initializes a campaign directory (creating it if needed) and
// writes the metadata file. It refuses to reuse a directory that already
// contains a campaign: measurement data should never be silently
// overwritten.
func Create(dir string, meta Meta) (*Writer, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	metaPath := filepath.Join(dir, MetaFileName)
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("trace: %s already holds a campaign", dir)
	}
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: encoding meta: %w", err)
	}
	if err := atomicWriteFile(metaPath, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	format, err := meta.WireFormat() // Validate already vetted it
	if err != nil {
		return nil, err
	}
	return &Writer{dir: dir, meta: meta, format: format, done: make(map[int]bool), open: defaultOpener}, nil
}

// CreateWithOpener is Create with an injected window-file opener. A nil
// opener falls back to os.Create.
func CreateWithOpener(dir string, meta Meta, open Opener) (*Writer, error) {
	w, err := Create(dir, meta)
	if err != nil {
		return nil, err
	}
	if open != nil {
		w.open = open
	}
	return w, nil
}

// Meta returns the campaign metadata.
func (w *Writer) Meta() Meta { return w.meta }

// countWriter counts bytes written through it for the window manifest.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteWindow persists one window's samples. Each window may be written
// exactly once; idx must be in [0, meta.Windows).
//
// The window is finalized atomically: batches stream to a temp file,
// which is fsynced, renamed into place, and recorded in the manifest
// (itself an atomic write). A crash at any point leaves either a sealed,
// manifest-listed window or a temp file that recovery deletes — never a
// half-written window under the final name.
func (w *Writer) WriteWindow(idx int, rack uint32, samples []wire.Sample) error {
	if idx < 0 || idx >= w.meta.Windows {
		return fmt.Errorf("trace: window %d out of range [0,%d)", idx, w.meta.Windows)
	}
	if w.done[idx] {
		return fmt.Errorf("trace: window %d already written", idx)
	}
	final := filepath.Join(w.dir, windowFileName(idx))
	tmp := final + TempSuffix
	f, err := w.open(tmp)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	abort := func() { f.Close(); os.Remove(tmp) }
	cw := &countWriter{w: f}
	// One codec per window file: every window decodes standalone, so
	// partial campaigns stay loadable.
	bw, err := wire.NewWriterFormat(cw, w.format)
	if err != nil {
		abort()
		return err
	}
	var batches, count uint64
	for off := 0; off < len(samples); off += BatchSize {
		end := off + BatchSize
		if end > len(samples) {
			end = len(samples)
		}
		if err := bw.WriteBatch(&wire.Batch{Rack: rack, Samples: samples[off:end]}); err != nil {
			abort()
			return fmt.Errorf("trace: writing window %d: %w", idx, err)
		}
		batches++
		count += uint64(end - off)
	}
	// An empty window still produces a (valid, empty) file so Open can
	// distinguish "empty" from "missing".
	if len(samples) == 0 {
		if err := bw.WriteBatch(&wire.Batch{Rack: rack}); err != nil {
			abort()
			return fmt.Errorf("trace: writing window %d: %w", idx, err)
		}
		batches++
	}
	if err := maybeSync(f); err != nil {
		abort()
		return fmt.Errorf("trace: syncing window %d: %w", idx, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: closing window %d: %w", idx, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: sealing window %d: %w", idx, err)
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.man.Windows = append(w.man.Windows, WindowInfo{Idx: idx, Batches: batches, Samples: count, Bytes: cw.n})
	if err := saveWindowManifest(w.dir, w.man); err != nil {
		return err
	}
	w.done[idx] = true
	return nil
}

// Discard removes everything the writer created — the metadata file, every
// window it wrote, and (when empty afterwards) the directory itself. It is
// the cleanup path for canceled or failed recordings: a campaign directory
// either holds a complete campaign or nothing.
func (w *Writer) Discard() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	for idx := range w.done {
		keep(os.Remove(filepath.Join(w.dir, windowFileName(idx))))
	}
	// In-flight temp files from an interrupted WriteWindow, plus the
	// manifest, go too: nothing may suggest a campaign remains.
	if names, err := filepath.Glob(filepath.Join(w.dir, "window_*.mbw"+TempSuffix)); err == nil {
		for _, name := range names {
			keep(os.Remove(name))
		}
	}
	keep(os.Remove(filepath.Join(w.dir, ManifestFileName)))
	keep(os.Remove(filepath.Join(w.dir, MetaFileName)))
	// Best-effort: only succeeds when the directory held nothing else.
	os.Remove(w.dir)
	if firstErr != nil {
		return fmt.Errorf("trace: discarding campaign: %w", firstErr)
	}
	return nil
}

// Reader reads a campaign from a directory.
type Reader struct {
	dir  string
	meta Meta
}

// Open loads a campaign's metadata.
func Open(dir string) (*Reader, error) {
	data, err := os.ReadFile(filepath.Join(dir, MetaFileName))
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("trace: decoding meta: %w", err)
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	return &Reader{dir: dir, meta: meta}, nil
}

// Meta returns the campaign metadata.
func (r *Reader) Meta() Meta { return r.meta }

// HasWindow reports whether window idx exists on disk.
func (r *Reader) HasWindow(idx int) bool {
	_, err := os.Stat(filepath.Join(r.dir, windowFileName(idx)))
	return err == nil
}

// IterWindow streams window idx batch-by-batch through fn without loading
// the whole window into memory — a 2-minute 25 µs campaign holds ~5M
// samples per counter, so analyses over many counters should stream.
// Iteration stops early if fn returns a non-nil error, which is returned.
//
// The batch (and its Samples slice) is only valid for the duration of the
// fn call: the reader reuses it for the next batch. Handlers that keep
// samples must copy the values out.
func (r *Reader) IterWindow(idx int, fn func(batch *wire.Batch) error) error {
	if idx < 0 || idx >= r.meta.Windows {
		return fmt.Errorf("trace: window %d out of range [0,%d)", idx, r.meta.Windows)
	}
	if fn == nil {
		return fmt.Errorf("trace: nil batch handler")
	}
	f, err := os.Open(filepath.Join(r.dir, windowFileName(idx)))
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	br := wire.NewReader(f)
	br.SetReuse(true)
	for {
		b, err := br.ReadBatch()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: window %d: %w", idx, err)
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}
