package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mburst/internal/wire"
)

// segmentBytes encodes a few batches in format f, returning the raw
// stream — fuzz seed material for the recovery scanners.
func segmentBytes(tb testing.TB, f wire.Format) []byte {
	var buf bytes.Buffer
	bw, err := wire.NewWriterFormat(&buf, f)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b := archiveBatch(i, 16)
		b.Epoch = 0 // MBW1 seeds cannot carry a non-zero epoch
		if err := bw.WriteBatch(b); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzTraceRecover feeds arbitrary bytes to the archive and campaign
// recovery paths as a crashed tail. Recovery must never panic, must
// leave only decodable data behind, and what it reports must match what
// a subsequent read actually finds.
func FuzzTraceRecover(f *testing.F) {
	for _, format := range []wire.Format{wire.FormatMBW1, wire.FormatMBW2, wire.FormatMBW3} {
		data := segmentBytes(f, format)
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:len(data)-1])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0x4d, 0x42, 0x57, 0x31})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Archive path: the bytes are a crashed open segment.
		dir := filepath.Join(t.TempDir(), "arch")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := saveArchiveManifest(dir, ArchiveManifest{}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segOpenName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverArchive(dir)
		if err != nil {
			t.Fatalf("RecoverArchive: %v", err)
		}
		var batches, samples uint64
		if err := IterArchive(dir, func(b *wire.Batch) error {
			batches++
			samples += uint64(len(b.Samples))
			return nil
		}); err != nil {
			t.Fatalf("recovered archive does not decode: %v", err)
		}
		if batches != rec.Batches || samples != rec.Samples {
			t.Fatalf("recovery reported %d/%d batches/samples, replay found %d/%d",
				rec.Batches, rec.Samples, batches, samples)
		}

		// Campaign path: the bytes are window 0 with no manifest entry.
		cdir := filepath.Join(t.TempDir(), "camp")
		w, err := Create(cdir, validMeta())
		if err != nil {
			t.Fatal(err)
		}
		_ = w
		if err := os.WriteFile(filepath.Join(cdir, windowFileName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := Recover(cdir)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(rep.Scanned) != 1 {
			t.Fatalf("campaign recovery scanned %d windows, want 1", len(rep.Scanned))
		}
		r, err := Open(cdir)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		if err := r.IterWindow(0, func(b *wire.Batch) error {
			got += uint64(len(b.Samples))
			return nil
		}); err != nil {
			t.Fatalf("recovered window does not decode: %v", err)
		}
		if got != rep.Scanned[0].Samples {
			t.Fatalf("recovery reported %d samples, replay found %d", rep.Scanned[0].Samples, got)
		}
	})
}
