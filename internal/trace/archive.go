package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mburst/internal/wire"
)

// The collector archive is the durable, append-only record of everything
// mbcollectd admitted: the write-ahead log the checkpoint/restore path
// replays. It is segmented because the MBW3 codec carries delta chains
// across batches written by one writer — appending to an existing stream
// with a fresh writer would silently corrupt decoding. Every collector
// incarnation therefore opens a new segment, and every segment decodes
// standalone:
//
//	<dir>/archive.json     — manifest: wire format + sealed segments
//	<dir>/seg_000001.mbw   — sealed (fsynced, renamed, manifest-listed)
//	<dir>/seg_000002.open  — the incarnation currently appending
//
// A crash leaves at worst a torn tail on the .open segment;
// RecoverArchive truncates it to the decodable prefix and seals it.

// ArchiveManifestName is the archive manifest file name.
const ArchiveManifestName = "archive.json"

const openSuffix = ".open"

// SegmentInfo records one sealed archive segment.
type SegmentInfo struct {
	Seq     int    `json:"seq"`
	Batches uint64 `json:"batches"`
	Samples uint64 `json:"samples"`
	Bytes   int64  `json:"bytes"`
}

// ArchiveManifest is the on-disk shape of ArchiveManifestName.
type ArchiveManifest struct {
	// Format names the wire format segments are written in (informative;
	// readers dispatch on batch magic).
	Format string `json:"wire_format,omitempty"`
	// Segments lists sealed segments in ascending Seq order.
	Segments []SegmentInfo `json:"segments"`
}

func segName(seq int) string     { return fmt.Sprintf("seg_%06d.mbw", seq) }
func segOpenName(seq int) string { return fmt.Sprintf("seg_%06d", seq) + openSuffix }

// ArchiveConfig parameterizes an archive writer.
type ArchiveConfig struct {
	// Format is the wire format for new segments (zero = wire.DefaultFormat).
	Format wire.Format
	// SegmentBatches rotates to a fresh segment after this many batches
	// (default 4096). Rotation bounds how much one torn tail can cost
	// and keeps single segments replayable in bounded memory.
	SegmentBatches int
	// SyncEvery fsyncs the open segment after this many batches
	// (default 64). 1 makes every admitted batch durable before the
	// write returns — what the crash soak runs with.
	SyncEvery int
	// Open creates segment files; nil falls back to os.Create. It is
	// the disk fault-injection point, matching the campaign Writer's
	// Opener contract.
	Open Opener
	// WrapWrites, when non-nil, wraps the byte stream batches are
	// encoded into (fault.WriteChaos interposes torn and short writes
	// here). Sync and Close still go to the underlying file.
	WrapWrites func(io.Writer) io.Writer
}

func (cfg ArchiveConfig) withDefaults() ArchiveConfig {
	if cfg.Format == 0 {
		cfg.Format = wire.DefaultFormat
	}
	if cfg.SegmentBatches <= 0 {
		cfg.SegmentBatches = 4096
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 64
	}
	if cfg.Open == nil {
		cfg.Open = defaultOpener
	}
	return cfg
}

// ArchiveWriter appends batches to a segmented archive. It is not
// concurrency-safe; the collector serializes writes through its ingest
// mutex. After a write error the writer latches failed: the segment may
// hold a torn frame, so accepting more batches would corrupt the log.
type ArchiveWriter struct {
	dir string
	cfg ArchiveConfig
	man ArchiveManifest

	seq        int
	f          io.WriteCloser
	cw         *countWriter
	bw         *wire.Writer
	segBatches uint64
	segSamples uint64

	total     uint64
	sinceSync int
	closed    bool
	err       error
}

func loadArchiveManifest(dir string) (ArchiveManifest, error) {
	var man ArchiveManifest
	data, err := os.ReadFile(filepath.Join(dir, ArchiveManifestName))
	if err != nil {
		return man, fmt.Errorf("trace: %s holds no archive: %w", dir, err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("trace: decoding archive manifest: %w", err)
	}
	return man, nil
}

func saveArchiveManifest(dir string, man ArchiveManifest) error {
	sort.Slice(man.Segments, func(i, j int) bool { return man.Segments[i].Seq < man.Segments[j].Seq })
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding archive manifest: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, ArchiveManifestName), append(data, '\n'), 0o644)
}

// CreateArchive initializes an empty archive directory and opens its
// first segment. Like Create, it refuses a directory that already holds
// an archive.
func CreateArchive(dir string, cfg ArchiveConfig) (*ArchiveWriter, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ArchiveManifestName)); err == nil {
		return nil, fmt.Errorf("trace: %s already holds an archive", dir)
	}
	man := ArchiveManifest{Format: cfg.Format.String()}
	if err := saveArchiveManifest(dir, man); err != nil {
		return nil, err
	}
	w := &ArchiveWriter{dir: dir, cfg: cfg, man: man, seq: 0}
	if err := w.openSegment(1); err != nil {
		return nil, err
	}
	return w, nil
}

// ResumeArchive recovers an existing archive (sealing any crashed open
// segment at its decodable prefix) and opens a fresh segment for this
// writer incarnation. The returned recovery report says what survived.
func ResumeArchive(dir string, cfg ArchiveConfig) (*ArchiveWriter, *ArchiveRecovery, error) {
	cfg = cfg.withDefaults()
	rec, err := RecoverArchive(dir)
	if err != nil {
		return nil, nil, err
	}
	man, err := loadArchiveManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	next := 1
	for _, s := range man.Segments {
		if s.Seq >= next {
			next = s.Seq + 1
		}
	}
	w := &ArchiveWriter{dir: dir, cfg: cfg, man: man, total: rec.Batches}
	if err := w.openSegment(next); err != nil {
		return nil, nil, err
	}
	return w, rec, nil
}

func (w *ArchiveWriter) openSegment(seq int) error {
	f, err := w.cfg.Open(filepath.Join(w.dir, segOpenName(seq)))
	if err != nil {
		return fmt.Errorf("trace: opening segment %d: %w", seq, err)
	}
	cw := &countWriter{w: f}
	var sink io.Writer = cw
	if w.cfg.WrapWrites != nil {
		sink = w.cfg.WrapWrites(sink)
	}
	bw, err := wire.NewWriterFormat(sink, w.cfg.Format)
	if err != nil {
		f.Close()
		return err
	}
	w.seq, w.f, w.cw, w.bw = seq, f, cw, bw
	w.segBatches, w.segSamples, w.sinceSync = 0, 0, 0
	return nil
}

// WriteBatch appends one batch, rotating segments and fsyncing per the
// configured cadence. On error the writer is failed for good.
func (w *ArchiveWriter) WriteBatch(b *wire.Batch) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: archive closed")
	}
	if w.segBatches >= uint64(w.cfg.SegmentBatches) {
		if err := w.rotate(); err != nil {
			w.err = err
			return err
		}
	}
	if err := w.bw.WriteBatch(b); err != nil {
		w.err = fmt.Errorf("trace: archive segment %d: %w", w.seq, err)
		return w.err
	}
	w.total++
	w.segBatches++
	w.segSamples += uint64(len(b.Samples))
	w.sinceSync++
	if w.sinceSync >= w.cfg.SyncEvery {
		return w.Sync()
	}
	return nil
}

// Sync makes everything written so far durable (when the segment file
// supports fsync). The checkpointer calls this before persisting a
// high-water mark so the checkpoint never claims batches the disk lost.
func (w *ArchiveWriter) Sync() error {
	if w.err != nil {
		return w.err
	}
	if w.closed || w.f == nil {
		return nil
	}
	if err := maybeSync(w.f); err != nil {
		w.err = fmt.Errorf("trace: syncing segment %d: %w", w.seq, err)
		return w.err
	}
	w.sinceSync = 0
	return nil
}

// Batches returns the total batches accepted across all segments,
// including ones recovered from earlier incarnations — the coordinate
// the collector checkpoint records as its archive high-water mark.
func (w *ArchiveWriter) Batches() uint64 { return w.total }

// seal fsyncs, closes, and renames the open segment into its sealed name,
// then records it in the manifest.
func (w *ArchiveWriter) seal() error {
	if w.f == nil {
		return nil
	}
	if err := maybeSync(w.f); err != nil {
		w.f.Close()
		return fmt.Errorf("trace: syncing segment %d: %w", w.seq, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("trace: closing segment %d: %w", w.seq, err)
	}
	openPath := filepath.Join(w.dir, segOpenName(w.seq))
	if err := os.Rename(openPath, filepath.Join(w.dir, segName(w.seq))); err != nil {
		return fmt.Errorf("trace: sealing segment %d: %w", w.seq, err)
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.man.Segments = append(w.man.Segments, SegmentInfo{
		Seq: w.seq, Batches: w.segBatches, Samples: w.segSamples, Bytes: w.cw.n,
	})
	w.f, w.bw, w.cw = nil, nil, nil
	return saveArchiveManifest(w.dir, w.man)
}

func (w *ArchiveWriter) rotate() error {
	if err := w.seal(); err != nil {
		return err
	}
	return w.openSegment(w.seq + 1)
}

// Close seals the open segment. A failed writer's Close reports the
// latched error; the torn segment is left for RecoverArchive.
func (w *ArchiveWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
		return w.err
	}
	return w.seal()
}

// SegmentRecovery describes what an archive recovery scan found in one
// segment that was not sealed in the manifest.
type SegmentRecovery struct {
	Name           string `json:"name"`
	Batches        uint64 `json:"batches"`
	Samples        uint64 `json:"samples"`
	TruncatedBytes int64  `json:"truncated_bytes"`
	Torn           bool   `json:"torn"`
}

// ArchiveRecovery says exactly what an archive recovery found and kept.
type ArchiveRecovery struct {
	// SealedSegments counts segments verified against the manifest.
	SealedSegments int `json:"sealed_segments"`
	// Scanned lists segments that had to be scanned: crashed .open
	// segments and sealed files the manifest missed or missized.
	Scanned []SegmentRecovery `json:"scanned,omitempty"`
	// RemovedTemps lists in-flight temp files that were deleted.
	RemovedTemps []string `json:"removed_temps,omitempty"`
	// Batches and Samples total the durable archive after repair.
	Batches uint64 `json:"batches"`
	Samples uint64 `json:"samples"`
}

// RecoverArchive makes an archive directory consistent after a crash:
// temp files are removed, manifest-sealed segments are trusted at their
// recorded size, open segments are truncated to their decodable prefix
// and sealed, and unlisted or missized sealed files are rescanned. After
// it returns, IterArchive decodes every byte the manifest claims. It
// never panics on damaged input (see FuzzTraceRecover).
func RecoverArchive(dir string) (*ArchiveRecovery, error) {
	man, err := loadArchiveManifest(dir)
	if err != nil {
		return nil, err
	}
	sealed := make(map[int]SegmentInfo, len(man.Segments))
	for _, s := range man.Segments {
		sealed[s.Seq] = s
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	rep := &ArchiveRecovery{}
	out := ArchiveManifest{Format: man.Format}
	record := func(seq int, info SegmentInfo) {
		out.Segments = append(out.Segments, info)
		rep.Batches += info.Batches
		rep.Samples += info.Samples
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, TempSuffix):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			rep.RemovedTemps = append(rep.RemovedTemps, name)
		case strings.HasPrefix(name, "seg_") && strings.HasSuffix(name, openSuffix):
			var seq int
			if _, err := fmt.Sscanf(name, "seg_%06d", &seq); err != nil {
				continue
			}
			path := filepath.Join(dir, name)
			fi, err := e.Info()
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			res, err := scanFile(path, true)
			if err != nil {
				return nil, err
			}
			if err := os.Rename(path, filepath.Join(dir, segName(seq))); err != nil {
				return nil, fmt.Errorf("trace: sealing segment %d: %w", seq, err)
			}
			rep.Scanned = append(rep.Scanned, SegmentRecovery{
				Name:           segName(seq),
				Batches:        res.Batches,
				Samples:        res.Samples,
				TruncatedBytes: fi.Size() - res.GoodBytes,
				Torn:           res.Torn,
			})
			record(seq, SegmentInfo{Seq: seq, Batches: res.Batches, Samples: res.Samples, Bytes: res.GoodBytes})
		case strings.HasPrefix(name, "seg_") && strings.HasSuffix(name, ".mbw"):
			var seq int
			if _, err := fmt.Sscanf(name, "seg_%06d.mbw", &seq); err != nil {
				continue
			}
			fi, err := e.Info()
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			if info, ok := sealed[seq]; ok && info.Bytes == fi.Size() {
				rep.SealedSegments++
				record(seq, info)
				continue
			}
			res, err := scanFile(filepath.Join(dir, name), true)
			if err != nil {
				return nil, err
			}
			rep.Scanned = append(rep.Scanned, SegmentRecovery{
				Name:           name,
				Batches:        res.Batches,
				Samples:        res.Samples,
				TruncatedBytes: fi.Size() - res.GoodBytes,
				Torn:           res.Torn,
			})
			record(seq, SegmentInfo{Seq: seq, Batches: res.Batches, Samples: res.Samples, Bytes: res.GoodBytes})
		}
	}
	sort.Slice(rep.Scanned, func(i, j int) bool { return rep.Scanned[i].Name < rep.Scanned[j].Name })
	if err := saveArchiveManifest(dir, out); err != nil {
		return nil, err
	}
	return rep, syncDir(dir)
}

// IterArchive streams every archived batch through fn in segment order —
// the exact admission order the collector wrote. The batch is only valid
// for the duration of the call (the reader reuses it). Run RecoverArchive
// first after a crash; IterArchive treats damage as an error.
func IterArchive(dir string, fn func(b *wire.Batch) error) error {
	if fn == nil {
		return errors.New("trace: nil batch handler")
	}
	man, err := loadArchiveManifest(dir)
	if err != nil {
		return err
	}
	sort.Slice(man.Segments, func(i, j int) bool { return man.Segments[i].Seq < man.Segments[j].Seq })
	for _, s := range man.Segments {
		f, err := os.Open(filepath.Join(dir, segName(s.Seq)))
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		// Fresh reader per segment: each segment is a standalone codec
		// stream (MBW3 delta chains never cross segment boundaries).
		br := wire.NewReader(f)
		br.SetReuse(true)
		for {
			b, err := br.ReadBatch()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("trace: segment %d: %w", s.Seq, err)
			}
			if err := fn(b); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}
