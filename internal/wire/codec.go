package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Format identifies a wire format version. The zero value is invalid;
// writers that accept a zero Format substitute DefaultFormat.
type Format uint8

const (
	// FormatMBW1 is the original epoch-less framing. A batch carrying a
	// non-zero Epoch cannot be expressed in it; encoding one fails.
	FormatMBW1 Format = 1
	// FormatMBW2 is the epoch-aware framing. For compatibility with
	// streams written before epochs existed, a zero-epoch batch is framed
	// as MBW1, byte-identical to the legacy format; batches with a
	// non-zero epoch carry it under the MBW2 magic.
	FormatMBW2 Format = 2
	// FormatMBW3 is the columnar delta format: per-series zigzag-varint
	// deltas of cumulative counters with run-length-compressed columns.
	// Deltas chain across batches (the first batch of a stream — or of a
	// new epoch — carries absolutes), so an MBW3 codec is stateful and
	// scoped to one connection or one window file.
	FormatMBW3 Format = 3
)

// DefaultFormat is what NewWriter and zero-Format configurations speak.
const DefaultFormat = FormatMBW2

// String returns the flag-friendly name ("mbw1", "mbw2", "mbw3").
func (f Format) String() string {
	switch f {
	case FormatMBW1:
		return "mbw1"
	case FormatMBW2:
		return "mbw2"
	case FormatMBW3:
		return "mbw3"
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// ParseFormat parses a format name as accepted by the -wire flags.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "mbw1":
		return FormatMBW1, nil
	case "mbw2":
		return FormatMBW2, nil
	case "mbw3":
		return FormatMBW3, nil
	}
	return 0, fmt.Errorf("wire: unknown format %q (want mbw1, mbw2, or mbw3)", s)
}

// Codec encodes and decodes batches in one wire format. A Codec instance
// owns the per-stream compression state (MBW3 deltas chain across
// batches), so use one instance per connection or file, never share one
// across streams, and Reset it when the underlying stream restarts.
// Codecs are not safe for concurrent use.
type Codec interface {
	// Format reports the format this codec encodes.
	Format() Format
	// AppendBatch frames b and appends the encoded batch to dst,
	// returning the extended slice. It fails with ErrBatchTooLarge when
	// the payload would exceed MaxBatchPayload (stream state is not
	// advanced on failure).
	AppendBatch(dst []byte, b *Batch) ([]byte, error)
	// EncodedSize returns the exact framed size AppendBatch would
	// produce for b next, without encoding and without advancing stream
	// state.
	EncodedSize(b *Batch) int
	// DecodePayload decodes a CRC-verified payload into b, replacing
	// b's fields and reusing b.Samples' capacity. magic is the frame
	// magic the payload arrived under. Stream state advances only on
	// success.
	DecodePayload(magic uint32, payload []byte, b *Batch) error
	// Reset discards all stream state, as if the codec were new.
	Reset()
}

// NewCodec returns a fresh codec for f.
func NewCodec(f Format) (Codec, error) {
	switch f {
	case FormatMBW1, FormatMBW2:
		return &legacyCodec{f: f}, nil
	case FormatMBW3:
		return newMBW3Codec(), nil
	}
	return nil, fmt.Errorf("wire: unknown format %d", uint8(f))
}

// appendFrame wraps payload in the batch framing: magic, length, payload,
// CRC.
func appendFrame(dst []byte, magic uint32, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], magic)
	dst = append(dst, hdr[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	binary.BigEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
	return append(dst, hdr[:]...)
}

// legacyCodec implements the row-oriented MBW1/MBW2 formats. It is
// stateless across batches (every batch decodes standalone); the only
// instance state is a reusable scratch buffer.
type legacyCodec struct {
	f       Format
	scratch []byte
}

func (c *legacyCodec) Format() Format { return c.f }

func (c *legacyCodec) Reset() {}

//lint:hotpath steady-state encode: one frame per poll batch
func (c *legacyCodec) AppendBatch(dst []byte, b *Batch) ([]byte, error) {
	if c.f == FormatMBW1 && b.Epoch != 0 {
		return dst, fmt.Errorf("wire: mbw1 cannot carry epoch %d (use mbw2 or mbw3)", b.Epoch)
	}
	if n := payloadSize(b); n > MaxBatchPayload {
		return dst, fmt.Errorf("%w: %d byte payload (max %d)", ErrBatchTooLarge, n, MaxBatchPayload)
	}
	c.scratch = appendPayload(c.scratch[:0], b)
	magic := Magic
	if b.Epoch != 0 {
		magic = Magic2
	}
	return appendFrame(dst, magic, c.scratch), nil
}

func (c *legacyCodec) EncodedSize(b *Batch) int {
	p := payloadSize(b)
	return 4 + uvarintLen(uint64(p)) + p + 4
}

//lint:hotpath steady-state decode: one payload per ingested batch
func (c *legacyCodec) DecodePayload(magic uint32, payload []byte, b *Batch) error {
	if magic != Magic && magic != Magic2 {
		return fmt.Errorf("%w: magic %#x is not a legacy framing", ErrCorrupt, magic)
	}
	return decodeLegacyPayload(payload, magic == Magic2, b)
}
