package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

func sampleBatch() *Batch {
	return &Batch{
		Rack: 7,
		Samples: []Sample{
			{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 3, Dir: asic.TX, Kind: asic.KindBytes, Value: 10_000},
			{Time: simclock.Epoch.Add(simclock.Micros(50)), Port: 3, Dir: asic.TX, Kind: asic.KindBytes, Value: 16_250, Missed: 0},
			{Time: simclock.Epoch.Add(simclock.Micros(100)), Port: 3, Dir: asic.TX, Kind: asic.KindBytes, Value: 16_250, Missed: 1},
			{Time: simclock.Epoch.Add(simclock.Micros(125)), Port: 9, Dir: asic.RX, Kind: asic.KindSizeBins, Value: 0,
				Bins: [asic.NumSizeBins]uint64{100, 20, 3, 0, 7, 999}},
			{Time: simclock.Epoch.Add(simclock.Micros(150)), Port: 0, Dir: asic.TX, Kind: asic.KindBufferPeak, Value: 123456},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := sampleBatch()
	if err := w.WriteBatch(in); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	out, err := r.ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	if _, err := r.ReadBatch(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestMultipleBatches(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		b := sampleBatch()
		b.Rack = uint32(i)
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < 5; i++ {
		b, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if b.Rack != uint32(i) {
			t.Errorf("batch %d rack = %d", i, b.Rack)
		}
	}
	if _, err := r.ReadBatch(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteBatch(&Batch{Rack: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := NewReader(&buf).ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Rack != 1 || len(b.Samples) != 0 {
		t.Errorf("batch = %+v", b)
	}
}

func TestCorruptMagic(t *testing.T) {
	data := AppendBatch(nil, sampleBatch())
	data[0] ^= 0xff
	_, err := NewReader(bytes.NewReader(data)).ReadBatch()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptPayload(t *testing.T) {
	data := AppendBatch(nil, sampleBatch())
	// Flip a bit inside the payload: the CRC must catch it.
	data[len(data)/2] ^= 0x40
	_, err := NewReader(bytes.NewReader(data)).ReadBatch()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptCRC(t *testing.T) {
	data := AppendBatch(nil, sampleBatch())
	data[len(data)-1] ^= 0x01
	_, err := NewReader(bytes.NewReader(data)).ReadBatch()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	data := AppendBatch(nil, sampleBatch())
	for _, cut := range []int{1, 4, 6, len(data) - 2} {
		_, err := NewReader(bytes.NewReader(data[:cut])).ReadBatch()
		if err == nil || err == io.EOF {
			t.Errorf("cut at %d: err = %v, want failure", cut, err)
		}
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0x4d, 0x42, 0x57, 0x31
	buf.Write(hdr[:])
	// Claim a payload far over the limit.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	_, err := NewReader(&buf).ReadBatch()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsAbsurdRecordCount(t *testing.T) {
	// A payload that claims many records but contains none.
	payload := []byte{1, 0xff, 0xff, 0xff, 0x0f}
	err := decodeLegacyPayload(payload, false, &Batch{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestEpochRoundTrip(t *testing.T) {
	in := sampleBatch()
	in.Epoch = 3
	data := AppendBatch(nil, in)
	if got := binary.BigEndian.Uint32(data[:4]); got != Magic2 {
		t.Fatalf("epoch batch magic = %#x, want MBW2", got)
	}
	out, err := NewReader(bytes.NewReader(data)).ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestEpochZeroKeepsLegacyFraming(t *testing.T) {
	// The zero epoch must encode byte-identically to the pre-epoch format:
	// MBW1 magic and a payload whose header is exactly (rack, count).
	b := sampleBatch()
	data := AppendBatch(nil, b)
	if got := binary.BigEndian.Uint32(data[:4]); got != Magic {
		t.Fatalf("zero-epoch magic = %#x, want MBW1", got)
	}
	legacy := func(b *Batch) []byte {
		// Hand-rolled pre-epoch framing.
		payload := binary.AppendUvarint(nil, uint64(b.Rack))
		payload = binary.AppendUvarint(payload, uint64(len(b.Samples)))
		var prevTime int64
		var prevValue uint64
		for i := range b.Samples {
			s := &b.Samples[i]
			payload = binary.AppendVarint(payload, s.Time.Nanoseconds()-prevTime)
			prevTime = s.Time.Nanoseconds()
			payload = binary.AppendUvarint(payload, uint64(s.Port))
			payload = append(payload, byte(s.Dir)|byte(s.Kind)<<1)
			payload = binary.AppendUvarint(payload, uint64(s.Missed))
			payload = binary.AppendVarint(payload, int64(s.Value-prevValue))
			prevValue = s.Value
			if s.Kind == asic.KindSizeBins {
				for _, v := range s.Bins {
					payload = binary.AppendUvarint(payload, v)
				}
			}
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], Magic)
		out := append([]byte(nil), hdr[:]...)
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		return append(out, crc[:]...)
	}
	if !bytes.Equal(data, legacy(b)) {
		t.Fatal("zero-epoch batch is not byte-identical to the legacy framing")
	}
}

func TestEpochInterleavedFramings(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	epochs := []uint32{0, 2, 0, 7}
	for _, e := range epochs {
		b := sampleBatch()
		b.Epoch = e
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, e := range epochs {
		b, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if b.Epoch != e {
			t.Errorf("batch %d epoch = %d, want %d", i, b.Epoch, e)
		}
	}
	if _, err := r.ReadBatch(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEpochZeroInMBW2Rejected(t *testing.T) {
	// An MBW2 frame whose payload claims epoch 0 is corrupt: writers frame
	// epoch 0 as MBW1, so the combination only arises from corruption.
	payload := binary.AppendUvarint(nil, 1) // rack
	payload = binary.AppendUvarint(payload, 0)
	payload = binary.AppendUvarint(payload, 0) // count
	err := decodeLegacyPayload(payload, true, &Batch{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCumulativeValueWrap(t *testing.T) {
	// Deltas survive value regressions (e.g. a buffer gauge going down).
	in := &Batch{Rack: 0, Samples: []Sample{
		{Time: 1, Kind: asic.KindBufferPeak, Value: 1 << 40},
		{Time: 2, Kind: asic.KindBufferPeak, Value: 10},
		{Time: 3, Kind: asic.KindBufferPeak, Value: 1 << 50},
	}}
	data := AppendBatch(nil, in)
	out, err := NewReader(bytes.NewReader(data)).ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
}

// Property: any batch of generated samples round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(rack uint32, raw []struct {
		T    uint32
		Port uint16
		DK   uint8
		Miss uint16
		Val  uint64
		B0   uint16
	}) bool {
		in := &Batch{Rack: rack}
		var lastT int64
		for _, r := range raw {
			lastT += int64(r.T)
			s := Sample{
				Time:   simclock.Time(lastT),
				Port:   r.Port,
				Dir:    asic.Direction(r.DK & 1),
				Kind:   asic.CounterKind(int(r.DK>>1) % 5),
				Missed: uint32(r.Miss),
				Value:  r.Val,
			}
			if s.Kind == asic.KindSizeBins {
				s.Bins[0] = uint64(r.B0)
			}
			in.Samples = append(in.Samples, s)
		}
		data := AppendBatch(nil, in)
		out, err := NewReader(bytes.NewReader(data)).ReadBatch()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeMatchesAppendBatch(t *testing.T) {
	cases := map[string]*Batch{
		"empty":      {Rack: 1},
		"mbw1":       sampleBatch(),
		"mbw2":       {Rack: 7, Epoch: 3, Samples: sampleBatch().Samples},
		"big-values": {Rack: 1 << 20, Epoch: 1<<32 - 1, Samples: []Sample{{Time: simclock.Epoch.Add(simclock.Millis(500)), Port: 300, Value: 1 << 60}}},
		"value-regression": {Rack: 2, Samples: []Sample{
			{Time: simclock.Epoch, Value: 1 << 40},
			{Time: simclock.Epoch.Add(simclock.Micros(1)), Value: 10},
		}},
	}
	for name, b := range cases {
		got := EncodedSize(b)
		want := len(AppendBatch(nil, b))
		if got != want {
			t.Errorf("%s: EncodedSize = %d, framed bytes = %d", name, got, want)
		}
	}
}

func TestEncodedSizeQuick(t *testing.T) {
	f := func(rack, epoch uint32, times []int64, values []uint64) bool {
		b := &Batch{Rack: rack, Epoch: epoch}
		for i := range times {
			var v uint64
			if i < len(values) {
				v = values[i]
			}
			b.Samples = append(b.Samples, Sample{
				Time:  simclock.Time(times[i]),
				Port:  uint16(i),
				Kind:  asic.KindBytes,
				Value: v,
			})
		}
		return EncodedSize(b) == len(AppendBatch(nil, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
