package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

func TestFormatStringAndParse(t *testing.T) {
	for _, f := range []Format{FormatMBW1, FormatMBW2, FormatMBW3} {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFormat("mbw9"); err == nil {
		t.Error("ParseFormat accepted mbw9")
	}
	if _, err := ParseFormat(""); err == nil {
		t.Error("ParseFormat accepted empty string")
	}
}

func TestNewCodecUnknownFormat(t *testing.T) {
	if _, err := NewCodec(Format(9)); err == nil {
		t.Fatal("NewCodec accepted format 9")
	}
	if _, err := NewCodec(0); err == nil {
		t.Fatal("NewCodec accepted the zero format")
	}
	for _, f := range []Format{FormatMBW1, FormatMBW2, FormatMBW3} {
		c, err := NewCodec(f)
		if err != nil {
			t.Fatalf("NewCodec(%v): %v", f, err)
		}
		if c.Format() != f {
			t.Errorf("codec for %v reports %v", f, c.Format())
		}
	}
}

func TestMBW1CodecRejectsEpoch(t *testing.T) {
	c, err := NewCodec(FormatMBW1)
	if err != nil {
		t.Fatal(err)
	}
	b := sampleBatch()
	b.Epoch = 2
	if _, err := c.AppendBatch(nil, b); err == nil {
		t.Fatal("mbw1 codec encoded an epoch batch")
	}
	w, err := NewWriterFormat(io.Discard, FormatMBW1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(b); err == nil {
		t.Fatal("mbw1 writer accepted an epoch batch")
	}
	b.Epoch = 0
	if err := w.WriteBatch(b); err != nil {
		t.Fatalf("mbw1 writer rejected a zero-epoch batch: %v", err)
	}
}

func TestNewWriterFormatZeroIsDefault(t *testing.T) {
	w, err := NewWriterFormat(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Format() != DefaultFormat {
		t.Fatalf("zero format resolved to %v, want %v", w.Format(), DefaultFormat)
	}
	if _, err := NewWriterFormat(io.Discard, Format(42)); err == nil {
		t.Fatal("NewWriterFormat accepted format 42")
	}
}

// TestWriterFormatsAgreeWithReader round-trips the same batches through a
// writer of every format; the reader must reproduce them exactly in all
// three.
func TestWriterFormatsAgreeWithReader(t *testing.T) {
	for _, f := range []Format{FormatMBW1, FormatMBW2, FormatMBW3} {
		var buf bytes.Buffer
		w, err := NewWriterFormat(&buf, f)
		if err != nil {
			t.Fatal(err)
		}
		var want []*Batch
		for i := 0; i < 4; i++ {
			b := sampleBatch()
			b.Rack = uint32(i)
			for j := range b.Samples {
				b.Samples[j].Time = b.Samples[j].Time.Add(simclock.Millis(int64(i)))
				b.Samples[j].Value += uint64(i * 1000)
			}
			if err := w.WriteBatch(b); err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			want = append(want, b)
		}
		r := NewReader(&buf)
		for i, wb := range want {
			got, err := r.ReadBatch()
			if err != nil {
				t.Fatalf("%v batch %d: %v", f, i, err)
			}
			if !reflect.DeepEqual(wb, got) {
				t.Fatalf("%v batch %d mismatch:\n in: %+v\nout: %+v", f, i, wb, got)
			}
		}
		if _, err := r.ReadBatch(); err != io.EOF {
			t.Fatalf("%v: expected EOF, got %v", f, err)
		}
	}
}

// TestInterleavedFormatsOneStream splices MBW1, MBW2, and MBW3 frames
// into a single stream; the reader must decode all of them, and the MBW3
// delta chain must survive the legacy frames in between.
func TestInterleavedFormatsOneStream(t *testing.T) {
	c3, err := NewCodec(FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	m1 := sampleBatch() // epoch 0: MBW1 framing
	m2 := sampleBatch()
	m2.Epoch = 4 // MBW2 framing
	c1 := &Batch{Rack: 9, Samples: []Sample{
		{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 2, Dir: asic.TX, Kind: asic.KindBytes, Value: 1000},
		{Time: simclock.Epoch.Add(simclock.Micros(50)), Port: 2, Dir: asic.TX, Kind: asic.KindBytes, Value: 1500},
	}}
	c2 := &Batch{Rack: 9, Samples: []Sample{
		{Time: simclock.Epoch.Add(simclock.Micros(75)), Port: 2, Dir: asic.TX, Kind: asic.KindBytes, Value: 2250},
	}}

	var stream []byte
	stream, err = c3.AppendBatch(stream, c1)
	if err != nil {
		t.Fatal(err)
	}
	stream = AppendBatch(stream, m1)
	stream = AppendBatch(stream, m2)
	stream, err = c3.AppendBatch(stream, c2) // deltas chain over the legacy frames
	if err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(stream))
	for i, want := range []*Batch{c1, m1, m2, c2} {
		got, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batch %d mismatch:\n in: %+v\nout: %+v", i, want, got)
		}
	}
	if _, err := r.ReadBatch(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestReaderReset replays the same MBW3 stream through one Reader twice;
// Reset must restart the delta chains so the second pass decodes
// identically.
func TestReaderReset(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterFormat(&buf, FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	b1 := sampleBatch()
	b2 := sampleBatch()
	for j := range b2.Samples {
		b2.Samples[j].Time = b2.Samples[j].Time.Add(simclock.Millis(1))
		b2.Samples[j].Value *= 3
	}
	if err := w.WriteBatch(b1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(b2); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	r := NewReader(bytes.NewReader(stream))
	readAll := func(pass int) []*Batch {
		var out []*Batch
		for {
			b, err := r.ReadBatch()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatalf("pass %d: %v", pass, err)
			}
			out = append(out, b)
		}
	}
	first := readAll(1)
	r.Reset(bytes.NewReader(stream))
	second := readAll(2)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay after Reset diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if !reflect.DeepEqual(first, []*Batch{b1, b2}) {
		t.Fatalf("decoded stream mismatch: %+v", first)
	}
}

func TestWriteBatchRejectsOversizedLegacy(t *testing.T) {
	// Alternating huge timestamps and values defeat the row format's
	// delta encoding (~20 bytes per sample), pushing the payload past
	// MaxBatchPayload with under a million samples.
	b := &Batch{Rack: 1}
	n := MaxBatchPayload/20 + 1
	for i := 0; i < n; i++ {
		s := Sample{Port: 1, Kind: asic.KindBytes}
		if i%2 == 0 {
			s.Time = simclock.Time(1 << 60)
			s.Value = 1 << 60
		}
		b.Samples = append(b.Samples, s)
	}
	var buf bytes.Buffer
	err := NewWriter(&buf).WriteBatch(b)
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected batch still wrote %d bytes", buf.Len())
	}
}

func TestWriteBatchRejectsOversizedMBW3(t *testing.T) {
	// Pseudo-random size-bin values are incompressible: ~7 ten-byte
	// varints per sample keeps the batch small enough to build quickly
	// while overflowing the payload cap.
	b := &Batch{Rack: 1}
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x | 1<<63
	}
	n := MaxBatchPayload/60 + 1
	for i := 0; i < n; i++ {
		s := Sample{
			Time:  simclock.Time(i),
			Port:  1,
			Kind:  asic.KindSizeBins,
			Value: next(),
		}
		for k := range s.Bins {
			s.Bins[k] = next()
		}
		b.Samples = append(b.Samples, s)
	}
	var buf bytes.Buffer
	w, err := NewWriterFormat(&buf, FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	err = w.WriteBatch(b)
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected batch still wrote %d bytes", buf.Len())
	}
	// The failed write must not have advanced the delta chain: a normal
	// batch written afterwards still decodes exactly.
	ok := sampleBatch()
	if err := w.WriteBatch(ok); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ok, got) {
		t.Fatalf("post-rejection batch mismatch:\n in: %+v\nout: %+v", ok, got)
	}
}
