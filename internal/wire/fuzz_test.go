package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// FuzzReadBatch throws arbitrary bytes at the decoder: it must either
// return a batch, a clean EOF, or a wrapped error — never panic, never
// allocate unboundedly, and any successfully decoded batch must re-encode
// to a decodable batch (idempotence of the round trip).
func FuzzReadBatch(f *testing.F) {
	// Seeds: a valid single-batch stream, a valid two-batch stream,
	// truncations, and flipped bytes.
	valid := AppendBatch(nil, &Batch{
		Rack: 3,
		Samples: []Sample{
			{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Value: 999},
			{Time: simclock.Epoch.Add(simclock.Micros(50)), Port: 1, Dir: asic.TX, Kind: asic.KindSizeBins,
				Bins: [asic.NumSizeBins]uint64{1, 2, 3, 4, 5, 6}},
		},
	})
	f.Add(valid)
	f.Add(AppendBatch(valid, &Batch{Rack: 9}))
	// An MBW2 epoch batch, alone and interleaved with legacy framing.
	epochBatch := AppendBatch(nil, &Batch{Rack: 3, Epoch: 5, Samples: []Sample{
		{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Value: 999},
	}})
	f.Add(epochBatch)
	f.Add(append(append([]byte(nil), valid...), epochBatch...))
	// MBW3 seeds: a single columnar batch, a chained pair (the second
	// carries only deltas), an epoch bump that resets the chains, and an
	// MBW3 chain interleaved with legacy frames on one stream.
	c3, err := NewCodec(FormatMBW3)
	if err != nil {
		f.Fatal(err)
	}
	mb := func(epoch uint32, base uint64) *Batch {
		return &Batch{Rack: 3, Epoch: epoch, Samples: []Sample{
			{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Value: base},
			{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 2, Dir: asic.RX, Kind: asic.KindSizeBins,
				Bins: [asic.NumSizeBins]uint64{base, 2, 3, 4, 5, 6}},
			{Time: simclock.Epoch.Add(simclock.Micros(50)), Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Value: base + 1500},
		}}
	}
	v3, err := c3.AppendBatch(nil, mb(0, 1000))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), v3...))
	chained, err := c3.AppendBatch(append([]byte(nil), v3...), mb(0, 2500))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), chained...))
	bumped, err := c3.AppendBatch(append([]byte(nil), chained...), mb(7, 40))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bumped)
	c3b, err := NewCodec(FormatMBW3)
	if err != nil {
		f.Fatal(err)
	}
	mixed, err := c3b.AppendBatch(nil, mb(0, 1000))
	if err != nil {
		f.Fatal(err)
	}
	mixed = AppendBatch(mixed, &Batch{Rack: 9})
	mixed = append(mixed, epochBatch...)
	mixed, err = c3b.AppendBatch(mixed, mb(0, 2500))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mixed)
	f.Add(v3[:len(v3)/2])
	corrupt3 := append([]byte(nil), v3...)
	corrupt3[len(corrupt3)-6] ^= 0x55
	f.Add(corrupt3)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a batch"))
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)/2] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ { // bound iterations for pathological inputs
			b, err := r.ReadBatch()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, ErrCorrupt) ||
					errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				// Any other error must still be a wrapped read failure,
				// not a panic-worthy state; accept and stop.
				return
			}
			// A decoded batch must round-trip through the legacy framing.
			re := AppendBatch(nil, b)
			b2, err := NewReader(bytes.NewReader(re)).ReadBatch()
			if err != nil {
				t.Fatalf("re-encoded batch failed to decode: %v", err)
			}
			if len(b2.Samples) != len(b.Samples) || b2.Rack != b.Rack {
				t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
					b.Rack, len(b.Samples), b2.Rack, len(b2.Samples))
			}
			// And through a fresh MBW3 stream, exactly. A fresh encode
			// carries absolutes, so it can legitimately exceed the payload
			// cap where the delta-encoded original did not.
			enc3, err := NewCodec(FormatMBW3)
			if err != nil {
				t.Fatal(err)
			}
			re3, err := enc3.AppendBatch(nil, b)
			if errors.Is(err, ErrBatchTooLarge) {
				continue
			}
			if err != nil {
				t.Fatalf("mbw3 re-encode failed: %v", err)
			}
			b3, err := NewReader(bytes.NewReader(re3)).ReadBatch()
			if err != nil {
				t.Fatalf("mbw3 re-encoded batch failed to decode: %v", err)
			}
			if !reflect.DeepEqual(b, b3) {
				t.Fatalf("mbw3 round trip diverged:\n in: %+v\nout: %+v", b, b3)
			}
		}
	})
}
