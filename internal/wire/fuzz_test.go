package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// FuzzReadBatch throws arbitrary bytes at the decoder: it must either
// return a batch, a clean EOF, or a wrapped error — never panic, never
// allocate unboundedly, and any successfully decoded batch must re-encode
// to a decodable batch (idempotence of the round trip).
func FuzzReadBatch(f *testing.F) {
	// Seeds: a valid single-batch stream, a valid two-batch stream,
	// truncations, and flipped bytes.
	valid := AppendBatch(nil, &Batch{
		Rack: 3,
		Samples: []Sample{
			{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Value: 999},
			{Time: simclock.Epoch.Add(simclock.Micros(50)), Port: 1, Dir: asic.TX, Kind: asic.KindSizeBins,
				Bins: [asic.NumSizeBins]uint64{1, 2, 3, 4, 5, 6}},
		},
	})
	f.Add(valid)
	f.Add(AppendBatch(valid, &Batch{Rack: 9}))
	// An MBW2 epoch batch, alone and interleaved with legacy framing.
	epochBatch := AppendBatch(nil, &Batch{Rack: 3, Epoch: 5, Samples: []Sample{
		{Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 1, Dir: asic.TX, Kind: asic.KindBytes, Value: 999},
	}})
	f.Add(epochBatch)
	f.Add(append(append([]byte(nil), valid...), epochBatch...))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a batch"))
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)/2] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ { // bound iterations for pathological inputs
			b, err := r.ReadBatch()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, ErrCorrupt) ||
					errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				// Any other error must still be a wrapped read failure,
				// not a panic-worthy state; accept and stop.
				return
			}
			// A decoded batch must round-trip.
			re := AppendBatch(nil, b)
			b2, err := NewReader(bytes.NewReader(re)).ReadBatch()
			if err != nil {
				t.Fatalf("re-encoded batch failed to decode: %v", err)
			}
			if len(b2.Samples) != len(b.Samples) || b2.Rack != b.Rack {
				t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
					b.Rack, len(b.Samples), b2.Rack, len(b2.Samples))
			}
		}
	})
}
