// Package wire defines the sample data model and the binary wire/file
// format the collection framework uses to move counter samples from switch
// CPUs to the distributed collector service (§4.1: "The CPU batches the
// samples before sending them to a distributed collector service").
//
// Design goals, in order: compact (a 2-minute campaign at 25 µs holds ~5M
// samples per counter; the paper stored 250 GB for 720 such intervals),
// self-describing enough to be replayed later, and corruption-evident
// (each batch carries a CRC-32 so a torn TCP stream or truncated file is
// detected rather than silently mis-parsed).
//
// Format. A stream is a sequence of batches:
//
//	magic   uint32  "MBW1" or "MBW2" (big-endian on the wire)
//	length  uvarint  byte length of the payload that follows
//	payload []byte   varint-encoded records (see below)
//	crc32   uint32   IEEE CRC of the payload
//
// Payload layout: a batch header (rack id, record count) followed by
// records. Record integers are delta-encoded against the previous record
// where it pays (timestamps, values), because successive samples of a
// cumulative counter differ by small amounts at microsecond granularity.
//
// "MBW2" batches additionally carry the agent's restart Epoch as a
// uvarint between the rack id and the record count, so collectors can
// detect agent restarts and reject stale or replayed batches. A batch
// with Epoch 0 — an agent that has never restarted — is framed as "MBW1",
// byte-identical to streams written before epochs existed; readers accept
// both framings interleaved.
//
// "MBW3" (see mbw3.go) reorganizes the payload into per-series columns:
// cumulative counters become zigzag-varint deltas chained across batches
// (the first batch of a stream or epoch carries absolutes), timestamps a
// delta-of-delta chain, and every column is run-length compressed. It
// cuts steady-state bytes-on-wire several-fold and is the trace-v2
// on-disk layout.
//
// Formats are selected through the versioned Codec API: writers pick one
// (NewWriterFormat, or NewWriter for the MBW2 default), readers detect
// each batch's format from its magic, so streams may interleave formats
// and every historical format stays readable forever.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// Magic identifies a batch boundary (epoch-less framing).
const Magic uint32 = 0x4d425731 // "MBW1"

// Magic2 identifies a batch carrying an agent restart epoch.
const Magic2 uint32 = 0x4d425732 // "MBW2"

// MaxBatchPayload bounds a single batch's payload; a reader rejects
// anything larger as corruption rather than allocating unboundedly, and
// Writer.WriteBatch refuses to emit one with ErrBatchTooLarge.
const MaxBatchPayload = 16 << 20

// ErrCorrupt is returned when framing, CRC, or field validation fails.
var ErrCorrupt = errors.New("wire: corrupt batch")

// ErrBatchTooLarge is returned by Writer.WriteBatch (and Codec
// AppendBatch) for a batch whose payload would exceed MaxBatchPayload —
// the write-side counterpart of the reader's oversize rejection, so an
// oversized batch fails loudly at the sender instead of poisoning the
// stream for every reader.
var ErrBatchTooLarge = errors.New("wire: batch too large")

// Sample is one counter observation.
//
// For cumulative counters (bytes, packets, drops, size bins) Value and
// Bins hold the running totals at Time; consumers difference successive
// samples. For the buffer-peak register, Value holds the clear-on-read
// peak in bytes since the previous sample.
type Sample struct {
	// Time is when the read completed. The paper's framework guarantees
	// a correct timestamp even when sampling intervals are missed, which
	// is what keeps throughput computable (Table 1 caption).
	Time simclock.Time
	// Port is the switch port index (ignored for KindBufferPeak, which is
	// a switch-wide register).
	Port uint16
	// Dir is the counter direction (RX/TX); meaningless for drops and
	// buffer peak, which are TX-side by definition.
	Dir asic.Direction
	// Kind is the counter family.
	Kind asic.CounterKind
	// Missed is how many scheduled sampling intervals elapsed without a
	// sample since the previous completed poll (0 when on schedule).
	Missed uint32
	// Value is the counter value (see type comment).
	Value uint64
	// Bins holds the size-bin counters when Kind == KindSizeBins.
	Bins [asic.NumSizeBins]uint64
}

// Batch is a group of samples from one rack, the unit of transfer and of
// file framing.
type Batch struct {
	Rack uint32
	// Epoch is the sending agent's restart generation: 0 for an agent
	// that has never restarted, incremented on every crash/restart.
	// Collectors use it to discard batches from superseded agent
	// incarnations (see collector.EpochGate).
	Epoch   uint32
	Samples []Sample
}

// AppendBatch encodes b in the legacy MBW1/MBW2 row format and appends
// it to dst, returning the extended slice. It is the stateless
// counterpart of the Codec API (every legacy batch decodes standalone)
// and performs no size enforcement; stream writers should go through
// Writer, which does.
//
//lint:hotpath per-batch encode entry point for agents on the legacy format
func AppendBatch(dst []byte, b *Batch) []byte {
	payload := appendPayload(nil, b)
	magic := Magic
	if b.Epoch != 0 {
		magic = Magic2
	}
	return appendFrame(dst, magic, payload)
}

func appendPayload(dst []byte, b *Batch) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.Rack))
	if b.Epoch != 0 {
		dst = binary.AppendUvarint(dst, uint64(b.Epoch))
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.Samples)))
	var prevTime int64
	var prevValue uint64
	for i := range b.Samples {
		s := &b.Samples[i]
		dst = binary.AppendVarint(dst, s.Time.Nanoseconds()-prevTime)
		prevTime = s.Time.Nanoseconds()
		dst = binary.AppendUvarint(dst, uint64(s.Port))
		dst = append(dst, byte(s.Dir)|byte(s.Kind)<<1)
		dst = binary.AppendUvarint(dst, uint64(s.Missed))
		dst = binary.AppendVarint(dst, int64(s.Value-prevValue))
		prevValue = s.Value
		if s.Kind == asic.KindSizeBins {
			for _, v := range s.Bins {
				dst = binary.AppendUvarint(dst, v)
			}
		}
	}
	return dst
}

// decodeLegacyPayload parses an MBW1/MBW2 batch payload into b, reusing
// b.Samples' capacity. hasEpoch selects the MBW2 header layout, which
// carries the agent epoch between rack id and record count.
func decodeLegacyPayload(payload []byte, hasEpoch bool, b *Batch) error {
	r := payloadReader{buf: payload}
	rack := r.uvarint()
	var epoch uint64
	if hasEpoch {
		epoch = r.uvarint()
		if epoch == 0 || epoch > 1<<32-1 {
			return fmt.Errorf("%w: epoch %d out of range", ErrCorrupt, epoch)
		}
	}
	n := r.uvarint()
	if r.err != nil {
		return fmt.Errorf("%w: header", ErrCorrupt)
	}
	// A record is at least 5 bytes; reject absurd counts before
	// allocating.
	if n > uint64(len(payload)) {
		return fmt.Errorf("%w: record count %d exceeds payload", ErrCorrupt, n)
	}
	b.Rack, b.Epoch = uint32(rack), uint32(epoch)
	b.Samples = b.Samples[:0]
	if n > 0 && uint64(cap(b.Samples)) < n {
		b.Samples = make([]Sample, 0, n)
	}
	var prevTime int64
	var prevValue uint64
	for i := uint64(0); i < n; i++ {
		var s Sample
		prevTime += r.varint()
		s.Time = simclock.Time(prevTime)
		s.Port = uint16(r.uvarint())
		dk := r.byte()
		s.Dir = asic.Direction(dk & 1)
		s.Kind = asic.CounterKind(dk >> 1)
		s.Missed = uint32(r.uvarint())
		prevValue += uint64(r.varint())
		s.Value = prevValue
		if s.Kind == asic.KindSizeBins {
			for j := range s.Bins {
				s.Bins[j] = r.uvarint()
			}
		}
		if r.err != nil {
			return fmt.Errorf("%w: record %d", ErrCorrupt, i)
		}
		b.Samples = append(b.Samples, s)
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf))
	}
	return nil
}

type payloadReader struct {
	buf []byte
	err error
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *payloadReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.err = ErrCorrupt
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

// Writer frames batches onto an io.Writer in one format. The codec's
// delta state (MBW3) is scoped to this writer, so use one Writer per
// connection or file.
type Writer struct {
	w   io.Writer
	c   Codec
	buf []byte
}

// NewWriter returns a batch writer speaking DefaultFormat (MBW2, whose
// zero-epoch batches keep the legacy MBW1 framing).
func NewWriter(w io.Writer) *Writer {
	nw, err := NewWriterFormat(w, DefaultFormat)
	if err != nil {
		panic(err) // unreachable: DefaultFormat is always valid
	}
	return nw
}

// NewWriterFormat returns a batch writer speaking format f (zero selects
// DefaultFormat).
func NewWriterFormat(w io.Writer, f Format) (*Writer, error) {
	if f == 0 {
		f = DefaultFormat
	}
	c, err := NewCodec(f)
	if err != nil {
		return nil, err
	}
	return &Writer{w: w, c: c}, nil
}

// Format reports the format this writer encodes.
func (w *Writer) Format() Format { return w.c.Format() }

// WriteBatch encodes and writes one batch. A batch whose payload would
// exceed MaxBatchPayload fails with ErrBatchTooLarge before anything is
// written, leaving the stream intact.
func (w *Writer) WriteBatch(b *Batch) error {
	buf, err := w.c.AppendBatch(w.buf[:0], b)
	if err != nil {
		return err
	}
	w.buf = buf
	_, err = w.w.Write(w.buf)
	return err
}

// Reader decodes a stream of batches from an io.Reader. Each batch's
// format is detected from its magic, so a stream may interleave MBW1,
// MBW2, and MBW3 batches; per-format decoder state (MBW3 delta chains)
// is scoped to this reader.
type Reader struct {
	r       io.Reader
	hdr     [4]byte
	payload []byte
	legacy  *legacyCodec
	m3      *mbw3Codec
	reuse   bool
	batch   Batch
}

// NewReader returns a batch reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// SetReuse toggles batch reuse: when enabled, every ReadBatch returns
// the same *Batch, whose samples are overwritten by the next call —
// callers that consume each batch before reading the next (the ingest
// hot path) decode without per-batch allocation. Off by default.
func (r *Reader) SetReuse(on bool) { r.reuse = on }

// Reset redirects the reader to a new stream, discarding per-format
// decoder state (MBW3 delta chains restart, exactly as for a fresh
// Reader) while keeping internal buffers for reuse.
func (r *Reader) Reset(src io.Reader) {
	r.r = src
	if r.legacy != nil {
		r.legacy.Reset()
	}
	if r.m3 != nil {
		r.m3.Reset()
	}
}

// ReadBatch reads the next batch. It returns io.EOF at a clean end of
// stream, and ErrCorrupt (wrapped) on framing or checksum failure.
//
//lint:hotpath collector ingest loop: allocation-free once SetReuse(true) and buffers are warm
func (r *Reader) ReadBatch() (*Batch, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading magic: %w", err)
	}
	magic := binary.BigEndian.Uint32(r.hdr[:])
	if magic != Magic && magic != Magic2 && magic != Magic3 {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	length, err := r.readLen()
	if err != nil {
		return nil, fmt.Errorf("wire: reading length: %w", err)
	}
	if length > MaxBatchPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrCorrupt, length)
	}
	if uint64(cap(r.payload)) < length {
		r.payload = make([]byte, length)
	}
	payload := r.payload[:length]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading payload: %w", err)
	}
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading crc: %w", err)
	}
	if want := binary.BigEndian.Uint32(r.hdr[:]); want != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	var b *Batch
	if r.reuse {
		b = &r.batch
	} else {
		//lint:ignore hotalloc non-reuse mode allocates one Batch per call by contract; the ingest hot path runs with SetReuse(true)
		b = &Batch{}
	}
	if magic == Magic3 {
		if r.m3 == nil {
			//lint:ignore hotalloc one-time lazy codec construction on the first MBW3 frame, not per-batch
			r.m3 = newMBW3Codec()
		}
		err = r.m3.DecodePayload(magic, payload, b)
	} else {
		if r.legacy == nil {
			//lint:ignore hotalloc one-time lazy codec construction on the first legacy frame, not per-batch
			r.legacy = &legacyCodec{f: FormatMBW2}
		}
		err = r.legacy.DecodePayload(magic, payload, b)
	}
	if err != nil {
		return nil, err
	}
	return b, nil
}

// readLen reads the frame-length uvarint byte-by-byte, staging through
// r.hdr (free at this point in the frame) so the hot path does not
// allocate a buffer per read.
func (r *Reader) readLen() (uint64, error) {
	var x uint64
	var s uint
	b := r.hdr[:1]
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(r.r, b); err != nil {
			return 0, err
		}
		if b[0] < 0x80 {
			return x | uint64(b[0])<<s, nil
		}
		x |= uint64(b[0]&0x7f) << s
		s += 7
	}
	return 0, ErrCorrupt
}

// uvarintLen returns the encoded size of x as a uvarint, without
// materializing the bytes.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded size of v as a zigzag varint.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// payloadSize mirrors appendPayload's arithmetic without allocating.
func payloadSize(b *Batch) int {
	n := uvarintLen(uint64(b.Rack))
	if b.Epoch != 0 {
		n += uvarintLen(uint64(b.Epoch))
	}
	n += uvarintLen(uint64(len(b.Samples)))
	var prevTime int64
	var prevValue uint64
	for i := range b.Samples {
		s := &b.Samples[i]
		n += varintLen(s.Time.Nanoseconds() - prevTime)
		prevTime = s.Time.Nanoseconds()
		n += uvarintLen(uint64(s.Port))
		n++ // dir|kind byte
		n += uvarintLen(uint64(s.Missed))
		n += varintLen(int64(s.Value - prevValue))
		prevValue = s.Value
		if s.Kind == asic.KindSizeBins {
			for _, v := range s.Bins {
				n += uvarintLen(v)
			}
		}
	}
	return n
}

// EncodedSize returns the exact framed size AppendBatch would produce
// for b, without encoding — a thin wrapper over the MBW1/MBW2 codec's
// EncodedSize. Unlike MBW3 sizes (which depend on stream state), it is a
// pure function of batch content, so every process in the pipeline
// computes the same number — the tracing cost model depends on that to
// position spans identically on the client, the collector, and the
// campaign recorder.
func EncodedSize(b *Batch) int {
	return (&legacyCodec{f: FormatMBW2}).EncodedSize(b)
}
