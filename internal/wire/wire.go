// Package wire defines the sample data model and the binary wire/file
// format the collection framework uses to move counter samples from switch
// CPUs to the distributed collector service (§4.1: "The CPU batches the
// samples before sending them to a distributed collector service").
//
// Design goals, in order: compact (a 2-minute campaign at 25 µs holds ~5M
// samples per counter; the paper stored 250 GB for 720 such intervals),
// self-describing enough to be replayed later, and corruption-evident
// (each batch carries a CRC-32 so a torn TCP stream or truncated file is
// detected rather than silently mis-parsed).
//
// Format. A stream is a sequence of batches:
//
//	magic   uint32  "MBW1" or "MBW2" (big-endian on the wire)
//	length  uvarint  byte length of the payload that follows
//	payload []byte   varint-encoded records (see below)
//	crc32   uint32   IEEE CRC of the payload
//
// Payload layout: a batch header (rack id, record count) followed by
// records. Record integers are delta-encoded against the previous record
// where it pays (timestamps, values), because successive samples of a
// cumulative counter differ by small amounts at microsecond granularity.
//
// "MBW2" batches additionally carry the agent's restart Epoch as a
// uvarint between the rack id and the record count, so collectors can
// detect agent restarts and reject stale or replayed batches. A batch
// with Epoch 0 — an agent that has never restarted — is framed as "MBW1",
// byte-identical to streams written before epochs existed; readers accept
// both framings interleaved.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// Magic identifies a batch boundary (epoch-less framing).
const Magic uint32 = 0x4d425731 // "MBW1"

// Magic2 identifies a batch carrying an agent restart epoch.
const Magic2 uint32 = 0x4d425732 // "MBW2"

// MaxBatchPayload bounds a single batch's payload; a reader rejects
// anything larger as corruption rather than allocating unboundedly.
const MaxBatchPayload = 16 << 20

// ErrCorrupt is returned when framing, CRC, or field validation fails.
var ErrCorrupt = errors.New("wire: corrupt batch")

// Sample is one counter observation.
//
// For cumulative counters (bytes, packets, drops, size bins) Value and
// Bins hold the running totals at Time; consumers difference successive
// samples. For the buffer-peak register, Value holds the clear-on-read
// peak in bytes since the previous sample.
type Sample struct {
	// Time is when the read completed. The paper's framework guarantees
	// a correct timestamp even when sampling intervals are missed, which
	// is what keeps throughput computable (Table 1 caption).
	Time simclock.Time
	// Port is the switch port index (ignored for KindBufferPeak, which is
	// a switch-wide register).
	Port uint16
	// Dir is the counter direction (RX/TX); meaningless for drops and
	// buffer peak, which are TX-side by definition.
	Dir asic.Direction
	// Kind is the counter family.
	Kind asic.CounterKind
	// Missed is how many scheduled sampling intervals elapsed without a
	// sample since the previous completed poll (0 when on schedule).
	Missed uint32
	// Value is the counter value (see type comment).
	Value uint64
	// Bins holds the size-bin counters when Kind == KindSizeBins.
	Bins [asic.NumSizeBins]uint64
}

// Batch is a group of samples from one rack, the unit of transfer and of
// file framing.
type Batch struct {
	Rack uint32
	// Epoch is the sending agent's restart generation: 0 for an agent
	// that has never restarted, incremented on every crash/restart.
	// Collectors use it to discard batches from superseded agent
	// incarnations (see collector.EpochGate).
	Epoch   uint32
	Samples []Sample
}

// AppendBatch encodes b and appends it to dst, returning the extended
// slice.
func AppendBatch(dst []byte, b *Batch) []byte {
	payload := appendPayload(nil, b)
	magic := Magic
	if b.Epoch != 0 {
		magic = Magic2
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], magic)
	dst = append(dst, hdr[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(dst, crc[:]...)
}

func appendPayload(dst []byte, b *Batch) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.Rack))
	if b.Epoch != 0 {
		dst = binary.AppendUvarint(dst, uint64(b.Epoch))
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.Samples)))
	var prevTime int64
	var prevValue uint64
	for i := range b.Samples {
		s := &b.Samples[i]
		dst = binary.AppendVarint(dst, s.Time.Nanoseconds()-prevTime)
		prevTime = s.Time.Nanoseconds()
		dst = binary.AppendUvarint(dst, uint64(s.Port))
		dst = append(dst, byte(s.Dir)|byte(s.Kind)<<1)
		dst = binary.AppendUvarint(dst, uint64(s.Missed))
		dst = binary.AppendVarint(dst, int64(s.Value-prevValue))
		prevValue = s.Value
		if s.Kind == asic.KindSizeBins {
			for _, v := range s.Bins {
				dst = binary.AppendUvarint(dst, v)
			}
		}
	}
	return dst
}

// decodePayload parses a batch payload. hasEpoch selects the MBW2 header
// layout, which carries the agent epoch between rack id and record count.
func decodePayload(payload []byte, hasEpoch bool) (*Batch, error) {
	r := payloadReader{buf: payload}
	rack := r.uvarint()
	var epoch uint64
	if hasEpoch {
		epoch = r.uvarint()
		if epoch == 0 || epoch > 1<<32-1 {
			return nil, fmt.Errorf("%w: epoch %d out of range", ErrCorrupt, epoch)
		}
	}
	n := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("%w: header", ErrCorrupt)
	}
	// A record is at least 5 bytes; reject absurd counts before
	// allocating.
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: record count %d exceeds payload", ErrCorrupt, n)
	}
	b := &Batch{Rack: uint32(rack), Epoch: uint32(epoch)}
	if n > 0 {
		b.Samples = make([]Sample, 0, n)
	}
	var prevTime int64
	var prevValue uint64
	for i := uint64(0); i < n; i++ {
		var s Sample
		prevTime += r.varint()
		s.Time = simclock.Time(prevTime)
		s.Port = uint16(r.uvarint())
		dk := r.byte()
		s.Dir = asic.Direction(dk & 1)
		s.Kind = asic.CounterKind(dk >> 1)
		s.Missed = uint32(r.uvarint())
		prevValue += uint64(r.varint())
		s.Value = prevValue
		if s.Kind == asic.KindSizeBins {
			for j := range s.Bins {
				s.Bins[j] = r.uvarint()
			}
		}
		if r.err != nil {
			return nil, fmt.Errorf("%w: record %d", ErrCorrupt, i)
		}
		b.Samples = append(b.Samples, s)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf))
	}
	return b, nil
}

type payloadReader struct {
	buf []byte
	err error
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *payloadReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.err = ErrCorrupt
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

// Writer frames batches onto an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a batch writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteBatch encodes and writes one batch.
func (w *Writer) WriteBatch(b *Batch) error {
	w.buf = AppendBatch(w.buf[:0], b)
	_, err := w.w.Write(w.buf)
	return err
}

// Reader decodes a stream of batches from an io.Reader.
type Reader struct {
	r   io.Reader
	hdr [4]byte
}

// NewReader returns a batch reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadBatch reads the next batch. It returns io.EOF at a clean end of
// stream, and ErrCorrupt (wrapped) on framing or checksum failure.
func (r *Reader) ReadBatch() (*Batch, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading magic: %w", err)
	}
	magic := binary.BigEndian.Uint32(r.hdr[:])
	if magic != Magic && magic != Magic2 {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	length, err := readUvarint(r.r)
	if err != nil {
		return nil, fmt.Errorf("wire: reading length: %w", err)
	}
	if length > MaxBatchPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading payload: %w", err)
	}
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading crc: %w", err)
	}
	if want := binary.BigEndian.Uint32(r.hdr[:]); want != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return decodePayload(payload, magic == Magic2)
}

// readUvarint reads a uvarint byte-by-byte from an io.Reader.
func readUvarint(r io.Reader) (uint64, error) {
	var x uint64
	var s uint
	var b [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		if b[0] < 0x80 {
			return x | uint64(b[0])<<s, nil
		}
		x |= uint64(b[0]&0x7f) << s
		s += 7
	}
	return 0, ErrCorrupt
}

// uvarintLen returns the encoded size of x as a uvarint, without
// materializing the bytes.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded size of v as a zigzag varint.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// payloadSize mirrors appendPayload's arithmetic without allocating.
func payloadSize(b *Batch) int {
	n := uvarintLen(uint64(b.Rack))
	if b.Epoch != 0 {
		n += uvarintLen(uint64(b.Epoch))
	}
	n += uvarintLen(uint64(len(b.Samples)))
	var prevTime int64
	var prevValue uint64
	for i := range b.Samples {
		s := &b.Samples[i]
		n += varintLen(s.Time.Nanoseconds() - prevTime)
		prevTime = s.Time.Nanoseconds()
		n += uvarintLen(uint64(s.Port))
		n++ // dir|kind byte
		n += uvarintLen(uint64(s.Missed))
		n += varintLen(int64(s.Value - prevValue))
		prevValue = s.Value
		if s.Kind == asic.KindSizeBins {
			for _, v := range s.Bins {
				n += uvarintLen(v)
			}
		}
	}
	return n
}

// EncodedSize returns the exact framed size AppendBatch would produce
// for b, without encoding. It is a pure function of batch content, so
// every process in the pipeline computes the same number — the tracing
// cost model depends on that to position spans identically on the
// client, the collector, and the campaign recorder.
func EncodedSize(b *Batch) int {
	p := payloadSize(b)
	return 4 + uvarintLen(uint64(p)) + p + 4
}
