package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// pollStream synthesizes nBatches batches of a realistic polling stream:
// per poll, every series advances its cumulative counter and shares one
// timestamp, exactly as the poller emits. Values evolve deterministically
// so chained batches exercise the cross-batch delta state.
func pollStream(nBatches, pollsPerBatch int, epoch uint32) []*Batch {
	type series struct {
		port uint16
		dir  asic.Direction
		kind asic.CounterKind
		val  uint64
		bins [asic.NumSizeBins]uint64
	}
	sers := []*series{
		{port: 1, dir: asic.TX, kind: asic.KindBytes, val: 10_000},
		{port: 1, dir: asic.RX, kind: asic.KindBytes, val: 777},
		{port: 2, dir: asic.TX, kind: asic.KindPackets, val: 40},
		{port: 3, dir: asic.TX, kind: asic.KindSizeBins, bins: [asic.NumSizeBins]uint64{5, 4, 3, 2, 1, 0}},
		{port: 9, dir: asic.TX, kind: asic.KindBufferPeak},
	}
	t := simclock.Epoch
	var out []*Batch
	step := uint64(1)
	for bi := 0; bi < nBatches; bi++ {
		b := &Batch{Rack: 3, Epoch: epoch}
		for p := 0; p < pollsPerBatch; p++ {
			t = t.Add(simclock.Micros(25)).Add(simclock.Duration(p % 3)) // jittered completion
			var missed uint32
			if p%17 == 0 {
				missed = 1
			}
			for _, s := range sers {
				s.val += step * 97
				step = step*6364136223846793005 + 1442695040888963407
				step = (step >> 60) + 1 // small, varying increments
				smp := Sample{Time: t, Port: s.port, Dir: s.dir, Kind: s.kind, Missed: missed, Value: s.val}
				if s.kind == asic.KindSizeBins {
					for k := range s.bins {
						s.bins[k] += uint64(k) + step
					}
					smp.Bins = s.bins
				}
				b.Samples = append(b.Samples, smp)
			}
		}
		out = append(out, b)
	}
	return out
}

// TestMBW3ChainedRoundTrip writes a multi-batch stream and reads it back;
// every batch must reproduce exactly, including the ones that only carry
// deltas.
func TestMBW3ChainedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterFormat(&buf, FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	batches := pollStream(5, 40, 0)
	for _, b := range batches {
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range batches {
		got, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batch %d mismatch:\n in: %+v\nout: %+v", i, want, got)
		}
	}
	if _, err := r.ReadBatch(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestMBW3EpochBumpResetsChain verifies the restart contract: the first
// batch of a new epoch carries absolutes, so a reader that joins the
// stream at the bump (having missed the whole previous epoch) still
// decodes exact values.
func TestMBW3EpochBumpResetsChain(t *testing.T) {
	c, err := NewCodec(FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	old := pollStream(2, 30, 1)
	fresh := pollStream(2, 30, 2)
	var full, tail []byte
	for _, b := range old {
		if full, err = c.AppendBatch(full, b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range fresh {
		pre := len(full)
		if full, err = c.AppendBatch(full, b); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, full[pre:]...)
	}

	// A reader over the full stream sees everything.
	r := NewReader(bytes.NewReader(full))
	for i, want := range append(append([]*Batch{}, old...), fresh...) {
		got, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("full stream batch %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("full stream batch %d mismatch", i)
		}
	}

	// A late joiner that only sees the new epoch decodes it exactly too.
	r = NewReader(bytes.NewReader(tail))
	for i, want := range fresh {
		got, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("tail batch %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("tail batch %d mismatch:\n in: %+v\nout: %+v", i, want, got)
		}
	}
}

// TestMBW3EncodedSizeMatchesAndIsStateless checks that EncodedSize
// predicts AppendBatch exactly at every point of a chained stream, and
// that calling it (even repeatedly, even across an epoch bump) does not
// advance the delta chain.
func TestMBW3EncodedSizeMatchesAndIsStateless(t *testing.T) {
	enc, err := NewCodec(FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	bump := pollStream(1, 5, 9)[0]
	for i, b := range pollStream(4, 25, 0) {
		want := enc.EncodedSize(b)
		enc.EncodedSize(bump) // must not disturb the chain
		enc.EncodedSize(b)
		frame, err := enc.AppendBatch(nil, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) != want {
			t.Fatalf("batch %d: EncodedSize = %d, framed bytes = %d", i, want, len(frame))
		}
		// Later batches are pure deltas and must frame smaller than the
		// absolute-carrying first batch would alone.
		if dec, err2 := NewCodec(FormatMBW3); err2 == nil && i > 0 {
			if fresh := dec.EncodedSize(b); want >= fresh+fresh/2 {
				t.Fatalf("batch %d: chained size %d not benefiting from state (fresh %d)", i, want, fresh)
			}
		}
	}
}

// TestMBW3EmptyBatch round-trips empty batches, including an epoch bump
// carried by an empty batch (which must still reset the chains).
func TestMBW3EmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterFormat(&buf, FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	stream := pollStream(1, 10, 0)[0]
	seq := []*Batch{{Rack: 5}, stream, {Rack: 5, Epoch: 2}, pollStream(1, 10, 2)[0]}
	for _, b := range seq {
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range seq {
		got, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if got.Rack != want.Rack || got.Epoch != want.Epoch || len(got.Samples) != len(want.Samples) {
			t.Fatalf("batch %d shape mismatch: %+v vs %+v", i, want, got)
		}
		if len(want.Samples) > 0 && !reflect.DeepEqual(want, got) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
}

// TestMBW3QuickRoundTrip is the arbitrary-content property test: any
// canonical batch (Dir in {0,1}, Kind < 128 — what decoders can ever
// produce) must round-trip exactly through a fresh stream, and a second
// chained batch of the same shape must too.
func TestMBW3QuickRoundTrip(t *testing.T) {
	f := func(rack uint32, raw []struct {
		T    uint32
		Port uint16
		DK   uint8
		Miss uint32
		Val  uint64
		B0   uint64
	}, second bool) bool {
		mk := func(shift uint64) *Batch {
			b := &Batch{Rack: rack}
			var lastT int64
			for _, r := range raw {
				lastT += int64(r.T)
				s := Sample{
					Time:   simclock.Time(lastT),
					Port:   r.Port,
					Dir:    asic.Direction(r.DK & 1),
					Kind:   asic.CounterKind(int(r.DK>>1) % 5),
					Missed: r.Miss,
					Value:  r.Val + shift,
				}
				if s.Kind == asic.KindSizeBins {
					s.Bins[0] = r.B0
					s.Bins[3] = r.B0 >> 7
				}
				b.Samples = append(b.Samples, s)
			}
			return b
		}
		var buf bytes.Buffer
		w, err := NewWriterFormat(&buf, FormatMBW3)
		if err != nil {
			return false
		}
		var want []*Batch
		want = append(want, mk(0))
		if second {
			want = append(want, mk(1<<40))
		}
		for _, b := range want {
			if err := w.WriteBatch(b); err != nil {
				return false
			}
		}
		r := NewReader(&buf)
		for _, wb := range want {
			got, err := r.ReadBatch()
			if err != nil {
				return false
			}
			if len(wb.Samples) == 0 {
				if got.Rack != wb.Rack || len(got.Samples) != 0 {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(wb, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMBW3ReaderReuse decodes with SetReuse enabled and checks the
// samples of every batch against a non-reusing reader.
func TestMBW3ReaderReuse(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterFormat(&buf, FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	batches := pollStream(4, 30, 0)
	for _, b := range batches {
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.SetReuse(true)
	var prev *Batch
	for i, want := range batches {
		got, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if prev != nil && got != prev {
			t.Fatal("reuse mode returned a different *Batch")
		}
		prev = got
		if !reflect.DeepEqual(want.Samples, got.Samples) || want.Rack != got.Rack {
			t.Fatalf("batch %d mismatch under reuse", i)
		}
	}
}

// TestMBW3CompressesPollingStream is a sanity bound (the hard 4x gate
// lives in the core bench artifact): on a steady polling stream the
// columnar deltas must beat the row format severalfold.
func TestMBW3CompressesPollingStream(t *testing.T) {
	batches := pollStream(4, 100, 0)
	var legacy, columnar int
	enc, err := NewCodec(FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		legacy += EncodedSize(b)
		frame, err := enc.AppendBatch(nil, b)
		if err != nil {
			t.Fatal(err)
		}
		columnar += len(frame)
	}
	ratio := float64(legacy) / float64(columnar)
	t.Logf("legacy %d B, mbw3 %d B (%.2fx)", legacy, columnar, ratio)
	if ratio < 2 {
		t.Fatalf("mbw3 only %.2fx smaller than the row format on a steady stream", ratio)
	}
}

// mbw3Payload extracts the payload of the single frame in data.
func mbw3Payload(t *testing.T, data []byte) []byte {
	t.Helper()
	rest := data[4:]
	n, sz := uvarintAt(rest)
	return rest[sz : sz+int(n)]
}

func uvarintAt(buf []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range buf {
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}

// TestMBW3DecodeRejectsMalformed drives DecodePayload with targeted
// corruptions of a valid payload; every one must fail with ErrCorrupt
// and leave the codec usable.
func TestMBW3DecodeRejectsMalformed(t *testing.T) {
	enc, err := NewCodec(FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	b := pollStream(1, 20, 0)[0]
	frame, err := enc.AppendBatch(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	payload := mbw3Payload(t, frame)

	cases := map[string]func([]byte) []byte{
		"trailing bytes": func(p []byte) []byte { return append(p, 0) },
		"truncated":      func(p []byte) []byte { return p[:len(p)-3] },
		"empty":          func([]byte) []byte { return nil },
		"absurd count": func(p []byte) []byte {
			// rack=3, epoch=0, count over MaxBatchSamples.
			return []byte{3, 0, 0xff, 0xff, 0xff, 0xff, 0x7f}
		},
		"zero-count rle token": func([]byte) []byte {
			// rack=1, epoch=0, count=1, nTimes=1, time dd=0, nSeries=1,
			// table (port=1, dk=0), then a zero-count literal token in the
			// series column.
			return []byte{1, 0, 1, 1, 0, 1, 1, 0, 0}
		},
	}
	for name, mut := range cases {
		dec, err := NewCodec(FormatMBW3)
		if err != nil {
			t.Fatal(err)
		}
		var got Batch
		if err := dec.DecodePayload(Magic3, mut(append([]byte(nil), payload...)), &got); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
		// The failed decode must not have committed state: the pristine
		// payload still decodes exactly afterwards.
		if err := dec.DecodePayload(Magic3, payload, &got); err != nil {
			t.Errorf("%s: clean payload failed after rejected one: %v", name, err)
		} else if !reflect.DeepEqual(b.Samples, got.Samples) {
			t.Errorf("%s: decode after rejection diverged", name)
		}
	}

	if err := enc.(*mbw3Codec).DecodePayload(Magic, payload, &Batch{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mbw3 codec accepted a legacy magic")
	}
}

// TestMBW3StreamsAreIndependent runs two writers concurrently-interleaved
// in program order; each stream's chain must be self-contained.
func TestMBW3StreamsAreIndependent(t *testing.T) {
	var bufA, bufB bytes.Buffer
	wa, _ := NewWriterFormat(&bufA, FormatMBW3)
	wb, _ := NewWriterFormat(&bufB, FormatMBW3)
	as := pollStream(3, 20, 0)
	bs := pollStream(3, 20, 7)
	for i := range as {
		if err := wa.WriteBatch(as[i]); err != nil {
			t.Fatal(err)
		}
		if err := wb.WriteBatch(bs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ra, rb := NewReader(&bufA), NewReader(&bufB)
	for i := range as {
		ga, err := ra.ReadBatch()
		if err != nil {
			t.Fatal(err)
		}
		gb, err := rb.ReadBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(as[i], ga) || !reflect.DeepEqual(bs[i], gb) {
			t.Fatalf("stream independence violated at batch %d", i)
		}
	}
}
