package wire

import (
	"encoding/binary"
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/simclock"
)

// Magic3 identifies an MBW3 columnar delta batch.
const Magic3 uint32 = 0x4d425733 // "MBW3"

// MaxBatchSamples bounds the per-batch record count an MBW3 decoder will
// accept. Run-length tokens decouple record count from payload bytes, so
// the legacy "count <= payload length" check no longer bounds allocation;
// this cap does. Encoders enforce it too, so every encodable batch is
// decodable.
const MaxBatchSamples = 1 << 22

// zig and unzig are the zigzag mapping varints use for signed deltas.
func zig(v int64) uint64   { return uint64(v)<<1 ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// rleMinRun is the shortest run of equal column values worth a dedicated
// run token; shorter runs ride inside literal tokens. Fixed so encoding
// is deterministic.
const rleMinRun = 3

// rleAppend encodes vals as run-length tokens: each token is a uvarint t
// with count t>>1 (>= 1); t&1 == 1 is a run (one uvarint value follows,
// repeated count times), t&1 == 0 a literal (count uvarint values follow).
func rleAppend(dst []byte, vals []uint64) []byte {
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		if j-i >= rleMinRun {
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1|1)
			dst = binary.AppendUvarint(dst, vals[i])
			i = j
			continue
		}
		// Literal: extend until the next worthwhile run (or the end).
		start := i
		i = j
		for i < len(vals) {
			j = i + 1
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			if j-i >= rleMinRun {
				break
			}
			i = j
		}
		dst = binary.AppendUvarint(dst, uint64(i-start)<<1)
		for ; start < i; start++ {
			dst = binary.AppendUvarint(dst, vals[start])
		}
	}
	return dst
}

// rleRead appends exactly want decoded values to dst. Malformed tokens
// (zero counts, counts past want) set r.err.
func rleRead(r *payloadReader, dst []uint64, want int) []uint64 {
	for len(dst) < want {
		tok := r.uvarint()
		if r.err != nil {
			return dst
		}
		cnt := tok >> 1
		if cnt == 0 || cnt > uint64(want-len(dst)) {
			r.err = ErrCorrupt
			return dst
		}
		if tok&1 == 1 {
			v := r.uvarint()
			for k := uint64(0); k < cnt; k++ {
				dst = append(dst, v)
			}
		} else {
			for k := uint64(0); k < cnt; k++ {
				dst = append(dst, r.uvarint())
			}
		}
	}
	return dst
}

// colAppend emits one value column: a mode byte, then the cheaper of two
// encodings. Mode 0 is the varint RLE stream; mode 1 packs each value
// into a nibble (low nibble first), with values >= 15 escaping as nibble
// 15 plus a varint in an overflow tail after the packed block. Counter
// columns are delta-of-delta chains whose values cluster just above
// zero — too scattered for runs, but almost always under 4 bits — so
// mode 1 halves them; index and missed columns collapse into runs and
// keep mode 0.
func (c *mbw3Codec) colAppend(dst []byte, vals []uint64) []byte {
	c.colbuf = rleAppend(c.colbuf[:0], vals)
	ne := (len(vals) + 1) / 2
	for _, v := range vals {
		if v >= 15 {
			ne += uvarintLen(v)
		}
	}
	if ne >= len(c.colbuf) {
		dst = append(dst, 0)
		return append(dst, c.colbuf...)
	}
	dst = append(dst, 1)
	var cur byte
	for i, v := range vals {
		nib := byte(v)
		if v >= 15 {
			nib = 15
		}
		if i&1 == 0 {
			cur = nib
		} else {
			dst = append(dst, cur|nib<<4)
		}
	}
	if len(vals)&1 == 1 {
		dst = append(dst, cur)
	}
	for _, v := range vals {
		if v >= 15 {
			dst = binary.AppendUvarint(dst, v)
		}
	}
	return dst
}

// colRead decodes one colAppend column of exactly want values.
func colRead(r *payloadReader, dst []uint64, want int) []uint64 {
	mode := r.byte()
	if r.err != nil {
		return dst
	}
	switch mode {
	case 0:
		return rleRead(r, dst, want)
	case 1:
		nb := (want + 1) / 2
		if len(r.buf) < nb {
			r.err = ErrCorrupt
			return dst
		}
		packed := r.buf[:nb]
		r.buf = r.buf[nb:]
		if want&1 == 1 && nb > 0 && packed[nb-1]>>4 != 0 {
			r.err = ErrCorrupt // padding nibble must be zero
			return dst
		}
		base := len(dst)
		for i := 0; i < want; i++ {
			dst = append(dst, uint64(packed[i>>1]>>(uint(i&1)*4)&0xf))
		}
		for i := 0; i < want; i++ {
			if dst[base+i] != 15 {
				continue
			}
			v := r.uvarint()
			if r.err != nil {
				return dst
			}
			if v < 15 {
				r.err = ErrCorrupt // would have been inline
				return dst
			}
			dst[base+i] = v
		}
		return dst
	default:
		r.err = ErrCorrupt
		return dst
	}
}

// seriesKey identifies one counter series within a stream: the port plus
// the packed direction/kind byte the row formats already use.
type seriesKey struct {
	port uint16
	dk   byte
}

// mbw3Series is the per-series stream state deltas chain against: the
// last absolute value plus the last first-order delta, since value and
// bin columns are delta-of-delta chains (counters polled at a fixed
// interval move by near-constant increments, so second differences
// cluster at zero and collapse into runs).
type mbw3Series struct {
	value  uint64
	valueD int64
	bins   [asic.NumSizeBins]uint64
	binsD  [asic.NumSizeBins]int64
	// slot/stamp resolve this series to its table slot within the batch
	// currently being encoded (valid iff stamp matches the codec's).
	slot  int
	stamp int
}

// mbw3Codec implements the columnar delta format.
//
// Payload layout (all integers uvarints unless noted):
//
//	rack, epoch, nSamples
//	-- the rest only when nSamples > 0 --
//	nTimes, times            delta-of-delta zigzag chain, continued from
//	                         the previous batch (from zero on a fresh
//	                         stream or epoch change); consecutive equal
//	                         sample times are deduplicated
//	nSeries, series table    (port uvarint, dir|kind<<1 byte) per series,
//	                         in first-appearance order
//	seriesCol                RLE; per sample, table slot as a zigzag
//	                         delta chain — preserves exact sample order
//	timeIdxCol               RLE; per sample, index into times, same
//	                         delta chain encoding
//	missedCol                RLE; per sample, Missed verbatim
//	value/bins columns       per table slot in order: the series'
//	                         cumulative Values as zigzag delta-of-delta
//	                         chains (RLE), continued from the previous
//	                         batch; size-bin series append NumSizeBins
//	                         bin columns encoded the same way
//
// Delta chains make the codec stateful: the first batch of a stream (or
// the first after an epoch change) carries absolutes as deltas from zero,
// and every later batch only the movement since the previous one.
type mbw3Codec struct {
	// Stream state.
	epochKnown bool
	epoch      uint32
	lastTime   int64
	lastDelta  int64
	idx        map[seriesKey]int
	states     []mbw3Series

	stamp int

	// Per-batch scratch, reused so steady-state encode and decode do not
	// allocate.
	payload  []byte
	tkeys    []seriesKey
	tstate   []int
	counts   []int
	offs     []int
	cursor   []int
	sids     []int
	tidx     []int
	times    []int64
	col      []uint64
	colbuf   []byte
	vals     []uint64
	binvals  []uint64
	binoffs  []int
	run      []uint64
	runD     []int64
	runBins  []uint64
	runBinsD []int64
	missed   []uint64

	// Pending time-chain state, applied by commit.
	pendFresh     bool
	pendLastTime  int64
	pendLastDelta int64
}

func newMBW3Codec() *mbw3Codec {
	return &mbw3Codec{idx: make(map[seriesKey]int)}
}

func (c *mbw3Codec) Format() Format { return FormatMBW3 }

func (c *mbw3Codec) Reset() {
	c.epochKnown = false
	c.epoch = 0
	c.lastTime = 0
	c.lastDelta = 0
	clear(c.idx)
	c.states = c.states[:0]
}

func sampleDK(s *Sample) byte { return byte(s.Dir) | byte(s.Kind)<<1 }

func isSizeBins(dk byte) bool { return asic.CounterKind(dk>>1) == asic.KindSizeBins }

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// buildPayload encodes b into c.payload using (but not modifying) the
// stream state; commit applies the state advance afterwards. Splitting
// the two keeps EncodedSize and failed writes side-effect-free.
func (c *mbw3Codec) buildPayload(b *Batch) {
	fresh := !c.epochKnown || b.Epoch != c.epoch
	c.pendFresh = fresh
	c.pendLastTime, c.pendLastDelta = c.lastTime, c.lastDelta
	if fresh {
		c.pendLastTime, c.pendLastDelta = 0, 0
	}

	p := c.payload[:0]
	p = binary.AppendUvarint(p, uint64(b.Rack))
	p = binary.AppendUvarint(p, uint64(b.Epoch))
	p = binary.AppendUvarint(p, uint64(len(b.Samples)))
	n := len(b.Samples)
	if n == 0 {
		c.tkeys = c.tkeys[:0]
		c.payload = p
		return
	}

	// Group samples into the batch series table and the deduplicated
	// time list. New series enter the stream map immediately with zero
	// state, which is indistinguishable from absent — so this pass is
	// safe even when the batch is never committed.
	c.stamp++
	c.tkeys = c.tkeys[:0]
	c.tstate = c.tstate[:0]
	c.counts = c.counts[:0]
	c.sids = growInt(c.sids, n)
	c.tidx = growInt(c.tidx, n)
	c.times = c.times[:0]
	c.missed = growU64(c.missed, n)
	for j := range b.Samples {
		s := &b.Samples[j]
		k := seriesKey{port: s.Port, dk: sampleDK(s)}
		si, ok := c.idx[k]
		if !ok {
			si = len(c.states)
			c.states = append(c.states, mbw3Series{})
			c.idx[k] = si
		}
		st := &c.states[si]
		if st.stamp != c.stamp {
			st.stamp = c.stamp
			st.slot = len(c.tkeys)
			c.tkeys = append(c.tkeys, k)
			c.tstate = append(c.tstate, si)
			c.counts = append(c.counts, 0)
		}
		c.sids[j] = st.slot
		c.counts[st.slot]++
		t := s.Time.Nanoseconds()
		if len(c.times) == 0 || t != c.times[len(c.times)-1] {
			c.times = append(c.times, t)
		}
		c.tidx[j] = len(c.times) - 1
		c.missed[j] = uint64(s.Missed)
	}

	// Per-slot running values start from stream state (zero on a fresh
	// epoch) and column offsets from the per-slot counts.
	nSeries := len(c.tkeys)
	c.offs = growInt(c.offs, nSeries)
	c.cursor = growInt(c.cursor, nSeries)
	c.binoffs = growInt(c.binoffs, nSeries)
	c.run = growU64(c.run, nSeries)
	c.runD = growI64(c.runD, nSeries)
	c.runBins = growU64(c.runBins, nSeries*asic.NumSizeBins)
	c.runBinsD = growI64(c.runBinsD, nSeries*asic.NumSizeBins)
	off, binoff := 0, 0
	for slot := range c.tkeys {
		c.offs[slot] = off
		off += c.counts[slot]
		c.cursor[slot] = 0
		st := &c.states[c.tstate[slot]]
		if fresh {
			c.run[slot], c.runD[slot] = 0, 0
		} else {
			c.run[slot], c.runD[slot] = st.value, st.valueD
		}
		c.binoffs[slot] = -1
		if isSizeBins(c.tkeys[slot].dk) {
			c.binoffs[slot] = binoff
			binoff += c.counts[slot] * asic.NumSizeBins
			for k := 0; k < asic.NumSizeBins; k++ {
				if fresh {
					c.runBins[slot*asic.NumSizeBins+k] = 0
					c.runBinsD[slot*asic.NumSizeBins+k] = 0
				} else {
					c.runBins[slot*asic.NumSizeBins+k] = st.bins[k]
					c.runBinsD[slot*asic.NumSizeBins+k] = st.binsD[k]
				}
			}
		}
	}
	c.vals = growU64(c.vals, n)
	c.binvals = growU64(c.binvals, binoff)

	// Second pass: fill the flat per-series delta columns in sample
	// order (each series sees its own samples in order regardless of
	// interleaving).
	for j := range b.Samples {
		s := &b.Samples[j]
		slot := c.sids[j]
		i := c.cursor[slot]
		c.cursor[slot]++
		d := int64(s.Value - c.run[slot])
		c.vals[c.offs[slot]+i] = zig(d - c.runD[slot])
		c.run[slot], c.runD[slot] = s.Value, d
		if bo := c.binoffs[slot]; bo >= 0 {
			cnt := c.counts[slot]
			for k := 0; k < asic.NumSizeBins; k++ {
				bd := int64(s.Bins[k] - c.runBins[slot*asic.NumSizeBins+k])
				c.binvals[bo+k*cnt+i] = zig(bd - c.runBinsD[slot*asic.NumSizeBins+k])
				c.runBins[slot*asic.NumSizeBins+k] = s.Bins[k]
				c.runBinsD[slot*asic.NumSizeBins+k] = bd
			}
		}
	}

	// Emit: times, series table, then the RLE columns.
	p = binary.AppendUvarint(p, uint64(len(c.times)))
	lt, ld := c.pendLastTime, c.pendLastDelta
	for _, t := range c.times {
		d := t - lt
		p = binary.AppendUvarint(p, zig(d-ld))
		ld, lt = d, t
	}
	c.pendLastTime, c.pendLastDelta = lt, ld
	p = binary.AppendUvarint(p, uint64(nSeries))
	for _, k := range c.tkeys {
		p = binary.AppendUvarint(p, uint64(k.port))
		p = append(p, k.dk)
	}
	c.col = c.col[:0]
	prev := 0
	for _, v := range c.sids {
		c.col = append(c.col, zig(int64(v-prev)))
		prev = v
	}
	p = c.colAppend(p, c.col)
	c.col = c.col[:0]
	prev = 0
	for _, v := range c.tidx {
		c.col = append(c.col, zig(int64(v-prev)))
		prev = v
	}
	p = c.colAppend(p, c.col)
	p = c.colAppend(p, c.missed[:n])
	for slot := range c.tkeys {
		p = c.colAppend(p, c.vals[c.offs[slot]:c.offs[slot]+c.counts[slot]])
		if bo := c.binoffs[slot]; bo >= 0 {
			cnt := c.counts[slot]
			for k := 0; k < asic.NumSizeBins; k++ {
				p = c.colAppend(p, c.binvals[bo+k*cnt:bo+(k+1)*cnt])
			}
		}
	}
	c.payload = p
}

// commit advances the stream state to reflect the batch buildPayload just
// encoded.
func (c *mbw3Codec) commit(b *Batch) {
	if c.pendFresh {
		clear(c.idx)
		c.states = c.states[:0]
		for slot, k := range c.tkeys {
			c.idx[k] = len(c.states)
			c.states = append(c.states, mbw3Series{})
			c.tstate[slot] = slot
		}
	}
	for slot := range c.tkeys {
		st := &c.states[c.tstate[slot]]
		st.value, st.valueD = c.run[slot], c.runD[slot]
		if c.binoffs[slot] >= 0 {
			copy(st.bins[:], c.runBins[slot*asic.NumSizeBins:(slot+1)*asic.NumSizeBins])
			copy(st.binsD[:], c.runBinsD[slot*asic.NumSizeBins:(slot+1)*asic.NumSizeBins])
		}
	}
	c.epochKnown = true
	c.epoch = b.Epoch
	c.lastTime = c.pendLastTime
	c.lastDelta = c.pendLastDelta
}

//lint:hotpath steady-state MBW3 encode: zero allocations per batch (see TestWireBenchArtifact)
func (c *mbw3Codec) AppendBatch(dst []byte, b *Batch) ([]byte, error) {
	if len(b.Samples) > MaxBatchSamples {
		return dst, fmt.Errorf("%w: %d samples (max %d)", ErrBatchTooLarge, len(b.Samples), MaxBatchSamples)
	}
	c.buildPayload(b)
	if len(c.payload) > MaxBatchPayload {
		return dst, fmt.Errorf("%w: %d byte payload (max %d)", ErrBatchTooLarge, len(c.payload), MaxBatchPayload)
	}
	c.commit(b)
	return appendFrame(dst, Magic3, c.payload), nil
}

func (c *mbw3Codec) EncodedSize(b *Batch) int {
	c.buildPayload(b)
	return 4 + uvarintLen(uint64(len(c.payload))) + len(c.payload) + 4
}

//lint:hotpath steady-state MBW3 decode: zero allocations per batch
func (c *mbw3Codec) DecodePayload(magic uint32, payload []byte, b *Batch) error {
	if magic != Magic3 {
		return fmt.Errorf("%w: magic %#x is not mbw3", ErrCorrupt, magic)
	}
	r := payloadReader{buf: payload}
	rack := r.uvarint()
	epoch := r.uvarint()
	count := r.uvarint()
	if r.err != nil || rack > 1<<32-1 || epoch > 1<<32-1 {
		return fmt.Errorf("%w: mbw3 header", ErrCorrupt)
	}
	if count > MaxBatchSamples {
		return fmt.Errorf("%w: record count %d exceeds limit", ErrCorrupt, count)
	}
	n := int(count)
	fresh := !c.epochKnown || uint32(epoch) != c.epoch
	b.Rack, b.Epoch = uint32(rack), uint32(epoch)
	b.Samples = b.Samples[:0]
	if n == 0 {
		if len(r.buf) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf))
		}
		if fresh {
			clear(c.idx)
			c.states = c.states[:0]
			c.lastTime, c.lastDelta = 0, 0
		}
		c.epochKnown, c.epoch = true, uint32(epoch)
		return nil
	}

	// Times.
	nTimes := r.uvarint()
	if r.err != nil || nTimes == 0 || nTimes > count {
		return fmt.Errorf("%w: time count", ErrCorrupt)
	}
	lt, ld := c.lastTime, c.lastDelta
	if fresh {
		lt, ld = 0, 0
	}
	c.times = c.times[:0]
	for i := uint64(0); i < nTimes; i++ {
		d := ld + unzig(r.uvarint())
		lt += d
		ld = d
		c.times = append(c.times, lt)
	}

	// Series table.
	nSeries := r.uvarint()
	if r.err != nil || nSeries == 0 || nSeries > count {
		return fmt.Errorf("%w: series count", ErrCorrupt)
	}
	c.tkeys = c.tkeys[:0]
	for i := uint64(0); i < nSeries; i++ {
		port := r.uvarint()
		dk := r.byte()
		if r.err != nil || port > 1<<16-1 {
			return fmt.Errorf("%w: series table", ErrCorrupt)
		}
		c.tkeys = append(c.tkeys, seriesKey{port: uint16(port), dk: dk})
	}

	// Per-sample columns: series slot, time index, missed.
	c.sids = growInt(c.sids, n)
	c.col = colRead(&r, c.col[:0], n)
	var prev int64
	for j, v := range c.col {
		prev += unzig(v)
		if prev < 0 || prev >= int64(nSeries) {
			return fmt.Errorf("%w: series index %d", ErrCorrupt, prev)
		}
		c.sids[j] = int(prev)
	}
	c.tidx = growInt(c.tidx, n)
	c.col = colRead(&r, c.col[:0], n)
	prev = 0
	for j, v := range c.col {
		prev += unzig(v)
		if prev < 0 || prev >= int64(nTimes) {
			return fmt.Errorf("%w: time index %d", ErrCorrupt, prev)
		}
		c.tidx[j] = int(prev)
	}
	c.missed = colRead(&r, c.missed[:0], n)
	if r.err != nil {
		return fmt.Errorf("%w: sample columns", ErrCorrupt)
	}
	for _, m := range c.missed {
		if m > 1<<32-1 {
			return fmt.Errorf("%w: missed count %d", ErrCorrupt, m)
		}
	}

	// Per-slot counts and offsets; every table entry must be referenced
	// (encoders never emit unused series).
	c.counts = growInt(c.counts, int(nSeries))
	for slot := range c.counts {
		c.counts[slot] = 0
	}
	for _, slot := range c.sids {
		c.counts[slot]++
	}
	c.offs = growInt(c.offs, int(nSeries))
	c.cursor = growInt(c.cursor, int(nSeries))
	c.binoffs = growInt(c.binoffs, int(nSeries))
	off, binoff := 0, 0
	for slot := range c.counts {
		if c.counts[slot] == 0 {
			return fmt.Errorf("%w: unreferenced series %d", ErrCorrupt, slot)
		}
		c.offs[slot] = off
		off += c.counts[slot]
		c.cursor[slot] = 0
		c.binoffs[slot] = -1
		if isSizeBins(c.tkeys[slot].dk) {
			c.binoffs[slot] = binoff
			binoff += c.counts[slot] * asic.NumSizeBins
		}
	}

	// Value (and bin) columns, reconstructed to absolutes against the
	// stream state; a series unseen this stream (or a fresh epoch)
	// chains from zero, which is how first batches carry absolutes.
	c.vals = growU64(c.vals, n)
	c.binvals = growU64(c.binvals, binoff)
	c.runD = growI64(c.runD, int(nSeries))
	c.runBinsD = growI64(c.runBinsD, int(nSeries)*asic.NumSizeBins)
	for slot := range c.tkeys {
		var base uint64
		var baseD int64
		var st *mbw3Series
		if si, ok := c.idx[c.tkeys[slot]]; ok && !fresh {
			st = &c.states[si]
			base, baseD = st.value, st.valueD
		}
		cnt := c.counts[slot]
		c.col = colRead(&r, c.col[:0], cnt)
		for i, v := range c.col {
			baseD += unzig(v)
			base += uint64(baseD)
			c.vals[c.offs[slot]+i] = base
		}
		c.runD[slot] = baseD
		if bo := c.binoffs[slot]; bo >= 0 {
			for k := 0; k < asic.NumSizeBins; k++ {
				var bbase uint64
				var bbaseD int64
				if st != nil {
					bbase, bbaseD = st.bins[k], st.binsD[k]
				}
				c.col = colRead(&r, c.col[:0], cnt)
				for i, v := range c.col {
					bbaseD += unzig(v)
					bbase += uint64(bbaseD)
					c.binvals[bo+k*cnt+i] = bbase
				}
				c.runBinsD[slot*asic.NumSizeBins+k] = bbaseD
			}
		}
	}
	if r.err != nil {
		return fmt.Errorf("%w: value columns", ErrCorrupt)
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf))
	}

	// Reassemble samples in their original order.
	if cap(b.Samples) < n {
		b.Samples = make([]Sample, 0, n)
	}
	for j := 0; j < n; j++ {
		slot := c.sids[j]
		k := c.tkeys[slot]
		i := c.cursor[slot]
		c.cursor[slot]++
		s := Sample{
			Time:   simclock.Time(c.times[c.tidx[j]]),
			Port:   k.port,
			Dir:    asic.Direction(k.dk & 1),
			Kind:   asic.CounterKind(k.dk >> 1),
			Missed: uint32(c.missed[j]),
			Value:  c.vals[c.offs[slot]+i],
		}
		if bo := c.binoffs[slot]; bo >= 0 {
			cnt := c.counts[slot]
			for kk := 0; kk < asic.NumSizeBins; kk++ {
				s.Bins[kk] = c.binvals[bo+kk*cnt+i]
			}
		}
		b.Samples = append(b.Samples, s)
	}

	// Commit stream state.
	if fresh {
		clear(c.idx)
		c.states = c.states[:0]
	}
	for slot, key := range c.tkeys {
		si, ok := c.idx[key]
		if !ok {
			si = len(c.states)
			c.states = append(c.states, mbw3Series{})
			c.idx[key] = si
		}
		st := &c.states[si]
		cnt := c.counts[slot]
		st.value = c.vals[c.offs[slot]+cnt-1]
		st.valueD = c.runD[slot]
		if bo := c.binoffs[slot]; bo >= 0 {
			for k := 0; k < asic.NumSizeBins; k++ {
				st.bins[k] = c.binvals[bo+k*cnt+cnt-1]
				st.binsD[k] = c.runBinsD[slot*asic.NumSizeBins+k]
			}
		}
	}
	c.epochKnown, c.epoch = true, uint32(epoch)
	c.lastTime, c.lastDelta = lt, ld
	return nil
}
