// Package sweep runs parameter sweeps over the reproduction: one knob
// varied, everything else held at the experiment config, one table row per
// value. Sweeps answer the "what if" questions around the paper's design
// points:
//
//   - SamplingInterval extends Table 1 into a full curve (miss rate and
//     observable bursts vs. polling interval).
//   - BufferSize varies the ToR's shared buffer and watches congestion
//     discards and peak occupancy (the §7 buffering discussion: "if
//     buffers become comparatively smaller ... lower-latency congestion
//     signals may be required").
//   - Oversubscription varies the server count under fixed uplinks and
//     watches where the hot ports move (§6.3's explanation of cache
//     directionality).
//   - HotThreshold varies the burst criterion (§5.4's robustness claim).
package sweep

import (
	"fmt"
	"strings"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/core"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// Point is one sweep row.
type Point struct {
	// Label is the parameter value, formatted.
	Label string
	// Metrics holds the measured values keyed by metric name.
	Metrics map[string]float64
}

// Result is a completed sweep.
type Result struct {
	// Name identifies the sweep; ParamName the varied knob.
	Name, ParamName string
	// MetricNames fixes column order.
	MetricNames []string
	// Points are the rows, in parameter order.
	Points []Point
}

// Format renders the sweep as an aligned table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep %s (varying %s)\n", r.Name, r.ParamName)
	fmt.Fprintf(&b, "  %-12s", r.ParamName)
	for _, m := range r.MetricNames {
		fmt.Fprintf(&b, " %14s", m)
	}
	b.WriteString("\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-12s", p.Label)
		for _, m := range r.MetricNames {
			fmt.Fprintf(&b, " %14.4g", p.Metrics[m])
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// SamplingInterval sweeps the poller interval against a live rack,
// reporting the miss rate (Table 1's metric) and how many bursts remain
// visible at that granularity (§5.1's motivation).
func SamplingInterval(cfg core.Config, app workload.App, intervals []simclock.Duration) (Result, error) {
	res := Result{
		Name:        "sampling-interval",
		ParamName:   "interval",
		MetricNames: []string{"miss-rate-%", "bursts", "p90-burst-µs", "cpu-busy-%"},
	}
	for _, interval := range intervals {
		net, err := simnet.New(simnet.Config{
			Rack:   topo.Default(cfg.Servers),
			Params: cfg.ResolvedParams(app),
			Seed:   cfg.Seed,
		})
		if err != nil {
			return res, err
		}
		var samples []wire.Sample
		const port = 0
		p, err := collector.NewPoller(collector.PollerConfig{
			Interval:      interval,
			Counters:      []collector.CounterSpec{{Port: port, Dir: asic.TX, Kind: asic.KindBytes}},
			DedicatedCore: true,
		}, net.Switch(), rng.New(cfg.Seed^uint64(interval)), collector.EmitterFunc(func(s wire.Sample) {
			samples = append(samples, s)
		}))
		if err != nil {
			return res, err
		}
		net.Run(cfg.Warmup)
		p.Install(net.Scheduler())
		net.Run(cfg.WindowDur)
		p.Stop()

		metrics := map[string]float64{
			"miss-rate-%": p.MissRate() * 100,
			"cpu-busy-%":  p.CPUBusyFrac() * 100,
		}
		if series, err := analysis.UtilizationSeries(samples, net.Switch().Port(port).Speed()); err == nil {
			durs := analysis.BurstDurations(analysis.Bursts(series, cfg.HotThreshold))
			metrics["bursts"] = float64(len(durs))
			if len(durs) > 0 {
				metrics["p90-burst-µs"] = stats.NewECDF(durs).Quantile(0.9)
			}
		}
		res.Points = append(res.Points, Point{Label: interval.String(), Metrics: metrics})
	}
	return res, nil
}

// BufferSize sweeps the ToR's shared buffer capacity and reports drops
// and normalized peak occupancy on a hadoop-class rack.
func BufferSize(cfg core.Config, app workload.App, sizes []float64) (Result, error) {
	res := Result{
		Name:        "buffer-size",
		ParamName:   "buffer",
		MetricNames: []string{"drops", "drops-per-ms", "peak-frac", "hot-%"},
	}
	for _, size := range sizes {
		net, err := simnet.New(simnet.Config{
			Rack:        topo.Default(cfg.Servers),
			Params:      cfg.ResolvedParams(app),
			Seed:        cfg.Seed,
			BufferBytes: size,
		})
		if err != nil {
			return res, err
		}
		net.Run(cfg.Warmup)
		net.Switch().ReadPeakBufferAndClear()
		start := net.Switch().TotalDropped()
		var peak float64
		var hot, total int
		prev := make([]uint64, net.Rack().NumPorts())
		for p := range prev {
			prev[p] = net.Switch().Port(p).Bytes(asic.TX)
		}
		interval := 300 * simclock.Microsecond
		steps := int(cfg.WindowDur.Ticks(interval))
		for i := 0; i < steps; i++ {
			net.Run(interval)
			if pk := net.Switch().ReadPeakBufferAndClear(); pk > peak {
				peak = pk
			}
			for p := 0; p < net.Rack().NumPorts(); p++ {
				cur := net.Switch().Port(p).Bytes(asic.TX)
				util := float64(cur-prev[p]) * 8 / (float64(net.Switch().Port(p).Speed()) * interval.Seconds())
				prev[p] = cur
				total++
				if util > analysis.DefaultHotThreshold {
					hot++
				}
			}
		}
		drops := float64(net.Switch().TotalDropped() - start)
		res.Points = append(res.Points, Point{
			Label: fmt.Sprintf("%.0fKB", size/1024),
			Metrics: map[string]float64{
				"drops":        drops,
				"drops-per-ms": drops / (cfg.WindowDur.Seconds() * 1000),
				"peak-frac":    peak / size,
				"hot-%":        float64(hot) / float64(total) * 100,
			},
		})
	}
	return res, nil
}

// Oversubscription sweeps the number of servers under the fixed 4×40G
// uplinks and reports the uplink share of hot samples and mean uplink
// utilization for an application.
func Oversubscription(cfg core.Config, app workload.App, serverCounts []int) (Result, error) {
	res := Result{
		Name:        "oversubscription",
		ParamName:   "servers",
		MetricNames: []string{"oversub", "uplink-share-%", "uplink-mean-%"},
	}
	for _, servers := range serverCounts {
		c := cfg
		c.Servers = servers
		exp, err := core.NewExperiment(c)
		if err != nil {
			return res, err
		}
		fig9, err := exp.Fig9HotPortShare()
		if err != nil {
			return res, err
		}
		// Mean uplink utilization from a short direct run.
		net, err := simnet.New(simnet.Config{
			Rack:   topo.Default(servers),
			Params: c.ResolvedParams(app),
			Seed:   c.Seed,
		})
		if err != nil {
			return res, err
		}
		net.Run(cfg.Warmup)
		rack := net.Rack()
		before := make([]uint64, rack.NumUplinks)
		for u := range before {
			before[u] = net.Switch().Port(rack.UplinkPort(u)).Bytes(asic.TX)
		}
		net.Run(cfg.WindowDur)
		var mean float64
		for u := 0; u < rack.NumUplinks; u++ {
			delta := float64(net.Switch().Port(rack.UplinkPort(u)).Bytes(asic.TX) - before[u])
			mean += delta * 8 / (float64(rack.UplinkSpeed) * cfg.WindowDur.Seconds())
		}
		mean /= float64(rack.NumUplinks)

		res.Points = append(res.Points, Point{
			Label: fmt.Sprintf("%d", servers),
			Metrics: map[string]float64{
				"oversub":        topo.Default(servers).Oversubscription(),
				"uplink-share-%": fig9.Share[app].UplinkShare() * 100,
				"uplink-mean-%":  mean * 100,
			},
		})
	}
	return res, nil
}

// HotThreshold sweeps the burst criterion and reports how the burst count
// and p90 duration respond (§5.4: weakly, because utilization is
// multimodal).
func HotThreshold(cfg core.Config, app workload.App, thresholds []float64) (Result, error) {
	res := Result{
		Name:        "hot-threshold",
		ParamName:   "threshold",
		MetricNames: []string{"bursts", "p90-burst-µs", "hot-%"},
	}
	exp, err := core.NewExperiment(cfg)
	if err != nil {
		return res, err
	}
	campaign, err := exp.RunByteCampaign(app, 0)
	if err != nil {
		return res, err
	}
	for _, th := range thresholds {
		durs := campaign.BurstDurationsMicros(th)
		var hot, total float64
		for _, s := range campaign.WindowSeries {
			hot += analysis.HotFraction(s, th) * float64(len(s))
			total += float64(len(s))
		}
		metrics := map[string]float64{
			"bursts": float64(len(durs)),
			"hot-%":  hot / total * 100,
		}
		if len(durs) > 0 {
			metrics["p90-burst-µs"] = stats.NewECDF(durs).Quantile(0.9)
		}
		res.Points = append(res.Points, Point{Label: fmt.Sprintf("%.0f%%", th*100), Metrics: metrics})
	}
	return res, nil
}
