// Package sweep runs parameter sweeps over the reproduction: one knob
// varied, everything else held at the experiment config, one table row per
// value. Sweeps answer the "what if" questions around the paper's design
// points:
//
//   - SamplingInterval extends Table 1 into a full curve (miss rate and
//     observable bursts vs. polling interval).
//   - BufferSize varies the ToR's shared buffer and watches congestion
//     discards and peak occupancy (the §7 buffering discussion: "if
//     buffers become comparatively smaller ... lower-latency congestion
//     signals may be required").
//   - Oversubscription varies the server count under fixed uplinks and
//     watches where the hot ports move (§6.3's explanation of cache
//     directionality).
//   - HotThreshold varies the burst criterion (§5.4's robustness claim).
//
// Every sweep fans its measurement cells through the core campaign runner,
// so Config.Workers and context cancellation apply here too.
package sweep

import (
	"context"
	"fmt"
	"strings"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/core"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

// Point is one sweep row.
type Point struct {
	// Label is the parameter value, formatted.
	Label string
	// Metrics holds the measured values keyed by metric name.
	Metrics map[string]float64
}

// Result is a completed sweep.
type Result struct {
	// Name identifies the sweep; ParamName the varied knob.
	Name, ParamName string
	// MetricNames fixes column order.
	MetricNames []string
	// Points are the rows, in parameter order.
	Points []Point
}

// Format renders the sweep as an aligned table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep %s (varying %s)\n", r.Name, r.ParamName)
	fmt.Fprintf(&b, "  %-12s", r.ParamName)
	for _, m := range r.MetricNames {
		fmt.Fprintf(&b, " %14s", m)
	}
	b.WriteString("\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-12s", p.Label)
		for _, m := range r.MetricNames {
			fmt.Fprintf(&b, " %14.4g", p.Metrics[m])
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// portZeroBytes polls only port 0's egress byte counter.
func portZeroBytes(topo.Rack, int, int) []collector.CounterSpec {
	return []collector.CounterSpec{{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}}
}

// SamplingInterval sweeps the poller interval against a live rack,
// reporting the miss rate (Table 1's metric) and how many bursts remain
// visible at that granularity (§5.1's motivation).
func SamplingInterval(ctx context.Context, cfg core.Config, app workload.App, intervals []simclock.Duration) (Result, error) {
	res := Result{
		Name:        "sampling-interval",
		ParamName:   "interval",
		MetricNames: []string{"miss-rate-%", "bursts", "p90-burst-µs", "cpu-busy-%"},
	}
	exp, err := core.NewExperiment(cfg)
	if err != nil {
		return res, err
	}
	cells := make([]core.Cell, len(intervals))
	for i, interval := range intervals {
		cells[i] = core.Cell{App: app, Plan: portZeroBytes, Interval: interval}
	}
	points, err := core.RunCells(ctx, exp.Runner(), cells, func(run *core.CellRun) (Point, error) {
		metrics := map[string]float64{
			"miss-rate-%": run.MissRate * 100,
			"cpu-busy-%":  run.CPUBusy * 100,
		}
		if series, err := analysis.UtilizationSeries(run.Samples, run.Net.Switch().Port(0).Speed()); err == nil {
			durs := analysis.BurstDurations(analysis.Bursts(series, cfg.HotThreshold))
			metrics["bursts"] = float64(len(durs))
			if len(durs) > 0 {
				metrics["p90-burst-µs"] = stats.NewECDF(durs).Quantile(0.9)
			}
		}
		return Point{Label: run.Cell.Interval.String(), Metrics: metrics}, nil
	})
	if err != nil {
		return res, err
	}
	res.Points = points
	return res, nil
}

// BufferSize sweeps the ToR's shared buffer capacity and reports drops
// and normalized peak occupancy on a hadoop-class rack.
func BufferSize(ctx context.Context, cfg core.Config, app workload.App, sizes []float64) (Result, error) {
	res := Result{
		Name:        "buffer-size",
		ParamName:   "buffer",
		MetricNames: []string{"drops", "drops-per-ms", "peak-frac", "hot-%"},
	}
	// Every port's egress bytes and drops plus the shared-buffer peak
	// register: enough to derive all four metrics from the sample stream.
	plan := func(rack topo.Rack, _, _ int) []collector.CounterSpec {
		out := []collector.CounterSpec{{Kind: asic.KindBufferPeak}}
		for p := 0; p < rack.NumPorts(); p++ {
			out = append(out,
				collector.CounterSpec{Port: p, Dir: asic.TX, Kind: asic.KindBytes},
				collector.CounterSpec{Port: p, Dir: asic.TX, Kind: asic.KindDrops},
			)
		}
		return out
	}
	interval := 300 * simclock.Microsecond
	for _, size := range sizes {
		c := cfg
		c.BufferBytes = size
		exp, err := core.NewExperiment(c)
		if err != nil {
			return res, err
		}
		cells := []core.Cell{{App: app, Plan: plan, Interval: interval}}
		points, err := core.RunCells(ctx, exp.Runner(), cells, func(run *core.CellRun) (Point, error) {
			split := analysis.Split(run.Samples)
			ports := run.Net.Rack().NumPorts()
			var drops, peak float64
			var hot, total int
			for _, s := range run.Samples {
				if s.Kind == asic.KindBufferPeak && float64(s.Value) > peak {
					peak = float64(s.Value)
				}
			}
			for p := 0; p < ports; p++ {
				ds := split[analysis.SeriesKey{Port: uint16(p), Dir: asic.TX, Kind: asic.KindDrops}]
				if len(ds) >= 2 {
					drops += float64(ds[len(ds)-1].Value - ds[0].Value)
				}
				bs := split[analysis.SeriesKey{Port: uint16(p), Dir: asic.TX, Kind: asic.KindBytes}]
				series, err := analysis.UtilizationSeries(bs, run.Net.Switch().Port(p).Speed())
				if err != nil {
					continue
				}
				for _, u := range series {
					total++
					if u.Util > analysis.DefaultHotThreshold {
						hot++
					}
				}
			}
			metrics := map[string]float64{
				"drops":        drops,
				"drops-per-ms": drops / (cfg.WindowDur.Seconds() * 1000),
				"peak-frac":    peak / size,
			}
			if total > 0 {
				metrics["hot-%"] = float64(hot) / float64(total) * 100
			}
			return Point{Label: fmt.Sprintf("%.0fKB", size/1024), Metrics: metrics}, nil
		})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, points...)
	}
	return res, nil
}

// Oversubscription sweeps the number of servers under the fixed 4×40G
// uplinks and reports the uplink share of hot samples and mean uplink
// utilization for an application.
func Oversubscription(ctx context.Context, cfg core.Config, app workload.App, serverCounts []int) (Result, error) {
	res := Result{
		Name:        "oversubscription",
		ParamName:   "servers",
		MetricNames: []string{"oversub", "uplink-share-%", "uplink-mean-%"},
	}
	uplinkBytes := func(rack topo.Rack, _, _ int) []collector.CounterSpec {
		out := make([]collector.CounterSpec, 0, rack.NumUplinks)
		for u := 0; u < rack.NumUplinks; u++ {
			out = append(out, collector.CounterSpec{Port: rack.UplinkPort(u), Dir: asic.TX, Kind: asic.KindBytes})
		}
		return out
	}
	for _, servers := range serverCounts {
		c := cfg
		c.Servers = servers
		exp, err := core.NewExperiment(c)
		if err != nil {
			return res, err
		}
		fig9, err := exp.Fig9HotPortShare(ctx)
		if err != nil {
			return res, err
		}
		// Mean uplink utilization from one representative window.
		cells := []core.Cell{{App: app, Plan: uplinkBytes, Interval: 300 * simclock.Microsecond}}
		means, err := core.RunCells(ctx, exp.Runner(), cells, func(run *core.CellRun) (float64, error) {
			rack := run.Net.Rack()
			split := analysis.Split(run.Samples)
			var mean float64
			var n int
			for u := 0; u < rack.NumUplinks; u++ {
				key := analysis.SeriesKey{Port: uint16(rack.UplinkPort(u)), Dir: asic.TX, Kind: asic.KindBytes}
				series, err := analysis.UtilizationSeries(split[key], rack.UplinkSpeed)
				if err != nil {
					continue
				}
				for _, p := range series {
					mean += p.Util
					n++
				}
			}
			if n > 0 {
				mean /= float64(n)
			}
			return mean, nil
		})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, Point{
			Label: fmt.Sprintf("%d", servers),
			Metrics: map[string]float64{
				"oversub":        topo.Default(servers).Oversubscription(),
				"uplink-share-%": fig9.Share[app].UplinkShare() * 100,
				"uplink-mean-%":  means[0] * 100,
			},
		})
	}
	return res, nil
}

// HotThreshold sweeps the burst criterion and reports how the burst count
// and p90 duration respond (§5.4: weakly, because utilization is
// multimodal).
func HotThreshold(ctx context.Context, cfg core.Config, app workload.App, thresholds []float64) (Result, error) {
	res := Result{
		Name:        "hot-threshold",
		ParamName:   "threshold",
		MetricNames: []string{"bursts", "p90-burst-µs", "hot-%"},
	}
	exp, err := core.NewExperiment(cfg)
	if err != nil {
		return res, err
	}
	campaign, err := exp.RunByteCampaign(ctx, app, 0)
	if err != nil {
		return res, err
	}
	for _, th := range thresholds {
		durs := campaign.BurstDurationsMicros(th)
		var hot, total float64
		for _, s := range campaign.WindowSeries {
			hot += analysis.HotFraction(s, th) * float64(len(s))
			total += float64(len(s))
		}
		metrics := map[string]float64{
			"bursts": float64(len(durs)),
			"hot-%":  hot / total * 100,
		}
		if len(durs) > 0 {
			metrics["p90-burst-µs"] = stats.NewECDF(durs).Quantile(0.9)
		}
		res.Points = append(res.Points, Point{Label: fmt.Sprintf("%.0f%%", th*100), Metrics: metrics})
	}
	return res, nil
}
