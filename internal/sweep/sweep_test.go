package sweep

import (
	"context"
	"strings"
	"testing"

	"mburst/internal/core"
	"mburst/internal/simclock"
	"mburst/internal/workload"
)

func sweepConfig() core.Config {
	cfg := core.QuickConfig()
	cfg.WindowDur = 60 * simclock.Millisecond
	return cfg
}

func TestSamplingIntervalSweep(t *testing.T) {
	res, err := SamplingInterval(context.Background(), sweepConfig(), workload.Hadoop, []simclock.Duration{
		10 * simclock.Microsecond,
		25 * simclock.Microsecond,
		200 * simclock.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Miss rate decreases with interval.
	if res.Points[0].Metrics["miss-rate-%"] <= res.Points[2].Metrics["miss-rate-%"] {
		t.Errorf("miss rate not decreasing: %v vs %v",
			res.Points[0].Metrics["miss-rate-%"], res.Points[2].Metrics["miss-rate-%"])
	}
	// CPU utilization decreases with interval (§4.1's precision/CPU trade).
	if res.Points[0].Metrics["cpu-busy-%"] <= res.Points[2].Metrics["cpu-busy-%"] {
		t.Error("cpu busy not decreasing with coarser interval")
	}
	// Coarse sampling sees fewer bursts (the §5.1 motivation).
	if res.Points[2].Metrics["bursts"] >= res.Points[1].Metrics["bursts"] {
		t.Errorf("200µs sees %v bursts vs %v at 25µs; coarse should see fewer",
			res.Points[2].Metrics["bursts"], res.Points[1].Metrics["bursts"])
	}
	out := res.Format()
	if !strings.Contains(out, "sampling-interval") || !strings.Contains(out, "miss-rate-%") {
		t.Errorf("format:\n%s", out)
	}
}

func TestBufferSizeSweep(t *testing.T) {
	res, err := BufferSize(context.Background(), sweepConfig(), workload.Hadoop, []float64{64 << 10, 1536 << 10, 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Smaller buffers drop (weakly) more.
	small := res.Points[0].Metrics["drops"]
	large := res.Points[2].Metrics["drops"]
	if small < large {
		t.Errorf("64KB drops (%v) should be >= 16MB drops (%v)", small, large)
	}
	if small == 0 {
		t.Error("tiny buffer produced no drops under hadoop")
	}
	// Peak occupancy fraction shrinks as the buffer grows.
	if res.Points[0].Metrics["peak-frac"] < res.Points[2].Metrics["peak-frac"] {
		t.Error("peak fraction should shrink with buffer size")
	}
}

func TestOversubscriptionSweep(t *testing.T) {
	cfg := sweepConfig()
	cfg.Windows = 1
	res, err := Oversubscription(context.Background(), cfg, workload.Cache, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Metrics["oversub"] != 0.5 || res.Points[1].Metrics["oversub"] != 2 {
		t.Errorf("oversub values: %v %v",
			res.Points[0].Metrics["oversub"], res.Points[1].Metrics["oversub"])
	}
	// More servers → higher mean uplink utilization for cache.
	if res.Points[1].Metrics["uplink-mean-%"] <= res.Points[0].Metrics["uplink-mean-%"] {
		t.Errorf("uplink mean should grow with oversubscription: %v vs %v",
			res.Points[0].Metrics["uplink-mean-%"], res.Points[1].Metrics["uplink-mean-%"])
	}
}

func TestHotThresholdSweep(t *testing.T) {
	res, err := HotThreshold(context.Background(), sweepConfig(), workload.Hadoop, []float64{0.3, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Hot fraction is monotone decreasing in the threshold.
	prev := res.Points[0].Metrics["hot-%"]
	for _, p := range res.Points[1:] {
		if p.Metrics["hot-%"] > prev {
			t.Errorf("hot fraction not monotone: %v after %v", p.Metrics["hot-%"], prev)
		}
		prev = p.Metrics["hot-%"]
	}
	// §5.4's robustness: the p90 burst duration stays in the same decade
	// across thresholds.
	lo := res.Points[0].Metrics["p90-burst-µs"]
	hi := res.Points[2].Metrics["p90-burst-µs"]
	if lo > 0 && hi > 0 && (lo/hi > 10 || hi/lo > 10) {
		t.Errorf("p90 unstable across thresholds: %v vs %v", lo, hi)
	}
}
