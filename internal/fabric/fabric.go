// Package fabric extends the measurement study one tier up the Clos
// topology — the paper's stated future work ("Due to current deployment
// restrictions, we concentrate on ToR switches for this study and leave
// the study of other network tiers to future work", §4.2).
//
// A Cluster runs several rack simulations in lockstep and stands up one
// fabric switch per uplink index, wired the standard folded-Clos way:
// uplink f of every ToR connects to fabric switch f. Each fabric switch
// is a full asic.Switch, so the same collection framework (the poller,
// the wire protocol, the analyses) measures it with zero changes:
//
//	fabric switch f ports [0, K)         one per rack (ToR-facing, 40G)
//	fabric switch f ports [K, K+S)       spine-facing (100G)
//
// Traffic at the fabric tier is derived from the racks' uplink streams:
// what a ToR sends up uplink f arrives at fabric f's rack port and is
// forwarded to a spine port (per-rack static ECMP, as lumpy as real flow
// hashing); what a ToR receives on uplink f must have left fabric f's
// ToR-facing egress port. No traffic is invented or lost.
//
// The tier-comparison claim this enables (§4.2, citing Jupiter [19]):
// ToR ports are burstier than fabric/spine ports — aggregation across
// racks statistically multiplexes the µbursts away. CompareTiers
// quantifies it; TestFabricSmoothsBursts and the extension bench check it.
package fabric

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
)

// Config configures a cluster.
type Config struct {
	// RackConfigs lists the per-rack simulations (apps may differ). All
	// racks must share the same topology shape and tick.
	RackConfigs []simnet.Config
	// SpinePorts is the number of spine-facing ports per fabric switch
	// (default 2).
	SpinePorts int
	// SpineSpeed is the spine link rate (default 100G).
	SpineSpeed uint64
	// FabricBufferBytes / FabricAlpha configure each fabric switch's
	// shared buffer (defaults 4 MB, alpha 2 — fabric chips are deeper).
	FabricBufferBytes float64
	FabricAlpha       float64
}

func (c *Config) applyDefaults() {
	if c.SpinePorts == 0 {
		c.SpinePorts = 2
	}
	if c.SpineSpeed == 0 {
		c.SpineSpeed = topo.Gbps100
	}
	if c.FabricBufferBytes == 0 {
		c.FabricBufferBytes = 4 << 20
	}
	if c.FabricAlpha == 0 {
		c.FabricAlpha = 2
	}
}

// Cluster is a set of racks under a fabric-switch tier.
type Cluster struct {
	cfg     Config
	racks   []*simnet.Net
	fabrics []*asic.Switch
	shape   topo.Rack
	tick    simclock.Duration

	// perTick[f][port] accumulates this tick's offered bytes/profile for
	// fabric switch f, filled by the rack observers and flushed by Run.
	pending []map[int]offer
}

type offer struct {
	bytes   float64
	profile asic.TrafficProfile
}

// New builds the cluster and wires the rack observers.
func New(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	if len(cfg.RackConfigs) == 0 {
		return nil, fmt.Errorf("fabric: no racks")
	}
	c := &Cluster{cfg: cfg}
	for i := range cfg.RackConfigs {
		rc := cfg.RackConfigs[i]
		net, err := simnet.New(rc)
		if err != nil {
			return nil, fmt.Errorf("fabric: rack %d: %w", i, err)
		}
		if i == 0 {
			c.shape = net.Rack()
			c.tick = net.Tick()
		} else {
			if net.Rack() != c.shape {
				return nil, fmt.Errorf("fabric: rack %d shape differs", i)
			}
			if net.Tick() != c.tick {
				return nil, fmt.Errorf("fabric: rack %d tick differs", i)
			}
		}
		c.racks = append(c.racks, net)
	}

	k := len(c.racks)
	for f := 0; f < c.shape.NumUplinks; f++ {
		speeds := make([]uint64, 0, k+cfg.SpinePorts)
		names := make([]string, 0, k+cfg.SpinePorts)
		for r := 0; r < k; r++ {
			speeds = append(speeds, c.shape.UplinkSpeed)
			names = append(names, fmt.Sprintf("tor%d", r))
		}
		for s := 0; s < cfg.SpinePorts; s++ {
			speeds = append(speeds, cfg.SpineSpeed)
			names = append(names, fmt.Sprintf("spine%d", s))
		}
		c.fabrics = append(c.fabrics, asic.New(asic.Config{
			PortSpeeds:  speeds,
			PortNames:   names,
			BufferBytes: cfg.FabricBufferBytes,
			Alpha:       cfg.FabricAlpha,
		}))
		c.pending = append(c.pending, make(map[int]offer))
	}

	for r, net := range c.racks {
		r := r
		net.SetTxObserver(func(_ simclock.Time, port int, nbytes float64, profile asic.TrafficProfile) {
			c.onRackTx(r, port, nbytes, profile)
		})
		net.SetRxObserver(func(_ simclock.Time, port int, nbytes float64, profile asic.TrafficProfile) {
			c.onRackRx(r, port, nbytes, profile)
		})
	}
	return c, nil
}

// onRackTx handles ToR→fabric traffic: the ToR's uplink-f egress arrives
// at fabric f's rack port (RX) and is forwarded to a spine port.
func (c *Cluster) onRackTx(rack, port int, nbytes float64, profile asic.TrafficProfile) {
	if !c.shape.IsUplink(port) {
		return
	}
	f := port - c.shape.NumServers
	sw := c.fabrics[f]
	sw.OfferRx(rack, nbytes, profile)
	// Spine egress: per-rack static assignment mimics flow-hash lumpiness
	// at rack granularity.
	spine := c.spinePortIndex(rack)
	c.accumulate(f, spine, nbytes, profile)
}

// onRackRx handles fabric→ToR traffic: what the ToR receives on uplink f
// was forwarded by fabric f out of its rack-facing port, having arrived
// from a spine port.
func (c *Cluster) onRackRx(rack, port int, nbytes float64, profile asic.TrafficProfile) {
	if !c.shape.IsUplink(port) {
		return
	}
	f := port - c.shape.NumServers
	sw := c.fabrics[f]
	// Arrived from the spine.
	sw.OfferRx(c.spinePortIndex(rack), nbytes, profile)
	// Leaves toward the rack.
	c.accumulate(f, rack, nbytes, profile)
}

// accumulate merges an egress offer into the tick-pending set for fabric f.
func (c *Cluster) accumulate(f, port int, nbytes float64, profile asic.TrafficProfile) {
	o := c.pending[f][port]
	if o.bytes == 0 {
		o.profile = profile
	} else {
		total := o.bytes + nbytes
		for i := range o.profile {
			o.profile[i] = (o.profile[i]*o.bytes + profile[i]*nbytes) / total
		}
	}
	o.bytes += nbytes
	c.pending[f][port] = o
}

// spinePortIndex returns the fabric-switch port index of the spine port
// assigned to a rack.
func (c *Cluster) spinePortIndex(rack int) int {
	return len(c.racks) + rack%c.cfg.SpinePorts
}

// NumRacks returns the rack count.
func (c *Cluster) NumRacks() int { return len(c.racks) }

// Rack returns rack i's simulation.
func (c *Cluster) Rack(i int) *simnet.Net { return c.racks[i] }

// NumFabrics returns the fabric-switch count (= uplinks per ToR).
func (c *Cluster) NumFabrics() int { return len(c.fabrics) }

// Fabric returns fabric switch f's ASIC; poll it like any switch.
func (c *Cluster) Fabric(f int) *asic.Switch { return c.fabrics[f] }

// SpinePort returns the port index of spine port s on a fabric switch.
func (c *Cluster) SpinePort(s int) int {
	if s < 0 || s >= c.cfg.SpinePorts {
		panic(fmt.Sprintf("fabric: spine port %d out of range", s))
	}
	return len(c.racks) + s
}

// ToRPort returns the fabric-switch port index facing rack r.
func (c *Cluster) ToRPort(r int) int {
	if r < 0 || r >= len(c.racks) {
		panic(fmt.Sprintf("fabric: rack %d out of range", r))
	}
	return r
}

// Shape returns the common rack topology.
func (c *Cluster) Shape() topo.Rack { return c.shape }

// Tick returns the cluster's native tick.
func (c *Cluster) Tick() simclock.Duration { return c.tick }

// Now returns the cluster time (all racks advance in lockstep).
func (c *Cluster) Now() simclock.Time { return c.racks[0].Now() }

// InstallPoller attaches the standard collection framework to fabric
// switch f — the same Poller that samples ToRs, demonstrating that the
// framework ports unchanged to higher tiers. Rack 0's scheduler serves as
// the time base; the cluster advances all racks in lockstep, so it is the
// cluster clock. The fabric ASIC applies its tick right after the racks',
// so fabric counter reads lag the racks' by at most one native tick.
func (c *Cluster) InstallPoller(f int, cfg collector.PollerConfig, src *rng.Source, emit collector.Emitter) (*collector.Poller, error) {
	if f < 0 || f >= len(c.fabrics) {
		return nil, fmt.Errorf("fabric: switch %d out of range", f)
	}
	p, err := collector.NewPoller(cfg, c.fabrics[f], src, emit)
	if err != nil {
		return nil, err
	}
	p.Install(c.racks[0].Scheduler())
	return p, nil
}

// Run advances every rack and the fabric tier in lockstep by d.
func (c *Cluster) Run(d simclock.Duration) {
	if d < 0 {
		panic("fabric: negative run duration")
	}
	end := c.Now().Add(d)
	for c.Now().Before(end) {
		step := c.tick
		if remaining := end.Sub(c.Now()); remaining < step {
			step = remaining
		}
		for _, net := range c.racks {
			net.Run(step) // observers fill c.pending
		}
		for f, sw := range c.fabrics {
			for port, o := range c.pending[f] {
				sw.OfferTx(port, o.bytes, o.profile)
				delete(c.pending[f], port)
			}
			sw.Tick(step)
		}
	}
}
