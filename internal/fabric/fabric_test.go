package fabric

import (
	"math"
	"testing"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

func clusterConfig(nRacks, servers int, apps ...workload.App) Config {
	var cfg Config
	for i := 0; i < nRacks; i++ {
		app := apps[i%len(apps)]
		cfg.RackConfigs = append(cfg.RackConfigs, simnet.Config{
			Rack:   topo.Default(servers),
			Params: workload.DefaultParams(app),
			Seed:   uint64(1000 + i),
			RackID: i,
		})
	}
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty cluster accepted")
	}
	// Mismatched rack shapes are rejected.
	cfg := clusterConfig(1, 8, workload.Web)
	cfg.RackConfigs = append(cfg.RackConfigs, simnet.Config{
		Rack:   topo.Default(16),
		Params: workload.DefaultParams(workload.Web),
	})
	if _, err := New(cfg); err == nil {
		t.Error("mismatched shapes accepted")
	}
	// Invalid rack config propagates.
	bad := clusterConfig(1, 8, workload.Web)
	bad.RackConfigs[0].Params = workload.Params{}
	if _, err := New(bad); err == nil {
		t.Error("invalid rack params accepted")
	}
}

func TestTopologyWiring(t *testing.T) {
	c, err := New(clusterConfig(3, 8, workload.Web))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRacks() != 3 || c.NumFabrics() != 4 {
		t.Fatalf("racks=%d fabrics=%d", c.NumRacks(), c.NumFabrics())
	}
	// Fabric switch: 3 ToR ports + 2 spine ports.
	sw := c.Fabric(0)
	if sw.NumPorts() != 5 {
		t.Fatalf("fabric ports = %d", sw.NumPorts())
	}
	if sw.Port(c.ToRPort(2)).Name() != "tor2" {
		t.Error("ToR port naming wrong")
	}
	if sw.Port(c.SpinePort(1)).Name() != "spine1" {
		t.Error("spine port naming wrong")
	}
	if sw.Port(c.SpinePort(0)).Speed() != topo.Gbps100 {
		t.Error("spine speed wrong")
	}
	if sw.Port(c.ToRPort(0)).Speed() != topo.Gbps40 {
		t.Error("ToR-facing speed wrong")
	}
	for _, f := range []func(){
		func() { c.SpinePort(2) },
		func() { c.ToRPort(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range port did not panic")
				}
			}()
			f()
		}()
	}
}

func TestLockstepAdvance(t *testing.T) {
	c, err := New(clusterConfig(2, 8, workload.Cache))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(simclock.Millis(7))
	if c.Now() != simclock.Epoch.Add(simclock.Millis(7)) {
		t.Errorf("cluster now = %v", c.Now())
	}
	for r := 0; r < 2; r++ {
		if c.Rack(r).Now() != c.Now() {
			t.Errorf("rack %d out of lockstep: %v", r, c.Rack(r).Now())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative run did not panic")
		}
	}()
	c.Run(-1)
}

func TestByteConservationAcrossTiers(t *testing.T) {
	// Whatever the ToRs send up their uplinks must appear as fabric RX on
	// the ToR-facing ports, and (after line-rate forwarding) leave via
	// spine ports; the fabric invents no traffic.
	c, err := New(clusterConfig(2, 8, workload.Cache))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(simclock.Millis(50))
	var torUplinkTx, fabricRackRx, spineTx float64
	shape := c.Shape()
	for r := 0; r < c.NumRacks(); r++ {
		for u := 0; u < shape.NumUplinks; u++ {
			torUplinkTx += float64(c.Rack(r).Switch().Port(shape.UplinkPort(u)).Bytes(asic.TX))
		}
	}
	for f := 0; f < c.NumFabrics(); f++ {
		for r := 0; r < c.NumRacks(); r++ {
			fabricRackRx += float64(c.Fabric(f).Port(c.ToRPort(r)).Bytes(asic.RX))
		}
		for s := 0; s < 2; s++ {
			spineTx += float64(c.Fabric(f).Port(c.SpinePort(s)).Bytes(asic.TX))
		}
	}
	if torUplinkTx == 0 {
		t.Fatal("no uplink traffic")
	}
	// Fabric RX sees the *offered* uplink traffic (pre-queueing at the
	// ToR), so it can only exceed ToR TX by at most the queued remainder.
	if fabricRackRx < torUplinkTx*0.95 {
		t.Errorf("fabric rack RX %v far below ToR uplink TX %v", fabricRackRx, torUplinkTx)
	}
	// Spine TX forwards the same volume, minus what is still queued or
	// dropped at fabric egress.
	if spineTx < fabricRackRx*0.8 || spineTx > fabricRackRx*1.05 {
		t.Errorf("spine TX %v inconsistent with fabric RX %v", spineTx, fabricRackRx)
	}
}

func TestFabricDownstreamMirrorsRackIngress(t *testing.T) {
	c, err := New(clusterConfig(2, 8, workload.Web))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(simclock.Millis(50))
	shape := c.Shape()
	var torUplinkRx, fabricToTorTx float64
	for r := 0; r < c.NumRacks(); r++ {
		for u := 0; u < shape.NumUplinks; u++ {
			torUplinkRx += float64(c.Rack(r).Switch().Port(shape.UplinkPort(u)).Bytes(asic.RX))
		}
	}
	for f := 0; f < c.NumFabrics(); f++ {
		for r := 0; r < c.NumRacks(); r++ {
			fabricToTorTx += float64(c.Fabric(f).Port(c.ToRPort(r)).Bytes(asic.TX))
		}
	}
	if torUplinkRx == 0 {
		t.Fatal("no downstream traffic")
	}
	ratio := fabricToTorTx / torUplinkRx
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("fabric→ToR TX / ToR uplink RX = %v, want ≈1", ratio)
	}
}

func TestCompareTiersValidation(t *testing.T) {
	c, err := New(clusterConfig(1, 8, workload.Web))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareTiers(c, simclock.Millis(1), simclock.Millis(1), 0); err == nil {
		t.Error("dur < 2×interval accepted")
	}
	if _, err := CompareTiers(c, simclock.Millis(1), 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

// TestFabricSmoothsBursts is the tier-comparison headline: spine ports
// aggregate several racks, so their utilization is less variable (lower
// CoV) than ToR server ports even though their mean is higher.
func TestFabricSmoothsBursts(t *testing.T) {
	c, err := New(clusterConfig(4, 16, workload.Hadoop, workload.Cache))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(simclock.Millis(30)) // warmup
	cmp, err := CompareTiers(c, simclock.Millis(300), 300*simclock.Microsecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", cmp.Format())
	if cmp.ToR.MeanUtil <= 0 || cmp.Spine.MeanUtil <= 0 {
		t.Fatal("degenerate tiers")
	}
	if !(cmp.Spine.CoV < cmp.ToR.CoV) {
		t.Errorf("spine CoV %v should be below ToR CoV %v (aggregation smooths)", cmp.Spine.CoV, cmp.ToR.CoV)
	}
	if math.IsNaN(cmp.Uplink.CoV) {
		t.Error("uplink stats NaN")
	}
}

// TestFabricPolling runs the standard collection framework against a
// fabric switch: the spine port's utilization series reconstructed from
// polled cumulative byte counters must agree with the counter deltas read
// directly.
func TestFabricPolling(t *testing.T) {
	c, err := New(clusterConfig(3, 8, workload.Cache))
	if err != nil {
		t.Fatal(err)
	}
	spine := c.SpinePort(0)
	var samples []wire.Sample
	_, err = c.InstallPoller(0, collector.PollerConfig{
		Interval:      100 * simclock.Microsecond,
		Counters:      []collector.CounterSpec{{Port: spine, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
	}, rng.New(3), collector.EmitterFunc(func(s wire.Sample) { samples = append(samples, s) }))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(100 * simclock.Millisecond)
	if len(samples) < 900 {
		t.Fatalf("only %d fabric samples", len(samples))
	}
	series, err := analysis.UtilizationSeries(samples, c.Fabric(0).Port(spine).Speed())
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, p := range series {
		if p.Util < 0 || p.Util > 1.2 {
			t.Fatalf("implausible fabric utilization %v", p.Util)
		}
		mean += p.Util
	}
	mean /= float64(len(series))
	// Direct check: cumulative counter over the polled span.
	first, last := samples[0], samples[len(samples)-1]
	direct := float64(last.Value-first.Value) * 8 /
		(float64(c.Fabric(0).Port(spine).Speed()) * last.Time.Sub(first.Time).Seconds())
	if mean == 0 || direct == 0 {
		t.Fatal("no spine traffic observed")
	}
	if rel := (mean - direct) / direct; rel > 0.02 || rel < -0.02 {
		t.Errorf("polled mean %v vs direct %v", mean, direct)
	}
	// Out-of-range switch rejected.
	if _, err := c.InstallPoller(99, collector.PollerConfig{}, rng.New(1), nil); err == nil {
		t.Error("out-of-range fabric accepted")
	}
}
