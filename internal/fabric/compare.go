package fabric

import (
	"fmt"
	"math"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/stats"
)

// TierStats summarizes the burstiness of one tier's ports.
type TierStats struct {
	// Ports is the number of port series aggregated.
	Ports int
	// MeanUtil is the average utilization across ports and samples.
	MeanUtil float64
	// CoV is the coefficient of variation (σ/µ) of the utilization
	// samples — the scale-free burstiness measure used for the tier
	// comparison: aggregation should shrink it.
	CoV float64
	// HotFrac is the fraction of samples above the hot threshold.
	HotFrac float64
	// BurstsPerSecond is the rate of distinct bursts observed.
	BurstsPerSecond float64
}

// seriesStats computes TierStats over a set of utilization series.
func seriesStats(series [][]analysis.UtilPoint, threshold float64, dur simclock.Duration) TierStats {
	st := TierStats{Ports: len(series)}
	var all []float64
	bursts := 0
	for _, s := range series {
		all = append(all, analysis.Utils(s)...)
		bursts += len(analysis.Bursts(s, threshold))
	}
	if len(all) == 0 {
		return st
	}
	st.MeanUtil = stats.Mean(all)
	if st.MeanUtil > 0 {
		st.CoV = stats.StdDev(all) / st.MeanUtil
	}
	hot := 0
	for _, u := range all {
		if u > threshold {
			hot++
		}
	}
	st.HotFrac = float64(hot) / float64(len(all))
	if secs := dur.Seconds(); secs > 0 && len(series) > 0 {
		st.BurstsPerSecond = float64(bursts) / secs / float64(len(series))
	}
	return st
}

// Comparison holds the ToR-vs-fabric tier measurement.
type Comparison struct {
	Interval simclock.Duration
	ToR      TierStats // ToR server-facing egress ports
	Uplink   TierStats // ToR uplink egress ports
	Spine    TierStats // fabric spine-facing egress ports
}

// Format renders the comparison.
func (c Comparison) Format() string {
	row := func(name string, s TierStats) string {
		return fmt.Sprintf("  %-7s ports=%2d mean=%5.1f%% CoV=%5.2f hot=%6.2f%% bursts/s=%6.1f",
			name, s.Ports, s.MeanUtil*100, s.CoV, s.HotFrac*100, s.BurstsPerSecond)
	}
	return fmt.Sprintf("Tier comparison @%v (paper §4.2: ToRs burstier than higher tiers)\n%s\n%s\n%s",
		c.Interval, row("tor", c.ToR), row("uplink", c.Uplink), row("spine", c.Spine))
}

// CompareTiers runs the cluster for dur, sampling every port of interest
// at the given interval, and returns per-tier burstiness statistics. The
// cluster should already be warmed up.
func CompareTiers(c *Cluster, dur, interval simclock.Duration, threshold float64) (Comparison, error) {
	if interval <= 0 || dur < 2*interval {
		return Comparison{}, fmt.Errorf("fabric: need dur >= 2×interval, got %v / %v", dur, interval)
	}
	if threshold <= 0 {
		threshold = analysis.DefaultHotThreshold
	}
	shape := c.Shape()
	samples := int(dur.Ticks(interval))

	type probe struct {
		read  func() uint64
		speed uint64
		prev  uint64
		tier  int // 0 tor downlink, 1 tor uplink, 2 spine
	}
	var probes []*probe
	for r := 0; r < c.NumRacks(); r++ {
		sw := c.Rack(r).Switch()
		for s := 0; s < shape.NumServers; s++ {
			port := sw.Port(s)
			probes = append(probes, &probe{read: func() uint64 { return port.Bytes(asic.TX) }, speed: port.Speed(), tier: 0})
		}
		for u := 0; u < shape.NumUplinks; u++ {
			port := sw.Port(shape.UplinkPort(u))
			probes = append(probes, &probe{read: func() uint64 { return port.Bytes(asic.TX) }, speed: port.Speed(), tier: 1})
		}
	}
	for f := 0; f < c.NumFabrics(); f++ {
		sw := c.Fabric(f)
		for s := 0; s < c.cfg.SpinePorts; s++ {
			port := sw.Port(c.SpinePort(s))
			probes = append(probes, &probe{read: func() uint64 { return port.Bytes(asic.TX) }, speed: port.Speed(), tier: 2})
		}
	}

	series := make([][]analysis.UtilPoint, len(probes))
	for _, p := range probes {
		p.prev = p.read()
	}
	now := c.Now()
	for i := 0; i < samples; i++ {
		c.Run(interval)
		next := now.Add(interval)
		for pi, p := range probes {
			cur := p.read()
			util := float64(cur-p.prev) * 8 / (float64(p.speed) * interval.Seconds())
			p.prev = cur
			series[pi] = append(series[pi], analysis.UtilPoint{Start: now, End: next, Util: util})
		}
		now = next
	}

	group := func(tier int) [][]analysis.UtilPoint {
		var out [][]analysis.UtilPoint
		for pi, p := range probes {
			if p.tier == tier {
				out = append(out, series[pi])
			}
		}
		return out
	}
	cmp := Comparison{
		Interval: interval,
		ToR:      seriesStats(group(0), threshold, dur),
		Uplink:   seriesStats(group(1), threshold, dur),
		Spine:    seriesStats(group(2), threshold, dur),
	}
	if math.IsNaN(cmp.ToR.MeanUtil) || math.IsNaN(cmp.Spine.MeanUtil) {
		return cmp, fmt.Errorf("fabric: degenerate measurement")
	}
	return cmp, nil
}
