// Package shard maps racks onto collector shards.
//
// The paper measures one rack per collector because polling cost caps
// coverage; the fleet tier breaks that open by fanning thousands of
// racks into M sharded collectors whose accumulator snapshots merge
// into fleet-wide figures. The contract that makes the merge exact is
// ownership: every rack — and therefore every (rack, port, dir, kind)
// series — belongs to exactly one shard, so shard-local accumulators
// partition the fleet state and their union is bit-identical to a
// single collector that saw everything.
//
// Placement implements that ownership with rendezvous (highest-random-
// weight) hashing over a seeded FNV-1a score, the same ASIC-style
// fold internal/ecmp.FlowHasher uses for uplink selection. Rendezvous
// hashing gives the two properties a fleet needs operationally:
//
//   - deterministic: any agent or collector holding (seed, shard list)
//     computes the same rack→shard map with no coordination;
//   - minimal disruption: adding a shard moves only the racks that now
//     score highest on it, and removing a shard moves only the racks it
//     owned. Racks never shuffle between surviving shards.
//
// A Placement is explicit and versioned: membership edits go through
// WithShard/WithoutShard, which bump Version, so campaign metadata
// (campaign.json, fleet.json) records exactly which generation of the
// map produced an archive.
package shard

import (
	"errors"
	"fmt"
)

// Placement is a versioned rack→shard map: a seed plus an ordered shard
// list. The shard index in Shards is the shard's identity everywhere
// (archive subdirectories, -shard flags, ShardUpdate.Shard); the name is
// the stable handle that survives membership changes.
type Placement struct {
	// Version counts membership generations. WithShard and WithoutShard
	// return a Placement with Version+1; two placements with the same
	// Version, Seed and Shards are interchangeable.
	Version int `json:"version"`
	// Seed perturbs the rendezvous scores, so distinct campaigns spread
	// racks differently over the same shard list.
	Seed uint64 `json:"seed"`
	// Shards lists the shard names in index order.
	Shards []string `json:"shards"`
}

// New returns a version-1 placement over the given shard names.
func New(shards []string, seed uint64) (Placement, error) {
	p := Placement{Version: 1, Seed: seed, Shards: append([]string(nil), shards...)}
	if err := p.Validate(); err != nil {
		return Placement{}, err
	}
	return p, nil
}

// Uniform returns a version-1 placement over n canonically named shards
// ("shard_000", "shard_001", ...) — the in-process fleet harness shape,
// where shard identity is positional.
func Uniform(n int, seed uint64) (Placement, error) {
	if n <= 0 {
		return Placement{}, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = CanonicalName(i)
	}
	return New(names, seed)
}

// CanonicalName returns the positional shard name Uniform uses.
func CanonicalName(i int) string { return fmt.Sprintf("shard_%03d", i) }

// Validate checks the placement for structural problems: no shards,
// empty names, or duplicate names (which would split one shard's racks
// across two indexes).
func (p Placement) Validate() error {
	if len(p.Shards) == 0 {
		return errors.New("shard: placement has no shards")
	}
	if p.Version <= 0 {
		return fmt.Errorf("shard: placement version %d; versions start at 1", p.Version)
	}
	seen := make(map[string]struct{}, len(p.Shards))
	for i, name := range p.Shards {
		if name == "" {
			return fmt.Errorf("shard: shard %d has an empty name", i)
		}
		if _, dup := seen[name]; dup {
			return fmt.Errorf("shard: duplicate shard name %q", name)
		}
		seen[name] = struct{}{}
	}
	return nil
}

// NumShards returns the shard count.
func (p Placement) NumShards() int { return len(p.Shards) }

// Name returns shard i's name.
func (p Placement) Name(i int) string { return p.Shards[i] }

// Index returns the index of the named shard, or -1 if absent.
func (p Placement) Index(name string) int {
	for i, s := range p.Shards {
		if s == name {
			return i
		}
	}
	return -1
}

// ShardOf returns the owning shard index for a rack: the shard whose
// rendezvous score for this rack is highest, ties broken toward the
// lexically smaller name so the answer never depends on list order.
func (p Placement) ShardOf(rack uint32) int {
	best := 0
	bestScore := score(p.Seed, p.Shards[0], rack)
	for i := 1; i < len(p.Shards); i++ {
		s := score(p.Seed, p.Shards[i], rack)
		if s > bestScore || (s == bestScore && p.Shards[i] < p.Shards[best]) {
			best, bestScore = i, s
		}
	}
	return best
}

// Owner returns the owning shard's name for a rack.
func (p Placement) Owner(rack uint32) string { return p.Shards[p.ShardOf(rack)] }

// WithShard returns a new generation with name appended to the shard
// list. Only racks whose highest score moves to the new shard remap.
func (p Placement) WithShard(name string) (Placement, error) {
	next := Placement{
		Version: p.Version + 1,
		Seed:    p.Seed,
		Shards:  append(append([]string(nil), p.Shards...), name),
	}
	if err := next.Validate(); err != nil {
		return Placement{}, err
	}
	return next, nil
}

// WithoutShard returns a new generation with the named shard removed.
// Only the racks that shard owned remap; every other rack keeps its
// owner (by name — indexes after the removed shard shift down).
func (p Placement) WithoutShard(name string) (Placement, error) {
	i := p.Index(name)
	if i < 0 {
		return Placement{}, fmt.Errorf("shard: removing unknown shard %q", name)
	}
	if len(p.Shards) == 1 {
		return Placement{}, fmt.Errorf("shard: removing %q would leave an empty placement", name)
	}
	shards := make([]string, 0, len(p.Shards)-1)
	shards = append(shards, p.Shards[:i]...)
	shards = append(shards, p.Shards[i+1:]...)
	next := Placement{Version: p.Version + 1, Seed: p.Seed, Shards: shards}
	if err := next.Validate(); err != nil {
		return Placement{}, err
	}
	return next, nil
}

// Equal reports whether two placements are the same generation of the
// same map.
func (p Placement) Equal(o Placement) bool {
	if p.Version != o.Version || p.Seed != o.Seed || len(p.Shards) != len(o.Shards) {
		return false
	}
	for i := range p.Shards {
		if p.Shards[i] != o.Shards[i] {
			return false
		}
	}
	return true
}

// score is the rendezvous weight of (shard, rack): FNV-1a over the
// shard name then the rack id, seeded the way ecmp.FlowKey.hash64 mixes
// a per-switch hash seed into the offset basis.
func score(seed uint64, name string, rack uint32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	for i := 0; i < 4; i++ {
		h ^= (uint64(rack) >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}
