package shard

import (
	"encoding/json"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Placement
		ok   bool
	}{
		{"empty", Placement{Version: 1}, false},
		{"zero version", Placement{Shards: []string{"a"}}, false},
		{"blank name", Placement{Version: 1, Shards: []string{"a", ""}}, false},
		{"duplicate", Placement{Version: 1, Shards: []string{"a", "a"}}, false},
		{"ok", Placement{Version: 1, Shards: []string{"a", "b"}}, true},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if _, err := Uniform(0, 1); err == nil {
		t.Error("Uniform(0) should fail")
	}
	if _, err := New([]string{"a", "a"}, 1); err == nil {
		t.Error("New with duplicates should fail")
	}
}

func TestShardOfDeterministic(t *testing.T) {
	p, err := Uniform(7, 42)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Uniform(7, 42)
	if err != nil {
		t.Fatal(err)
	}
	for rack := uint32(0); rack < 2000; rack++ {
		a, b := p.ShardOf(rack), q.ShardOf(rack)
		if a != b {
			t.Fatalf("rack %d: placement not deterministic (%d vs %d)", rack, a, b)
		}
		if a < 0 || a >= p.NumShards() {
			t.Fatalf("rack %d: shard %d out of range", rack, a)
		}
		if p.Owner(rack) != p.Name(a) {
			t.Fatalf("rack %d: Owner disagrees with ShardOf", rack)
		}
	}
}

func TestShardOfSeedSensitivity(t *testing.T) {
	a, _ := Uniform(8, 1)
	b, _ := Uniform(8, 2)
	moved := 0
	for rack := uint32(0); rack < 1000; rack++ {
		if a.ShardOf(rack) != b.ShardOf(rack) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the seed moved no racks; scores ignore the seed")
	}
}

func TestShardOfOrderIndependent(t *testing.T) {
	a, _ := New([]string{"east", "west", "north"}, 9)
	b, _ := New([]string{"north", "east", "west"}, 9)
	for rack := uint32(0); rack < 1000; rack++ {
		if a.Owner(rack) != b.Owner(rack) {
			t.Fatalf("rack %d: owner depends on shard list order (%q vs %q)",
				rack, a.Owner(rack), b.Owner(rack))
		}
	}
}

func TestBalance(t *testing.T) {
	const racks, shards = 10000, 8
	p, err := Uniform(shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for rack := uint32(0); rack < racks; rack++ {
		counts[p.ShardOf(rack)]++
	}
	// Rendezvous hashing over a decent hash should stay within a loose
	// band of the mean; the bound guards against a degenerate fold, not
	// statistical noise.
	mean := racks / shards
	for i, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %d owns %d racks; mean is %d — placement badly unbalanced", i, c, mean)
		}
	}
}

// TestMinimalDisruption is the property that justifies rendezvous over
// modulo hashing: membership changes move only the racks they must.
func TestMinimalDisruption(t *testing.T) {
	const racks = 5000
	p, err := Uniform(5, 11)
	if err != nil {
		t.Fatal(err)
	}

	grown, err := p.WithShard("shard_new")
	if err != nil {
		t.Fatal(err)
	}
	if grown.Version != p.Version+1 {
		t.Fatalf("WithShard version = %d, want %d", grown.Version, p.Version+1)
	}
	movedToNew := 0
	for rack := uint32(0); rack < racks; rack++ {
		before, after := p.Owner(rack), grown.Owner(rack)
		if before == after {
			continue
		}
		if after != "shard_new" {
			t.Fatalf("rack %d moved %q→%q on shard add; only moves onto the new shard are allowed",
				rack, before, after)
		}
		movedToNew++
	}
	if movedToNew == 0 {
		t.Error("adding a shard attracted no racks")
	}
	if movedToNew > racks/3 {
		t.Errorf("adding one shard to five moved %d/%d racks; expected roughly 1/6", movedToNew, racks)
	}

	victim := p.Name(2)
	shrunk, err := p.WithoutShard(victim)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Version != p.Version+1 {
		t.Fatalf("WithoutShard version = %d, want %d", shrunk.Version, p.Version+1)
	}
	for rack := uint32(0); rack < racks; rack++ {
		before, after := p.Owner(rack), shrunk.Owner(rack)
		if before != victim && before != after {
			t.Fatalf("rack %d moved %q→%q on unrelated shard removal", rack, before, after)
		}
		if before == victim && after == victim {
			t.Fatalf("rack %d still owned by removed shard %q", rack, victim)
		}
	}

	if _, err := p.WithoutShard("nonexistent"); err == nil {
		t.Error("WithoutShard(unknown) should fail")
	}
	solo, _ := Uniform(1, 1)
	if _, err := solo.WithoutShard(solo.Name(0)); err == nil {
		t.Error("removing the last shard should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p, err := New([]string{"a", "b", "c"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	p.Version = 4
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Placement
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatalf("round trip changed the placement: %+v vs %+v", p, q)
	}
	for rack := uint32(0); rack < 500; rack++ {
		if p.ShardOf(rack) != q.ShardOf(rack) {
			t.Fatalf("rack %d maps differently after JSON round trip", rack)
		}
	}
}

func TestIndex(t *testing.T) {
	p, _ := New([]string{"a", "b"}, 0)
	if got := p.Index("b"); got != 1 {
		t.Errorf("Index(b) = %d, want 1", got)
	}
	if got := p.Index("z"); got != -1 {
		t.Errorf("Index(z) = %d, want -1", got)
	}
	if !p.Equal(p) {
		t.Error("placement not Equal to itself")
	}
	q, _ := p.WithShard("c")
	if p.Equal(q) {
		t.Error("different generations compare Equal")
	}
}
