package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the standard daemon debug surface:
//
//	/metrics       Prometheus text format
//	/stats         JSON snapshot of the same registry
//	/healthz       200 "ok" (or 503 with the check error)
//	/debug/pprof/  the standard net/http/pprof handlers
//
// healthz may be nil for an always-healthy endpoint. Callers mount extra
// paths (e.g. a legacy ingest snapshot) on the returned mux.
func NewDebugMux(reg *Registry, healthz func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler(reg))
	mux.Handle("/stats", JSONHandler(reg))
	mux.Handle("/healthz", HealthHandler(healthz))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HealthHandler returns a /healthz handler. check may be nil (always
// healthy); a non-nil error answers 503 with the error text.
func HealthHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// DebugServer is a started debug HTTP server. Close releases the
// listener; in-flight scrapes are abandoned (these endpoints are
// best-effort diagnostics, not user traffic).
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebug listens on addr (":0" picks a free port) and serves handler
// in a background goroutine.
func StartDebug(addr string, handler http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{srv: &http.Server{Handler: handler}, ln: ln}
	go d.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return d, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43211".
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }
