// Package obs is the reproduction's unified telemetry layer: an
// allocation-light metrics registry with Prometheus text-format and JSON
// exposition, a debug HTTP mux (/metrics, /stats, /healthz,
// /debug/pprof/), and shared structured-logging setup for the daemons.
//
// The paper's framework is an operational measurement system — a sampler
// on the switch CPU shipping to a distributed collector service (§4.1) —
// so the pipeline must be able to observe itself: poll cost, missed
// intervals, reconnect churn, ingest volume. Every instrument here is
// designed for hot paths:
//
//   - Counter, Gauge and Histogram updates are single atomic operations
//     (Histogram adds one CAS for the sum); no locks, no allocations.
//   - Every method is nil-safe: a nil *Counter (what a nil *Registry
//     hands out) is a no-op, so library code can instrument
//     unconditionally and pay only a predicted branch when telemetry is
//     disabled.
//   - Funcs (CounterFunc/GaugeFunc) are evaluated only at scrape time,
//     the right shape for adapters over existing state such as the
//     simulated switch's drop and ECN totals.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The zero value is ready to
// use; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is lock-free: one atomic bucket increment, one atomic count
// increment, one CAS for the sum. A nil Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefLatencyBucketsUS is a general-purpose latency bucket layout in
// microseconds, spanning sub-µs ASIC reads to multi-ms stalls.
var DefLatencyBucketsUS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Local returns a LocalHistogram feeding h. Nil h → nil (no-op local).
func (h *Histogram) Local() *LocalHistogram {
	if h == nil {
		return nil
	}
	return &LocalHistogram{h: h, counts: make([]uint64, len(h.buckets))}
}

// LocalHistogram batches observations for a single-goroutine hot path:
// Observe touches only plain fields — no atomics, no CAS — and Flush
// folds the accumulated buckets into the shared Histogram in one pass.
// On a ~100 ns poll loop the three atomic RMWs of Histogram.Observe are
// measurable; amortizing them across a flush interval is not. A nil
// LocalHistogram (what a nil Histogram's Local returns) is a no-op.
//
// Not safe for concurrent use; observations are invisible to scrapes
// until Flush, so flush periodically and before the owning loop exits.
type LocalHistogram struct {
	h      *Histogram
	counts []uint64
	sum    float64
	n      uint64
}

// Observe records v locally.
func (l *LocalHistogram) Observe(v float64) {
	if l == nil {
		return
	}
	i := 0
	for i < len(l.h.bounds) && v > l.h.bounds[i] {
		i++
	}
	l.counts[i]++
	l.sum += v
	l.n++
}

// Flush folds accumulated observations into the shared histogram and
// resets the local state.
func (l *LocalHistogram) Flush() {
	if l == nil || l.n == 0 {
		return
	}
	for i, c := range l.counts {
		if c != 0 {
			l.h.buckets[i].Add(c)
			l.counts[i] = 0
		}
	}
	l.h.count.Add(l.n)
	l.n = 0
	for {
		old := l.h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + l.sum)
		if l.h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	l.sum = 0
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns bounds plus per-bucket (non-cumulative) counts.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is +Inf.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Kind discriminates metric families in snapshots and exposition.
type Kind string

// Metric family kinds, matching Prometheus TYPE names.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name string
	help string
	kind Kind

	order []*series
	byKey map[string]*series
}

// Registry holds registered metrics. A nil Registry hands out nil
// instruments, whose methods are no-ops — callers never need to branch.
// Registration takes a lock; instrument updates never do.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelKey serializes sorted labels for series identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

// getSeries finds or creates the (family, series) slot for name+labels,
// panicking on a kind conflict — mixing kinds under one name is a
// programming error that would corrupt exposition.
func (r *Registry) getSeries(name, help string, kind Kind, labels []Label) (*family, *series, bool) {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(sorted)
	if s, ok := f.byKey[key]; ok {
		return f, s, false
	}
	s := &series{labels: sorted}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return f, s, true
}

// Counter registers (or fetches) a counter series. Nil registry → nil
// counter (no-op).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	_, s, fresh := r.getSeries(name, help, KindCounter, labels)
	if fresh {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or fetches) a gauge series. Nil registry → nil gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	_, s, fresh := r.getSeries(name, help, KindGauge, labels)
	if fresh {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the scrape-time adapter shape for exposing existing state.
// Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	_, s, _ := r.getSeries(name, help, KindGauge, labels)
	s.fn = fn
	s.g = nil
}

// CounterFunc registers a counter whose value is computed by fn at scrape
// time. The caller guarantees monotonicity (e.g. a cumulative hardware
// counter). Re-registering the same series replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	_, s, _ := r.getSeries(name, help, KindCounter, labels)
	s.fn = fn
	s.c = nil
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (+Inf implicit). Re-registration returns the
// existing histogram; bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	_, s, fresh := r.getSeries(name, help, KindHistogram, labels)
	if fresh {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// SeriesSnapshot is one series' state inside a Snapshot.
type SeriesSnapshot struct {
	Labels    []Label            `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// FamilySnapshot is one metric family's state inside a Snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   Kind             `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time copy of every registered metric, in
// registration order. It backs both exposition formats.
type Snapshot struct {
	Families []FamilySnapshot `json:"metrics"`
}

// Snapshot reads every series. Funcs are evaluated here, on the scraping
// goroutine. Nil registry → empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	// Copy each family's series list under the lock; the instruments
	// themselves are atomics and are read outside it.
	type famCopy struct {
		f      *family
		series []*series
	}
	copies := make([]famCopy, len(fams))
	for i, f := range fams {
		copies[i] = famCopy{f: f, series: append([]*series(nil), f.order...)}
	}
	r.mu.Unlock()

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(copies))}
	for _, fc := range copies {
		fs := FamilySnapshot{Name: fc.f.name, Help: fc.f.help, Kind: fc.f.kind}
		for _, s := range fc.series {
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.fn != nil:
				ss.Value = s.fn()
			case s.c != nil:
				ss.Value = float64(s.c.Value())
			case s.g != nil:
				ss.Value = s.g.Value()
			case s.h != nil:
				hs := s.h.snapshot()
				ss.Histogram = &hs
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
