package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("mburst_polls_total", "Completed polls.").Add(42)
	reg.Gauge("mburst_depth", "Queue depth.", L("q", "ev\"x")).Set(3)
	h := reg.Histogram("mburst_cost_us", "Poll cost.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	return reg
}

func TestPrometheusText(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP mburst_polls_total Completed polls.",
		"# TYPE mburst_polls_total counter",
		"mburst_polls_total 42",
		"# TYPE mburst_depth gauge",
		`mburst_depth{q="ev\"x"} 3`,
		"# TYPE mburst_cost_us histogram",
		`mburst_cost_us_bucket{le="1"} 1`,
		`mburst_cost_us_bucket{le="10"} 2`,
		`mburst_cost_us_bucket{le="+Inf"} 3`,
		"mburst_cost_us_sum 55.5",
		"mburst_cost_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	srv := httptest.NewServer(JSONHandler(testRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 3 {
		t.Fatalf("families = %d, want 3", len(snap.Families))
	}
	if snap.Families[0].Name != "mburst_polls_total" || snap.Families[0].Series[0].Value != 42 {
		t.Errorf("counter family = %+v", snap.Families[0])
	}
	hist := snap.Families[2].Series[0].Histogram
	if hist == nil || hist.Count != 3 {
		t.Errorf("histogram = %+v", hist)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	mux := NewDebugMux(testRegistry(), nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "mburst_polls_total 42") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/stats"); code != 200 || !strings.Contains(body, `"mburst_polls_total"`) {
		t.Errorf("/stats: code %d body %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d body %q", code, body)
	}
}

func TestHealthzFailure(t *testing.T) {
	boom := func() error { return io.ErrUnexpectedEOF }
	srv := httptest.NewServer(HealthHandler(boom))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func TestStartDebugServes(t *testing.T) {
	ds, err := StartDebug("127.0.0.1:0", NewDebugMux(testRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestGoRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterGoRuntime(reg)
	snap := reg.Snapshot()
	found := map[string]float64{}
	for _, f := range snap.Families {
		found[f.Name] = f.Series[0].Value
	}
	if found["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v", found["go_goroutines"])
	}
	if found["go_memstats_heap_alloc_bytes"] <= 0 {
		t.Errorf("heap_alloc = %v", found["go_memstats_heap_alloc_bytes"])
	}
}
