package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per series,
// histograms expanded into cumulative _bucket{le=...}, _sum and _count.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if s.Histogram != nil {
				if err := writePromHistogram(w, f.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, promLabels(s.Labels, "", 0), promFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s SeriesSnapshot) error {
	h := s.Histogram
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.Labels, "le", bound), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.Labels, "le", math.Inf(1)), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.Labels, "", 0), promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.Labels, "", 0), h.Count)
	return err
}

// promLabels renders {k="v",...}, optionally appending an le bucket
// label; it returns "" when there is nothing to render.
func promLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(promFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat formats a value the way Prometheus expects, including +Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// PrometheusHandler serves the registry in Prometheus text format — mount
// at /metrics.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// JSONHandler serves the registry snapshot as indented JSON — mount at
// /stats. The shape is Snapshot's JSON encoding: a "metrics" array of
// families, each with its typed series.
func JSONHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
