package obs

import (
	"runtime"
	"time"
)

// RegisterGoRuntime exposes process-level health every daemon wants:
// goroutine count, heap usage, GC cycles and uptime. All are scrape-time
// funcs — the process pays nothing between scrapes. ReadMemStats
// stop-the-worlds briefly, which is acceptable at scrape frequency.
func RegisterGoRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	start := time.Now()
	// The go_* and process_* names below deliberately keep the ecosystem-
	// standard runtime namespaces instead of mburst_*, so stock Grafana
	// dashboards and alert rules apply unchanged.
	//lint:ignore metricname conventional Go runtime metric namespace
	reg.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	//lint:ignore metricname conventional Go runtime metric namespace
	reg.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapAlloc) })
	//lint:ignore metricname conventional Go runtime metric namespace
	reg.CounterFunc("go_memstats_total_alloc_bytes_total",
		"Cumulative bytes allocated on the heap.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.TotalAlloc) })
	//lint:ignore metricname conventional Go runtime metric namespace
	reg.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.NumGC) })
	//lint:ignore metricname conventional process metric namespace
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process registered its telemetry.",
		func() float64 { return time.Since(start).Seconds() })
}
