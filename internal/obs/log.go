package obs

import (
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds a slog.Logger writing to w at the given level, in
// logfmt-style text or JSON.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// DaemonLogger is the standard daemon logging setup: stderr, text format,
// info level, tagged with the daemon name. The environment overrides the
// defaults so operators can turn on debug logging or JSON shipping
// without a redeploy:
//
//	MBURST_LOG_LEVEL=debug|info|warn|error
//	MBURST_LOG_FORMAT=text|json
//
// The returned logger is also installed as slog's default so stray
// slog.Info calls in libraries land in the same stream.
func DaemonLogger(name string) *slog.Logger {
	level := slog.LevelInfo
	switch strings.ToLower(os.Getenv("MBURST_LOG_LEVEL")) {
	case "debug":
		level = slog.LevelDebug
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	}
	json := strings.EqualFold(os.Getenv("MBURST_LOG_FORMAT"), "json")
	logger := NewLogger(os.Stderr, level, json).With("daemon", name)
	slog.SetDefault(logger)
	return logger
}
