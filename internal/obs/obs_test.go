package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := reg.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	// Re-registration returns the same instrument.
	if reg.Counter("c_total", "help") != c {
		t.Error("re-registered counter is a different instance")
	}
	if reg.Gauge("g", "help") != g {
		t.Error("re-registered gauge is a different instance")
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("racks_total", "", L("rack", "0"))
	b := reg.Counter("racks_total", "", L("rack", "1"))
	if a == b {
		t.Fatal("distinct labels returned the same series")
	}
	a.Add(3)
	b.Add(7)
	snap := reg.Snapshot()
	if len(snap.Families) != 1 || len(snap.Families[0].Series) != 2 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	// Label order is normalized, so key order at registration is irrelevant.
	x := reg.Gauge("multi", "", L("b", "2"), L("a", "1"))
	y := reg.Gauge("multi", "", L("a", "1"), L("b", "2"))
	if x != y {
		t.Error("label order created distinct series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge registration under a counter name did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_us", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Errorf("sum = %v, want 556.5", got)
	}
	snap := h.snapshot()
	// 0.5 and 1 land in ≤1; 5 in ≤10; 50 in ≤100; 500 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
}

func TestLocalHistogramFlush(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_us", "", []float64{1, 10, 100})
	l := h.Local()
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		l.Observe(v)
	}
	if h.Count() != 0 {
		t.Errorf("observations visible before Flush: count = %d", h.Count())
	}
	l.Flush()
	l.Flush() // second flush must be a no-op
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Errorf("sum = %v, want 556.5", got)
	}
	snap := h.snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	// A second batch folds on top of the first.
	l.Observe(5)
	l.Flush()
	if h.Count() != 6 || h.snapshot().Counts[1] != 2 {
		t.Errorf("after second batch: count = %d, ≤10 bucket = %d", h.Count(), h.snapshot().Counts[1])
	}

	var nilH *Histogram
	nl := nilH.Local()
	nl.Observe(1) // nil local must no-op
	nl.Flush()
	if allocs := testing.AllocsPerRun(1000, func() { l.Observe(3) }); allocs != 0 {
		t.Errorf("LocalHistogram.Observe: %v allocs/op, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", []float64{1})
	reg.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments returned non-zero values")
	}
	if len(reg.Snapshot().Families) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestHotPathNoAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_us", "", DefLatencyBucketsUS)
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Add(3) }},
		{"gauge", func() { g.Set(1.5) }},
		{"histogram", func() { h.Observe(42) }},
		{"nil-counter", func() { nilC.Inc() }},
		{"nil-histogram", func() { nilH.Observe(42) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h", "", []float64{10})
	g := reg.Gauge("g", "")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
}

func TestSnapshotEvaluatesFuncs(t *testing.T) {
	reg := NewRegistry()
	v := 1.0
	reg.GaugeFunc("fn_gauge", "", func() float64 { return v })
	reg.CounterFunc("fn_total", "", func() float64 { return 2 * v })
	v = 21
	snap := reg.Snapshot()
	byName := map[string]float64{}
	for _, f := range snap.Families {
		byName[f.Name] = f.Series[0].Value
	}
	if byName["fn_gauge"] != 21 || byName["fn_total"] != 42 {
		t.Errorf("func values = %v", byName)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_us", "", DefLatencyBucketsUS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}
