package collector

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// memArchive is an in-memory ArchiveSink: deep-copied batches (handlers
// may not retain the decoded batch) plus injectable failures.
type memArchive struct {
	batches   []*wire.Batch
	syncs     int
	failWrite error
	failSync  error
}

func (m *memArchive) WriteBatch(b *wire.Batch) error {
	if m.failWrite != nil {
		return m.failWrite
	}
	cp := &wire.Batch{Rack: b.Rack, Epoch: b.Epoch, Samples: append([]wire.Sample(nil), b.Samples...)}
	m.batches = append(m.batches, cp)
	return nil
}

func (m *memArchive) Sync() error {
	if m.failSync != nil {
		return m.failSync
	}
	m.syncs++
	return nil
}

func (m *memArchive) Batches() uint64 { return uint64(len(m.batches)) }

func (m *memArchive) iter(fn func(*wire.Batch) error) error {
	for _, b := range m.batches {
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// ckptBatch builds batch i for rack: multi-sample, monotone time, a
// cumulative byte counter that exercises the live figures.
func ckptBatch(rack uint32, epoch uint32, i int) *wire.Batch {
	const perBatch = 8
	b := &wire.Batch{Rack: rack, Epoch: epoch}
	for j := 0; j < perBatch; j++ {
		seq := i*perBatch + j
		at := simclock.Epoch.Add(simclock.Micros(int64(seq) * 25))
		// Alternate hot/cold stretches so bursts open and close.
		frac := 0.1
		if (seq/6)%2 == 1 {
			frac = 0.95
		}
		b.Samples = append(b.Samples, wire.Sample{
			Time: at, Port: 1, Dir: asic.TX, Kind: asic.KindBytes,
			Value: uint64(seq) * uint64(frac*31250),
		})
	}
	return b
}

func newCkptFigures(t *testing.T) *LiveFigures {
	t.Helper()
	f, err := NewLiveFigures(LiveFiguresConfig{
		SpeedOf: func(uint32, uint16) uint64 { return 10_000_000_000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newDurable(t *testing.T, arch ArchiveSink, path string, every int) (*DurableIngest, *LiveFigures, *IngestStats) {
	t.Helper()
	figures := newCkptFigures(t)
	stats := &IngestStats{}
	d, err := NewDurableIngest(DurableIngestConfig{
		Archive:        arch,
		CheckpointPath: path,
		Every:          every,
		Figures:        figures,
		Stats:          stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, figures, stats
}

// TestDurableIngestResumeByteExact is the core durability property: kill
// the pipeline after an arbitrary batch, rebuild it from the checkpoint
// plus archive tail, continue ingesting, and every piece of state —
// figures, ingest counters, gate horizon — matches a pipeline that never
// died.
func TestDurableIngestResumeByteExact(t *testing.T) {
	const total, killAt = 30, 17
	for _, every := range []int{1, 4, 1000} {
		// Oracle: never crashes.
		oArch := &memArchive{}
		oracle, oFigures, oStats := newDurable(t, oArch, filepath.Join(t.TempDir(), "ckpt.json"), every)
		for i := 0; i < total; i++ {
			oracle.Handle(ckptBatch(1, 1, i))
			oracle.Handle(ckptBatch(2, 1, i))
		}

		// Crashing run: same traffic up to killAt, then the process dies —
		// everything volatile is gone, only arch + the checkpoint survive.
		arch := &memArchive{}
		path := filepath.Join(t.TempDir(), "ckpt.json")
		d1, _, _ := newDurable(t, arch, path, every)
		for i := 0; i < killAt; i++ {
			d1.Handle(ckptBatch(1, 1, i))
			d1.Handle(ckptBatch(2, 1, i))
		}

		// Resurrected run: fresh accumulators, Resume, then the rest of the
		// traffic.
		d2, figures, stats := newDurable(t, arch, path, every)
		rep, err := d2.Resume(arch.iter)
		if err != nil {
			t.Fatalf("every=%d: Resume: %v", every, err)
		}
		if rep.CheckpointBatches+rep.Replayed != rep.ArchiveBatches {
			t.Fatalf("every=%d: resume covered %d+%d of %d archived batches",
				every, rep.CheckpointBatches, rep.Replayed, rep.ArchiveBatches)
		}
		if every <= killAt && !rep.HadCheckpoint {
			t.Fatalf("every=%d: no checkpoint found", every)
		}
		for i := killAt; i < total; i++ {
			d2.Handle(ckptBatch(1, 1, i))
			d2.Handle(ckptBatch(2, 1, i))
		}

		if !reflect.DeepEqual(figures.State(), oFigures.State()) {
			t.Errorf("every=%d: figures state diverges from uninterrupted run", every)
		}
		if !reflect.DeepEqual(stats.Snapshot(), oStats.Snapshot()) {
			t.Errorf("every=%d: ingest stats diverge: %+v vs %+v", every, stats.Snapshot(), oStats.Snapshot())
		}
		if !reflect.DeepEqual(d2.gate.State(), oracle.gate.State()) {
			t.Errorf("every=%d: gate state diverges", every)
		}
		if arch.Batches() != oArch.Batches() {
			t.Errorf("every=%d: archive holds %d batches, oracle %d", every, arch.Batches(), oArch.Batches())
		}
	}
}

// TestDurableIngestResumeDedupsRetransmits proves exactly-once delivery
// end to end: an agent that retransmits its spool after a collector
// crash re-sends batches the archive already holds, and the restored
// gate drops every one of them.
func TestDurableIngestResumeDedupsRetransmits(t *testing.T) {
	const total, killAt, resendFrom = 20, 12, 7
	oArch := &memArchive{}
	oracle, _, oStats := newDurable(t, oArch, filepath.Join(t.TempDir(), "ckpt.json"), 4)
	for i := 0; i < total; i++ {
		oracle.Handle(ckptBatch(1, 1, i))
	}

	arch := &memArchive{}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	d1, _, _ := newDurable(t, arch, path, 4)
	for i := 0; i < killAt; i++ {
		d1.Handle(ckptBatch(1, 1, i))
	}

	d2, _, stats := newDurable(t, arch, path, 4)
	if _, err := d2.Resume(arch.iter); err != nil {
		t.Fatal(err)
	}
	// The agent cannot know which batches the collector archived before
	// dying, so it replays from its spool horizon — overlapping what
	// already landed — then continues with new traffic.
	for i := resendFrom; i < total; i++ {
		d2.Handle(ckptBatch(1, 1, i))
	}

	if got, want := stats.Snapshot(), oStats.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("retransmits double-counted: %+v vs oracle %+v", got, want)
	}
	if arch.Batches() != oArch.Batches() {
		t.Errorf("archive holds %d batches, oracle %d — duplicates were archived", arch.Batches(), oArch.Batches())
	}
}

func TestDurableIngestArchiveErrorSticky(t *testing.T) {
	arch := &memArchive{}
	d, _, _ := newDurable(t, arch, "", 4)
	d.Handle(ckptBatch(1, 1, 0))
	boom := errors.New("disk gone")
	arch.failWrite = boom
	d.Handle(ckptBatch(1, 1, 1))
	if err := d.Err(); err == nil || !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want wrapped %v", d.Err(), boom)
	}
	arch.failWrite = nil
	d.Handle(ckptBatch(1, 1, 2)) // must stay dead: the stream has a hole
	if arch.Batches() != 1 {
		t.Fatalf("archive took %d batches after a fatal error, want 1", arch.Batches())
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded on a dead pipeline")
	}
}

func TestDurableIngestSyncErrorFatal(t *testing.T) {
	arch := &memArchive{failSync: errors.New("fsync lost")}
	d, _, _ := newDurable(t, arch, filepath.Join(t.TempDir(), "ckpt.json"), 2)
	d.Handle(ckptBatch(1, 1, 0))
	d.Handle(ckptBatch(1, 1, 1)) // cadence point: sync fails inside checkpoint
	if d.Err() == nil {
		t.Fatal("failed archive sync did not latch as fatal")
	}
}

// TestDurableIngestShortfall: a checkpoint that claims more batches than
// the archive holds (the storage stack lied about fsync) must be
// reported, not replayed past the end or silently trusted.
func TestDurableIngestShortfall(t *testing.T) {
	arch := &memArchive{}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	d1, _, _ := newDurable(t, arch, path, 5)
	for i := 0; i < 10; i++ {
		d1.Handle(ckptBatch(1, 1, i))
	}
	// The crash reveals the lie: two "durable" batches never hit the disk.
	arch.batches = arch.batches[:8]

	d2, _, _ := newDurable(t, arch, path, 5)
	rep, err := d2.Resume(arch.iter)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shortfall != 2 || rep.Replayed != 0 {
		t.Fatalf("report %+v, want shortfall 2 and no replay", rep)
	}
}

func TestLoadCheckpointMissingIsNotAnError(t *testing.T) {
	st, ok, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || ok {
		t.Fatalf("LoadCheckpoint(missing) = %+v, %v, %v", st, ok, err)
	}
}

func TestEpochGateStateRoundTrip(t *testing.T) {
	g := NewEpochGate(func(*wire.Batch) {}, nil)
	g.Handle(ckptBatch(3, 2, 0))
	g.Handle(ckptBatch(1, 1, 5))
	state := g.State()
	g2 := NewEpochGate(func(*wire.Batch) {}, nil)
	g2.RestoreState(state)
	if !reflect.DeepEqual(g2.State(), state) {
		t.Fatalf("gate state did not round-trip: %+v vs %+v", g2.State(), state)
	}
	// The restored horizon still rejects a stale replay.
	if v := g2.admit(ckptBatch(1, 1, 2)); v != "drop-reorder" {
		t.Fatalf("restored gate admitted a regressed batch: %v", v)
	}
}
