package collector

import (
	"sync"

	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// EpochGate is BatchHandler middleware that enforces agent restart-epoch
// ordering per rack before batches reach the real handler.
//
// A crashed-and-restarted agent resumes with a higher wire.Batch.Epoch.
// Without a gate, batches from the superseded incarnation — retried by a
// dying flusher or delivered late over a stale TCP flow — interleave with
// the new stream and corrupt the cumulative-counter deltas downstream.
// The gate applies two rules per rack:
//
//   - A batch whose epoch is below the rack's current epoch is stale and
//     dropped.
//   - Within an epoch, sample time must not regress: a batch whose first
//     sample predates the newest sample already accepted is a duplicate
//     or reordering and is dropped.
//
// Epoch increases are accepted unconditionally and reset the rack's time
// horizon, because a restarted agent legitimately restarts its clock.
//
// The gate is opt-in (ServerConfig.EpochGate): replay-style workloads
// restart virtual time per window within one epoch, which the
// time-regression rule would reject.
type EpochGate struct {
	next   BatchHandler
	m      ServerMetrics
	tracer *ptrace.Tracer

	mu    sync.Mutex
	racks map[uint32]*rackEpoch
}

type rackEpoch struct {
	epoch    uint32
	lastTime simclock.Time
	seen     bool
}

// NewEpochGate wraps next; m may be nil.
func NewEpochGate(next BatchHandler, m *ServerMetrics) *EpochGate {
	if next == nil {
		panic("collector: nil handler")
	}
	g := &EpochGate{next: next, racks: make(map[uint32]*rackEpoch)}
	if m != nil {
		g.m = *m
	}
	return g
}

// SetTracer attaches pipeline tracing: every batch records an epoch.gate
// span carrying the admission verdict. t may be nil. Call before Handle
// sees traffic.
func (g *EpochGate) SetTracer(t *ptrace.Tracer) { g.tracer = t }

// Handle implements BatchHandler. It is safe for concurrent use.
func (g *EpochGate) Handle(b *wire.Batch) {
	verdict := g.admit(b)
	recordGateSpan(g.tracer, b, verdict)
	if verdict != ptrace.VerdictAccept {
		return
	}
	g.next(b)
}

// admit applies the epoch and ordering rules, updating per-rack state,
// and returns the ptrace verdict token.
func (g *EpochGate) admit(b *wire.Batch) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.racks[b.Rack]
	if st == nil {
		st = &rackEpoch{}
		g.racks[b.Rack] = st
	}
	switch {
	case !st.seen || b.Epoch > st.epoch:
		if st.seen && b.Epoch > st.epoch {
			g.m.EpochRestarts.Inc()
		}
		st.epoch = b.Epoch
		st.seen = true
		st.lastTime = 0
	case b.Epoch < st.epoch:
		g.m.StaleBatches.Inc()
		return ptrace.VerdictDropStale
	}
	if len(b.Samples) == 0 {
		return ptrace.VerdictAccept
	}
	if b.Samples[0].Time < st.lastTime {
		g.m.ReorderedBatches.Inc()
		return ptrace.VerdictDropReorder
	}
	if last := b.Samples[len(b.Samples)-1].Time; last > st.lastTime {
		st.lastTime = last
	}
	return ptrace.VerdictAccept
}
