package collector

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func testSwitch() *asic.Switch {
	return asic.New(asic.Config{
		PortSpeeds:  []uint64{10e9, 10e9, 40e9},
		BufferBytes: 1 << 20,
		Alpha:       1,
	})
}

func byteSpec(port int) CounterSpec {
	return CounterSpec{Port: port, Dir: asic.TX, Kind: asic.KindBytes}
}

func newBytePoller(t *testing.T, interval simclock.Duration, emit Emitter) (*Poller, *eventq.Scheduler) {
	t.Helper()
	sw := testSwitch()
	p, err := NewPoller(PollerConfig{
		Interval:      interval,
		Counters:      []CounterSpec{byteSpec(0)},
		DedicatedCore: true,
	}, sw, rng.New(1), emit)
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	return p, sched
}

func TestPollerValidation(t *testing.T) {
	sw := testSwitch()
	cases := []PollerConfig{
		{Interval: 0, Counters: []CounterSpec{byteSpec(0)}},
		{Interval: simclock.Micros(25)},
		{Interval: simclock.Micros(25), Counters: []CounterSpec{{Port: 99, Kind: asic.KindBytes}}},
		{Interval: simclock.Micros(25), Counters: []CounterSpec{{Port: 0, Kind: asic.CounterKind(9)}}},
	}
	for i, cfg := range cases {
		if _, err := NewPoller(cfg, sw, rng.New(1), EmitterFunc(func(wire.Sample) {})); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	good := PollerConfig{Interval: simclock.Micros(25), Counters: []CounterSpec{byteSpec(0)}}
	if _, err := NewPoller(good, sw, nil, EmitterFunc(func(wire.Sample) {})); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewPoller(good, sw, rng.New(1), nil); err == nil {
		t.Error("nil emitter accepted")
	}
}

func TestPollerEmitsAtInterval(t *testing.T) {
	var got []wire.Sample
	p, sched := newBytePoller(t, simclock.Micros(25), EmitterFunc(func(s wire.Sample) { got = append(got, s) }))
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(10)))
	// 10ms / 25µs = 400 scheduled intervals; with ~1% loss we expect most.
	if len(got) < 380 || len(got) > 400 {
		t.Fatalf("samples = %d, want ~396", len(got))
	}
	// Timestamps strictly increase and sit close to interval multiples.
	for i := 1; i < len(got); i++ {
		if got[i].Time <= got[i-1].Time {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
	if p.Samples() != uint64(len(got)) {
		t.Errorf("Samples() = %d, emitted %d", p.Samples(), len(got))
	}
}

func TestTable1MissRates(t *testing.T) {
	// The Table 1 reproduction: a single byte counter at 1/10/25 µs.
	rates := map[simclock.Duration][2]float64{
		simclock.Micros(1):  {0.80, 1.00},  // paper: 100%
		simclock.Micros(10): {0.05, 0.18},  // paper: ~10%
		simclock.Micros(25): {0.002, 0.03}, // paper: ~1%
	}
	for interval, band := range rates {
		p, sched := newBytePoller(t, interval, EmitterFunc(func(wire.Sample) {}))
		sched.RunUntil(simclock.Epoch.Add(simclock.Seconds(1)))
		got := p.MissRate()
		if got < band[0] || got > band[1] {
			t.Errorf("interval %v: miss rate %.4f outside [%v, %v]", interval, got, band[0], band[1])
		}
	}
}

func TestMissedIntervalsCarryTimestampAndValue(t *testing.T) {
	// Even after misses, the next sample must have a correct (late)
	// timestamp and the cumulative value — the property that keeps
	// throughput computable.
	sw := testSwitch()
	var got []wire.Sample
	p, err := NewPoller(PollerConfig{
		Interval:      simclock.Micros(1), // guaranteed misses
		Counters:      []CounterSpec{byteSpec(0)},
		DedicatedCore: true,
	}, sw, rng.New(3), EmitterFunc(func(s wire.Sample) { got = append(got, s) }))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(1)))
	if p.Missed() == 0 {
		t.Fatal("expected misses at 1µs interval")
	}
	sawMiss := false
	for _, s := range got {
		if s.Missed > 0 {
			sawMiss = true
		}
	}
	if !sawMiss {
		t.Error("no sample carried a missed-interval count")
	}
}

func TestBufferPeakSlowerThanBytes(t *testing.T) {
	sw := testSwitch()
	mk := func(kind asic.CounterKind) *Poller {
		p, err := NewPoller(PollerConfig{
			Interval:      simclock.Micros(50),
			Counters:      []CounterSpec{{Port: 0, Kind: kind}},
			DedicatedCore: true,
		}, sw, rng.New(5), EmitterFunc(func(wire.Sample) {}))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if mk(asic.KindBufferPeak).BaseCost() <= mk(asic.KindBytes).BaseCost() {
		t.Error("buffer peak poll should cost more than byte poll (§4.1)")
	}
}

func TestSublinearMultiCounterCost(t *testing.T) {
	sw := testSwitch()
	specs := func(n int) []CounterSpec {
		var out []CounterSpec
		for i := 0; i < n; i++ {
			out = append(out, byteSpec(i%3))
		}
		return out
	}
	cost := func(n int) simclock.Duration {
		p, err := NewPoller(PollerConfig{Interval: simclock.Millis(1), Counters: specs(n), DedicatedCore: true},
			sw, rng.New(7), EmitterFunc(func(wire.Sample) {}))
		if err != nil {
			t.Fatal(err)
		}
		return p.BaseCost()
	}
	c1, c2, c4 := cost(1), cost(2), cost(4)
	if !(c2 < 2*c1) {
		t.Errorf("2 counters cost %v, not sublinear vs %v", c2, c1)
	}
	if !(c4 < 4*c1) {
		t.Errorf("4 counters cost %v, not sublinear vs %v", c4, c1)
	}
	if !(c4 > c2 && c2 > c1) {
		t.Errorf("cost not increasing: %v %v %v", c1, c2, c4)
	}
}

func TestSharedCoreMissesMore(t *testing.T) {
	run := func(dedicated bool) float64 {
		sw := testSwitch()
		p, err := NewPoller(PollerConfig{
			Interval:      simclock.Micros(25),
			Counters:      []CounterSpec{byteSpec(0)},
			DedicatedCore: dedicated,
		}, sw, rng.New(11), EmitterFunc(func(wire.Sample) {}))
		if err != nil {
			t.Fatal(err)
		}
		sched := eventq.NewScheduler()
		p.Install(sched)
		sched.RunUntil(simclock.Epoch.Add(simclock.Seconds(1)))
		return p.MissRate()
	}
	if shared, ded := run(false), run(true); shared <= ded {
		t.Errorf("shared-core miss rate %.4f should exceed dedicated %.4f", shared, ded)
	}
}

func TestCPUBusyFraction(t *testing.T) {
	// At a 25µs interval with ~7µs polls, the loop should be busy ~28% of
	// the time — in the ballpark the paper quotes (≤20% after backing
	// off; here we run flat out at the minimum interval).
	p, sched := newBytePoller(t, simclock.Micros(25), EmitterFunc(func(wire.Sample) {}))
	sched.RunUntil(simclock.Epoch.Add(simclock.Seconds(1)))
	busy := p.CPUBusyFrac()
	if busy < 0.2 || busy > 0.45 {
		t.Errorf("busy fraction = %.3f, want ~0.3", busy)
	}
	// Halving the rate halves the utilization (trade precision for CPU).
	p2, sched2 := newBytePoller(t, simclock.Micros(100), EmitterFunc(func(wire.Sample) {}))
	sched2.RunUntil(simclock.Epoch.Add(simclock.Seconds(1)))
	if b2 := p2.CPUBusyFrac(); b2 >= busy/2 {
		t.Errorf("100µs busy %.3f should be well under 25µs busy %.3f", b2, busy)
	}
}

func TestPollerReadsAllCounterKinds(t *testing.T) {
	sw := testSwitch()
	full := asic.TrafficProfile{0, 0, 0, 0, 0, 1}
	sw.OfferRx(1, 3000, full)
	sw.OfferTx(1, 3000, full)
	sw.Tick(simclock.Micros(5))
	kinds := map[asic.CounterKind]bool{}
	var got []wire.Sample
	p, err := NewPoller(PollerConfig{
		Interval: simclock.Micros(200),
		Counters: []CounterSpec{
			{Port: 1, Dir: asic.TX, Kind: asic.KindBytes},
			{Port: 1, Dir: asic.RX, Kind: asic.KindPackets},
			{Port: 1, Dir: asic.RX, Kind: asic.KindSizeBins},
			{Port: 1, Kind: asic.KindDrops},
			{Kind: asic.KindBufferPeak},
		},
		DedicatedCore: true,
	}, sw, rng.New(13), EmitterFunc(func(s wire.Sample) { got = append(got, s); kinds[s.Kind] = true }))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(1)))
	if len(kinds) != 5 {
		t.Fatalf("saw %d kinds, want 5", len(kinds))
	}
	for _, s := range got {
		switch s.Kind {
		case asic.KindBytes:
			if s.Value != 3000 {
				t.Errorf("bytes = %d", s.Value)
			}
		case asic.KindPackets:
			if s.Value != 2 {
				t.Errorf("packets = %d", s.Value)
			}
		case asic.KindSizeBins:
			if s.Bins[5] != 2 {
				t.Errorf("bins = %v", s.Bins)
			}
		}
	}
}

func TestPeakBufferClearedBetweenPolls(t *testing.T) {
	sw := testSwitch()
	full := asic.TrafficProfile{0, 0, 0, 0, 0, 1}
	var peaks []uint64
	p, err := NewPoller(PollerConfig{
		Interval:      simclock.Micros(100),
		Counters:      []CounterSpec{{Kind: asic.KindBufferPeak}},
		DedicatedCore: true,
	}, sw, rng.New(17), EmitterFunc(func(s wire.Sample) { peaks = append(peaks, s.Value) }))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	// Build a burst before the first poll, then leave the switch idle.
	sw.OfferTx(0, 100_000, full)
	sw.Tick(simclock.Micros(5))
	for i := 0; i < 40; i++ {
		sw.Tick(simclock.Micros(5)) // drain
	}
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(1)))
	if len(peaks) < 5 {
		t.Fatalf("too few polls: %d", len(peaks))
	}
	if peaks[0] == 0 {
		t.Error("first poll missed the pre-poll burst (clear-on-read should preserve it)")
	}
	for i, pk := range peaks[1:] {
		if pk != 0 {
			t.Errorf("poll %d peak = %d on an idle switch", i+1, pk)
		}
	}
}

func TestStopHaltsLoop(t *testing.T) {
	count := 0
	p, sched := newBytePoller(t, simclock.Micros(25), EmitterFunc(func(wire.Sample) { count++ }))
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(1)))
	p.Stop()
	at := count
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(2)))
	if count > at {
		t.Errorf("poller emitted %d samples after Stop", count-at)
	}
}

func TestDeterministicSampling(t *testing.T) {
	run := func() []wire.Sample {
		var got []wire.Sample
		_, sched := newBytePoller(t, simclock.Micros(25), EmitterFunc(func(s wire.Sample) { got = append(got, s) }))
		sched.RunUntil(simclock.Epoch.Add(simclock.Millis(5)))
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestMissRateMonotoneInInterval(t *testing.T) {
	// Coarser intervals must never miss more than finer ones.
	var prev float64 = math.Inf(1)
	for _, us := range []int64{1, 5, 10, 25, 50, 100} {
		p, sched := newBytePoller(t, simclock.Micros(us), EmitterFunc(func(wire.Sample) {}))
		sched.RunUntil(simclock.Epoch.Add(simclock.Seconds(1)))
		rate := p.MissRate()
		if rate > prev+0.02 {
			t.Errorf("miss rate at %dµs (%.4f) exceeds finer interval (%.4f)", us, rate, prev)
		}
		prev = rate
	}
}

func TestInstallTwicePanics(t *testing.T) {
	p, _ := newBytePoller(t, simclock.Micros(25), EmitterFunc(func(wire.Sample) {}))
	defer func() {
		if recover() == nil {
			t.Error("double install did not panic")
		}
	}()
	p.Install(eventq.NewScheduler())
}
