package collector

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"mburst/internal/obs"
	"mburst/internal/wire"
)

// scriptConn is an in-memory transport whose writes either land whole in
// a buffer or fail whole — the atomicity wire.Writer.WriteBatch provides
// (one Write per batch), so every buffer decodes cleanly.
type scriptConn struct {
	mu sync.Mutex
	// failAfter is the number of Write calls accepted before the
	// connection dies; -1 never fails.
	failAfter int
	buf       bytes.Buffer
}

func (s *scriptConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failAfter == 0 {
		return 0, errors.New("connection reset by peer")
	}
	if s.failAfter > 0 {
		s.failAfter--
	}
	return s.buf.Write(p)
}

func (s *scriptConn) Close() error { return nil }

// decodeConn decodes every batch the connection accepted, in write order.
func decodeConn(t *testing.T, s *scriptConn) []wire.Batch {
	t.Helper()
	s.mu.Lock()
	data := append([]byte(nil), s.buf.Bytes()...)
	s.mu.Unlock()
	r := wire.NewReader(bytes.NewReader(data))
	var out []wire.Batch
	for {
		b, err := r.ReadBatch()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decoding scripted conn: %v", err)
		}
		out = append(out, wire.Batch{Rack: b.Rack, Epoch: b.Epoch,
			Samples: append([]wire.Sample(nil), b.Samples...)})
	}
}

// scriptDialer hands out scripted connections in sequence once released;
// until then (and after the script is exhausted) dials fail.
type scriptDialer struct {
	mu       sync.Mutex
	released bool
	conns    []*scriptConn
	next     int
}

func (d *scriptDialer) release() {
	d.mu.Lock()
	d.released = true
	d.mu.Unlock()
}

func (d *scriptDialer) dial() (io.WriteCloser, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.released || d.next >= len(d.conns) {
		return nil, errors.New("connection refused")
	}
	c := d.conns[d.next]
	d.next++
	return c, nil
}

// TestReconnectingClientSpoolBoundedDrops: with the collector down, full
// batches are sealed into the spool, the spool caps at SpoolLimit with
// the oldest batches shed, and every shed sample is accounted — in
// DroppedSamples and the SpoolDrops counter.
func TestReconnectingClientSpoolBoundedDrops(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewClientMetrics(reg)
	cfg := ReconnectingClientConfig{
		Rack:        1,
		MaxBatch:    10,
		BufferLimit: 40,
		// Smaller than one sealing round (BufferLimit), so a single seal
		// of a full buffer is guaranteed to overflow the spool.
		SpoolLimit:   15,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   time.Millisecond,
		Sleep:        func(time.Duration) {},
		Metrics:      m,
	}
	c := NewReconnectingClient(func() (io.WriteCloser, error) {
		return nil, errors.New("connection refused")
	}, cfg)
	const n = 200
	for i := 0; i < n; i++ {
		c.Emit(mkSample(i))
	}
	waitFor(t, "spool shedding", func() bool { return m.SpoolDrops.Value() > 0 })
	if got := c.SpooledSamples(); got > uint64(cfg.SpoolLimit) {
		t.Errorf("spool holds %d samples, limit %d", got, cfg.SpoolLimit)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Unreachable collector throughout: everything emitted must be
	// accounted as dropped, nothing delivered, nothing lost track of.
	if c.DeliveredSamples() != 0 {
		t.Errorf("delivered = %d with no collector", c.DeliveredSamples())
	}
	if c.DroppedSamples() != n {
		t.Errorf("dropped = %d, want %d", c.DroppedSamples(), n)
	}
	if c.SpooledSamples() != 0 {
		t.Errorf("spool not drained by close: %d", c.SpooledSamples())
	}
	if spoolDrops := m.SpoolDrops.Value(); spoolDrops > uint64(n) {
		t.Errorf("spool drop counter %v exceeds emitted %d", spoolDrops, n)
	}
}

// TestReconnectingClientSpoolReplayOrderAcrossRedial: batches sealed
// during an outage replay in emit order, and a connection dying
// mid-replay puts the failed batch back at the front — the stream the
// collector decodes across both connections is the emit sequence, each
// sample exactly once.
func TestReconnectingClientSpoolReplayOrderAcrossRedial(t *testing.T) {
	dialer := &scriptDialer{conns: []*scriptConn{
		{failAfter: 2},  // dies mid-replay, after two spooled batches
		{failAfter: -1}, // healthy replacement
	}}
	cfg := ReconnectingClientConfig{
		Rack:         7,
		MaxBatch:     10,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   time.Millisecond,
		Sleep:        func(time.Duration) {},
	}
	c := NewReconnectingClient(dialer.dial, cfg)
	// Outage: five full batches seal into the spool.
	const outage = 50
	for i := 0; i < outage; i++ {
		c.Emit(mkSample(i))
	}
	waitFor(t, "outage sealing", func() bool { return c.SpooledSamples() == outage })
	dialer.release()
	waitFor(t, "replay past the dead conn", func() bool { return c.DeliveredSamples() >= 30 })
	// Fresh traffic after recovery must queue behind the replay.
	const total = 80
	for i := outage; i < total; i++ {
		c.Emit(mkSample(i))
	}
	waitFor(t, "full delivery", func() bool { return c.DeliveredSamples() == total })
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var got []wire.Sample
	for ci, sc := range dialer.conns {
		for _, b := range decodeConn(t, sc) {
			if b.Rack != 7 {
				t.Fatalf("conn %d: batch rack = %d, want 7", ci, b.Rack)
			}
			got = append(got, b.Samples...)
		}
	}
	if len(got) != total {
		t.Fatalf("collector decoded %d samples, want %d", len(got), total)
	}
	for i, s := range got {
		if s != mkSample(i) {
			t.Fatalf("sample %d out of order or duplicated: %+v", i, s)
		}
	}
	if c.DroppedSamples() != 0 {
		t.Errorf("dropped = %d during a lossless redial", c.DroppedSamples())
	}
	if c.Redials() != 2 {
		t.Errorf("redials = %d, want 2", c.Redials())
	}
}

// TestReconnectingClientEpochBumpSealsSpool: SetEpoch seals buffered
// samples under the old generation before the bump, so after delivery
// every pre-bump sample carries the old epoch, every post-bump sample
// the new one, and no old-epoch batch follows a new-epoch batch.
func TestReconnectingClientEpochBumpSealsSpool(t *testing.T) {
	dialer := &scriptDialer{conns: []*scriptConn{{failAfter: -1}}}
	cfg := ReconnectingClientConfig{
		Rack:         3,
		Epoch:        1,
		MaxBatch:     10,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   time.Millisecond,
		Sleep:        func(time.Duration) {},
	}
	c := NewReconnectingClient(dialer.dial, cfg)
	// Outage traffic under epoch 1, ending on a partial batch.
	const preBump = 25
	for i := 0; i < preBump; i++ {
		c.Emit(mkSample(i))
	}
	// The bump seals the 5-sample remainder under epoch 1 — a sample is
	// delivered with the generation it was sampled in.
	c.SetEpoch(2)
	waitFor(t, "bump sealing", func() bool { return c.SpooledSamples() == preBump })
	const total = 40
	for i := preBump; i < total; i++ {
		c.Emit(mkSample(i))
	}
	dialer.release()
	waitFor(t, "delivery", func() bool { return c.DeliveredSamples() == total })
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var seen int
	sawNew := false
	for _, b := range decodeConn(t, dialer.conns[0]) {
		wantEpoch := uint32(1)
		if seen >= preBump {
			wantEpoch = 2
		}
		if b.Epoch != wantEpoch {
			t.Fatalf("batch at sample %d has epoch %d, want %d", seen, b.Epoch, wantEpoch)
		}
		if b.Epoch == 1 && sawNew {
			t.Fatalf("old-epoch batch delivered after a new-epoch batch (sample %d)", seen)
		}
		sawNew = sawNew || b.Epoch == 2
		for _, s := range b.Samples {
			if s != mkSample(seen) {
				t.Fatalf("sample %d out of order: %+v", seen, s)
			}
			seen++
		}
	}
	if seen != total {
		t.Fatalf("decoded %d samples, want %d", seen, total)
	}
}

// TestReconnectingClientCloseDeadlineDrainsSpool: an expired Close
// deadline accounts spooled batches as dropped alongside pending ones —
// the spool cannot hold shutdown hostage to an unreachable collector.
func TestReconnectingClientCloseDeadlineDrainsSpool(t *testing.T) {
	cfg := ReconnectingClientConfig{
		Rack:         1,
		MaxBatch:     10,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   time.Millisecond,
		CloseTimeout: 20 * time.Millisecond,
	}
	parked := make(chan struct{})
	defer close(parked)
	backingOff := make(chan struct{})
	var once sync.Once
	cfg.Sleep = func(d time.Duration) {
		if d == cfg.CloseTimeout {
			return
		}
		once.Do(func() { close(backingOff) })
		<-parked
	}
	c := NewReconnectingClient(func() (io.WriteCloser, error) {
		return nil, errors.New("connection refused")
	}, cfg)
	const n = 50
	for i := 0; i < n; i++ {
		c.Emit(mkSample(i))
	}
	// The first dial failure seals full batches into the spool, then the
	// flusher parks in backoff — the deadline path must reap both spool
	// and pending.
	<-backingOff
	if c.SpooledSamples() == 0 {
		t.Fatal("no batches sealed into the spool before close")
	}
	if err := c.Close(); err == nil {
		t.Fatal("close returned nil with an unreachable collector and spooled batches")
	}
	if got := c.DeliveredSamples() + c.DroppedSamples(); got != n {
		t.Fatalf("accounting after deadline: delivered+dropped = %d, want %d", got, n)
	}
	if c.SpooledSamples() != 0 {
		t.Errorf("spool holds %d samples after the deadline", c.SpooledSamples())
	}
}
