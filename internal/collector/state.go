package collector

import (
	"sort"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/stats"
)

// This file gives the collector's stateful middleware an explicit,
// JSON-serializable state surface — the raw material the checkpointer
// (checkpoint.go) persists. The shapes mirror internal/stats and
// internal/analysis snapshots: raw state only, deterministic ordering
// (maps flatten to sorted slices), and restore rebuilds an instance that
// continues bit-identically to one that never stopped.

// RackEpochState is one rack's epoch-gate admission state.
type RackEpochState struct {
	Rack     uint32        `json:"rack"`
	Epoch    uint32        `json:"epoch"`
	LastTime simclock.Time `json:"last_time"`
	Seen     bool          `json:"seen"`
}

// State captures the gate's per-rack admission state, sorted by rack.
func (g *EpochGate) State() []RackEpochState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]RackEpochState, 0, len(g.racks))
	for rack, st := range g.racks {
		out = append(out, RackEpochState{Rack: rack, Epoch: st.epoch, LastTime: st.lastTime, Seen: st.seen})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rack < out[j].Rack })
	return out
}

// RestoreState replaces the gate's per-rack state with a snapshot. A
// restored gate applies the same stale-epoch and time-regression rules
// it would have applied had it never stopped — the property that lets a
// resumed collector drop retransmitted duplicates.
func (g *EpochGate) RestoreState(state []RackEpochState) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.racks = make(map[uint32]*rackEpoch, len(state))
	for _, st := range state {
		g.racks[st.Rack] = &rackEpoch{epoch: st.Epoch, lastTime: st.LastTime, seen: st.Seen}
	}
}

// SeriesState is one live-figures series' full accumulator state.
type SeriesState struct {
	Rack uint32           `json:"rack"`
	Port uint16           `json:"port"`
	Dir  asic.Direction   `json:"dir"`
	Kind asic.CounterKind `json:"kind"`

	Util      analysis.UtilSnap      `json:"util"`
	Seg       analysis.SegmenterSnap `json:"seg"`
	Markov    stats.MarkovAccSnap    `json:"markov"`
	Durations stats.ECDFAccSnap      `json:"durations"`
	Gaps      stats.ECDFAccSnap      `json:"gaps"`
	Moments   stats.MomentAccSnap    `json:"moments"`
	UtilHist  []uint64               `json:"util_hist"`
	Points    int                    `json:"points"`
	Hot       int                    `json:"hot"`
}

// FiguresState is the live-figures tap's full state: everything Handle
// has accumulated, nothing derived. (Snapshot() is the *rendered* view —
// quantiles and probabilities — and cannot be restored; this is the raw
// one that can.)
type FiguresState struct {
	Samples uint64        `json:"samples"`
	Series  []SeriesState `json:"series,omitempty"`
}

// State captures the tap's accumulator state, series sorted by rack,
// port, dir, kind for deterministic output.
func (f *LiveFigures) State() FiguresState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FiguresState{Samples: f.samples}
	keys := make([]liveKey, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Rack != b.Rack {
			return a.Rack < b.Rack
		}
		if a.Key.Port != b.Key.Port {
			return a.Key.Port < b.Key.Port
		}
		if a.Key.Dir != b.Key.Dir {
			return a.Key.Dir < b.Key.Dir
		}
		return a.Key.Kind < b.Key.Kind
	})
	for _, k := range keys {
		s := f.series[k]
		st.Series = append(st.Series, SeriesState{
			Rack: k.Rack, Port: k.Key.Port, Dir: k.Key.Dir, Kind: k.Key.Kind,
			Util:      s.util.Snapshot(),
			Seg:       s.seg.Snapshot(),
			Markov:    s.mk.Snapshot(),
			Durations: s.durations.Snapshot(),
			Gaps:      s.gaps.Snapshot(),
			Moments:   s.moments.Snapshot(),
			UtilHist:  append([]uint64(nil), s.utilHist...),
			Points:    s.points,
			Hot:       s.hot,
		})
	}
	return st
}

// RestoreState replaces the tap's accumulator state with a snapshot. The
// per-series snapshots carry their own configuration (line rate inside
// the UtilSnap, thresholds inside the SegmenterSnap), so restore never
// consults the config callbacks — a restored tap continues exactly where
// the snapshot left off even if SpeedOf would now answer differently.
func (f *LiveFigures) RestoreState(st FiguresState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.samples = st.Samples
	f.series = make(map[liveKey]*liveSeries, len(st.Series))
	for _, s := range st.Series {
		ls := &liveSeries{
			util:     analysis.RestoreUtilState(s.Util),
			seg:      analysis.RestoreBurstSegmenter(s.Seg),
			utilHist: append([]uint64(nil), s.UtilHist...),
			points:   s.Points,
			hot:      s.Hot,
		}
		ls.mk.Restore(s.Markov)
		ls.durations.Restore(s.Durations)
		ls.gaps.Restore(s.Gaps)
		ls.moments.Restore(s.Moments)
		k := liveKey{Rack: s.Rack, Key: analysis.SeriesKey{Port: s.Port, Dir: s.Dir, Kind: s.Kind}}
		f.series[k] = ls
	}
}

// Restore replaces the ingest counters with a snapshot. Call before
// Attach so the registry mirror carries the restored totals forward.
func (s *IngestStats) Restore(snap Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = snap.Batches
	s.samples = snap.Samples
	s.lastSample = simclock.Time(snap.LastSampleNanos)
	s.perRack = make(map[uint32]uint64, len(snap.PerRack))
	for _, rc := range snap.PerRack {
		s.perRack[rc.Rack] = rc.Samples
	}
}
