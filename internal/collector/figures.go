package collector

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"sync"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/wire"
)

// LiveFigures is the collector-side streaming analysis tap: a
// BatchHandler middleware that feeds every ingested byte-counter sample
// through the same accumulators the offline figure pipeline uses
// (analysis.UtilState, analysis.BurstSegmenter, stats.MarkovAcc) and
// serves the running figures as JSON. Mounted on the mbcollectd debug
// mux it answers "what do the Fig 3/4/6/9 curves look like right now"
// while a campaign is still running, without a trace on disk.
//
// State is O(active series): per series it keeps the fixed-size
// utilization machinery plus the closed burst durations and gaps, which
// are sparse relative to the sample stream.
type LiveFigures struct {
	cfg LiveFiguresConfig

	mu      sync.Mutex
	samples uint64
	series  map[liveKey]*liveSeries
}

// LiveFiguresConfig parameterizes the tap.
type LiveFiguresConfig struct {
	// SpeedOf returns the line rate of a port; required (utilization is
	// bytes over speed·span).
	SpeedOf func(rack uint32, port uint16) uint64
	// IsUplink classifies a port for the hot-share split; nil counts
	// every port as a downlink.
	IsUplink func(rack uint32, port uint16) bool
	// Threshold is the hot criterion; <= 0 selects
	// analysis.DefaultHotThreshold.
	Threshold float64
	// UtilBins is the utilization histogram resolution; <= 0 selects 20.
	UtilBins int
	// Tracer, when non-nil, records a figures.apply span per batch.
	Tracer *ptrace.Tracer
}

// liveKey identifies one series across racks.
type liveKey struct {
	Rack uint32
	Key  analysis.SeriesKey
}

// liveSeries is the per-series accumulator set.
type liveSeries struct {
	util      *analysis.UtilState
	seg       *analysis.BurstSegmenter
	mk        stats.MarkovAcc
	durations stats.ECDFAcc // µs, closed bursts only
	gaps      stats.ECDFAcc // µs
	moments   stats.MomentAcc
	utilHist  []uint64
	points    int
	hot       int
}

// NewLiveFigures validates the config and returns a tap.
func NewLiveFigures(cfg LiveFiguresConfig) (*LiveFigures, error) {
	if cfg.SpeedOf == nil {
		return nil, errors.New("collector: LiveFigures needs a SpeedOf function")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = analysis.DefaultHotThreshold
	}
	if cfg.UtilBins <= 0 {
		cfg.UtilBins = 20
	}
	return &LiveFigures{cfg: cfg, series: make(map[liveKey]*liveSeries)}, nil
}

// Wrap returns a BatchHandler that feeds b into the figures and then
// forwards to next (which may be nil).
func (f *LiveFigures) Wrap(next BatchHandler) BatchHandler {
	return func(b *wire.Batch) {
		f.Handle(b)
		if next != nil {
			next(b)
		}
	}
}

// Handle implements BatchHandler. It is safe for concurrent use.
func (f *LiveFigures) Handle(b *wire.Batch) {
	recordStageSpan(f.cfg.Tracer, ptrace.StageFiguresApply, b)
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range b.Samples {
		if s.Kind != asic.KindBytes {
			continue
		}
		f.samples++
		k := liveKey{Rack: b.Rack, Key: analysis.SeriesKey{Port: s.Port, Dir: s.Dir, Kind: s.Kind}}
		st := f.series[k]
		if st == nil {
			st = &liveSeries{
				util:     analysis.NewUtilState(f.cfg.SpeedOf(b.Rack, s.Port)),
				seg:      analysis.NewBurstSegmenter(analysis.SegmenterConfig{HotAbove: f.cfg.Threshold}),
				utilHist: make([]uint64, f.cfg.UtilBins),
			}
			f.series[k] = st
		}
		p, ok, err := st.util.Feed(s)
		if err != nil || !ok {
			// Damaged series latch; the live view keeps what it had.
			continue
		}
		st.points++
		hot := p.Util > f.cfg.Threshold
		if hot {
			st.hot++
		}
		st.mk.Observe(hot)
		st.moments.Add(p.Util)
		bi := int(p.Util * float64(len(st.utilHist)))
		if bi < 0 {
			bi = 0
		}
		if bi >= len(st.utilHist) {
			bi = len(st.utilHist) - 1
		}
		st.utilHist[bi]++
		if tr, fired := st.seg.Feed(p); fired {
			switch tr.Kind {
			case analysis.SegOpen:
				if tr.HasGap {
					st.gaps.Add(float64(tr.Gap) / float64(simclock.Microsecond))
				}
			case analysis.SegClose:
				st.durations.Add(float64(tr.Burst.Duration()) / float64(simclock.Microsecond))
			}
		}
	}
}

// SeriesFigures is one series' running statistics in the snapshot.
type SeriesFigures struct {
	Rack uint32 `json:"rack"`
	Port uint16 `json:"port"`
	Dir  string `json:"dir"`
	// Points is the number of utilization spans computed so far.
	Points int `json:"points"`
	// HotPoints counts spans above the threshold.
	HotPoints int     `json:"hot_points"`
	MeanUtil  float64 `json:"mean_util"`
	MaxUtil   float64 `json:"max_util"`
	// UtilHist is the utilization histogram over [0,1] (last bin catches
	// >= 1).
	UtilHist []uint64 `json:"util_hist"`
	// Bursts counts closed bursts; ActiveBurst reports one still open.
	Bursts      int  `json:"bursts"`
	ActiveBurst bool `json:"active_burst"`
	// Burst duration and inter-burst gap quantiles, in µs; zero when no
	// observations yet.
	BurstP50Micros float64 `json:"burst_p50_micros"`
	BurstP99Micros float64 `json:"burst_p99_micros"`
	GapP50Micros   float64 `json:"gap_p50_micros"`
	GapP99Micros   float64 `json:"gap_p99_micros"`
}

// MarkovFigures is the merged two-state chain in the snapshot.
type MarkovFigures struct {
	Transitions int64 `json:"transitions"`
	// P01/P11 are P(hot|idle) and P(hot|hot); zero until observed.
	P01 float64 `json:"p01"`
	P11 float64 `json:"p11"`
}

// FiguresSnapshot is the JSON shape served by the handler.
type FiguresSnapshot struct {
	Threshold float64 `json:"threshold"`
	// Samples is the number of byte-counter samples consumed.
	Samples uint64          `json:"samples"`
	Series  []SeriesFigures `json:"series"`
	Markov  MarkovFigures   `json:"markov"`
	// UplinkHot/DownlinkHot split hot spans by port class (Fig 9).
	UplinkHot   int `json:"uplink_hot"`
	DownlinkHot int `json:"downlink_hot"`
}

// Snapshot returns the current running figures, series sorted by rack
// then port/dir for stable output.
func (f *LiveFigures) Snapshot() FiguresSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := FiguresSnapshot{Threshold: f.cfg.Threshold, Samples: f.samples}
	keys := make([]liveKey, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Rack != b.Rack {
			return a.Rack < b.Rack
		}
		if a.Key.Port != b.Key.Port {
			return a.Key.Port < b.Key.Port
		}
		return a.Key.Dir < b.Key.Dir
	})
	models := make([]stats.MarkovModel, 0, len(keys))
	for _, k := range keys {
		st := f.series[k]
		sf := SeriesFigures{
			Rack:        k.Rack,
			Port:        k.Key.Port,
			Dir:         k.Key.Dir.String(),
			Points:      st.points,
			HotPoints:   st.hot,
			UtilHist:    append([]uint64(nil), st.utilHist...),
			Bursts:      st.durations.N(),
			ActiveBurst: st.seg.Active(),
		}
		if st.moments.N() > 0 {
			sf.MeanUtil = st.moments.Mean()
			sf.MaxUtil = st.moments.Max()
		}
		if d := st.durations.ECDF(); d.N() > 0 {
			sf.BurstP50Micros = d.Quantile(0.5)
			sf.BurstP99Micros = d.Quantile(0.99)
		}
		if g := st.gaps.ECDF(); g.N() > 0 {
			sf.GapP50Micros = g.Quantile(0.5)
			sf.GapP99Micros = g.Quantile(0.99)
		}
		snap.Series = append(snap.Series, sf)
		models = append(models, st.mk.Model())
		if f.cfg.IsUplink != nil && f.cfg.IsUplink(k.Rack, k.Key.Port) {
			snap.UplinkHot += st.hot
		} else {
			snap.DownlinkHot += st.hot
		}
	}
	m := stats.MergeMarkov(models...)
	snap.Markov.Transitions = m.N
	if !math.IsNaN(m.P[0][1]) {
		snap.Markov.P01 = m.P[0][1]
	}
	if !math.IsNaN(m.P[1][1]) {
		snap.Markov.P11 = m.P[1][1]
	}
	return snap
}

// ServeHTTP implements http.Handler, answering GETs with the JSON
// snapshot — the mbcollectd /figures endpoint.
func (f *LiveFigures) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
