package collector

import (
	"sync"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// stubFault is a hand-rolled PollFault (the fault package's injector
// cannot be imported here without a cycle: fault depends on collector).
type stubFault struct {
	stuckFrom, stuckTo simclock.Duration
	delay              simclock.Duration
	delayFrom, delayTo simclock.Duration
}

func (f *stubFault) PollDelay(off, base simclock.Duration) simclock.Duration {
	if off >= f.delayFrom && off < f.delayTo {
		return f.delay
	}
	return 0
}

func (f *stubFault) ReadStuck(off simclock.Duration) bool {
	return off >= f.stuckFrom && off < f.stuckTo
}

// TestPollerCountersConcurrentRead exercises the Samples/Missed/MissRate
// getters from another goroutine while the sampling loop runs; `go test
// -race` fails here if the counters regress to plain fields.
func TestPollerCountersConcurrentRead(t *testing.T) {
	p, sched := newBytePoller(t, simclock.Micros(5), EmitterFunc(func(wire.Sample) {}))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sink uint64
		for {
			select {
			case <-stop:
				return
			default:
				sink += p.Samples() + p.Missed() + uint64(p.MissRate())
			}
		}
	}()
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(50)))
	close(stop)
	wg.Wait()
	if p.Samples() == 0 {
		t.Fatal("no polls completed")
	}
}

// TestPollerStuckReadFault checks the stale-latch semantics: while a
// stuck fault is active, samples replay the last value read before the
// fault without touching the ASIC, and the stream stays monotone.
func TestPollerStuckReadFault(t *testing.T) {
	sw := testSwitch()
	full := asic.TrafficProfile{0, 0, 0, 0, 0, 1}
	const (
		stuckFrom = 300 * simclock.Microsecond
		stuckTo   = 600 * simclock.Microsecond
	)
	var got []wire.Sample
	p, err := NewPoller(PollerConfig{
		Interval:      simclock.Micros(25),
		Counters:      []CounterSpec{byteSpec(0)},
		DedicatedCore: true,
		Fault:         &stubFault{stuckFrom: stuckFrom, stuckTo: stuckTo},
	}, sw, rng.New(11), EmitterFunc(func(s wire.Sample) { got = append(got, s) }))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	// Steady traffic so the counter climbs throughout the window.
	var drive func(now simclock.Time)
	drive = func(now simclock.Time) {
		sw.OfferTx(0, 1500, full)
		sw.Tick(simclock.Micros(10))
		if now < simclock.Epoch.Add(simclock.Millis(1)) {
			sched.At(now.Add(simclock.Micros(10)), drive)
		}
	}
	sched.At(simclock.Epoch, drive)
	sched.RunUntil(simclock.Epoch.Add(simclock.Millis(1)))

	var lastBefore, frozen uint64
	var sawStuck, sawAfter bool
	for i, s := range got {
		off := simclock.Duration(s.Time)
		switch {
		case off < stuckFrom:
			lastBefore = s.Value
		case off < stuckTo:
			if !sawStuck {
				frozen = s.Value
				if frozen != lastBefore {
					t.Fatalf("stuck value %d differs from last real read %d", frozen, lastBefore)
				}
				sawStuck = true
			} else if s.Value != frozen {
				t.Fatalf("stuck window value moved: %d -> %d", frozen, s.Value)
			}
		default:
			sawAfter = true
			if s.Value < frozen {
				t.Fatalf("post-fault value %d regressed below frozen %d", s.Value, frozen)
			}
		}
		if i > 0 && s.Value < got[i-1].Value {
			t.Fatalf("sample %d not monotone", i)
		}
	}
	if !sawStuck || !sawAfter {
		t.Fatalf("coverage: sawStuck=%v sawAfter=%v (samples=%d)", sawStuck, sawAfter, len(got))
	}
	// Traffic kept flowing while reads were frozen, so recovery jumps.
	final := got[len(got)-1].Value
	if final <= frozen {
		t.Fatalf("final value %d did not advance past frozen %d", final, frozen)
	}
}

// TestPollerStallFaultDrivesMissed checks the §3 scheduling-jitter
// regime: a CPU stall inflates poll cost past interval boundaries and
// shows up as missed intervals, never as missing data.
func TestPollerStallFaultDrivesMissed(t *testing.T) {
	run := func(f PollFault) (*Poller, int) {
		sw := testSwitch()
		n := 0
		p, err := NewPoller(PollerConfig{
			Interval:      simclock.Micros(25),
			Counters:      []CounterSpec{byteSpec(0)},
			DedicatedCore: true,
			Fault:         f,
		}, sw, rng.New(21), EmitterFunc(func(wire.Sample) { n++ }))
		if err != nil {
			t.Fatal(err)
		}
		sched := eventq.NewScheduler()
		p.Install(sched)
		sched.RunUntil(simclock.Epoch.Add(simclock.Millis(20)))
		return p, n
	}
	clean, _ := run(nil)
	stalled, n := run(&stubFault{
		delay:     500 * simclock.Microsecond,
		delayFrom: 5 * simclock.Millisecond,
		delayTo:   15 * simclock.Millisecond,
	})
	if n == 0 {
		t.Fatal("stalled poller emitted nothing")
	}
	// 10 ms of +500 µs polls at a 25 µs interval: each poll overruns ~20
	// boundaries, so the stall must dominate the baseline miss count.
	if stalled.Missed() < clean.Missed()+100 {
		t.Errorf("stall missed = %d, clean = %d; want stall >> clean",
			stalled.Missed(), clean.Missed())
	}
	if stalled.MissRate() <= clean.MissRate() {
		t.Errorf("stall miss rate %.4f not above clean %.4f",
			stalled.MissRate(), clean.MissRate())
	}
}
