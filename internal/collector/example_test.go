package collector_test

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/simclock"
)

// ExampleCalibrate automates §4.1's manual procedure: find the minimum
// sampling interval for a counter set that keeps sampling loss at ~1%.
func ExampleCalibrate() {
	sw := asic.New(asic.Config{
		PortSpeeds:  []uint64{10_000_000_000},
		BufferBytes: 1 << 20,
		Alpha:       1,
	})

	byteCounter := collector.PollerConfig{
		Counters:      []collector.CounterSpec{{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}},
		DedicatedCore: true,
	}
	res, err := collector.Calibrate(byteCounter, sw, 0.01, simclock.Millisecond, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	// The paper lands on 25µs for a single byte counter (Table 1).
	fmt.Printf("byte counter: base cost %v, calibrated interval within [20µs,30µs]: %v\n",
		res.BaseCost.Truncate(simclock.Microsecond), res.Interval >= 20*simclock.Microsecond && res.Interval <= 30*simclock.Microsecond)

	bufferPeak := collector.PollerConfig{
		Counters:      []collector.CounterSpec{{Kind: asic.KindBufferPeak}},
		DedicatedCore: true,
	}
	res2, err := collector.Calibrate(bufferPeak, sw, 0.01, simclock.Millisecond, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	// "This counter takes much longer to poll" (§4.1: 50µs).
	fmt.Printf("buffer peak needs a coarser interval: %v\n", res2.Interval > res.Interval)
	// Output:
	// byte counter: base cost 7µs, calibrated interval within [20µs,30µs]: true
	// buffer peak needs a coarser interval: true
}
