package collector

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"mburst/internal/wire"
)

func TestIngestStatsWrapAndSnapshot(t *testing.T) {
	stats := &IngestStats{}
	var forwarded int
	h := stats.Wrap(func(b *wire.Batch) { forwarded += len(b.Samples) })
	h(&wire.Batch{Rack: 1, Samples: []wire.Sample{mkSample(0), mkSample(1)}})
	h(&wire.Batch{Rack: 2, Samples: []wire.Sample{mkSample(5)}})
	h(&wire.Batch{Rack: 1, Samples: []wire.Sample{mkSample(9)}})

	if forwarded != 4 {
		t.Errorf("forwarded %d samples", forwarded)
	}
	snap := stats.Snapshot()
	if snap.Batches != 3 || snap.Samples != 4 {
		t.Errorf("snapshot = %+v", snap)
	}
	if len(snap.PerRack) != 2 || snap.PerRack[0].Rack != 1 || snap.PerRack[0].Samples != 3 {
		t.Errorf("per-rack = %+v", snap.PerRack)
	}
	if snap.LastSampleNanos != mkSample(9).Time.Nanoseconds() {
		t.Errorf("last sample = %d", snap.LastSampleNanos)
	}
}

func TestIngestStatsNilNext(t *testing.T) {
	stats := &IngestStats{}
	h := stats.Wrap(nil)
	h(&wire.Batch{Rack: 7, Samples: []wire.Sample{mkSample(0)}})
	if stats.Snapshot().Samples != 1 {
		t.Error("stats-only handler did not record")
	}
}

func TestIngestStatsHTTP(t *testing.T) {
	stats := &IngestStats{}
	stats.Wrap(nil)(&wire.Batch{Rack: 3, Samples: []wire.Sample{mkSample(1), mkSample(2)}})

	rec := httptest.NewRecorder()
	stats.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Samples != 2 || len(snap.PerRack) != 1 || snap.PerRack[0].Rack != 3 {
		t.Errorf("snapshot over HTTP = %+v", snap)
	}

	rec = httptest.NewRecorder()
	stats.ServeHTTP(rec, httptest.NewRequest("POST", "/stats", nil))
	if rec.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestIngestStatsConcurrent(t *testing.T) {
	stats := &IngestStats{}
	h := stats.Wrap(nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				h(&wire.Batch{Rack: uint32(g), Samples: []wire.Sample{mkSample(i)}})
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := stats.Snapshot().Samples; got != 4000 {
		t.Errorf("samples = %d, want 4000", got)
	}
}
