package collector

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mburst/internal/ptrace"
	"mburst/internal/wire"
)

// This file is the collector's durability spine. DurableIngest orders
// every admitted batch through a write-ahead discipline — epoch gate,
// durable archive, then the volatile accumulators (ingest stats, live
// figures) — and periodically persists a checkpoint of the volatile
// state plus the archive high-water mark. After a crash, Resume restores
// the last checkpoint and replays the archive tail that landed after it,
// reconstructing the exact state of a collector that never died.
//
// The ordering is what makes this sound: a batch reaches the archive
// (and the archive is fsynced) before any checkpoint can claim it, so
// the checkpoint's high-water mark never exceeds durable data — except
// when the disk itself lies about fsync (see ResumeReport.Shortfall).

// ArchiveSink is the durable batch log DurableIngest appends to. It is
// satisfied by *trace.ArchiveWriter; an interface because the dependency
// points the other way (internal/trace imports this package).
type ArchiveSink interface {
	// WriteBatch appends one batch. Errors are expected to be sticky.
	WriteBatch(*wire.Batch) error
	// Sync forces everything written so far to stable storage.
	Sync() error
	// Batches returns the total batches in the log, including any
	// recovered from a previous incarnation.
	Batches() uint64
}

// CheckpointState is the persisted collector state: the archive
// high-water mark plus snapshots of every volatile accumulator.
type CheckpointState struct {
	// ArchivedBatches is the archive length this checkpoint covers:
	// batches beyond it are replayed from the archive at resume.
	ArchivedBatches uint64           `json:"archived_batches"`
	Gate            []RackEpochState `json:"gate,omitempty"`
	Figures         *FiguresState    `json:"figures,omitempty"`
	Ingest          *Snapshot        `json:"ingest,omitempty"`
}

// SaveCheckpoint writes st to path atomically: temp file, fsync, rename,
// directory fsync. A crash mid-save leaves the previous checkpoint
// intact.
func SaveCheckpoint(path string, st CheckpointState) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("collector: encoding checkpoint: %w", err)
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// writeFileAtomic is the checkpoint write discipline shared by the
// per-shard and fleet checkpoints: temp file, fsync, rename, best-effort
// directory fsync.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Directory sync is best-effort: the rename is already on disk on
	// filesystems that order metadata, and some platforms reject fsync on
	// directories.
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads a checkpoint. A missing file is not an error: it
// returns a zero state and ok=false (first boot, or a crash before the
// first checkpoint).
func LoadCheckpoint(path string) (CheckpointState, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return CheckpointState{}, false, nil
	}
	if err != nil {
		return CheckpointState{}, false, err
	}
	var st CheckpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return CheckpointState{}, false, fmt.Errorf("collector: decoding checkpoint %s: %w", path, err)
	}
	return st, true, nil
}

// DefaultCheckpointEvery is the checkpoint cadence in admitted batches
// when DurableIngestConfig.Every is zero.
const DefaultCheckpointEvery = 256

// DurableIngestConfig assembles a DurableIngest.
type DurableIngestConfig struct {
	// Archive is the durable batch log; required.
	Archive ArchiveSink
	// CheckpointPath is where checkpoints are saved; empty disables
	// periodic checkpointing (Resume then replays the whole archive).
	CheckpointPath string
	// Every is the checkpoint cadence in admitted batches; <= 0 selects
	// DefaultCheckpointEvery.
	Every int
	// Figures, when non-nil, receives every admitted batch and is
	// checkpointed/restored alongside the archive mark.
	Figures *LiveFigures
	// Stats, when non-nil, accounts every admitted batch and is
	// checkpointed/restored alongside the archive mark.
	Stats *IngestStats
	// GateMetrics feeds the embedded epoch gate's drop counters; may be
	// nil.
	GateMetrics *ServerMetrics
	// Metrics, when non-nil, receives durability telemetry.
	Metrics *RecoveryMetrics
	// Tracer, when non-nil, records epoch.gate, archive.write,
	// collector.checkpoint, and collector.recover spans.
	Tracer *ptrace.Tracer
}

// DurableIngest is the crash-safe ingest pipeline: a BatchHandler that
// gates, archives, accounts, and periodically checkpoints under one
// lock, so the persisted state is always a consistent cut.
type DurableIngest struct {
	cfg    DurableIngestConfig
	gate   *EpochGate
	m      RecoveryMetrics
	record BatchHandler // cfg.Stats accounting, nil when absent

	mu        sync.Mutex
	err       error // sticky fatal: the archive can no longer accept writes
	every     int
	sinceCkpt int
}

// NewDurableIngest validates cfg and builds the pipeline.
func NewDurableIngest(cfg DurableIngestConfig) (*DurableIngest, error) {
	if cfg.Archive == nil {
		return nil, fmt.Errorf("collector: DurableIngest needs an ArchiveSink")
	}
	d := &DurableIngest{
		cfg:   cfg,
		gate:  NewEpochGate(func(*wire.Batch) {}, cfg.GateMetrics),
		every: cfg.Every,
	}
	d.gate.SetTracer(cfg.Tracer)
	if d.every <= 0 {
		d.every = DefaultCheckpointEvery
	}
	if cfg.Metrics != nil {
		d.m = *cfg.Metrics
	}
	if cfg.Stats != nil {
		d.record = cfg.Stats.Wrap(nil)
	}
	return d, nil
}

// Resume restores the pipeline from the last checkpoint and replays the
// archive tail written after it. iter must stream the archive's batches
// in write order (trace.IterArchive wrapped in a closure fits). Call
// once, before Handle sees traffic.
func (d *DurableIngest) Resume(iter func(func(*wire.Batch) error) error) (ResumeReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var rep ResumeReport
	if d.cfg.CheckpointPath != "" {
		st, ok, err := LoadCheckpoint(d.cfg.CheckpointPath)
		if err != nil {
			return rep, err
		}
		if ok {
			rep.HadCheckpoint = true
			rep.CheckpointBatches = st.ArchivedBatches
			d.gate.RestoreState(st.Gate)
			if d.cfg.Figures != nil && st.Figures != nil {
				d.cfg.Figures.RestoreState(*st.Figures)
			}
			if d.cfg.Stats != nil && st.Ingest != nil {
				d.cfg.Stats.Restore(*st.Ingest)
			}
		}
	}
	rep.ArchiveBatches = d.cfg.Archive.Batches()
	if rep.CheckpointBatches > rep.ArchiveBatches {
		// The checkpoint covers batches the archive no longer holds: the
		// storage layer acknowledged a sync it did not perform. The
		// checkpointed accumulators already contain those batches, so
		// nothing is replayed; the shortfall is reported, not hidden.
		rep.Shortfall = rep.CheckpointBatches - rep.ArchiveBatches
		return rep, nil
	}
	var seen uint64
	if iter != nil {
		if err := iter(func(b *wire.Batch) error {
			seen++
			if seen <= rep.CheckpointBatches {
				return nil // already inside the checkpoint
			}
			// Same order as Handle, minus the archive write: these batches
			// are already durable.
			d.gate.admit(b)
			recordStageSpan(d.cfg.Tracer, ptrace.StageRecover, b)
			if d.record != nil {
				d.record(b)
			}
			if d.cfg.Figures != nil {
				d.cfg.Figures.Handle(b)
			}
			rep.Replayed++
			return nil
		}); err != nil {
			return rep, err
		}
	}
	d.m.ReplayedBatches.Add(rep.Replayed)
	d.sinceCkpt = int(rep.Replayed)
	d.m.CheckpointLag.Set(float64(d.sinceCkpt))
	return rep, nil
}

// ResumeReport describes what a Resume found and did.
type ResumeReport struct {
	// HadCheckpoint reports whether a checkpoint file was restored.
	HadCheckpoint bool `json:"had_checkpoint"`
	// CheckpointBatches is the archive high-water mark the checkpoint
	// recorded.
	CheckpointBatches uint64 `json:"checkpoint_batches"`
	// ArchiveBatches is how many batches the (recovered) archive holds.
	ArchiveBatches uint64 `json:"archive_batches"`
	// Replayed is how many archived batches were re-applied to the
	// restored accumulators.
	Replayed uint64 `json:"replayed"`
	// Shortfall counts batches the checkpoint covers but the archive lost
	// (a storage layer that acknowledged fsync without persisting).
	Shortfall uint64 `json:"shortfall,omitempty"`
}

// Handle implements BatchHandler. Batches flow gate → archive → stats →
// figures; every d.every admitted batches the archive is synced and a
// checkpoint saved. An archive write or sync failure is fatal and
// sticky: later batches are counted as ingest failures and dropped, and
// Err reports the cause.
func (d *DurableIngest) Handle(b *wire.Batch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		d.m.IngestFailures.Inc()
		return
	}
	verdict := d.gate.admit(b)
	recordGateSpan(d.cfg.Tracer, b, verdict)
	if verdict != ptrace.VerdictAccept {
		return
	}
	recordStageSpan(d.cfg.Tracer, ptrace.StageArchiveWrite, b)
	if err := d.cfg.Archive.WriteBatch(b); err != nil {
		d.err = fmt.Errorf("collector: archive write: %w", err)
		d.m.IngestFailures.Inc()
		return
	}
	if d.record != nil {
		d.record(b)
	}
	if d.cfg.Figures != nil {
		d.cfg.Figures.Handle(b)
	}
	d.sinceCkpt++
	d.m.CheckpointLag.Set(float64(d.sinceCkpt))
	if d.cfg.CheckpointPath != "" && d.sinceCkpt >= d.every {
		if err := d.checkpointLocked(b); err != nil && d.err == nil {
			// A failed save is retried at the next cadence point; the
			// archive tail covers the gap meanwhile.
			d.m.CheckpointErrors.Inc()
		}
	}
}

// Err returns the sticky fatal error, if any. A non-nil Err means the
// archive stopped accepting batches; the process should exit non-zero.
func (d *DurableIngest) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Checkpoint forces a checkpoint now — the clean-shutdown path. It
// syncs the archive first; a sync failure is fatal (the data is not
// durable) and is returned.
func (d *DurableIngest) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	if d.cfg.CheckpointPath == "" {
		return d.syncLocked()
	}
	if err := d.checkpointLocked(nil); err != nil {
		d.m.CheckpointErrors.Inc()
		return err
	}
	return nil
}

// syncLocked forces the archive to stable storage, latching a failure
// as the sticky fatal error.
func (d *DurableIngest) syncLocked() error {
	if err := d.cfg.Archive.Sync(); err != nil {
		d.err = fmt.Errorf("collector: archive sync: %w", err)
		return d.err
	}
	return nil
}

// checkpointLocked syncs the archive and saves a consistent cut of the
// volatile state. b, when non-nil, anchors the collector.checkpoint
// span. Caller holds d.mu.
func (d *DurableIngest) checkpointLocked(b *wire.Batch) error {
	if err := d.syncLocked(); err != nil {
		return err
	}
	st := CheckpointState{
		ArchivedBatches: d.cfg.Archive.Batches(),
		Gate:            d.gate.State(),
	}
	if d.cfg.Figures != nil {
		fs := d.cfg.Figures.State()
		st.Figures = &fs
	}
	if d.cfg.Stats != nil {
		is := d.cfg.Stats.Snapshot()
		st.Ingest = &is
	}
	if err := SaveCheckpoint(d.cfg.CheckpointPath, st); err != nil {
		return err
	}
	d.sinceCkpt = 0
	d.m.Checkpoints.Inc()
	d.m.CheckpointLag.Set(0)
	if b != nil {
		recordStageSpan(d.cfg.Tracer, ptrace.StageCheckpoint, b)
	}
	return nil
}
