package collector

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mburst/internal/eventq"
	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func TestMissedForOverrunClampsWireField(t *testing.T) {
	interval := simclock.Duration(1) // 1 ns — the worst case for overruns
	cases := []struct {
		overrun    simclock.Duration
		wantMissed uint64
		wantWire   uint32
	}{
		{0, 0, 0},
		{5, 5, 5},
		{simclock.Duration(math.MaxUint32), math.MaxUint32, math.MaxUint32},
		// A ~10 s stall against a 1 ns interval overflows uint32: the
		// wire field must saturate, the poller total must not.
		{10 * simclock.Second, 10_000_000_000, math.MaxUint32},
	}
	for _, tc := range cases {
		k, missed, wireMissed := missedForOverrun(tc.overrun, interval)
		if missed != tc.wantMissed {
			t.Errorf("overrun %v: missed = %d, want %d", tc.overrun, missed, tc.wantMissed)
		}
		if wireMissed != tc.wantWire {
			t.Errorf("overrun %v: wire missed = %d, want %d", tc.overrun, wireMissed, tc.wantWire)
		}
		if k != int64(tc.wantMissed)+1 {
			t.Errorf("overrun %v: k = %d, want %d", tc.overrun, k, tc.wantMissed+1)
		}
	}
	// Sanity at a realistic interval: a 60 µs overrun at 25 µs misses 2.
	if _, missed, wireMissed := missedForOverrun(60*simclock.Microsecond, 25*simclock.Microsecond); missed != 2 || wireMissed != 2 {
		t.Errorf("60µs/25µs: missed = %d wire = %d, want 2", missed, wireMissed)
	}
}

func TestPollerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	pm := NewPollerMetrics(reg)
	sw := testSwitch()
	p, err := NewPoller(PollerConfig{
		Interval:      simclock.Micros(25),
		Counters:      []CounterSpec{byteSpec(0)},
		DedicatedCore: true,
		Metrics:       pm,
	}, sw, rng.New(1), EmitterFunc(func(wire.Sample) {}))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	sched.RunUntil(simclock.Epoch.Add(simclock.Seconds(1)))
	p.Stop() // flushes the batched telemetry

	if got := pm.Polls.Value(); got != p.Samples() {
		t.Errorf("polls counter = %d, poller says %d", got, p.Samples())
	}
	if got := pm.Missed.Value(); got != p.Missed() {
		t.Errorf("missed counter = %d, poller says %d", got, p.Missed())
	}
	// Cost is observed when a poll starts, completion counts when it
	// finishes — a poll in flight at the deadline leaves them one apart.
	if d := pm.PollCost.Count() - p.Samples(); d > 1 {
		t.Errorf("poll cost observations = %d, polls = %d", pm.PollCost.Count(), p.Samples())
	}
	if pm.BusyNanos.Value() == 0 {
		t.Error("busy time not accumulated")
	}
	busy := pm.CPUBusy.Value()
	if math.Abs(busy-p.CPUBusyFrac()) > 0.05 {
		t.Errorf("cpu busy gauge %.3f far from poller %.3f", busy, p.CPUBusyFrac())
	}
}

func TestPollerMetricsDisabledMatchesBaseline(t *testing.T) {
	// The nil-metrics poller must behave identically (same samples, same
	// timestamps) — instrumentation must not perturb the model.
	run := func(m *PollerMetrics) []wire.Sample {
		var got []wire.Sample
		sw := testSwitch()
		p, err := NewPoller(PollerConfig{
			Interval:      simclock.Micros(25),
			Counters:      []CounterSpec{byteSpec(0)},
			DedicatedCore: true,
			Metrics:       m,
		}, sw, rng.New(9), EmitterFunc(func(s wire.Sample) { got = append(got, s) }))
		if err != nil {
			t.Fatal(err)
		}
		sched := eventq.NewScheduler()
		p.Install(sched)
		sched.RunUntil(simclock.Epoch.Add(simclock.Millis(20)))
		return got
	}
	plain := run(nil)
	instr := run(NewPollerMetrics(obs.NewRegistry()))
	if len(plain) != len(instr) {
		t.Fatalf("sample counts differ: %d vs %d", len(plain), len(instr))
	}
	for i := range plain {
		if plain[i] != instr[i] {
			t.Fatalf("sample %d differs under instrumentation", i)
		}
	}
}

func TestClientMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cm := NewClientMetrics(reg)
	var buf bytes.Buffer
	c := NewClient(&buf, 7, 4)
	c.SetMetrics(cm)
	for i := 0; i < 10; i++ {
		c.Emit(wire.Sample{Time: simclock.Time(i)})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := cm.Batches.Value(); got != 3 { // 4 + 4 + 2
		t.Errorf("batches = %d, want 3", got)
	}
	if got := cm.Delivered.Value(); got != 10 {
		t.Errorf("delivered = %d, want 10", got)
	}
	if got := cm.Bytes.Value(); got != uint64(buf.Len()) {
		t.Errorf("bytes counter = %d, wrote %d", got, buf.Len())
	}
	if cm.FlushErrors.Value() != 0 {
		t.Errorf("flush errors = %d", cm.FlushErrors.Value())
	}
}

func TestReconnectingClientMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cm := NewClientMetrics(reg)
	sink := &MemSink{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	c := NewReconnectingClient(func() (io.WriteCloser, error) {
		return net.Dial("tcp", ln.Addr().String())
	}, ReconnectingClientConfig{Rack: 3, MaxBatch: 8, Metrics: cm})
	const n = 40
	for i := 0; i < n; i++ {
		c.Emit(wire.Sample{Time: simclock.Time(i)})
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cm.Delivered.Value(); got != n {
		t.Errorf("delivered = %d, want %d", got, n)
	}
	if got := cm.Redials.Value(); got != 1 {
		t.Errorf("redials = %d, want 1", got)
	}
	if cm.Bytes.Value() == 0 || cm.Batches.Value() == 0 {
		t.Errorf("bytes = %d batches = %d, want > 0", cm.Bytes.Value(), cm.Batches.Value())
	}
	if got := cm.Pending.Value(); got != 0 {
		t.Errorf("pending gauge = %v after close", got)
	}
	if got := cm.Dropped.Value(); got != 0 {
		t.Errorf("dropped = %d", got)
	}
}

func TestReconnectingClientBackoffMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cm := NewClientMetrics(reg)
	fail := errFailDial{}
	c := NewReconnectingClient(fail.dial, ReconnectingClientConfig{
		RetryBackoff: 10 * time.Millisecond,
		MaxBackoff:   40 * time.Millisecond,
		Metrics:      cm,
		Sleep:        func(time.Duration) { time.Sleep(time.Millisecond) },
	})
	c.Emit(wire.Sample{})
	// Wait until the flusher has failed a few dials.
	deadline := time.Now().Add(2 * time.Second)
	for fail.count.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cm.Backoff.Value() == 0 {
		t.Error("backoff gauge not set while the collector is unreachable")
	}
	c.Close()
	if cm.Dropped.Value() != 1 {
		t.Errorf("dropped = %d, want 1 (shutdown with unreachable collector)", cm.Dropped.Value())
	}
}

type errFailDial struct {
	count atomic.Int64
}

func (d *errFailDial) dial() (io.WriteCloser, error) {
	d.count.Add(1)
	return nil, errors.New("collector unreachable")
}
