package collector

import (
	"fmt"
	"sort"

	"mburst/internal/analysis"
	"mburst/internal/asic"
)

// This file is the fleet-merge layer: the pure-state operations the
// Aggregator uses to fold shard-local accumulator snapshots into the
// fleet-wide view. The operations are exact, not approximate, because
// the shard placement (internal/shard) assigns every rack to exactly
// one shard: each (rack, port, dir, kind) series is owned by a single
// shard, so merging FiguresStates is a disjoint sorted union and
// merging ingest snapshots is plain addition. A duplicate series is not
// a merge conflict to resolve — it is a placement violation to report.

// seriesID orders and identifies a series across shards.
type seriesID struct {
	Rack uint32
	Port uint16
	Dir  asic.Direction
	Kind asic.CounterKind
}

func (s SeriesState) id() seriesID {
	return seriesID{Rack: s.Rack, Port: s.Port, Dir: s.Dir, Kind: s.Kind}
}

func (a seriesID) less(b seriesID) bool {
	if a.Rack != b.Rack {
		return a.Rack < b.Rack
	}
	if a.Port != b.Port {
		return a.Port < b.Port
	}
	if a.Dir != b.Dir {
		return a.Dir < b.Dir
	}
	return a.Kind < b.Kind
}

func (s seriesID) String() string {
	return fmt.Sprintf("rack %d %s", s.Rack,
		analysis.SeriesKey{Port: s.Port, Dir: s.Dir, Kind: s.Kind}.String())
}

// MergeFiguresStates unions shard-local figure states into the fleet
// state: series concatenated and re-sorted into the canonical (rack,
// port, dir, kind) order LiveFigures.State emits, sample totals summed.
// Because a rack's series live on exactly one shard, the union is
// disjoint; a series appearing in two inputs means two shards ingested
// the same rack and the merged state would double-count, so that is an
// error, not a fold.
func MergeFiguresStates(states ...FiguresState) (FiguresState, error) {
	var out FiguresState
	n := 0
	for _, st := range states {
		n += len(st.Series)
	}
	if n > 0 {
		out.Series = make([]SeriesState, 0, n)
	}
	for _, st := range states {
		out.Samples += st.Samples
		out.Series = append(out.Series, st.Series...)
	}
	sort.Slice(out.Series, func(i, j int) bool {
		return out.Series[i].id().less(out.Series[j].id())
	})
	for i := 1; i < len(out.Series); i++ {
		if out.Series[i].id() == out.Series[i-1].id() {
			return FiguresState{}, fmt.Errorf(
				"collector: series %s claimed by two shards (placement violation)",
				out.Series[i].id())
		}
	}
	return out, nil
}

// MergeSnapshots sums shard-local ingest snapshots into fleet totals.
// Batch and sample counts add; per-rack counts union (summing if a rack
// somehow appears on two shards — ingest accounting is additive even
// when figures would conflict); the newest-sample watermark is the max.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	perRack := make(map[uint32]uint64)
	for _, s := range snaps {
		out.Batches += s.Batches
		out.Samples += s.Samples
		if s.LastSampleNanos > out.LastSampleNanos {
			out.LastSampleNanos = s.LastSampleNanos
		}
		for _, rc := range s.PerRack {
			perRack[rc.Rack] += rc.Samples
		}
	}
	if len(perRack) > 0 {
		out.PerRack = make([]RackCount, 0, len(perRack))
		for rack, n := range perRack {
			out.PerRack = append(out.PerRack, RackCount{Rack: rack, Samples: n})
		}
		sort.Slice(out.PerRack, func(i, j int) bool { return out.PerRack[i].Rack < out.PerRack[j].Rack })
	}
	return out
}
