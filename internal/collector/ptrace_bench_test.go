package collector

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"mburst/internal/eventq"
	"mburst/internal/ptrace"
	"mburst/internal/rng"
	"mburst/internal/simclock"
)

// runTracedPoll drives the hot path the tracing overhead gate measures:
// a dedicated-core poller emitting into a batching Client that frames
// onto io.Discard, for simDur of simulated time. When tr is non-nil the
// client records the full client-side span chain per flushed batch —
// exactly what mbagent -tracing adds to production polling.
func runTracedPoll(tb testing.TB, tr *ptrace.Tracer, simDur simclock.Duration) uint64 {
	tb.Helper()
	sw := testSwitch()
	client := NewClient(writeDiscard{}, 3, 0)
	client.SetTracer(tr)
	p, err := NewPoller(PollerConfig{
		Interval:      simclock.Micros(25),
		Counters:      []CounterSpec{byteSpec(0)},
		DedicatedCore: true,
	}, sw, rng.New(1), client)
	if err != nil {
		tb.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	sched.RunUntil(simclock.Epoch.Add(simDur))
	if err := client.Close(); err != nil {
		tb.Fatal(err)
	}
	return p.Samples()
}

// writeDiscard adapts io.Discard to the Client's io.Writer without
// letting the benchmark accidentally measure a buffer.
type writeDiscard struct{}

func (writeDiscard) Write(p []byte) (int, error) { return io.Discard.Write(p) }

// measurePollWall times the polling loop, min-of-trials so scheduler
// noise on a shared CI host cannot inflate a single run.
func measurePollWall(tb testing.TB, tr *ptrace.Tracer, simDur simclock.Duration, trials int) (best time.Duration, samples uint64) {
	tb.Helper()
	best = time.Duration(1<<63 - 1)
	for i := 0; i < trials; i++ {
		start := time.Now()
		samples = runTracedPoll(tb, tr, simDur)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, samples
}

// TestPtraceOverheadArtifact measures the poller's wall-clock cost with
// and without span recording and publishes BENCH_ptrace.json. The ratio
// is a hard gate: tracing must cost under 5% on the polling hot path
// (ISSUE 6 acceptance). Gated on MBURST_PTRACE_BENCH_OUT so the
// measurement only runs in the dedicated CI step — wall-clock ratios are
// meaningless under the race detector.
func TestPtraceOverheadArtifact(t *testing.T) {
	out := os.Getenv("MBURST_PTRACE_BENCH_OUT")
	if out == "" {
		t.Skip("MBURST_PTRACE_BENCH_OUT not set")
	}
	const (
		simDur = 2 * simclock.Second
		trials = 5
		// maxRatio is the hard gate: traced polling must stay within 5%
		// of untraced. The measured overhead is typically well under 1%
		// (one 7-span chain per 2048-sample batch), so 5% leaves slack
		// for CI host noise without letting a regression through.
		maxRatio = 1.05
	)
	tracer := ptrace.New(ptrace.Config{Capacity: 1 << 16})

	// Warm both paths once so lazy init does not land in a trial.
	runTracedPoll(t, nil, 100*simclock.Millisecond)
	runTracedPoll(t, tracer, 100*simclock.Millisecond)

	base, samples := measurePollWall(t, nil, simDur, trials)
	traced, _ := measurePollWall(t, tracer, simDur, trials)
	ratio := float64(traced) / float64(base)

	artifact := struct {
		Name        string  `json:"name"`
		Samples     uint64  `json:"samples"`
		Trials      int     `json:"trials"`
		CPUs        int     `json:"cpus"`
		BaseNs      int64   `json:"base_ns"`
		TracedNs    int64   `json:"traced_ns"`
		Ratio       float64 `json:"ratio"`
		MaxRatio    float64 `json:"max_ratio"`
		SpansPerSec float64 `json:"spans_per_sec"`
	}{
		Name:        "ptrace_overhead",
		Samples:     samples,
		Trials:      trials,
		CPUs:        runtime.NumCPU(),
		BaseNs:      base.Nanoseconds(),
		TracedNs:    traced.Nanoseconds(),
		Ratio:       ratio,
		MaxRatio:    maxRatio,
		SpansPerSec: float64(tracer.Recorded()) / traced.Seconds(),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("untraced %v, traced %v (%.3fx), %d samples", base, traced, ratio, samples)

	if ratio > maxRatio {
		t.Errorf("tracing overhead %.3fx exceeds the %.2fx gate (untraced %v, traced %v)",
			ratio, maxRatio, base, traced)
	}
}

// BenchmarkPtraceOverhead reports the per-run cost of the polling loop
// with and without span recording. Run with:
//
//	go test -run=^$ -bench=BenchmarkPtraceOverhead -benchtime=1x ./internal/collector
func BenchmarkPtraceOverhead(b *testing.B) {
	for _, bc := range []struct {
		name   string
		traced bool
	}{
		{"untraced", false},
		{"traced", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var tr *ptrace.Tracer
				if bc.traced {
					tr = ptrace.New(ptrace.Config{Capacity: 1 << 16})
				}
				runTracedPoll(b, tr, simclock.Second)
			}
		})
	}
}
