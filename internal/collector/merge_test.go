package collector

import (
	"reflect"
	"strings"
	"testing"

	"mburst/internal/asic"
)

func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{
		Batches: 3, Samples: 30, LastSampleNanos: 500,
		PerRack: []RackCount{{Rack: 0, Samples: 10}, {Rack: 2, Samples: 20}},
	}
	b := Snapshot{
		Batches: 2, Samples: 12, LastSampleNanos: 900,
		PerRack: []RackCount{{Rack: 1, Samples: 7}, {Rack: 2, Samples: 5}},
	}
	got := MergeSnapshots(a, b)
	want := Snapshot{
		Batches: 5, Samples: 42, LastSampleNanos: 900,
		PerRack: []RackCount{{Rack: 0, Samples: 10}, {Rack: 1, Samples: 7}, {Rack: 2, Samples: 25}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeSnapshots = %+v, want %+v", got, want)
	}
	if got := MergeSnapshots(); !reflect.DeepEqual(got, Snapshot{}) {
		t.Errorf("empty merge = %+v, want zero", got)
	}
}

func TestMergeFiguresStatesDisjointUnion(t *testing.T) {
	mk := func(rack uint32, port uint16, samples uint64) FiguresState {
		return FiguresState{
			Samples: samples,
			Series: []SeriesState{{
				Rack: rack, Port: port, Dir: asic.TX, Kind: asic.KindBytes,
				Points: int(samples),
			}},
		}
	}
	// Out-of-order inputs must land in canonical (rack, port, dir, kind)
	// order regardless.
	got, err := MergeFiguresStates(mk(3, 1, 5), mk(0, 2, 7), mk(0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != 13 {
		t.Errorf("Samples = %d, want 13", got.Samples)
	}
	order := make([][2]uint32, 0, len(got.Series))
	for _, s := range got.Series {
		order = append(order, [2]uint32{s.Rack, uint32(s.Port)})
	}
	want := [][2]uint32{{0, 1}, {0, 2}, {3, 1}}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("series order = %v, want %v", order, want)
	}
}

func TestMergeFiguresStatesDuplicateSeries(t *testing.T) {
	dup := FiguresState{Series: []SeriesState{{Rack: 1, Port: 2, Dir: asic.TX, Kind: asic.KindBytes}}}
	_, err := MergeFiguresStates(dup, dup)
	if err == nil {
		t.Fatal("merging a duplicated series must fail")
	}
	if !strings.Contains(err.Error(), "placement violation") {
		t.Errorf("error %q does not name the placement violation", err)
	}
}
