package collector

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// testBatch builds a small batch with deterministic content.
func testBatch(rack uint32, base simclock.Time, n int) *wire.Batch {
	b := &wire.Batch{Rack: rack}
	for i := 0; i < n; i++ {
		b.Samples = append(b.Samples, wire.Sample{
			Time:  base.Add(simclock.Duration(i) * simclock.Micros(25)),
			Port:  uint16(rack),
			Value: uint64(i) * 100,
		})
	}
	return b
}

// TestClientServerSpansJoin pins the content-derived trace ID contract:
// a batch flushed by a Client and ingested by a Server produces spans on
// both tracers under the same trace ID, so the halves join at render
// time without any wire-format change.
func TestClientServerSpansJoin(t *testing.T) {
	clientTr := ptrace.New(ptrace.Config{Capacity: 64})
	serverTr := ptrace.New(ptrace.Config{Capacity: 64})

	sink := &MemSink{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeConfigured(ln, sink.Handle, ServerConfig{Tracer: serverTr, EpochGate: true})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	c := NewClient(conn, 7, n)
	c.SetTracer(clientTr)
	first := simclock.Epoch.Add(simclock.Millisecond)
	for _, s := range testBatch(7, first, n).Samples {
		c.Emit(s)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(sink.Samples()) < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	clientSpans := clientTr.Snapshot()
	serverSpans := serverTr.Snapshot()
	if len(clientSpans) != 3 { // poll.read, wire.encode, client.send
		t.Fatalf("client spans = %d, want 3: %+v", len(clientSpans), clientSpans)
	}
	if len(serverSpans) != 2 { // server.ingest, epoch.gate
		t.Fatalf("server spans = %d, want 2: %+v", len(serverSpans), serverSpans)
	}
	want := ptrace.BatchID(7, 0, first)
	for _, sp := range append(clientSpans, serverSpans...) {
		if sp.Trace != want {
			t.Errorf("span %s trace = %x, want %x", sp.Stage, sp.Trace, want)
		}
	}
	for _, sp := range serverSpans {
		if sp.Stage == ptrace.StageEpochGate && sp.Verdict != ptrace.VerdictAccept {
			t.Errorf("gate verdict = %q, want %q", sp.Verdict, ptrace.VerdictAccept)
		}
	}
}

// TestGateVerdictSpans pins the drop verdicts: a stale-epoch batch and a
// time-regressing duplicate each record an epoch.gate span carrying the
// reason they were dropped.
func TestGateVerdictSpans(t *testing.T) {
	tr := ptrace.New(ptrace.Config{Capacity: 64})
	sink := &MemSink{}
	gate := NewEpochGate(sink.Handle, nil)
	gate.SetTracer(tr)

	fresh := testBatch(1, simclock.Epoch.Add(simclock.Millisecond), 4)
	fresh.Epoch = 2
	gate.Handle(fresh)

	stale := testBatch(1, simclock.Epoch.Add(2*simclock.Millisecond), 4)
	stale.Epoch = 1
	gate.Handle(stale)

	reorder := testBatch(1, simclock.Epoch, 4) // regresses behind fresh
	reorder.Epoch = 2
	gate.Handle(reorder)

	verdicts := map[string]int{}
	for _, sp := range tr.Snapshot() {
		if sp.Stage != ptrace.StageEpochGate {
			t.Fatalf("unexpected stage %s", sp.Stage)
		}
		verdicts[sp.Verdict]++
	}
	want := map[string]int{
		ptrace.VerdictAccept:      1,
		ptrace.VerdictDropStale:   1,
		ptrace.VerdictDropReorder: 1,
	}
	for v, n := range want {
		if verdicts[v] != n {
			t.Errorf("verdict %q seen %d times, want %d (all: %v)", v, verdicts[v], n, verdicts)
		}
	}
}

// TestSpansEndpointsUnderConcurrentIngest scrapes /spans and /tracez
// while many client connections stream into a traced Server. Under -race
// this is the production shape of the observability surface: connection
// goroutines publishing spans into the ring while HTTP readers snapshot
// it.
func TestSpansEndpointsUnderConcurrentIngest(t *testing.T) {
	const (
		clients          = 4
		batchesPerClient = 20
		samplesPerBatch  = 32
	)
	tracer := ptrace.New(ptrace.Config{Capacity: 1024})
	sink := &MemSink{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeConfigured(ln, sink.Handle, ServerConfig{Tracer: tracer, EpochGate: true})

	hs := httptest.NewServer(http.NewServeMux())
	defer hs.Close()
	mux := http.NewServeMux()
	mux.Handle("/spans", tracer.SpansHandler())
	mux.Handle("/tracez", tracer.TracezHandler())
	hs.Config.Handler = mux

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(rack uint32) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("rack %d: dial: %v", rack, err)
				return
			}
			c := NewClient(conn, rack, samplesPerBatch)
			c.SetTracer(tracer)
			for b := 0; b < batchesPerClient; b++ {
				base := simclock.Epoch.Add(simclock.Duration(b+1) * simclock.Millisecond)
				for _, s := range testBatch(rack, base, samplesPerBatch).Samples {
					c.Emit(s)
				}
			}
			if err := c.Close(); err != nil {
				t.Errorf("rack %d: close: %v", rack, err)
			}
		}(uint32(cl))
	}
	// Concurrent scrapers hit both endpoints while ingest is live.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, path := range []string{"/spans", "/tracez"} {
					resp, err := http.Get(hs.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: %s", path, resp.Status)
					}
				}
			}
		}()
	}
	wg.Wait()
	wantSamples := clients * batchesPerClient * samplesPerBatch
	deadline := time.Now().Add(10 * time.Second)
	for len(sink.Samples()) < wantSamples && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// After the dust settles the endpoints must agree with the ring.
	resp, err := http.Get(hs.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := ptrace.ReadDump(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != len(tracer.Snapshot()) {
		t.Errorf("/spans returned %d spans, snapshot holds %d", len(dump.Spans), len(tracer.Snapshot()))
	}
	resp, err = http.Get(hs.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "server.ingest") {
		t.Error("/tracez does not mention server.ingest")
	}
}

// TestReconnectBackoffChildSpans pins the reconnect path: when the
// collector is down for the first dial attempts, the eventually
// delivered batch's client.send span stretches by the waits and each
// wait appears as a client.backoff child.
func TestReconnectBackoffChildSpans(t *testing.T) {
	tracer := ptrace.New(ptrace.Config{Capacity: 64})
	sink := &MemSink{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(ln, sink.Handle, nil)

	var mu sync.Mutex
	failures := 2
	dial := func() (io.WriteCloser, error) {
		mu.Lock()
		defer mu.Unlock()
		if failures > 0 {
			failures--
			return nil, io.ErrClosedPipe
		}
		return net.Dial("tcp", ln.Addr().String())
	}
	c := NewReconnectingClient(dial, ReconnectingClientConfig{
		Rack:         9,
		MaxBatch:     8,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
		Tracer:       tracer,
	})
	for _, s := range testBatch(9, simclock.Epoch.Add(simclock.Millisecond), 8).Samples {
		c.Emit(s)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(sink.Samples()) < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	var backoffs int
	var send *ptrace.Span
	spans := tracer.Snapshot()
	for i := range spans {
		switch spans[i].Stage {
		case ptrace.StageClientBackoff:
			backoffs++
			if spans[i].Parent != ptrace.StageClientSend {
				t.Errorf("backoff parent = %q, want %q", spans[i].Parent, ptrace.StageClientSend)
			}
		case ptrace.StageClientSend:
			send = &spans[i]
		}
	}
	if backoffs != 2 {
		t.Errorf("backoff child spans = %d, want 2 (spans: %+v)", backoffs, spans)
	}
	if send == nil {
		t.Fatal("no client.send span recorded")
	}
	// Without jitter the two reconnect sleeps are 1 ms + 2 ms; they must
	// stretch client.send well past its µs-scale modeled cost.
	if send.Duration() < 3*simclock.Millisecond {
		t.Errorf("client.send duration %v not stretched by the 3 ms of backoff waits", send.Duration())
	}
}
