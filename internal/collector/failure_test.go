package collector

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"mburst/internal/wire"
)

// TestServerSurvivesMidBatchDisconnect kills a client mid-stream and
// verifies the server flags the torn stream (or a clean cut between
// batches) without crashing, and keeps serving other clients.
func TestServerSurvivesMidBatchDisconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	// Victim connection: write half a batch and slam the connection.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	batch := &wire.Batch{Rack: 1}
	for i := 0; i < 100; i++ {
		batch.Samples = append(batch.Samples, mkSample(i))
	}
	encoded := wire.AppendBatch(nil, batch)
	if _, err := conn.Write(encoded[:len(encoded)/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A healthy client must still be served.
	conn2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn2, 2, 8)
	for i := 0; i < 16; i++ {
		c.Emit(mkSample(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Samples()) < 16 {
		if time.Now().After(deadline) {
			t.Fatalf("healthy client starved: got %d samples", len(sink.Samples()))
		}
		time.Sleep(time.Millisecond)
	}
	// The victim's partial batch must not have been delivered.
	for _, s := range sink.Samples() {
		if s != mkSample(int(s.Value/1000)) {
			t.Fatalf("corrupted sample leaked: %+v", s)
		}
	}
}

// TestClientAgainstClosedServer verifies transport errors surface through
// Flush/Close instead of being dropped.
func TestClientAgainstClosedServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	// Accept never happened; the OS may buffer some writes, so pump until
	// the error materializes.
	c := NewClient(conn, 1, 4)
	var flushErr error
	for i := 0; i < 100000 && flushErr == nil; i++ {
		c.Emit(mkSample(i))
		flushErr = c.Flush()
	}
	conn.Close()
	if flushErr == nil {
		// Depending on kernel buffering the write may only fail at close.
		flushErr = c.Close()
	}
	if flushErr == nil {
		t.Skip("kernel buffered everything; nothing to assert on this host")
	}
}

// TestBatchBoundaryResilience verifies that a stream of valid batches
// followed by garbage delivers the valid prefix.
func TestBatchBoundaryResilience(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	good := wire.AppendBatch(nil, &wire.Batch{Rack: 5, Samples: []wire.Sample{mkSample(0), mkSample(1)}})
	conn.Write(good)
	conn.Write([]byte("GARBAGE GARBAGE GARBAGE"))
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Samples()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("valid prefix not delivered: %d samples", len(sink.Samples()))
		}
		time.Sleep(time.Millisecond)
	}
	for srv.LastErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("garbage tail not flagged")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(srv.LastErr(), wire.ErrCorrupt) && !errors.Is(srv.LastErr(), io.ErrUnexpectedEOF) {
		t.Errorf("unexpected error type: %v", srv.LastErr())
	}
}
