package collector

import (
	"fmt"

	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// This file is the collector's glue to internal/ptrace. Span windows are
// not measured: they are computed from the batch's own content (sample
// count, framed size, last sample time) through the tracer's CostModel,
// so the client, the collector service, and the campaign recorder all
// position the same batch's spans identically without exchanging clocks.
// Only reconnect backoff — a real-time phenomenon — is layered on top,
// as child spans of client.send.

// batchTrace resolves a batch to its trace handle plus the modeled
// inputs. The zero Trace (unsampled, nil tracer, empty batch) records
// nothing downstream.
func batchTrace(t *ptrace.Tracer, b *wire.Batch) (tr ptrace.Trace, first, last simclock.Time, n, bytes int) {
	if t == nil || len(b.Samples) == 0 {
		return ptrace.Trace{}, 0, 0, 0, 0
	}
	n = len(b.Samples)
	first = b.Samples[0].Time
	last = b.Samples[n-1].Time
	return t.Batch(b.Rack, b.Epoch, first), first, last, n, wire.EncodedSize(b)
}

// recordSendSpans records the client-side half of a batch's chain at
// flush time: poll.read spanning the batch's sample window (a stalled
// read widens it — that is how fault stalls become visible), the modeled
// wire.encode, and client.send. Reconnect waits, if any, stretch
// client.send and appear as sequential client.backoff children.
func recordSendSpans(t *ptrace.Tracer, b *wire.Batch, waits []simclock.Duration) {
	tr, first, last, n, bytes := batchTrace(t, b)
	if !tr.Sampled() {
		return
	}
	poll := tr.Start(ptrace.StagePollRead, first).SetBatch(n, bytes)
	if missed := missedPolls(b); missed > 0 {
		poll.SetFault(fmt.Sprintf("missed=%d", missed))
	}
	poll.End(last)

	m := t.Model()
	encStart, encEnd := m.Window(ptrace.StageWireEncode, last, n, bytes)
	enc := tr.Start(ptrace.StageWireEncode, encStart).SetBatch(n, bytes)
	enc.End(encEnd)

	sendStart, sendEnd := m.Window(ptrace.StageClientSend, last, n, bytes)
	var waited simclock.Duration
	cur := sendStart
	for _, w := range waits {
		bo := tr.Start(ptrace.StageClientBackoff, cur).SetParent(ptrace.StageClientSend)
		cur = cur.Add(w)
		bo.End(cur)
		waited += w
	}
	send := tr.Start(ptrace.StageClientSend, sendStart).SetBatch(n, bytes)
	send.End(sendEnd.Add(waited))
}

// missedPolls totals the Missed counters carried by a batch's samples.
func missedPolls(b *wire.Batch) uint64 {
	var total uint64
	for i := range b.Samples {
		total += uint64(b.Samples[i].Missed)
	}
	return total
}

// recordStageSpan records one modeled post-poll stage for a batch. The
// shared shape behind server.ingest, archive.write, and figures.apply.
func recordStageSpan(t *ptrace.Tracer, stage ptrace.Stage, b *wire.Batch) {
	tr, _, last, n, bytes := batchTrace(t, b)
	if !tr.Sampled() {
		return
	}
	start, end := t.Model().Window(stage, last, n, bytes)
	sp := tr.Start(stage, start).SetBatch(n, bytes)
	sp.End(end)
}

// recordGateSpan records the epoch.gate span with the admission verdict
// as a span attribute.
func recordGateSpan(t *ptrace.Tracer, b *wire.Batch, verdict string) {
	tr, _, last, n, bytes := batchTrace(t, b)
	if !tr.Sampled() {
		return
	}
	start, end := t.Model().Window(ptrace.StageEpochGate, last, n, bytes)
	sp := tr.Start(ptrace.StageEpochGate, start).SetVerdict(verdict)
	sp.End(end)
}

// TraceStage wraps next so every batch flowing through also records
// stage's modeled span. cmd binaries use it to instrument handler-chain
// links that live outside this package (mbcollectd's archive writer).
// A nil tracer returns next unchanged.
func TraceStage(t *ptrace.Tracer, stage ptrace.Stage, next BatchHandler) BatchHandler {
	if t == nil {
		return next
	}
	return func(b *wire.Batch) {
		recordStageSpan(t, stage, b)
		if next != nil {
			next(b)
		}
	}
}
