package collector_test

// Shard-kill/resume soak for the fleet collection plane, reusing the
// crash fault kinds from the durability work (internal/fault): seeded
// schedules of process kills, torn archive writes and silent short
// writes strike individual shards mid-campaign while the surviving
// racks keep delivering concurrently; every victim resurrects from its
// archive + checkpoint, the agents re-deliver their spool horizon, and
// the aggregator's fleet state must come out byte-identical to a
// single uninterrupted collector that ingested everything. Run under
// -race this also exercises concurrent Handle/Publish/Offer across the
// shard boundary.

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/fault"
	"mburst/internal/rng"
	"mburst/internal/shard"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

const (
	fleetCrashRacks    = 8
	fleetCrashShards   = 3
	fleetCrashBatches  = 24
	fleetCrashPerBatch = 6
	fleetCrashSpacing  = 25 * simclock.Microsecond
	fleetCrashWindow   = fleetCrashBatches * fleetCrashPerBatch * fleetCrashSpacing
)

// fleetCrashValues precomputes each rack's cumulative byte counter:
// alternating hot and idle stretches, phase-shifted per rack so shards
// see distinct traffic.
func fleetCrashValues() [][]uint64 {
	vals := make([][]uint64, fleetCrashRacks)
	for r := range vals {
		n := fleetCrashBatches * fleetCrashPerBatch
		v := make([]uint64, n)
		var acc uint64
		for s := 0; s < n; s++ {
			rate := uint64(3125)
			if ((s+r)/5)%2 == 1 {
				rate = 29687
			}
			acc += rate
			v[s] = acc
		}
		vals[r] = v
	}
	return vals
}

// fleetCrashBatch builds a fresh batch for rack r at index i; callers
// never share batch memory across deliveries.
func fleetCrashBatch(vals [][]uint64, r uint32, i int) *wire.Batch {
	b := &wire.Batch{Rack: r, Epoch: 1}
	for j := 0; j < fleetCrashPerBatch; j++ {
		s := i*fleetCrashPerBatch + j
		b.Samples = append(b.Samples, wire.Sample{
			Time: simclock.Epoch.Add(simclock.Duration(s) * fleetCrashSpacing),
			Port: uint16(1 + r%2), Dir: asic.TX, Kind: asic.KindBytes,
			Value: vals[r][s],
		})
	}
	return b
}

func fleetCrashFigures(t *testing.T) *collector.LiveFigures {
	t.Helper()
	lf, err := collector.NewLiveFigures(collector.LiveFiguresConfig{
		SpeedOf:  func(uint32, uint16) uint64 { return 10_000_000_000 },
		IsUplink: func(_ uint32, port uint16) bool { return port == 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return lf
}

// newDurableShard builds one durable shard incarnation over dir.
func newDurableShard(t *testing.T, pl *shard.Placement, id int, arch *trace.ArchiveWriter, dir string) *collector.Shard {
	t.Helper()
	s, err := collector.NewShard(collector.ShardConfig{
		ID:             id,
		Placement:      pl,
		Figures:        fleetCrashFigures(t),
		Stats:          &collector.IngestStats{},
		Archive:        arch,
		CheckpointPath: filepath.Join(dir, "checkpoint.json"),
		Every:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fleetCrashEvent is one scheduled strike against a shard.
type fleetCrashEvent struct {
	kind fault.Kind
	frac float64
}

// fleetCrashEvents maps a generated schedule's crash faults onto
// shards round-robin, at most one strike per shard per run. A schedule
// with no crash faults degenerates to a plain kill of shard 0 so every
// seed exercises resume.
func fleetCrashEvents(s fault.Schedule) map[int]fleetCrashEvent {
	events := make(map[int]fleetCrashEvent)
	n := 0
	for _, f := range s.Faults {
		switch f.Kind {
		case fault.KindCollectorKill, fault.KindTornWrite, fault.KindShortWrite:
			sh := n % fleetCrashShards
			n++
			if _, dup := events[sh]; !dup {
				events[sh] = fleetCrashEvent{kind: f.Kind, frac: f.Factor}
			}
		}
	}
	if len(events) == 0 {
		events[0] = fleetCrashEvent{kind: fault.KindCollectorKill}
	}
	return events
}

func TestShardKillResumeFleetExact(t *testing.T) {
	const seeds = 4
	const half = fleetCrashBatches / 2

	vals := fleetCrashValues()
	pl, err := shard.Uniform(fleetCrashShards, 0xfee7)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([][]uint32, fleetCrashShards)
	for r := uint32(0); r < fleetCrashRacks; r++ {
		sh := pl.ShardOf(r)
		owned[sh] = append(owned[sh], r)
	}

	// One uninterrupted oracle serves every schedule: a single volatile
	// collector pipeline fed each rack's full stream.
	oracle, err := collector.NewShard(collector.ShardConfig{
		Figures: fleetCrashFigures(t),
		Stats:   &collector.IngestStats{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := uint32(0); r < fleetCrashRacks; r++ {
		for i := 0; i < fleetCrashBatches; i++ {
			oracle.Handle(fleetCrashBatch(vals, r, i))
		}
	}
	want := oracle.Publish()

	for seed := uint64(0); seed < seeds; seed++ {
		sched := fault.Generate(rng.New(seed).Split("fleetcrash"), fault.CrashMix(), fleetCrashWindow)
		events := fleetCrashEvents(sched)

		agg, err := collector.NewAggregator(collector.AggregatorConfig{Shards: fleetCrashShards})
		if err != nil {
			t.Fatal(err)
		}

		dirs := make([]string, fleetCrashShards)
		chaos := make([]*fault.WriteChaos, fleetCrashShards)
		cfgs := make([]trace.ArchiveConfig, fleetCrashShards)
		shards := make([]*collector.Shard, fleetCrashShards)
		for k := 0; k < fleetCrashShards; k++ {
			dirs[k] = filepath.Join(t.TempDir(), "shard")
			chaos[k] = fault.NewWriteChaos(nil)
			cfgs[k] = trace.ArchiveConfig{SegmentBatches: 8, SyncEvery: 2, WrapWrites: chaos[k].Wrap}
			arch, err := trace.CreateArchive(dirs[k], cfgs[k])
			if err != nil {
				t.Fatal(err)
			}
			shards[k] = newDurableShard(t, &pl, k, arch, dirs[k])
		}

		// deliver fans racks out concurrently, one goroutine per rack,
		// each publishing shard cuts into the aggregator along the way.
		lastSeq := make([]uint64, fleetCrashShards)
		deliver := func(lo, hi int) {
			var wg sync.WaitGroup
			for r := uint32(0); r < fleetCrashRacks; r++ {
				wg.Add(1)
				go func(r uint32) {
					defer wg.Done()
					sh := shards[pl.ShardOf(r)]
					for i := lo; i < hi; i++ {
						sh.Handle(fleetCrashBatch(vals, r, i))
					}
				}(r)
			}
			for k := 0; k < fleetCrashShards; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					for p := 0; p < 3; p++ {
						u := shards[k].Publish()
						lastSeq[k] = u.Seq
						agg.Offer(u)
					}
				}(k)
			}
			wg.Wait()
		}

		deliver(0, half)

		// Strike: each scheduled fault kills one shard mid-campaign. The
		// victim resurrects from disk, and the agents re-deliver their
		// spool horizon; the restored epoch gate dedups the overlap.
		for k := 0; k < fleetCrashShards; k++ {
			ev, hit := events[k]
			if !hit {
				continue
			}
			switch ev.kind {
			case fault.KindTornWrite:
				if len(owned[k]) == 0 {
					break
				}
				chaos[k].ArmTorn(ev.frac)
				shards[k].Handle(fleetCrashBatch(vals, owned[k][0], half))
				if shards[k].Err() == nil {
					t.Fatalf("seed %d (%s): torn write on shard %d did not latch the pipeline", seed, sched, k)
				}
			case fault.KindShortWrite:
				if len(owned[k]) == 0 {
					break
				}
				chaos[k].ArmShort(ev.frac)
				shards[k].Handle(fleetCrashBatch(vals, owned[k][0], half))
				if shards[k].Err() != nil {
					t.Fatalf("seed %d (%s): short write on shard %d surfaced an error — the lie must be silent", seed, sched, k)
				}
			}
			// Kill: abandon the incarnation (no Close, no final sync) and
			// resurrect from the recovered archive tail.
			arch2, _, err := trace.ResumeArchive(dirs[k], cfgs[k])
			if err != nil {
				t.Fatalf("seed %d (%s): resume archive for shard %d: %v", seed, sched, k, err)
			}
			s2 := newDurableShard(t, &pl, k, arch2, dirs[k])
			dir := dirs[k]
			if _, err := s2.Resume(func(fn func(*wire.Batch) error) error {
				return trace.IterArchive(dir, fn)
			}); err != nil {
				t.Fatalf("seed %d (%s): resume shard %d: %v", seed, sched, k, err)
			}
			s2.ResumeSeq(lastSeq[k])
			shards[k] = s2
			for _, r := range owned[k] {
				for i := 0; i <= half; i++ {
					s2.Handle(fleetCrashBatch(vals, r, i))
				}
			}
		}

		deliver(half, fleetCrashBatches)

		// Final cuts must land: the blocking path, then a fence so the
		// merge sees them.
		for k := 0; k < fleetCrashShards; k++ {
			if err := shards[k].Err(); err != nil {
				t.Fatalf("seed %d (%s): shard %d latched %v", seed, sched, k, err)
			}
			u := shards[k].Publish()
			agg.Deliver(u)
		}
		st, err := func() (collector.FleetState, error) {
			defer agg.Close()
			agg.Flush()
			return agg.FleetState()
		}()
		if err != nil {
			t.Fatalf("seed %d (%s): fleet merge: %v", seed, sched, err)
		}

		if !reflect.DeepEqual(st.Figures, want.Figures) {
			t.Errorf("seed %d (%s): fleet figures diverge from the uninterrupted collector", seed, sched)
		}
		if !reflect.DeepEqual(st.Ingest, want.Ingest) {
			t.Errorf("seed %d (%s): fleet ingest diverges: %+v vs %+v", seed, sched, st.Ingest, want.Ingest)
		}
		if st.Reporting != fleetCrashShards {
			t.Errorf("seed %d (%s): %d of %d shards reporting", seed, sched, st.Reporting, fleetCrashShards)
		}
	}
}
