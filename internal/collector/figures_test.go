package collector

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/wire"
)

const figSpeed = uint64(10_000_000_000)

// figBatches synthesizes a two-rack, two-port byte-counter stream with
// alternating hot and idle stretches, chunked into wire batches the way
// the ingest path delivers them.
func figBatches(seed uint64, ticks, perBatch int) []*wire.Batch {
	src := rng.New(seed)
	cum := map[[2]uint32]uint64{}
	var batches []*wire.Batch
	for _, rack := range []uint32{0, 1} {
		var cur *wire.Batch
		for i := 0; i < ticks; i++ {
			if cur == nil {
				cur = &wire.Batch{Rack: rack}
			}
			for _, port := range []uint16{1, 2} {
				util := 0.05 + 0.1*src.Float64()
				if (i/5)%2 == 1 {
					util = 0.7 + 0.3*src.Float64()
				}
				k := [2]uint32{rack, uint32(port)}
				cum[k] += uint64(util * float64(figSpeed) / 8 * 25e-6)
				cur.Samples = append(cur.Samples, wire.Sample{
					Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
					Port:  port,
					Dir:   asic.TX,
					Kind:  asic.KindBytes,
					Value: cum[k],
				})
				// Non-byte samples must be ignored by the tap.
				cur.Samples = append(cur.Samples, wire.Sample{
					Time: simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
					Port: port, Dir: asic.TX, Kind: asic.KindDrops,
				})
			}
			if len(cur.Samples) >= perBatch {
				batches = append(batches, cur)
				cur = nil
			}
		}
		if cur != nil {
			batches = append(batches, cur)
		}
	}
	return batches
}

// TestLiveFiguresMatchesBatchAnalysis replays a synthetic ingest stream
// through the tap and checks every snapshot statistic against the batch
// pipeline (UtilizationSeries, Bursts, InterBurstGaps, FitMarkov) run on
// the same per-series samples.
func TestLiveFiguresMatchesBatchAnalysis(t *testing.T) {
	fig, err := NewLiveFigures(LiveFiguresConfig{
		SpeedOf:  func(uint32, uint16) uint64 { return figSpeed },
		IsUplink: func(_ uint32, port uint16) bool { return port == 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	batches := figBatches(51, 200, 16)
	var forwarded int
	h := fig.Wrap(func(b *wire.Batch) { forwarded++ })
	perSeries := map[[2]uint32][]wire.Sample{}
	for _, b := range batches {
		h(b)
		for _, s := range b.Samples {
			if s.Kind == asic.KindBytes {
				perSeries[[2]uint32{b.Rack, uint32(s.Port)}] = append(perSeries[[2]uint32{b.Rack, uint32(s.Port)}], s)
			}
		}
	}
	if forwarded != len(batches) {
		t.Fatalf("Wrap forwarded %d batches, want %d", forwarded, len(batches))
	}

	snap := fig.Snapshot()
	if len(snap.Series) != 4 {
		t.Fatalf("snapshot has %d series, want 4", len(snap.Series))
	}
	var wantSamples uint64
	for _, s := range perSeries {
		wantSamples += uint64(len(s))
	}
	if snap.Samples != wantSamples {
		t.Errorf("Samples = %d, want %d (drop samples must not count)", snap.Samples, wantSamples)
	}

	var models []stats.MarkovModel
	wantUplinkHot, wantDownlinkHot := 0, 0
	for _, sf := range snap.Series {
		samples := perSeries[[2]uint32{sf.Rack, uint32(sf.Port)}]
		series, err := analysis.UtilizationSeries(samples, figSpeed)
		if err != nil {
			t.Fatalf("rack %d port %d: %v", sf.Rack, sf.Port, err)
		}
		hotSeq := make([]bool, len(series))
		hot := 0
		for i, p := range series {
			hotSeq[i] = p.Util > snap.Threshold
			if hotSeq[i] {
				hot++
			}
		}
		models = append(models, stats.FitMarkov(hotSeq))
		if sf.Port == 2 {
			wantUplinkHot += hot
		} else {
			wantDownlinkHot += hot
		}
		if sf.Points != len(series) || sf.HotPoints != hot {
			t.Errorf("rack %d port %d: points/hot = %d/%d, want %d/%d",
				sf.Rack, sf.Port, sf.Points, sf.HotPoints, len(series), hot)
		}

		bursts := analysis.Bursts(series, snap.Threshold)
		durations := analysis.BurstDurations(bursts)
		gaps := analysis.InterBurstGaps(bursts)
		closed := len(bursts)
		active := false
		if closed > 0 && bursts[closed-1].End == series[len(series)-1].End {
			// The batch path closes a trailing burst the streaming
			// segmenter still holds open.
			closed--
			active = true
			durations = durations[:closed]
			if len(gaps) > closed-1 && closed >= 1 {
				gaps = gaps[:closed-1]
			}
		}
		if sf.Bursts != closed || sf.ActiveBurst != active {
			t.Errorf("rack %d port %d: bursts/active = %d/%v, want %d/%v",
				sf.Rack, sf.Port, sf.Bursts, sf.ActiveBurst, closed, active)
		}
		if d := stats.NewECDF(durations); d.N() > 0 {
			if sf.BurstP50Micros != d.Quantile(0.5) || sf.BurstP99Micros != d.Quantile(0.99) {
				t.Errorf("rack %d port %d: burst quantiles %v/%v, want %v/%v",
					sf.Rack, sf.Port, sf.BurstP50Micros, sf.BurstP99Micros, d.Quantile(0.5), d.Quantile(0.99))
			}
		}
		if g := stats.NewECDF(gaps); g.N() > 0 {
			if sf.GapP50Micros != g.Quantile(0.5) || sf.GapP99Micros != g.Quantile(0.99) {
				t.Errorf("rack %d port %d: gap quantiles %v/%v, want %v/%v",
					sf.Rack, sf.Port, sf.GapP50Micros, sf.GapP99Micros, g.Quantile(0.5), g.Quantile(0.99))
			}
		}

		var sum, maxU float64
		var hist [20]uint64
		for _, p := range series {
			sum += p.Util
			maxU = math.Max(maxU, p.Util)
			bi := int(p.Util * 20)
			if bi < 0 {
				bi = 0
			}
			if bi >= 20 {
				bi = 19
			}
			hist[bi]++
		}
		if len(series) > 0 && (sf.MeanUtil != sum/float64(len(series)) || sf.MaxUtil != maxU) {
			t.Errorf("rack %d port %d: mean/max = %v/%v, want %v/%v",
				sf.Rack, sf.Port, sf.MeanUtil, sf.MaxUtil, sum/float64(len(series)), maxU)
		}
		for bi, n := range hist {
			if sf.UtilHist[bi] != n {
				t.Errorf("rack %d port %d: hist[%d] = %d, want %d", sf.Rack, sf.Port, bi, sf.UtilHist[bi], n)
			}
		}
	}
	if snap.UplinkHot != wantUplinkHot || snap.DownlinkHot != wantDownlinkHot {
		t.Errorf("hot split = %d/%d, want %d/%d", snap.UplinkHot, snap.DownlinkHot, wantUplinkHot, wantDownlinkHot)
	}
	merged := stats.MergeMarkov(models...)
	if snap.Markov.Transitions != merged.N {
		t.Errorf("Markov transitions = %d, want %d", snap.Markov.Transitions, merged.N)
	}
	if !math.IsNaN(merged.P[0][1]) && snap.Markov.P01 != merged.P[0][1] {
		t.Errorf("P01 = %v, want %v", snap.Markov.P01, merged.P[0][1])
	}
	if !math.IsNaN(merged.P[1][1]) && snap.Markov.P11 != merged.P[1][1] {
		t.Errorf("P11 = %v, want %v", snap.Markov.P11, merged.P[1][1])
	}
}

// TestLiveFiguresConcurrent hammers Handle and Snapshot from separate
// goroutines; the race detector checks the locking, the final snapshot
// checks nothing was lost.
func TestLiveFiguresConcurrent(t *testing.T) {
	fig, err := NewLiveFigures(LiveFiguresConfig{
		SpeedOf: func(uint32, uint16) uint64 { return figSpeed },
	})
	if err != nil {
		t.Fatal(err)
	}
	batches := figBatches(52, 400, 8)
	var feeders sync.WaitGroup
	for w := 0; w < 4; w++ {
		feeders.Add(1)
		go func(w int) {
			defer feeders.Done()
			for i := w; i < len(batches); i += 4 {
				fig.Handle(batches[i])
			}
		}(w)
	}
	stop := make(chan struct{})
	snapped := make(chan struct{})
	go func() {
		defer close(snapped)
		for {
			select {
			case <-stop:
				return
			default:
				fig.Snapshot()
			}
		}
	}()
	feeders.Wait()
	close(stop)
	<-snapped

	var want uint64
	for _, b := range batches {
		for _, s := range b.Samples {
			if s.Kind == asic.KindBytes {
				want++
			}
		}
	}
	if got := fig.Snapshot().Samples; got != want {
		t.Errorf("Samples = %d, want %d", got, want)
	}
}

func TestLiveFiguresHTTP(t *testing.T) {
	fig, err := NewLiveFigures(LiveFiguresConfig{
		SpeedOf: func(uint32, uint16) uint64 { return figSpeed },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range figBatches(53, 50, 16) {
		fig.Handle(b)
	}
	rec := httptest.NewRecorder()
	fig.ServeHTTP(rec, httptest.NewRequest("GET", "/figures", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /figures = %d", rec.Code)
	}
	var snap FiguresSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Samples == 0 || len(snap.Series) == 0 {
		t.Errorf("served snapshot is empty: %+v", snap)
	}
	rec = httptest.NewRecorder()
	fig.ServeHTTP(rec, httptest.NewRequest("POST", "/figures", nil))
	if rec.Code != 405 {
		t.Errorf("POST /figures = %d, want 405", rec.Code)
	}
	if _, err := NewLiveFigures(LiveFiguresConfig{}); err == nil {
		t.Error("nil SpeedOf accepted")
	}
}
