package collector

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"mburst/internal/asic"
	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func mkSample(i int) wire.Sample {
	return wire.Sample{
		Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
		Port:  uint16(i % 4),
		Dir:   asic.TX,
		Kind:  asic.KindBytes,
		Value: uint64(i) * 1000,
	}
}

func TestClientBatching(t *testing.T) {
	var buf bytes.Buffer
	c := NewClient(&buf, 3, 10)
	for i := 0; i < 25; i++ {
		c.Emit(mkSample(i))
	}
	// 2 full batches flushed, 5 samples pending.
	r := wire.NewReader(bytes.NewReader(buf.Bytes()))
	total := 0
	for {
		b, err := r.ReadBatch()
		if err != nil {
			break
		}
		if b.Rack != 3 {
			t.Errorf("rack = %d", b.Rack)
		}
		total += len(b.Samples)
	}
	if total != 20 {
		t.Errorf("auto-flushed %d samples, want 20", total)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	r = wire.NewReader(bytes.NewReader(buf.Bytes()))
	total = 0
	for {
		b, err := r.ReadBatch()
		if err != nil {
			break
		}
		total += len(b.Samples)
	}
	if total != 25 {
		t.Errorf("after flush: %d samples, want 25", total)
	}
}

type failWriter struct{ fail bool }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.fail {
		return 0, errors.New("boom")
	}
	return len(p), nil
}

func TestClientStickyError(t *testing.T) {
	fw := &failWriter{fail: true}
	c := NewClient(fw, 1, 2)
	c.Emit(mkSample(0))
	c.Emit(mkSample(1)) // triggers failing flush
	if err := c.Flush(); err == nil {
		t.Fatal("expected error")
	}
	fw.fail = false
	if err := c.Flush(); err == nil {
		t.Error("error should be sticky")
	}
}

func TestClientDefaultBatchSize(t *testing.T) {
	c := NewClient(&bytes.Buffer{}, 0, 0)
	if c.maxBatch != DefaultBatchSize {
		t.Errorf("maxBatch = %d", c.maxBatch)
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, 9, 16)
	const n = 100
	for i := 0; i < n; i++ {
		c.Emit(mkSample(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Wait for the server goroutine to drain the stream.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(sink.Samples()) == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d samples", len(sink.Samples()), n)
		}
		time.Sleep(time.Millisecond)
	}
	got := sink.Samples()
	for i, s := range got {
		if s != mkSample(i) {
			t.Fatalf("sample %d corrupted in transit: %+v", i, s)
		}
	}
	if sink.Batches() == 0 {
		t.Error("no batches recorded")
	}
	if err := srv.LastErr(); err != nil {
		t.Errorf("server error: %v", err)
	}
}

func TestServerMultipleClients(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	const clients, per = 4, 50
	done := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		go func(cl int) {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				done <- err
				return
			}
			c := NewClient(conn, uint32(cl), 7)
			for i := 0; i < per; i++ {
				c.Emit(mkSample(i))
			}
			done <- c.Close()
		}(cl)
	}
	for i := 0; i < clients; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Samples()) < clients*per {
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d", len(sink.Samples()), clients*per)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("this is not a batch stream at all, not even close"))
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.LastErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never flagged the corrupt stream")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(srv.LastErr(), wire.ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", srv.LastErr())
	}
}

func TestServeConfiguredInjectedClock(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic clock that advances 40 µs per reading: every batch
	// must be stamped with exactly that latency, proving the ingest path
	// reads the injected clock and never the wall clock.
	var mu sync.Mutex
	fake := time.Unix(0, 0)
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		fake = fake.Add(40 * time.Microsecond)
		return fake
	}
	reg := obs.NewRegistry()
	m := NewServerMetrics(reg)
	sink := &MemSink{}
	srv := ServeConfigured(ln, sink.Handle, ServerConfig{Metrics: m, Now: now})
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, 1, 4)
	for i := 0; i < 4; i++ {
		c.Emit(mkSample(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.IngestLatency.Count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no ingest latency observation recorded")
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := m.IngestLatency.Sum(), 40.0; got != want {
		t.Errorf("ingest latency sum = %v µs, want exactly %v (injected clock step)", got, want)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, (&MemSink{}).Handle)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestServeNilHandlerPanics(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	Serve(ln, nil)
}
