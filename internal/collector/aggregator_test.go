package collector

import (
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/shard"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// fleetBatches synthesizes one byte-counter stream per rack — monotone
// cumulative counters with alternating hot and idle stretches, chunked
// into wire batches — keyed by rack so tests can deliver each rack's
// stream in order while racks interleave freely.
func fleetBatches(racks int, seed uint64, ticks, perBatch int) map[uint32][]*wire.Batch {
	out := make(map[uint32][]*wire.Batch, racks)
	for r := 0; r < racks; r++ {
		rack := uint32(r)
		src := rng.New(seed).Split(fmt.Sprintf("rack/%d", rack))
		var cum uint64
		var cur *wire.Batch
		for i := 0; i < ticks; i++ {
			if cur == nil {
				cur = &wire.Batch{Rack: rack, Epoch: 1}
			}
			util := 0.05 + 0.1*src.Float64()
			if (i/5)%2 == 1 {
				util = 0.7 + 0.3*src.Float64()
			}
			cum += uint64(util * float64(figSpeed) / 8 * 25e-6)
			cur.Samples = append(cur.Samples, wire.Sample{
				Time:  simclock.Epoch.Add(simclock.Micros(int64(i) * 25)),
				Port:  uint16(1 + r%2),
				Dir:   asic.TX,
				Kind:  asic.KindBytes,
				Value: cum,
			})
			if len(cur.Samples) >= perBatch {
				out[rack] = append(out[rack], cur)
				cur = nil
			}
		}
		if cur != nil {
			out[rack] = append(out[rack], cur)
		}
	}
	return out
}

func fleetFiguresConfig() LiveFiguresConfig {
	return LiveFiguresConfig{
		SpeedOf:  func(uint32, uint16) uint64 { return figSpeed },
		IsUplink: func(_ uint32, port uint16) bool { return port == 2 },
	}
}

// newVolatileShard builds one volatile shard over the placement.
func newVolatileShard(t *testing.T, pl shard.Placement, id int) *Shard {
	t.Helper()
	fig, err := NewLiveFigures(fleetFiguresConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShard(ShardConfig{
		ID: id, Placement: &pl, Figures: fig, Stats: &IngestStats{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedFleetMatchesOracle is the in-package half of the tentpole
// equivalence claim: for several shard counts, racks delivered
// concurrently through placed shards and merged by the aggregator yield
// figures and ingest totals bit-identical to one collector that saw
// every batch.
func TestShardedFleetMatchesOracle(t *testing.T) {
	const racks = 12
	streams := fleetBatches(racks, 77, 120, 16)

	// Oracle: a single unsharded pipeline fed everything.
	oracleFig, err := NewLiveFigures(fleetFiguresConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracleStats := &IngestStats{}
	oracle, err := NewShard(ShardConfig{Figures: oracleFig, Stats: oracleStats})
	if err != nil {
		t.Fatal(err)
	}
	for _, batches := range streams {
		for _, b := range batches {
			oracle.Handle(b)
		}
	}
	wantFigures := oracleFig.State()
	wantIngest := oracleStats.Snapshot()
	wantSnap := oracleFig.Snapshot()

	for _, nShards := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			pl, err := shard.Uniform(nShards, 42)
			if err != nil {
				t.Fatal(err)
			}
			shards := make([]*Shard, nShards)
			for i := range shards {
				shards[i] = newVolatileShard(t, pl, i)
			}
			agg, err := NewAggregator(AggregatorConfig{
				Shards: nShards, Figures: fleetFiguresConfig(),
			})
			if err != nil {
				t.Fatal(err)
			}

			// One goroutine per rack preserves per-rack order while racks
			// interleave arbitrarily — the fan-in shape a fleet has.
			var wg sync.WaitGroup
			for rack, batches := range streams {
				wg.Add(1)
				go func(rack uint32, batches []*wire.Batch) {
					defer wg.Done()
					target := shards[pl.ShardOf(rack)]
					for _, b := range batches {
						target.Handle(b)
					}
				}(rack, batches)
			}
			wg.Wait()
			for _, s := range shards {
				agg.Deliver(s.Publish())
			}
			agg.Flush()

			st, err := agg.FleetState()
			if err != nil {
				t.Fatal(err)
			}
			if st.Reporting != nShards {
				t.Errorf("Reporting = %d, want %d", st.Reporting, nShards)
			}
			if !reflect.DeepEqual(st.Figures, wantFigures) {
				t.Error("fleet figures state differs from single-collector oracle")
			}
			if !reflect.DeepEqual(st.Ingest, wantIngest) {
				t.Errorf("fleet ingest %+v differs from oracle %+v", st.Ingest, wantIngest)
			}
			snap, err := agg.FleetFigures()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(snap, wantSnap) {
				t.Error("rendered fleet snapshot differs from oracle snapshot")
			}
			agg.Close()
		})
	}
}

// TestShardMisroutedDrop pins the ownership guard: a shard drops and
// counts batches the placement maps elsewhere, keeping its accumulators
// clean for the disjoint fleet merge.
func TestShardMisroutedDrop(t *testing.T) {
	pl, err := shard.Uniform(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	var rackMine, rackOther uint32
	for r := uint32(0); r < 100; r++ {
		if pl.ShardOf(r) == 0 {
			rackMine = r
		} else {
			rackOther = r
		}
	}
	reg := obs.NewRegistry()
	fig, err := NewLiveFigures(fleetFiguresConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewShardMetrics(reg)
	s, err := NewShard(ShardConfig{ID: 0, Placement: &pl, Figures: fig, Stats: &IngestStats{}, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(rack uint32) *wire.Batch {
		return &wire.Batch{Rack: rack, Epoch: 1, Samples: []wire.Sample{{
			Time: simclock.Epoch.Add(simclock.Micros(25)), Port: 1, Dir: asic.TX,
			Kind: asic.KindBytes, Value: 100,
		}}}
	}
	s.Handle(mk(rackMine))
	s.Handle(mk(rackOther))
	if got := m.Misrouted.Value(); got != 1 {
		t.Errorf("Misrouted = %d, want 1", got)
	}
	if st := fig.State(); len(st.Series) != 1 || st.Series[0].Rack != rackMine {
		t.Errorf("shard accumulated a misrouted rack: %+v", st.Series)
	}

	// The standalone filter behaves identically.
	var forwarded int
	h, err := NewShardFilter(pl, 0, m, func(*wire.Batch) { forwarded++ })
	if err != nil {
		t.Fatal(err)
	}
	h(mk(rackMine))
	h(mk(rackOther))
	if forwarded != 1 {
		t.Errorf("filter forwarded %d, want 1", forwarded)
	}
	if _, err := NewShardFilter(pl, 9, nil, nil); err == nil {
		t.Error("out-of-placement shard id must be rejected")
	}
}

// TestAggregatorBackpressureExactness pins the drop/deferral accounting
// to exact counts: with the drain stalled, the queue accepts exactly its
// depth, Offer drops everything beyond it, and Deliver defers once.
func TestAggregatorBackpressureExactness(t *testing.T) {
	const depth = 4
	reg := obs.NewRegistry()
	m := NewAggregatorMetrics(reg)
	agg, err := NewAggregator(AggregatorConfig{Shards: 1, QueueDepth: depth, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	agg.setHook(func(ShardUpdate) {
		entered <- struct{}{}
		<-release
	})

	seq := uint64(0)
	next := func() ShardUpdate { seq++; return ShardUpdate{Shard: 0, Seq: seq} }

	// First update is dequeued and stalls in the hook; the queue behind
	// it is empty again.
	if !agg.Offer(next()) {
		t.Fatal("first offer rejected")
	}
	<-entered

	for i := 0; i < depth; i++ {
		if !agg.Offer(next()) {
			t.Fatalf("offer %d rejected with %d slots free", i, depth)
		}
	}
	const extra = 5
	for i := 0; i < extra; i++ {
		if agg.Offer(next()) {
			t.Fatalf("offer accepted on a full queue")
		}
	}
	if got := m.Dropped.Value(); got != extra {
		t.Errorf("Dropped = %d, want %d", got, extra)
	}

	// Deliver on the full queue defers exactly once, then blocks until
	// the drain frees a slot.
	done := make(chan struct{})
	go func() {
		agg.Deliver(next())
		close(done)
	}()
	for m.Deferred.Value() == 0 {
		runtime.Gosched()
	}
	agg.setHook(nil)
	close(release)
	<-done
	agg.Flush()

	if got := m.Deferred.Value(); got != 1 {
		t.Errorf("Deferred = %d, want 1", got)
	}
	wantEnqueued := uint64(1 + depth + 1)
	if got := m.Enqueued.Value(); got != wantEnqueued {
		t.Errorf("Enqueued = %d, want %d", got, wantEnqueued)
	}
	if got := m.Applied.Value() + m.Stale.Value(); got != wantEnqueued {
		t.Errorf("Applied+Stale = %d, want %d (every enqueued update drained)", got, wantEnqueued)
	}
	agg.Close()
}

// TestAggregatorConcurrentDelivery hammers the fan-in from many
// publishers under the race detector and checks the accounting
// equalities hold exactly: offered = enqueued + dropped, and
// enqueued = applied + stale.
func TestAggregatorConcurrentDelivery(t *testing.T) {
	const (
		nShards    = 8
		publishers = 4 // per shard
		updates    = 50
	)
	reg := obs.NewRegistry()
	m := NewAggregatorMetrics(reg)
	agg, err := NewAggregator(AggregatorConfig{Shards: nShards, QueueDepth: 2, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	var offered, accepted struct {
		mu sync.Mutex
		n  uint64
	}
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		for p := 0; p < publishers; p++ {
			wg.Add(1)
			go func(s, p int) {
				defer wg.Done()
				for i := 0; i < updates; i++ {
					u := ShardUpdate{Shard: s, Seq: uint64(p*updates + i + 1)}
					if i == updates-1 {
						agg.Deliver(u)
						accepted.mu.Lock()
						accepted.n++
						accepted.mu.Unlock()
					} else if agg.Offer(u) {
						accepted.mu.Lock()
						accepted.n++
						accepted.mu.Unlock()
					}
					offered.mu.Lock()
					offered.n++
					offered.mu.Unlock()
				}
			}(s, p)
		}
	}
	wg.Wait()
	agg.Flush()

	if got := m.Enqueued.Value(); got != accepted.n {
		t.Errorf("Enqueued = %d, want %d", got, accepted.n)
	}
	if got := m.Enqueued.Value() + m.Dropped.Value(); got != offered.n {
		t.Errorf("Enqueued+Dropped = %d, want offered %d", got, offered.n)
	}
	if got := m.Applied.Value() + m.Stale.Value(); got != accepted.n {
		t.Errorf("Applied+Stale = %d, want %d (exact drain accounting)", got, accepted.n)
	}
	st, err := agg.FleetState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reporting != nShards {
		t.Errorf("Reporting = %d, want %d", st.Reporting, nShards)
	}
	// Deliver guarantees each publisher's final update landed; the
	// retained seq per shard is the max over publishers.
	for i, seq := range st.Seqs {
		if seq != publishers*updates {
			t.Errorf("shard %d retained seq %d, want %d", i, seq, publishers*updates)
		}
	}
	agg.Close()
}

// TestFleetCheckpointComposeRestore proves the fleet checkpoint is the
// exact composition of shard checkpoints: composing, persisting,
// loading and restoring it into a fresh aggregator reproduces the fleet
// state, and a live shard update supersedes the restored seed state.
func TestFleetCheckpointComposeRestore(t *testing.T) {
	const racks, nShards = 8, 3
	pl, err := shard.Uniform(nShards, 5)
	if err != nil {
		t.Fatal(err)
	}
	streams := fleetBatches(racks, 9, 80, 16)
	shards := make([]*Shard, nShards)
	for i := range shards {
		shards[i] = newVolatileShard(t, pl, i)
	}
	for rack, batches := range streams {
		for _, b := range batches {
			shards[pl.ShardOf(rack)].Handle(b)
		}
	}

	states := make([]CheckpointState, nShards)
	for i, s := range shards {
		states[i] = s.CheckpointState()
	}
	ck, err := ComposeFleetCheckpoint(pl, states)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet_checkpoint.json")
	if err := SaveFleetCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, ok, err := LoadFleetCheckpoint(path)
	if err != nil || !ok {
		t.Fatalf("LoadFleetCheckpoint: ok=%v err=%v", ok, err)
	}
	if !loaded.Placement.Equal(pl) {
		t.Error("loaded checkpoint placement differs")
	}

	agg, err := NewAggregator(AggregatorConfig{Shards: nShards, Figures: fleetFiguresConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	if err := agg.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	restored, err := agg.FleetState()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := loaded.FleetState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Figures, direct.Figures) || !reflect.DeepEqual(restored.Ingest, direct.Ingest) {
		t.Error("restored aggregator state differs from the checkpoint's own merge")
	}
	if restored.Reporting != nShards {
		t.Errorf("Reporting = %d, want %d", restored.Reporting, nShards)
	}

	// A restarted shard's first live update (Seq 1) supersedes the
	// restored Seq-0 seed.
	agg.Deliver(shards[0].Publish())
	agg.Flush()
	st, err := agg.FleetState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Seqs[0] != 1 {
		t.Errorf("live update did not supersede restored seed: seq = %d", st.Seqs[0])
	}

	// Mismatched shard counts are rejected.
	if _, err := ComposeFleetCheckpoint(pl, states[:1]); err == nil {
		t.Error("compose with missing shard states must fail")
	}
	small, err := NewAggregator(AggregatorConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if err := small.Restore(loaded); err == nil {
		t.Error("restoring a 3-shard checkpoint into a 1-shard aggregator must fail")
	}
}
