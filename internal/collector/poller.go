// Package collector implements the high-resolution counter-collection
// framework of §4.1: a polling loop that reads ASIC counters at 10s to
// 100s of microseconds, batches samples, and ships them to a distributed
// collector service over TCP.
//
// The poller models the physics that limit real collection:
//
//   - Each counter kind has an ASIC access latency (asic.AccessCost);
//     registers are fast, the shared-buffer peak register is slow, which
//     is why the paper polls byte counters at 25 µs but the buffer at
//     50 µs.
//   - Polling several instances together grows cost sublinearly
//     ("Multiple counters can be polled together with a sublinear
//     increase in sampling rate", §4.1): additional instances of an
//     already-read kind cost half their access latency.
//   - "Polling intervals are best-effort as kernel interrupts and
//     competing resource requests can cause the sampler to miss
//     intervals": each poll pays a small uniform jitter and, with some
//     probability, an exponential interrupt delay. When the loop overruns
//     an interval boundary, that interval is missed — but the eventual
//     sample still carries the correct timestamp and cumulative value, so
//     throughput remains computable (Table 1 caption).
//
// With the default model a single byte counter misses ~100% of 1 µs
// intervals, ~10% of 10 µs intervals and ~1% of 25 µs intervals,
// reproducing Table 1.
package collector

import (
	"fmt"
	"math"
	"sync/atomic"

	"mburst/internal/asic"
	"mburst/internal/eventq"
	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// CounterSpec selects one counter instance to poll.
type CounterSpec struct {
	// Port is the switch port (ignored for KindBufferPeak).
	Port int
	// Dir selects RX or TX (ignored for KindDrops and KindBufferPeak).
	Dir asic.Direction
	// Kind is the counter family.
	Kind asic.CounterKind
}

// String formats the spec for diagnostics.
func (c CounterSpec) String() string {
	return fmt.Sprintf("%s/port%d/%s", c.Kind, c.Port, c.Dir)
}

// PollerConfig configures one measurement campaign's polling loop. The
// paper runs one campaign per set of experimental results, single-counter
// campaigns where the highest resolution is needed (§4.1).
type PollerConfig struct {
	// Interval is the target sampling interval.
	Interval simclock.Duration
	// Counters lists the instances read on every poll.
	Counters []CounterSpec
	// Rack tags emitted samples.
	Rack uint32

	// LoopOverhead is the fixed per-poll software cost (default 1 µs).
	LoopOverhead simclock.Duration
	// JitterFrac is the uniform relative jitter on the base cost
	// (default 0.1 → ±10%).
	JitterFrac float64
	// PInterrupt is the per-poll probability of a kernel interrupt
	// (default 0.145 with a dedicated core).
	PInterrupt float64
	// InterruptMean is the mean of the exponential interrupt delay
	// (default 8 µs).
	InterruptMean simclock.Duration
	// DedicatedCore pins the loop to its own core. Without it the paper
	// trades precision for ≤20% utilization; we model that as 4× the
	// interrupt probability.
	DedicatedCore bool

	// Metrics, when non-nil, receives per-poll telemetry (polls, missed
	// intervals, poll-cost histogram, CPU-busy). Leaving it nil costs the
	// loop nothing beyond a few predicted branches.
	Metrics *PollerMetrics

	// Fault, when non-nil, injects measurement-plane faults (read-latency
	// spikes, CPU stalls, stuck counter reads) into the loop. Offsets
	// passed to it are relative to Install time. fault.PollerInjector is
	// the standard implementation.
	Fault PollFault
}

// PollFault is the poller's fault-injection hook. Implementations must be
// deterministic functions of the offset (no wall clock, no unseeded
// randomness) or campaign reproducibility breaks.
type PollFault interface {
	// PollDelay returns extra poll cost for a poll starting at offset off
	// from Install, given the loop's fault-free base cost.
	PollDelay(off, base simclock.Duration) simclock.Duration
	// ReadStuck reports whether counter reads at offset off return the
	// previously latched values instead of reaching the ASIC.
	ReadStuck(off simclock.Duration) bool
}

func (c *PollerConfig) applyDefaults() {
	if c.LoopOverhead == 0 {
		c.LoopOverhead = simclock.Microsecond
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.1
	}
	if c.PInterrupt == 0 {
		c.PInterrupt = 0.145
	}
	if c.InterruptMean == 0 {
		c.InterruptMean = 8 * simclock.Microsecond
	}
}

// Validate checks the configuration against the switch.
func (c *PollerConfig) Validate(sw *asic.Switch) error {
	if c.Interval <= 0 {
		return fmt.Errorf("collector: non-positive interval %v", c.Interval)
	}
	if len(c.Counters) == 0 {
		return fmt.Errorf("collector: no counters to poll")
	}
	for _, spec := range c.Counters {
		if spec.Kind < 0 || spec.Kind > asic.KindECNMarks {
			return fmt.Errorf("collector: bad counter kind in %v", spec)
		}
		if spec.Port < 0 || spec.Port >= sw.NumPorts() {
			return fmt.Errorf("collector: port out of range in %v", spec)
		}
	}
	return nil
}

// Emitter receives completed samples. Client implements Emitter for
// network shipping; tests and in-process analyses use function adapters.
type Emitter interface {
	Emit(s wire.Sample)
}

// EmitterFunc adapts a function to Emitter.
type EmitterFunc func(s wire.Sample)

// Emit implements Emitter.
func (f EmitterFunc) Emit(s wire.Sample) { f(s) }

// Poller drives the sampling loop on a simulation scheduler.
type Poller struct {
	cfg  PollerConfig
	sw   *asic.Switch
	src  *rng.Source
	emit Emitter

	baseCost simclock.Duration

	sched   *eventq.Scheduler
	stopped bool

	// m holds nil-safe instruments; the zero value disables telemetry.
	// The loop is single-goroutine, so per-poll telemetry accumulates in
	// the plain tl* fields (and tlCost) and folds into m's shared atomics
	// every telemetryFlushEvery polls and on Stop — per-poll atomic RMWs
	// would be a measurable fraction of the ~100 ns poll path.
	m        PollerMetrics
	tlCost   *obs.LocalHistogram
	tlPolls  uint64
	tlBusy   uint64
	tlMissed uint64

	// samples/missed/busy are written by the sampling loop and read
	// concurrently by telemetry scrapers and campaign supervisors
	// (Samples/Missed/MissRate/CPUBusyFrac), so they are atomics.
	pendingMissed uint32
	samples       atomic.Uint64
	missed        atomic.Uint64
	busy          atomic.Int64 // simclock.Duration nanoseconds
	started       simclock.Time

	// lastRead latches the most recent value read for each counter spec so
	// a stuck-read fault can replay it. A stuck read never reaches the
	// ASIC: clear-on-read registers (buffer peak) keep accumulating, which
	// is the physically correct stale-latch behavior.
	lastRead []wire.Sample
}

// NewPoller validates the config and builds a poller.
func NewPoller(cfg PollerConfig, sw *asic.Switch, src *rng.Source, emit Emitter) (*Poller, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(sw); err != nil {
		return nil, err
	}
	if src == nil || emit == nil {
		return nil, fmt.Errorf("collector: nil source or emitter")
	}
	p := &Poller{cfg: cfg, sw: sw, src: src, emit: emit}
	if cfg.Metrics != nil {
		p.m = *cfg.Metrics
		p.tlCost = p.m.PollCost.Local()
	}
	p.baseCost = p.computeBaseCost()
	return p, nil
}

// computeBaseCost sums the per-poll counter access costs: the first
// instance of each kind pays full latency, further instances pay half
// (batched reads amortize addressing and bus turnaround).
func (p *Poller) computeBaseCost() simclock.Duration {
	seen := make(map[asic.CounterKind]bool)
	cost := p.cfg.LoopOverhead
	for _, spec := range p.cfg.Counters {
		c := asic.AccessCost(spec.Kind)
		if seen[spec.Kind] {
			cost += c / 2
		} else {
			cost += c
			seen[spec.Kind] = true
		}
	}
	return cost
}

// BaseCost returns the modeled cost of one poll with no interference.
// Exposed so campaigns can assert their interval is feasible.
func (p *Poller) BaseCost() simclock.Duration { return p.baseCost }

// Install arms the polling loop on the scheduler, first poll one interval
// from now.
func (p *Poller) Install(sched *eventq.Scheduler) {
	if p.sched != nil {
		panic("collector: Install called twice")
	}
	p.sched = sched
	p.started = sched.Now()
	p.scheduleAt(sched.Now().Add(p.cfg.Interval))
}

// telemetryFlushEvery is the poll count between registry flushes: at the
// paper's 25 µs interval, scrapes lag the loop by at most 1.6 ms.
const telemetryFlushEvery = 64

// Stop halts the loop after any in-flight poll completes and flushes the
// remaining batched telemetry.
func (p *Poller) Stop() {
	p.stopped = true
	if p.sched != nil {
		p.flushTelemetry(p.sched.Now())
	}
}

// flushTelemetry folds the batched per-poll telemetry into the shared
// instruments and refreshes the CPU-busy gauge.
func (p *Poller) flushTelemetry(now simclock.Time) {
	p.m.Polls.Add(p.tlPolls)
	p.m.BusyNanos.Add(p.tlBusy)
	p.m.Missed.Add(p.tlMissed)
	p.tlPolls, p.tlBusy, p.tlMissed = 0, 0, 0
	p.tlCost.Flush()
	if p.m.CPUBusy != nil {
		if elapsed := now.Sub(p.started); elapsed > 0 {
			p.m.CPUBusy.Set(float64(p.busy.Load()) / float64(elapsed))
		}
	}
}

// Samples returns the number of completed polls. Safe to call from any
// goroutine while the loop runs.
func (p *Poller) Samples() uint64 { return p.samples.Load() }

// Missed returns the number of missed sampling intervals. Safe to call
// from any goroutine while the loop runs.
func (p *Poller) Missed() uint64 { return p.missed.Load() }

// MissRate returns missed / (missed + samples) — the Table 1 metric: the
// fraction of scheduled sampling intervals in which no sample was taken.
// Safe to call from any goroutine while the loop runs.
func (p *Poller) MissRate() float64 {
	missed := p.missed.Load()
	total := missed + p.samples.Load()
	if total == 0 {
		return 0
	}
	return float64(missed) / float64(total)
}

// CPUBusyFrac returns the fraction of elapsed time the loop spent inside
// polls — the utilization cost the paper trades against precision.
func (p *Poller) CPUBusyFrac() float64 {
	if p.sched == nil {
		return 0
	}
	elapsed := p.sched.Now().Sub(p.started)
	if elapsed <= 0 {
		return 0
	}
	return float64(p.busy.Load()) / float64(elapsed)
}

// scheduleAt arms one poll beginning at due.
func (p *Poller) scheduleAt(due simclock.Time) {
	p.sched.At(due, func(start simclock.Time) {
		if p.stopped {
			return
		}
		cost := p.pollCost(start)
		p.busy.Add(int64(cost))
		p.tlBusy += uint64(cost)
		if p.tlCost != nil {
			p.tlCost.Observe(float64(cost) / 1e3)
		}
		completion := start.Add(cost)
		p.sched.At(completion, func(now simclock.Time) {
			if p.stopped {
				return
			}
			p.readAndEmit(now)
			// The next poll begins at the first interval boundary after
			// completion; boundaries overrun while polling are missed.
			k, missed, wireMissed := missedForOverrun(now.Sub(due), p.cfg.Interval)
			p.pendingMissed = wireMissed
			p.missed.Add(missed)
			p.tlMissed += missed
			if p.tlPolls >= telemetryFlushEvery {
				p.flushTelemetry(now)
			}
			p.scheduleAt(due.Add(simclock.Duration(k) * p.cfg.Interval))
		})
	})
}

// missedForOverrun converts a poll-completion overrun into the number of
// interval boundaries stepped over. k is the multiple of interval to the
// next free boundary, missed = k-1 the missed-interval count, and
// wireMissed the count clamped to the wire format's uint32 Missed field —
// an extreme overrun (e.g. a multi-second stall against a nanosecond
// interval) must saturate rather than silently truncate.
func missedForOverrun(overrun, interval simclock.Duration) (k int64, missed uint64, wireMissed uint32) {
	k = int64(overrun/interval) + 1
	missed = uint64(k - 1)
	if missed > math.MaxUint32 {
		return k, missed, math.MaxUint32
	}
	return k, missed, uint32(missed)
}

// pollCost samples the duration of one poll under the interference model,
// for a poll starting at instant start.
func (p *Poller) pollCost(start simclock.Time) simclock.Duration {
	jitter := 1 + p.cfg.JitterFrac*(2*p.src.Float64()-1)
	cost := simclock.Duration(float64(p.baseCost) * jitter)
	pi := p.cfg.PInterrupt
	if !p.cfg.DedicatedCore {
		pi *= 4
		if pi > 1 {
			pi = 1
		}
	}
	if p.src.Bool(pi) {
		cost += simclock.Duration(p.src.Exp(float64(p.cfg.InterruptMean)))
	}
	if p.cfg.Fault != nil {
		cost += p.cfg.Fault.PollDelay(start.Sub(p.started), p.baseCost)
	}
	return cost
}

// readAndEmit reads every configured counter and emits one sample each,
// all stamped with the completion time. While a stuck-read fault is
// active, reads replay the latched previous values without touching the
// ASIC — so clear-on-read registers keep accumulating and cumulative
// counters re-emit a stale (but still monotone) value.
func (p *Poller) readAndEmit(now simclock.Time) {
	p.samples.Add(1)
	p.tlPolls++
	stuck := p.cfg.Fault != nil && p.cfg.Fault.ReadStuck(now.Sub(p.started))
	if p.lastRead == nil {
		p.lastRead = make([]wire.Sample, len(p.cfg.Counters))
	}
	for i, spec := range p.cfg.Counters {
		s := wire.Sample{
			Time:   now,
			Port:   uint16(spec.Port),
			Dir:    spec.Dir,
			Kind:   spec.Kind,
			Missed: p.pendingMissed,
		}
		if stuck {
			s.Value = p.lastRead[i].Value
			s.Bins = p.lastRead[i].Bins
			p.emit.Emit(s)
			continue
		}
		port := p.sw.Port(spec.Port)
		switch spec.Kind {
		case asic.KindBytes:
			s.Value = port.Bytes(spec.Dir)
		case asic.KindPackets:
			s.Value = port.Packets(spec.Dir)
		case asic.KindSizeBins:
			s.Bins = port.SizeBins(spec.Dir)
		case asic.KindDrops:
			s.Value = port.Drops()
		case asic.KindBufferPeak:
			s.Value = uint64(p.sw.ReadPeakBufferAndClear())
		case asic.KindECNMarks:
			s.Value = port.ECNMarks()
		}
		p.lastRead[i] = s
		p.emit.Emit(s)
	}
	p.pendingMissed = 0
}
