package collector

import (
	"errors"
	"fmt"

	"mburst/internal/ptrace"
	"mburst/internal/shard"
	"mburst/internal/wire"
)

// This file is the shard-local half of the fleet collection plane. A
// Shard wraps the existing single-collector ingest path — epoch gate,
// optional durable archive (DurableIngest), ingest accounting and the
// live-figures tap — behind one BatchHandler plus a Publish method that
// cuts the shard's accumulator state into a ShardUpdate for the
// Aggregator. The pipeline inside is exactly the one mbcollectd runs
// standalone; sharding changes who dials it, not what it does, which is
// why the fleet merge can be byte-exact.

// ShardConfig assembles one shard-local ingest pipeline.
type ShardConfig struct {
	// ID is the shard's index in the placement; it tags every update the
	// shard publishes.
	ID int
	// Placement, when non-nil, polices ownership: batches from racks the
	// placement maps to another shard are dropped and counted as
	// misrouted instead of polluting the shard's accumulators (which
	// would make the fleet merge double-count).
	Placement *shard.Placement
	// Figures is the shard-local live-figures tap; required — its state
	// is what the aggregator merges into fleet figures.
	Figures *LiveFigures
	// Stats is the shard-local ingest accounting; required.
	Stats *IngestStats
	// Archive, when non-nil, makes the shard durable: batches flow
	// through DurableIngest's write-ahead discipline (gate → archive →
	// stats → figures → checkpoint) and the shard can crash and Resume.
	// When nil the shard is volatile: gate → stats → figures.
	Archive ArchiveSink
	// CheckpointPath / Every configure the durable shard's checkpoint
	// cadence; see DurableIngestConfig. Ignored when Archive is nil.
	CheckpointPath string
	Every          int
	// GateMetrics feeds the epoch gate's drop counters; may be nil.
	GateMetrics *ServerMetrics
	// RecoveryMetrics receives the durable shard's durability telemetry;
	// may be nil.
	RecoveryMetrics *RecoveryMetrics
	// Metrics receives shard-level telemetry (misrouted drops, published
	// updates); may be nil.
	Metrics *ShardMetrics
	// Tracer, when non-nil, records the shard pipeline's spans.
	Tracer *ptrace.Tracer
}

// Shard is one collector shard: the shard-local ingest pipeline plus
// the publish surface the aggregation tier consumes.
type Shard struct {
	cfg     ShardConfig
	m       ShardMetrics
	handler BatchHandler
	ingest  *DurableIngest // nil when volatile
	seq     uint64         // owned by the single publisher goroutine; see Publish
}

// NewShard validates cfg and builds the pipeline.
func NewShard(cfg ShardConfig) (*Shard, error) {
	if cfg.Figures == nil {
		return nil, errors.New("collector: Shard needs a LiveFigures tap")
	}
	if cfg.Stats == nil {
		return nil, errors.New("collector: Shard needs an IngestStats")
	}
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(); err != nil {
			return nil, err
		}
		if cfg.ID < 0 || cfg.ID >= cfg.Placement.NumShards() {
			return nil, fmt.Errorf("collector: shard id %d outside placement of %d shards",
				cfg.ID, cfg.Placement.NumShards())
		}
	}
	s := &Shard{cfg: cfg}
	if cfg.Metrics != nil {
		s.m = *cfg.Metrics
	}
	if cfg.Archive != nil {
		ing, err := NewDurableIngest(DurableIngestConfig{
			Archive:        cfg.Archive,
			CheckpointPath: cfg.CheckpointPath,
			Every:          cfg.Every,
			Figures:        cfg.Figures,
			Stats:          cfg.Stats,
			GateMetrics:    cfg.GateMetrics,
			Metrics:        cfg.RecoveryMetrics,
			Tracer:         cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		s.ingest = ing
		s.handler = ing.Handle
	} else {
		gate := NewEpochGate(cfg.Stats.Wrap(cfg.Figures.Wrap(nil)), cfg.GateMetrics)
		gate.SetTracer(cfg.Tracer)
		s.handler = gate.Handle
	}
	return s, nil
}

// ID returns the shard's placement index.
func (s *Shard) ID() int { return s.cfg.ID }

// Handle implements BatchHandler. Batches from racks the placement maps
// to another shard are dropped (and counted); owned batches flow into
// the shard-local pipeline. Safe for concurrent use — the inner
// pipeline serializes on its own locks.
func (s *Shard) Handle(b *wire.Batch) {
	if s.cfg.Placement != nil && s.cfg.Placement.ShardOf(b.Rack) != s.cfg.ID {
		s.m.Misrouted.Inc()
		return
	}
	s.handler(b)
}

// Publish cuts the shard's accumulator state into a ShardUpdate with
// the next sequence number. The figures and stats snapshots are each
// internally consistent but not a single atomic cut across both; the
// aggregator's fleet state is exact once traffic has quiesced (the
// final publish), which is the property the oracle equivalence tests
// pin down. Not safe for concurrent Publish calls with themselves —
// one publisher goroutine per shard is the intended shape.
func (s *Shard) Publish() ShardUpdate {
	s.seq++
	s.m.Published.Inc()
	return ShardUpdate{
		Shard:   s.cfg.ID,
		Seq:     s.seq,
		Figures: s.cfg.Figures.State(),
		Ingest:  s.cfg.Stats.Snapshot(),
	}
}

// ResumeSeq advances the publish sequence to at least seq, so a
// resurrected shard's first update supersedes its dead predecessor's
// in the aggregation tier instead of being discarded as stale. Call
// before the new incarnation's first Publish.
func (s *Shard) ResumeSeq(seq uint64) {
	if seq > s.seq {
		s.seq = seq
	}
}

// Checkpoint forces a durable checkpoint (clean-shutdown path). A
// volatile shard has nothing to persist and returns nil.
func (s *Shard) Checkpoint() error {
	if s.ingest == nil {
		return nil
	}
	return s.ingest.Checkpoint()
}

// CheckpointState cuts the shard's current state into the persisted
// checkpoint shape without touching disk — the raw material
// ComposeFleetCheckpoint assembles into a fleet-wide checkpoint. The
// archived-batches mark is only present on durable shards.
func (s *Shard) CheckpointState() CheckpointState {
	st := CheckpointState{}
	if s.cfg.Archive != nil {
		st.ArchivedBatches = s.cfg.Archive.Batches()
	}
	fs := s.cfg.Figures.State()
	st.Figures = &fs
	is := s.cfg.Stats.Snapshot()
	st.Ingest = &is
	return st
}

// Resume restores a durable shard from its last checkpoint and replays
// the archive tail; see DurableIngest.Resume. A volatile shard cannot
// resume.
func (s *Shard) Resume(iter func(func(*wire.Batch) error) error) (ResumeReport, error) {
	if s.ingest == nil {
		return ResumeReport{}, errors.New("collector: volatile shard cannot Resume")
	}
	return s.ingest.Resume(iter)
}

// Err returns the durable pipeline's sticky fatal error, if any.
func (s *Shard) Err() error {
	if s.ingest == nil {
		return nil
	}
	return s.ingest.Err()
}

// NewShardFilter wraps next so batches from racks the placement maps to
// a different shard are dropped and counted instead of forwarded — the
// standalone mbcollectd -shard guard, for deployments where agents dial
// through the same placement and a misrouted batch indicates a
// placement-generation mismatch.
func NewShardFilter(pl shard.Placement, self int, m *ShardMetrics, next BatchHandler) (BatchHandler, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if self < 0 || self >= pl.NumShards() {
		return nil, fmt.Errorf("collector: shard id %d outside placement of %d shards", self, pl.NumShards())
	}
	var sm ShardMetrics
	if m != nil {
		sm = *m
	}
	return func(b *wire.Batch) {
		if pl.ShardOf(b.Rack) != self {
			sm.Misrouted.Inc()
			return
		}
		if next != nil {
			next(b)
		}
	}, nil
}
