package collector

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// IngestStats tracks what a collector service has received and serves the
// counters as JSON over HTTP — the operational surface a production
// deployment of the collection framework needs (fleet dashboards watch
// per-rack ingest to spot dead samplers).
//
// Wrap an existing BatchHandler with Wrap, and mount the stats on a mux:
//
//	stats := &collector.IngestStats{}
//	srv := collector.Serve(ln, stats.Wrap(sink.Handle))
//	http.Handle("/stats", stats)
type IngestStats struct {
	mu         sync.Mutex
	batches    uint64
	samples    uint64
	perRack    map[uint32]uint64
	lastSample simclock.Time
}

// Wrap returns a BatchHandler that records b into the stats and then
// forwards to next (which may be nil for stats-only collection).
func (s *IngestStats) Wrap(next BatchHandler) BatchHandler {
	return func(b *wire.Batch) {
		s.mu.Lock()
		s.batches++
		s.samples += uint64(len(b.Samples))
		if s.perRack == nil {
			s.perRack = make(map[uint32]uint64)
		}
		s.perRack[b.Rack] += uint64(len(b.Samples))
		if n := len(b.Samples); n > 0 && b.Samples[n-1].Time > s.lastSample {
			s.lastSample = b.Samples[n-1].Time
		}
		s.mu.Unlock()
		if next != nil {
			next(b)
		}
	}
}

// Snapshot is the JSON shape served by the handler.
type Snapshot struct {
	Batches uint64 `json:"batches"`
	Samples uint64 `json:"samples"`
	// PerRack lists sample counts keyed by rack id, sorted for stable
	// output.
	PerRack []RackCount `json:"per_rack"`
	// LastSampleNanos is the newest sample timestamp seen (simulated
	// nanoseconds); dashboards alert when it stalls.
	LastSampleNanos int64 `json:"last_sample_nanos"`
}

// RackCount is one rack's ingest volume.
type RackCount struct {
	Rack    uint32 `json:"rack"`
	Samples uint64 `json:"samples"`
}

// Snapshot returns a copy of the current counters.
func (s *IngestStats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Batches:         s.batches,
		Samples:         s.samples,
		LastSampleNanos: s.lastSample.Nanoseconds(),
	}
	for rack, n := range s.perRack {
		snap.PerRack = append(snap.PerRack, RackCount{Rack: rack, Samples: n})
	}
	sort.Slice(snap.PerRack, func(i, j int) bool { return snap.PerRack[i].Rack < snap.PerRack[j].Rack })
	return snap
}

// ServeHTTP implements http.Handler, answering GETs with the JSON
// snapshot.
func (s *IngestStats) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
