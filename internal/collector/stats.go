package collector

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// IngestStats tracks what a collector service has received and serves the
// counters as JSON over HTTP — the operational surface a production
// deployment of the collection framework needs (fleet dashboards watch
// per-rack ingest to spot dead samplers).
//
// Wrap an existing BatchHandler with Wrap, and mount the stats on a mux:
//
//	stats := &collector.IngestStats{}
//	srv := collector.Serve(ln, stats.Wrap(sink.Handle))
//	http.Handle("/stats", stats)
type IngestStats struct {
	mu         sync.Mutex
	batches    uint64
	samples    uint64
	perRack    map[uint32]uint64
	lastSample simclock.Time

	// Registry mirror (Attach): counters aggregate alongside the mutex
	// state so /metrics and the JSON snapshot always agree.
	reg      *obs.Registry
	batchesC *obs.Counter
	samplesC *obs.Counter
	rackC    map[uint32]*obs.Counter
}

// Attach mirrors the ingest accounting onto reg: batches, samples,
// per-rack sample totals (mburst_ingest_rack_samples_total{rack="N"}) and
// the newest sample timestamp as a scrape-time gauge. Counters already
// accumulated are carried over, so Attach may happen mid-stream. Nil reg
// is a no-op.
func (s *IngestStats) Attach(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.batchesC = reg.Counter("mburst_ingest_batches_total",
		"Sample batches decoded and handled.")
	s.samplesC = reg.Counter("mburst_ingest_samples_total",
		"Counter samples ingested.")
	s.batchesC.Add(s.batches - s.batchesC.Value())
	s.samplesC.Add(s.samples - s.samplesC.Value())
	s.rackC = make(map[uint32]*obs.Counter, len(s.perRack))
	for rack, n := range s.perRack {
		c := s.rackCounterLocked(rack)
		c.Add(n - c.Value())
	}
	reg.GaugeFunc("mburst_ingest_last_sample_ns",
		"Newest ingested sample timestamp (simulated nanoseconds); alerts fire when it stalls.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.lastSample.Nanoseconds())
		})
}

// rackCounterLocked returns the per-rack sample counter, creating and
// caching it on first use. Caller holds s.mu.
func (s *IngestStats) rackCounterLocked(rack uint32) *obs.Counter {
	if c, ok := s.rackC[rack]; ok {
		return c
	}
	c := s.reg.Counter("mburst_ingest_rack_samples_total",
		"Counter samples ingested, by source rack.",
		obs.L("rack", strconv.FormatUint(uint64(rack), 10)))
	s.rackC[rack] = c
	return c
}

// Wrap returns a BatchHandler that records b into the stats and then
// forwards to next (which may be nil for stats-only collection).
func (s *IngestStats) Wrap(next BatchHandler) BatchHandler {
	return func(b *wire.Batch) {
		n := uint64(len(b.Samples))
		s.mu.Lock()
		s.batches++
		s.samples += n
		if s.perRack == nil {
			s.perRack = make(map[uint32]uint64)
		}
		s.perRack[b.Rack] += n
		if n > 0 && b.Samples[n-1].Time > s.lastSample {
			s.lastSample = b.Samples[n-1].Time
		}
		s.batchesC.Inc()
		s.samplesC.Add(n)
		if s.reg != nil {
			s.rackCounterLocked(b.Rack).Add(n)
		}
		s.mu.Unlock()
		if next != nil {
			next(b)
		}
	}
}

// Snapshot is the JSON shape served by the handler.
type Snapshot struct {
	Batches uint64 `json:"batches"`
	Samples uint64 `json:"samples"`
	// PerRack lists sample counts keyed by rack id, sorted for stable
	// output.
	PerRack []RackCount `json:"per_rack"`
	// LastSampleNanos is the newest sample timestamp seen (simulated
	// nanoseconds); dashboards alert when it stalls.
	LastSampleNanos int64 `json:"last_sample_nanos"`
}

// RackCount is one rack's ingest volume.
type RackCount struct {
	Rack    uint32 `json:"rack"`
	Samples uint64 `json:"samples"`
}

// Snapshot returns a copy of the current counters.
func (s *IngestStats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Batches:         s.batches,
		Samples:         s.samples,
		LastSampleNanos: s.lastSample.Nanoseconds(),
	}
	for rack, n := range s.perRack {
		snap.PerRack = append(snap.PerRack, RackCount{Rack: rack, Samples: n})
	}
	sort.Slice(snap.PerRack, func(i, j int) bool { return snap.PerRack[i].Rack < snap.PerRack[j].Rack })
	return snap
}

// ServeHTTP implements http.Handler, answering GETs with the JSON
// snapshot.
func (s *IngestStats) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
