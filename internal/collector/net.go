package collector

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mburst/internal/ptrace"
	"mburst/internal/wire"
)

// Client batches samples and ships them to a collector service as wire
// batches. It implements Emitter so it can be plugged directly into a
// Poller ("The CPU batches the samples before sending them to a
// distributed collector service", §4.1).
//
// Client is not safe for concurrent use; a switch runs one sampling loop.
type Client struct {
	w        *wire.Writer
	cw       countingWriter
	closer   io.Closer
	batch    wire.Batch
	maxBatch int
	err      error
	m        ClientMetrics
	tracer   *ptrace.Tracer
}

// DefaultBatchSize is the flush threshold in samples. At 25 µs sampling a
// batch of 2048 covers ~50 ms of data — small enough for timely delivery,
// large enough to amortize framing.
const DefaultBatchSize = 2048

// ClientConfig selects the client's batching and wire format.
type ClientConfig struct {
	// Rack stamps outgoing batches.
	Rack uint32
	// MaxBatch is the flush threshold; <= 0 selects DefaultBatchSize.
	MaxBatch int
	// Format selects the wire format written to the connection; the zero
	// value is wire.DefaultFormat. Servers decode every format per batch
	// magic, so no handshake is needed: the writer's choice at stream
	// open is the negotiation.
	Format wire.Format
}

// NewClient returns a client writing batches for rack to w in the default
// wire format. If w also implements io.Closer (e.g. a net.Conn), Close
// closes it. maxBatch <= 0 selects DefaultBatchSize.
func NewClient(w io.Writer, rack uint32, maxBatch int) *Client {
	c, err := NewClientConfigured(w, ClientConfig{Rack: rack, MaxBatch: maxBatch})
	if err != nil {
		panic(err) // unreachable: the zero format is always valid
	}
	return c
}

// NewClientConfigured is NewClient with an explicit configuration. It
// errors only on an unknown cfg.Format.
func NewClientConfigured(w io.Writer, cfg ClientConfig) (*Client, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultBatchSize
	}
	c := &Client{
		cw:       countingWriter{w: w},
		batch:    wire.Batch{Rack: cfg.Rack},
		maxBatch: cfg.MaxBatch,
	}
	bw, err := wire.NewWriterFormat(&c.cw, cfg.Format)
	if err != nil {
		return nil, err
	}
	c.w = bw
	if cl, ok := w.(io.Closer); ok {
		c.closer = cl
	}
	return c, nil
}

// SetMetrics attaches transport telemetry (batches, bytes, flush errors,
// delivered samples). Call before the first Emit; m may be nil.
func (c *Client) SetMetrics(m *ClientMetrics) {
	if m != nil {
		c.m = *m
	}
}

// SetEpoch sets the agent restart generation stamped on outgoing batches
// (see wire.Batch.Epoch). Epoch 0 keeps the legacy MBW1 framing.
func (c *Client) SetEpoch(epoch uint32) { c.batch.Epoch = epoch }

// SetTracer attaches pipeline tracing: every flushed batch records its
// poll.read/wire.encode/client.send spans. t may be nil.
func (c *Client) SetTracer(t *ptrace.Tracer) { c.tracer = t }

// Emit implements Emitter, buffering s and flushing a full batch.
// Transport errors are sticky and surfaced by Flush/Close.
func (c *Client) Emit(s wire.Sample) {
	if c.err != nil {
		return
	}
	c.batch.Samples = append(c.batch.Samples, s)
	if len(c.batch.Samples) >= c.maxBatch {
		c.err = c.flushLocked()
	}
}

// Flush sends any buffered samples.
func (c *Client) Flush() error {
	if c.err != nil {
		return c.err
	}
	c.err = c.flushLocked()
	return c.err
}

func (c *Client) flushLocked() error {
	if len(c.batch.Samples) == 0 {
		return nil
	}
	before := c.cw.n
	err := c.w.WriteBatch(&c.batch)
	c.m.Bytes.Add(c.cw.n - before)
	if err != nil {
		c.m.FlushErrors.Inc()
	} else {
		c.m.Batches.Inc()
		c.m.Delivered.Add(uint64(len(c.batch.Samples)))
		recordSendSpans(c.tracer, &c.batch, nil)
	}
	c.batch.Samples = c.batch.Samples[:0]
	return err
}

// Close flushes and closes the underlying transport.
func (c *Client) Close() error {
	flushErr := c.Flush()
	if c.closer != nil {
		if err := c.closer.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// BatchHandler consumes decoded batches. It may be called concurrently,
// once per connection goroutine. The batch (and its Samples slice) is
// only valid for the duration of the call — the server reuses it for the
// next batch on the connection — so handlers that retain samples must
// copy the values out.
type BatchHandler func(b *wire.Batch)

// ServerConfig tunes a Server beyond the defaults.
type ServerConfig struct {
	// Metrics, when non-nil, receives service telemetry (connection
	// counts, decode errors, per-batch ingest latency).
	Metrics *ServerMetrics
	// Now is the clock used to stamp ingest latency (default time.Now).
	// Simulated runs inject a deterministic clock so the poll path never
	// reads wall time (the same injection pattern as
	// ReconnectingClientConfig.Sleep).
	Now func() time.Time
	// EpochGate, when true, interposes an EpochGate ahead of the handler:
	// batches from superseded agent epochs and time-regressing duplicates
	// within an epoch are dropped before they can corrupt deltas. Opt-in
	// because replay workloads restart virtual time per window.
	EpochGate bool
	// Tracer, when non-nil, records server.ingest spans for every decoded
	// batch (and epoch.gate spans when EpochGate is set).
	Tracer *ptrace.Tracer
}

// Server is the collector service: it accepts switch connections and
// decodes their batch streams.
type Server struct {
	ln      net.Listener
	handler BatchHandler
	m       ServerMetrics
	now     func() time.Time
	tracer  *ptrace.Tracer

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	wg sync.WaitGroup

	errMu   sync.Mutex
	lastErr error
}

// Serve starts accepting connections on ln, dispatching every decoded
// batch to handler. It returns immediately; Close shuts the service down.
func Serve(ln net.Listener, handler BatchHandler) *Server {
	return ServeWith(ln, handler, nil)
}

// ServeWith is Serve with service telemetry attached (connection counts,
// decode errors, per-batch ingest latency). m may be nil.
func ServeWith(ln net.Listener, handler BatchHandler, m *ServerMetrics) *Server {
	return ServeConfigured(ln, handler, ServerConfig{Metrics: m})
}

// ServeConfigured is Serve with full configuration (telemetry and an
// injectable clock).
func ServeConfigured(ln net.Listener, handler BatchHandler, cfg ServerConfig) *Server {
	if handler == nil {
		panic("collector: nil handler")
	}
	if cfg.EpochGate {
		gate := NewEpochGate(handler, cfg.Metrics)
		gate.SetTracer(cfg.Tracer)
		handler = gate.Handle
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{}), now: cfg.Now, tracer: cfg.Tracer}
	if cfg.Metrics != nil {
		s.m = *cfg.Metrics
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// LastErr returns the most recent per-connection decode error, if any.
// A clean EOF is not an error.
func (s *Server) LastErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}

func (s *Server) setErr(err error) {
	s.errMu.Lock()
	s.lastErr = err
	s.errMu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.m.Conns.Inc()
	s.m.ActiveConns.Add(1)
	defer func() {
		conn.Close()
		s.m.ActiveConns.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := wire.NewReader(conn)
	// Handlers are synchronous (see BatchHandler), so the batch and its
	// samples can be recycled between reads: steady-state ingest does not
	// allocate.
	r.SetReuse(true)
	for {
		b, err := r.ReadBatch()
		if err != nil {
			if !errors.Is(err, io.EOF) && !isClosedConn(err) {
				s.m.DecodeErrors.Inc()
				s.setErr(fmt.Errorf("collector: conn %v: %w", conn.RemoteAddr(), err))
			}
			return
		}
		recordStageSpan(s.tracer, ptrace.StageServerIngest, b)
		if s.m.IngestLatency != nil {
			t0 := s.now()
			s.handler(b)
			s.m.IngestLatency.Observe(float64(s.now().Sub(t0)) / 1e3)
		} else {
			s.handler(b)
		}
	}
}

// isClosedConn reports whether err stems from the connection being closed
// underneath the reader during shutdown.
func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF)
}

// Close stops accepting, closes active connections, and waits for the
// connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// MemSink is a concurrency-safe in-memory batch handler, the simplest
// collector backend (tests, examples, single-process campaigns).
type MemSink struct {
	mu      sync.Mutex
	samples []wire.Sample
	batches int
}

// Handle implements BatchHandler.
func (m *MemSink) Handle(b *wire.Batch) {
	m.mu.Lock()
	m.samples = append(m.samples, b.Samples...)
	m.batches++
	m.mu.Unlock()
}

// Samples returns a copy of everything received so far.
func (m *MemSink) Samples() []wire.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wire.Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Batches returns the number of batches received.
func (m *MemSink) Batches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches
}
