package collector

import (
	"net"
	"testing"

	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func epochBatch(rack, epoch uint32, times ...int64) *wire.Batch {
	b := &wire.Batch{Rack: rack, Epoch: epoch}
	for _, t := range times {
		b.Samples = append(b.Samples, wire.Sample{Time: simclock.Time(t), Value: uint64(t)})
	}
	return b
}

func TestEpochGateOrdering(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewServerMetrics(reg)
	sink := &MemSink{}
	g := NewEpochGate(sink.Handle, m)

	accept := func(b *wire.Batch, want bool, what string) {
		t.Helper()
		before := len(sink.Samples())
		g.Handle(b)
		got := len(sink.Samples()) > before
		if got != want {
			t.Fatalf("%s: accepted=%v, want %v", what, got, want)
		}
	}

	accept(epochBatch(1, 0, 100, 200), true, "first epoch-0 batch")
	accept(epochBatch(1, 0, 300, 400), true, "in-order same-epoch batch")
	accept(epochBatch(1, 0, 300, 400), false, "duplicate batch")
	accept(epochBatch(1, 0, 150), false, "time-regressing batch")
	// Restart: epoch bumps, time legitimately restarts from zero.
	accept(epochBatch(1, 1, 50), true, "first batch of new epoch")
	accept(epochBatch(1, 0, 500), false, "stale-epoch straggler")
	accept(epochBatch(1, 1, 60), true, "new epoch continues")
	// Other racks are independent.
	accept(epochBatch(2, 0, 10), true, "rack 2 unaffected")

	if got := m.EpochRestarts.Value(); got != 1 {
		t.Errorf("EpochRestarts = %d, want 1", got)
	}
	if got := m.StaleBatches.Value(); got != 1 {
		t.Errorf("StaleBatches = %d, want 1", got)
	}
	if got := m.ReorderedBatches.Value(); got != 2 {
		t.Errorf("ReorderedBatches = %d, want 2", got)
	}
}

func TestEpochGateEmptyBatches(t *testing.T) {
	sink := &MemSink{}
	g := NewEpochGate(sink.Handle, nil)
	g.Handle(epochBatch(1, 0))      // empty, accepted, no horizon change
	g.Handle(epochBatch(1, 0, 100)) // fine
	g.Handle(epochBatch(1, 0))      // empty again
	g.Handle(epochBatch(1, 0, 50))  // regresses -> dropped
	g.Handle(epochBatch(1, 0, 150)) // fine
	if got := len(sink.Samples()); got != 2 {
		t.Fatalf("delivered %d samples, want 2", got)
	}
}

func TestServerEpochGateEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := ServeConfigured(ln, sink.Handle, ServerConfig{EpochGate: true})
	defer srv.Close()

	send := func(batches ...*wire.Batch) {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		w := wire.NewWriter(conn)
		for _, b := range batches {
			if err := w.WriteBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()
	}
	// The old incarnation delivers, dies; the new one (epoch 1) takes
	// over; a late retry from the old stream must be discarded.
	send(epochBatch(7, 0, 100, 200))
	waitFor(t, "epoch-0 delivery", func() bool { return len(sink.Samples()) == 2 })
	send(epochBatch(7, 1, 10, 20))
	waitFor(t, "epoch-1 delivery", func() bool { return len(sink.Samples()) == 4 })
	send(epochBatch(7, 0, 300)) // stale straggler
	send(epochBatch(7, 1, 30))  // live stream continues
	waitFor(t, "post-straggler delivery", func() bool { return len(sink.Samples()) == 5 })
	for _, s := range sink.Samples() {
		if s.Value == 300 {
			t.Fatal("stale-epoch straggler was delivered")
		}
	}
}
