package collector

import (
	"net"
	"sync"
	"testing"
	"time"

	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// TestIngestStatsConcurrentClients drives many simultaneous client
// connections into one collector.Serve and asserts that IngestStats (and
// its registry mirror) account every batch exactly once. Run under -race
// this exercises the Wrap handler from many connection goroutines at
// once — the production shape of the collector service.
func TestIngestStatsConcurrentClients(t *testing.T) {
	const (
		clients          = 8
		batchesPerClient = 25
		samplesPerBatch  = 64
	)

	reg := obs.NewRegistry()
	stats := &IngestStats{}
	stats.Attach(reg)
	sink := &MemSink{}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(ln, stats.Wrap(sink.Handle), NewServerMetrics(reg))

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(rack uint32) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("rack %d: dial: %v", rack, err)
				return
			}
			c := NewClient(conn, rack, samplesPerBatch)
			for b := 0; b < batchesPerClient; b++ {
				for s := 0; s < samplesPerBatch; s++ {
					c.Emit(wire.Sample{
						Time:  simclock.Time(int(rack)*1_000_000 + b*1000 + s),
						Port:  uint16(rack),
						Value: uint64(s),
					})
				}
			}
			if err := c.Close(); err != nil {
				t.Errorf("rack %d: close: %v", rack, err)
			}
		}(uint32(cl))
	}
	wg.Wait()
	// The clients have closed their sockets, but the server goroutines
	// drain them asynchronously; closing the server first would discard
	// buffered batches. Wait for every batch to land, then shut down.
	wantBatches := uint64(clients * batchesPerClient)
	wantSamples := uint64(clients * batchesPerClient * samplesPerBatch)
	deadline := time.Now().Add(10 * time.Second)
	for stats.Snapshot().Batches < wantBatches && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.LastErr(); err != nil {
		t.Fatalf("stream error: %v", err)
	}

	snap := stats.Snapshot()
	if snap.Batches != wantBatches {
		t.Errorf("batches = %d, want %d", snap.Batches, wantBatches)
	}
	if snap.Samples != wantSamples {
		t.Errorf("samples = %d, want %d", snap.Samples, wantSamples)
	}
	if len(snap.PerRack) != clients {
		t.Fatalf("racks = %d, want %d", len(snap.PerRack), clients)
	}
	for _, rc := range snap.PerRack {
		if rc.Samples != uint64(batchesPerClient*samplesPerBatch) {
			t.Errorf("rack %d samples = %d, want %d", rc.Rack, rc.Samples, batchesPerClient*samplesPerBatch)
		}
	}
	if got := len(sink.Samples()); got != int(wantSamples) {
		t.Errorf("sink samples = %d, want %d", got, wantSamples)
	}

	// The registry mirror must agree with the mutex-guarded snapshot.
	byName := map[string]float64{}
	for _, f := range reg.Snapshot().Families {
		for _, s := range f.Series {
			key := f.Name
			for _, l := range s.Labels {
				key += "{" + l.Key + "=" + l.Value + "}"
			}
			byName[key] = s.Value
		}
	}
	if got := byName["mburst_ingest_batches_total"]; got != float64(wantBatches) {
		t.Errorf("registry batches = %v, want %d", got, wantBatches)
	}
	if got := byName["mburst_ingest_samples_total"]; got != float64(wantSamples) {
		t.Errorf("registry samples = %v, want %d", got, wantSamples)
	}
	if got := byName[`mburst_ingest_rack_samples_total{rack=3}`]; got != float64(batchesPerClient*samplesPerBatch) {
		t.Errorf("registry rack 3 = %v, want %d", got, batchesPerClient*samplesPerBatch)
	}
	if got := byName["mburst_server_connections_total"]; got != clients {
		t.Errorf("registry connections = %v, want %d", got, clients)
	}
	if got := byName["mburst_server_active_connections"]; got != 0 {
		t.Errorf("active connections after close = %v", got)
	}
	if got := byName["mburst_ingest_last_sample_ns"]; got <= 0 {
		t.Errorf("last sample ns = %v", got)
	}
}
