package collector

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/wire"
)

// tcpDialer dials a fixed address.
func tcpDialer(addr string) Dialer {
	return func() (io.WriteCloser, error) {
		return net.Dial("tcp", addr)
	}
}

func fastConfig(rack uint32) ReconnectingClientConfig {
	return ReconnectingClientConfig{
		Rack:         rack,
		MaxBatch:     8,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReconnectingClientHappyPath(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	c := NewReconnectingClient(tcpDialer(srv.Addr().String()), fastConfig(3))
	const n = 100
	for i := 0; i < n; i++ {
		c.Emit(mkSample(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool { return len(sink.Samples()) == n })
	if c.DroppedSamples() != 0 {
		t.Errorf("dropped = %d", c.DroppedSamples())
	}
	if c.DeliveredSamples() != n {
		t.Errorf("delivered = %d", c.DeliveredSamples())
	}
	got := sink.Samples()
	for i := range got {
		if got[i] != mkSample(i) {
			t.Fatalf("sample %d corrupted or reordered", i)
		}
	}
}

func TestReconnectingClientSurvivesRestart(t *testing.T) {
	// Start a collector, feed samples, kill it mid-stream, restart on the
	// same port, and verify delivery resumes with no corruption.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)

	c := NewReconnectingClient(tcpDialer(addr), fastConfig(1))
	defer c.Close()
	for i := 0; i < 50; i++ {
		c.Emit(mkSample(i))
	}
	waitFor(t, "first delivery", func() bool { return len(sink.Samples()) >= 8 })
	srv.Close() // collector crashes

	// Keep emitting during the outage.
	for i := 50; i < 200; i++ {
		c.Emit(mkSample(i))
	}

	// Collector comes back on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := Serve(ln2, sink.Handle)
	defer srv2.Close()

	// A batch written into the dying socket before the RST arrives is
	// lost in TCP limbo (neither delivered nor locally dropped) — that is
	// inherent to the transport. Recovery is proven by the *last* emitted
	// sample arriving through the restarted collector.
	waitFor(t, "recovery", func() bool {
		for _, s := range sink.Samples() {
			if s == mkSample(199) {
				return true
			}
		}
		return false
	})
	if c.Redials() < 2 {
		t.Errorf("redials = %d, want >= 2", c.Redials())
	}
	// Every delivered sample must be intact (values encode their index).
	for _, s := range sink.Samples() {
		want := mkSample(int(s.Value / 1000))
		if s != want {
			t.Fatalf("corrupted sample after restart: %+v", s)
		}
	}
}

func TestReconnectingClientBuffersBounded(t *testing.T) {
	// Unreachable collector: the buffer must cap and account drops.
	dial := func() (io.WriteCloser, error) {
		return nil, errors.New("connection refused")
	}
	cfg := fastConfig(1)
	cfg.BufferLimit = 100
	cfg.Sleep = func(time.Duration) {} // spin fast in test
	c := NewReconnectingClient(dial, cfg)
	for i := 0; i < 500; i++ {
		c.Emit(mkSample(i))
	}
	waitFor(t, "drop accounting", func() bool { return c.DroppedSamples() > 0 })
	c.mu.Lock()
	pending := len(c.pending)
	c.mu.Unlock()
	if pending > 100 {
		t.Errorf("pending = %d exceeds limit", pending)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// After close with no collector, everything is accounted: emitted =
	// delivered + dropped (within the race window of the final batch).
	total := c.DeliveredSamples() + c.DroppedSamples()
	if total == 0 {
		t.Error("nothing accounted")
	}
}

func TestReconnectingClientEmitAfterCloseIsNoop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()
	c := NewReconnectingClient(tcpDialer(srv.Addr().String()), fastConfig(1))
	c.Emit(mkSample(0))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Emit(mkSample(1)) // must not panic or deliver
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	time.Sleep(20 * time.Millisecond)
	if got := len(sink.Samples()); got > 1 {
		t.Errorf("post-close sample delivered: %d", got)
	}
}

func TestReconnectingClientConcurrentEmit(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()
	c := NewReconnectingClient(tcpDialer(srv.Addr().String()), fastConfig(1))
	var wg sync.WaitGroup
	const goroutines, per = 8, 250
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Emit(wire.Sample{Time: 1, Value: uint64(g*per + i)})
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all delivered", func() bool {
		return len(sink.Samples()) == goroutines*per
	})
}

func TestReconnectingClientBackoffFullJitter(t *testing.T) {
	// With an injected RNG, reconnect sleeps are uniform in [0, backoff)
	// while the doubling cap schedule is unchanged, the pattern is
	// reproducible per seed, and the backoff gauge reports the sleep
	// actually taken.
	observe := func(seed uint64) ([]time.Duration, []float64) {
		var mu sync.Mutex
		var sleeps []time.Duration
		var gauges []float64
		reg := obs.NewRegistry()
		m := NewClientMetrics(reg)
		done := make(chan struct{})
		cfg := ReconnectingClientConfig{
			Rack:         1,
			MaxBatch:     8,
			RetryBackoff: time.Millisecond,
			MaxBackoff:   8 * time.Millisecond,
			Rand:         rng.New(seed).Split("backoff"),
			Metrics:      m,
			Sleep: func(d time.Duration) {
				mu.Lock()
				sleeps = append(sleeps, d)
				gauges = append(gauges, m.Backoff.Value())
				n := len(sleeps)
				mu.Unlock()
				if n == 8 {
					close(done)
				}
			},
		}
		c := NewReconnectingClient(func() (io.WriteCloser, error) {
			return nil, errors.New("connection refused")
		}, cfg)
		c.Emit(mkSample(0))
		<-done
		c.Close()
		mu.Lock()
		defer mu.Unlock()
		return append([]time.Duration(nil), sleeps[:8]...), append([]float64(nil), gauges[:8]...)
	}

	a, gauges := observe(5)
	b, _ := observe(5)
	other, _ := observe(6)
	sched := time.Millisecond // the un-jittered doubling schedule
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at redial %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 8*time.Millisecond {
			t.Errorf("sleep %d = %v outside [0, MaxBackoff)", i, a[i])
		}
		if a[i] > sched {
			t.Errorf("sleep %d = %v exceeds scheduled cap %v", i, a[i], sched)
		}
		if gauges[i] != a[i].Seconds() {
			t.Errorf("gauge at redial %d = %v, want %v", i, gauges[i], a[i].Seconds())
		}
		if a[i] != other[i] {
			varied = true
		}
		if sched < 8*time.Millisecond {
			sched *= 2
		}
	}
	if !varied {
		t.Error("different seeds produced identical jitter sequences")
	}
}

func TestReconnectingClientCloseDeadlineDelivers(t *testing.T) {
	// Collector up: a bounded Close still delivers everything.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()
	cfg := fastConfig(1)
	cfg.CloseTimeout = 5 * time.Second
	c := NewReconnectingClient(tcpDialer(srv.Addr().String()), cfg)
	const n = 100
	for i := 0; i < n; i++ {
		c.Emit(mkSample(i))
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close with reachable collector: %v", err)
	}
	waitFor(t, "delivery", func() bool { return len(sink.Samples()) == n })
	if c.DroppedSamples() != 0 {
		t.Errorf("dropped = %d, want 0", c.DroppedSamples())
	}
}

func TestReconnectingClientCloseDeadlineExpires(t *testing.T) {
	// Collector down: Close must return within the deadline with every
	// undelivered sample accounted as dropped — not hang.
	cfg := fastConfig(1)
	cfg.CloseTimeout = 20 * time.Millisecond
	parked := make(chan struct{})
	defer close(parked)
	backingOff := make(chan struct{})
	var once sync.Once
	cfg.Sleep = func(d time.Duration) {
		// Injected sleep: the deadline fires immediately, backoff waits
		// park until test teardown (the collector never comes back).
		if d == cfg.CloseTimeout {
			return
		}
		once.Do(func() { close(backingOff) })
		<-parked
	}
	c := NewReconnectingClient(func() (io.WriteCloser, error) {
		return nil, errors.New("connection refused")
	}, cfg)
	const n = 50
	for i := 0; i < n; i++ {
		c.Emit(mkSample(i))
	}
	// Close only once the flusher is parked in a backoff sleep: a fast
	// dial failure after Close would otherwise let the flusher drain and
	// exit cleanly within the deadline, and Close would rightly return
	// nil. The hung-flusher case is the one the deadline exists for.
	<-backingOff
	err := c.Close()
	if err == nil {
		t.Fatal("close returned nil with an unreachable collector and expired deadline")
	}
	if got := c.DeliveredSamples() + c.DroppedSamples(); got != n {
		t.Fatalf("accounting after deadline: delivered+dropped = %d, want %d", got, n)
	}
	if c.DroppedSamples() == 0 {
		t.Error("no samples accounted as dropped")
	}
}

func TestNewReconnectingClientNilDialerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil dialer did not panic")
		}
	}()
	NewReconnectingClient(nil, ReconnectingClientConfig{})
}
